# Local mirror of .github/workflows/ci.yml: `make check` runs the
# exact gate CI enforces.

.PHONY: check fmt vet build test lint bench serve-bench

check: fmt vet build test lint

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

lint:
	go run ./cmd/dvfslint -workload all

bench:
	go test -bench=. -benchmem .

# Serving benchmark: start dvfsd, train through the API, replay a job
# stream, write BENCH_serve.json. Tunables: SERVE_JOBS, SERVE_CONNS.
SERVE_ADDR  ?= 127.0.0.1:8090
SERVE_JOBS  ?= 2000
SERVE_CONNS ?= 16

serve-bench:
	go build -o bin/dvfsd ./cmd/dvfsd
	go build -o bin/dvfsload ./cmd/dvfsload
	@./bin/dvfsd -addr $(SERVE_ADDR) & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	./bin/dvfsload -addr http://$(SERVE_ADDR) -workload ldecode -train \
		-jobs $(SERVE_JOBS) -conns $(SERVE_CONNS) -json BENCH_serve.json; \
	status=$$?; kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; exit $$status
