# Local mirror of .github/workflows/ci.yml: `make check` runs the
# exact gate CI enforces.

.PHONY: check fmt vet build test lint bench

check: fmt vet build test lint

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

lint:
	go run ./cmd/dvfslint -workload all

bench:
	go test -bench=. -benchmem .
