# Local mirror of .github/workflows/ci.yml: `make check` runs the
# exact gate CI enforces.

.PHONY: check fmt vet build test lint alloc-gate bench serve-bench obs-bench trace-smoke replay-smoke replay-bench dash-smoke fleet-smoke fleet-bench fleet-obs-smoke tsdb-smoke tsdb-bench alert-smoke

check: fmt vet build test lint alloc-gate

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# go vet plus the self-hosted analyzer suite (cmd/dvfsvet):
# hotpathalloc, noblock, lockdiscipline, clockdiscipline over the
# module's own annotated code.
vet:
	go vet ./...
	go run ./cmd/dvfsvet ./...

# Runtime half of the hotpathalloc guarantee: AllocsPerRun == 0 on the
# core decision path, span capture, and the feature hash. Run without
# -race — the detector's instrumentation allocates, so these tests
# skip themselves under it.
alloc-gate:
	go test -count=1 -run 'TestPredictTraceZeroAlloc' ./internal/core
	go test -count=1 -run 'TestSpanCaptureZeroAlloc|TestFeatureHashZeroAlloc|TestSketchAddZeroAlloc|TestHeavyHittersZeroAlloc' ./internal/obs
	go test -count=1 -run 'TestBinaryEncodeZeroAlloc' ./internal/trace
	go test -count=1 -run 'TestAppendZeroAlloc|TestEncoderZeroAlloc' ./internal/tsdb
	go test -count=1 -run 'TestEnergyMeterZeroAlloc' ./internal/alert

build:
	go build ./...

test:
	go test -race ./...

lint:
	go run ./cmd/dvfslint -workload all

bench:
	go test -bench=. -benchmem .

# Decision-path instrumentation budget: §3.4 charges the predictor's
# cost against every job's budget, so tracing must stay well under
# 1 µs/event amortized. Three gates: the bare emit and full span
# capture (~5 monotonic clock reads) must each stay under 1000 ns/op
# absolute, and 1-in-16 head-sampled span capture must stay within
# 1.2x the same run's bare-emit baseline.
obs-bench:
	@go test -run '^$$' -bench BenchmarkTracerEmit -benchmem ./internal/obs | tee /tmp/obs-bench.out
	@awk ' \
		/^BenchmarkTracerEmitSpansSampled/ { sampled = $$3 + 0; next } \
		/^BenchmarkTracerEmitSpans/        { full = $$3 + 0; next } \
		/^BenchmarkTracerEmit/             { base = $$3 + 0 } \
		END { \
			if (base == 0 || full == 0 || sampled == 0) { print "obs-bench: missing benchmark output"; exit 1 } \
			fail = 0; \
			if (base >= 1000) { printf "obs-bench: emit %.0f ns/op exceeds the 1000 ns/op budget\n", base; fail = 1 } \
			if (full >= 1000) { printf "obs-bench: full span capture %.0f ns/op exceeds the 1000 ns/op budget\n", full; fail = 1 } \
			if (sampled >= 1.2 * base) { printf "obs-bench: sampled span capture %.0f ns/op exceeds 1.2x the %.0f ns/op emit baseline\n", sampled, base; fail = 1 } \
			if (fail) exit 1; \
			printf "obs-bench: emit %.0f, +spans %.0f, sampled 1/16 %.0f ns/op — within budget\n", base, full, sampled \
		}' /tmp/obs-bench.out

# Observability smoke: simulate with a decision log, then analyze it.
trace-smoke:
	go run ./cmd/dvfssim -workload sha -governor prediction -jobs 100 -trace /tmp/trace-smoke.jsonl
	go run ./cmd/dvfstrace -input /tmp/trace-smoke.jsonl
	go run ./cmd/dvfstrace -input /tmp/trace-smoke.jsonl -format json > /dev/null

# Counterfactual-replay smoke: trace a prediction run, replay it with
# the energy-ordering assertion (oracle ≤ traced ≤ performance), and
# prove the report is bit-identical across runs of the same trace+seed.
replay-smoke:
	go build -o bin/dvfssim ./cmd/dvfssim
	go build -o bin/dvfsreplay ./cmd/dvfsreplay
	./bin/dvfssim -workload sha -governor prediction -jobs 100 -trace /tmp/replay-smoke.jsonl
	./bin/dvfsreplay -input /tmp/replay-smoke.jsonl -check -html /tmp/replay-smoke.html > /tmp/replay-smoke-1.txt
	./bin/dvfsreplay -input /tmp/replay-smoke.jsonl -check > /tmp/replay-smoke-2.txt
	cmp /tmp/replay-smoke-1.txt /tmp/replay-smoke-2.txt
	@echo "replay-smoke: ordering holds and output is bit-identical"

# Replay benchmark: seeded ldecode trace → BENCH_replay.json, compared
# against the committed baseline (fails on >5% energy / >5-point miss
# regression). Regenerate the baseline by copying the fresh document.
replay-bench:
	go build -o bin/dvfssim ./cmd/dvfssim
	go build -o bin/dvfsreplay ./cmd/dvfsreplay
	./bin/dvfssim -workload ldecode -governor prediction -jobs 200 -seed 1 -trace /tmp/replay-bench.jsonl
	./bin/dvfsreplay -input /tmp/replay-bench.jsonl -seed 1 -json BENCH_replay.new.json \
		-baseline BENCH_replay.json -max-regress 5 > /dev/null

# Fleet smoke: simulate a heterogeneous fleet into a binary trace,
# prove determinism (same seed, same bytes), analyze and convert the
# trace (binary -> jsonl -> binary must be byte-identical, and the
# binary must stay >= 5x smaller than JSONL), run the fleet-wide
# counterfactual margin sweep, and finish with a 100k-device
# aggregate-only run — the scale criterion from the fleet issue.
FLEET_SMOKE_DEVICES ?= 100000

fleet-smoke:
	go build -o bin/dvfsfleet ./cmd/dvfsfleet
	go build -o bin/dvfstrace ./cmd/dvfstrace
	go build -o bin/dvfsreplay ./cmd/dvfsreplay
	./bin/dvfsfleet -devices 200 -platforms a7,x86 -workload-mix sha:3,rijndael:1 \
		-jobs 10 -seed 42 -progress 0 -out /tmp/fleet-smoke.bin -bench /tmp/fleet-smoke-bench.json
	./bin/dvfsfleet -devices 200 -platforms a7,x86 -workload-mix sha:3,rijndael:1 \
		-jobs 10 -seed 42 -progress 0 -out /tmp/fleet-smoke-2.bin > /dev/null
	cmp /tmp/fleet-smoke.bin /tmp/fleet-smoke-2.bin
	./bin/dvfstrace -input /tmp/fleet-smoke.bin > /dev/null
	./bin/dvfstrace -input /tmp/fleet-smoke.bin -convert /tmp/fleet-smoke.jsonl
	./bin/dvfstrace -input /tmp/fleet-smoke.jsonl -convert /tmp/fleet-smoke-back.bin -convert-format binary
	cmp /tmp/fleet-smoke.bin /tmp/fleet-smoke-back.bin
	@jsonl=$$(wc -c < /tmp/fleet-smoke.jsonl); bin=$$(wc -c < /tmp/fleet-smoke.bin); \
	ratio=$$((jsonl / bin)); \
	if [ $$ratio -lt 5 ]; then \
		echo "fleet-smoke: binary trace only $${ratio}x smaller than JSONL ($$bin vs $$jsonl bytes, need >= 5x)"; exit 1; \
	fi; \
	echo "fleet-smoke: binary $$bin B vs JSONL $$jsonl B ($${ratio}x)"
	./bin/dvfsreplay -input /tmp/fleet-smoke.bin -html /tmp/fleet-smoke.html > /tmp/fleet-smoke-replay.txt
	grep -q 'fleet replay  200 devices' /tmp/fleet-smoke-replay.txt
	grep -q 'Margin sweep' /tmp/fleet-smoke.html
	./bin/dvfsfleet -devices $(FLEET_SMOKE_DEVICES) -platforms a7,x86 \
		-workload-mix sha:3,rijndael:1 -seed 42 -progress 4
	@echo "fleet-smoke: trace round trip, fleet replay, and $(FLEET_SMOKE_DEVICES)-device run pass"

# Fleet benchmark: devices/sec throughput plus the binary-vs-JSONL
# encoding comparison, written as BENCH_fleet.new.json and compared
# against the committed BENCH_fleet.json baseline (fails if the
# jsonl-to-binary ratio drops below 5 or throughput halves). The same
# trace then replays with 1 and $(FLEET_REPLAY_WORKERS) workers: the
# reports must be byte-identical (the in-order-commit contract) and
# the measured speedup lands in the bench document. The ≥4x speedup
# floor is only asserted on machines with ≥ 8 CPUs — a 1-core CI
# runner can prove determinism but not parallelism.
# Regenerate the baseline by copying the fresh document.
FLEET_BENCH_DEVICES ?= 2000
FLEET_REPLAY_WORKERS ?= 8

fleet-bench:
	go build -o bin/dvfsfleet ./cmd/dvfsfleet
	go build -o bin/dvfsreplay ./cmd/dvfsreplay
	./bin/dvfsfleet -devices $(FLEET_BENCH_DEVICES) -platforms a7,x86 \
		-workload-mix sha:3,rijndael:1 -jobs 10 -seed 42 -progress 0 \
		-out /tmp/fleet-bench.bin -bench BENCH_fleet.new.json > /dev/null
	@t0=$$(date +%s%N); \
	./bin/dvfsreplay -input /tmp/fleet-bench.bin -workers 1 > /tmp/fleet-replay-w1.txt; \
	t1=$$(date +%s%N); \
	./bin/dvfsreplay -input /tmp/fleet-bench.bin -workers $(FLEET_REPLAY_WORKERS) > /tmp/fleet-replay-wn.txt; \
	t2=$$(date +%s%N); \
	cmp /tmp/fleet-replay-w1.txt /tmp/fleet-replay-wn.txt \
		|| { echo "fleet-bench: replay reports differ across worker counts"; exit 1; }; \
	python3 -c "import json, os; \
doc = json.load(open('BENCH_fleet.new.json')); \
s1 = ($$t1 - $$t0) / 1e9; sn = ($$t2 - $$t1) / 1e9; \
doc['replay_workers'] = $(FLEET_REPLAY_WORKERS); \
doc['replay_seconds_w1'] = s1; \
doc['replay_seconds_wn'] = sn; \
doc['replay_speedup'] = s1 / sn if sn > 0 else 0.0; \
doc['replay_cpus'] = os.cpu_count(); \
json.dump(doc, open('BENCH_fleet.new.json', 'w'), indent=2); \
assert os.cpu_count() < 8 or doc['replay_speedup'] >= 4, \
    f\"fleet-bench: replay speedup {doc['replay_speedup']:.2f}x below the 4x floor on {os.cpu_count()} CPUs\"; \
print(f\"fleet-bench: replay w1 {s1:.2f}s, w$(FLEET_REPLAY_WORKERS) {sn:.2f}s \" \
      f\"({doc['replay_speedup']:.2f}x on {os.cpu_count()} CPUs), reports byte-identical\")"
	@python3 -c "import json; \
new = json.load(open('BENCH_fleet.new.json')); \
base = json.load(open('BENCH_fleet.json')); \
ratio = new['jsonl_to_binary_ratio']; \
assert ratio >= 5, f'fleet-bench: compression ratio {ratio:.2f}x below the 5x floor'; \
drift = new['binary_bytes_per_event'] / base['binary_bytes_per_event']; \
assert drift <= 1.1, f'fleet-bench: binary bytes/event grew {drift:.2f}x over baseline'; \
print(f\"fleet-bench: {new['devices_per_sec']:.0f} devices/sec, \" \
      f\"{new['binary_bytes_per_event']:.1f} B/event binary vs \" \
      f\"{new['jsonl_bytes_per_event']:.1f} B/event JSONL ({ratio:.2f}x)\")"

# Fleet-observability smoke: simulate a fleet with inline health
# scoring, roll the trace up offline with dvfstrace -by-device, prove
# the parallel fleet replay is byte-identical across worker counts
# (with the keyed SLO burn section rendered), then boot dvfsd, ingest
# the same binary trace over HTTP, and assert the /debug/fleet
# dashboard, the /v1/fleet snapshot, and the fleet Prometheus gauges
# all serve it live.
FLEET_OBS_ADDR ?= 127.0.0.1:8095

fleet-obs-smoke:
	go build -o bin/dvfsfleet ./cmd/dvfsfleet
	go build -o bin/dvfstrace ./cmd/dvfstrace
	go build -o bin/dvfsreplay ./cmd/dvfsreplay
	go build -o bin/dvfsd ./cmd/dvfsd
	./bin/dvfsfleet -devices 120 -platforms a7,x86 -workload-mix sha:3,rijndael:1 \
		-jobs 10 -seed 42 -progress 0 -topk 5 -out /tmp/fleet-obs.bin > /tmp/fleet-obs-sim.txt
	grep -q 'worst devices by health score' /tmp/fleet-obs-sim.txt || \
		grep -q 'health ' /tmp/fleet-obs-sim.txt
	./bin/dvfstrace -input /tmp/fleet-obs.bin -by-device 5 > /tmp/fleet-obs-bydev.txt
	grep -q 'worst devices by health score' /tmp/fleet-obs-bydev.txt
	./bin/dvfstrace -input /tmp/fleet-obs.bin -by-device 5 -format json | \
		python3 -c "import json, sys; s = json.load(sys.stdin); assert s['devices'] == 120, s['devices']"
	./bin/dvfsreplay -input /tmp/fleet-obs.bin -workers 1 -slo-target 0.01 > /tmp/fleet-obs-replay-w1.txt
	./bin/dvfsreplay -input /tmp/fleet-obs.bin -workers 4 -slo-target 0.01 > /tmp/fleet-obs-replay-w4.txt
	cmp /tmp/fleet-obs-replay-w1.txt /tmp/fleet-obs-replay-w4.txt
	grep -q 'slo burn' /tmp/fleet-obs-replay-w1.txt
	@./bin/dvfsd -addr $(FLEET_OBS_ADDR) & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
		curl -fsS http://$(FLEET_OBS_ADDR)/healthz > /dev/null 2>&1 && break; sleep 0.1; \
	done; \
	curl -fsS --data-binary @/tmp/fleet-obs.bin http://$(FLEET_OBS_ADDR)/v1/fleet/ingest \
		| grep -q '"format":"binary"' \
		|| { echo "fleet-obs-smoke: binary ingest failed"; exit 1; }; \
	curl -fsS http://$(FLEET_OBS_ADDR)/v1/fleet \
		| python3 -c "import json, sys; s = json.load(sys.stdin); assert s['devices'] == 120, s" \
		|| { echo "fleet-obs-smoke: /v1/fleet snapshot wrong"; exit 1; }; \
	curl -fsS http://$(FLEET_OBS_ADDR)/debug/fleet > /tmp/fleet-obs-dash.html; \
	grep -q 'Worst devices' /tmp/fleet-obs-dash.html \
		|| { echo "fleet-obs-smoke: /debug/fleet missing the worst-devices table"; exit 1; }; \
	grep -q 'Health distribution' /tmp/fleet-obs-dash.html \
		|| { echo "fleet-obs-smoke: /debug/fleet missing the health chart"; exit 1; }; \
	curl -fsS http://$(FLEET_OBS_ADDR)/metrics | grep -q 'dvfsd_fleet_devices' \
		|| { echo "fleet-obs-smoke: fleet gauges missing from /metrics"; exit 1; }; \
	echo "fleet-obs-smoke: ingest, dashboard, snapshot, and gauges all live"; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; exit 0

# Live-telemetry smoke: boot dvfsd, drive traffic through the API,
# then assert the embedded dashboard renders its charts and the
# /v1/events SSE endpoint streams at least one decision event.
DASH_ADDR ?= 127.0.0.1:8094

dash-smoke:
	go build -o bin/dvfsd ./cmd/dvfsd
	go build -o bin/dvfsload ./cmd/dvfsload
	@./bin/dvfsd -addr $(DASH_ADDR) & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	./bin/dvfsload -addr http://$(DASH_ADDR) -workload sha -train -train-jobs 80 \
		-jobs 50 -conns 4 > /dev/null || exit 1; \
	curl -fsS http://$(DASH_ADDR)/debug/dash | grep -q '<svg' \
		|| { echo "dash-smoke: /debug/dash has no charts"; exit 1; }; \
	curl -sN --max-time 5 "http://$(DASH_ADDR)/v1/events?last=5" 2>/dev/null | grep -q -m1 'event: decision' \
		|| { echo "dash-smoke: /v1/events streamed no events"; exit 1; }; \
	echo "dash-smoke: dashboard renders and /v1/events streams"; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; exit 0

# Serving benchmark: start dvfsd, train through the API, replay a job
# stream, write BENCH_serve.json. Tunables: SERVE_JOBS, SERVE_CONNS.
SERVE_ADDR  ?= 127.0.0.1:8090
SERVE_JOBS  ?= 2000
SERVE_CONNS ?= 16

serve-bench:
	go build -o bin/dvfsd ./cmd/dvfsd
	go build -o bin/dvfsload ./cmd/dvfsload
	@./bin/dvfsd -addr $(SERVE_ADDR) & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	./bin/dvfsload -addr http://$(SERVE_ADDR) -workload ldecode -train \
		-jobs $(SERVE_JOBS) -conns $(SERVE_CONNS) -json BENCH_serve.json; \
	status=$$?; kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; exit $$status

# Telemetry-history smoke: boot dvfsd with the embedded time-series
# store on a fast scrape, drive traffic, then assert GET /v1/query
# returns history, the dashboard renders a windowed history chart,
# and — after a SIGKILL — dvfstsdb recovers the store offline.
TSDB_ADDR ?= 127.0.0.1:8096

tsdb-smoke:
	go build -o bin/dvfsd ./cmd/dvfsd
	go build -o bin/dvfsload ./cmd/dvfsload
	go build -o bin/dvfstsdb ./cmd/dvfstsdb
	@dir=$$(mktemp -d); \
	./bin/dvfsd -addr $(TSDB_ADDR) -tsdb-scrape 100ms -tsdb-dir $$dir/tsdb -tsdb-block 1s & pid=$$!; \
	trap 'kill -9 $$pid 2>/dev/null; rm -rf $$dir' EXIT; \
	./bin/dvfsload -addr http://$(TSDB_ADDR) -workload sha -train -train-jobs 60 \
		-jobs 40 -conns 2 > /dev/null || exit 1; \
	sleep 3; \
	curl -fsS "http://$(TSDB_ADDR)/v1/query?metric=dvfsd_requests_total&from=-5m" \
		| grep -q '"points":\[{' \
		|| { echo "tsdb-smoke: /v1/query returned no history"; exit 1; }; \
	curl -fsS "http://$(TSDB_ADDR)/debug/dash?window=15m" | grep -q 'tschart' \
		|| { echo "tsdb-smoke: dashboard window rendered no history chart"; exit 1; }; \
	kill -9 $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	./bin/dvfstsdb -dir $$dir/tsdb | grep -q 'go_goroutines' \
		|| { echo "tsdb-smoke: offline recovery found no history"; exit 1; }; \
	echo "tsdb-smoke: query API, dashboard history, and crash recovery all live"; \
	rm -rf $$dir; exit 0

# Alerting smoke: boot dvfsd with a fast scrape, an energy budget, and
# a crash-safe incident journal; ingest fleet events with inflated
# residuals until the built-in model_stale rule fires, check the
# /v1/alerts snapshot, the /debug/alerts incident timeline, the
# firing-span overlay on the dashboard history charts, and the
# alert/energy Prometheus metrics; then ingest healthy events until
# the alert resolves and the incident closes; finally assert the
# journal recorded both transitions.
ALERT_ADDR ?= 127.0.0.1:8097

alert-smoke:
	go build -o bin/dvfsd ./cmd/dvfsd
	@python3 -c "import json; \
	base = {'workload': 'sha', 'device': 'd0', 'platform': 'a7', 'predicted': True, \
	        'level': 2, 'from_level': 2, 'predicted_exec_sec': 0.04, \
	        'predictor_sec': 0.001, 'done': True}; \
	bad = [dict(base, seq=i + 1, job=i, time_sec=round(0.1 * i, 3), \
	            actual_exec_sec=0.05, residual_sec=0.01) for i in range(120)]; \
	good = [dict(base, seq=121 + i, job=120 + i, time_sec=round(12.0 + 0.1 * i, 3), \
	             actual_exec_sec=0.04, residual_sec=-0.001) for i in range(420)]; \
	open('/tmp/alert-bad.jsonl', 'w').write(''.join(json.dumps(e) + chr(10) for e in bad)); \
	open('/tmp/alert-good.jsonl', 'w').write(''.join(json.dumps(e) + chr(10) for e in good))"
	@dir=$$(mktemp -d); \
	./bin/dvfsd -addr $(ALERT_ADDR) -tsdb-scrape 100ms -energy-budget 0.001 \
		-incident-log $$dir/incidents.jsonl & pid=$$!; \
	trap 'kill $$pid 2>/dev/null; rm -rf $$dir' EXIT; \
	for i in $$(seq 1 50); do \
		curl -fsS http://$(ALERT_ADDR)/healthz > /dev/null 2>&1 && break; sleep 0.1; \
	done; \
	curl -fsS --data-binary @/tmp/alert-bad.jsonl http://$(ALERT_ADDR)/v1/fleet/ingest > /dev/null \
		|| { echo "alert-smoke: bad-residual ingest failed"; exit 1; }; \
	for i in $$(seq 1 100); do \
		curl -fsS http://$(ALERT_ADDR)/v1/alerts | grep -q '"state":"firing"' && break; sleep 0.1; \
	done; \
	curl -fsS http://$(ALERT_ADDR)/v1/alerts | python3 -c "import json, sys; \
	s = json.load(sys.stdin); \
	assert any(a['rule'] == 'model_stale' and a['state'] == 'firing' for a in s['active']), s['active']; \
	assert any(i['rule'] == 'model_stale' and not i.get('end_ms') for i in s['incidents']), s['incidents']; \
	assert any(r['name'] == 'energy_budget_burn' for r in s['rules']), s['rules']" \
		|| { echo "alert-smoke: model_stale did not fire"; exit 1; }; \
	curl -fsS http://$(ALERT_ADDR)/debug/alerts > /tmp/alert-dash.html; \
	grep -q 'model_stale' /tmp/alert-dash.html && grep -q 'Incidents' /tmp/alert-dash.html \
		|| { echo "alert-smoke: /debug/alerts missing the incident timeline"; exit 1; }; \
	curl -fsS http://$(ALERT_ADDR)/metrics > /tmp/alert-metrics.txt; \
	grep -q 'dvfsd_alerts_firing' /tmp/alert-metrics.txt \
		&& grep -q 'dvfsd_energy_joules_total' /tmp/alert-metrics.txt \
		|| { echo "alert-smoke: alert/energy metrics missing"; exit 1; }; \
	for i in $$(seq 1 100); do \
		curl -fsS "http://$(ALERT_ADDR)/debug/dash?window=15m" | grep -q 'class="firing"' && break; sleep 0.1; \
	done; \
	curl -fsS "http://$(ALERT_ADDR)/debug/dash?window=15m" | grep -q 'class="firing"' \
		|| { echo "alert-smoke: no firing-span overlay on the history charts"; exit 1; }; \
	curl -fsS --data-binary @/tmp/alert-good.jsonl http://$(ALERT_ADDR)/v1/fleet/ingest > /dev/null \
		|| { echo "alert-smoke: healthy ingest failed"; exit 1; }; \
	for i in $$(seq 1 100); do \
		curl -fsS http://$(ALERT_ADDR)/v1/alerts | python3 -c "import json, sys; \
	s = json.load(sys.stdin); \
	ok = not any(a['rule'] == 'model_stale' and a['state'] == 'firing' for a in s['active']) \
	     and any(i['rule'] == 'model_stale' and i.get('end_ms') for i in s['incidents']); \
	sys.exit(0 if ok else 1)" && break; sleep 0.1; \
	done; \
	curl -fsS http://$(ALERT_ADDR)/v1/alerts | python3 -c "import json, sys; \
	s = json.load(sys.stdin); \
	assert not any(a['rule'] == 'model_stale' and a['state'] == 'firing' for a in s['active']), s['active']; \
	assert any(i['rule'] == 'model_stale' and i.get('end_ms') for i in s['incidents']), s['incidents']" \
		|| { echo "alert-smoke: model_stale did not resolve"; exit 1; }; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	grep -q '"to":"firing"' $$dir/incidents.jsonl && grep -q '"to":"resolved"' $$dir/incidents.jsonl \
		|| { echo "alert-smoke: incident journal missing transitions"; exit 1; }; \
	echo "alert-smoke: fire, timeline, overlay, resolve, and journal all live"; \
	rm -rf $$dir; exit 0

# Telemetry-store benchmark: simulate a decision trace, replay it
# through the scrape path into the store, and gate on the acceptance
# numbers — compression ≥ 8x vs raw 16-byte points, zero allocations
# per append, 1h/1s range query under 10ms. Writes BENCH_tsdb.json.
tsdb-bench:
	go build -o bin/dvfssim ./cmd/dvfssim
	go build -o bin/dvfstsdb ./cmd/dvfstsdb
	./bin/dvfssim -workload sha -governor prediction -jobs 3000 -trace /tmp/tsdb-bench.jsonl > /dev/null
	./bin/dvfstsdb -bench -trace /tmp/tsdb-bench.jsonl -out BENCH_tsdb.json
	@python3 -c "import json; \
doc = json.load(open('BENCH_tsdb.json')); \
assert doc['compression_vs_raw16'] >= 8, \
    f\"tsdb-bench: compression {doc['compression_vs_raw16']:.2f}x below the 8x floor\"; \
assert doc['append_allocs_per_op'] == 0, \
    f\"tsdb-bench: append allocates {doc['append_allocs_per_op']}/op\"; \
assert doc['query_1h_1s_ms'] < 10, \
    f\"tsdb-bench: 1h/1s query took {doc['query_1h_1s_ms']:.2f}ms (floor 10ms)\"; \
print(f\"tsdb-bench: {doc['bytes_per_sample']:.2f} B/sample \" \
      f\"({doc['compression_vs_raw16']:.1f}x vs raw16), \" \
      f\"append {doc['append_ns_per_op']:.0f} ns/op {doc['append_allocs_per_op']:.0f} allocs, \" \
      f\"1h/1s query {doc['query_1h_1s_ms']:.2f}ms\")"
