# Local mirror of .github/workflows/ci.yml: `make check` runs the
# exact gate CI enforces.

.PHONY: check fmt vet build test lint bench serve-bench obs-bench trace-smoke replay-smoke replay-bench

check: fmt vet build test lint

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

lint:
	go run ./cmd/dvfslint -workload all

bench:
	go test -bench=. -benchmem .

# Decision-path instrumentation budget: §3.4 charges the predictor's
# cost against every job's budget, so tracing must stay well under
# 1 µs/event amortized. Fails if BenchmarkTracerEmit exceeds 1000 ns/op.
obs-bench:
	@go test -run '^$$' -bench BenchmarkTracerEmit -benchmem ./internal/obs | tee /tmp/obs-bench.out
	@awk '/BenchmarkTracerEmit/ { if ($$3+0 >= 1000) { \
		printf "obs-bench: %s ns/op exceeds the 1000 ns/op budget\n", $$3; exit 1 } \
		else printf "obs-bench: %s ns/op within the 1 us/event budget\n", $$3 }' /tmp/obs-bench.out

# Observability smoke: simulate with a decision log, then analyze it.
trace-smoke:
	go run ./cmd/dvfssim -workload sha -governor prediction -jobs 100 -trace /tmp/trace-smoke.jsonl
	go run ./cmd/dvfstrace -input /tmp/trace-smoke.jsonl
	go run ./cmd/dvfstrace -input /tmp/trace-smoke.jsonl -format json > /dev/null

# Counterfactual-replay smoke: trace a prediction run, replay it with
# the energy-ordering assertion (oracle ≤ traced ≤ performance), and
# prove the report is bit-identical across runs of the same trace+seed.
replay-smoke:
	go build -o bin/dvfssim ./cmd/dvfssim
	go build -o bin/dvfsreplay ./cmd/dvfsreplay
	./bin/dvfssim -workload sha -governor prediction -jobs 100 -trace /tmp/replay-smoke.jsonl
	./bin/dvfsreplay -input /tmp/replay-smoke.jsonl -check -html /tmp/replay-smoke.html > /tmp/replay-smoke-1.txt
	./bin/dvfsreplay -input /tmp/replay-smoke.jsonl -check > /tmp/replay-smoke-2.txt
	cmp /tmp/replay-smoke-1.txt /tmp/replay-smoke-2.txt
	@echo "replay-smoke: ordering holds and output is bit-identical"

# Replay benchmark: seeded ldecode trace → BENCH_replay.json, compared
# against the committed baseline (fails on >5% energy / >5-point miss
# regression). Regenerate the baseline by copying the fresh document.
replay-bench:
	go build -o bin/dvfssim ./cmd/dvfssim
	go build -o bin/dvfsreplay ./cmd/dvfsreplay
	./bin/dvfssim -workload ldecode -governor prediction -jobs 200 -seed 1 -trace /tmp/replay-bench.jsonl
	./bin/dvfsreplay -input /tmp/replay-bench.jsonl -seed 1 -json BENCH_replay.new.json \
		-baseline BENCH_replay.json -max-regress 5 > /dev/null

# Serving benchmark: start dvfsd, train through the API, replay a job
# stream, write BENCH_serve.json. Tunables: SERVE_JOBS, SERVE_CONNS.
SERVE_ADDR  ?= 127.0.0.1:8090
SERVE_JOBS  ?= 2000
SERVE_CONNS ?= 16

serve-bench:
	go build -o bin/dvfsd ./cmd/dvfsd
	go build -o bin/dvfsload ./cmd/dvfsload
	@./bin/dvfsd -addr $(SERVE_ADDR) & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	./bin/dvfsload -addr http://$(SERVE_ADDR) -workload ldecode -train \
		-jobs $(SERVE_JOBS) -conns $(SERVE_CONNS) -json BENCH_serve.json; \
	status=$$?; kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; exit $$status
