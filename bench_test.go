// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus micro-benchmarks of the framework's hot paths.
// Each experiment benchmark performs the full measurement the paper's
// figure reports; ns/op is the cost of regenerating that figure.
package repro_test

import (
	"sync"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/governor"
	"repro/internal/regress"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The suite is shared across benchmarks so controllers train once;
// experiment results remain deterministic per seed.
var (
	suiteOnce  sync.Once
	benchSuite *repro.Suite
)

func getSuite(b *testing.B) *repro.Suite {
	b.Helper()
	suiteOnce.Do(func() { benchSuite = repro.NewSuite(1) })
	return benchSuite
}

func BenchmarkTable2(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.RunTable2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.RunFig2(250); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.RunFig3(250); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.RunFig9(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		if tbl := s.RunFig11(); tbl == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkFig15(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.RunFig15(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16(b *testing.B) {
	s := getSuite(b)
	// One sub-benchmark per workload; together they regenerate Fig 16.
	for _, w := range workload.All() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.RunFig16(w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig17(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.RunFig17(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig18(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.RunFig18(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig19(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.RunFig19(); err != nil {
			b.Fatal(err)
		}
		if _, err := s.RunFig19Pocketsphinx(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig20(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.RunFig20(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig21(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.RunFig21(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXPlat(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.RunXPlat(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMargin(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.RunAblationMargin(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSwitchTable(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.RunAblationSwitchTable(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSlice(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.RunAblationSlice(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the framework's hot paths ---

// BenchmarkControllerBuild measures the whole off-line pipeline
// (instrument, profile, train, slice) for the video decoder.
func BenchmarkControllerBuild(b *testing.B) {
	w := workload.LDecode()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(w, core.Config{ProfileSeed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictionSlice measures one run-time prediction: slice
// execution, feature vectorization, model evaluation, level selection.
func BenchmarkPredictionSlice(b *testing.B) {
	w := workload.LDecode()
	ctrl, err := core.Build(w, core.Config{ProfileSeed: 1})
	if err != nil {
		b.Fatal(err)
	}
	gen := w.NewGen(2)
	globals := w.FreshGlobals()
	params := gen.Next(0)
	job := &governor.Job{Params: params, Globals: globals, RemainingBudgetSec: 0.05}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.JobStart(job, ctrl.Plat.MaxLevel())
	}
}

// BenchmarkAsymmetricLasso measures model training on a profiling-
// sized dataset.
func BenchmarkAsymmetricLasso(b *testing.B) {
	w := workload.LDecode()
	ctrl, err := core.Build(w, core.Config{ProfileSeed: 1})
	if err != nil {
		b.Fatal(err)
	}
	X, y := ctrl.Prof.X, ctrl.Prof.TimesMax
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := regress.Fit(X, y, regress.Options{Alpha: 100, Gamma: 1e-3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateRun measures a full 300-job governor evaluation run.
func BenchmarkSimulateRun(b *testing.B) {
	w := workload.LDecode()
	p := repro.ODROIDXU3()
	g := repro.PerformanceGovernor(p)
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(w, g, sim.Config{Plat: p, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSliceExtraction measures program slicing itself.
func BenchmarkSliceExtraction(b *testing.B) {
	w := workload.LDecode()
	ctrl, err := core.Build(w, core.Config{ProfileSeed: 1})
	if err != nil {
		b.Fatal(err)
	}
	tr := features.NewTrace()
	globals := w.FreshGlobals()
	params := w.NewGen(3).Next(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Reset()
		if _, err := ctrl.Slice.Run(globals, params, tr); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension studies (§3.5, §4.3, §7) ---

func BenchmarkPlacement(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.RunPlacement(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatch(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.RunBatch(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHetero(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.RunHetero(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHints(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.RunHints(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverheadCap(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.RunOverheadCap(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiTask(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.RunMultiTask(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuadratic(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.RunQuadratic(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselines(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.RunBaselines("ldecode"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiTaskSim measures the multi-task simulator itself.
func BenchmarkMultiTaskSim(b *testing.B) {
	p := repro.ODROIDXU3()
	ld := workload.LDecode()
	xp := workload.XPilot()
	tasks := []sim.TaskSpec{
		{W: ld, Gov: repro.PerformanceGovernor(p), BudgetSec: 0.1, PeriodSec: 0.1, Jobs: 150},
		{W: xp, Gov: repro.PerformanceGovernor(p), BudgetSec: 0.05, PeriodSec: 0.05, Jobs: 300},
	}
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunMulti(tasks, sim.Config{Plat: p, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStatic(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.RunStatic(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkA15Trends(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.RunA15Trends(); err != nil {
			b.Fatal(err)
		}
	}
}
