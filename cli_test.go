package repro_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/taskir"
)

// CLI smoke tests: build-and-run each command the way a user would.
// They exercise flag parsing, the experiment dispatcher, and model
// save/load end to end.

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCLIDvfsbenchSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	out := runCLI(t, "./cmd/dvfsbench", "-exp", "fig11")
	if !strings.Contains(out, "95th-percentile DVFS switching times") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestCLIDvfsbenchRejectsUnknown(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	cmd := exec.Command("go", "run", "./cmd/dvfsbench", "-exp", "fig99")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("unknown experiment accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "unknown experiment") {
		t.Errorf("missing error message:\n%s", out)
	}
}

func TestCLIProfileSaveSimLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	model := t.TempDir() + "/m.json"
	out := runCLI(t, "./cmd/dvfsprofile", "-workload", "sha", "-o", model)
	if !strings.Contains(out, "model written") {
		t.Errorf("profile output:\n%s", out)
	}
	out = runCLI(t, "./cmd/dvfssim", "-workload", "sha", "-model", model, "-jobs", "50")
	if !strings.Contains(out, "governor   prediction") || !strings.Contains(out, "misses") {
		t.Errorf("sim output:\n%s", out)
	}
}

// failCLI runs a command expecting a non-zero exit and returns its
// combined output.
func failCLI(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go run %v unexpectedly succeeded:\n%s", args, out)
	}
	return string(out)
}

// Every binary must reject an unknown workload name up front, exit
// non-zero, and (for the profiling/simulation tools) print the flag
// usage so the caller sees the valid spellings.
func TestCLIRejectsUnknownWorkloadUpFront(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	tests := []struct {
		name      string
		args      []string
		wantUsage bool
	}{
		{"dvfsprofile", []string{"./cmd/dvfsprofile", "-workload", "nope"}, true},
		{"dvfssim", []string{"./cmd/dvfssim", "-workload", "nope"}, true},
		{"dvfslint", []string{"./cmd/dvfslint", "-workload", "nope"}, false},
		{"dvfsload", []string{"./cmd/dvfsload", "-workload", "nope"}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			out := failCLI(t, tc.args...)
			if !strings.Contains(out, "unknown benchmark") {
				t.Errorf("missing unknown-benchmark error:\n%s", out)
			}
			if tc.wantUsage && !strings.Contains(out, "-workload") {
				t.Errorf("missing usage text:\n%s", out)
			}
		})
	}
}

func TestCLIDvfssimRejectsBadGovernorAndPlatform(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	out := failCLI(t, "./cmd/dvfssim", "-governor", "warp-speed")
	if !strings.Contains(out, "unknown governor") || !strings.Contains(out, "-governor") {
		t.Errorf("bad governor output:\n%s", out)
	}
	out = failCLI(t, "./cmd/dvfssim", "-platform", "quantum")
	if !strings.Contains(out, "unknown platform") {
		t.Errorf("bad platform output:\n%s", out)
	}
}

func TestCLIDvfsdRejectsBadFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	out := failCLI(t, "./cmd/dvfsd", "-platform", "quantum")
	if !strings.Contains(out, "unknown platform") {
		t.Errorf("bad platform output:\n%s", out)
	}
	out = failCLI(t, "./cmd/dvfsd", "-preload", "nope")
	if !strings.Contains(out, "unknown benchmark") {
		t.Errorf("bad preload output:\n%s", out)
	}
}

func TestCLIDvfsloadFailsWithoutDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	// Port 9 (discard) is never a dvfsd; the health wait must time out
	// and the exit must be non-zero.
	out := failCLI(t, "./cmd/dvfsload", "-addr", "http://127.0.0.1:9", "-workload", "sha", "-wait", "300ms")
	if !strings.Contains(out, "not healthy") {
		t.Errorf("missing health-wait error:\n%s", out)
	}
}

// dvfstrace failure paths: missing input, unreadable input, unknown
// format, and unknown flags are all usage errors (exit 2 + usage).
func TestCLIDvfstraceRejectsBadUsage(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	tests := []struct {
		name string
		args []string
		want string
	}{
		{"missing input", []string{"./cmd/dvfstrace"}, "-input or -follow is required"},
		{"input and follow", []string{"./cmd/dvfstrace", "-input", "x", "-follow", "http://y"}, "mutually exclusive"},
		{"unreadable input", []string{"./cmd/dvfstrace", "-input", "/nonexistent/x.jsonl"}, "no such file"},
		{"unknown format", []string{"./cmd/dvfstrace", "-input", "x", "-format", "xml"}, "unknown format"},
		{"unknown flag", []string{"./cmd/dvfstrace", "-frobnicate"}, "flag provided but not defined"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			out := failCLI(t, tc.args...)
			if !strings.Contains(out, tc.want) {
				t.Errorf("missing %q:\n%s", tc.want, out)
			}
			if !strings.Contains(out, "-input") {
				t.Errorf("missing usage text:\n%s", out)
			}
		})
	}
}

// The shared logging flags are validated up front in every binary.
func TestCLIRejectsBadLogFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	for _, tool := range []string{"dvfssim", "dvfsprofile", "dvfsbench", "dvfslint", "dvfsvet", "dvfsload", "dvfsd", "dvfstrace"} {
		t.Run(tool, func(t *testing.T) {
			out := failCLI(t, "./cmd/"+tool, "-log-level", "loud")
			if !strings.Contains(out, "unknown log level") {
				t.Errorf("missing log-level error:\n%s", out)
			}
		})
	}
}

// End-to-end observability round trip: simulate with -trace, then
// analyze the JSONL log with dvfstrace in both output formats.
func TestCLISimTraceIntoDvfstrace(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	log := t.TempDir() + "/dec.jsonl"
	out := runCLI(t, "./cmd/dvfssim", "-workload", "sha", "-governor", "prediction", "-jobs", "40", "-trace", log)
	if !strings.Contains(out, "decisions  "+log) {
		t.Errorf("sim did not report the decision log:\n%s", out)
	}
	out = runCLI(t, "./cmd/dvfstrace", "-input", log)
	for _, want := range []string{"events      40 (40 completed, 40 with predictions)", "workloads   sha", "level", "residual"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	out = runCLI(t, "./cmd/dvfstrace", "-input", log, "-format", "json")
	if !strings.Contains(out, `"events": 40`) || !strings.Contains(out, `"levels"`) {
		t.Errorf("json report:\n%s", out)
	}
}

func TestCLIDvfslintCleanOnSeedWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	out := runCLI(t, "./cmd/dvfslint", "-workload", "all")
	if !strings.Contains(out, "dvfslint: ok") {
		t.Errorf("expected clean lint of seed workloads:\n%s", out)
	}
}

// Acceptance check from the issue: a crafted program with an
// undefined-variable read and an uninstrumented loop must make
// dvfslint exit non-zero and name both problems.
func TestCLIDvfslintFlagsCraftedProgram(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	p := &taskir.Program{
		Name:   "crafted",
		Params: []string{"n"},
		Body: []taskir.Stmt{
			// A counter elsewhere marks the program as instrumented...
			&taskir.FeatAdd{FID: 0, Amount: taskir.Max(taskir.Var("n"), taskir.Const(0))},
			// Read of a variable no path defines.
			&taskir.Assign{Dst: "x", Expr: taskir.Var("ghost")},
			// ...which makes this loop — with no adjacent or in-body
			// counter — a coverage gap.
			&taskir.Loop{ID: 1, Count: taskir.Var("n"), Body: []taskir.Stmt{
				&taskir.Assign{Dst: "y", Expr: taskir.Const(1)},
			}},
		},
	}
	data, err := taskir.MarshalProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	file := t.TempDir() + "/crafted.json"
	if err := os.WriteFile(file, data, 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./cmd/dvfslint", "-file", file)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("dvfslint exited zero on a broken program:\n%s", out)
	}
	for _, want := range []string{"undefined-read", "uninstrumented"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// dvfsreplay failure paths: unknown format/platform, bad tolerances,
// and a replayable-events check on empty input.
func TestCLIDvfsreplayRejectsBadUsage(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	tests := []struct {
		name string
		args []string
		want string
	}{
		{"unknown format", []string{"./cmd/dvfsreplay", "-input", "x", "-format", "xml"}, "unknown format"},
		{"unknown platform", []string{"./cmd/dvfsreplay", "-input", "x", "-platform", "quantum"}, "unknown platform"},
		{"negative last", []string{"./cmd/dvfsreplay", "-input", "x", "-last", "-1"}, "-last must be non-negative"},
		{"bad tolerance", []string{"./cmd/dvfsreplay", "-input", "x", "-max-regress", "0"}, "-max-regress must be positive"},
		{"unreadable input", []string{"./cmd/dvfsreplay", "-input", "/nonexistent/x.jsonl"}, "no such file"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			out := failCLI(t, tc.args...)
			if !strings.Contains(out, tc.want) {
				t.Errorf("missing %q:\n%s", tc.want, out)
			}
		})
	}
}

// Full-binary live-telemetry round trip: boot dvfsd on an ephemeral
// port, drive traffic with dvfsload (train + predict through the
// API), tail the SSE stream with dvfstrace -follow, and fetch the
// embedded operations dashboard.
func TestCLIDvfsdLiveStreamAndDash(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool and a daemon")
	}
	dir := t.TempDir()
	bin := dir + "/dvfsd"
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/dvfsd").CombinedOutput(); err != nil {
		t.Fatalf("building dvfsd: %v\n%s", err, out)
	}

	daemon := exec.Command(bin, "-addr", "127.0.0.1:0")
	stderr, err := daemon.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		daemon.Process.Signal(syscall.SIGTERM)
		daemon.Wait()
	}()

	// -addr :0 works because dvfsd logs the resolved listener address;
	// keep draining stderr after the match so the daemon never blocks.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "addr="); i >= 0 && strings.Contains(line, "dvfsd listening") {
				addrCh <- strings.Fields(line[i+len("addr="):])[0]
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(15 * time.Second):
		t.Fatal("dvfsd never logged its listen address")
	}

	out := runCLI(t, "./cmd/dvfsload", "-addr", base, "-workload", "sha",
		"-train", "-train-jobs", "80", "-jobs", "30", "-conns", "2")
	if !strings.Contains(out, "errors 0") {
		t.Fatalf("load run saw request errors:\n%s", out)
	}

	// Tail the live stream: -last replays ring backlog, so -follow-max
	// is satisfied deterministically without racing new traffic.
	out = runCLI(t, "./cmd/dvfstrace",
		"-follow", base+"/v1/events", "-last", "20", "-follow-max", "5", "-follow-every", "2")
	for _, want := range []string{"stream ended after 5 events", "workloads   sha", "follow"} {
		if !strings.Contains(out, want) {
			t.Errorf("follow output missing %q:\n%s", want, out)
		}
	}

	// The dashboard serves a self-contained page with live charts.
	resp, err := http.Get(base + "/debug/dash")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/dash: HTTP %d\n%s", resp.StatusCode, body)
	}
	page := string(body)
	for _, want := range []string{"<svg", "Decision phases", "sha"} {
		if !strings.Contains(page, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	if strings.Contains(page, "http://") || strings.Contains(page, "<script") {
		t.Errorf("dashboard is not self-contained")
	}
}

// End-to-end replay round trip, including the stdin pipe mode the
// quickstart advertises: dvfssim -trace - | dvfsreplay.
func TestCLISimTraceIntoDvfsreplay(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	// Pipe mode: -trace - puts the JSONL on stdout, summary on stderr.
	sim := exec.Command("go", "run", "./cmd/dvfssim",
		"-workload", "sha", "-governor", "prediction", "-jobs", "50", "-trace", "-")
	jsonl, err := sim.Output()
	if err != nil {
		t.Fatalf("dvfssim -trace -: %v", err)
	}
	if len(jsonl) == 0 || jsonl[0] != '{' {
		t.Fatalf("stdout is not JSONL:\n%.200s", jsonl)
	}

	dir := t.TempDir()
	bench := dir + "/BENCH_replay.json"
	html := dir + "/report.html"
	replayCmd := exec.Command("go", "run", "./cmd/dvfsreplay",
		"-check", "-json", bench, "-html", html)
	replayCmd.Stdin = bytes.NewReader(jsonl)
	out, err := replayCmd.CombinedOutput()
	if err != nil {
		t.Fatalf("dvfsreplay: %v\n%s", err, out)
	}
	for _, want := range []string{
		"sha / prediction", "traced", "oracle", "performance",
		"margin sweep", "energy ordering check passed",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("replay output missing %q:\n%s", want, out)
		}
	}
	page, err := os.ReadFile(html)
	if err != nil || !strings.Contains(string(page), "<svg") {
		t.Errorf("HTML report missing or chartless: %v", err)
	}

	// The bench document round-trips as its own baseline.
	again := exec.Command("go", "run", "./cmd/dvfsreplay", "-baseline", bench)
	again.Stdin = bytes.NewReader(jsonl)
	out, err = again.CombinedOutput()
	if err != nil {
		t.Fatalf("baseline self-compare: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "baseline comparison passed") {
		t.Errorf("missing baseline pass message:\n%s", out)
	}

	// The shared filter flags slice the same log in both tools.
	tr := exec.Command("go", "run", "./cmd/dvfstrace", "-input", "-", "-last", "10")
	tr.Stdin = bytes.NewReader(jsonl)
	out, err = tr.CombinedOutput()
	if err != nil {
		t.Fatalf("dvfstrace -last: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "events      10 ") {
		t.Errorf("filtered report should count 10 events:\n%s", out)
	}
}

// The self-hosted Go analyzers must pass over the repo itself: the
// annotated hot paths and emit paths are the acceptance gate.
func TestCLIDvfsvetCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	out := runCLI(t, "./cmd/dvfsvet", "./...")
	if !strings.Contains(out, "dvfsvet: ok") {
		t.Errorf("expected a clean vet of the module:\n%s", out)
	}
}

// A seeded allocation in a //dvfs:hotpath function must make dvfsvet
// exit non-zero and name the finding.
func TestCLIDvfsvetFlagsSeededBug(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	dir := t.TempDir()
	src := `package bad

// hot is a marked decision path with a seeded allocation.
//
//dvfs:hotpath
func hot(n int) []int {
	return make([]int, n)
}
`
	if err := os.WriteFile(dir+"/bad.go", []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := failCLI(t, "./cmd/dvfsvet", dir)
	for _, want := range []string{"hotpathalloc", "alloc-make", "make allocates", "1 finding(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// Both lint tools share the -format json contract: a findings array
// plus counts, and the same exit codes as text mode.
func TestCLIDvfsvetJSONFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	out := runCLI(t, "./cmd/dvfsvet", "-format", "json", "./internal/vet")
	for _, want := range []string{`"findings": []`, `"count": 0`} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIDvfslintJSONFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	out := runCLI(t, "./cmd/dvfslint", "-format", "json", "-workload", "ldecode")
	for _, want := range []string{`"findings"`, `"severity": "warn"`, `"errors": 0`} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "dvfslint: ok") {
		t.Errorf("json mode must not print the text summary:\n%s", out)
	}
}

// An unknown -format is a usage error (exit 2) for both tools.
func TestCLIRejectsBadFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	for _, tool := range []string{"dvfslint", "dvfsvet"} {
		t.Run(tool, func(t *testing.T) {
			out := failCLI(t, "./cmd/"+tool, "-format", "yaml")
			if !strings.Contains(out, "unknown format") {
				t.Errorf("missing format error:\n%s", out)
			}
		})
	}
}

func TestCLIDvfsvetRejectsBadAnalyzer(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	out := failCLI(t, "./cmd/dvfsvet", "-analyzers", "speling")
	if !strings.Contains(out, "unknown analyzer") {
		t.Errorf("missing analyzer error:\n%s", out)
	}
}

// Fleet pipeline end to end: simulate a small heterogeneous fleet
// into a binary trace, analyze and convert it with dvfstrace (the
// round trip must be byte-identical), and run the fleet-wide
// counterfactual margin sweep with dvfsreplay. A second fleet run
// checks the determinism contract: same seed, same bytes.
func TestCLIFleetPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	dir := t.TempDir()
	bin := dir + "/fleet.bin"
	summary := dir + "/fleet.json"
	bench := dir + "/BENCH_fleet.json"
	fleetArgs := []string{"./cmd/dvfsfleet", "-devices", "6", "-platforms", "a7,x86",
		"-workload-mix", "sha:1", "-jobs", "8", "-seed", "5", "-progress", "0"}

	out := runCLI(t, append(fleetArgs, "-out", bin, "-summary", summary, "-bench", bench)...)
	for _, want := range []string{"fleet   6 devices, 48 jobs", "device energy J", "platform a7", "platform x86", "trace   48 events"} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet summary missing %q:\n%s", want, out)
		}
	}
	benchDoc, err := os.ReadFile(bench)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"devices_per_sec"`, `"binary_bytes_per_event"`, `"jsonl_to_binary_ratio"`} {
		if !strings.Contains(string(benchDoc), want) {
			t.Errorf("bench document missing %q:\n%s", want, benchDoc)
		}
	}

	// Determinism: a second run with the same seed writes identical bytes.
	bin2 := dir + "/fleet2.bin"
	runCLI(t, append(fleetArgs, "-out", bin2)...)
	b1, _ := os.ReadFile(bin)
	b2, _ := os.ReadFile(bin2)
	if !bytes.Equal(b1, b2) {
		t.Error("fleet trace is not deterministic for a fixed seed")
	}

	// dvfstrace reads the binary trace directly and converts it.
	out = runCLI(t, "./cmd/dvfstrace", "-input", bin)
	if !strings.Contains(out, "events      48 ") {
		t.Errorf("dvfstrace on binary trace:\n%s", out)
	}
	jsonl := dir + "/fleet.jsonl"
	runCLI(t, "./cmd/dvfstrace", "-input", bin, "-convert", jsonl)
	back := dir + "/back.bin"
	runCLI(t, "./cmd/dvfstrace", "-input", jsonl, "-convert", back, "-convert-format", "binary")
	b3, _ := os.ReadFile(back)
	if !bytes.Equal(b1, b3) {
		t.Error("binary -> jsonl -> binary conversion is not byte-identical")
	}

	// The -device filter slices one device out of the fleet trace.
	out = runCLI(t, "./cmd/dvfstrace", "-input", bin, "-device", "dev-0000003")
	if !strings.Contains(out, "events      8 ") {
		t.Errorf("-device filter should keep 8 events:\n%s", out)
	}

	// Fleet replay: auto-detected from the device IDs, margin sweep and
	// per-platform breakdown in the report.
	html := dir + "/fleet.html"
	out = runCLI(t, "./cmd/dvfsreplay", "-input", bin, "-html", html)
	for _, want := range []string{"fleet replay  6 devices", "margin", "platform a7"} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet replay output missing %q:\n%s", want, out)
		}
	}
	page, err := os.ReadFile(html)
	if err != nil || !strings.Contains(string(page), "Margin sweep") {
		t.Errorf("fleet HTML report missing or sweepless: %v", err)
	}

	// -device drops to the single-device engine on the same trace.
	out = runCLI(t, "./cmd/dvfsreplay", "-input", bin, "-device", "dev-0000003")
	if !strings.Contains(out, "sha / prediction") || strings.Contains(out, "fleet replay") {
		t.Errorf("single-device replay via -device:\n%s", out)
	}
}

// dvfsfleet and the fleet paths of dvfsreplay reject bad usage with
// exit 2 and a usage message.
func TestCLIDvfsfleetRejectsBadUsage(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	tests := []struct {
		name string
		args []string
		want string
	}{
		{"bad devices", []string{"./cmd/dvfsfleet", "-devices", "0"}, "-devices must be positive"},
		{"bad mix", []string{"./cmd/dvfsfleet", "-workload-mix", "sha:zero"}, "workload mix"},
		{"unknown mix workload", []string{"./cmd/dvfsfleet", "-workload-mix", "nope:1"}, "unknown benchmark"},
		{"bad fleet mode", []string{"./cmd/dvfsreplay", "-input", "x", "-fleet", "maybe"}, "unknown -fleet mode"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			out := failCLI(t, tc.args...)
			if !strings.Contains(out, tc.want) {
				t.Errorf("missing %q:\n%s", tc.want, out)
			}
		})
	}
}

// -check and -baseline are single-device contracts; a fleet trace
// must be rejected rather than silently mis-analyzed.
func TestCLIDvfsreplayChecksAreSingleDevice(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	dir := t.TempDir()
	bin := dir + "/fleet.bin"
	runCLI(t, "./cmd/dvfsfleet", "-devices", "2", "-jobs", "4", "-seed", "3", "-progress", "0", "-out", bin)
	out := failCLI(t, "./cmd/dvfsreplay", "-input", bin, "-check")
	if !strings.Contains(out, "single-device") {
		t.Errorf("missing single-device error:\n%s", out)
	}
}

// The telemetry-history pipeline offline: simulate decisions, replay
// them through the store via dvfstsdb -bench, and hold the bench to
// the acceptance numbers (compression ≥ 8× vs raw 16-byte points,
// zero allocations on the append hot path).
func TestCLIDvfstsdbBenchOnSimTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	log := t.TempDir() + "/dec.jsonl"
	runCLI(t, "./cmd/dvfssim", "-workload", "sha", "-governor", "prediction", "-jobs", "400", "-trace", log)
	out := runCLI(t, "./cmd/dvfstsdb", "-bench", "-trace", log, "-samples", "5000")
	var res struct {
		Source       string  `json:"source"`
		Samples      int64   `json:"samples"`
		Compression  float64 `json:"compression_vs_raw16"`
		AppendNs     float64 `json:"append_ns_per_op"`
		AppendAllocs float64 `json:"append_allocs_per_op"`
		QueryMs      float64 `json:"query_1h_1s_ms"`
		QueryPoints  int     `json:"query_points"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("bench output is not JSON: %v\n%s", err, out)
	}
	if res.Source != "trace" || res.Samples == 0 {
		t.Fatalf("bench ingested nothing: %+v", res)
	}
	if res.Compression < 8 {
		t.Errorf("compression %.2fx < 8x", res.Compression)
	}
	if res.AppendAllocs != 0 {
		t.Errorf("append allocated %.4f/op", res.AppendAllocs)
	}
	if res.QueryPoints != 3600 || res.QueryMs <= 0 || res.QueryMs > 100 {
		t.Errorf("1h/1s query: %d points in %.3fms", res.QueryPoints, res.QueryMs)
	}
}

// Crash-recovery acceptance: boot dvfsd with a store dir, drive load,
// SIGKILL it mid-write, then inspect/query/compact the dir offline.
// The recovered store must hold history and survive compaction.
func TestCLIDvfstsdbRecoversKilledDaemonStore(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool and a daemon")
	}
	dir := t.TempDir()
	bin := dir + "/dvfsd"
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/dvfsd").CombinedOutput(); err != nil {
		t.Fatalf("building dvfsd: %v\n%s", err, out)
	}
	storeDir := dir + "/tsdb"

	daemon := exec.Command(bin, "-addr", "127.0.0.1:0",
		"-tsdb-scrape", "100ms", "-tsdb-dir", storeDir, "-tsdb-block", "1s")
	stderr, err := daemon.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		daemon.Process.Kill()
		daemon.Wait()
	}()
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "addr="); i >= 0 && strings.Contains(line, "dvfsd listening") {
				addrCh <- strings.Fields(line[i+len("addr="):])[0]
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(15 * time.Second):
		t.Fatal("dvfsd never logged its listen address")
	}

	runCLI(t, "./cmd/dvfsload", "-addr", base, "-workload", "sha",
		"-train", "-train-jobs", "60", "-jobs", "40", "-conns", "2")
	// Let a few 1s blocks seal, then kill without ceremony: only
	// fsynced records may survive, and they must be enough.
	time.Sleep(3500 * time.Millisecond)
	daemon.Process.Kill()
	daemon.Wait()

	out := runCLI(t, "./cmd/dvfstsdb", "-dir", storeDir)
	if !strings.Contains(out, "go_goroutines") || strings.Contains(out, "samples    0") {
		t.Fatalf("recovered store is empty or missing runtime metrics:\n%s", out)
	}

	out = runCLI(t, "./cmd/dvfstsdb", "-dir", storeDir,
		"-query", "dvfsd_requests_total", "-labels", "route=predict", "-agg", "rate", "-step", "1s")
	if !strings.Contains(out, "route=predict") {
		t.Fatalf("query found no request history:\n%s", out)
	}

	out = runCLI(t, "./cmd/dvfstsdb", "-dir", storeDir, "-compact", "-keep", "24h")
	if !strings.Contains(out, "compacted") {
		t.Fatalf("compact failed:\n%s", out)
	}
	// Everything inside the keep horizon survives compaction.
	out = runCLI(t, "./cmd/dvfstsdb", "-dir", storeDir, "-json")
	var insp struct {
		Stats struct {
			Samples int64 `json:"samples"`
		} `json:"stats"`
	}
	if err := json.Unmarshal([]byte(out), &insp); err != nil {
		t.Fatalf("inspect -json: %v\n%s", err, out)
	}
	if insp.Stats.Samples == 0 {
		t.Fatalf("compaction emptied the store:\n%s", out)
	}
}

// dvfstsdb usage errors: a missing dir, bad aggregation, and bad
// times are all user errors, not panics.
func TestCLIDvfstsdbRejectsBadUsage(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	out := failCLI(t, "./cmd/dvfstsdb", "-dir", "/nonexistent-tsdb-dir")
	if !strings.Contains(out, "nonexistent-tsdb-dir") {
		t.Errorf("missing-dir error:\n%s", out)
	}
	dir := t.TempDir()
	out = failCLI(t, "./cmd/dvfstsdb", "-dir", dir, "-query", "m", "-agg", "median")
	if !strings.Contains(out, "unknown aggregation") {
		t.Errorf("bad agg error:\n%s", out)
	}
	out = failCLI(t, "./cmd/dvfstsdb", "-dir", dir, "-query", "m", "-from", "banana")
	if !strings.Contains(out, "banana") {
		t.Errorf("bad time error:\n%s", out)
	}
}

// TestCLIDvfstraceFollowReconnects tails an SSE server that drops the
// connection every few events: the follower must reconnect with
// Last-Event-ID, resume without double-counting, and report every
// event exactly once.
func TestCLIDvfstraceFollowReconnects(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	const total = 9
	var mu sync.Mutex
	var resumeIDs []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		resumeIDs = append(resumeIDs, r.Header.Get("Last-Event-ID"))
		id := r.Header.Get("Last-Event-ID")
		mu.Unlock()
		after := uint64(0)
		if id != "" {
			after, _ = strconv.ParseUint(id, 10, 64)
		}
		w.Header().Set("Content-Type", "text/event-stream")
		sent := 0
		for seq := after + 1; seq <= total; seq++ {
			obs.WriteSSE(w, &obs.DecisionEvent{
				Seq: seq, Workload: "sha", Governor: "serve",
				TimeSec: float64(seq) * 0.01, Level: 3,
				Predicted: true, PredictedExecSec: 0.001,
			})
			sent++
			if sent == 3 {
				return // drop mid-stream; the client should come back
			}
		}
	}))
	defer srv.Close()

	out := runCLI(t, "./cmd/dvfstrace",
		"-follow", srv.URL+"/v1/events",
		"-follow-max", "9", "-follow-every", "0",
		"-follow-backoff", "1ms", "-format", "json")
	if !strings.Contains(out, "reconnecting") {
		t.Errorf("no reconnect notice on stderr:\n%s", out)
	}
	if !strings.Contains(out, "stream ended after 9 events") {
		t.Errorf("events dropped or doubled across reconnects:\n%s", out)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(resumeIDs) != 3 || resumeIDs[0] != "" || resumeIDs[1] != "3" || resumeIDs[2] != "6" {
		t.Errorf("Last-Event-ID per connection = %q, want [\"\" 3 6]", resumeIDs)
	}
}

// TestCLIDvfstraceFollowNoRetryExitsOnDrop pins -follow-retries 0: the
// old single-shot behavior stays available.
func TestCLIDvfstraceFollowNoRetryExitsOnDrop(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	conns := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conns++
		w.Header().Set("Content-Type", "text/event-stream")
		obs.WriteSSE(w, &obs.DecisionEvent{Seq: 1, Workload: "sha"})
	}))
	defer srv.Close()
	out := runCLI(t, "./cmd/dvfstrace",
		"-follow", srv.URL+"/v1/events", "-follow-retries", "0", "-follow-every", "0")
	if conns != 1 {
		t.Errorf("connections = %d, want 1 with retries disabled", conns)
	}
	if strings.Contains(out, "reconnecting") {
		t.Errorf("unexpected reconnect with -follow-retries 0:\n%s", out)
	}
}
