package repro_test

import (
	"os/exec"
	"strings"
	"testing"
)

// CLI smoke tests: build-and-run each command the way a user would.
// They exercise flag parsing, the experiment dispatcher, and model
// save/load end to end.

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCLIDvfsbenchSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	out := runCLI(t, "./cmd/dvfsbench", "-exp", "fig11")
	if !strings.Contains(out, "95th-percentile DVFS switching times") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestCLIDvfsbenchRejectsUnknown(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	cmd := exec.Command("go", "run", "./cmd/dvfsbench", "-exp", "fig99")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("unknown experiment accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "unknown experiment") {
		t.Errorf("missing error message:\n%s", out)
	}
}

func TestCLIProfileSaveSimLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	model := t.TempDir() + "/m.json"
	out := runCLI(t, "./cmd/dvfsprofile", "-workload", "sha", "-o", model)
	if !strings.Contains(out, "model written") {
		t.Errorf("profile output:\n%s", out)
	}
	out = runCLI(t, "./cmd/dvfssim", "-workload", "sha", "-model", model, "-jobs", "50")
	if !strings.Contains(out, "governor   prediction") || !strings.Contains(out, "misses") {
		t.Errorf("sim output:\n%s", out)
	}
}
