// Command dvfsbench regenerates the paper's tables and figures.
//
// Usage:
//
//	dvfsbench [-seed N] [-exp <list>|all]
//
// Experiments: table2, fig2, fig3, fig9, fig11, fig15, fig16, fig17,
// fig18, fig19, fig20, fig21 (the paper's evaluation), xplat (§4.2),
// static (§2.2), a15 (§5.1), and the extension studies ablations,
// placement, batch, hetero, hints, overheadcap, multitask, quadratic,
// baselines. Each prints the text equivalent of the corresponding
// table or figure; -exp all (the default) runs everything in paper
// order. Results are deterministic in the seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/render"
	"repro/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed (results are deterministic per seed)")
	exp := flag.String("exp", "all", "experiment to run (comma separated), or 'all'")
	bench := flag.String("workload", "", "restrict fig16 to one benchmark (default: all)")
	logFlags := obs.RegisterLogFlags(flag.CommandLine)
	flag.Parse()

	if _, err := logFlags.Logger(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "dvfsbench:", err)
		flag.Usage()
		os.Exit(2)
	}
	s := experiments.NewSuite(*seed)
	wanted := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		wanted[strings.TrimSpace(e)] = true
	}
	all := wanted["all"]
	order := []string{"table2", "fig2", "fig3", "fig9", "fig11", "fig15",
		"fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "xplat", "ablations", "placement", "batch", "hetero", "hints", "overheadcap", "multitask", "quadratic", "baselines", "static", "a15"}
	known := map[string]bool{}
	for _, o := range order {
		known[o] = true
	}
	if !all {
		for e := range wanted {
			if !known[e] {
				fmt.Fprintf(os.Stderr, "dvfsbench: unknown experiment %q (have: all, %s)\n",
					e, strings.Join(order, ", "))
				os.Exit(2)
			}
		}
	}
	for _, e := range order {
		if !all && !wanted[e] {
			continue
		}
		if err := runExp(s, e, *bench); err != nil {
			fmt.Fprintf(os.Stderr, "dvfsbench: %s: %v\n", e, err)
			os.Exit(1)
		}
	}
}

func runExp(s *experiments.Suite, name, bench string) error {
	switch name {
	case "table2":
		rows, err := s.RunTable2()
		if err != nil {
			return err
		}
		fmt.Println(render.Table2(rows))
	case "fig2":
		series, err := s.RunFig2(250)
		if err != nil {
			return err
		}
		fmt.Println(render.Series("Fig 2: ldecode per-frame execution time [ms] at max frequency", series.TimeMS, 100, 12))
	case "fig3":
		series, err := s.RunFig3(250)
		if err != nil {
			return err
		}
		fmt.Println(render.Fig3(series, 12))
	case "fig9":
		pts, err := s.RunFig9()
		if err != nil {
			return err
		}
		fmt.Println(render.Fig9(pts))
	case "fig11":
		fmt.Println(render.Fig11(s.RunFig11()))
	case "fig15":
		rows, err := s.RunFig15()
		if err != nil {
			return err
		}
		fmt.Println(render.Fig15(rows))
	case "fig16":
		ws := workload.All()
		if bench != "" {
			w, err := workload.ByName(bench)
			if err != nil {
				return err
			}
			ws = []*workload.Workload{w}
		}
		for _, w := range ws {
			sw, err := s.RunFig16(w)
			if err != nil {
				return err
			}
			fmt.Println(render.Fig16(sw))
		}
	case "fig17":
		rows, err := s.RunFig17()
		if err != nil {
			return err
		}
		fmt.Println(render.Fig17(rows))
	case "fig18":
		rows, err := s.RunFig18()
		if err != nil {
			return err
		}
		fmt.Println(render.Fig18(rows))
	case "fig19":
		rows, err := s.RunFig19()
		if err != nil {
			return err
		}
		sphinx, err := s.RunFig19Pocketsphinx()
		if err != nil {
			return err
		}
		fmt.Println(render.Fig19(rows, sphinx))
	case "fig20":
		pts, err := s.RunFig20()
		if err != nil {
			return err
		}
		fmt.Println(render.Fig20(pts))
	case "fig21":
		rows, err := s.RunFig21()
		if err != nil {
			return err
		}
		fmt.Println(render.Fig21(rows))
	case "xplat":
		rows, err := s.RunXPlat()
		if err != nil {
			return err
		}
		fmt.Println(render.XPlat(rows))
	case "ablations":
		mpts, err := s.RunAblationMargin()
		if err != nil {
			return err
		}
		fmt.Println(render.AblationMargin(mpts))
		spts, err := s.RunAblationSwitchTable()
		if err != nil {
			return err
		}
		fmt.Println(render.AblationSwitchTable(spts))
		srows, err := s.RunAblationSlice()
		if err != nil {
			return err
		}
		fmt.Println(render.AblationSlice(srows))
	case "placement":
		rows, err := s.RunPlacement()
		if err != nil {
			return err
		}
		fmt.Println(render.Placement(rows))
	case "batch":
		pts, err := s.RunBatch()
		if err != nil {
			return err
		}
		fmt.Println(render.Batch(pts))
	case "hetero":
		pts, err := s.RunHetero()
		if err != nil {
			return err
		}
		fmt.Println(render.Hetero(pts))
	case "hints":
		rows, err := s.RunHints()
		if err != nil {
			return err
		}
		fmt.Println(render.Hints(rows))
	case "overheadcap":
		pts, err := s.RunOverheadCap()
		if err != nil {
			return err
		}
		fmt.Println(render.OverheadCap(pts))
	case "multitask":
		rows, err := s.RunMultiTask()
		if err != nil {
			return err
		}
		fmt.Println(render.MultiTask(rows))
	case "quadratic":
		rows, err := s.RunQuadratic()
		if err != nil {
			return err
		}
		fmt.Println(render.Quadratic(rows))
	case "baselines":
		for _, wl := range []string{"ldecode", "sha"} {
			rows, err := s.RunBaselines(wl)
			if err != nil {
				return err
			}
			fmt.Println(render.Baselines(wl, rows))
		}
	case "static":
		rows, err := s.RunStatic()
		if err != nil {
			return err
		}
		fmt.Println(render.Static(rows))
	case "a15":
		rows, err := s.RunA15Trends()
		if err != nil {
			return err
		}
		fmt.Println(render.A15(rows))
	}
	return nil
}
