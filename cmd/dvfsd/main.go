// Command dvfsd is the model-serving daemon: it owns a registry of
// trained DVFS controllers (the §4.2 "distribute the trained model"
// artifacts) and answers prediction queries over HTTP — the online
// half of an offline-train / online-query service.
//
// Usage:
//
//	dvfsd -addr 127.0.0.1:8090 -data ./models [-platform a7]
//	      [-workers 2] [-queue 16] [-max-inflight 256] [-timeout 30s]
//
// Endpoints: POST /v1/models/{name} (train, or ?mode=upload),
// GET /v1/models, POST /v1/predict, POST /v1/predict/batch,
// GET /v1/events (live decision stream as Server-Sent Events,
// filterable with ?workload=&since=&last=; dvfstrace -follow tails
// it), POST /v1/fleet/ingest (fleet decision traces, JSONL or binary;
// feeds per-device health scoring and keyed fleet SLO burn), GET
// /v1/fleet (the fleet snapshot as JSON), GET /v1/query (range queries
// over the embedded telemetry history; see the -tsdb-* flags), GET
// /v1/alerts (live alert state and the incident history; see -alerts,
// -rules, -incident-log, -alert-webhook, -energy-budget), GET
// /healthz, GET /metrics
// (Prometheus text format, including the fleet gauges), and — unless
// -debug=false — GET /debug/decisions (recent decision events as
// JSON, same filter params), GET /debug/slo (per-workload
// deadline-miss burn rates), GET /debug/dash (self-contained
// auto-refreshing HTML operations dashboard), GET /debug/fleet (the
// fleet health dashboard), GET /debug/alerts (the incident timeline)
// plus the net/http/pprof handlers under /debug/pprof/.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener drains
// in-flight requests, then the registry drains in-flight builds.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/alert"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/tsdb"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8090", "listen address")
	data := flag.String("data", "", "model persistence directory (empty = in-memory only)")
	platName := flag.String("platform", "a7", "platform model: a7, x86, biglittle")
	workers := flag.Int("workers", 2, "concurrent model builds")
	queue := flag.Int("queue", 16, "queued model builds before 503")
	maxInflight := flag.Int("max-inflight", 256, "concurrent requests before shedding with 429")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	seed := flag.Int64("seed", 1, "seed for switch-table measurement")
	preload := flag.String("preload", "", "comma-separated workloads to train at startup")
	tracePath := flag.String("trace", "", "append decision events as JSONL to this path (dvfstrace reads it)")
	debug := flag.Bool("debug", true, "serve /debug/decisions and /debug/pprof/")
	sloTarget := flag.Float64("slo-target", 0.01, "deadline-miss SLO target per workload (0 disables burn-rate tracking)")
	sloFast := flag.Int("slo-fast", 128, "fast burn-rate window in jobs")
	sloSlow := flag.Int("slo-slow", 2048, "slow burn-rate window in jobs")
	streamQueue := flag.Int("stream-queue", 256, "queued events per /v1/events subscriber before dropping (0 disables streaming)")
	spanEvery := flag.Int("span-every", 1, "capture a per-phase span ledger on every Nth decision (1 = all)")
	fleetOn := flag.Bool("fleet", true, "serve fleet observability: POST /v1/fleet/ingest, GET /v1/fleet, and /debug/fleet")
	fleetTopK := flag.Int("fleet-topk", 10, "worst devices surfaced by the fleet tracker")
	fleetMaxIngest := flag.Int64("fleet-max-ingest", 0, "byte limit for /v1/fleet/ingest bodies (0 = 256 MiB)")
	tsdbScrape := flag.Duration("tsdb-scrape", 5*time.Second, "telemetry history scrape interval (0 disables the embedded time-series store)")
	tsdbDir := flag.String("tsdb-dir", "", "telemetry history directory (empty = in-memory only; dvfstsdb inspects it offline)")
	tsdbRetention := flag.Duration("tsdb-retention", 6*time.Hour, "telemetry history retention (negative = keep forever)")
	tsdbBlock := flag.Duration("tsdb-block", 10*time.Minute, "telemetry history block duration (crash-loss bound per series)")
	alertsOn := flag.Bool("alerts", true, "evaluate alert rules on each telemetry scrape tick (needs -tsdb-scrape > 0)")
	rulesPath := flag.String("rules", "", "alert rules file (JSON), merged with the built-in rules")
	incidentLog := flag.String("incident-log", "", "append-only incident journal, replayed on restart so firing alerts survive a crash")
	alertWebhook := flag.String("alert-webhook", "", "POST firing/resolved alert transitions to this URL (retried with backoff)")
	energyBudget := flag.Float64("energy-budget", 0, "average-power budget in watts for energy-burn tracking (0 disables)")
	logFlags := obs.RegisterLogFlags(flag.CommandLine)
	flag.Parse()

	log, err := logFlags.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvfsd:", err)
		flag.Usage()
		os.Exit(2)
	}
	if *sloTarget < 0 || *sloTarget >= 1 {
		fmt.Fprintln(os.Stderr, "dvfsd: -slo-target must be in [0, 1)")
		flag.Usage()
		os.Exit(2)
	}
	if *spanEvery < 0 {
		fmt.Fprintln(os.Stderr, "dvfsd: -span-every must be >= 0")
		flag.Usage()
		os.Exit(2)
	}
	if *fleetTopK < 0 || *fleetMaxIngest < 0 {
		fmt.Fprintln(os.Stderr, "dvfsd: -fleet-topk and -fleet-max-ingest must be non-negative")
		flag.Usage()
		os.Exit(2)
	}
	if *tsdbScrape < 0 || *tsdbBlock < 0 {
		fmt.Fprintln(os.Stderr, "dvfsd: -tsdb-scrape and -tsdb-block must be non-negative")
		flag.Usage()
		os.Exit(2)
	}
	if *energyBudget < 0 {
		fmt.Fprintln(os.Stderr, "dvfsd: -energy-budget must be non-negative")
		flag.Usage()
		os.Exit(2)
	}
	if (*rulesPath != "" || *incidentLog != "" || *alertWebhook != "") && (!*alertsOn || *tsdbScrape == 0) {
		fmt.Fprintln(os.Stderr, "dvfsd: -rules, -incident-log, and -alert-webhook need -alerts and -tsdb-scrape > 0 (rules evaluate over the telemetry store)")
		flag.Usage()
		os.Exit(2)
	}
	fleetCfg := fleetSettings{on: *fleetOn, topK: *fleetTopK, maxIngest: *fleetMaxIngest}
	tsdbCfg := tsdbSettings{scrape: *tsdbScrape, dir: *tsdbDir, retention: *tsdbRetention, block: *tsdbBlock}
	alertCfg := alertSettings{on: *alertsOn, rules: *rulesPath, incidentLog: *incidentLog, webhook: *alertWebhook, budgetW: *energyBudget}
	if err := run(*addr, *data, *platName, *workers, *queue, *maxInflight, *timeout, *seed, *preload, *tracePath, *debug, *sloTarget, *sloFast, *sloSlow, *streamQueue, *spanEvery, fleetCfg, tsdbCfg, alertCfg, log); err != nil {
		fmt.Fprintln(os.Stderr, "dvfsd:", err)
		if errors.Is(err, errUsage) {
			flag.Usage()
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// errUsage marks validation errors that warrant the usage text.
var errUsage = errors.New("invalid usage")

// fleetSettings groups the fleet-observability flags.
type fleetSettings struct {
	on        bool
	topK      int
	maxIngest int64
}

// tsdbSettings groups the telemetry-history flags.
type tsdbSettings struct {
	scrape    time.Duration // 0 disables the store entirely
	dir       string        // "" = memory-only
	retention time.Duration
	block     time.Duration
}

// alertSettings groups the alerting and energy-metering flags.
type alertSettings struct {
	on          bool
	rules       string  // "" = built-ins only
	incidentLog string  // "" = no crash-safe journal
	webhook     string  // "" = slog only
	budgetW     float64 // 0 = no burn tracking
}

func run(addr, data, platName string, workers, queue, maxInflight int, timeout time.Duration, seed int64, preload, tracePath string, debug bool, sloTarget float64, sloFast, sloSlow, streamQueue, spanEvery int, fleetCfg fleetSettings, tsdbCfg tsdbSettings, alertCfg alertSettings, log *slog.Logger) error {
	// Validate everything up front: a daemon must not come up half
	// configured.
	plat, err := platform.ByName(platName)
	if err != nil {
		return fmt.Errorf("%w: %v", errUsage, err)
	}
	var preloads []string
	if preload != "" {
		for _, name := range strings.Split(preload, ",") {
			name = strings.TrimSpace(name)
			if _, err := workload.ByName(name); err != nil {
				return fmt.Errorf("%w: -preload: %v", errUsage, err)
			}
			preloads = append(preloads, name)
		}
	}

	metrics := serve.NewMetrics()

	// Decision tracing: the ring always backs /debug/decisions; a
	// JSONL sink is attached when -trace names a file. The drift
	// monitor watches completed events (residuals arrive only from
	// co-located controllers; served predictions run client-side) and
	// flips dvfsd_model_stale on the shared /metrics page.
	var sinks []obs.Sink
	if tracePath != "" {
		f, err := os.OpenFile(tracePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("opening -trace file: %w", err)
		}
		defer f.Close()
		sinks = append(sinks, obs.NewJSONLSink(f))
	}
	// Live streaming: the broadcaster is both a tracer sink (every
	// emitted decision fans out) and the server's /v1/events source
	// (each subscriber gets a bounded queue; slow readers drop rather
	// than block the decision path).
	var stream *obs.Broadcaster
	if streamQueue > 0 {
		stream = obs.NewBroadcaster(obs.BroadcasterOptions{
			QueueSize: streamQueue,
			Dropped: metrics.Registry().Counter("obs_stream_dropped_total",
				"Decision events dropped because a /v1/events subscriber fell behind."),
		})
		sinks = append(sinks, stream)
	}
	// Online energy metering: every traced decision accrues modeled
	// joules per (workload, device) stream — the live counterpart of
	// dvfsreplay's offline reconstruction. The meter is a tracer sink
	// for this daemon's own decisions; fleet-ingested events reach it
	// through the server.
	energy := alert.NewEnergyMeter(alert.EnergyConfig{
		Platform: plat,
		BudgetW:  alertCfg.budgetW,
	})
	sinks = append(sinks, energy)
	// SLO burn-rate tracking: every completed decision event feeds a
	// per-workload deadline-miss SLO with fast/slow burn-rate windows;
	// burn rates and the alert bit land on the shared /metrics page and
	// GET /debug/slo, and the drift monitor's stale warnings carry the
	// current burn rates for correlation.
	var slo *obs.SLOTracker
	if sloTarget > 0 {
		slo = obs.NewSLOTracker(obs.SLOConfig{
			Target:     sloTarget,
			FastWindow: sloFast,
			SlowWindow: sloSlow,
			Log:        log,
			BurnGauge: metrics.Registry().GaugeVec("dvfsd_slo_burn_rate",
				"Deadline-miss rate over a recent window divided by the SLO target.", "workload", "window"),
			AlertGauge: metrics.Registry().GaugeVec("dvfsd_slo_alert",
				"1 while a workload's fast and slow burn rates both exceed their thresholds.", "workload"),
		})
	}
	drift := obs.NewDriftMonitor(obs.DriftConfig{
		Log: log,
		StaleGauge: metrics.Registry().GaugeVec("dvfsd_model_stale",
			"1 when a model's recent under-prediction rate exceeds the trained quantile.", "workload"),
		SLO: slo,
	})
	tracer := obs.NewTracer(obs.TracerOptions{Sinks: sinks, Drift: drift, SLO: slo})
	defer func() {
		if err := tracer.Close(); err != nil {
			log.Error("closing decision trace", "err", err)
		}
	}()

	reg, err := serve.NewRegistry(serve.RegistryOptions{
		Dir:        data,
		Plat:       plat,
		Workers:    workers,
		QueueDepth: queue,
		Seed:       seed,
		Log:        log,
		Observe: func(name string, sec float64, err error) {
			metrics.ObserveBuild(sec, err)
		},
	})
	if err != nil {
		return err
	}
	// Fleet observability: ingested device traces are a separate
	// population from this daemon's own serving, so they get their own
	// tracker and their own keyed SLO (fleet / platform:* / workload:*)
	// rather than feeding the per-workload serving SLO above.
	var fleetTracker *obs.FleetTracker
	var fleetSLO *obs.SLOTracker
	if fleetCfg.on {
		fleetTracker = obs.NewFleetTracker(obs.FleetConfig{
			TopK:         fleetCfg.topK,
			EnergyPerJob: trace.EnergyEstimator(),
		})
		if sloTarget > 0 {
			fleetSLO = obs.NewSLOTracker(obs.SLOConfig{
				Target:  sloTarget,
				MaxKeys: 64,
				Log:     log,
			})
		}
	}

	// Telemetry history: an embedded Gorilla-compressed store scraped
	// from the shared registry. Opened before the server so GET
	// /v1/query and the dashboard history windows can reach it; the
	// scrape loop starts after the server exists because each tick also
	// refreshes the sync-on-read gauges.
	var store *tsdb.Store
	if tsdbCfg.scrape > 0 {
		store, err = tsdb.Open(tsdb.Options{
			Dir:       tsdbCfg.dir,
			BlockDur:  tsdbCfg.block,
			Retention: tsdbCfg.retention,
		})
		if err != nil {
			reg.Close()
			return fmt.Errorf("opening telemetry store: %w", err)
		}
		defer func() {
			if err := store.Close(); err != nil {
				log.Error("closing telemetry store", "err", err)
			}
		}()
	}

	// Declarative alerting: rules (built-ins plus an optional -rules
	// file) evaluate range queries over the telemetry store at the end
	// of every scrape tick, driving a pending→firing→resolved state
	// machine with notifications and a crash-safe incident journal.
	var engine *alert.Engine
	if store != nil && alertCfg.on {
		rules := alert.BuiltinRules(alert.BuiltinOptions{
			Scrape:       tsdbCfg.scrape,
			EnergyBudget: alertCfg.budgetW > 0,
		})
		if alertCfg.rules != "" {
			extra, err := alert.LoadRules(alertCfg.rules)
			if err != nil {
				reg.Close()
				return fmt.Errorf("%w: -rules: %v", errUsage, err)
			}
			rules = append(rules, extra...)
		}
		notifiers := []alert.Notifier{&alert.SlogNotifier{Log: log}}
		if alertCfg.webhook != "" {
			notifiers = append(notifiers, alert.NewWebhookNotifier(alertCfg.webhook, alert.WebhookOptions{Log: log}))
		}
		engine, err = alert.New(alert.Config{
			Querier:     store,
			Rules:       rules,
			Notifiers:   notifiers,
			IncidentLog: alertCfg.incidentLog,
			Log:         log,
		})
		if err != nil {
			reg.Close()
			return fmt.Errorf("alert engine: %w", err)
		}
		defer func() {
			if err := engine.Close(); err != nil {
				log.Error("closing alert engine", "err", err)
			}
		}()
		log.Info("alerting enabled", "rules", len(rules),
			"incident_log", alertCfg.incidentLog, "webhook", alertCfg.webhook != "")
	}

	srv := serve.NewServer(reg, serve.ServerOptions{
		Log:            log,
		Metrics:        metrics,
		RequestTimeout: timeout,
		MaxInflight:    maxInflight,
		Tracer:         tracer,
		EnableDebug:    debug,
		SLO:            slo,
		Stream:         stream,
		SpanEvery:      spanEvery,
		Fleet:          fleetTracker,
		FleetSLO:       fleetSLO,
		MaxIngestBytes: fleetCfg.maxIngest,
		History:        store,
		Alerts:         engine,
		Energy:         energy,
		Drift:          drift,
	})
	if store != nil {
		runtimeC := obs.NewRuntimeCollector(metrics.Registry())
		scraper := tsdb.NewScraper(store, metrics.Registry(), tsdbCfg.scrape, func() {
			runtimeC.Collect()
			srv.SyncGauges()
		})
		if engine != nil {
			// Rules evaluate after the tick's samples land, so each
			// evaluation sees the state it just scraped.
			scraper.After = engine.Eval
		}
		scrapeCtx, scrapeStop := context.WithCancel(context.Background())
		scrapeDone := make(chan struct{})
		go func() {
			scraper.Run(scrapeCtx)
			close(scrapeDone)
		}()
		// Stop the scrape loop before the deferred store.Close seals the
		// heads, so no tick lands on a closed disk log.
		defer func() {
			scrapeStop()
			<-scrapeDone
		}()
		log.Info("telemetry history enabled", "interval", tsdbCfg.scrape.String(),
			"dir", tsdbCfg.dir, "retention", tsdbCfg.retention.String())
	}
	for _, name := range preloads {
		if _, _, err := reg.Train(name, serve.TrainConfig{Seed: seed}); err != nil {
			return fmt.Errorf("preloading %s: %w", name, err)
		}
		log.Info("preload queued", "name", name)
	}

	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}
	// Listen before logging so -addr :0 reports the resolved port —
	// tests (and scripts) parse it from the startup line.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		reg.Close()
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Info("dvfsd listening", "addr", ln.Addr().String(), "platform", plat.Name, "data", data)
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	select {
	case err := <-errCh:
		reg.Close()
		return err
	case <-ctx.Done():
	}
	log.Info("shutting down: draining requests and builds")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		log.Error("listener shutdown", "err", err)
	}
	reg.Close()
	log.Info("dvfsd stopped")
	return nil
}
