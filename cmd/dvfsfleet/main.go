// Command dvfsfleet simulates a heterogeneous fleet of devices — each
// with its own platform model, workload, phase offset, and seeded
// randomness — and aggregates per-device energy and deadline-miss
// distributions fleet-wide. It answers the population-scale question
// the single-device dvfssim cannot: "across a million devices running
// this governor, what does the p99 device spend?"
//
// Usage:
//
//	dvfsfleet -devices 1000 -platforms a7,x86 -workload-mix sha:3,rijndael:1
//	dvfsfleet -devices 100000 -governor prediction -seed 42
//	dvfsfleet -devices 1000 -out fleet.bin          # binary decision trace
//	dvfsfleet -devices 1000 -out - | dvfsreplay -input -
//
// -out writes every device's decision events as a compact binary trace
// (the length-prefixed container dvfstrace and dvfsreplay sniff by
// magic; "-" streams it to stdout and moves the summary to stderr).
// Without -out the fleet runs aggregate-only — no event
// materialization — which is the fast path for very large fleets.
//
// The run is deterministic for a fixed -seed regardless of -workers:
// device seeds derive from the fleet seed by index, and results commit
// in device order, so aggregates are bit-stable and trace bytes are
// identical across worker counts.
//
// -topk N scores per-device health during the run (miss/drift/energy
// EWMAs through the shared FleetTracker) and appends the top-N worst
// devices with attribution to the summary.
//
// -summary writes the machine-readable fleet result as JSON; -bench
// writes a BENCH-style JSON document (devices/sec, bytes/event for the
// binary encoding vs JSONL) for CI trend tracking.
//
// Exit status: 0 on success, 2 on usage errors, 1 on run failures.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/trace"
)

func main() {
	devices := flag.Int("devices", 1000, "fleet size")
	platforms := flag.String("platforms", "a7", "comma-separated platform models devices cycle through")
	mixArg := flag.String("workload-mix", "sha", "workload mix as name:weight pairs, e.g. sha:3,rijndael:1")
	governor := flag.String("governor", "prediction", "per-device governor")
	jobs := flag.Int("jobs", 0, "jobs per device (0 = fleet default)")
	budget := flag.Float64("budget", 0, "per-job deadline budget in seconds (0 = workload default)")
	seed := flag.Int64("seed", 1, "fleet seed; fixes every device's seed and phase offset")
	workers := flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
	out := flag.String("out", "", "write the fleet decision trace (binary) to this path (- for stdout)")
	summary := flag.String("summary", "", "write the fleet result as JSON to this path")
	bench := flag.String("bench", "", "write a BENCH-style JSON document to this path")
	topk := flag.Int("topk", 0, "score device health during the run and print the top-N worst devices (0 disables)")
	progressEvery := flag.Int("progress", 10, "progress lines per run on stderr (0 disables)")
	logFlags := obs.RegisterLogFlags(flag.CommandLine)
	flag.Parse()

	usageErr := func(err error) {
		fmt.Fprintln(os.Stderr, "dvfsfleet:", err)
		flag.Usage()
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "dvfsfleet:", err)
		os.Exit(1)
	}
	if _, err := logFlags.Logger(os.Stderr); err != nil {
		usageErr(err)
	}
	if *devices <= 0 {
		usageErr(fmt.Errorf("-devices must be positive"))
	}
	if *progressEvery < 0 {
		usageErr(fmt.Errorf("-progress must be non-negative"))
	}
	if *topk < 0 {
		usageErr(fmt.Errorf("-topk must be non-negative"))
	}
	mix, err := fleet.ParseMix(*mixArg)
	if err != nil {
		usageErr(err)
	}

	cfg := fleet.Config{
		Devices:   *devices,
		Platforms: splitList(*platforms),
		Mix:       mix,
		Governor:  *governor,
		Jobs:      *jobs,
		BudgetSec: *budget,
		Seed:      *seed,
		Workers:   *workers,
	}

	// The text summary moves to stderr when the trace streams to
	// stdout, mirroring dvfssim -trace -.
	sumOut := io.Writer(os.Stdout)

	var traceFile *os.File
	var binCount *countWriter
	var jsonlCount *countWriter
	var sinks []obs.Sink
	if *out != "" {
		w := io.Writer(os.Stdout)
		if *out == "-" {
			sumOut = os.Stderr
		} else {
			f, err := os.Create(*out)
			if err != nil {
				usageErr(err)
			}
			traceFile = f
			w = f
		}
		binCount = &countWriter{w: w}
		sinks = append(sinks, trace.NewBinaryWriter(binCount))
	} else if *bench != "" {
		// Bench without a trace path still measures the encodings
		// against a discarded stream.
		binCount = &countWriter{w: io.Discard}
		sinks = append(sinks, trace.NewBinaryWriter(binCount))
	}
	if *bench != "" {
		jsonlCount = &countWriter{w: io.Discard}
		sinks = append(sinks, obs.NewJSONLSink(jsonlCount))
	}
	var health *obs.FleetTracker
	if *topk > 0 {
		// Health scoring rides the same event stream as the trace
		// writers — a tee sink, not a second pass over the run.
		health = obs.NewFleetTracker(obs.FleetConfig{
			TopK:         *topk,
			EnergyPerJob: trace.EnergyEstimator(),
		})
		sinks = append(sinks, fleetSink{health})
	}
	switch len(sinks) {
	case 0:
	case 1:
		cfg.Sink = sinks[0]
	default:
		cfg.Sink = teeSink(sinks)
	}

	if *progressEvery > 0 {
		step := *devices / *progressEvery
		if step < 1 {
			step = 1
		}
		start := time.Now()
		cfg.Progress = func(done, total int) {
			if done%step == 0 || done == total {
				fmt.Fprintf(os.Stderr, "dvfsfleet: %d/%d devices (%.0f%%, %.1fs)\n",
					done, total, 100*float64(done)/float64(total), time.Since(start).Seconds())
			}
		}
	}

	start := time.Now()
	res, err := fleet.Run(cfg)
	if err != nil {
		fail(err)
	}
	if cfg.Sink != nil {
		if err := cfg.Sink.Close(); err != nil {
			fail(err)
		}
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			fail(err)
		}
	}
	elapsed := time.Since(start)

	writeSummary(sumOut, res, elapsed)
	if health != nil {
		writeHealth(sumOut, health)
	}
	if *summary != "" {
		if err := writeJSONFile(*summary, res); err != nil {
			fail(err)
		}
	}
	if *bench != "" {
		if err := writeJSONFile(*bench, benchDoc(res, elapsed, binCount, jsonlCount, cfg)); err != nil {
			fail(err)
		}
	}
}

// splitList splits a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// fleetSink adapts a FleetTracker to the Sink interface the fleet
// engine tees events through.
type fleetSink struct{ t *obs.FleetTracker }

func (s fleetSink) Emit(e *obs.DecisionEvent) { s.t.Emit(e) }
func (s fleetSink) Close() error              { return nil }

// writeHealth prints the tracker's roll-up: class counts, residual
// quantiles off the merged sketches, and the worst devices with
// attribution — the same scoring dvfsd's /debug/fleet serves.
func writeHealth(w io.Writer, t *obs.FleetTracker) {
	s := t.Snapshot()
	fmt.Fprintf(w, "health  %d healthy, %d degraded, %d outlier, %d fresh; |resid|/pred p95 %.4f\n",
		s.Healthy, s.Degraded, s.Outliers, s.Fresh, s.ResidualFrac.P95)
	if len(s.Worst) > 0 {
		fmt.Fprintf(w, "  %-16s %-12s %8s %8s %9s %12s %7s %-9s %s\n",
			"device", "platform", "jobs", "miss %", "drift", "energy/job", "score", "class", "cause")
		for _, d := range s.Worst {
			fmt.Fprintf(w, "  %-16s %-12s %8d %8.2f %9.4f %12.4g %7.3f %-9s %s\n",
				d.Device, d.Platform, d.Jobs, 100*d.MissRate,
				d.DriftEWMA, d.EnergyPerJob, d.Score, d.Class, d.Attribution)
		}
	}
}

// countWriter counts bytes on their way to w.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// teeSink fans every event out to each sink; Close closes all and
// returns the first error.
type teeSink []obs.Sink

func (t teeSink) Emit(e *obs.DecisionEvent) {
	for _, s := range t {
		s.Emit(e)
	}
}

func (t teeSink) Close() error {
	var first error
	for _, s := range t {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func writeSummary(w io.Writer, res *fleet.Result, elapsed time.Duration) {
	missRate := 0.0
	if res.Jobs > 0 {
		missRate = float64(res.Misses) / float64(res.Jobs)
	}
	fmt.Fprintf(w, "fleet   %d devices, %d jobs in %.2fs (%.0f devices/sec)\n",
		res.Devices, res.Jobs, elapsed.Seconds(), float64(res.Devices)/elapsed.Seconds())
	fmt.Fprintf(w, "totals  %.3f J, %d misses (%.2f%%)\n", res.EnergyJ, res.Misses, 100*missRate)
	fmt.Fprintf(w, "device energy J    p50 %.4f  p90 %.4f  p95 %.4f  p99 %.4f\n",
		res.DeviceEnergyJ.P50, res.DeviceEnergyJ.P90, res.DeviceEnergyJ.P95, res.DeviceEnergyJ.P99)
	fmt.Fprintf(w, "device miss rate   p50 %.3f  p90 %.3f  p95 %.3f  p99 %.3f\n",
		res.DeviceMissRate.P50, res.DeviceMissRate.P90, res.DeviceMissRate.P95, res.DeviceMissRate.P99)
	for _, g := range res.ByPlatform {
		fmt.Fprintf(w, "platform %-12s %8d devices, %10d jobs, %12.3f J, %d misses\n",
			g.Name, g.Devices, g.Jobs, g.EnergyJ, g.Misses)
	}
	for _, g := range res.ByWorkload {
		fmt.Fprintf(w, "workload %-12s %8d devices, %10d jobs, %12.3f J, %d misses\n",
			g.Name, g.Devices, g.Jobs, g.EnergyJ, g.Misses)
	}
	if res.Events > 0 {
		fmt.Fprintf(w, "trace   %d events\n", res.Events)
	}
}

func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// benchDoc shapes the run into the repo's BENCH JSON convention:
// throughput plus the binary-vs-JSONL encoding comparison when both
// encodings were measured.
func benchDoc(res *fleet.Result, elapsed time.Duration, binCount, jsonlCount *countWriter, cfg fleet.Config) map[string]any {
	doc := map[string]any{
		"bench":           "fleet",
		"devices":         res.Devices,
		"jobs":            res.Jobs,
		"governor":        cfg.Governor,
		"workers":         cfg.Workers,
		"gomaxprocs":      runtime.GOMAXPROCS(0),
		"seconds":         elapsed.Seconds(),
		"devices_per_sec": float64(res.Devices) / elapsed.Seconds(),
		"events":          res.Events,
	}
	if binCount != nil && res.Events > 0 {
		doc["binary_bytes"] = binCount.n
		doc["binary_bytes_per_event"] = float64(binCount.n) / float64(res.Events)
	}
	if jsonlCount != nil && res.Events > 0 {
		doc["jsonl_bytes"] = jsonlCount.n
		doc["jsonl_bytes_per_event"] = float64(jsonlCount.n) / float64(res.Events)
		if binCount != nil && binCount.n > 0 {
			doc["jsonl_to_binary_ratio"] = float64(jsonlCount.n) / float64(binCount.n)
		}
	}
	return doc
}
