// Command dvfslint runs the static-analysis passes of
// internal/analysis over task programs and reports problems before
// they can reach a governor: undefined-variable reads (which the
// interpreter silently evaluates to 0), unreachable statements,
// feature-coverage gaps (uninstrumented loops/branches/calls, §3.1),
// constant feature expressions, slice-verification failures, and the
// static worst-case slice overhead bound.
//
// Usage:
//
//	dvfslint -workload ldecode            lint one benchmark (or "all")
//	dvfslint -file prog.json              lint a task program file
//	dvfslint -rand 50 -seed 3             lint generated random programs
//
// Exit status: 0 when only warnings (or nothing) were found, 1 when
// any error-severity finding or verification failure was reported,
// 2 on usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/analysis"
	"repro/internal/instrument"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/slicer"
	"repro/internal/taskir"
	"repro/internal/workload"
)

func main() {
	wName := flag.String("workload", "", "benchmark to lint, or \"all\"")
	file := flag.String("file", "", "lint a task program from a JSON file")
	nRand := flag.Int("rand", 0, "lint this many generated random programs")
	seed := flag.Int64("seed", 1, "seed for -rand")
	jobs := flag.Int("jobs", 5, "jobs per workload for the run-time undefined-read check")
	logFlags := obs.RegisterLogFlags(flag.CommandLine)
	flag.Parse()

	if _, err := logFlags.Logger(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "dvfslint:", err)
		flag.Usage()
		os.Exit(2)
	}
	if *wName == "" && *file == "" && *nRand == 0 {
		flag.Usage()
		os.Exit(2)
	}
	errs, err := run(*wName, *file, *nRand, *seed, *jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvfslint:", err)
		os.Exit(2)
	}
	if errs > 0 {
		fmt.Printf("dvfslint: %d error(s)\n", errs)
		os.Exit(1)
	}
	fmt.Println("dvfslint: ok")
}

// run lints the selected programs and returns the number of
// error-severity findings.
func run(wName, file string, nRand int, seed int64, jobs int) (int, error) {
	errs := 0
	switch {
	case wName == "all":
		for _, w := range workload.All() {
			errs += lintWorkload(w, jobs)
		}
	case wName != "":
		w, err := workload.ByName(wName)
		if err != nil {
			return 0, err
		}
		errs += lintWorkload(w, jobs)
	}
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return 0, err
		}
		p, err := taskir.UnmarshalProgram(data)
		if err != nil {
			return 0, err
		}
		// A file that already carries feature statements claims to be
		// instrumented, so coverage gaps are findings; a raw task
		// program legitimately has no counters yet.
		opts := analysis.LintOptions{CheckCoverage: hasFeatures(p)}
		findings := analysis.Lint(p, opts)
		report(p.Name+" (file)", findings)
		errs += analysis.ErrorCount(findings)
	}
	if nRand > 0 {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < nRand; i++ {
			p := taskir.RandomProgram(rng)
			p.Name = fmt.Sprintf("rand-%d", i)
			findings := analysis.Lint(p, analysis.LintOptions{})
			// Random programs legitimately read temporaries defined on
			// only some paths, so undefined-read findings here are real
			// lint hits; a bad-slice error, however, is an analysis or
			// slicer regression.
			findings = append(findings, verifySliceOf(p)...)
			report(p.Name, findings)
			errs += analysis.ErrorCount(findings)
		}
	}
	return errs, nil
}

// lintWorkload lints the raw program, the instrumented copy, the full
// prediction slice, and runs a few jobs with read tracking to confirm
// undefined reads at run time. Returns the error count.
func lintWorkload(w *workload.Workload, jobs int) int {
	findings := analysis.Lint(w.Prog, analysis.LintOptions{})
	report(w.Name+" (raw)", findings)
	errs := analysis.ErrorCount(findings)

	ip := instrument.Instrument(w.Prog)
	ifindings := analysis.Lint(ip.Prog, analysis.LintOptions{CheckCoverage: true})
	report(w.Name+" (instrumented)", ifindings)
	errs += analysis.ErrorCount(ifindings)

	sfindings := verifySliceStatic(ip, w)
	report(w.Name+" (slice)", sfindings)
	errs += analysis.ErrorCount(sfindings)

	if reads := runtimeUndefReads(w, jobs); len(reads) > 0 {
		fmt.Printf("== %s (runtime)\n", w.Name)
		for _, v := range reads {
			fmt.Printf("  error [undefined-read] variable %q read before definition during job execution\n", v)
			errs++
		}
	}
	return errs
}

// verifySliceStatic extracts the full slice, verifies it, and reports
// its static worst-case overhead bound.
func verifySliceStatic(ip *instrument.Program, w *workload.Workload) []analysis.Finding {
	sl := slicer.Extract(ip, nil)
	rep, err := analysis.VerifySlice(ip, sl)
	var findings []analysis.Finding
	if err != nil {
		findings = append(findings, analysis.Finding{Sev: analysis.SevError, Code: "bad-slice", Msg: err.Error()})
	}
	plat := platform.ODROIDXU3A7()
	bound := analysis.BoundCost(sl.Prog, nil)
	boundMsg := "unbounded (loop bound not derivable without input ranges)"
	if bound.Finite() {
		boundMsg = fmt.Sprintf("%.0f stmts, %.3g ms at fmax",
			bound.Stmts, 1e3*plat.JobTimeAt(bound.CPUWork(), 0, plat.MaxLevel()))
	}
	fmt.Printf("== %s (slice) %d/%d stmts, features %v, writes globals %v (isolated), worst case %s\n",
		w.Name, sl.SliceStmts, sl.FullStmts, rep.ComputedFIDs, rep.GlobalsWritten, boundMsg)
	return findings
}

// verifySliceOf instruments and slices a program and converts a
// verification failure into findings.
func verifySliceOf(p *taskir.Program) []analysis.Finding {
	ip := instrument.Instrument(p)
	sl := slicer.Extract(ip, nil)
	if _, err := analysis.VerifySlice(ip, sl); err != nil {
		return []analysis.Finding{{Sev: analysis.SevError, Code: "bad-slice", Msg: err.Error()}}
	}
	return nil
}

// runtimeUndefReads executes a few jobs with read tracking enabled and
// returns the variables read before definition.
func runtimeUndefReads(w *workload.Workload, jobs int) []string {
	gen := w.NewGen(1)
	globals := w.FreshGlobals()
	env := taskir.NewEnv(globals)
	env.TrackReads()
	for i := 0; i < jobs; i++ {
		env.ResetLocals()
		env.SetParams(gen.Next(i))
		if _, err := taskir.Run(w.Prog, env, taskir.RunOptions{}); err != nil {
			return env.UndefinedReads()
		}
	}
	return env.UndefinedReads()
}

func report(title string, findings []analysis.Finding) {
	if len(findings) == 0 {
		return
	}
	fmt.Printf("== %s\n", title)
	for _, f := range findings {
		fmt.Printf("  %s\n", f)
	}
}

func hasFeatures(p *taskir.Program) bool {
	found := false
	var walk func(stmts []taskir.Stmt)
	walk = func(stmts []taskir.Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *taskir.FeatAdd, *taskir.FeatCall:
				found = true
			case *taskir.If:
				walk(st.Then)
				walk(st.Else)
			case *taskir.While:
				walk(st.Body)
			case *taskir.Loop:
				walk(st.Body)
			case *taskir.Call:
				for _, b := range st.Funcs {
					walk(b)
				}
			}
		}
	}
	walk(p.Body)
	return found
}
