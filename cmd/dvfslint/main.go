// Command dvfslint runs the static-analysis passes of
// internal/analysis over task programs and reports problems before
// they can reach a governor: undefined-variable reads (which the
// interpreter silently evaluates to 0), unreachable statements,
// feature-coverage gaps (uninstrumented loops/branches/calls, §3.1),
// constant feature expressions, slice-verification failures, and the
// static worst-case slice overhead bound.
//
// Usage:
//
//	dvfslint -workload ldecode            lint one benchmark (or "all")
//	dvfslint -file prog.json              lint a task program file
//	dvfslint -rand 50 -seed 3             lint generated random programs
//	dvfslint -format json -workload all   machine-readable findings
//
// Exit status: 0 when only warnings (or nothing) were found, 1 when
// any error-severity finding or verification failure was reported,
// 2 on usage or I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/analysis"
	"repro/internal/instrument"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/slicer"
	"repro/internal/taskir"
	"repro/internal/workload"
)

func main() {
	wName := flag.String("workload", "", "benchmark to lint, or \"all\"")
	file := flag.String("file", "", "lint a task program from a JSON file")
	nRand := flag.Int("rand", 0, "lint this many generated random programs")
	seed := flag.Int64("seed", 1, "seed for -rand")
	jobs := flag.Int("jobs", 5, "jobs per workload for the run-time undefined-read check")
	format := flag.String("format", "text", `output format: "text" or "json"`)
	logFlags := obs.RegisterLogFlags(flag.CommandLine)
	flag.Parse()

	if _, err := logFlags.Logger(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "dvfslint:", err)
		flag.Usage()
		os.Exit(2)
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "dvfslint: unknown format %q (want text or json)\n", *format)
		flag.Usage()
		os.Exit(2)
	}
	if *wName == "" && *file == "" && *nRand == 0 {
		flag.Usage()
		os.Exit(2)
	}
	rep := &reporter{format: *format}
	if err := run(rep, *wName, *file, *nRand, *seed, *jobs); err != nil {
		fmt.Fprintln(os.Stderr, "dvfslint:", err)
		os.Exit(2)
	}
	os.Exit(rep.finish())
}

// reporter collects findings into groups and renders them as text
// (incrementally, matching the historical output) or as one JSON
// document at the end. Info lines — slice summaries and the like —
// are text-mode color, not findings, and are dropped from JSON.
type reporter struct {
	format string
	errs   int
	all    []jsonFinding
}

// jsonFinding is one finding in -format json output.
type jsonFinding struct {
	Group    string `json:"group"`
	Severity string `json:"severity"`
	Code     string `json:"code"`
	Msg      string `json:"msg"`
}

// report records a group of findings under a title.
func (r *reporter) report(title string, findings []analysis.Finding) {
	r.errs += analysis.ErrorCount(findings)
	if len(findings) == 0 {
		return
	}
	if r.format == "text" {
		fmt.Printf("== %s\n", title)
		for _, f := range findings {
			fmt.Printf("  %s\n", f)
		}
		return
	}
	for _, f := range findings {
		r.all = append(r.all, jsonFinding{
			Group: title, Severity: f.Sev.String(), Code: f.Code, Msg: f.Msg,
		})
	}
}

// infof prints an informational line in text mode only.
func (r *reporter) infof(formatStr string, args ...any) {
	if r.format == "text" {
		fmt.Printf(formatStr, args...)
	}
}

// finish renders the summary (or the JSON document) and returns the
// process exit code.
func (r *reporter) finish() int {
	if r.format == "json" {
		out := struct {
			Findings []jsonFinding `json:"findings"`
			Count    int           `json:"count"`
			Errors   int           `json:"errors"`
		}{Findings: r.all, Count: len(r.all), Errors: r.errs}
		if out.Findings == nil {
			out.Findings = []jsonFinding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "dvfslint:", err)
			return 2
		}
	} else if r.errs > 0 {
		fmt.Printf("dvfslint: %d error(s)\n", r.errs)
	} else {
		fmt.Println("dvfslint: ok")
	}
	if r.errs > 0 {
		return 1
	}
	return 0
}

// run lints the selected programs, reporting through rep.
func run(rep *reporter, wName, file string, nRand int, seed int64, jobs int) error {
	switch {
	case wName == "all":
		for _, w := range workload.All() {
			lintWorkload(rep, w, jobs)
		}
	case wName != "":
		w, err := workload.ByName(wName)
		if err != nil {
			return err
		}
		lintWorkload(rep, w, jobs)
	}
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		p, err := taskir.UnmarshalProgram(data)
		if err != nil {
			return err
		}
		// A file that already carries feature statements claims to be
		// instrumented, so coverage gaps are findings; a raw task
		// program legitimately has no counters yet.
		opts := analysis.LintOptions{CheckCoverage: hasFeatures(p)}
		rep.report(p.Name+" (file)", analysis.Lint(p, opts))
	}
	if nRand > 0 {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < nRand; i++ {
			p := taskir.RandomProgram(rng)
			p.Name = fmt.Sprintf("rand-%d", i)
			findings := analysis.Lint(p, analysis.LintOptions{})
			// Random programs legitimately read temporaries defined on
			// only some paths, so undefined-read findings here are real
			// lint hits; a bad-slice error, however, is an analysis or
			// slicer regression.
			findings = append(findings, verifySliceOf(p)...)
			rep.report(p.Name, findings)
		}
	}
	return nil
}

// lintWorkload lints the raw program, the instrumented copy, the full
// prediction slice, and runs a few jobs with read tracking to confirm
// undefined reads at run time.
func lintWorkload(rep *reporter, w *workload.Workload, jobs int) {
	rep.report(w.Name+" (raw)", analysis.Lint(w.Prog, analysis.LintOptions{}))

	ip := instrument.Instrument(w.Prog)
	rep.report(w.Name+" (instrumented)",
		analysis.Lint(ip.Prog, analysis.LintOptions{CheckCoverage: true}))

	rep.report(w.Name+" (slice)", verifySliceStatic(rep, ip, w))

	var rfindings []analysis.Finding
	for _, v := range runtimeUndefReads(w, jobs) {
		rfindings = append(rfindings, analysis.Finding{
			Sev:  analysis.SevError,
			Code: "undefined-read",
			Msg:  fmt.Sprintf("variable %q read before definition during job execution", v),
		})
	}
	rep.report(w.Name+" (runtime)", rfindings)
}

// verifySliceStatic extracts the full slice, verifies it, and reports
// its static worst-case overhead bound.
func verifySliceStatic(rep *reporter, ip *instrument.Program, w *workload.Workload) []analysis.Finding {
	sl := slicer.Extract(ip, nil)
	rep2, err := analysis.VerifySlice(ip, sl)
	var findings []analysis.Finding
	if err != nil {
		findings = append(findings, analysis.Finding{Sev: analysis.SevError, Code: "bad-slice", Msg: err.Error()})
	}
	plat := platform.ODROIDXU3A7()
	bound := analysis.BoundCost(sl.Prog, nil)
	boundMsg := "unbounded (loop bound not derivable without input ranges)"
	if bound.Finite() {
		boundMsg = fmt.Sprintf("%.0f stmts, %.3g ms at fmax",
			bound.Stmts, 1e3*plat.JobTimeAt(bound.CPUWork(), 0, plat.MaxLevel()))
	}
	rep.infof("== %s (slice) %d/%d stmts, features %v, writes globals %v (isolated), worst case %s\n",
		w.Name, sl.SliceStmts, sl.FullStmts, rep2.ComputedFIDs, rep2.GlobalsWritten, boundMsg)
	return findings
}

// verifySliceOf instruments and slices a program and converts a
// verification failure into findings.
func verifySliceOf(p *taskir.Program) []analysis.Finding {
	ip := instrument.Instrument(p)
	sl := slicer.Extract(ip, nil)
	if _, err := analysis.VerifySlice(ip, sl); err != nil {
		return []analysis.Finding{{Sev: analysis.SevError, Code: "bad-slice", Msg: err.Error()}}
	}
	return nil
}

// runtimeUndefReads executes a few jobs with read tracking enabled and
// returns the variables read before definition.
func runtimeUndefReads(w *workload.Workload, jobs int) []string {
	gen := w.NewGen(1)
	globals := w.FreshGlobals()
	env := taskir.NewEnv(globals)
	env.TrackReads()
	for i := 0; i < jobs; i++ {
		env.ResetLocals()
		env.SetParams(gen.Next(i))
		if _, err := taskir.Run(w.Prog, env, taskir.RunOptions{}); err != nil {
			return env.UndefinedReads()
		}
	}
	return env.UndefinedReads()
}

func hasFeatures(p *taskir.Program) bool {
	found := false
	var walk func(stmts []taskir.Stmt)
	walk = func(stmts []taskir.Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *taskir.FeatAdd, *taskir.FeatCall:
				found = true
			case *taskir.If:
				walk(st.Then)
				walk(st.Else)
			case *taskir.While:
				walk(st.Body)
			case *taskir.Loop:
				walk(st.Body)
			case *taskir.Call:
				for _, b := range st.Funcs {
					walk(b)
				}
			}
		}
	}
	walk(p.Body)
	return found
}
