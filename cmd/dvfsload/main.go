// Command dvfsload is the serving benchmark: it replays a seeded
// workload job stream against a running dvfsd over N concurrent
// connections and reports throughput and latency percentiles.
//
// Usage:
//
//	dvfsload -addr http://127.0.0.1:8090 -workload ldecode -train
//	         [-jobs 1000] [-conns 16] [-batch 1] [-seed 1] [-json out.json]
//
// With -train the model is first trained through the daemon's API
// (train → serve → load-test with one binary). Exit status is
// non-zero when any request fails.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8090", "dvfsd base URL")
	wName := flag.String("workload", "ldecode", "benchmark name (see Table 2)")
	jobs := flag.Int("jobs", 1000, "total jobs to send")
	conns := flag.Int("conns", 16, "concurrent connections")
	batch := flag.Int("batch", 1, "jobs per request (1 = /v1/predict, >1 = /v1/predict/batch)")
	seed := flag.Int64("seed", 1, "job stream seed")
	budget := flag.Float64("budget", 0, "per-job budget in seconds (0 = workload default)")
	train := flag.Bool("train", false, "train the model through the daemon first")
	trainJobs := flag.Int("train-jobs", 0, "profiling jobs for -train (0 = workload default)")
	wait := flag.Duration("wait", 10*time.Second, "how long to wait for the daemon to become healthy")
	jsonPath := flag.String("json", "", "write the report JSON to this path")
	logFlags := obs.RegisterLogFlags(flag.CommandLine)
	flag.Parse()

	// Validate flags and workload before touching the network.
	if _, err := logFlags.Logger(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "dvfsload:", err)
		flag.Usage()
		os.Exit(2)
	}
	if _, err := workload.ByName(*wName); err != nil {
		fmt.Fprintln(os.Stderr, "dvfsload:", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*addr, *wName, *jobs, *conns, *batch, *seed, *budget, *train, *trainJobs, *wait, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "dvfsload:", err)
		os.Exit(1)
	}
}

func run(addr, wName string, jobs, conns, batch int, seed int64, budget float64, train bool, trainJobs int, wait time.Duration, jsonPath string) error {
	ctx := context.Background()
	waitCtx, cancel := context.WithTimeout(ctx, wait)
	err := serve.WaitHealthy(waitCtx, addr)
	cancel()
	if err != nil {
		return err
	}

	if train {
		t0 := time.Now()
		st, err := serve.TrainRemote(ctx, addr, wName, serve.TrainConfig{ProfileJobs: trainJobs, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Printf("trained    %s in %.2f s (%d columns, %d selected)\n",
			wName, time.Since(t0).Seconds(), st.Columns, st.Selected)
	}

	stream, err := serve.GenerateJobs(wName, jobs, seed)
	if err != nil {
		return err
	}
	fmt.Printf("replaying  %d %s jobs over %d conns (batch %d) against %s\n",
		len(stream), wName, conns, batch, addr)
	rep, err := serve.RunLoad(ctx, serve.LoadConfig{
		BaseURL:   addr,
		Workload:  wName,
		Jobs:      jobs,
		Conns:     conns,
		Batch:     batch,
		Seed:      seed,
		BudgetSec: budget,
	}, stream)
	if err != nil {
		return err
	}

	fmt.Printf("requests   %d (errors %d, codes %v)\n", rep.Requests, rep.Errors, rep.Codes)
	fmt.Printf("duration   %.3f s → %.0f jobs/s\n", rep.DurationSec, rep.Throughput)
	fmt.Printf("latency    p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  max %.2f ms  mean %.2f ms\n",
		rep.P50MS, rep.P95MS, rep.P99MS, rep.MaxMS, rep.MeanMS)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("report     %s\n", jsonPath)
	}
	if rep.Errors > 0 {
		return errors.New("load run had request errors")
	}
	return nil
}
