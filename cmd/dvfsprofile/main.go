// Command dvfsprofile runs the off-line half of the framework for one
// benchmark — instrument, profile, train, slice — and reports the
// trained models, the selected control-flow features, and the slice
// size, i.e. everything the paper's Fig 13 produces before run time.
//
// Usage:
//
//	dvfsprofile -workload ldecode [-alpha 100] [-gamma 1e-3] [-jobs 300] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/regress"
	"repro/internal/taskir"
	"repro/internal/workload"
)

func main() {
	wName := flag.String("workload", "ldecode", "benchmark name (see Table 2)")
	alpha := flag.Float64("alpha", 100, "under-prediction penalty weight α (§3.3)")
	gamma := flag.Float64("gamma", 1e-3, "Lasso feature-selection weight γ")
	jobs := flag.Int("jobs", 0, "profiling jobs (0 = workload default)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "write the trained model as JSON (the paper's distribute-with-the-program format, §4.2)")
	dumpSlice := flag.Bool("dump-slice", false, "print the generated prediction slice as pseudo-source")
	logFlags := obs.RegisterLogFlags(flag.CommandLine)
	flag.Parse()

	// Validate inputs up front: an unknown benchmark or log flag is a
	// usage error (exit 2 with the flag summary), not a late runtime
	// failure.
	if _, err := logFlags.Logger(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "dvfsprofile:", err)
		flag.Usage()
		os.Exit(2)
	}
	if _, err := workload.ByName(*wName); err != nil {
		fmt.Fprintln(os.Stderr, "dvfsprofile:", err)
		flag.Usage()
		os.Exit(2)
	}

	if err := run(*wName, *alpha, *gamma, *jobs, *seed, *out, *dumpSlice); err != nil {
		fmt.Fprintln(os.Stderr, "dvfsprofile:", err)
		os.Exit(1)
	}
}

func run(wName string, alpha, gamma float64, jobs int, seed int64, out string, dumpSlice bool) error {
	w, err := workload.ByName(wName)
	if err != nil {
		return err
	}
	c, err := core.Build(w, core.Config{
		Alpha:       alpha,
		Gamma:       gamma,
		ProfileJobs: jobs,
		ProfileSeed: seed,
	})
	if err != nil {
		return err
	}

	fmt.Printf("workload        %s (%s)\n", w.Name, w.Desc)
	fmt.Printf("platform        %s (%d DVFS levels, %.0f–%.0f MHz)\n",
		c.Plat.Name, c.Plat.NumLevels(),
		c.Plat.MinLevel().FreqHz/1e6, c.Plat.MaxLevel().FreqHz/1e6)
	fmt.Printf("profiling       %d jobs, %d feature columns\n", len(c.Prof.X), c.Schema.Dim())
	fmt.Printf("memory share    %.1f%% of job time is frequency-independent\n", 100*c.MemFraction())

	for _, m := range []struct {
		name  string
		model *regress.Model
		y     []float64
	}{
		{"t(fmax) model", c.ModelMax, c.Prof.TimesMax},
		{"t(fmin) model", c.ModelMin, c.Prof.TimesMin},
	} {
		st := regress.ComputeErrorStats(regress.Errors(m.model.PredictAll(c.Prof.X), m.y))
		fmt.Printf("%-15s mae %.3g ms, mean err %+.3g ms, under-predictions %d/%d, %d features\n",
			m.name, st.MAE*1e3, st.Mean*1e3, st.UnderCount, st.N, m.model.NumSelected())
	}

	fmt.Printf("selected        %v\n", c.SelectedFeatureNames())
	fmt.Printf("slice           %d of %d statements (%.0f%% of the instrumented task)\n",
		c.Slice.SliceStmts, c.Slice.FullStmts,
		100*float64(c.Slice.SliceStmts)/float64(c.Slice.FullStmts))

	fmt.Printf("\ncoefficients (t(fmax) model, non-zero):\n")
	fmt.Printf("  %-20s %s\n", "intercept", fmtMS(c.ModelMax.Intercept))
	for _, j := range c.ModelMax.Selected() {
		if j < c.Schema.Dim() {
			fmt.Printf("  %-20s %s\n", c.Schema.Columns[j].Name, fmtMS(c.ModelMax.Coef[j]))
		}
	}

	if dumpSlice {
		fmt.Printf("\nprediction slice (what runs before every job):\n%s", taskir.Format(c.Slice.Prog))
	}

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := core.SaveController(f, c); err != nil {
			return err
		}
		fmt.Printf("\nmodel written to %s (load with dvfssim -model)\n", out)
	}
	return nil
}

func fmtMS(sec float64) string { return fmt.Sprintf("%+.4f ms", sec*1e3) }
