// Command dvfsreplay is the offline counterfactual-analysis tool over
// decision logs: it reconstructs the energy the traced policy spent
// (attributed to execution, predictor, DVFS switches, and idle slack)
// and replays every decision under counterfactual policies — oracle,
// performance, powersave, the PID baseline, and what-if margin/α
// sweeps of the predictor — without re-running the workload. When
// events carry per-phase span ledgers (dvfssim/dvfsd with tracing on)
// the report also attributes the predictor overhead to measured
// phases — slice eval, model predict, level select — alongside the
// static estimate the energy reconstruction charges.
//
// Fleet traces (dvfsfleet -out, binary or exported JSONL) replay
// device by device: each device's events reconstruct against its own
// platform, and the margin sweep aggregates into fleet distributions
// (p50/p95/p99 per-device energy delta, fleet miss rate, per-platform
// breakdown). -fleet auto (the default) selects fleet mode when the
// trace carries device IDs; -device replays one device single-mode.
// Devices replay in parallel (-workers, default GOMAXPROCS) with
// in-order commits, so every report is byte-identical regardless of
// worker count; -slo-target adds a keyed fleet SLO burn section
// (fleet-wide plus per-platform and per-workload keys).
//
// Usage:
//
//	dvfssim -workload ldecode -governor prediction -trace - | dvfsreplay -html report.html
//	dvfsreplay -input dec.jsonl -platform a7 -format json
//	dvfsreplay -input dec.jsonl -json BENCH_replay.json -baseline BENCH_replay.json -max-regress 5
//	dvfsreplay -input dec.jsonl -check
//	dvfsreplay -input fleet.bin -html fleet.html          # fleet margin sweep
//	dvfsreplay -input fleet.bin -device dev-0000003 -fleet off
//
// -baseline compares against a committed BENCH_replay.json and exits
// 1 when energy regresses more than -max-regress percent (or a miss
// rate by more than -max-regress points). -check asserts the physical
// ordering every healthy prediction trace satisfies: oracle ≤ traced
// ≤ performance energy.
//
// Exit status: 0 on success, 2 on usage errors, 1 on analysis
// failures, regressions, or ordering violations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/replay"
	"repro/internal/trace"
)

func main() {
	input := flag.String("input", "-", "decision log to replay, JSONL or binary (- for stdin)")
	fleetMode := flag.String("fleet", "auto", "fleet replay: auto (fleet when the trace carries device IDs), on, off")
	platName := flag.String("platform", "a7", "platform the trace was recorded on: a7, x86, biglittle")
	seed := flag.Int64("seed", 1, "seed for counterfactual switch-latency jitter (same seed → bit-identical output)")
	rho := flag.Float64("rho", 0, "fallback memory-time fraction for cross-frequency time translation (0 → 0.3; predicted jobs estimate it from the trace)")
	alpha := flag.Float64("alpha", 100, "α the traced model was trained with (anchors the α sweep)")
	format := flag.String("format", "text", "stdout format: text or json")
	jsonOut := flag.String("json", "", "also write the machine-readable bench document to this file")
	htmlOut := flag.String("html", "", "also write a self-contained HTML report to this file")
	baseline := flag.String("baseline", "", "compare against this committed bench document and fail on regression")
	maxRegress := flag.Float64("max-regress", 5, "regression tolerance: energy percent / miss-rate points vs -baseline")
	check := flag.Bool("check", false, "assert oracle ≤ traced ≤ performance energy ordering per group")
	workers := flag.Int("workers", 0, "fleet replay parallelism: devices replayed concurrently (0 → GOMAXPROCS); reports are byte-identical at any setting")
	sloTarget := flag.Float64("slo-target", 0, "fleet replay: track keyed SLO burn (fleet/platform/workload) against this miss-rate target (0 disables)")
	var filter obs.EventFilter
	filter.RegisterFilterFlags(flag.CommandLine)
	logFlags := obs.RegisterLogFlags(flag.CommandLine)
	flag.Parse()

	usageErr := func(err error) {
		fmt.Fprintln(os.Stderr, "dvfsreplay:", err)
		flag.Usage()
		os.Exit(2)
	}
	log, err := logFlags.Logger(os.Stderr)
	if err != nil {
		usageErr(err)
	}
	if *format != "text" && *format != "json" {
		usageErr(fmt.Errorf("unknown format %q (use text or json)", *format))
	}
	if filter.Last < 0 {
		usageErr(fmt.Errorf("-last must be non-negative"))
	}
	if *maxRegress <= 0 {
		usageErr(fmt.Errorf("-max-regress must be positive"))
	}
	if *fleetMode != "auto" && *fleetMode != "on" && *fleetMode != "off" {
		usageErr(fmt.Errorf("unknown -fleet mode %q (use auto, on, or off)", *fleetMode))
	}
	if *workers < 0 {
		usageErr(fmt.Errorf("-workers must be non-negative"))
	}
	if *sloTarget < 0 || *sloTarget >= 1 {
		usageErr(fmt.Errorf("-slo-target must be in [0,1)"))
	}
	plat, err := platform.ByName(*platName)
	if err != nil {
		usageErr(err)
	}
	var rd io.Reader = os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			usageErr(err)
		}
		defer f.Close()
		rd = f
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "dvfsreplay:", err)
		os.Exit(1)
	}
	events, err := trace.ReadEvents(rd)
	if err != nil {
		fail(err)
	}
	events = filter.Apply(events)

	isFleet := *fleetMode == "on"
	if *fleetMode == "auto" && filter.Device == "" {
		for i := range events {
			if events[i].Device != "" {
				isFleet = true
				break
			}
		}
	}
	if isFleet {
		if *baseline != "" || *check {
			usageErr(fmt.Errorf("-baseline and -check are single-device modes; use -device to select one device or -fleet off"))
		}
		var slo *obs.SLOTracker
		if *sloTarget > 0 {
			slo = obs.NewSLOTracker(obs.SLOConfig{Target: *sloTarget, MaxKeys: 64})
		}
		runFleet(events, replay.FleetOptions{
			Plat:        plat,
			Seed:        *seed,
			Rho:         *rho,
			TracedAlpha: *alpha,
			Workers:     *workers,
			SLO:         slo,
		}, *format, *jsonOut, *htmlOut, fail)
		return
	}
	res, err := replay.Run(events, replay.Options{
		Plat:        plat,
		Seed:        *seed,
		Rho:         *rho,
		TracedAlpha: *alpha,
	})
	if err != nil {
		fail(err)
	}
	if len(res.Groups) == 0 {
		fail(fmt.Errorf("no replayable (completed) events in the log after filtering"))
	}

	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fail(err)
		}
	} else {
		res.WriteText(os.Stdout)
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fail(err)
		}
		if err := res.WriteJSON(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			fail(err)
		}
		if err := res.WriteHTML(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}

	exit := 0
	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			fail(err)
		}
		base, err := replay.ReadBench(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		regressions, notes := replay.Compare(res, base, replay.CompareOptions{
			MaxEnergyRegressPct: *maxRegress,
			MaxMissRegressPts:   *maxRegress,
		})
		for _, n := range notes {
			log.Info("baseline drift", "note", n)
		}
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "dvfsreplay: REGRESSION:", r)
			exit = 1
		}
		if len(regressions) == 0 {
			fmt.Fprintf(os.Stderr, "dvfsreplay: baseline comparison passed (%d groups, tolerance %.1f%%)\n",
				len(res.Groups), *maxRegress)
		}
	}
	if *check {
		if viol := res.CheckOrdering(1); len(viol) > 0 {
			for _, v := range viol {
				fmt.Fprintln(os.Stderr, "dvfsreplay: ORDERING:", v)
			}
			exit = 1
		} else {
			fmt.Fprintln(os.Stderr, "dvfsreplay: energy ordering check passed (oracle ≤ traced ≤ performance)")
		}
	}
	os.Exit(exit)
}

// runFleet renders a fleet-wide replay to stdout and the optional
// json/html files, then exits via the shared failure path on error.
func runFleet(events []obs.DecisionEvent, opts replay.FleetOptions, format, jsonOut, htmlOut string, fail func(error)) {
	res, err := replay.RunFleet(events, opts)
	if err != nil {
		fail(err)
	}
	if format == "json" {
		if err := res.WriteJSON(os.Stdout); err != nil {
			fail(err)
		}
	} else {
		res.WriteText(os.Stdout)
	}
	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			fail(err)
		}
		if err := res.WriteJSON(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	if htmlOut != "" {
		f, err := os.Create(htmlOut)
		if err != nil {
			fail(err)
		}
		if err := res.WriteHTML(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
}
