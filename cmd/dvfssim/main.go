// Command dvfssim runs one benchmark under one governor and reports
// energy, deadline misses, and overheads. It can dump the per-job
// trace as CSV and the run summary as JSON.
//
// Usage:
//
//	dvfssim -workload ldecode -governor prediction [-budget 0.05]
//	        [-jobs 300] [-seed 1] [-idle] [-csv trace.csv] [-json sum.json]
//	        [-trace dec.jsonl] [-chrome trace.json]
//
// -trace - writes the decision JSONL to stdout (and the human summary
// to stderr), so runs pipe straight into dvfsreplay / dvfstrace:
//
//	dvfssim -workload ldecode -trace - | dvfsreplay -html report.html
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/governor"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	wName := flag.String("workload", "ldecode", "benchmark name (see Table 2)")
	gName := flag.String("governor", "prediction", "governor: performance, powersave, interactive, pid, prediction, oracle")
	budget := flag.Float64("budget", 0, "time budget in seconds (0 = paper default)")
	jobs := flag.Int("jobs", 0, "number of jobs (0 = workload default)")
	seed := flag.Int64("seed", 1, "random seed")
	idle := flag.Bool("idle", false, "drop to minimum frequency between jobs (§5.5)")
	csvPath := flag.String("csv", "", "write per-job trace CSV to this path")
	jsonPath := flag.String("json", "", "write run summary JSON to this path")
	tracePath := flag.String("trace", "", "write decision events as JSONL to this path (dvfstrace reads it)")
	chromePath := flag.String("chrome", "", "write a Chrome trace-event file to this path (chrome://tracing, Perfetto)")
	modelPath := flag.String("model", "", "load a trained prediction model (from dvfsprofile -o) instead of training")
	platName := flag.String("platform", "a7", "platform model: a7, x86, biglittle")
	logFlags := obs.RegisterLogFlags(flag.CommandLine)
	flag.Parse()

	// Validate inputs up front: unknown benchmark / governor / platform
	// names are usage errors (exit 2 with the flag summary), caught
	// before any profiling or simulation work starts.
	usageErr := func(err error) {
		fmt.Fprintln(os.Stderr, "dvfssim:", err)
		flag.Usage()
		os.Exit(2)
	}
	if _, err := logFlags.Logger(os.Stderr); err != nil {
		usageErr(err)
	}
	if _, err := workload.ByName(*wName); err != nil {
		usageErr(err)
	}
	if _, err := platform.ByName(*platName); err != nil {
		usageErr(err)
	}
	if !validGovernors[*gName] {
		usageErr(fmt.Errorf("unknown governor %q (have: performance, powersave, interactive, ondemand, movingavg, pid, prediction, oracle)", *gName))
	}

	if err := run(*wName, *gName, *budget, *jobs, *seed, *idle, *csvPath, *jsonPath, *tracePath, *chromePath, *modelPath, *platName); err != nil {
		fmt.Fprintln(os.Stderr, "dvfssim:", err)
		os.Exit(1)
	}
}

// validGovernors mirrors experiments.Suite.Governor's dispatch table.
var validGovernors = map[string]bool{
	"performance": true, "powersave": true, "interactive": true,
	"ondemand": true, "movingavg": true, "pid": true,
	"prediction": true, "oracle": true,
}

func run(wName, gName string, budget float64, jobs int, seed int64, idle bool, csvPath, jsonPath, tracePath, chromePath, modelPath, platName string) error {
	w, err := workload.ByName(wName)
	if err != nil {
		return err
	}
	plat, err := platform.ByName(platName)
	if err != nil {
		return err
	}
	suite := experiments.NewSuiteOn(plat, seed)
	var g governor.Governor
	if modelPath != "" {
		f, err := os.Open(modelPath)
		if err != nil {
			return err
		}
		defer f.Close()
		g, err = core.LoadController(f, w, suite.Plat, suite.Switch)
		if err != nil {
			return err
		}
	} else if g, err = suite.Governor(gName, w); err != nil {
		return err
	}

	// Decision sinks. With a prediction controller a live tracer
	// captures what only the controller sees (feature hashes, raw
	// tfmin/tfmax, the §3.4 budget ledger) into memory, and after the
	// run trace.MergeDecisions overlays the simulator's ground truth
	// (wall-clock misses, measured switch times, from-levels) before
	// the merged events reach the sinks — the union is what dvfsreplay
	// needs for exact energy reconstruction. Other governors get the
	// post-run adapter over the job records directly. A path of "-"
	// writes the sink to stdout and moves the human summary to stderr.
	var sinks []obs.Sink
	var sinkPaths []string
	summary := os.Stdout
	for _, p := range []struct {
		path string
		mk   func(f *os.File) obs.Sink
	}{
		{tracePath, func(f *os.File) obs.Sink { return obs.NewJSONLSink(f) }},
		{chromePath, func(f *os.File) obs.Sink { return obs.NewChromeTraceSink(f) }},
	} {
		if p.path == "" {
			continue
		}
		f := os.Stdout
		if p.path == "-" {
			summary = os.Stderr
		} else {
			var err error
			if f, err = os.Create(p.path); err != nil {
				return err
			}
			defer f.Close()
		}
		sinks = append(sinks, p.mk(f))
		sinkPaths = append(sinkPaths, p.path)
	}
	var mem *obs.MemorySink
	if len(sinks) > 0 {
		if ctl, ok := g.(*core.Controller); ok {
			mem = &obs.MemorySink{}
			ctl.SetTracer(obs.NewTracer(obs.TracerOptions{Sinks: []obs.Sink{mem}}))
		}
	}

	cfg := sim.Config{
		Plat:            suite.Plat,
		BudgetSec:       budget,
		Jobs:            jobs,
		Seed:            seed + 7,
		IdleBetweenJobs: idle,
	}
	if _, ok := g.(*governor.Oracle); ok {
		// The paper's oracle analysis removes controller overheads.
		cfg.DisableSwitchLatency = true
		cfg.DisablePredictorCost = true
	}
	r, err := sim.Run(w, g, cfg)
	if err != nil {
		return err
	}
	var phaseLine string
	if len(sinks) > 0 {
		events := trace.DecisionEvents(r)
		if mem != nil {
			events = trace.MergeDecisions(mem.Events(), r)
			// Measured per-phase decision cost (the span ledger the live
			// tracer captured, re-timed with simulated ground truth).
			parts := make([]string, 0, 8)
			for _, ph := range obs.AnalyzePhases(events) {
				parts = append(parts, fmt.Sprintf("%s %s", ph.Name, obs.FormatDur(ph.MeanSec)))
			}
			phaseLine = strings.Join(parts, ", ")
		}
		for _, s := range sinks {
			for i := range events {
				s.Emit(&events[i])
			}
			if err := s.Close(); err != nil {
				return err
			}
		}
	}

	fmt.Fprintf(summary, "workload   %s (%s)\n", w.Name, w.TaskDesc)
	fmt.Fprintf(summary, "governor   %s\n", r.Governor)
	fmt.Fprintf(summary, "budget     %.3f s x %d jobs\n", r.BudgetSec, len(r.Records))
	fmt.Fprintf(summary, "energy     %.4f J (sensor estimate %.4f J)\n", r.EnergyJ, r.SensorEnergyJ)
	fmt.Fprintf(summary, "misses     %d (%.2f%%)\n", r.Misses, 100*r.MissRate())
	fmt.Fprintf(summary, "overheads  predictor %.3f ms/job, dvfs switch %.3f ms/job\n",
		r.MeanPredictorSec()*1e3, r.MeanSwitchSec()*1e3)
	b := r.Breakdown
	fmt.Fprintf(summary, "breakdown  exec %.3f J, idle %.3f J, switch %.3f J, predictor %.3f J\n",
		b.ExecJ, b.IdleJ, b.SwitchJ, b.PredictorJ)
	if phaseLine != "" {
		fmt.Fprintf(summary, "phases     mean/job  %s\n", phaseLine)
	}

	for _, p := range sinkPaths {
		fmt.Fprintf(summary, "decisions  %s\n", p)
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteCSV(f, r); err != nil {
			return err
		}
		fmt.Fprintf(summary, "trace      %s\n", csvPath)
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteJSON(f, r); err != nil {
			return err
		}
		fmt.Fprintf(summary, "summary    %s\n", jsonPath)
	}
	return nil
}
