package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/obs"
	"repro/internal/trace"
)

// runByDevice replays the events through a FleetTracker and reports
// the fleet roll-up: per-class device counts, sketch-backed residual
// quantiles, and the top-N worst devices with attribution — the
// offline twin of dvfsd's /debug/fleet. Energy uses the platform
// power model when the trace carries resolvable platform names, and
// the f² proxy otherwise (same rule the replayer applies).
func runByDevice(events []obs.DecisionEvent, topN int, format string) error {
	ft := obs.NewFleetTracker(obs.FleetConfig{
		TopK:         topN,
		EnergyPerJob: trace.EnergyEstimator(),
	})
	for i := range events {
		ft.Emit(&events[i])
	}
	snap := ft.Snapshot()
	if format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(snap)
	}
	writeByDeviceText(os.Stdout, &snap)
	return nil
}

func writeByDeviceText(w *os.File, s *obs.FleetStatus) {
	fmt.Fprintf(w, "fleet    %d devices, %d events, %d completed, %d misses (%.2f%%)\n",
		s.Devices, s.Events, s.Completed, s.Misses, 100*s.MissRate)
	fmt.Fprintf(w, "health   %d healthy, %d degraded, %d outlier, %d fresh\n",
		s.Healthy, s.Degraded, s.Outliers, s.Fresh)
	fmt.Fprintf(w, "residual |r|/pred p50 %.4f  p90 %.4f  p95 %.4f  p99 %.4f\n",
		s.ResidualFrac.P50, s.ResidualFrac.P90, s.ResidualFrac.P95, s.ResidualFrac.P99)
	fmt.Fprintf(w, "devices  miss-ewma p50 %.4f p99 %.4f   energy/job p50 %.4g p99 %.4g J\n",
		s.DeviceMissEWMA.P50, s.DeviceMissEWMA.P99,
		s.DeviceEnergyPerJob.P50, s.DeviceEnergyPerJob.P99)
	if len(s.Worst) > 0 {
		fmt.Fprintf(w, "worst devices by health score:\n")
		fmt.Fprintf(w, "  %-20s %-12s %8s %8s %9s %9s %12s %7s %-9s %s\n",
			"device", "platform", "jobs", "miss %", "ewma", "drift", "energy/job", "score", "class", "cause")
		for _, d := range s.Worst {
			fmt.Fprintf(w, "  %-20s %-12s %8d %8.2f %9.4f %9.4f %12.4g %7.3f %-9s %s\n",
				d.Device, d.Platform, d.Jobs, 100*d.MissRate,
				d.MissEWMA, d.DriftEWMA, d.EnergyPerJob, d.Score, d.Class, d.Attribution)
		}
	}
	if len(s.TopMiss) > 0 {
		fmt.Fprintf(w, "top missing devices (space-saving, count ≤ shown, ≥ count−err):\n")
		for _, h := range s.TopMiss {
			fmt.Fprintf(w, "  %-20s %8d misses (≥ %d)\n", h.Key, h.Count, h.Count-h.Err)
		}
	}
}
