// Command dvfstrace analyzes a JSONL decision log (written by
// dvfssim -trace or dvfsd -trace) and reports what the paper's
// evaluation cares about: deadline-miss rate, signed-residual
// quantiles (positive residual = under-prediction, the α-penalized
// direction of §3.3), margin attribution (where the budget went:
// predictor, switch estimate, margin), and per-level occupancy.
//
// Usage:
//
//	dvfstrace -input dec.jsonl [-format text|json]
//	          [-workload w] [-since sec] [-last n]
//
// -input - reads the log from stdin, so it composes with
// `dvfssim -trace -`. The filter flags slice large production logs
// without external tooling and are shared verbatim with dvfsreplay.
//
// Exit status: 0 on success, 2 on usage errors (unknown flag, missing
// or unreadable input), 1 on analysis failures.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	input := flag.String("input", "", "JSONL decision log to analyze (required; - for stdin)")
	format := flag.String("format", "text", "output format: text or json")
	var filter obs.EventFilter
	filter.RegisterFilterFlags(flag.CommandLine)
	logFlags := obs.RegisterLogFlags(flag.CommandLine)
	flag.Parse()

	usageErr := func(err error) {
		fmt.Fprintln(os.Stderr, "dvfstrace:", err)
		flag.Usage()
		os.Exit(2)
	}
	if _, err := logFlags.Logger(os.Stderr); err != nil {
		usageErr(err)
	}
	if *input == "" {
		usageErr(fmt.Errorf("-input is required"))
	}
	if *format != "text" && *format != "json" {
		usageErr(fmt.Errorf("unknown format %q (use text or json)", *format))
	}
	if filter.Last < 0 {
		usageErr(fmt.Errorf("-last must be non-negative"))
	}
	var rd io.Reader = os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			usageErr(err)
		}
		defer f.Close()
		rd = f
	}

	events, err := obs.ReadJSONL(rd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvfstrace:", err)
		os.Exit(1)
	}
	events = filter.Apply(events)
	report := obs.Analyze(events)
	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "dvfstrace:", err)
			os.Exit(1)
		}
		return
	}
	report.WriteText(os.Stdout)
}
