// Command dvfstrace analyzes a JSONL decision log (written by
// dvfssim -trace or dvfsd -trace) and reports what the paper's
// evaluation cares about: deadline-miss rate, signed-residual
// quantiles (positive residual = under-prediction, the α-penalized
// direction of §3.3), margin attribution (where the budget went:
// predictor, switch estimate, margin), and per-level occupancy.
//
// Usage:
//
//	dvfstrace -input dec.jsonl [-format text|json]
//
// Exit status: 0 on success, 2 on usage errors (unknown flag, missing
// or unreadable input), 1 on analysis failures.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	input := flag.String("input", "", "JSONL decision log to analyze (required)")
	format := flag.String("format", "text", "output format: text or json")
	logFlags := obs.RegisterLogFlags(flag.CommandLine)
	flag.Parse()

	usageErr := func(err error) {
		fmt.Fprintln(os.Stderr, "dvfstrace:", err)
		flag.Usage()
		os.Exit(2)
	}
	if _, err := logFlags.Logger(os.Stderr); err != nil {
		usageErr(err)
	}
	if *input == "" {
		usageErr(fmt.Errorf("-input is required"))
	}
	if *format != "text" && *format != "json" {
		usageErr(fmt.Errorf("unknown format %q (use text or json)", *format))
	}
	f, err := os.Open(*input)
	if err != nil {
		usageErr(err)
	}
	defer f.Close()

	events, err := obs.ReadJSONL(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvfstrace:", err)
		os.Exit(1)
	}
	report := obs.Analyze(events)
	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "dvfstrace:", err)
			os.Exit(1)
		}
		return
	}
	report.WriteText(os.Stdout)
}
