// Command dvfstrace analyzes a decision log (written by dvfssim
// -trace, dvfsd -trace, or dvfsfleet -out) and reports what the
// paper's evaluation cares about: deadline-miss rate, signed-residual
// quantiles (positive residual = under-prediction, the α-penalized
// direction of §3.3), margin attribution (where the budget went:
// predictor, switch estimate, margin), and per-level occupancy.
//
// Usage:
//
//	dvfstrace -input dec.jsonl [-format text|json]
//	          [-workload w] [-device id] [-since sec] [-last n]
//	dvfstrace -input fleet.bin -by-device 10 [-format text|json]
//	dvfstrace -input fleet.bin -convert out.jsonl [-convert-format jsonl|binary]
//	dvfstrace -follow http://127.0.0.1:8090/v1/events
//	          [-follow-max n] [-follow-every n] [filter flags]
//
// -input - reads the log from stdin, so it composes with
// `dvfssim -trace -`. Both trace encodings are accepted
// transparently — the JSONL lines dvfssim/dvfsd write and the
// length-prefixed binary container dvfsfleet writes (sniffed by
// magic). The filter flags slice large production logs without
// external tooling and are shared verbatim with dvfsreplay; -device
// keeps one fleet device's events.
//
// -by-device N switches to the fleet health report: the filtered
// events replay through the same sketch-backed FleetTracker dvfsd's
// /debug/fleet uses, and the report rolls up device health classes,
// residual quantiles, and the top-N worst devices with attribution.
//
// -convert re-encodes the (filtered) input to -convert-format and
// writes it to the given path ("-" for stdout) instead of analyzing:
// `dvfstrace -input fleet.bin -convert fleet.jsonl` is the JSONL
// export path for binary fleet traces, and `-convert-format binary`
// packs a JSONL log into the compact container.
//
// -follow tails a live dvfsd decision stream (Server-Sent Events)
// instead of reading a file: the filter flags become query parameters
// (-last replays that many ring-backlog events first), a rolling
// one-line summary prints every -follow-every events, and the full
// report renders over the retained window when the stream ends —
// -follow-max events arrived, the server closed, or ctrl-C.
//
// Exit status: 0 on success, 2 on usage errors (unknown flag, missing
// or unreadable input), 1 on analysis or stream failures.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// followWindow bounds the events retained while tailing a live
// stream: the rolling summaries and the final report cover at most
// this many recent events, so an unbounded follow cannot grow memory.
const followWindow = 4096

func main() {
	input := flag.String("input", "", "decision log to analyze, JSONL or binary (- for stdin)")
	convert := flag.String("convert", "", "re-encode the filtered input to this path (- for stdout) instead of analyzing")
	convertFormat := flag.String("convert-format", "jsonl", "encoding for -convert: jsonl or binary")
	follow := flag.String("follow", "", "tail a live dvfsd /v1/events URL instead of reading a log")
	followMax := flag.Int("follow-max", 0, "stop -follow after this many events (0 = until the stream ends)")
	followEvery := flag.Int("follow-every", 25, "print a rolling summary every N followed events (0 disables)")
	followRetries := flag.Int("follow-retries", 5, "reconnect a dropped -follow stream up to this many consecutive failures, resuming via Last-Event-ID (0 disables, -1 retries forever)")
	followBackoff := flag.Duration("follow-backoff", 500*time.Millisecond, "base delay between -follow reconnect attempts (doubled per failure, jittered)")
	format := flag.String("format", "text", "output format: text or json")
	byDevice := flag.Int("by-device", 0, "report per-device fleet health instead: top-N worst devices (0 disables)")
	var filter obs.EventFilter
	filter.RegisterFilterFlags(flag.CommandLine)
	logFlags := obs.RegisterLogFlags(flag.CommandLine)
	flag.Parse()

	usageErr := func(err error) {
		fmt.Fprintln(os.Stderr, "dvfstrace:", err)
		flag.Usage()
		os.Exit(2)
	}
	if _, err := logFlags.Logger(os.Stderr); err != nil {
		usageErr(err)
	}
	if *input == "" && *follow == "" {
		usageErr(fmt.Errorf("-input or -follow is required"))
	}
	if *input != "" && *follow != "" {
		usageErr(fmt.Errorf("-input and -follow are mutually exclusive"))
	}
	if *format != "text" && *format != "json" {
		usageErr(fmt.Errorf("unknown format %q (use text or json)", *format))
	}
	if *convertFormat != "jsonl" && *convertFormat != "binary" {
		usageErr(fmt.Errorf("unknown convert format %q (use jsonl or binary)", *convertFormat))
	}
	if *convert != "" && *follow != "" {
		usageErr(fmt.Errorf("-convert and -follow are mutually exclusive"))
	}
	if filter.Last < 0 {
		usageErr(fmt.Errorf("-last must be non-negative"))
	}
	if *followMax < 0 || *followEvery < 0 {
		usageErr(fmt.Errorf("-follow-max and -follow-every must be non-negative"))
	}
	if *followRetries < -1 {
		usageErr(fmt.Errorf("-follow-retries must be -1, 0, or positive"))
	}
	if *followBackoff <= 0 {
		usageErr(fmt.Errorf("-follow-backoff must be positive"))
	}
	if *byDevice < 0 {
		usageErr(fmt.Errorf("-by-device must be non-negative"))
	}
	if *byDevice > 0 && (*convert != "" || *follow != "") {
		usageErr(fmt.Errorf("-by-device is mutually exclusive with -convert and -follow"))
	}
	if *follow != "" {
		if err := runFollow(*follow, filter, *followMax, *followEvery, *followRetries, *followBackoff, *format); err != nil {
			fmt.Fprintln(os.Stderr, "dvfstrace:", err)
			os.Exit(1)
		}
		return
	}
	var rd io.Reader = os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			usageErr(err)
		}
		defer f.Close()
		rd = f
	}

	events, err := trace.ReadEvents(rd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvfstrace:", err)
		os.Exit(1)
	}
	events = filter.Apply(events)
	switch {
	case *convert != "":
		err = runConvert(events, *convert, *convertFormat)
	case *byDevice > 0:
		err = runByDevice(events, *byDevice, *format)
	default:
		err = writeReport(events, *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvfstrace:", err)
		os.Exit(1)
	}
}

// runConvert re-encodes events to the requested format at path.
func runConvert(events []obs.DecisionEvent, path, format string) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if format == "binary" {
		return trace.WriteBinary(out, events)
	}
	sink := obs.NewJSONLSink(out)
	for i := range events {
		sink.Emit(&events[i])
	}
	return sink.Close()
}

func writeReport(events []obs.DecisionEvent, format string) error {
	report := obs.Analyze(events)
	if format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	report.WriteText(os.Stdout)
	return nil
}

// runFollow tails a live decision stream, keeping the last
// followWindow events for the rolling summaries and the final report.
// A dropped stream reconnects with backoff (unless retries is 0),
// resuming from the last seen sequence so no decision is double-counted.
func runFollow(url string, filter obs.EventFilter, max, every, retries int, backoff time.Duration, format string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := obs.FollowOptions{Filter: filter, Max: max, BackoffBase: backoff}
	if retries != 0 {
		opts.Reconnect = true
		opts.MaxRetries = retries
		opts.OnRetry = func(attempt int, lastSeq uint64, err error, delay time.Duration) {
			reason := "stream closed"
			if err != nil {
				reason = err.Error()
			}
			fmt.Fprintf(os.Stderr, "dvfstrace: %s; reconnecting in %s (attempt %d, resume after seq %d)\n",
				reason, delay.Round(time.Millisecond), attempt, lastSeq)
		}
	}
	var window []obs.DecisionEvent
	total := 0
	err := obs.Follow(ctx, url, opts, func(e obs.DecisionEvent) error {
		window = append(window, e)
		if len(window) > followWindow {
			window = append(window[:0], window[len(window)-followWindow:]...)
		}
		total++
		if every > 0 && total%every == 0 {
			fmt.Fprintln(os.Stderr, rollingLine(window, total))
		}
		return nil
	})
	if err != nil {
		return err
	}
	if total == 0 {
		fmt.Fprintln(os.Stderr, "dvfstrace: stream ended with no events")
		return nil
	}
	fmt.Fprintf(os.Stderr, "dvfstrace: stream ended after %d events; report covers the last %d\n",
		total, len(window))
	return writeReport(window, format)
}

// rollingLine renders the one-line live summary: throughput so far,
// deadline misses over the retained window, and the p95 of the
// end-to-end decision phase (decide in-process, serve over HTTP).
func rollingLine(window []obs.DecisionEvent, total int) string {
	miss, done := 0, 0
	for i := range window {
		if window[i].Done {
			done++
			if window[i].Missed {
				miss++
			}
		}
	}
	line := fmt.Sprintf("follow %6d events", total)
	if done > 0 {
		line += fmt.Sprintf("  miss %.1f%% of %d done", 100*float64(miss)/float64(done), done)
	}
	for _, ph := range obs.AnalyzePhases(window) {
		if ph.Name == obs.PhaseDecide || ph.Name == obs.PhaseServe {
			line += fmt.Sprintf("  %s p95 %s", ph.Name, obs.FormatDur(ph.P95Sec))
		}
	}
	return line
}
