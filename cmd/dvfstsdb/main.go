// Command dvfstsdb inspects, queries, compacts, and benchmarks the
// embedded telemetry store (the -tsdb-dir directory a dvfsd daemon
// writes) offline — no daemon required.
//
// Usage:
//
//	dvfstsdb -dir DIR                          # inspect: stats + series
//	dvfstsdb -dir DIR -query METRIC [-labels a=b,c=d]
//	         [-from T] [-to T] [-step 30s] [-agg mean] [-json]
//	dvfstsdb -dir DIR -compact [-keep 6h]      # rewrite segments
//	dvfstsdb -bench [-trace dec.jsonl] [-samples N] [-out bench.json]
//
// Times accept RFC3339, unix seconds, or offsets relative to the
// newest stored sample ("-15m"). -compact rewrites every segment from
// the recovered chunks — reclaiming torn tails, dropped series, and
// (with -keep) expired history — then atomically swaps the new
// segments in. -bench measures compression, append cost, and range-
// query latency on dvfssim-generated (or synthetic) telemetry and
// writes the numbers as JSON for the Makefile's tsdb-bench gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/tsdb"
)

func main() {
	dir := flag.String("dir", "", "telemetry store directory (a dvfsd -tsdb-dir)")
	query := flag.String("query", "", "metric to query (empty = inspect the store)")
	labels := flag.String("labels", "", "label selectors for -query (name=value,name2=value2)")
	from := flag.String("from", "", "range start: RFC3339, unix seconds, or relative to the newest sample (-15m); default -15m")
	to := flag.String("to", "", "range end; default the newest stored sample")
	step := flag.Duration("step", 0, "rollup bucket width for -query (0 = raw samples)")
	agg := flag.String("agg", "", "rollup: mean, min, max, count, rate (default mean)")
	jsonOut := flag.Bool("json", false, "emit JSON instead of tables")
	compact := flag.Bool("compact", false, "rewrite the store's segments in place")
	keep := flag.Duration("keep", 0, "with -compact, drop samples older than this before the newest (0 = keep all)")
	bench := flag.Bool("bench", false, "run the offline benchmark instead of reading a store")
	trace := flag.String("trace", "", "with -bench, ingest telemetry derived from this decision-trace JSONL (dvfssim -trace)")
	samples := flag.Int("samples", 60000, "with -bench, samples for the append microbenchmark")
	out := flag.String("out", "", "with -bench, write the results JSON here (default stdout)")
	flag.Parse()

	err := func() error {
		switch {
		case *bench:
			return runBench(*trace, *samples, *out)
		case *dir == "":
			return fmt.Errorf("missing -dir (or -bench)")
		case *compact:
			return runCompact(*dir, *keep)
		case *query != "":
			return runQuery(*dir, *query, *labels, *from, *to, *step, *agg, *jsonOut)
		default:
			return runInspect(*dir, *jsonOut)
		}
	}()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvfstsdb:", err)
		os.Exit(1)
	}
}

// openReadOnly opens a store over dir without disturbing it: replay
// recovers committed chunks (and truncates torn tails, exactly as the
// daemon would on restart).
func openReadOnly(dir string) (*tsdb.Store, error) {
	if _, err := os.Stat(dir); err != nil {
		return nil, err
	}
	return tsdb.Open(tsdb.Options{Dir: dir, Retention: -1})
}

// fullRange spans every representable sample (half the int64 range so
// step alignment can't overflow).
const (
	minTime = math.MinInt64 / 4
	maxTime = math.MaxInt64 / 4
)

// newestSample returns the newest timestamp across every series (0 if
// the store is empty) — the CLI's anchor for relative times.
func newestSample(s *tsdb.Store) int64 {
	var newest int64
	for _, meta := range s.SeriesList() {
		res, err := s.Query(tsdb.Query{Metric: meta.Metric, Labels: meta.Labels, FromMs: minTime, ToMs: maxTime})
		if err != nil {
			continue
		}
		for _, sr := range res {
			if n := len(sr.Points); n > 0 && sr.Points[n-1].T > newest {
				newest = sr.Points[n-1].T
			}
		}
	}
	return newest
}

// parseTime resolves a -from/-to value against the store's newest
// sample: RFC3339, unix seconds, or a duration offset ("-15m").
func parseTime(s string, anchor time.Time) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	if d, err := time.ParseDuration(s); err == nil {
		return anchor.Add(d), nil
	}
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return t, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil && !math.IsNaN(f) && !math.IsInf(f, 0) {
		sec, frac := math.Modf(f)
		return time.Unix(int64(sec), int64(frac*1e9)), nil
	}
	return time.Time{}, fmt.Errorf("invalid time %q (RFC3339, unix seconds, or relative like -15m)", s)
}

func runInspect(dir string, jsonOut bool) error {
	s, err := openReadOnly(dir)
	if err != nil {
		return err
	}
	defer s.Close()
	st := s.Stats()
	series := s.SeriesList()
	if jsonOut {
		return json.NewEncoder(os.Stdout).Encode(struct {
			Stats  tsdb.Stats        `json:"stats"`
			Series []tsdb.SeriesMeta `json:"series"`
		}{st, series})
	}
	fmt.Printf("store      %s\n", dir)
	fmt.Printf("series     %d\n", st.Series)
	fmt.Printf("samples    %d\n", st.Samples)
	fmt.Printf("chunks     %d sealed\n", st.SealedChunks)
	fmt.Printf("bytes      %d in memory (%.2f B/sample)\n", st.Bytes, st.BytesPerSamp)
	fmt.Printf("disk       %d segments, %d bytes\n", st.DiskSegments, st.DiskBytes)
	if newest := newestSample(s); newest != 0 {
		fmt.Printf("newest     %s\n", time.UnixMilli(newest).UTC().Format(time.RFC3339))
	}
	for _, m := range series {
		fmt.Println("  " + m.Key())
	}
	return nil
}

func runQuery(dir, metric, labelSel, fromS, toS string, step time.Duration, aggS string, jsonOut bool) error {
	s, err := openReadOnly(dir)
	if err != nil {
		return err
	}
	defer s.Close()

	var lbls []tsdb.Label
	if labelSel != "" {
		for _, part := range strings.Split(labelSel, ",") {
			name, value, ok := strings.Cut(part, "=")
			if !ok || name == "" {
				return fmt.Errorf("invalid label selector %q (want name=value,name2=value2)", part)
			}
			lbls = append(lbls, tsdb.Label{Name: name, Value: value})
		}
	}
	agg, err := tsdb.ParseAgg(aggS)
	if err != nil {
		return err
	}
	anchor := time.UnixMilli(newestSample(s))
	toT, err := parseTime(toS, anchor)
	if err != nil {
		return fmt.Errorf("-to: %w", err)
	}
	if toT.IsZero() {
		toT = anchor
	}
	fromT, err := parseTime(fromS, anchor)
	if err != nil {
		return fmt.Errorf("-from: %w", err)
	}
	if fromT.IsZero() {
		fromT = toT.Add(-15 * time.Minute)
	}
	res, err := s.Query(tsdb.Query{
		Metric: metric, Labels: lbls,
		FromMs: fromT.UnixMilli(), ToMs: toT.UnixMilli(),
		StepMs: step.Milliseconds(), Agg: agg,
	})
	if err != nil {
		return err
	}
	if jsonOut {
		if res == nil {
			res = []tsdb.SeriesResult{}
		}
		return json.NewEncoder(os.Stdout).Encode(res)
	}
	if len(res) == 0 {
		fmt.Println("no samples in range")
		return nil
	}
	for _, sr := range res {
		fmt.Println(sr.Meta.Key())
		for _, pt := range sr.Points {
			fmt.Printf("  %s  %g\n", time.UnixMilli(pt.T).UTC().Format(time.RFC3339), pt.V)
		}
	}
	return nil
}

// runCompact rewrites every segment from the recovered chunks into a
// sibling directory, then swaps the new segments in. Reclaims torn
// tails and, with keep > 0, history older than the newest sample minus
// keep.
func runCompact(dir string, keep time.Duration) error {
	src, err := openReadOnly(dir)
	if err != nil {
		return err
	}
	before := src.Stats()

	cutoff := int64(minTime)
	if keep > 0 {
		if newest := newestSample(src); newest != 0 {
			cutoff = newest - keep.Milliseconds()
		}
	}
	tmp := dir + ".compact"
	if err := os.RemoveAll(tmp); err != nil {
		return err
	}
	dst, err := tsdb.Open(tsdb.Options{Dir: tmp, Retention: -1})
	if err != nil {
		src.Close()
		return err
	}
	copied := int64(0)
	for _, meta := range src.SeriesList() {
		res, err := src.Query(tsdb.Query{Metric: meta.Metric, Labels: meta.Labels, FromMs: cutoff, ToMs: maxTime})
		if err != nil {
			src.Close()
			dst.Close()
			return fmt.Errorf("reading %s: %w", meta.Key(), err)
		}
		for _, sr := range res {
			// Exact-label match only: Query treats labels as a subset
			// selector, so a superset series would be copied twice.
			if sr.Meta.Key() != meta.Key() {
				continue
			}
			out := dst.Series(meta.Metric, meta.Labels...)
			for _, pt := range sr.Points {
				if out.Append(pt.T, pt.V) {
					copied++
				}
			}
		}
	}
	src.Close()
	if err := dst.Close(); err != nil {
		return err
	}

	// Swap: the old segments leave, the rewritten ones move in. A crash
	// between the two loops loses no samples that were expired anyway —
	// the rewritten set still sits intact in tmp.
	old, err := filepath.Glob(filepath.Join(dir, "*.tsb"))
	if err != nil {
		return err
	}
	for _, p := range old {
		if err := os.Remove(p); err != nil {
			return err
		}
	}
	fresh, err := filepath.Glob(filepath.Join(tmp, "*.tsb"))
	if err != nil {
		return err
	}
	for _, p := range fresh {
		if err := os.Rename(p, filepath.Join(dir, filepath.Base(p))); err != nil {
			return err
		}
	}
	if err := os.RemoveAll(tmp); err != nil {
		return err
	}

	after, err := openReadOnly(dir)
	if err != nil {
		return err
	}
	st := after.Stats()
	after.Close()
	fmt.Printf("compacted  %s\n", dir)
	fmt.Printf("samples    %d -> %d (%d copied)\n", before.Samples, st.Samples, copied)
	fmt.Printf("disk       %d -> %d bytes\n", before.DiskBytes, st.DiskBytes)
	return nil
}

// benchResult is the tsdb-bench JSON the Makefile gate asserts on.
type benchResult struct {
	Source            string  `json:"source"`
	Samples           int64   `json:"samples"`
	BytesPerSample    float64 `json:"bytes_per_sample"`
	CompressionVsRaw  float64 `json:"compression_vs_raw16"`
	AppendNsPerOp     float64 `json:"append_ns_per_op"`
	AppendAllocsPerOp float64 `json:"append_allocs_per_op"`
	Query1h1sMillis   float64 `json:"query_1h_1s_ms"`
	QueryPoints       int     `json:"query_points"`
}

func runBench(tracePath string, appendN int, outPath string) error {
	if appendN < 1000 {
		appendN = 1000
	}
	if appendN > 60000 {
		appendN = 60000 // one chunk holds at most 65535 samples
	}
	res := benchResult{Source: "synthetic"}

	// Compression: ingest realistic telemetry — series derived from a
	// dvfssim decision trace when given, synthetic scrape-shaped series
	// otherwise — then seal everything and compare against raw 16-byte
	// (t, v) points.
	store, err := tsdb.Open(tsdb.Options{Retention: -1})
	if err != nil {
		return err
	}
	if tracePath != "" {
		res.Source = "trace"
		if err := ingestTrace(store, tracePath); err != nil {
			return err
		}
	} else {
		ingestSynthetic(store)
	}
	if err := store.Close(); err != nil {
		return err
	}
	st := store.Stats()
	if st.Samples == 0 {
		return fmt.Errorf("no samples ingested (empty trace?)")
	}
	res.Samples = st.Samples
	res.BytesPerSample = st.BytesPerSamp
	res.CompressionVsRaw = 16 / st.BytesPerSamp

	// Append cost: time appendN scrape-shaped samples into one series
	// sized to avoid block rotation, so the number is the pure hot
	// path. Mallocs are counted around the loop on a single OS thread;
	// the minimum over a few repetitions discards stray runtime
	// allocations (timer wheels, GC assists) that are not the store's.
	ts := make([]int64, appendN)
	vs := make([]float64, appendN)
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).UnixMilli()
	for i := range ts {
		ts[i] = base + int64(i)*5000
		vs[i] = 100 + 3*math.Sin(float64(i)/40) + float64(i%7)
	}
	res.AppendNsPerOp = math.Inf(1)
	res.AppendAllocsPerOp = math.Inf(1)
	for rep := 0; rep < 3; rep++ {
		benchStore, err := tsdb.Open(tsdb.Options{
			Retention: -1,
			BlockDur:  1000 * time.Hour,
			// Sized for the encoder's worst case so the chunk never fills:
			// the loop below is pure hot path, no rotations.
			ChunkBytes: appendN*19 + 64,
		})
		if err != nil {
			return err
		}
		sr := benchStore.Series("bench_metric", tsdb.Label{Name: "shape", Value: "scrape"})
		sr.Append(base-5000, 0) // allocate the head buffer off the clock
		runtime.LockOSThread()
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		for i := range ts {
			sr.Append(ts[i], vs[i])
		}
		elapsed := time.Since(t0)
		runtime.ReadMemStats(&m1)
		runtime.UnlockOSThread()
		res.AppendNsPerOp = math.Min(res.AppendNsPerOp, float64(elapsed.Nanoseconds())/float64(appendN))
		res.AppendAllocsPerOp = math.Min(res.AppendAllocsPerOp, float64(m1.Mallocs-m0.Mallocs)/float64(appendN))
		benchStore.Close()
	}

	// Range query: one hour at 1 s resolution (3600 samples), median
	// latency over repeated raw queries.
	qStore, err := tsdb.Open(tsdb.Options{Retention: -1})
	if err != nil {
		return err
	}
	qs := qStore.Series("bench_query")
	for i := 0; i < 3600; i++ {
		qs.Append(base+int64(i)*1000, 50+10*math.Sin(float64(i)/60)+float64(i%5))
	}
	var lat []float64
	q := tsdb.Query{Metric: "bench_query", FromMs: base, ToMs: base + 3599*1000}
	for i := 0; i < 51; i++ {
		t0 := time.Now()
		out, err := qStore.Query(q)
		if err != nil {
			return err
		}
		if i == 0 {
			if len(out) != 1 {
				return fmt.Errorf("query matched %d series, want 1", len(out))
			}
			res.QueryPoints = len(out[0].Points)
		}
		lat = append(lat, float64(time.Since(t0).Nanoseconds())/1e6)
	}
	sort.Float64s(lat)
	res.Query1h1sMillis = lat[len(lat)/2]
	qStore.Close()

	enc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if outPath != "" {
		if err := os.WriteFile(outPath, enc, 0o644); err != nil {
			return err
		}
	}
	_, err = os.Stdout.Write(enc)
	return err
}

// ingestTrace replays a decision-trace JSONL through an obs.Registry
// and the same scrape loop dvfsd runs, so the stored telemetry has
// exactly the production shape: counters ticking up, histogram
// quantiles moving slowly, gauges stepping between levels. One scrape
// tick per decision, five simulated seconds apart.
func ingestTrace(store *tsdb.Store, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	reg := obs.NewRegistry()
	decisions := reg.CounterVec("sim_decisions_total",
		"Decisions by workload and chosen level.", "workload", "level")
	missTotal := reg.CounterVec("sim_misses_total",
		"Deadline misses by workload.", "workload")
	execH := reg.HistogramVec("sim_exec_seconds",
		"Actual job execution time.", obs.LogLinearBuckets(1e-4, 10, 5), "workload")
	residH := reg.HistogramVec("sim_residual_seconds",
		"Prediction residual magnitude.", obs.LogLinearBuckets(1e-6, 1, 5), "workload")
	levelG := reg.GaugeVec("sim_level", "Last chosen DVFS level.", "workload")
	freqG := reg.GaugeVec("sim_freq_khz", "Last chosen frequency.", "workload")
	scraper := tsdb.NewScraper(store, reg, 5*time.Second, nil)

	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	line, tick := 0, 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e obs.DecisionEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return fmt.Errorf("%s:%d: %w", path, line, err)
		}
		decisions.With(e.Workload, strconv.Itoa(e.Level)).Inc()
		levelG.With(e.Workload).Set(float64(e.Level))
		freqG.With(e.Workload).Set(float64(e.FreqKHz))
		if e.Done {
			execH.With(e.Workload).Observe(e.ActualExecSec)
			if e.Missed {
				missTotal.With(e.Workload).Inc()
			}
			if e.Predicted {
				residH.With(e.Workload).Observe(math.Abs(e.ResidualSec))
			}
		}
		scraper.Tick(base.Add(time.Duration(tick) * 5 * time.Second))
		tick++
	}
	return sc.Err()
}

// ingestSynthetic fills the store with scrape-shaped series (slow
// drifts, counters, step changes) when no trace is supplied. Gauge
// values carry a bounded mantissa, mirroring what obs.Scrape emits —
// raw full-mantissa floats never reach the store in production.
func ingestSynthetic(store *tsdb.Store) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).UnixMilli()
	for s := 0; s < 8; s++ {
		sr := store.Series("synthetic_gauge", tsdb.Label{Name: "n", Value: strconv.Itoa(s)})
		ctr := store.Series("synthetic_counter", tsdb.Label{Name: "n", Value: strconv.Itoa(s)})
		total := 0.0
		for i := 0; i < 4000; i++ {
			t := base + int64(i)*5000
			g := 100 + 5*math.Sin(float64(i+s*37)/50) + float64((i*7+s)%11)
			sr.Append(t, math.Float64frombits(math.Float64bits(g)&^(1<<40-1)))
			total += float64((i + s) % 13)
			ctr.Append(t, total)
		}
	}
}
