// Command dvfsvet runs the module's self-hosted static analyzers
// (internal/vet) over Go packages: hotpathalloc, noblock,
// lockdiscipline, and clockdiscipline — the machine-checked form of
// the paper's overhead budget for the serving stack itself.
//
// Usage:
//
//	dvfsvet ./...                      vet the whole module (default)
//	dvfsvet internal/obs internal/core vet specific packages
//	dvfsvet -analyzers hotpathalloc,noblock ./...
//	dvfsvet -format json ./...         machine-readable findings
//
// Exit status: 0 when no findings, 1 when any analyzer reported a
// finding, 2 on usage, load, or type-check errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
	"repro/internal/vet"
)

func main() {
	format := flag.String("format", "text", `output format: "text" or "json"`)
	analyzers := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	logFlags := obs.RegisterLogFlags(flag.CommandLine)
	flag.Parse()

	if _, err := logFlags.Logger(os.Stderr); err != nil {
		usageErr(err)
	}
	if *format != "text" && *format != "json" {
		usageErr(fmt.Errorf("unknown format %q (want text or json)", *format))
	}
	suite := vet.DefaultSuite()
	if *analyzers != "" {
		byName := map[string]*vet.Analyzer{}
		for _, a := range suite.Analyzers {
			byName[a.Name] = a
		}
		var picked []*vet.Analyzer
		for _, name := range strings.Split(*analyzers, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				usageErr(fmt.Errorf("unknown analyzer %q", name))
			}
			picked = append(picked, a)
		}
		suite.Analyzers = picked
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := vet.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}
	diags, err := suite.Run(loader, cwd, patterns...)
	if err != nil {
		fatal(err)
	}

	switch *format {
	case "json":
		out := struct {
			Findings []vet.Diagnostic `json:"findings"`
			Count    int              `json:"count"`
		}{Findings: diags, Count: len(diags)}
		if out.Findings == nil {
			out.Findings = []vet.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) == 0 {
			fmt.Println("dvfsvet: ok")
		} else {
			fmt.Printf("dvfsvet: %d finding(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func usageErr(err error) {
	fmt.Fprintln(os.Stderr, "dvfsvet:", err)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvfsvet:", err)
	os.Exit(2)
}
