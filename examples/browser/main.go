// Browser: the uzbl web browser's command loop, showing the framework
// discovering *event type* as a control-flow feature automatically.
//
// The paper (§6.1) notes that prior work hand-engineered event-type
// features for browsers, while this framework finds them on its own:
// the command dispatch is a function-pointer call, the instrumentation
// records the callee address, and the Lasso keeps the one-hot address
// columns that explain execution time. This example prints the trained
// model's view of each command type and then runs a browsing session.
//
// Run with: go run ./examples/browser
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/governor"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workload"
)

var cmdNames = map[int64]string{
	workload.UzblCmdKey:    "key-press",
	workload.UzblCmdScroll: "scroll",
	workload.UzblCmdJS:     "run-script",
	workload.UzblCmdLoad:   "load-page",
	workload.UzblCmdReload: "reload",
}

func main() {
	w := workload.Uzbl()
	plat := platform.ODROIDXU3A7()
	ctrl, err := core.Build(w, core.Config{Plat: plat, ProfileSeed: 21})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("features the framework selected for the browser:")
	for _, name := range ctrl.SelectedFeatureNames() {
		fmt.Printf("  %s\n", name)
	}

	// What does the model predict per command type? Vectorize a probe
	// trace per command and ask the fmax model.
	fmt.Printf("\npredicted command cost at max frequency:\n")
	for _, cmd := range []int64{workload.UzblCmdKey, workload.UzblCmdScroll,
		workload.UzblCmdJS, workload.UzblCmdLoad, workload.UzblCmdReload} {
		params := map[string]int64{"cmd": cmd, "pageElems": 500, "scrollLines": 15, "jsOps": 20}
		tr := features.NewTrace()
		if _, err := ctrl.Slice.Run(w.FreshGlobals(), params, tr); err != nil {
			log.Fatal(err)
		}
		pred := ctrl.ModelMax.Predict(ctrl.Schema.Vectorize(tr))
		fmt.Printf("  %-11s %8.2f ms\n", cmdNames[cmd], math.Max(0, pred)*1e3)
	}

	// A browsing session under three governors.
	cfg := sim.Config{Plat: plat, Seed: 31, Jobs: 500}
	fmt.Printf("\nbrowsing session (500 commands, 50 ms responsiveness budget):\n")
	fmt.Printf("%-13s %12s %10s\n", "governor", "energy [J]", "misses")
	for _, g := range []governor.Governor{
		&governor.Performance{Plat: plat},
		&governor.Interactive{Plat: plat},
		ctrl,
	} {
		r, err := sim.Run(w, g, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s %12.4f %9.1f%%\n", r.Governor, r.EnergyJ, 100*r.MissRate())
	}
}
