// Gameloop: the curseofwar real-time-strategy game loop under a
// sweeping frame budget — the paper's Fig 16 trade-off on a single
// workload.
//
// A game's frame budget is a design choice (60 fps = 16.7 ms,
// 30 fps = 33 ms, 20 fps = 50 ms). This example sweeps the budget and
// shows how the predictive controller converts every extra millisecond
// of slack into energy savings while the deadline-blind baselines
// either waste energy or miss frames.
//
// Run with: go run ./examples/gameloop
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/governor"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	w := workload.CurseOfWar()
	plat := platform.ODROIDXU3A7()
	swTbl := platform.MeasureSwitchTable(plat, 500, 0.95, 5)

	ctrl, err := core.Build(w, core.Config{Plat: plat, ProfileSeed: 3, Switch: swTbl})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("curseofwar game loop: energy and dropped frames vs frame budget")
	fmt.Printf("\n%8s %6s   %18s %18s\n", "", "", "prediction", "performance")
	fmt.Printf("%8s %6s %10s %8s %10s %8s\n",
		"budget", "fps", "energy[J]", "missed", "energy[J]", "missed")

	for _, fps := range []float64{60, 40, 30, 25, 20} {
		budget := 1.0 / fps
		cfg := sim.Config{Plat: plat, BudgetSec: budget, Jobs: 400, Seed: 17}
		pred, err := sim.Run(w, ctrl, cfg)
		if err != nil {
			log.Fatal(err)
		}
		perf, err := sim.Run(w, &governor.Performance{Plat: plat}, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6.1fms %6.0f %10.4f %7.1f%% %10.4f %7.1f%%\n",
			budget*1e3, fps,
			pred.EnergyJ, 100*pred.MissRate(),
			perf.EnergyJ, 100*perf.MissRate())
	}

	fmt.Println("\nnote: below the worst-case frame time even max frequency drops")
	fmt.Println("frames; above it, the predictive controller turns slack into savings.")
}
