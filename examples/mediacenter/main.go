// Mediacenter: two interactive tasks sharing one core — a video
// decoder at 10 fps and a game overlay at 20 fps — each driven by its
// own generated prediction controller (the paper's §4.1 multi-task
// case, which it supports but does not evaluate).
//
// The example also surfaces the contention limitation §7 names: the
// controllers are mutually unaware, so the short-budget overlay can
// queue behind a decoder job that was deliberately stretched to its
// own (longer) deadline.
//
// Run with: go run ./examples/mediacenter
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/governor"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	plat := platform.ODROIDXU3A7()
	video := workload.LDecode()
	overlay := workload.XPilot()

	videoCtrl, err := core.Build(video, core.Config{Plat: plat, ProfileSeed: 8})
	if err != nil {
		log.Fatal(err)
	}
	overlayCtrl, err := core.Build(overlay, core.Config{Plat: plat, ProfileSeed: 9})
	if err != nil {
		log.Fatal(err)
	}

	mk := func(g1, g2 governor.Governor) []sim.TaskSpec {
		return []sim.TaskSpec{
			{W: video, Gov: g1, BudgetSec: 0.100, PeriodSec: 0.100, Jobs: 200},
			{W: overlay, Gov: g2, BudgetSec: 0.050, PeriodSec: 0.050, OffsetSec: 0.037, Jobs: 400},
		}
	}
	cfg := sim.Config{Plat: plat, Seed: 21}

	perf, err := sim.RunMulti(mk(&governor.Performance{Plat: plat}, &governor.Performance{Plat: plat}), cfg)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := sim.RunMulti(mk(videoCtrl, overlayCtrl), cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("media center: 10 fps decode + 20 fps overlay on one core")
	fmt.Printf("\n%-13s %12s %16s %16s\n", "governors", "energy [J]", "video misses", "overlay misses")
	for _, r := range []struct {
		name string
		m    *sim.MultiResult
	}{{"performance", perf}, {"prediction", pred}} {
		fmt.Printf("%-13s %12.4f %15.2f%% %15.2f%%\n",
			r.name, r.m.EnergyJ,
			100*r.m.PerTask[0].MissRate(), 100*r.m.PerTask[1].MissRate())
	}
	fmt.Printf("\nprediction saves %.1f%% energy; the overlay's residual misses are\n",
		100*(1-pred.EnergyJ/perf.EnergyJ))
	fmt.Println("queueing behind stretched decoder jobs — the cross-task contention")
	fmt.Println("the paper's future-work section calls out (§7).")
}
