// Quickstart: generate a prediction-based DVFS controller for one
// interactive task and compare it against running flat-out.
//
// The flow is the paper's Fig 13 end to end: annotate a task (the 2048
// game loop), instrument its control flow, profile it off-line, train
// the asymmetric execution-time model, slice the program down to the
// selected features, and then let the generated controller pick a
// frequency before every job.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/governor"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	// The task: one turn of the 2048 puzzle game, with a 50 ms
	// response-time budget (§1: ~100 ms is the perception limit, 50 ms
	// variations are imperceptible).
	w := workload.Game2048()
	plat := platform.ODROIDXU3A7()

	// Off-line: instrument → profile → train → slice.
	ctrl, err := core.Build(w, core.Config{Plat: plat, ProfileSeed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task            %s — %s\n", w.Name, w.TaskDesc)
	fmt.Printf("features        %v\n", ctrl.SelectedFeatureNames())
	fmt.Printf("slice           %d of %d statements survive slicing\n\n",
		ctrl.Slice.SliceStmts, ctrl.Slice.FullStmts)

	// Run-time: same inputs, two governors.
	cfg := sim.Config{Plat: plat, Seed: 42}
	baseline, err := sim.Run(w, &governor.Performance{Plat: plat}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	predicted, err := sim.Run(w, ctrl, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %12s %10s\n", "governor", "energy [J]", "misses")
	for _, r := range []*sim.Result{baseline, predicted} {
		fmt.Printf("%-22s %12.4f %9.1f%%\n", r.Governor, r.EnergyJ, 100*r.MissRate())
	}
	fmt.Printf("\nprediction saves %.1f%% energy with the same user experience\n",
		100*(1-predicted.EnergyJ/baseline.EnergyJ))
}
