// Sysfs: drive the prediction controller through the Linux cpufreq
// userspace-governor interface, the way the paper's prototype actually
// sets frequencies on the ODROID-XU3's kernel.
//
// The controller's decisions become plain sysfs writes — swap the
// emulated tree for /sys/devices/system/cpu/cpu0/cpufreq and the same
// loop drives real hardware. The example first trains a controller,
// saves its model to the paper's distribute-with-the-program format,
// reloads it (as an installed application would), and then runs a few
// jobs against the emulated cpufreq tree, printing every interaction.
//
// Run with: go run ./examples/sysfs
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/cpufreq"
	"repro/internal/governor"
	"repro/internal/platform"
	"repro/internal/taskir"
	"repro/internal/workload"
)

func main() {
	w := workload.LDecode()
	plat := platform.ODROIDXU3A7()
	swTbl := platform.MeasureSwitchTable(plat, 300, 0.95, 4)

	// Developer side: profile, train, and ship the model (§4.2).
	trained, err := core.Build(w, core.Config{Plat: plat, ProfileSeed: 6, Switch: swTbl})
	if err != nil {
		log.Fatal(err)
	}
	var shipped bytes.Buffer
	if err := core.SaveController(&shipped, trained); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shipped model: %d bytes of JSON\n", shipped.Len())

	// User side: the installed app loads the model and binds to sysfs.
	ctrl, err := core.LoadController(&shipped, w, plat, swTbl)
	if err != nil {
		log.Fatal(err)
	}
	fs := cpufreq.New(plat, swTbl)
	show(fs, "scaling_governor")
	show(fs, "scaling_available_frequencies")
	if err := fs.Write("scaling_governor", "userspace"); err != nil {
		log.Fatal(err)
	}
	fmt.Println(`echo userspace > scaling_governor`)

	// Drive a few frames: predict, write setspeed, decode.
	gen := w.NewGen(14)
	globals := w.FreshGlobals()
	fmt.Printf("\n%6s %22s %14s %12s\n", "frame", "setspeed [kHz]", "predicted", "actual")
	for i := 0; i < 8; i++ {
		params := gen.Next(i)
		job := &governor.Job{
			Index: i, Params: params, Globals: globals,
			DeadlineSec: 0.050, RemainingBudgetSec: 0.050,
		}
		dec := ctrl.JobStart(job, fs.Level())
		if err := fs.SetLevelKHz(int(dec.Target.FreqHz / 1e3)); err != nil {
			log.Fatal(err)
		}
		env := taskir.NewEnv(globals)
		env.SetParams(params)
		wk, err := taskir.Run(w.Prog, env, taskir.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		actual := plat.JobTimeAt(wk.CPU, wk.MemSec, fs.Level())
		fmt.Printf("%6d %18d %11.1f ms %9.1f ms\n",
			i, int(dec.Target.FreqHz/1e3), dec.PredictedExecSec*1e3, actual*1e3)
	}
	fmt.Printf("\nDVFS transitions through sysfs: %d\n", fs.Switches)
}

func show(fs *cpufreq.FS, name string) {
	v, err := fs.Read(name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cat %s → %s\n", name, strings.TrimSpace(v))
}
