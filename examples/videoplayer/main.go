// Videoplayer: a 30 fps soft-real-time video decoder (the paper's
// ldecode benchmark) under four DVFS governors.
//
// Each frame must decode within its 33 ms frame period for smooth
// playback; decoding faster buys nothing. The example prints the
// paper-style comparison and then zooms into a window of frames to
// show how the predictive controller adapts the frequency to each
// frame's content (I/P/B type and motion) before it decodes.
//
// Run with: go run ./examples/videoplayer
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/governor"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	w := workload.LDecode()
	plat := platform.ODROIDXU3A7()
	swTbl := platform.MeasureSwitchTable(plat, 500, 0.95, 99)

	ctrl, err := core.Build(w, core.Config{Plat: plat, ProfileSeed: 7, Switch: swTbl})
	if err != nil {
		log.Fatal(err)
	}

	const framePeriod = 1.0 / 30 // 33.3 ms per frame
	cfg := sim.Config{Plat: plat, BudgetSec: framePeriod, Jobs: 300, Seed: 11}

	governors := []governor.Governor{
		&governor.Performance{Plat: plat},
		&governor.Interactive{Plat: plat},
		&governor.PID{Plat: plat, Switch: swTbl, MemFraction: ctrl.MemFraction()},
		ctrl,
	}

	fmt.Printf("decoding 300 frames at 30 fps (%.1f ms budget per frame)\n\n", framePeriod*1e3)
	fmt.Printf("%-13s %12s %10s %14s\n", "governor", "energy [J]", "misses", "avg level")
	var baseline float64
	for _, g := range governors {
		r, err := sim.Run(w, g, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if baseline == 0 {
			baseline = r.EnergyJ
		}
		lvl := 0.0
		for _, rec := range r.Records {
			lvl += float64(rec.LevelIdx)
		}
		lvl /= float64(len(r.Records))
		fmt.Printf("%-13s %12.4f %9.1f%% %11.1f/12\n",
			r.Governor, r.EnergyJ, 100*r.MissRate(), lvl)
	}

	// Zoom: per-frame decisions of the predictive controller.
	r, err := sim.Run(w, ctrl, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nper-frame view (frames 24–35): the controller reads each frame's\n")
	fmt.Printf("type and motion through the prediction slice and sets the level first\n\n")
	fmt.Printf("%6s %8s %12s %12s %8s\n", "frame", "level", "predicted", "actual", "missed")
	for _, rec := range r.Records[24:36] {
		fmt.Printf("%6d %5d/12 %9.1f ms %9.1f ms %8t\n",
			rec.Index, rec.LevelIdx, rec.PredictedExecSec*1e3, rec.ExecSec*1e3, rec.Missed)
	}
}
