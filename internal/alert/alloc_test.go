package alert

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/platform"
)

// TestEnergyMeterZeroAlloc gates the per-decision metering hot path:
// after the first event builds the stream, pricing a decision must not
// allocate. Run by `make alloc-gate`.
func TestEnergyMeterZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is unreliable under -race")
	}
	m := NewEnergyMeter(EnergyConfig{Platform: platform.ODROIDXU3A7(), BudgetW: 2})
	e := &obs.DecisionEvent{
		Workload: "sha", Device: "d0",
		FromLevel: 2, Level: 4,
		PredictorSec: 0.0001, SwitchSec: 0.001,
		Done: true, ActualExecSec: 0.01,
	}
	m.Emit(e) // first event allocates the stream; the steady state must not
	allocs := testing.AllocsPerRun(1000, func() {
		e.TimeSec += 0.02
		m.Emit(e)
	})
	if allocs != 0 {
		t.Fatalf("EnergyMeter.Emit allocated %.1f/op, want 0", allocs)
	}
}
