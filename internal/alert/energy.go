package alert

import (
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/platform"
)

// The online energy meter is the live counterpart of dvfsreplay's
// offline reconstruction (internal/replay.reconstruct): it charges the
// same four segments per decision event — the idle gap before the job
// at IdlePower(from), the predictor slice at ActivePower(from), the
// DVFS transition at SwitchPower(from, to), and the execution at
// ActivePower(level) — keyed by (workload, device). The one segment it
// cannot charge is the replay's final drain to the horizon (the trace
// has not ended yet), so on an identical trace the two totals agree to
// within one idle period; the cross-validation test asserts 2%.
//
// It runs as a tracer sink on the decision path, so Emit is
// //dvfs:hotpath: pure float arithmetic over precomputed power tables
// under one short mutex, with allocations confined to the first event
// of a new stream.

// EnergyConfig wires an EnergyMeter. Zero values select defaults.
type EnergyConfig struct {
	// Platform prices events that do not carry a platform name (the
	// common case: this daemon's own serving). Required for those
	// events to be metered; events naming an unknown platform are
	// counted in Skipped rather than guessed at.
	Platform *platform.Platform
	// BudgetW is the average power budget per stream in watts; > 0
	// enables the fast/slow burn-rate windows (mirroring
	// obs.SLOTracker) exported as dvfsd_energy_budget_burn.
	BudgetW float64
	// FastWindow and SlowWindow are the burn windows in decisions;
	// zero → 128 and 2048.
	FastWindow, SlowWindow int
	// MinSamples gates burn reporting until a window has enough
	// decisions to mean anything; zero → 16.
	MinSamples int
	// MaxKeys bounds tracked (workload, device) streams; excess folds
	// into the overflow stream. Zero → 64.
	MaxKeys int
}

func (c EnergyConfig) withDefaults() EnergyConfig {
	if c.FastWindow <= 0 {
		c.FastWindow = 128
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = 2048
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 16
	}
	if c.MaxKeys <= 0 {
		c.MaxKeys = 64
	}
	return c
}

// EnergyOverflowKey is the stream that absorbs decisions beyond the
// MaxKeys bound, so totals stay accurate while memory stays bounded.
const EnergyOverflowKey = "_overflow"

// streamKey identifies one metered stream. A struct key keeps the hot
// path's map lookup allocation-free.
type streamKey struct {
	workload, device string
}

// powerModel is a platform's power curves flattened into index-addressed
// tables, so the hot path prices a segment with two loads and a
// multiply instead of a Level lookup that can fail.
type powerModel struct {
	active []float64
	idle   []float64
	sw     [][]float64 // [from][to]
}

func newPowerModel(p *platform.Platform) *powerModel {
	n := p.NumLevels()
	pm := &powerModel{
		active: make([]float64, n),
		idle:   make([]float64, n),
		sw:     make([][]float64, n),
	}
	for i := 0; i < n; i++ {
		l := p.Levels[i]
		pm.active[i] = p.ActivePower(l)
		pm.idle[i] = p.IdlePower(l)
		pm.sw[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			pm.sw[i][j] = p.SwitchPower(l, p.Levels[j])
		}
	}
	return pm
}

// energyStream is one (workload, device) accumulator.
type energyStream struct {
	pm     *powerModel
	cursor float64 // accounting clock in trace seconds

	jobs     int64 // events that contributed an execution segment
	oneShots int64 // of those, priced from the prediction (Done=false)

	totalJ, idleJ, execJ, predJ, switchJ float64
	predBasisJ                           float64 // exec energy priced from predictions

	fast, slow *burnWin
}

// burnWin is a fixed-size ring of (joules, seconds) pairs with running
// sums — the energy twin of obs.SLOTracker's miss window.
type burnWin struct {
	j, sec       []float64
	idx, n       int
	sumJ, sumSec float64
}

func newBurnWin(size int) *burnWin {
	return &burnWin{j: make([]float64, size), sec: make([]float64, size)}
}

func (w *burnWin) push(j, sec float64) {
	w.sumJ += j - w.j[w.idx]
	w.sumSec += sec - w.sec[w.idx]
	w.j[w.idx] = j
	w.sec[w.idx] = sec
	w.idx++
	if w.idx == len(w.j) {
		w.idx = 0
	}
	if w.n < len(w.j) {
		w.n++
	}
}

// watts is the window's average power draw.
func (w *burnWin) watts() float64 {
	if w.sumSec <= 0 {
		return 0
	}
	return w.sumJ / w.sumSec
}

// EnergyMeter accumulates per-decision energy live, keyed by
// (workload, device). It implements obs.Sink so dvfsd attaches it to
// the tracer; fleet ingest feeds it the same way.
type EnergyMeter struct {
	mu      sync.Mutex
	cfg     EnergyConfig
	models  map[string]*powerModel // platform name → tables; nil = unknown
	streams map[streamKey]*energyStream
	skipped uint64
}

// NewEnergyMeter builds a meter.
func NewEnergyMeter(cfg EnergyConfig) *EnergyMeter {
	cfg = cfg.withDefaults()
	m := &EnergyMeter{
		cfg:     cfg,
		models:  map[string]*powerModel{},
		streams: map[streamKey]*energyStream{},
	}
	if cfg.Platform != nil {
		m.models[""] = newPowerModel(cfg.Platform)
		m.models[cfg.Platform.Name] = m.models[""]
	} else {
		m.models[""] = nil
	}
	return m
}

// Emit implements obs.Sink: price one decision event. The fast path —
// known stream, known platform — is allocation-free; new streams and
// platforms allocate once on first sight.
//
//dvfs:hotpath
func (m *EnergyMeter) Emit(e *obs.DecisionEvent) {
	m.mu.Lock()
	st := m.streams[streamKey{e.Workload, e.Device}]
	if st == nil {
		//dvfs:allow-alloc first event of a stream: builds the accumulator and (at most once per platform) the power tables
		st = m.newStream(e.Workload, e.Device, e.Platform)
	}
	pm := st.pm
	if pm == nil {
		// Unknown platform: counting beats guessing at a power curve.
		m.skipped++
		m.mu.Unlock()
		return
	}
	from, lv := e.FromLevel, e.Level
	if from < 0 || from >= len(pm.active) {
		from = len(pm.active) - 1
	}
	if lv < 0 || lv >= len(pm.active) {
		lv = len(pm.active) - 1
	}
	t0 := st.cursor
	var idle, pred, sw, exec float64
	if gap := e.TimeSec - st.cursor; gap > 0 {
		idle = pm.idle[from] * gap
		st.cursor = e.TimeSec
	}
	if e.PredictorSec > 0 {
		pred = pm.active[from] * e.PredictorSec
		st.cursor += e.PredictorSec
	}
	swSec := e.MeasSwitchSec
	if swSec == 0 && lv != from {
		// The table estimate beats pricing the transition at zero —
		// the same fallback the offline reconstruction uses.
		swSec = e.SwitchSec
	}
	if swSec > 0 {
		sw = pm.sw[from][lv] * swSec
		st.cursor += swSec
	}
	switch {
	case e.Done && e.ActualExecSec > 0:
		exec = pm.active[lv] * e.ActualExecSec
		st.cursor += e.ActualExecSec
		st.jobs++
	case !e.Done && e.PredictedExecSec > 0:
		// One-shot serve decision: the job runs client-side, so price
		// the prediction — flagged separately in predBasisJ.
		exec = pm.active[lv] * e.PredictedExecSec
		st.cursor += e.PredictedExecSec
		st.jobs++
		st.oneShots++
		st.predBasisJ += exec
	}
	st.idleJ += idle
	st.predJ += pred
	st.switchJ += sw
	st.execJ += exec
	st.totalJ += idle + pred + sw + exec
	if st.fast != nil {
		if dt := st.cursor - t0; dt > 0 {
			st.fast.push(idle+pred+sw+exec, dt)
			st.slow.push(idle+pred+sw+exec, dt)
		}
	}
	m.mu.Unlock()
}

// newStream resolves the event's platform and registers the stream,
// folding into the overflow stream past MaxKeys. Caller holds m.mu.
func (m *EnergyMeter) newStream(workload, device, platName string) *energyStream {
	pm, ok := m.models[platName]
	if !ok {
		if p, err := platform.ByName(platName); err == nil {
			pm = newPowerModel(p)
		}
		m.models[platName] = pm
	}
	key := streamKey{workload, device}
	if len(m.streams) >= m.cfg.MaxKeys {
		key = streamKey{EnergyOverflowKey, EnergyOverflowKey}
		if st := m.streams[key]; st != nil {
			return st
		}
	}
	st := &energyStream{pm: pm}
	if pm != nil && m.cfg.BudgetW > 0 {
		st.fast = newBurnWin(m.cfg.FastWindow)
		st.slow = newBurnWin(m.cfg.SlowWindow)
	}
	m.streams[key] = st
	return st
}

// Close implements obs.Sink.
func (m *EnergyMeter) Close() error { return nil }

// EnergyStreamStats is one stream's totals for export.
type EnergyStreamStats struct {
	Workload, Device string
	Jobs, OneShots   int64

	TotalJ, IdleJ, ExecJ, PredictorJ, SwitchJ float64
	PredictedBasisJ                           float64

	PerJobJ        float64 // TotalJ / Jobs
	PredictorShare float64 // PredictorJ / TotalJ

	// FastBurn and SlowBurn are windowed watts divided by BudgetW;
	// zero until MinSamples decisions have landed or when no budget is
	// configured.
	FastBurn, SlowBurn float64
	DurationSec        float64
}

// Snapshot returns every stream's stats, sorted by workload then
// device.
func (m *EnergyMeter) Snapshot() []EnergyStreamStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]EnergyStreamStats, 0, len(m.streams))
	for key, st := range m.streams {
		s := EnergyStreamStats{
			Workload: key.workload, Device: key.device,
			Jobs: st.jobs, OneShots: st.oneShots,
			TotalJ: st.totalJ, IdleJ: st.idleJ, ExecJ: st.execJ,
			PredictorJ: st.predJ, SwitchJ: st.switchJ,
			PredictedBasisJ: st.predBasisJ,
			DurationSec:     st.cursor,
		}
		if st.jobs > 0 {
			s.PerJobJ = st.totalJ / float64(st.jobs)
		}
		if st.totalJ > 0 {
			s.PredictorShare = st.predJ / st.totalJ
		}
		if m.cfg.BudgetW > 0 && st.fast != nil {
			if st.fast.n >= m.cfg.MinSamples {
				s.FastBurn = st.fast.watts() / m.cfg.BudgetW
			}
			if st.slow.n >= m.cfg.MinSamples {
				s.SlowBurn = st.slow.watts() / m.cfg.BudgetW
			}
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Workload != out[j].Workload {
			return out[i].Workload < out[j].Workload
		}
		return out[i].Device < out[j].Device
	})
	return out
}

// TotalJ returns the meter-wide total.
func (m *EnergyMeter) TotalJ() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := 0.0
	for _, st := range m.streams {
		t += st.totalJ
	}
	return t
}

// Skipped returns how many events were dropped for lack of a usable
// platform power model.
func (m *EnergyMeter) Skipped() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.skipped
}

// BudgetW returns the configured budget (0 = burn tracking off).
func (m *EnergyMeter) BudgetW() float64 { return m.cfg.BudgetW }
