package alert

import (
	"math"
	"testing"

	"repro/internal/obs"
	"repro/internal/platform"
)

func approx(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Abs(b))
}

// TestEnergyAccounting prices one completed decision by hand — the
// four segments the offline reconstruction charges — and checks the
// meter agrees exactly.
func TestEnergyAccounting(t *testing.T) {
	p := platform.ODROIDXU3A7()
	m := NewEnergyMeter(EnergyConfig{Platform: p})
	e := &obs.DecisionEvent{
		Workload: "sha", Device: "d0",
		TimeSec:   1.0, // idle gap from cursor 0
		FromLevel: 2, Level: 4,
		PredictorSec:  0.001,
		MeasSwitchSec: 0.002,
		Done:          true,
		ActualExecSec: 0.05,
	}
	m.Emit(e)
	lf, _ := p.Level(2)
	lt, _ := p.Level(4)
	wantIdle := p.IdlePower(lf) * 1.0
	wantPred := p.ActivePower(lf) * 0.001
	wantSw := p.SwitchPower(lf, lt) * 0.002
	wantExec := p.ActivePower(lt) * 0.05
	snap := m.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("streams = %d, want 1", len(snap))
	}
	s := snap[0]
	if s.Workload != "sha" || s.Device != "d0" || s.Jobs != 1 || s.OneShots != 0 {
		t.Fatalf("stream identity: %+v", s)
	}
	if !approx(s.IdleJ, wantIdle) || !approx(s.PredictorJ, wantPred) ||
		!approx(s.SwitchJ, wantSw) || !approx(s.ExecJ, wantExec) {
		t.Fatalf("segments idle=%g pred=%g sw=%g exec=%g, want %g/%g/%g/%g",
			s.IdleJ, s.PredictorJ, s.SwitchJ, s.ExecJ, wantIdle, wantPred, wantSw, wantExec)
	}
	want := wantIdle + wantPred + wantSw + wantExec
	if !approx(s.TotalJ, want) || !approx(m.TotalJ(), want) {
		t.Fatalf("total = %g, want %g", s.TotalJ, want)
	}
	if !approx(s.PerJobJ, want) {
		t.Fatalf("per-job = %g, want %g", s.PerJobJ, want)
	}
	if !approx(s.PredictorShare, wantPred/want) {
		t.Fatalf("predictor share = %g, want %g", s.PredictorShare, wantPred/want)
	}
	wantDur := 1.0 + 0.001 + 0.002 + 0.05
	if !approx(s.DurationSec, wantDur) {
		t.Fatalf("duration = %g, want %g", s.DurationSec, wantDur)
	}
}

// TestEnergySwitchFallback mirrors the replay rule: with no measured
// transition time, a level change is priced from the table estimate,
// and a same-level "switch" costs nothing.
func TestEnergySwitchFallback(t *testing.T) {
	p := platform.ODROIDXU3A7()
	m := NewEnergyMeter(EnergyConfig{Platform: p})
	m.Emit(&obs.DecisionEvent{
		Workload: "w", FromLevel: 1, Level: 3,
		SwitchSec: 0.004, Done: true, ActualExecSec: 0.01,
	})
	lf, _ := p.Level(1)
	lt, _ := p.Level(3)
	wantSw := p.SwitchPower(lf, lt) * 0.004
	if s := m.Snapshot()[0]; !approx(s.SwitchJ, wantSw) {
		t.Fatalf("fallback switch = %g, want %g", s.SwitchJ, wantSw)
	}
	m2 := NewEnergyMeter(EnergyConfig{Platform: p})
	m2.Emit(&obs.DecisionEvent{
		Workload: "w", FromLevel: 3, Level: 3,
		SwitchSec: 0.004, Done: true, ActualExecSec: 0.01,
	})
	if s := m2.Snapshot()[0]; s.SwitchJ != 0 {
		t.Fatalf("same-level switch charged %g J", s.SwitchJ)
	}
}

// TestEnergyOneShot prices a serve-tier Done=false decision from its
// prediction and flags the predicted basis.
func TestEnergyOneShot(t *testing.T) {
	p := platform.IntelI7()
	m := NewEnergyMeter(EnergyConfig{Platform: p})
	m.Emit(&obs.DecisionEvent{
		Workload: "mm", Level: 2,
		PredictedExecSec: 0.02,
	})
	lt, _ := p.Level(2)
	want := p.ActivePower(lt) * 0.02
	s := m.Snapshot()[0]
	if s.Jobs != 1 || s.OneShots != 1 {
		t.Fatalf("jobs=%d oneShots=%d, want 1/1", s.Jobs, s.OneShots)
	}
	if !approx(s.ExecJ, want) || !approx(s.PredictedBasisJ, want) {
		t.Fatalf("exec=%g predBasis=%g, want %g", s.ExecJ, s.PredictedBasisJ, want)
	}
}

func TestEnergyUnknownPlatformSkipped(t *testing.T) {
	m := NewEnergyMeter(EnergyConfig{Platform: platform.ODROIDXU3A7()})
	m.Emit(&obs.DecisionEvent{Workload: "w", Platform: "not-a-platform", Done: true, ActualExecSec: 1})
	if got := m.Skipped(); got != 1 {
		t.Fatalf("skipped = %d, want 1", got)
	}
	if got := m.TotalJ(); got != 0 {
		t.Fatalf("unknown platform charged %g J", got)
	}
	// No default platform at all: unnamed events are skipped too.
	m2 := NewEnergyMeter(EnergyConfig{})
	m2.Emit(&obs.DecisionEvent{Workload: "w", Done: true, ActualExecSec: 1})
	if got := m2.Skipped(); got != 1 {
		t.Fatalf("no-default skipped = %d, want 1", got)
	}
	// But a resolvable per-event platform name still meters.
	m2.Emit(&obs.DecisionEvent{Workload: "w2", Platform: "a7", Level: 0, Done: true, ActualExecSec: 1})
	if got := m2.TotalJ(); got <= 0 {
		t.Fatal("named platform not metered")
	}
}

func TestEnergyOverflowFold(t *testing.T) {
	m := NewEnergyMeter(EnergyConfig{Platform: platform.ODROIDXU3A7(), MaxKeys: 2})
	for _, dev := range []string{"d0", "d1", "d2", "d3"} {
		m.Emit(&obs.DecisionEvent{Workload: "w", Device: dev, Level: 0, Done: true, ActualExecSec: 1})
	}
	snap := m.Snapshot()
	if len(snap) != 3 { // d0, d1, overflow
		t.Fatalf("streams = %d, want 3", len(snap))
	}
	var overflow *EnergyStreamStats
	for i := range snap {
		if snap[i].Workload == EnergyOverflowKey {
			overflow = &snap[i]
		}
	}
	if overflow == nil || overflow.Jobs != 2 {
		t.Fatalf("overflow stream = %+v, want 2 folded jobs", overflow)
	}
}

// TestEnergyBudgetBurn drives a constant-power stream and checks the
// windowed burn converges to watts/budget once MinSamples land.
func TestEnergyBudgetBurn(t *testing.T) {
	p := platform.ODROIDXU3A7()
	lv := p.NumLevels() - 1
	lt, _ := p.Level(lv)
	watts := p.ActivePower(lt)
	budget := watts / 2 // running flat-out at 2× budget
	m := NewEnergyMeter(EnergyConfig{Platform: p, BudgetW: budget, MinSamples: 8})
	cursor := 0.0
	for i := 0; i < 6; i++ {
		m.Emit(&obs.DecisionEvent{Workload: "w", FromLevel: lv, Level: lv,
			TimeSec: cursor, Done: true, ActualExecSec: 0.5})
		cursor += 0.5
	}
	if s := m.Snapshot()[0]; s.FastBurn != 0 || s.SlowBurn != 0 {
		t.Fatalf("burn reported before MinSamples: %+v", s)
	}
	for i := 0; i < 10; i++ {
		m.Emit(&obs.DecisionEvent{Workload: "w", FromLevel: lv, Level: lv,
			TimeSec: cursor, Done: true, ActualExecSec: 0.5})
		cursor += 0.5
	}
	s := m.Snapshot()[0]
	if !approx(s.FastBurn, 2) || !approx(s.SlowBurn, 2) {
		t.Fatalf("burn fast=%g slow=%g, want 2", s.FastBurn, s.SlowBurn)
	}
	if m.BudgetW() != budget {
		t.Fatalf("BudgetW = %g, want %g", m.BudgetW(), budget)
	}
}

func TestEnergyLevelClamp(t *testing.T) {
	p := platform.ODROIDXU3A7()
	m := NewEnergyMeter(EnergyConfig{Platform: p})
	// Out-of-range levels clamp to the top instead of panicking.
	m.Emit(&obs.DecisionEvent{Workload: "w", FromLevel: 99, Level: -3, Done: true, ActualExecSec: 1})
	top := p.MaxLevel()
	if s := m.Snapshot()[0]; !approx(s.ExecJ, p.ActivePower(top)*1) {
		t.Fatalf("clamped exec = %g, want %g", s.ExecJ, p.ActivePower(top))
	}
}
