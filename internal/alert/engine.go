package alert

import (
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"time"

	"repro/internal/tsdb"
)

// Querier is the slice of the telemetry store the engine needs; the
// tests script it, dvfsd passes *tsdb.Store.
type Querier interface {
	Query(q tsdb.Query) ([]tsdb.SeriesResult, error)
}

// State is an alert's position in the pending→firing lifecycle.
// StateResolved appears only in transitions and incident records: a
// resolved alert returns to StateInactive.
type State string

const (
	StateInactive State = "inactive"
	StatePending  State = "pending"
	StateFiring   State = "firing"
	StateResolved State = "resolved"
)

// Transition is one state change: what notifiers receive and what the
// incident log persists.
type Transition struct {
	TimeMs   int64   `json:"time_ms"`
	Rule     string  `json:"rule"`
	Series   string  `json:"series,omitempty"`
	From     State   `json:"from"`
	To       State   `json:"to"`
	Value    float64 `json:"value"`
	Severity string  `json:"severity,omitempty"`
	Summary  string  `json:"summary,omitempty"`
}

// Incident is one firing span: opened on pending→firing, closed on
// resolve. Open incidents have EndMs == 0.
type Incident struct {
	Rule     string  `json:"rule"`
	Series   string  `json:"series,omitempty"`
	Severity string  `json:"severity,omitempty"`
	Summary  string  `json:"summary,omitempty"`
	StartMs  int64   `json:"start_ms"`
	EndMs    int64   `json:"end_ms,omitempty"`
	Value    float64 `json:"value"` // value when the alert fired
}

// ActiveAlert is one pending or firing (rule, series) pair.
type ActiveAlert struct {
	Rule     string  `json:"rule"`
	Series   string  `json:"series,omitempty"`
	State    State   `json:"state"`
	Severity string  `json:"severity"`
	Summary  string  `json:"summary,omitempty"`
	SinceMs  int64   `json:"since_ms"`
	Value    float64 `json:"value"`
}

// Snapshot is the GET /v1/alerts payload.
type Snapshot struct {
	Rules       []RuleStatus  `json:"rules"`
	Active      []ActiveAlert `json:"active"`
	Incidents   []Incident    `json:"incidents"` // newest first, open included
	Evals       uint64        `json:"evals"`
	QueryErrors uint64        `json:"query_errors"`
	LastEvalMs  int64         `json:"last_eval_ms,omitempty"`
}

// RuleStatus summarizes one rule's configuration and worst live state.
type RuleStatus struct {
	Name     string `json:"name"`
	Kind     Kind   `json:"kind"`
	Metric   string `json:"metric"`
	Severity string `json:"severity"`
	State    State  `json:"state"`
	Series   int    `json:"series"` // matched series tracked last eval
}

// Span is one firing interval of a rule, clipped to a query range —
// the dashboard overlays these on the history charts.
type Span struct {
	FromMs   int64
	ToMs     int64
	Rule     string
	Severity string
}

// Config wires an Engine.
type Config struct {
	// Querier answers the rules' range queries. Required.
	Querier Querier
	// Rules is the full rule set (builtin + file). Names must be
	// unique.
	Rules []Rule
	// Notifiers receive firing and resolved transitions; the incident
	// log receives every transition.
	Notifiers []Notifier
	// IncidentLog, when non-empty, is an append-only JSONL of
	// transitions replayed on restart so incidents survive a crash.
	IncidentLog string
	// History bounds retained closed incidents; zero → 256.
	History int
	// Log receives engine diagnostics; nil discards them.
	Log *slog.Logger
}

// alertState is the live state of one (rule, series) pair.
type alertState struct {
	state   State
	sinceMs int64 // entered current state
	value   float64
	seenMs  int64 // last eval that matched the series
}

// Engine evaluates rules against the store on every scrape tick and
// drives the alert state machine.
type Engine struct {
	mu        sync.Mutex
	q         Querier
	rules     []Rule
	notifiers []Notifier
	log       *slog.Logger
	history   int

	states map[string]map[string]*alertState // rule → series key
	open   map[string]*Incident              // rule\xffseries → open incident
	closed []Incident                        // ring, oldest first

	ilog *incidentLog

	evals           uint64
	queryErrs       uint64
	incidentsOpened uint64
	lastEvalMs      int64
}

// New builds an engine, replaying the incident log (when configured)
// so alerts that were firing before a restart stay firing without
// re-notifying.
func New(cfg Config) (*Engine, error) {
	if cfg.Querier == nil {
		return nil, fmt.Errorf("alert: Config.Querier is required")
	}
	if cfg.History <= 0 {
		cfg.History = 256
	}
	log := cfg.Log
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	seen := map[string]bool{}
	for i := range cfg.Rules {
		if err := cfg.Rules[i].validate(); err != nil {
			return nil, err
		}
		if seen[cfg.Rules[i].Name] {
			return nil, fmt.Errorf("alert: duplicate rule name %q", cfg.Rules[i].Name)
		}
		seen[cfg.Rules[i].Name] = true
	}
	e := &Engine{
		q:         cfg.Querier,
		rules:     cfg.Rules,
		notifiers: cfg.Notifiers,
		log:       log,
		history:   cfg.History,
		states:    map[string]map[string]*alertState{},
		open:      map[string]*Incident{},
	}
	if cfg.IncidentLog != "" {
		il, transitions, skipped, err := openIncidentLog(cfg.IncidentLog)
		if err != nil {
			return nil, err
		}
		e.ilog = il
		e.replay(transitions, seen)
		if len(transitions) > 0 || skipped > 0 {
			log.Info("alert: incident log replayed",
				"path", cfg.IncidentLog, "transitions", len(transitions), "skipped", skipped,
				"open_incidents", len(e.open))
		}
	}
	return e, nil
}

// replay rebuilds live states and incidents from logged transitions.
// Transitions for rules no longer configured rebuild incident history
// but not live state.
func (e *Engine) replay(transitions []Transition, rules map[string]bool) {
	for _, t := range transitions {
		key := t.Rule + "\xff" + t.Series
		switch t.To {
		case StateFiring:
			e.open[key] = &Incident{
				Rule: t.Rule, Series: t.Series, Severity: t.Severity,
				Summary: t.Summary, StartMs: t.TimeMs, Value: t.Value,
			}
			e.incidentsOpened++
		case StateResolved, StateInactive:
			if inc := e.open[key]; inc != nil {
				inc.EndMs = t.TimeMs
				e.pushClosed(*inc)
				delete(e.open, key)
			}
		}
		if !rules[t.Rule] {
			continue
		}
		st := e.stateFor(t.Rule, t.Series)
		to := t.To
		if to == StateResolved {
			to = StateInactive
		}
		st.state = to
		st.sinceMs = t.TimeMs
		st.value = t.Value
		st.seenMs = t.TimeMs
	}
	// Live state for dropped rules would never be evaluated again;
	// their open incidents stay visible until the log is removed.
	for name := range e.states {
		if !rules[name] {
			delete(e.states, name)
		}
	}
}

func (e *Engine) stateFor(rule, series string) *alertState {
	m := e.states[rule]
	if m == nil {
		m = map[string]*alertState{}
		e.states[rule] = m
	}
	st := m[series]
	if st == nil {
		st = &alertState{state: StateInactive}
		m[series] = st
	}
	return st
}

func (e *Engine) pushClosed(inc Incident) {
	e.closed = append(e.closed, inc)
	if len(e.closed) > e.history {
		e.closed = append(e.closed[:0], e.closed[len(e.closed)-e.history:]...)
	}
}

// Eval evaluates every rule at now. The scrape loop calls it after
// each tick lands, so rules see the samples just appended; tests call
// it with a synthetic clock.
func (e *Engine) Eval(now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	nowMs := now.UnixMilli()
	e.evals++
	e.lastEvalMs = nowMs
	for i := range e.rules {
		e.evalRule(&e.rules[i], nowMs)
	}
}

// seriesValue is one matched series reduced to the rule's scalar.
type seriesValue struct {
	key   string
	value float64
}

// evalRule queries one rule's window and advances the state machine
// for every matched series. Caller holds e.mu.
func (e *Engine) evalRule(r *Rule, nowMs int64) {
	windowMs := time.Duration(r.Window).Milliseconds()
	res, err := e.q.Query(tsdb.Query{
		Metric: r.Metric,
		Labels: r.labelSelector(),
		FromMs: nowMs - windowMs,
		ToMs:   nowMs,
	})
	if err != nil {
		e.queryErrs++
		e.log.Warn("alert: rule query failed", "rule", r.Name, "err", err)
		return
	}
	var values []seriesValue
	samples := 0
	for _, sr := range res {
		if len(sr.Points) == 0 {
			continue
		}
		samples += len(sr.Points)
		if r.Kind == KindAbsence {
			continue
		}
		values = append(values, seriesValue{key: sr.Meta.Key(), value: reduce(r, sr.Points)})
	}
	if r.Kind == KindAbsence {
		// Absence is a rule-level signal: the tracked "series" is the
		// rule itself, its value the sample count.
		breach := samples == 0
		e.advance(r, "", float64(samples), breach, !breach, nowMs)
		return
	}
	live := map[string]bool{}
	for _, v := range values {
		live[v.key] = true
		breach := r.Op.breached(v.value, r.Threshold)
		cleared := !r.Op.breached(v.value, r.clearBound())
		e.advance(r, v.key, v.value, breach, cleared, nowMs)
	}
	// Series that stopped matching (retention, relabeling) count as
	// cleared so their alerts resolve instead of wedging.
	for key, st := range e.states[r.Name] {
		if live[key] || st.state == StateInactive {
			continue
		}
		e.advance(r, key, st.value, false, true, nowMs)
	}
}

// reduce turns a window of raw points into the rule's scalar.
func reduce(r *Rule, pts []tsdb.Point) float64 {
	switch r.Kind {
	case KindBurnRate:
		// Per-second counter increase over the window, resets clamped
		// to zero the way tsdb's rate aggregation does.
		if len(pts) < 2 {
			return 0
		}
		inc := 0.0
		for i := 1; i < len(pts); i++ {
			if d := pts[i].V - pts[i-1].V; d > 0 {
				inc += d
			}
		}
		dt := float64(pts[len(pts)-1].T-pts[0].T) / 1000
		if dt <= 0 {
			return 0
		}
		return inc / dt
	case KindDelta:
		return pts[len(pts)-1].V - pts[0].V
	}
	switch r.Agg {
	case "min":
		m := pts[0].V
		for _, p := range pts[1:] {
			if p.V < m {
				m = p.V
			}
		}
		return m
	case "max":
		m := pts[0].V
		for _, p := range pts[1:] {
			if p.V > m {
				m = p.V
			}
		}
		return m
	case "last":
		return pts[len(pts)-1].V
	case "count":
		return float64(len(pts))
	default: // mean
		s := 0.0
		for _, p := range pts {
			s += p.V
		}
		return s / float64(len(pts))
	}
}

// advance runs one (rule, series) step of the state machine. Caller
// holds e.mu.
func (e *Engine) advance(r *Rule, series string, value float64, breach, cleared bool, nowMs int64) {
	st := e.stateFor(r.Name, series)
	st.value = value
	st.seenMs = nowMs
	switch st.state {
	case StateInactive:
		if breach {
			if time.Duration(r.For) <= 0 {
				e.transition(r, series, st, StateFiring, nowMs)
				return
			}
			e.transition(r, series, st, StatePending, nowMs)
		}
	case StatePending:
		if !breach {
			e.transition(r, series, st, StateInactive, nowMs)
			return
		}
		if nowMs-st.sinceMs >= time.Duration(r.For).Milliseconds() {
			e.transition(r, series, st, StateFiring, nowMs)
		}
	case StateFiring:
		if cleared && nowMs-st.sinceMs >= time.Duration(r.KeepFor).Milliseconds() {
			e.transition(r, series, st, StateResolved, nowMs)
		}
	}
}

// transition applies a state change: log, incidents, notifiers.
// Caller holds e.mu.
func (e *Engine) transition(r *Rule, series string, st *alertState, to State, nowMs int64) {
	t := Transition{
		TimeMs:   nowMs,
		Rule:     r.Name,
		Series:   series,
		From:     st.state,
		To:       to,
		Value:    st.value,
		Severity: r.Severity,
		Summary:  r.Summary,
	}
	if to == StateResolved {
		st.state = StateInactive
	} else {
		st.state = to
	}
	st.sinceMs = nowMs
	key := r.Name + "\xff" + series
	switch to {
	case StateFiring:
		e.open[key] = &Incident{
			Rule: r.Name, Series: series, Severity: r.Severity,
			Summary: r.Summary, StartMs: nowMs, Value: st.value,
		}
		e.incidentsOpened++
	case StateResolved:
		if inc := e.open[key]; inc != nil {
			inc.EndMs = nowMs
			e.pushClosed(*inc)
			delete(e.open, key)
		}
	}
	if e.ilog != nil {
		if err := e.ilog.append(t); err != nil {
			e.log.Error("alert: incident log write failed", "err", err)
		}
	}
	if to == StateFiring || to == StateResolved {
		e.log.Info("alert: "+string(to), "rule", r.Name, "series", series,
			"value", st.value, "severity", r.Severity)
		for _, n := range e.notifiers {
			n.Notify(t)
		}
	}
}

// Snapshot reports the engine's full state, newest incidents first.
func (e *Engine) Snapshot() Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	snap := Snapshot{
		Evals:       e.evals,
		QueryErrors: e.queryErrs,
		LastEvalMs:  e.lastEvalMs,
		Active:      []ActiveAlert{},
		Incidents:   []Incident{},
	}
	for i := range e.rules {
		r := &e.rules[i]
		rs := RuleStatus{
			Name: r.Name, Kind: r.Kind, Metric: r.Metric,
			Severity: r.Severity, State: StateInactive,
		}
		for series, st := range e.states[r.Name] {
			rs.Series++
			if st.state == StateFiring || (st.state == StatePending && rs.State != StateFiring) {
				rs.State = st.state
			}
			if st.state != StateInactive {
				snap.Active = append(snap.Active, ActiveAlert{
					Rule: r.Name, Series: series, State: st.state,
					Severity: r.Severity, Summary: r.Summary,
					SinceMs: st.sinceMs, Value: st.value,
				})
			}
		}
		snap.Rules = append(snap.Rules, rs)
	}
	sort.Slice(snap.Active, func(i, j int) bool {
		if snap.Active[i].Rule != snap.Active[j].Rule {
			return snap.Active[i].Rule < snap.Active[j].Rule
		}
		return snap.Active[i].Series < snap.Active[j].Series
	})
	for _, inc := range e.open {
		snap.Incidents = append(snap.Incidents, *inc)
	}
	for i := len(e.closed) - 1; i >= 0; i-- {
		snap.Incidents = append(snap.Incidents, e.closed[i])
	}
	sort.SliceStable(snap.Incidents, func(i, j int) bool {
		return snap.Incidents[i].StartMs > snap.Incidents[j].StartMs
	})
	return snap
}

// Counts returns the number of pending and firing (rule, series)
// pairs — the sync-on-read alert gauges.
func (e *Engine) Counts() (pending, firing int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, m := range e.states {
		for _, st := range m {
			switch st.state {
			case StatePending:
				pending++
			case StateFiring:
				firing++
			}
		}
	}
	return pending, firing
}

// IncidentsTotal returns how many incidents have ever opened (closed
// plus still-open), monotone for counter export.
func (e *Engine) IncidentsTotal() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.incidentsOpened
}

// FiringSpans returns the firing intervals of every rule watching
// metric, clipped to [fromMs, toMs] — the history-chart overlays.
func (e *Engine) FiringSpans(metric string, fromMs, toMs int64) []Span {
	e.mu.Lock()
	defer e.mu.Unlock()
	byRule := map[string]*Rule{}
	for i := range e.rules {
		if e.rules[i].Metric == metric {
			byRule[e.rules[i].Name] = &e.rules[i]
		}
	}
	if len(byRule) == 0 {
		return nil
	}
	var spans []Span
	add := func(inc *Incident) {
		if byRule[inc.Rule] == nil {
			return
		}
		start, end := inc.StartMs, inc.EndMs
		if end == 0 {
			end = toMs
		}
		if end < fromMs || start > toMs {
			return
		}
		if start < fromMs {
			start = fromMs
		}
		if end > toMs {
			end = toMs
		}
		spans = append(spans, Span{FromMs: start, ToMs: end, Rule: inc.Rule, Severity: inc.Severity})
	}
	for i := range e.closed {
		add(&e.closed[i])
	}
	for _, inc := range e.open {
		add(inc)
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].FromMs != spans[j].FromMs {
			return spans[i].FromMs < spans[j].FromMs
		}
		return spans[i].Rule < spans[j].Rule
	})
	return spans
}

// Rules returns the configured rules (for the dashboards).
func (e *Engine) Rules() []Rule {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Rule, len(e.rules))
	copy(out, e.rules)
	return out
}

// Close flushes and closes the incident log and every notifier.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var first error
	if e.ilog != nil {
		if err := e.ilog.close(); err != nil && first == nil {
			first = err
		}
		e.ilog = nil
	}
	for _, n := range e.notifiers {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	e.notifiers = nil
	return first
}
