package alert

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/tsdb"
)

// captureNotifier records every notification it receives.
type captureNotifier struct {
	mu  sync.Mutex
	got []Transition
}

func (c *captureNotifier) Notify(t Transition) {
	c.mu.Lock()
	c.got = append(c.got, t)
	c.mu.Unlock()
}

func (c *captureNotifier) Close() error { return nil }

func (c *captureNotifier) transitions() []Transition {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Transition(nil), c.got...)
}

// fakeQuerier scripts a single-series response for unit tests that do
// not need a real store.
type fakeQuerier struct {
	res []tsdb.SeriesResult
	err error
}

func (f *fakeQuerier) Query(tsdb.Query) ([]tsdb.SeriesResult, error) { return f.res, f.err }

// setPoints scripts one series named m with the given (ms, value)
// points.
func (f *fakeQuerier) setPoints(m string, pts ...tsdb.Point) {
	f.res = []tsdb.SeriesResult{{Meta: tsdb.SeriesMeta{Metric: m}, Points: pts}}
}

func at(baseMs int64, sec int) time.Time {
	return time.UnixMilli(baseMs + int64(sec)*1000)
}

// TestBuiltinLifecycleAndRestart is the acceptance e2e: scripted tsdb
// series drive the built-in drift and energy-budget rules through
// pending→firing→resolved, and a restart mid-firing replays the open
// incidents from the incident log without re-notifying.
func TestBuiltinLifecycleAndRestart(t *testing.T) {
	store, err := tsdb.Open(tsdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	const baseMs = int64(1_700_000_000_000)
	stale := store.Series("dvfsd_model_stale", tsdb.Label{Name: "workload", Value: "sha"})
	burn := store.Series("dvfsd_energy_budget_burn",
		tsdb.Label{Name: "device", Value: "d0"},
		tsdb.Label{Name: "window", Value: "slow"},
		tsdb.Label{Name: "workload", Value: "sha"})

	rules := BuiltinRules(BuiltinOptions{Scrape: time.Second, EnergyBudget: true})
	logPath := filepath.Join(t.TempDir(), "incidents.jsonl")
	cap1 := &captureNotifier{}
	eng, err := New(Config{Querier: store, Rules: rules, Notifiers: []Notifier{cap1}, IncidentLog: logPath})
	if err != nil {
		t.Fatal(err)
	}

	// Healthy tick: nothing happens.
	stale.Append(baseMs, 0)
	burn.Append(baseMs, 0.2)
	eng.Eval(at(baseMs, 0))
	if p, f := eng.Counts(); p != 0 || f != 0 {
		t.Fatalf("healthy eval: pending=%d firing=%d, want 0/0", p, f)
	}

	// Breach: pending first (For = 2×scrape = 2s), firing after it holds.
	for sec := 1; sec <= 3; sec++ {
		ms := baseMs + int64(sec)*1000
		stale.Append(ms, 1)
		burn.Append(ms, 1.5)
		eng.Eval(at(baseMs, sec))
	}
	if p, f := eng.Counts(); p != 0 || f != 2 {
		t.Fatalf("after 3 breaching evals: pending=%d firing=%d, want 0/2", p, f)
	}
	var firing int
	for _, tr := range cap1.transitions() {
		if tr.To == StateFiring {
			firing++
		}
	}
	if firing != 2 {
		t.Fatalf("notified firing transitions = %d, want 2", firing)
	}
	snap := eng.Snapshot()
	if len(snap.Incidents) != 2 {
		t.Fatalf("open incidents = %d, want 2", len(snap.Incidents))
	}
	for _, inc := range snap.Incidents {
		if inc.EndMs != 0 {
			t.Fatalf("incident %s closed prematurely", inc.Rule)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the replayed engine is firing without notifying anyone.
	cap2 := &captureNotifier{}
	eng2, err := New(Config{Querier: store, Rules: rules, Notifiers: []Notifier{cap2}, IncidentLog: logPath})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if p, f := eng2.Counts(); p != 0 || f != 2 {
		t.Fatalf("after restart: pending=%d firing=%d, want 0/2", p, f)
	}
	if got := eng2.IncidentsTotal(); got != 2 {
		t.Fatalf("after restart: incidents total = %d, want 2", got)
	}
	if n := len(cap2.transitions()); n != 0 {
		t.Fatalf("restart re-notified %d transitions", n)
	}

	// Recovery: model_stale resolves at its threshold, energy burn only
	// under its hysteresis clear boundary (0.5).
	ms := baseMs + 4000
	stale.Append(ms, 0)
	burn.Append(ms, 0.3)
	eng2.Eval(at(baseMs, 4))
	if p, f := eng2.Counts(); p != 0 || f != 0 {
		t.Fatalf("after recovery: pending=%d firing=%d, want 0/0", p, f)
	}
	resolved := 0
	for _, tr := range cap2.transitions() {
		if tr.To == StateResolved {
			resolved++
		}
	}
	if resolved != 2 {
		t.Fatalf("resolved notifications = %d, want 2", resolved)
	}
	snap = eng2.Snapshot()
	if len(snap.Incidents) != 2 {
		t.Fatalf("incidents after resolve = %d, want 2", len(snap.Incidents))
	}
	for _, inc := range snap.Incidents {
		if inc.EndMs == 0 {
			t.Fatalf("incident %s still open after resolve", inc.Rule)
		}
	}

	// The firing interval shows up as a chart overlay span.
	spans := eng2.FiringSpans("dvfsd_model_stale", baseMs, baseMs+10_000)
	if len(spans) != 1 {
		t.Fatalf("firing spans = %v, want one", spans)
	}
	if spans[0].FromMs != baseMs+3000 || spans[0].ToMs != baseMs+4000 {
		t.Fatalf("span [%d, %d], want [%d, %d]",
			spans[0].FromMs, spans[0].ToMs, baseMs+3000, baseMs+4000)
	}
}

func TestHysteresisHoldsUntilClear(t *testing.T) {
	q := &fakeQuerier{}
	clear := 5.0
	eng, err := New(Config{Querier: q, Rules: []Rule{{
		Name: "hys", Metric: "m", Agg: "last", Window: Duration(10 * time.Second),
		Threshold: 10, Clear: &clear,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	const baseMs = int64(1_700_000_000_000)
	steps := []struct {
		v      float64
		firing int
	}{
		{12, 1}, // breach → firing (For = 0)
		{7, 1},  // below threshold but above clear: held
		{4, 0},  // under clear: resolved
	}
	for i, s := range steps {
		q.setPoints("m", tsdb.Point{T: baseMs + int64(i)*1000, V: s.v})
		eng.Eval(at(baseMs, i))
		if _, f := eng.Counts(); f != s.firing {
			t.Fatalf("step %d (v=%g): firing=%d, want %d", i, s.v, f, s.firing)
		}
	}
}

func TestKeepForSuppressesFlaps(t *testing.T) {
	q := &fakeQuerier{}
	eng, err := New(Config{Querier: q, Rules: []Rule{{
		Name: "flap", Metric: "m", Agg: "last", Window: Duration(10 * time.Second),
		Threshold: 1, KeepFor: Duration(5 * time.Second),
	}}})
	if err != nil {
		t.Fatal(err)
	}
	const baseMs = int64(1_700_000_000_000)
	q.setPoints("m", tsdb.Point{T: baseMs, V: 2})
	eng.Eval(at(baseMs, 0)) // fires
	q.setPoints("m", tsdb.Point{T: baseMs + 1000, V: 0})
	eng.Eval(at(baseMs, 1)) // cleared but inside KeepFor: held
	if _, f := eng.Counts(); f != 1 {
		t.Fatalf("cleared inside KeepFor: firing=%d, want 1", f)
	}
	q.setPoints("m", tsdb.Point{T: baseMs + 6000, V: 0})
	eng.Eval(at(baseMs, 6)) // KeepFor elapsed: resolves
	if _, f := eng.Counts(); f != 0 {
		t.Fatalf("cleared past KeepFor: firing=%d, want 0", f)
	}
}

func TestPendingClearsSilently(t *testing.T) {
	q := &fakeQuerier{}
	cap := &captureNotifier{}
	eng, err := New(Config{Querier: q, Notifiers: []Notifier{cap}, Rules: []Rule{{
		Name: "p", Metric: "m", Agg: "last", Window: Duration(10 * time.Second),
		Threshold: 1, For: Duration(5 * time.Second),
	}}})
	if err != nil {
		t.Fatal(err)
	}
	const baseMs = int64(1_700_000_000_000)
	q.setPoints("m", tsdb.Point{T: baseMs, V: 2})
	eng.Eval(at(baseMs, 0))
	if p, _ := eng.Counts(); p != 1 {
		t.Fatalf("pending=%d, want 1", p)
	}
	q.setPoints("m", tsdb.Point{T: baseMs + 1000, V: 0})
	eng.Eval(at(baseMs, 1))
	if p, f := eng.Counts(); p != 0 || f != 0 {
		t.Fatalf("after clear: pending=%d firing=%d", p, f)
	}
	// A pending blip never reaches the notifiers.
	if n := len(cap.transitions()); n != 0 {
		t.Fatalf("pending blip notified %d transitions", n)
	}
}

func TestBurnRateRule(t *testing.T) {
	q := &fakeQuerier{}
	zero := 0.0
	eng, err := New(Config{Querier: q, Rules: []Rule{{
		Name: "drops", Kind: KindBurnRate, Metric: "c",
		Window: Duration(10 * time.Second), Threshold: 0, Clear: &zero,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	const baseMs = int64(1_700_000_000_000)
	// Counter climbing 10/s, with a reset in the middle (clamped).
	q.setPoints("c",
		tsdb.Point{T: baseMs, V: 100},
		tsdb.Point{T: baseMs + 1000, V: 110},
		tsdb.Point{T: baseMs + 2000, V: 5}, // reset
		tsdb.Point{T: baseMs + 3000, V: 15},
	)
	eng.Eval(at(baseMs, 3))
	if _, f := eng.Counts(); f != 1 {
		t.Fatalf("increasing counter: firing=%d, want 1", f)
	}
	// Flat counter: rate 0 is not > 0, and clears at the 0 boundary.
	q.setPoints("c",
		tsdb.Point{T: baseMs + 4000, V: 15},
		tsdb.Point{T: baseMs + 8000, V: 15},
	)
	eng.Eval(at(baseMs, 8))
	if _, f := eng.Counts(); f != 0 {
		t.Fatalf("flat counter: firing=%d, want 0", f)
	}
}

func TestAbsenceRule(t *testing.T) {
	q := &fakeQuerier{}
	eng, err := New(Config{Querier: q, Rules: []Rule{{
		Name: "dead", Kind: KindAbsence, Metric: "m", Window: Duration(10 * time.Second),
	}}})
	if err != nil {
		t.Fatal(err)
	}
	const baseMs = int64(1_700_000_000_000)
	eng.Eval(at(baseMs, 0)) // no samples at all
	if _, f := eng.Counts(); f != 1 {
		t.Fatalf("no samples: firing=%d, want 1", f)
	}
	q.setPoints("m", tsdb.Point{T: baseMs + 1000, V: 3})
	eng.Eval(at(baseMs, 1))
	if _, f := eng.Counts(); f != 0 {
		t.Fatalf("samples present: firing=%d, want 0", f)
	}
}

func TestDeltaRule(t *testing.T) {
	q := &fakeQuerier{}
	eng, err := New(Config{Querier: q, Rules: []Rule{{
		Name: "jump", Kind: KindDelta, Metric: "m",
		Window: Duration(10 * time.Second), Threshold: 5,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	const baseMs = int64(1_700_000_000_000)
	q.setPoints("m", tsdb.Point{T: baseMs, V: 1}, tsdb.Point{T: baseMs + 2000, V: 9})
	eng.Eval(at(baseMs, 2))
	if _, f := eng.Counts(); f != 1 {
		t.Fatalf("delta 8 > 5: firing=%d, want 1", f)
	}
}

func TestVanishedSeriesResolves(t *testing.T) {
	q := &fakeQuerier{}
	eng, err := New(Config{Querier: q, Rules: []Rule{{
		Name: "v", Metric: "m", Agg: "last", Window: Duration(10 * time.Second), Threshold: 1,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	const baseMs = int64(1_700_000_000_000)
	q.setPoints("m", tsdb.Point{T: baseMs, V: 2})
	eng.Eval(at(baseMs, 0))
	if _, f := eng.Counts(); f != 1 {
		t.Fatalf("firing=%d, want 1", f)
	}
	q.res = nil // series aged out of the store entirely
	eng.Eval(at(baseMs, 1))
	if _, f := eng.Counts(); f != 0 {
		t.Fatalf("vanished series: firing=%d, want 0", f)
	}
}

func TestQueryErrorsCounted(t *testing.T) {
	q := &fakeQuerier{err: os.ErrDeadlineExceeded}
	eng, err := New(Config{Querier: q, Rules: []Rule{{
		Name: "e", Metric: "m", Window: Duration(time.Second),
	}}})
	if err != nil {
		t.Fatal(err)
	}
	eng.Eval(at(1_700_000_000_000, 0))
	if snap := eng.Snapshot(); snap.QueryErrors != 1 || snap.Evals != 1 {
		t.Fatalf("evals=%d errors=%d, want 1/1", snap.Evals, snap.QueryErrors)
	}
}

func TestIncidentLogToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "inc.jsonl")
	good := `{"time_ms":1700000000000,"rule":"r","series":"m","from":"pending","to":"firing","value":3,"severity":"warn"}` + "\n"
	torn := `{"time_ms":1700000001000,"rule":"r","ser` // crash mid-append
	if err := os.WriteFile(path, []byte(good+torn), 0o644); err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{Querier: &fakeQuerier{}, IncidentLog: path, Rules: []Rule{{
		Name: "r", Metric: "m", Window: Duration(time.Second),
	}}})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, f := eng.Counts(); f != 1 {
		t.Fatalf("replayed firing=%d, want 1", f)
	}
	snap := eng.Snapshot()
	if len(snap.Incidents) != 1 || snap.Incidents[0].EndMs != 0 {
		t.Fatalf("incidents = %+v, want one open", snap.Incidents)
	}
}

func TestDuplicateRuleNamesRejected(t *testing.T) {
	_, err := New(Config{Querier: &fakeQuerier{}, Rules: []Rule{
		{Name: "x", Metric: "m", Window: Duration(time.Second)},
		{Name: "x", Metric: "m2", Window: Duration(time.Second)},
	}})
	if err == nil {
		t.Fatal("duplicate rule names accepted")
	}
}
