package alert

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// incidentLog is the crash-safe transition journal: append-only JSONL,
// fsynced per transition (transitions are rare — human-timescale
// events, not decisions), replayed on open. A torn final line from a
// crash mid-write is skipped, not fatal.
type incidentLog struct {
	f *os.File
}

// openIncidentLog opens (creating parents) and replays the journal.
// It returns the log ready for appends, the decoded transitions in
// order, and how many lines were skipped as unparsable.
func openIncidentLog(path string) (*incidentLog, []Transition, int, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, nil, 0, fmt.Errorf("alert: incident log dir: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("alert: opening incident log: %w", err)
	}
	var transitions []Transition
	skipped := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var t Transition
		if err := json.Unmarshal(line, &t); err != nil || t.Rule == "" {
			// Torn tail or foreign line: tolerate, count, continue — a
			// crash mid-append must not brick the next boot.
			skipped++
			continue
		}
		transitions = append(transitions, t)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("alert: reading incident log: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("alert: seeking incident log: %w", err)
	}
	return &incidentLog{f: f}, transitions, skipped, nil
}

// append journals one transition and syncs it to disk.
func (l *incidentLog) append(t Transition) error {
	data, err := json.Marshal(t)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := l.f.Write(data); err != nil {
		return err
	}
	return l.f.Sync()
}

func (l *incidentLog) close() error {
	return l.f.Close()
}
