package alert

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Notifier receives firing and resolved transitions. Notify must not
// block the evaluation tick: implementations either complete quickly
// (slog, a local file) or hand off to their own worker (webhook).
type Notifier interface {
	Notify(t Transition)
	Close() error
}

// SlogNotifier logs every notification — the default sink, so an
// operator tailing dvfsd's stderr sees alerts without any setup.
type SlogNotifier struct {
	Log *slog.Logger
}

// Notify implements Notifier.
func (n *SlogNotifier) Notify(t Transition) {
	if n.Log == nil {
		return
	}
	n.Log.Warn("ALERT "+string(t.To),
		"rule", t.Rule, "series", t.Series, "value", t.Value,
		"severity", t.Severity, "summary", t.Summary)
}

// Close implements Notifier.
func (n *SlogNotifier) Close() error { return nil }

// JSONLNotifier appends one JSON line per notification — a local
// audit trail separate from the incident journal (which also records
// pending transitions and drives restart replay).
type JSONLNotifier struct {
	mu  sync.Mutex
	w   io.Writer
	c   io.Closer
	err error
}

// NewJSONLNotifier wraps a writer; if it is also an io.Closer, Close
// closes it. Write errors are latched and reported by Close.
func NewJSONLNotifier(w io.Writer) *JSONLNotifier {
	n := &JSONLNotifier{w: w}
	if c, ok := w.(io.Closer); ok {
		n.c = c
	}
	return n
}

// Notify implements Notifier.
func (n *JSONLNotifier) Notify(t Transition) {
	data, err := json.Marshal(t)
	if err != nil {
		return
	}
	data = append(data, '\n')
	n.mu.Lock()
	if n.err == nil {
		_, n.err = n.w.Write(data)
	}
	n.mu.Unlock()
}

// Close implements Notifier.
func (n *JSONLNotifier) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.c != nil {
		if err := n.c.Close(); err != nil && n.err == nil {
			n.err = err
		}
		n.c = nil
	}
	return n.err
}

// WebhookOptions tune the webhook notifier; zero values select
// production defaults.
type WebhookOptions struct {
	// Client overrides the HTTP client; nil → a 5s-timeout client.
	Client *http.Client
	// QueueSize bounds buffered notifications; excess is dropped and
	// counted, never blocking the evaluation tick. Zero → 256.
	QueueSize int
	// MaxAttempts bounds delivery tries per notification (first try
	// included). Zero → 5.
	MaxAttempts int
	// BackoffBase is the first retry delay, doubled per attempt with
	// jitter. Zero → 250ms.
	BackoffBase time.Duration
	// BackoffMax caps the retry delay. Zero → 5s.
	BackoffMax time.Duration
	// Log receives delivery failures; nil discards them.
	Log *slog.Logger
}

// WebhookNotifier POSTs each transition as JSON to a URL from its own
// worker goroutine, retrying failed deliveries with jittered
// exponential backoff so a flapping receiver does not lose the alert.
type WebhookNotifier struct {
	url     string
	opts    WebhookOptions
	ch      chan Transition
	done    chan struct{}
	dropped atomic.Uint64
	failed  atomic.Uint64
	sent    atomic.Uint64
	closeMu sync.Mutex
	closed  bool
}

// NewWebhookNotifier starts the delivery worker.
func NewWebhookNotifier(url string, opts WebhookOptions) *WebhookNotifier {
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if opts.QueueSize <= 0 {
		opts.QueueSize = 256
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 5
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 250 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 5 * time.Second
	}
	if opts.Log == nil {
		opts.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	n := &WebhookNotifier{
		url:  url,
		opts: opts,
		ch:   make(chan Transition, opts.QueueSize),
		done: make(chan struct{}),
	}
	go n.run()
	return n
}

// Notify implements Notifier: enqueue or drop, never block.
func (n *WebhookNotifier) Notify(t Transition) {
	select {
	case n.ch <- t:
	default:
		n.dropped.Add(1)
	}
}

func (n *WebhookNotifier) run() {
	defer close(n.done)
	for t := range n.ch {
		n.deliver(t)
	}
}

// deliver POSTs one transition, retrying with backoff.
func (n *WebhookNotifier) deliver(t Transition) {
	body, err := json.Marshal(t)
	if err != nil {
		return
	}
	delay := n.opts.BackoffBase
	for attempt := 1; ; attempt++ {
		err := n.post(body)
		if err == nil {
			n.sent.Add(1)
			return
		}
		if attempt >= n.opts.MaxAttempts {
			n.failed.Add(1)
			n.opts.Log.Warn("alert: webhook delivery abandoned",
				"url", n.url, "rule", t.Rule, "attempts", attempt, "err", err)
			return
		}
		n.opts.Log.Info("alert: webhook delivery retrying",
			"url", n.url, "rule", t.Rule, "attempt", attempt, "err", err)
		// Full jitter on the exponential: sleep in [delay/2, delay].
		time.Sleep(delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1)))
		delay *= 2
		if delay > n.opts.BackoffMax {
			delay = n.opts.BackoffMax
		}
	}
}

func (n *WebhookNotifier) post(body []byte) error {
	resp, err := n.opts.Client.Post(n.url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return nil
}

// Stats reports deliveries, abandoned notifications, and queue drops.
func (n *WebhookNotifier) Stats() (sent, failed, dropped uint64) {
	return n.sent.Load(), n.failed.Load(), n.dropped.Load()
}

// Close drains the queue and stops the worker.
func (n *WebhookNotifier) Close() error {
	n.closeMu.Lock()
	if !n.closed {
		n.closed = true
		close(n.ch)
	}
	n.closeMu.Unlock()
	<-n.done
	return nil
}
