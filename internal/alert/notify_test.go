package alert

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestWebhookRetries is the acceptance check: a flapping receiver gets
// the notification anyway, via retries with backoff.
func TestWebhookRetries(t *testing.T) {
	var requests atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if requests.Add(1) <= 2 {
			http.Error(w, "flaky", http.StatusInternalServerError)
			return
		}
		var tr Transition
		if err := json.NewDecoder(r.Body).Decode(&tr); err != nil || tr.Rule != "r" {
			t.Errorf("bad webhook body: %v %+v", err, tr)
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	n := NewWebhookNotifier(srv.URL, WebhookOptions{
		BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond,
	})
	n.Notify(Transition{Rule: "r", To: StateFiring, Value: 3})
	waitFor(t, "delivery", func() bool { sent, _, _ := n.Stats(); return sent == 1 })
	if got := requests.Load(); got != 3 {
		t.Fatalf("requests = %d, want 3 (two failures then success)", got)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWebhookAbandonsAfterMaxAttempts(t *testing.T) {
	var requests atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	n := NewWebhookNotifier(srv.URL, WebhookOptions{
		MaxAttempts: 2, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
	})
	n.Notify(Transition{Rule: "r", To: StateFiring})
	waitFor(t, "abandonment", func() bool { _, failed, _ := n.Stats(); return failed == 1 })
	if got := requests.Load(); got != 2 {
		t.Fatalf("requests = %d, want 2", got)
	}
	n.Close()
}

func TestWebhookDropsWhenQueueFull(t *testing.T) {
	blocked := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-blocked
	}))
	defer srv.Close()
	n := NewWebhookNotifier(srv.URL, WebhookOptions{QueueSize: 1, MaxAttempts: 1})
	// First occupies the worker, second fills the queue, third drops.
	for i := 0; i < 3; i++ {
		n.Notify(Transition{Rule: "r"})
	}
	waitFor(t, "drop", func() bool { _, _, dropped := n.Stats(); return dropped >= 1 })
	close(blocked)
	n.Close()
}

func TestJSONLNotifier(t *testing.T) {
	var buf bytes.Buffer
	n := NewJSONLNotifier(&buf)
	n.Notify(Transition{Rule: "a", To: StateFiring, Value: 1})
	n.Notify(Transition{Rule: "a", To: StateResolved, Value: 0})
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	var tr Transition
	if err := json.Unmarshal(lines[1], &tr); err != nil || tr.To != StateResolved {
		t.Fatalf("line 2: %v %+v", err, tr)
	}
}
