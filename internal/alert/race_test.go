//go:build race

package alert

// raceEnabled mirrors the -race build flag: allocation-count gates are
// skipped under the race detector, whose instrumentation allocates.
const raceEnabled = true
