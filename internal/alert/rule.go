// Package alert is the declarative alerting layer over the embedded
// telemetry store: rules evaluated on every scrape tick, a
// pending→firing→resolved state machine with hysteresis and flap
// suppression, pluggable notifier sinks, and a crash-safe incident log
// — the stateful event layer the drift/SLO/energy gauges feed so the
// closed-loop model lifecycle (ROADMAP open item 1) has something to
// act on. It also owns the online energy meter (energy.go), the live
// counterpart of dvfsreplay's offline reconstruction.
package alert

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/tsdb"
)

// Kind selects how a rule turns a window of samples into a breach
// decision.
type Kind string

const (
	// KindThreshold compares an aggregate (Agg) of the window's raw
	// samples against Threshold.
	KindThreshold Kind = "threshold"
	// KindBurnRate compares the counter increase rate over the window
	// (per second, counter resets clamped) against Threshold.
	KindBurnRate Kind = "burn_rate"
	// KindAbsence breaches when the window holds no samples at all —
	// a dead scrape loop or a vanished series.
	KindAbsence Kind = "absence"
	// KindDelta compares last-minus-first over the window against
	// Threshold.
	KindDelta Kind = "delta"
)

// Op is a comparison operator for threshold-style rules.
type Op string

const (
	OpGT Op = ">"
	OpGE Op = ">="
	OpLT Op = "<"
	OpLE Op = "<="
)

// breached reports whether value v violates the rule boundary b.
func (o Op) breached(v, b float64) bool {
	switch o {
	case OpGE:
		return v >= b
	case OpLT:
		return v < b
	case OpLE:
		return v <= b
	default:
		return v > b
	}
}

// Duration marshals as a Go duration string ("30s", "5m") and also
// accepts bare numbers as seconds, so rule files stay readable.
type Duration time.Duration

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch t := v.(type) {
	case float64:
		*d = Duration(time.Duration(t * float64(time.Second)))
		return nil
	case string:
		p, err := time.ParseDuration(t)
		if err != nil {
			return fmt.Errorf("invalid duration %q: %w", t, err)
		}
		*d = Duration(p)
		return nil
	default:
		return fmt.Errorf("invalid duration %v (want \"30s\" or seconds)", v)
	}
}

// Rule is one declarative alert: a tsdb range query plus the state
// machine parameters. A rule matching several series (for example a
// per-workload gauge) tracks state independently per matched series.
type Rule struct {
	// Name identifies the rule in notifications, incidents, and the
	// /v1/alerts listing. Required, unique within an engine.
	Name string `json:"name"`
	// Kind selects the evaluation (threshold when empty).
	Kind Kind `json:"kind,omitempty"`
	// Metric is the tsdb metric family the rule watches. Required.
	Metric string `json:"metric"`
	// Labels narrows the match (subset semantics, like /v1/query).
	Labels map[string]string `json:"labels,omitempty"`
	// Agg reduces a threshold rule's window: mean (default), min, max,
	// last, count. Ignored by the other kinds.
	Agg string `json:"agg,omitempty"`
	// Window is the query lookback from the evaluation tick. Required.
	Window Duration `json:"window"`
	// Op compares the evaluated value against Threshold (default ">").
	Op Op `json:"op,omitempty"`
	// Threshold is the breach boundary.
	Threshold float64 `json:"threshold"`
	// Clear, when set, is the hysteresis boundary: a firing alert
	// resolves only once the value stops violating Clear (under the
	// same Op). Unset → Threshold, i.e. no hysteresis band.
	Clear *float64 `json:"clear,omitempty"`
	// For is how long the breach must persist before pending becomes
	// firing; 0 fires on the first breaching evaluation.
	For Duration `json:"for,omitempty"`
	// KeepFor is the minimum time a firing alert is held before it may
	// resolve — flap suppression for signals that oscillate across the
	// clear boundary.
	KeepFor Duration `json:"keep_for,omitempty"`
	// Severity is info, warn (default), or critical.
	Severity string `json:"severity,omitempty"`
	// Summary is the human line notifications carry.
	Summary string `json:"summary,omitempty"`
}

// clearBound returns the resolve boundary (hysteresis).
func (r *Rule) clearBound() float64 {
	if r.Clear != nil {
		return *r.Clear
	}
	return r.Threshold
}

// labelSelector renders Labels as the sorted tsdb selector.
func (r *Rule) labelSelector() []tsdb.Label {
	if len(r.Labels) == 0 {
		return nil
	}
	out := make([]tsdb.Label, 0, len(r.Labels))
	for k, v := range r.Labels {
		out = append(out, tsdb.Label{Name: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// validate checks one rule in isolation.
func (r *Rule) validate() error {
	if r.Name == "" {
		return fmt.Errorf("alert: rule has no name")
	}
	if r.Metric == "" {
		return fmt.Errorf("alert: rule %s has no metric", r.Name)
	}
	if r.Kind == "" {
		r.Kind = KindThreshold
	}
	switch r.Kind {
	case KindThreshold, KindBurnRate, KindAbsence, KindDelta:
	default:
		return fmt.Errorf("alert: rule %s has unknown kind %q (threshold, burn_rate, absence, delta)", r.Name, r.Kind)
	}
	if r.Op == "" {
		r.Op = OpGT
	}
	switch r.Op {
	case OpGT, OpGE, OpLT, OpLE:
	default:
		return fmt.Errorf("alert: rule %s has unknown op %q (>, >=, <, <=)", r.Name, r.Op)
	}
	switch r.Agg {
	case "", "mean", "min", "max", "last", "count":
	default:
		return fmt.Errorf("alert: rule %s has unknown agg %q (mean, min, max, last, count)", r.Name, r.Agg)
	}
	if r.Window <= 0 {
		return fmt.Errorf("alert: rule %s needs a positive window", r.Name)
	}
	if r.For < 0 || r.KeepFor < 0 {
		return fmt.Errorf("alert: rule %s has a negative for/keep_for", r.Name)
	}
	if r.Severity == "" {
		r.Severity = "warn"
	}
	switch r.Severity {
	case "info", "warn", "critical":
	default:
		return fmt.Errorf("alert: rule %s has unknown severity %q (info, warn, critical)", r.Name, r.Severity)
	}
	// Hysteresis must not resolve while still breaching: the clear
	// boundary has to sit on or inside the threshold under Op.
	if r.Clear != nil && r.Op.breached(*r.Clear, r.Threshold) && *r.Clear != r.Threshold {
		return fmt.Errorf("alert: rule %s clear %g is beyond threshold %g for op %q", r.Name, *r.Clear, r.Threshold, r.Op)
	}
	return nil
}

// ruleFile is the on-disk schema: a top-level object so the format can
// grow fields without breaking old files.
type ruleFile struct {
	Rules []Rule `json:"rules"`
}

// ParseRules decodes a rules file (JSON: {"rules": [...]}) and
// validates every rule.
func ParseRules(r io.Reader) ([]Rule, error) {
	var f ruleFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("alert: parsing rules: %w", err)
	}
	for i := range f.Rules {
		if err := f.Rules[i].validate(); err != nil {
			return nil, err
		}
	}
	return f.Rules, nil
}

// LoadRules reads and parses a rules file from disk.
func LoadRules(path string) ([]Rule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rules, err := ParseRules(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rules, nil
}

// BuiltinOptions parameterize the shipped rules. Windows scale with
// the scrape interval so the rules behave the same on a 100ms smoke
// run and a 5s production scrape.
type BuiltinOptions struct {
	// Scrape is the telemetry scrape interval; zero → 5s.
	Scrape time.Duration
	// SLOSlowBurn is the slow-window burn-rate boundary; zero → 2
	// (obs.SLOConfig's default slow threshold).
	SLOSlowBurn float64
	// EnergyBudget adds the energy-budget burn rule (set when dvfsd
	// runs with -energy-budget > 0).
	EnergyBudget bool
}

// BuiltinRules returns the rules dvfsd ships enabled by default:
// model drift, SLO burn, ring/stream drops, and (optionally) energy
// budget burn.
func BuiltinRules(opts BuiltinOptions) []Rule {
	scrape := opts.Scrape
	if scrape <= 0 {
		scrape = 5 * time.Second
	}
	slowBurn := opts.SLOSlowBurn
	if slowBurn <= 0 {
		slowBurn = 2
	}
	window := Duration(10 * scrape)
	hold := Duration(2 * scrape)
	zero := 0.0
	half := slowBurn / 2
	rules := []Rule{{
		Name:      "model_stale",
		Kind:      KindThreshold,
		Metric:    "dvfsd_model_stale",
		Agg:       "last",
		Window:    window,
		Op:        OpGT,
		Threshold: 0.5,
		For:       hold,
		Severity:  "critical",
		Summary:   "model under-prediction rate exceeds the trained quantile — consider retraining",
	}, {
		Name:      "slo_burn",
		Kind:      KindThreshold,
		Metric:    "dvfsd_slo_burn_rate",
		Labels:    map[string]string{"window": "slow"},
		Agg:       "last",
		Window:    window,
		Op:        OpGE,
		Threshold: slowBurn,
		Clear:     &half,
		For:       hold,
		Severity:  "critical",
		Summary:   "deadline-miss burn rate is consuming the SLO error budget",
	}, {
		Name:      "ring_drops",
		Kind:      KindBurnRate,
		Metric:    "obs_ring_dropped_total",
		Window:    window,
		Op:        OpGT,
		Threshold: 0,
		Clear:     &zero,
		Severity:  "warn",
		Summary:   "decision ring is overwriting events faster than consumers read them",
	}, {
		Name:      "stream_drops",
		Kind:      KindBurnRate,
		Metric:    "obs_stream_dropped_total",
		Window:    window,
		Op:        OpGT,
		Threshold: 0,
		Clear:     &zero,
		Severity:  "warn",
		Summary:   "a /v1/events subscriber is falling behind and dropping events",
	}}
	if opts.EnergyBudget {
		halfBurn := 0.5
		rules = append(rules, Rule{
			Name:      "energy_budget_burn",
			Kind:      KindThreshold,
			Metric:    "dvfsd_energy_budget_burn",
			Labels:    map[string]string{"window": "slow"},
			Agg:       "last",
			Window:    window,
			Op:        OpGE,
			Threshold: 1,
			Clear:     &halfBurn,
			For:       hold,
			Severity:  "critical",
			Summary:   "measured power draw is over the configured energy budget",
		})
	}
	return rules
}
