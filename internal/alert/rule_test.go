package alert

import (
	"strings"
	"testing"
	"time"
)

func TestDurationJSON(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{`"30s"`, 30 * time.Second},
		{`"5m"`, 5 * time.Minute},
		{`2.5`, 2500 * time.Millisecond},
		{`0`, 0},
	}
	for _, c := range cases {
		var d Duration
		if err := d.UnmarshalJSON([]byte(c.in)); err != nil {
			t.Fatalf("%s: %v", c.in, err)
		}
		if time.Duration(d) != c.want {
			t.Fatalf("%s → %v, want %v", c.in, time.Duration(d), c.want)
		}
	}
	for _, bad := range []string{`"nope"`, `true`, `[1]`} {
		var d Duration
		if err := d.UnmarshalJSON([]byte(bad)); err == nil {
			t.Fatalf("%s: accepted", bad)
		}
	}
}

func TestParseRules(t *testing.T) {
	src := `{
	  "rules": [
	    {"name": "drift", "metric": "dvfsd_model_stale", "agg": "last",
	     "window": "30s", "op": ">", "threshold": 0.5, "for": "10s",
	     "severity": "critical", "summary": "model is stale"},
	    {"name": "drops", "kind": "burn_rate", "metric": "obs_ring_dropped_total",
	     "labels": {"ring": "decisions"}, "window": 60, "threshold": 0}
	  ]
	}`
	rules, err := ParseRules(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("parsed %d rules, want 2", len(rules))
	}
	if rules[0].Kind != KindThreshold || rules[0].Severity != "critical" {
		t.Fatalf("rule 0 defaults wrong: %+v", rules[0])
	}
	if time.Duration(rules[1].Window) != time.Minute {
		t.Fatalf("bare-seconds window = %v", time.Duration(rules[1].Window))
	}
	sel := rules[1].labelSelector()
	if len(sel) != 1 || sel[0].Name != "ring" || sel[0].Value != "decisions" {
		t.Fatalf("label selector = %v", sel)
	}
}

func TestParseRulesRejectsUnknownFields(t *testing.T) {
	_, err := ParseRules(strings.NewReader(`{"rules": [{"name": "x", "metric": "m", "window": "1s", "treshold": 3}]}`))
	if err == nil {
		t.Fatal("typoed field accepted")
	}
}

func TestRuleValidation(t *testing.T) {
	base := func() Rule {
		return Rule{Name: "r", Metric: "m", Window: Duration(time.Second)}
	}
	bads := []func(*Rule){
		func(r *Rule) { r.Name = "" },
		func(r *Rule) { r.Metric = "" },
		func(r *Rule) { r.Kind = "weird" },
		func(r *Rule) { r.Op = "!=" },
		func(r *Rule) { r.Agg = "median" },
		func(r *Rule) { r.Window = 0 },
		func(r *Rule) { r.For = Duration(-time.Second) },
		func(r *Rule) { r.Severity = "fatal" },
		func(r *Rule) { c := 5.0; r.Threshold = 3; r.Clear = &c }, // clear beyond threshold for >
	}
	for i, mut := range bads {
		r := base()
		mut(&r)
		if err := r.validate(); err == nil {
			t.Fatalf("bad rule %d accepted: %+v", i, r)
		}
	}
	// Hysteresis on the right side of the threshold is fine.
	r := base()
	c := 1.0
	r.Threshold, r.Clear = 3, &c
	if err := r.validate(); err != nil {
		t.Fatalf("valid hysteresis rejected: %v", err)
	}
	// Defaults land.
	r = base()
	if err := r.validate(); err != nil {
		t.Fatal(err)
	}
	if r.Kind != KindThreshold || r.Op != OpGT || r.Severity != "warn" {
		t.Fatalf("defaults: %+v", r)
	}
}

func TestBuiltinRules(t *testing.T) {
	rules := BuiltinRules(BuiltinOptions{})
	names := map[string]Rule{}
	for _, r := range rules {
		if err := r.validate(); err != nil {
			t.Fatalf("builtin %s invalid: %v", r.Name, err)
		}
		names[r.Name] = r
	}
	for _, want := range []string{"model_stale", "slo_burn", "ring_drops", "stream_drops"} {
		if _, ok := names[want]; !ok {
			t.Fatalf("builtin %s missing (have %v)", want, names)
		}
	}
	if _, ok := names["energy_budget_burn"]; ok {
		t.Fatal("energy rule present without EnergyBudget")
	}
	// Windows scale with the scrape interval.
	if w := time.Duration(names["model_stale"].Window); w != 50*time.Second {
		t.Fatalf("default window = %v, want 50s", w)
	}
	rules = BuiltinRules(BuiltinOptions{Scrape: 100 * time.Millisecond, EnergyBudget: true})
	found := false
	for _, r := range rules {
		if r.Name == "energy_budget_burn" {
			found = true
		}
		if time.Duration(r.Window) != time.Second {
			t.Fatalf("scaled window for %s = %v, want 1s", r.Name, time.Duration(r.Window))
		}
	}
	if !found {
		t.Fatal("energy rule missing with EnergyBudget")
	}
}

// TestExampleRulesFile keeps the shipped example in sync with the
// schema: it must load, validate, and merge with the builtins without
// a name clash (dvfsd appends -rules files to BuiltinRules).
func TestExampleRulesFile(t *testing.T) {
	extra, err := LoadRules("../../examples/alerts.rules.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(extra) == 0 {
		t.Fatal("example file holds no rules")
	}
	seen := map[string]bool{}
	for _, r := range BuiltinRules(BuiltinOptions{EnergyBudget: true}) {
		seen[r.Name] = true
	}
	for _, r := range extra {
		if err := r.validate(); err != nil {
			t.Errorf("example rule %s: %v", r.Name, err)
		}
		if seen[r.Name] {
			t.Errorf("example rule %s clashes with a builtin or earlier rule", r.Name)
		}
		seen[r.Name] = true
	}
}
