package alert_test

import (
	"math"
	"testing"

	"repro/internal/alert"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestEnergyMeterCrossValidatesReplay is the acceptance check for the
// online meter: streaming a simulator trace through EnergyMeter.Emit
// must land within 2% of dvfsreplay's offline reconstruction of the
// same events. The two differ only in the final idle drain — replay
// charges idle power out to the simulator's horizon (last release plus
// one period), which an online meter cannot know — so the exec,
// predictor, and switch components must agree to round-off and only
// the idle component may fall short.
func TestEnergyMeterCrossValidatesReplay(t *testing.T) {
	w, err := workload.ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	plat := platform.ODROIDXU3A7()
	suite := experiments.NewSuiteOn(plat, 1)
	g, err := suite.Governor("prediction", w)
	if err != nil {
		t.Fatal(err)
	}
	ctl, ok := g.(*core.Controller)
	if !ok {
		t.Fatalf("prediction governor is %T, want *core.Controller", g)
	}
	mem := &obs.MemorySink{}
	ctl.SetTracer(obs.NewTracer(obs.TracerOptions{Sinks: []obs.Sink{mem}}))
	r, err := sim.Run(w, g, sim.Config{Plat: suite.Plat, Jobs: 80, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	events := trace.MergeDecisions(mem.Events(), r)

	res, err := replay.Run(events, replay.Options{Plat: plat})
	if err != nil {
		t.Fatal(err)
	}
	grp := res.Group("sha", "prediction")
	if grp == nil {
		t.Fatal("replay produced no sha/prediction group")
	}
	offline := grp.Traced

	meter := alert.NewEnergyMeter(alert.EnergyConfig{Platform: plat})
	for i := range events {
		meter.Emit(&events[i])
	}
	if sk := meter.Skipped(); sk != 0 {
		t.Fatalf("meter skipped %d events", sk)
	}
	streams := meter.Snapshot()
	if len(streams) != 1 {
		t.Fatalf("meter tracked %d streams, want 1", len(streams))
	}
	live := streams[0]

	// Headline number: within 2% of the offline reconstruction.
	if offline.EnergyJ <= 0 {
		t.Fatalf("offline reconstruction reports %g J", offline.EnergyJ)
	}
	relErr := math.Abs(live.TotalJ-offline.EnergyJ) / offline.EnergyJ
	if relErr > 0.02 {
		t.Errorf("live meter %.6f J vs replay %.6f J: %.2f%% off (want ≤ 2%%)",
			live.TotalJ, offline.EnergyJ, 100*relErr)
	}

	// Component-level agreement: identical segment formulas, so only
	// summation order separates them.
	const eps = 1e-9
	for _, c := range []struct {
		name       string
		live, repl float64
	}{
		{"exec", live.ExecJ, offline.Breakdown.ExecJ},
		{"predictor", live.PredictorJ, offline.Breakdown.PredictorJ},
		{"switch", live.SwitchJ, offline.Breakdown.SwitchJ},
	} {
		if d := math.Abs(c.live - c.repl); d > eps*math.Max(1, math.Abs(c.repl)) {
			t.Errorf("%s: live %.9f J vs replay %.9f J", c.name, c.live, c.repl)
		}
	}
	// Idle: the meter sees every inter-job gap but not the final drain,
	// so it must be ≤ replay's idle and the shortfall must be exactly
	// the horizon gap priced at the last level's idle power.
	if live.IdleJ > offline.Breakdown.IdleJ+eps {
		t.Errorf("live idle %.9f J exceeds replay idle %.9f J", live.IdleJ, offline.Breakdown.IdleJ)
	}
	if live.DurationSec > offline.DurationSec+eps {
		t.Errorf("live duration %.6f s exceeds replay horizon %.6f s", live.DurationSec, offline.DurationSec)
	}
	last := events[len(events)-1]
	lastLevel, err := plat.Level(last.Level)
	if err != nil {
		t.Fatal(err)
	}
	drain := plat.IdlePower(lastLevel) * (offline.DurationSec - live.DurationSec)
	if d := math.Abs((live.IdleJ + drain) - offline.Breakdown.IdleJ); d > 1e-6*offline.Breakdown.IdleJ+eps {
		t.Errorf("idle shortfall is not the horizon drain: live %.9f + drain %.9f vs replay %.9f",
			live.IdleJ, drain, offline.Breakdown.IdleJ)
	}
	if d := math.Abs((live.TotalJ + drain) - offline.EnergyJ); d > 1e-6*offline.EnergyJ {
		t.Errorf("drain-adjusted total %.9f J vs replay %.9f J", live.TotalJ+drain, offline.EnergyJ)
	}
}
