package analysis

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/instrument"
	"repro/internal/slicer"
	"repro/internal/taskir"
	"repro/internal/workload"
)

// ---- CFG ----

func TestCFGStructure(t *testing.T) {
	p := &taskir.Program{
		Name:   "shapes",
		Params: []string{"n"},
		Body: []taskir.Stmt{
			&taskir.Assign{Dst: "x", Expr: taskir.Const(1)},
			&taskir.If{ID: 1, Cond: taskir.GT(taskir.Var("n"), taskir.Const(0)),
				Then: []taskir.Stmt{&taskir.Assign{Dst: "x", Expr: taskir.Const(2)}},
				Else: []taskir.Stmt{&taskir.Assign{Dst: "x", Expr: taskir.Const(3)}}},
			&taskir.Loop{ID: 2, Count: taskir.Var("n"), IndexVar: "i", Body: []taskir.Stmt{
				&taskir.Assign{Dst: "x", Expr: taskir.Add(taskir.Var("x"), taskir.Var("i"))},
			}},
		},
	}
	cfg := BuildCFG(p.Body)
	if len(cfg.Blocks[cfg.Entry].Stmts) != 0 {
		t.Errorf("entry block not empty: %v", cfg.Blocks[cfg.Entry].Stmts)
	}
	if len(cfg.BackEdges) != 1 {
		t.Errorf("want 1 back edge for the loop, got %v", cfg.BackEdges)
	}
	// Exit must be reachable from the entry.
	seen := map[int]bool{}
	stack := []int{cfg.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		stack = append(stack, cfg.Blocks[b].Succs...)
	}
	if !seen[cfg.Exit] {
		t.Error("exit unreachable from entry")
	}
	// Every non-entry block must have a predecessor.
	for _, blk := range cfg.Blocks {
		if blk.ID != cfg.Entry && len(blk.Preds) == 0 {
			t.Errorf("block %d has no predecessors", blk.ID)
		}
	}
}

// ---- reaching definitions / undefined reads ----

func TestMayUndefinedDetectsBranchOnlyDef(t *testing.T) {
	p := &taskir.Program{
		Name:   "partial",
		Params: []string{"mode"},
		Body: []taskir.Stmt{
			&taskir.If{ID: 1, Cond: taskir.GT(taskir.Var("mode"), taskir.Const(0)),
				Then: []taskir.Stmt{&taskir.Assign{Dst: "tmp", Expr: taskir.Const(7)}}},
			// tmp is undefined when mode <= 0.
			&taskir.Assign{Dst: "out", Expr: taskir.Var("tmp")},
		},
	}
	cfg := BuildCFG(p.Body)
	rd := SolveReachingDefs(cfg, entryVarsOf(p))
	var vars []string
	for _, u := range rd.MayUndefined() {
		vars = append(vars, u.Var)
	}
	if len(vars) != 1 || vars[0] != "tmp" {
		t.Errorf("MayUndefined = %v, want exactly [tmp]", vars)
	}
}

func TestMayUndefinedCleanProgram(t *testing.T) {
	p := &taskir.Program{
		Name:    "clean",
		Params:  []string{"n"},
		Globals: map[string]int64{"g": 0},
		Body: []taskir.Stmt{
			&taskir.Assign{Dst: "a", Expr: taskir.Add(taskir.Var("n"), taskir.Var("g"))},
			&taskir.Assign{Dst: "b", Expr: taskir.Mul(taskir.Var("a"), taskir.Const(2))},
		},
	}
	cfg := BuildCFG(p.Body)
	rd := SolveReachingDefs(cfg, entryVarsOf(p))
	if u := rd.MayUndefined(); len(u) != 0 {
		t.Errorf("clean program flagged: %v", u)
	}
	if rd.Iterations <= 0 {
		t.Errorf("Iterations = %d, want > 0", rd.Iterations)
	}
}

func TestUseSitesLinkDefs(t *testing.T) {
	p := &taskir.Program{
		Name: "chain",
		Body: []taskir.Stmt{
			&taskir.Assign{Dst: "a", Expr: taskir.Const(1)},
			&taskir.Assign{Dst: "b", Expr: taskir.Var("a")},
		},
	}
	cfg := BuildCFG(p.Body)
	rd := SolveReachingDefs(cfg, nil)
	found := false
	for _, u := range rd.UseSites() {
		if u.Var != "a" {
			continue
		}
		found = true
		if len(u.Defs) != 1 {
			t.Fatalf("use of a reached by %d defs, want 1", len(u.Defs))
		}
		d := rd.Defs[u.Defs[0]]
		if d.Stmt == nil || d.Stmt.Dst != "a" {
			t.Fatalf("use of a linked to wrong def: %+v", d)
		}
	}
	if !found {
		t.Fatal("no use site recorded for a")
	}
}

// ---- constant propagation ----

func TestConstPropUnreachableBranch(t *testing.T) {
	p := &taskir.Program{
		Name: "deadthen",
		Body: []taskir.Stmt{
			&taskir.Assign{Dst: "k", Expr: taskir.Const(0)},
			&taskir.If{ID: 1, Cond: taskir.Var("k"),
				Then: []taskir.Stmt{&taskir.Assign{Dst: "x", Expr: taskir.Const(1)}},
				Else: []taskir.Stmt{&taskir.Assign{Dst: "x", Expr: taskir.Const(2)}}},
		},
	}
	cfg := BuildCFG(p.Body)
	cp := SolveConstProp(cfg, entryVarsOf(p))
	dead := cp.Unreachable()
	if len(dead) != 1 {
		t.Fatalf("unreachable = %v, want exactly the then-assign", dead)
	}
	if a, ok := dead[0].(*taskir.Assign); !ok || a.Expr != taskir.Const(1) {
		t.Errorf("wrong statement flagged: %q", dead[0])
	}
}

func TestConstPropZeroCountLoopBodyDead(t *testing.T) {
	p := &taskir.Program{
		Name: "deadloop",
		Body: []taskir.Stmt{
			&taskir.Loop{ID: 1, Count: taskir.Const(-3), Body: []taskir.Stmt{
				&taskir.Assign{Dst: "x", Expr: taskir.Const(1)},
			}},
		},
	}
	cfg := BuildCFG(p.Body)
	cp := SolveConstProp(cfg, nil)
	if dead := cp.Unreachable(); len(dead) != 1 {
		t.Errorf("negative-count loop body not flagged: %v", dead)
	}
}

func TestConstFeaturesSkipLiteralsFlagFolded(t *testing.T) {
	p := &taskir.Program{
		Name: "cf",
		Body: []taskir.Stmt{
			// Literal event counter: must NOT be flagged.
			&taskir.FeatAdd{FID: 0, Amount: taskir.Const(1)},
			// Compound amount folding to 5: must be flagged.
			&taskir.FeatAdd{FID: 1, Amount: taskir.Max(taskir.Const(5), taskir.Const(0))},
			// Input-dependent amount: must NOT be flagged.
			&taskir.FeatAdd{FID: 2, Amount: taskir.Add(taskir.Var("n"), taskir.Const(1))},
		},
		Params: []string{"n"},
	}
	cfg := BuildCFG(p.Body)
	cp := SolveConstProp(cfg, entryVarsOf(p))
	cfs := cp.ConstFeatures()
	if len(cfs) != 1 || cfs[0].Stmt.FID != 1 || cfs[0].Value != 5 {
		t.Errorf("ConstFeatures = %+v, want exactly FID 1 = 5", cfs)
	}
}

// ---- intervals ----

// Soundness: for every operator and concrete operand pair, the result
// of the interpreter must lie inside the interval computed from point
// (and widened) operand intervals.
func TestIntervalSoundnessFuzz(t *testing.T) {
	ops := []taskir.Op{
		taskir.OpAdd, taskir.OpSub, taskir.OpMul, taskir.OpDiv, taskir.OpMod,
		taskir.OpMin, taskir.OpMax, taskir.OpLT, taskir.OpLE, taskir.OpGT,
		taskir.OpGE, taskir.OpEQ, taskir.OpNE, taskir.OpAnd, taskir.OpOr,
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5000; trial++ {
		op := ops[rng.Intn(len(ops))]
		a := rng.Int63n(41) - 20
		b := rng.Int63n(41) - 20
		got := (&taskir.Bin{Op: op, L: taskir.Const(a), R: taskir.Const(b)}).Eval(nil)

		// Point intervals must contain the concrete result.
		iv := binInterval(op, Point(a), Point(b))
		if !iv.Contains(got) {
			t.Fatalf("op %v: %d op %d = %d outside point interval %v", op, a, b, got, iv)
		}
		// Widened intervals containing the operands must still contain it.
		wa := Interval{Lo: float64(a) - float64(rng.Intn(5)), Hi: float64(a) + float64(rng.Intn(5))}
		wb := Interval{Lo: float64(b) - float64(rng.Intn(5)), Hi: float64(b) + float64(rng.Intn(5))}
		if iv := binInterval(op, wa, wb); !iv.Contains(got) {
			t.Fatalf("op %v: %d op %d = %d outside widened %v op %v = %v", op, a, b, got, wa, wb, iv)
		}
		// Top operands must never lose the result.
		if iv := binInterval(op, Top(), Top()); !iv.Contains(got) {
			t.Fatalf("op %v: result %d outside Top-derived interval %v", op, got, iv)
		}
	}
}

func TestEvalIntervalMissingVarIsTop(t *testing.T) {
	iv := EvalInterval(taskir.Var("nowhere"), map[string]Interval{})
	if !math.IsInf(iv.Lo, -1) || !math.IsInf(iv.Hi, 1) {
		t.Errorf("missing var interval = %v, want Top", iv)
	}
}

func TestIntervalJoin(t *testing.T) {
	j := Range(1, 3).Join(Range(-2, 2))
	if j.Lo != -2 || j.Hi != 3 {
		t.Errorf("join = %v, want [-2, 3]", j)
	}
}

// ---- cost bounds ----

func TestBoundCostStraightLine(t *testing.T) {
	p := &taskir.Program{
		Name: "straight",
		Body: []taskir.Stmt{
			&taskir.Assign{Dst: "a", Expr: taskir.Const(1)},
			&taskir.Assign{Dst: "b", Expr: taskir.Const(2)},
			&taskir.Assign{Dst: "c", Expr: taskir.Const(3)},
		},
	}
	b := BoundCost(p, nil)
	if !b.Finite() || b.Stmts != 3 || b.Iters != 0 {
		t.Errorf("bound = %+v, want 3 stmts, 0 iters", b)
	}
}

func TestBoundCostConstLoopIsExact(t *testing.T) {
	p := &taskir.Program{
		Name: "constloop",
		Body: []taskir.Stmt{
			&taskir.Loop{ID: 1, Count: taskir.Const(4), Body: []taskir.Stmt{
				&taskir.Assign{Dst: "x", Expr: taskir.Const(1)},
				&taskir.Assign{Dst: "y", Expr: taskir.Const(2)},
			}},
		},
	}
	b := BoundCost(p, nil)
	// The loop statement itself plus 4 iterations of 2 statements.
	if b.Stmts != 1+4*2 || b.Iters != 4 {
		t.Errorf("bound = %+v, want 9 stmts, 4 iters", b)
	}
	// Must match the interpreter exactly for a constant program.
	env := taskir.NewEnv(nil)
	w, err := taskir.Run(p, env, taskir.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.CPUWork(); got != w.CPU {
		t.Errorf("CPUWork = %g, interpreter measured %g", got, w.CPU)
	}
}

func TestBoundCostParamLoopNeedsBounds(t *testing.T) {
	p := &taskir.Program{
		Name:   "paramloop",
		Params: []string{"n"},
		Body: []taskir.Stmt{
			&taskir.Loop{ID: 1, Count: taskir.Var("n"), Body: []taskir.Stmt{
				&taskir.Assign{Dst: "x", Expr: taskir.Const(1)},
			}},
		},
	}
	if b := BoundCost(p, nil); b.Finite() {
		t.Errorf("unbounded param produced finite bound %+v", b)
	}
	b := BoundCost(p, map[string]Interval{"n": Range(0, 10)})
	if !b.Finite() || b.Stmts != 1+10 || b.Iters != 10 {
		t.Errorf("bound = %+v, want 11 stmts, 10 iters", b)
	}
}

// A loop that may run zero times must not let the body's assignments
// shadow the pre-loop state of later trip counts.
func TestBoundCostZeroIterationJoin(t *testing.T) {
	p := &taskir.Program{
		Name:   "zeroiter",
		Params: []string{"n"},
		Body: []taskir.Stmt{
			&taskir.Assign{Dst: "k", Expr: taskir.Const(8)},
			&taskir.Loop{ID: 1, Count: taskir.Var("n"), Body: []taskir.Stmt{
				&taskir.Assign{Dst: "k", Expr: taskir.Const(2)},
			}},
			&taskir.Loop{ID: 2, Count: taskir.Var("k"), Body: []taskir.Stmt{
				&taskir.Assign{Dst: "x", Expr: taskir.Const(1)},
			}},
		},
	}
	b := BoundCost(p, map[string]Interval{"n": Range(0, 3)})
	if !b.Finite() {
		t.Fatal("bound not finite")
	}
	// With n=0 the second loop runs k=8 times; a bound computed only
	// from the post-body state (k=2) would undercount. 2 loop stmts +
	// 1 assign + up to 3 body iterations + up to 8 second-loop bodies.
	if b.Stmts < 3+3+8 {
		t.Errorf("bound %v ignores the zero-iteration path (want >= 14 stmts)", b)
	}
}

func TestBoundCostWhileUsesMaxIter(t *testing.T) {
	p := &taskir.Program{
		Name:   "spin",
		Params: []string{"n"},
		Body: []taskir.Stmt{
			&taskir.While{ID: 1, Cond: taskir.GT(taskir.Var("n"), taskir.Const(0)), MaxIter: 7,
				Body: []taskir.Stmt{
					&taskir.Assign{Dst: "n", Expr: taskir.Sub(taskir.Var("n"), taskir.Const(1))},
				}},
		},
	}
	b := BoundCost(p, nil)
	if !b.Finite() || b.Iters != 7 {
		t.Errorf("bound = %+v, want 7 iterations (MaxIter)", b)
	}
}

// ---- effects ----

func TestProgramEffect(t *testing.T) {
	p := &taskir.Program{
		Name:    "fx",
		Params:  []string{"n"},
		Globals: map[string]int64{"g0": 0, "g1": 0},
		Body: []taskir.Stmt{
			&taskir.Assign{Dst: "g0", Expr: taskir.Add(taskir.Var("g1"), taskir.Var("n"))},
			&taskir.Compute{Work: 10},
			&taskir.FeatAdd{FID: 3, Amount: taskir.Const(1)},
		},
	}
	e := ProgramEffect(p)
	if got := e.WritesSorted(); len(got) != 1 || got[0] != "g0" {
		t.Errorf("writes = %v, want [g0]", got)
	}
	if got := e.ReadsSorted(); len(got) != 1 || got[0] != "g1" {
		t.Errorf("reads = %v, want [g1]", got)
	}
	if e.ComputeStmts != 1 {
		t.Errorf("compute stmts = %d, want 1", e.ComputeStmts)
	}
	if got := e.FIDsSorted(); len(got) != 1 || got[0] != 3 {
		t.Errorf("feature FIDs = %v, want [3]", got)
	}
}

// ---- slice verification ----

// Acceptance requirement: the verifier accepts every slice the slicer
// extracts from the seed benchmark programs.
func TestVerifySliceAcceptsAllSeedWorkloads(t *testing.T) {
	for _, w := range workload.All() {
		ip := instrument.Instrument(w.Prog)
		sl := slicer.Extract(ip, nil)
		rep, err := VerifySlice(ip, sl)
		if err != nil {
			t.Errorf("%s: %v", w.Name, err)
			continue
		}
		if len(rep.NeededFIDs) != len(ip.Sites) {
			t.Errorf("%s: report covers %d FIDs, sites have %d", w.Name, len(rep.NeededFIDs), len(ip.Sites))
		}
	}
}

func TestVerifySliceRejectsRetainedCompute(t *testing.T) {
	w := mustWorkload(t, "ldecode")
	ip := instrument.Instrument(w.Prog)
	sl := slicer.Extract(ip, nil)
	// Sabotage: sneak a Compute back into the slice.
	sl.Prog.Body = append(sl.Prog.Body, &taskir.Compute{Work: 1})
	if _, err := VerifySlice(ip, sl); err == nil {
		t.Fatal("slice with retained Compute accepted")
	} else if !strings.Contains(err.Error(), "compute") {
		t.Fatalf("wrong error: %v", err)
	}
}

func TestVerifySliceRejectsMissingFeature(t *testing.T) {
	w := mustWorkload(t, "ldecode")
	ip := instrument.Instrument(w.Prog)
	sl := slicer.Extract(ip, nil)
	// Sabotage: drop every statement; the needed FIDs are then absent.
	sl.Prog.Body = nil
	if _, err := VerifySlice(ip, sl); err == nil {
		t.Fatal("slice missing its features accepted")
	}
}

// ---- lint ----

func TestLintFlagsCraftedProblems(t *testing.T) {
	p := &taskir.Program{
		Name:   "bad",
		Params: []string{"n"},
		Body: []taskir.Stmt{
			// Undefined read: never assigned anywhere.
			&taskir.Assign{Dst: "x", Expr: taskir.Var("ghost")},
			// Uninstrumented loop (coverage check on).
			&taskir.Loop{ID: 1, Count: taskir.Var("n"), Body: []taskir.Stmt{
				&taskir.Assign{Dst: "y", Expr: taskir.Const(1)},
			}},
			// A counter elsewhere so the program is plausibly instrumented.
			&taskir.FeatAdd{FID: 0, Amount: taskir.Max(taskir.Var("n"), taskir.Const(0))},
		},
	}
	findings := Lint(p, LintOptions{CheckCoverage: true})
	codes := map[string]int{}
	for _, f := range findings {
		codes[f.Code]++
	}
	if codes[CodeUndefinedRead] == 0 {
		t.Errorf("undefined read not flagged: %v", findings)
	}
	if codes[CodeUninstrumented] == 0 {
		t.Errorf("uninstrumented loop not flagged: %v", findings)
	}
	if ErrorCount(findings) < 2 {
		t.Errorf("ErrorCount = %d, want >= 2", ErrorCount(findings))
	}
}

func TestLintCleanOnInstrumentedWorkloads(t *testing.T) {
	for _, w := range workload.All() {
		ip := instrument.Instrument(w.Prog)
		findings := Lint(ip.Prog, LintOptions{CheckCoverage: true})
		if n := ErrorCount(findings); n != 0 {
			t.Errorf("%s: %d lint errors on instrumented seed program: %v", w.Name, n, findings)
		}
	}
}

func mustWorkload(t *testing.T, name string) *workload.Workload {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}
