// Package analysis is a static-analysis framework over taskir
// programs: control-flow graphs, reaching definitions and def-use
// chains, conditional constant propagation, interval-based cost
// bounds, and side-effect classification. On top of the framework sit
// three consumers: VerifySlice proves properties of prediction slices
// the slicer only approximates (paper §3.2's side-effect-free,
// feature-complete slice), BoundCost derives a static worst case for
// slice overhead (making §3.4's budget subtraction safe), and Lint
// powers the dvfslint tool's program checks.
//
// The framework is deliberately self-contained (stdlib only) and works
// on the structured Stmt trees directly: taskir has no goto, so every
// control construct lowers to a small fixed CFG shape and all loop
// back-edges are known at construction time.
package analysis

import (
	"sort"

	"repro/internal/taskir"
)

// Block is a CFG node: a run of straight-line statements, optionally
// ended by a control statement (Term) whose successor edges encode
// branch, loop, or dispatch structure. Straight-line statements are
// Assign, Compute, ComputeScaled, FeatAdd, and FeatCall; Term is one
// of If, While, Loop, or Call (condition/count/target evaluation
// happens in this block, the controlled bodies are separate blocks).
type Block struct {
	ID    int
	Stmts []taskir.Stmt
	// IndexDefs lists loop index variables defined on entry to this
	// block: the body head of a Loop with an IndexVar assigns the
	// index before the body runs.
	IndexDefs []string
	Term      taskir.Stmt
	Succs     []int
	Preds     []int
}

// CFG is the control-flow graph of a program body. Entry has no
// predecessors; Exit has no successors and no statements.
type CFG struct {
	Blocks []*Block
	Entry  int
	Exit   int
	// BackEdges lists [from, to] block pairs that close a loop (the
	// edge from a loop body's exit back to the loop head).
	BackEdges [][2]int
}

// BuildCFG lowers a program body to its control-flow graph.
//
// Lowering shapes:
//
//	If:    cond-block → then-entry … then-exit → join
//	              └──→ else-entry … else-exit → join   (or → join directly)
//	Loop:  pred → head → body-entry … body-exit → head (back edge)
//	               └──→ after
//	While: same as Loop (the condition re-evaluates at the head)
//	Call:  call-block → func-entry … func-exit → join  (one per address)
//	               └──→ join                            (unknown address)
func BuildCFG(body []taskir.Stmt) *CFG {
	b := &cfgBuilder{}
	// The entry block stays empty: entry definitions (params, globals,
	// the undefined-at-entry pseudo-defs) conceptually live there,
	// strictly before any program statement.
	entry := b.newBlock()
	first := b.newBlock()
	b.edge(entry, first)
	last := b.lower(body, first)
	exit := b.newBlock()
	b.edge(last, exit)
	return &CFG{Blocks: b.blocks, Entry: entry, Exit: exit, BackEdges: b.backEdges}
}

type cfgBuilder struct {
	blocks    []*Block
	backEdges [][2]int
}

func (b *cfgBuilder) newBlock() int {
	id := len(b.blocks)
	b.blocks = append(b.blocks, &Block{ID: id})
	return id
}

func (b *cfgBuilder) edge(from, to int) {
	b.blocks[from].Succs = append(b.blocks[from].Succs, to)
	b.blocks[to].Preds = append(b.blocks[to].Preds, from)
}

// lower appends the statements of stmts starting in block cur and
// returns the block that control flows out of.
func (b *cfgBuilder) lower(stmts []taskir.Stmt, cur int) int {
	for _, s := range stmts {
		switch st := s.(type) {
		case *taskir.If:
			b.blocks[cur].Term = st
			join := b.newBlock()
			thenEntry := b.newBlock()
			b.edge(cur, thenEntry)
			b.edge(b.lower(st.Then, thenEntry), join)
			if len(st.Else) > 0 {
				elseEntry := b.newBlock()
				b.edge(cur, elseEntry)
				b.edge(b.lower(st.Else, elseEntry), join)
			} else {
				b.edge(cur, join)
			}
			cur = join
		case *taskir.While:
			cur = b.lowerLoop(st, st.Body, "", cur)
		case *taskir.Loop:
			cur = b.lowerLoop(st, st.Body, st.IndexVar, cur)
		case *taskir.Call:
			b.blocks[cur].Term = st
			join := b.newBlock()
			b.edge(cur, join) // unknown address: the call executes nothing
			for _, addr := range sortedAddrs(st.Funcs) {
				fEntry := b.newBlock()
				b.edge(cur, fEntry)
				b.edge(b.lower(st.Funcs[addr], fEntry), join)
			}
			cur = join
		default:
			b.blocks[cur].Stmts = append(b.blocks[cur].Stmts, s)
		}
	}
	return cur
}

// lowerLoop builds the shared Loop/While shape: a dedicated head block
// holding the count/condition evaluation, a body sub-graph with a back
// edge to the head, and an after block.
func (b *cfgBuilder) lowerLoop(term taskir.Stmt, body []taskir.Stmt, indexVar string, cur int) int {
	head := b.newBlock()
	b.edge(cur, head)
	b.blocks[head].Term = term
	bodyEntry := b.newBlock()
	b.edge(head, bodyEntry)
	if indexVar != "" {
		b.blocks[bodyEntry].IndexDefs = append(b.blocks[bodyEntry].IndexDefs, indexVar)
	}
	bodyExit := b.lower(body, bodyEntry)
	b.edge(bodyExit, head)
	b.backEdges = append(b.backEdges, [2]int{bodyExit, head})
	after := b.newBlock()
	b.edge(head, after)
	return after
}

// stmtUses returns the variables a straight-line statement reads.
func stmtUses(s taskir.Stmt) []string {
	switch st := s.(type) {
	case *taskir.Assign:
		return taskir.ExprVars(st.Expr)
	case *taskir.ComputeScaled:
		return taskir.ExprVars(st.Units)
	case *taskir.FeatAdd:
		return taskir.ExprVars(st.Amount)
	case *taskir.FeatCall:
		return taskir.ExprVars(st.Target)
	}
	return nil
}

// termUses returns the variables a block terminator reads when control
// leaves the block.
func termUses(s taskir.Stmt) []string {
	switch st := s.(type) {
	case *taskir.If:
		return taskir.ExprVars(st.Cond)
	case *taskir.While:
		return taskir.ExprVars(st.Cond)
	case *taskir.Loop:
		return taskir.ExprVars(st.Count)
	case *taskir.Call:
		return taskir.ExprVars(st.Target)
	}
	return nil
}

func sortedAddrs(funcs map[int64][]taskir.Stmt) []int64 {
	addrs := make([]int64, 0, len(funcs))
	for a := range funcs {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}
