package analysis

import (
	"repro/internal/taskir"
)

// Conditional constant propagation over the CFG: propagates per-
// variable constants through assignments, follows only feasible branch
// edges when a condition folds to a constant, and marks the blocks
// never reached. Lint uses it for unreachable-code and constant-
// feature findings; the folder is also how a FeatAdd amount is shown
// to carry no per-job information.
//
// Lattice per variable: constant c, or top ("varies"). A variable
// missing from a state is a constant 0 — that is exactly the
// interpreter's semantics for never-assigned names (Env.Get yields 0),
// and the separate reaching-defs pass flags such reads.

type cpKind uint8

const (
	cpConst cpKind = iota
	cpTop
)

type cpVal struct {
	kind cpKind
	v    int64
}

type cpState map[string]cpVal

// ConstProp holds the solved conditional-constant-propagation facts.
type ConstProp struct {
	CFG *CFG
	// Reachable marks blocks reached along feasible edges only.
	Reachable []bool

	in []cpState
}

// ConstFeature is a FeatAdd whose amount is the same constant on every
// feasible path — the feature can never distinguish jobs.
type ConstFeature struct {
	Stmt  *taskir.FeatAdd
	Value int64
}

// SolveConstProp runs conditional constant propagation. topVars lists
// variables with unknown values at entry (params and globals); every
// other variable starts as the constant 0, matching Env.Get.
func SolveConstProp(cfg *CFG, topVars []string) *ConstProp {
	cp := &ConstProp{
		CFG:       cfg,
		Reachable: make([]bool, len(cfg.Blocks)),
		in:        make([]cpState, len(cfg.Blocks)),
	}
	entryState := cpState{}
	for _, v := range topVars {
		entryState[v] = cpVal{kind: cpTop}
	}
	cp.in[cfg.Entry] = entryState
	cp.Reachable[cfg.Entry] = true

	// out-states per block and edge feasibility, recomputed until the
	// fixpoint. Feasibility only ever turns edges on, and lattice
	// values only rise (const → top), so iteration terminates.
	out := make([]cpState, len(cfg.Blocks))
	feasible := map[[2]int]bool{}
	work := []int{cfg.Entry}
	inWork := make([]bool, len(cfg.Blocks))
	inWork[cfg.Entry] = true
	for len(work) > 0 {
		id := work[0]
		work = work[1:]
		inWork[id] = false
		blk := cfg.Blocks[id]

		// Meet over feasible predecessor out-states (entry keeps its
		// initial state).
		if id != cfg.Entry {
			var st cpState
			for _, p := range blk.Preds {
				if !feasible[[2]int{p, id}] {
					continue
				}
				if st == nil {
					st = cloneState(out[p])
				} else {
					st = meetStates(st, out[p])
				}
			}
			if st == nil {
				continue // not yet reachable
			}
			cp.in[id] = st
			cp.Reachable[id] = true
		}

		// Transfer through the block.
		st := cloneState(cp.in[id])
		for _, v := range blk.IndexDefs {
			st[v] = cpVal{kind: cpTop}
		}
		for _, s := range blk.Stmts {
			if as, ok := s.(*taskir.Assign); ok {
				st[as.Dst] = foldVal(as.Expr, st)
			}
		}
		changedOut := !sameState(out[id], st)
		out[id] = st

		// Decide feasible successor edges from the terminator.
		newFeasible := cp.feasibleSuccs(blk, st)
		edgeChanged := false
		for _, succ := range newFeasible {
			e := [2]int{id, succ}
			if !feasible[e] {
				feasible[e] = true
				edgeChanged = true
			}
		}
		if changedOut || edgeChanged {
			for _, succ := range blk.Succs {
				if feasible[[2]int{id, succ}] && !inWork[succ] {
					work = append(work, succ)
					inWork[succ] = true
				}
			}
		}
	}
	return cp
}

// feasibleSuccs returns the successors control can actually reach
// given the out-state st. Successor order mirrors construction order
// in BuildCFG (see the lowering shapes in its doc comment).
func (cp *ConstProp) feasibleSuccs(blk *Block, st cpState) []int {
	switch term := blk.Term.(type) {
	case *taskir.If:
		// Succs: [then-entry, else-entry-or-join] (join directly when
		// Else is empty).
		if c, ok := constOf(foldVal(term.Cond, st)); ok {
			if c != 0 {
				return blk.Succs[:1]
			}
			return blk.Succs[1:2]
		}
	case *taskir.While:
		// Succs: [body-entry, after].
		if c, ok := constOf(foldVal(term.Cond, st)); ok && c == 0 {
			return blk.Succs[1:2]
		}
	case *taskir.Loop:
		// Succs: [body-entry, after].
		if c, ok := constOf(foldVal(term.Count, st)); ok && c <= 0 {
			return blk.Succs[1:2]
		}
	case *taskir.Call:
		// Succs: [join, func-entry per address in sorted order].
		if c, ok := constOf(foldVal(term.Target, st)); ok {
			for i, addr := range sortedAddrs(term.Funcs) {
				if addr == c {
					return blk.Succs[i+1 : i+2]
				}
			}
			return blk.Succs[:1] // unknown address: straight to join
		}
	}
	return blk.Succs
}

// Unreachable returns one representative statement for each region
// never reached along feasible edges: the first statement (or control
// statement) of every unreachable block whose predecessor is
// reachable. Deeper blocks of the same dead region are suppressed.
func (cp *ConstProp) Unreachable() []taskir.Stmt {
	var out []taskir.Stmt
	for _, blk := range cp.CFG.Blocks {
		if cp.Reachable[blk.ID] {
			continue
		}
		entered := false
		for _, p := range blk.Preds {
			if cp.Reachable[p] {
				entered = true
				break
			}
		}
		if !entered {
			continue
		}
		if len(blk.Stmts) > 0 {
			out = append(out, blk.Stmts[0])
		} else if blk.Term != nil {
			out = append(out, blk.Term)
		}
	}
	return out
}

// ConstFeatures returns the FeatAdd statements in reachable blocks
// whose amount is a non-literal expression that still folds to a
// constant. Literal amounts are skipped: event counters like the
// `feature[k] += 1` that instrumentation places in a then-block are
// constant per increment by construction, and their totals vary with
// how often the block runs. A folded compound amount, by contrast,
// means a trip-count expression that cannot depend on the input.
func (cp *ConstProp) ConstFeatures() []ConstFeature {
	var out []ConstFeature
	for _, blk := range cp.CFG.Blocks {
		if !cp.Reachable[blk.ID] {
			continue
		}
		st := cloneState(cp.in[blk.ID])
		for _, v := range blk.IndexDefs {
			st[v] = cpVal{kind: cpTop}
		}
		for _, s := range blk.Stmts {
			switch x := s.(type) {
			case *taskir.Assign:
				st[x.Dst] = foldVal(x.Expr, st)
			case *taskir.FeatAdd:
				if _, lit := x.Amount.(taskir.Const); lit {
					continue
				}
				if c, ok := constOf(foldVal(x.Amount, st)); ok {
					out = append(out, ConstFeature{Stmt: x, Value: c})
				}
			}
		}
	}
	return out
}

func constOf(v cpVal) (int64, bool) {
	if v.kind == cpConst {
		return v.v, true
	}
	return 0, false
}

// foldVal evaluates e over the abstract state. Unmapped variables are
// the constant 0 (interpreter semantics for never-assigned names).
func foldVal(e taskir.Expr, st cpState) cpVal {
	switch x := e.(type) {
	case taskir.Const:
		return cpVal{v: int64(x)}
	case taskir.Var:
		if v, ok := st[string(x)]; ok {
			return v
		}
		return cpVal{v: 0}
	case *taskir.Not:
		inner := foldVal(x.X, st)
		if c, ok := constOf(inner); ok {
			if c == 0 {
				return cpVal{v: 1}
			}
			return cpVal{v: 0}
		}
		return cpVal{kind: cpTop}
	case *taskir.Bin:
		l := foldVal(x.L, st)
		r := foldVal(x.R, st)
		lc, lok := constOf(l)
		rc, rok := constOf(r)
		if lok && rok {
			// Delegate to the interpreter's own operator semantics: a
			// constant-only tree never touches the environment, so Eval
			// with a nil env is exact by construction.
			return cpVal{v: (&taskir.Bin{Op: x.Op, L: taskir.Const(lc), R: taskir.Const(rc)}).Eval(nil)}
		}
		// Absorbing elements fold even with one unknown side (Eval has
		// no short-circuit or side effects, so this is sound).
		switch x.Op {
		case taskir.OpMul:
			if (lok && lc == 0) || (rok && rc == 0) {
				return cpVal{v: 0}
			}
		case taskir.OpAnd:
			if (lok && lc == 0) || (rok && rc == 0) {
				return cpVal{v: 0}
			}
		case taskir.OpOr:
			if (lok && lc != 0) || (rok && rc != 0) {
				return cpVal{v: 1}
			}
		}
		return cpVal{kind: cpTop}
	default:
		return cpVal{kind: cpTop}
	}
}

func cloneState(st cpState) cpState {
	c := make(cpState, len(st))
	for k, v := range st {
		c[k] = v
	}
	return c
}

// meetStates joins two states variable-wise: equal constants stay,
// differing values rise to top; a variable missing on one side is the
// constant 0 there.
func meetStates(a, b cpState) cpState {
	m := make(cpState, len(a))
	for k, av := range a {
		bv, ok := b[k]
		if !ok {
			bv = cpVal{v: 0}
		}
		m[k] = meetVal(av, bv)
	}
	for k, bv := range b {
		if _, ok := a[k]; !ok {
			m[k] = meetVal(cpVal{v: 0}, bv)
		}
	}
	return m
}

func meetVal(a, b cpVal) cpVal {
	if a.kind == cpTop || b.kind == cpTop {
		return cpVal{kind: cpTop}
	}
	if a.v != b.v {
		return cpVal{kind: cpTop}
	}
	return a
}

func sameState(a, b cpState) bool {
	if a == nil {
		return false
	}
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		if bv, ok := b[k]; !ok || av != bv {
			return false
		}
	}
	return true
}
