package analysis

import (
	"math"

	"repro/internal/taskir"
)

// CostBound is a static upper bound on the interpreter work of one job
// of a program — the paper's §3.4 budget logic subtracts the predictor
// slice's cost from the job budget, which is only safe if that cost is
// bounded ahead of time.
type CostBound struct {
	// Stmts bounds executed statements (loop bodies included).
	Stmts float64
	// Iters bounds loop iterations (each carries LoopIterCostCPU on
	// top of its body's statements).
	Iters float64
}

// Finite reports whether the bound is finite. An unbounded result
// means some loop count could not be bounded from the supplied
// variable ranges.
func (b CostBound) Finite() bool {
	return !math.IsInf(b.Stmts, 1) && !math.IsInf(b.Iters, 1)
}

// CPUWork converts the bound into worst-case frequency-dependent CPU
// work using the interpreter's own cost model. Prediction slices carry
// no Compute statements, so this covers their entire cost.
func (b CostBound) CPUWork() float64 {
	return b.Stmts*taskir.StmtCostCPU + b.Iters*taskir.LoopIterCostCPU
}

// BoundCost derives an upper bound on the statements and loop
// iterations one job of p can execute. bounds supplies known ranges
// for params and globals (e.g. observed profiling input ranges);
// variables not listed are unbounded. The walk is a structural
// interval analysis: assignments update ranges, branches join, and
// loop bodies are analyzed after havocking every variable the body
// may assign (a sound one-step widening, since a counted Loop
// evaluates its count exactly once, before the body can change it).
func BoundCost(p *taskir.Program, bounds map[string]Interval) CostBound {
	env := map[string]Interval{}
	for v, iv := range bounds {
		env[v] = iv
	}
	for _, prm := range p.Params {
		if _, ok := env[prm]; !ok {
			env[prm] = Top()
		}
	}
	for g := range p.Globals {
		if _, ok := env[g]; !ok {
			env[g] = Top()
		}
	}
	return boundBlock(p.Body, env)
}

// DefaultWhileBound caps While trip counts in the bound, mirroring the
// interpreter's MaxIter default: execution cannot exceed it without
// aborting the job.
const DefaultWhileBound = 100_000

func boundBlock(stmts []taskir.Stmt, env map[string]Interval) CostBound {
	var b CostBound
	for _, s := range stmts {
		b.Stmts++ // every statement charges one interpreter step
		switch st := s.(type) {
		case *taskir.Assign:
			env[st.Dst] = EvalInterval(st.Expr, env)
		case *taskir.Compute, *taskir.ComputeScaled,
			*taskir.FeatAdd, *taskir.FeatCall:
			// Straight-line, no control effect on the bound.
		case *taskir.If:
			thenEnv := cloneIntervals(env)
			tb := boundBlock(st.Then, thenEnv)
			eb := boundBlock(st.Else, env)
			b.Stmts += math.Max(tb.Stmts, eb.Stmts)
			b.Iters += math.Max(tb.Iters, eb.Iters)
			joinInto(env, thenEnv)
		case *taskir.Loop:
			// The count is evaluated once, on entry, before the body
			// can mutate anything — so its pre-loop interval is exact.
			count := EvalInterval(st.Count, env)
			trips := math.Max(0, count.Hi)
			preEnv := cloneIntervals(env)
			havocAssigned(st.Body, env)
			if st.IndexVar != "" {
				env[st.IndexVar] = Interval{0, math.Max(0, count.Hi-1)}
			}
			body := boundBlock(st.Body, env)
			joinInto(env, preEnv) // zero iterations keep the pre-loop state
			b.Stmts += mulEnd(trips, body.Stmts)
			b.Iters += mulEnd(trips, 1+body.Iters)
		case *taskir.While:
			trips := float64(st.MaxIter)
			if st.MaxIter == 0 {
				trips = DefaultWhileBound
			}
			preEnv := cloneIntervals(env)
			havocAssigned(st.Body, env)
			if cond := EvalInterval(st.Cond, env); zeroOnly(cond) {
				trips = 0 // the loop can never be entered
			}
			body := boundBlock(st.Body, env)
			joinInto(env, preEnv)
			b.Stmts += mulEnd(trips, body.Stmts)
			b.Iters += mulEnd(trips, 1+body.Iters)
		case *taskir.Call:
			var worst CostBound
			for _, addr := range sortedAddrs(st.Funcs) {
				fEnv := cloneIntervals(env)
				fb := boundBlock(st.Funcs[addr], fEnv)
				worst.Stmts = math.Max(worst.Stmts, fb.Stmts)
				worst.Iters = math.Max(worst.Iters, fb.Iters)
				joinInto(env, fEnv)
			}
			b.Stmts += worst.Stmts
			b.Iters += worst.Iters
		}
	}
	return b
}

// havocAssigned widens every variable the statements may assign to the
// unbounded interval — sound for loop bodies whose iterations mutate
// state in ways the structural walk does not track.
func havocAssigned(stmts []taskir.Stmt, env map[string]Interval) {
	for _, v := range assignedVars(stmts, nil) {
		env[v] = Top()
	}
}

// assignedVars appends every variable the statements (recursively) may
// assign, including loop index variables.
func assignedVars(stmts []taskir.Stmt, dst []string) []string {
	for _, s := range stmts {
		switch st := s.(type) {
		case *taskir.Assign:
			dst = append(dst, st.Dst)
		case *taskir.If:
			dst = assignedVars(st.Then, dst)
			dst = assignedVars(st.Else, dst)
		case *taskir.While:
			dst = assignedVars(st.Body, dst)
		case *taskir.Loop:
			if st.IndexVar != "" {
				dst = append(dst, st.IndexVar)
			}
			dst = assignedVars(st.Body, dst)
		case *taskir.Call:
			for _, addr := range sortedAddrs(st.Funcs) {
				dst = assignedVars(st.Funcs[addr], dst)
			}
		}
	}
	return dst
}

func cloneIntervals(env map[string]Interval) map[string]Interval {
	c := make(map[string]Interval, len(env))
	for k, v := range env {
		c[k] = v
	}
	return c
}

// joinInto widens env to cover every state other allows. A variable
// missing from one side is unset on that path and reads as 0 there
// (Env.Get's semantics), so the join includes the point 0 for it.
func joinInto(env map[string]Interval, other map[string]Interval) {
	for k, ov := range other {
		if ev, ok := env[k]; ok {
			env[k] = ev.Join(ov)
		} else {
			env[k] = ov.Join(Point(0))
		}
	}
	for k, ev := range env {
		if _, ok := other[k]; !ok {
			env[k] = ev.Join(Point(0))
		}
	}
}
