package analysis

import (
	"sort"

	"repro/internal/taskir"
)

// Def is a definition site of a variable. Three flavors exist: an
// Assign statement (Stmt non-nil), a loop index definition at a body
// head, and the two entry pseudo-definitions — Entry marks params and
// globals (defined before the job starts), Undef marks the "never
// assigned" state of every local, which the solver propagates like any
// other definition so that a use reached by it is a may-read-before-
// def.
type Def struct {
	Var   string
	Block int
	// Stmt is the defining Assign; nil for index and pseudo defs.
	Stmt *taskir.Assign
	// Entry marks the initial definition of a param or global.
	Entry bool
	// Undef marks the undefined-at-entry pseudo definition of a local.
	Undef bool
}

// UseSite couples a reading statement with the definitions that may
// reach it — one entry per (statement, variable) pair.
type UseSite struct {
	Var   string
	Block int
	// Stmt is the reading statement; for condition/count/target reads
	// it is the block's control statement.
	Stmt taskir.Stmt
	// Defs indexes into ReachingDefs.Defs.
	Defs []int
}

// ReachingDefs solves the classical reaching-definitions dataflow
// problem over a CFG and derives def-use chains and may-undefined
// reads from the solution.
type ReachingDefs struct {
	CFG *CFG
	// Defs lists every definition site; UseSite.Defs indexes it.
	Defs []Def
	// Iterations counts worklist passes until the fixpoint, for tests
	// that assert termination bounds.
	Iterations int

	defsOf  map[string][]int // def indexes per variable
	undefOf map[string]int   // index of the Undef pseudo-def per local
	in, out []defSet
}

type defSet map[int]bool

// SolveReachingDefs builds and solves reaching definitions for a
// program body. entryVars lists the variables defined before the body
// runs (params and globals).
func SolveReachingDefs(cfg *CFG, entryVars []string) *ReachingDefs {
	rd := &ReachingDefs{
		CFG:     cfg,
		defsOf:  map[string][]int{},
		undefOf: map[string]int{},
	}
	entry := map[string]bool{}
	for _, v := range entryVars {
		entry[v] = true
	}

	// Enumerate definition sites: entry defs for params/globals, Undef
	// pseudo-defs for every other variable the body mentions, then the
	// real defs block by block.
	addDef := func(d Def) int {
		id := len(rd.Defs)
		rd.Defs = append(rd.Defs, d)
		rd.defsOf[d.Var] = append(rd.defsOf[d.Var], id)
		return id
	}
	for _, v := range sortedVars(entry) {
		addDef(Def{Var: v, Block: cfg.Entry, Entry: true})
	}
	for _, v := range sortedVars(localVars(cfg, entry)) {
		rd.undefOf[v] = addDef(Def{Var: v, Block: cfg.Entry, Undef: true})
	}
	defsInBlock := make([][]int, len(cfg.Blocks))
	for _, blk := range cfg.Blocks {
		for _, v := range blk.IndexDefs {
			defsInBlock[blk.ID] = append(defsInBlock[blk.ID], addDef(Def{Var: v, Block: blk.ID}))
		}
		for _, s := range blk.Stmts {
			if as, ok := s.(*taskir.Assign); ok {
				defsInBlock[blk.ID] = append(defsInBlock[blk.ID], addDef(Def{Var: as.Dst, Block: blk.ID, Stmt: as}))
			}
		}
	}

	// Per-block gen/kill: the last definition of each variable in the
	// block survives; any definition kills every other def of its var.
	gen := make([]defSet, len(cfg.Blocks))
	kill := make([]defSet, len(cfg.Blocks))
	for _, blk := range cfg.Blocks {
		g, k := defSet{}, defSet{}
		for _, id := range defsInBlock[blk.ID] {
			v := rd.Defs[id].Var
			for _, other := range rd.defsOf[v] {
				if other != id {
					k[other] = true
				}
				delete(g, other)
			}
			g[id] = true
			delete(k, id)
		}
		gen[blk.ID], kill[blk.ID] = g, k
	}
	// The entry block (always statement-free, see BuildCFG) generates
	// the entry and Undef pseudo-defs.
	for id, d := range rd.Defs {
		if d.Entry || d.Undef {
			gen[cfg.Entry][id] = true
		}
	}

	// Iterate to the fixpoint with a worklist in block order.
	rd.in = make([]defSet, len(cfg.Blocks))
	rd.out = make([]defSet, len(cfg.Blocks))
	for i := range cfg.Blocks {
		rd.in[i], rd.out[i] = defSet{}, defSet{}
	}
	changed := true
	for changed {
		changed = false
		rd.Iterations++
		for _, blk := range cfg.Blocks {
			inS := defSet{}
			for _, p := range blk.Preds {
				for id := range rd.out[p] {
					inS[id] = true
				}
			}
			outS := defSet{}
			for id := range inS {
				if !kill[blk.ID][id] {
					outS[id] = true
				}
			}
			for id := range gen[blk.ID] {
				outS[id] = true
			}
			if !sameSet(rd.out[blk.ID], outS) {
				changed = true
			}
			rd.in[blk.ID], rd.out[blk.ID] = inS, outS
		}
	}
	return rd
}

// UseSites walks every block from its solved in-state and returns the
// def-use chains: for each read, the definitions that may reach it.
func (rd *ReachingDefs) UseSites() []UseSite {
	var uses []UseSite
	for _, blk := range rd.CFG.Blocks {
		// live maps each variable to the def ids currently reaching.
		live := map[string][]int{}
		for id := range rd.in[blk.ID] {
			v := rd.Defs[id].Var
			live[v] = append(live[v], id)
		}
		record := func(s taskir.Stmt, vars []string) {
			seen := map[string]bool{}
			for _, v := range vars {
				if seen[v] {
					continue
				}
				seen[v] = true
				ids := append([]int(nil), live[v]...)
				sort.Ints(ids)
				uses = append(uses, UseSite{Var: v, Block: blk.ID, Stmt: s, Defs: ids})
			}
		}
		redef := func(id int) {
			v := rd.Defs[id].Var
			live[v] = []int{id}
		}
		for _, v := range blk.IndexDefs {
			for _, id := range rd.defsOf[v] {
				if d := rd.Defs[id]; d.Block == blk.ID && d.Stmt == nil && !d.Entry && !d.Undef {
					redef(id)
				}
			}
		}
		for _, s := range blk.Stmts {
			record(s, stmtUses(s))
			if as, ok := s.(*taskir.Assign); ok {
				for _, id := range rd.defsOf[as.Dst] {
					if rd.Defs[id].Stmt == as {
						redef(id)
					}
				}
			}
		}
		if blk.Term != nil {
			record(blk.Term, termUses(blk.Term))
		}
	}
	return uses
}

// UndefRead is a variable read that may execute before any definition
// of the variable (the interpreter silently yields 0 for it).
type UndefRead struct {
	Var string
	// Stmt is the reading statement.
	Stmt taskir.Stmt
}

// MayUndefined returns all reads possibly executed before a definition,
// deduplicated by (variable, statement), in a deterministic order.
func (rd *ReachingDefs) MayUndefined() []UndefRead {
	var out []UndefRead
	seen := map[taskir.Stmt]map[string]bool{}
	for _, u := range rd.UseSites() {
		undefID, isLocal := rd.undefOf[u.Var]
		if !isLocal {
			continue
		}
		reached := false
		for _, id := range u.Defs {
			if id == undefID {
				reached = true
				break
			}
		}
		// A use with no reaching defs at all can only mean the variable
		// never appears as a def anywhere; the Undef pseudo-def covers
		// that case too, so reached implies the finding.
		if len(u.Defs) == 0 {
			reached = true
		}
		if !reached {
			continue
		}
		if seen[u.Stmt] == nil {
			seen[u.Stmt] = map[string]bool{}
		}
		if seen[u.Stmt][u.Var] {
			continue
		}
		seen[u.Stmt][u.Var] = true
		out = append(out, UndefRead{Var: u.Var, Stmt: u.Stmt})
	}
	return out
}

// localVars collects every variable the CFG mentions (reads or
// defines) that is not entry-defined.
func localVars(cfg *CFG, entry map[string]bool) map[string]bool {
	locals := map[string]bool{}
	add := func(vars []string) {
		for _, v := range vars {
			if !entry[v] {
				locals[v] = true
			}
		}
	}
	for _, blk := range cfg.Blocks {
		add(blk.IndexDefs)
		for _, s := range blk.Stmts {
			add(stmtUses(s))
			if as, ok := s.(*taskir.Assign); ok {
				add([]string{as.Dst})
			}
		}
		if blk.Term != nil {
			add(termUses(blk.Term))
		}
	}
	return locals
}

func sortedVars(set map[string]bool) []string {
	vars := make([]string, 0, len(set))
	for v := range set {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return vars
}

func sameSet(a, b defSet) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if !b[id] {
			return false
		}
	}
	return true
}
