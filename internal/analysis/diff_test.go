package analysis

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/features"
	"repro/internal/instrument"
	"repro/internal/slicer"
	"repro/internal/taskir"
)

// Differential harness (the dynamic half of slice verification): over
// hundreds of random programs, the verified slice must reproduce the
// instrumented program's feature values for the FIDs it claims to
// compute, and must never mutate shared global state. This is the
// end-to-end check that the static VerifySlice guarantees actually
// hold at run time.
func TestDifferentialFullVsSliceFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	const programs = 250
	for trial := 0; trial < programs; trial++ {
		p := taskir.RandomProgram(rng)
		ip := instrument.Instrument(p)

		// Alternate between the full feature set and a random subset,
		// mirroring what Lasso-driven selection feeds the slicer.
		need := map[int]bool(nil)
		if trial%2 == 1 && len(ip.Sites) > 0 {
			need = map[int]bool{}
			for _, s := range ip.Sites {
				if rng.Intn(2) == 0 {
					need[s.FID] = true
				}
			}
		}
		sl := slicer.Extract(ip, need)
		rep, err := VerifySlice(ip, sl)
		if err != nil {
			t.Fatalf("trial %d: VerifySlice rejected the slicer's own output: %v\n%s",
				trial, err, taskir.Format(ip.Prog))
		}

		for run := 0; run < 3; run++ {
			globals := map[string]int64{"g0": rng.Int63n(20) - 5, "g1": rng.Int63n(20) - 5}
			params := map[string]int64{
				"p0": rng.Int63n(30) - 5,
				"p1": rng.Int63n(30) - 5,
				"p2": rng.Int63n(30) - 5,
			}

			fullTr := features.NewTrace()
			fullEnv := taskir.NewEnv(copyGlobals(globals))
			fullEnv.SetParams(params)
			if _, err := taskir.Run(ip.Prog, fullEnv, taskir.RunOptions{Recorder: fullTr}); err != nil {
				t.Fatalf("trial %d: full run: %v", trial, err)
			}

			before := copyGlobals(globals)
			sliceTr := features.NewTrace()
			sliceW, err := sl.Run(globals, params, sliceTr)
			if err != nil {
				t.Fatalf("trial %d: slice run: %v", trial, err)
			}
			if !reflect.DeepEqual(globals, before) {
				t.Fatalf("trial %d: slice mutated shared globals: %v -> %v", trial, before, globals)
			}

			// Every FID the report claims must agree with the full run.
			for _, fid := range rep.NeededFIDs {
				if sliceTr.Counts[fid] != fullTr.Counts[fid] {
					t.Fatalf("trial %d run %d: FID %d count %d, full %d\n%s",
						trial, run, fid, sliceTr.Counts[fid], fullTr.Counts[fid], taskir.Format(sl.Prog))
				}
				if !reflect.DeepEqual(sliceTr.CallAddrs[fid], fullTr.CallAddrs[fid]) {
					t.Fatalf("trial %d run %d: FID %d addrs %v, full %v",
						trial, run, fid, sliceTr.CallAddrs[fid], fullTr.CallAddrs[fid])
				}
			}

			// Cost-bound soundness: with the actual inputs as point
			// intervals, a finite static bound must cover the measured
			// interpreter work of the slice.
			bounds := map[string]Interval{}
			for k, v := range params {
				bounds[k] = Point(v)
			}
			for k, v := range before {
				bounds[k] = Point(v)
			}
			if b := BoundCost(sl.Prog, bounds); b.Finite() && b.CPUWork() < sliceW.CPU-1e-6 {
				t.Fatalf("trial %d run %d: static bound %.1f CPU below measured %.1f\n%s",
					trial, run, b.CPUWork(), sliceW.CPU, taskir.Format(sl.Prog))
			}
		}
	}
}

// Regression: a program whose features depend on a chain through
// global writes keeps those assignments in the slice, yet running the
// slice must leave the caller's global map untouched (Env.Freeze
// isolation) while still computing the right trip count.
func TestSliceOfGlobalWritingProgramIsolated(t *testing.T) {
	p := &taskir.Program{
		Name:    "gwrite",
		Params:  []string{"n"},
		Globals: map[string]int64{"cursor": 0},
		Body: []taskir.Stmt{
			&taskir.Assign{Dst: "cursor", Expr: taskir.Add(taskir.Var("cursor"), taskir.Var("n"))},
			&taskir.Loop{ID: 1, Count: taskir.Var("cursor"), Body: []taskir.Stmt{
				&taskir.Compute{Work: 100},
			}},
		},
	}
	ip := instrument.Instrument(p)
	sl := slicer.Extract(ip, nil)
	rep, err := VerifySlice(ip, sl)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.GlobalsWritten; len(got) != 1 || got[0] != "cursor" {
		t.Fatalf("GlobalsWritten = %v, want [cursor] (kept for the feature chain)", got)
	}
	globals := map[string]int64{"cursor": 3}
	tr := features.NewTrace()
	if _, err := sl.Run(globals, map[string]int64{"n": 4}, tr); err != nil {
		t.Fatal(err)
	}
	if globals["cursor"] != 3 {
		t.Fatalf("slice mutated shared global: cursor = %d, want 3", globals["cursor"])
	}
	// The loop feature is the trip count using the *updated* cursor.
	var loopFID = -1
	for _, s := range ip.Sites {
		if s.Kind == instrument.KindLoop {
			loopFID = s.FID
		}
	}
	if tr.Counts[loopFID] != 7 {
		t.Fatalf("loop feature = %d, want 7 (3+4)", tr.Counts[loopFID])
	}
}

func copyGlobals(m map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
