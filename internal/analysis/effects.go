package analysis

import (
	"sort"

	"repro/internal/taskir"
)

// Effect classifies what one statement (recursively, for control
// statements) may do to state outside the job: which globals it may
// read or write, and whether it performs abstract computation. The
// may-sets ignore path feasibility — a write inside a never-taken
// branch still counts, which is the right direction for proving
// isolation.
type Effect struct {
	ReadsGlobals  map[string]bool
	WritesGlobals map[string]bool
	// ComputeStmts counts Compute/ComputeScaled statements — a
	// prediction slice must have zero.
	ComputeStmts int
	// FeatureFIDs is the set of feature sites the statement updates.
	FeatureFIDs map[int]bool
}

func newEffect() *Effect {
	return &Effect{
		ReadsGlobals:  map[string]bool{},
		WritesGlobals: map[string]bool{},
		FeatureFIDs:   map[int]bool{},
	}
}

// ReadsSorted returns the may-read globals in sorted order.
func (e *Effect) ReadsSorted() []string { return sortedVars(e.ReadsGlobals) }

// WritesSorted returns the may-write globals in sorted order.
func (e *Effect) WritesSorted() []string { return sortedVars(e.WritesGlobals) }

// FIDsSorted returns the updated feature sites in sorted order.
func (e *Effect) FIDsSorted() []int {
	fids := make([]int, 0, len(e.FeatureFIDs))
	for fid := range e.FeatureFIDs {
		fids = append(fids, fid)
	}
	sort.Ints(fids)
	return fids
}

// StmtEffect classifies a single statement against the given global
// set (recursing into control-statement bodies).
func StmtEffect(s taskir.Stmt, globals map[string]bool) *Effect {
	e := newEffect()
	effectStmt(s, globals, e)
	return e
}

// ProgramEffect aggregates the effects of the whole program body
// against its own global set.
func ProgramEffect(p *taskir.Program) *Effect {
	globals := make(map[string]bool, len(p.Globals))
	for g := range p.Globals {
		globals[g] = true
	}
	e := newEffect()
	for _, s := range p.Body {
		effectStmt(s, globals, e)
	}
	return e
}

func effectStmt(s taskir.Stmt, globals map[string]bool, e *Effect) {
	reads := func(vars []string) {
		for _, v := range vars {
			if globals[v] {
				e.ReadsGlobals[v] = true
			}
		}
	}
	writes := func(v string) {
		if globals[v] {
			e.WritesGlobals[v] = true
		}
	}
	switch st := s.(type) {
	case *taskir.Assign:
		reads(taskir.ExprVars(st.Expr))
		writes(st.Dst)
	case *taskir.Compute:
		e.ComputeStmts++
	case *taskir.ComputeScaled:
		e.ComputeStmts++
		reads(taskir.ExprVars(st.Units))
	case *taskir.If:
		reads(taskir.ExprVars(st.Cond))
		for _, b := range [][]taskir.Stmt{st.Then, st.Else} {
			for _, inner := range b {
				effectStmt(inner, globals, e)
			}
		}
	case *taskir.While:
		reads(taskir.ExprVars(st.Cond))
		for _, inner := range st.Body {
			effectStmt(inner, globals, e)
		}
	case *taskir.Loop:
		reads(taskir.ExprVars(st.Count))
		if st.IndexVar != "" {
			writes(st.IndexVar)
		}
		for _, inner := range st.Body {
			effectStmt(inner, globals, e)
		}
	case *taskir.Call:
		reads(taskir.ExprVars(st.Target))
		for _, addr := range sortedAddrs(st.Funcs) {
			for _, inner := range st.Funcs[addr] {
				effectStmt(inner, globals, e)
			}
		}
	case *taskir.FeatAdd:
		reads(taskir.ExprVars(st.Amount))
		e.FeatureFIDs[st.FID] = true
	case *taskir.FeatCall:
		reads(taskir.ExprVars(st.Target))
		e.FeatureFIDs[st.FID] = true
	}
}
