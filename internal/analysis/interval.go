package analysis

import (
	"fmt"
	"math"

	"repro/internal/taskir"
)

// Interval is a conservative range of an integer expression's value.
// Endpoints are float64 so ±Inf expresses "unbounded"; int64 values up
// to 2^53 are represented exactly, far beyond any sane loop bound.
type Interval struct {
	Lo, Hi float64
}

// Top is the unbounded interval.
func Top() Interval { return Interval{math.Inf(-1), math.Inf(1)} }

// Point is the singleton interval [v, v].
func Point(v int64) Interval { f := float64(v); return Interval{f, f} }

// Range is the interval [lo, hi].
func Range(lo, hi int64) Interval { return Interval{float64(lo), float64(hi)} }

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v int64) bool { return iv.Lo <= float64(v) && float64(v) <= iv.Hi }

// Join returns the smallest interval covering both operands.
func (iv Interval) Join(o Interval) Interval {
	return Interval{math.Min(iv.Lo, o.Lo), math.Max(iv.Hi, o.Hi)}
}

func (iv Interval) String() string { return fmt.Sprintf("[%g, %g]", iv.Lo, iv.Hi) }

// bool01 is the interval of any comparison or logical result.
func bool01() Interval { return Interval{0, 1} }

// EvalInterval bounds e given variable ranges. Missing variables are
// unbounded — callers that know better (e.g. observed param ranges)
// supply env entries. The arithmetic mirrors Bin.Eval's guarded
// semantics (division and modulo by zero yield 0).
func EvalInterval(e taskir.Expr, env map[string]Interval) Interval {
	switch x := e.(type) {
	case taskir.Const:
		return Point(int64(x))
	case taskir.Var:
		if iv, ok := env[string(x)]; ok {
			return iv
		}
		return Top()
	case *taskir.Not:
		iv := EvalInterval(x.X, env)
		if iv.Lo > 0 || iv.Hi < 0 {
			return Point(0) // operand can never be zero
		}
		if iv.Lo == 0 && iv.Hi == 0 {
			return Point(1)
		}
		return bool01()
	case *taskir.Bin:
		l := EvalInterval(x.L, env)
		r := EvalInterval(x.R, env)
		return binInterval(x.Op, l, r)
	default:
		return Top()
	}
}

func binInterval(op taskir.Op, l, r Interval) Interval {
	switch op {
	case taskir.OpAdd:
		return Interval{l.Lo + r.Lo, l.Hi + r.Hi}
	case taskir.OpSub:
		return Interval{l.Lo - r.Hi, l.Hi - r.Lo}
	case taskir.OpMul:
		return Interval{
			min4(mulEnd(l.Lo, r.Lo), mulEnd(l.Lo, r.Hi), mulEnd(l.Hi, r.Lo), mulEnd(l.Hi, r.Hi)),
			max4(mulEnd(l.Lo, r.Lo), mulEnd(l.Lo, r.Hi), mulEnd(l.Hi, r.Lo), mulEnd(l.Hi, r.Hi)),
		}
	case taskir.OpDiv:
		// Truncated division keeps the quotient between 0 and the real
		// quotient; with |r| ≥ 1 its magnitude never exceeds |l|, and a
		// zero divisor yields 0. The hull over both sign cases is sound
		// for any divisor range.
		return hull(0, l.Lo, l.Hi, -l.Lo, -l.Hi)
	case taskir.OpMod:
		// Go's % follows the dividend's sign, |l%r| < |r|, and the
		// guarded semantics give 0 for r == 0.
		rAbs := math.Max(math.Abs(r.Lo), math.Abs(r.Hi))
		lo := math.Max(-(rAbs - 1), math.Min(0, l.Lo))
		hi := math.Min(rAbs-1, math.Max(0, l.Hi))
		if rAbs == 0 {
			return Point(0)
		}
		return Interval{math.Min(lo, 0), math.Max(hi, 0)}
	case taskir.OpMin:
		return Interval{math.Min(l.Lo, r.Lo), math.Min(l.Hi, r.Hi)}
	case taskir.OpMax:
		return Interval{math.Max(l.Lo, r.Lo), math.Max(l.Hi, r.Hi)}
	case taskir.OpLT:
		return cmpInterval(l.Hi < r.Lo, l.Lo >= r.Hi)
	case taskir.OpLE:
		return cmpInterval(l.Hi <= r.Lo, l.Lo > r.Hi)
	case taskir.OpGT:
		return cmpInterval(l.Lo > r.Hi, l.Hi <= r.Lo)
	case taskir.OpGE:
		return cmpInterval(l.Lo >= r.Hi, l.Hi < r.Lo)
	case taskir.OpEQ:
		if l.Lo == l.Hi && r.Lo == r.Hi && l.Lo == r.Lo {
			return Point(1)
		}
		return cmpInterval(false, l.Hi < r.Lo || l.Lo > r.Hi)
	case taskir.OpNE:
		if l.Hi < r.Lo || l.Lo > r.Hi {
			return Point(1)
		}
		if l.Lo == l.Hi && r.Lo == r.Hi && l.Lo == r.Lo {
			return Point(0)
		}
		return bool01()
	case taskir.OpAnd:
		if zeroOnly(l) || zeroOnly(r) {
			return Point(0)
		}
		if nonZeroOnly(l) && nonZeroOnly(r) {
			return Point(1)
		}
		return bool01()
	case taskir.OpOr:
		if nonZeroOnly(l) || nonZeroOnly(r) {
			return Point(1)
		}
		if zeroOnly(l) && zeroOnly(r) {
			return Point(0)
		}
		return bool01()
	}
	return Top()
}

// cmpInterval maps "always true" / "always false" evidence to the
// comparison result interval.
func cmpInterval(alwaysTrue, alwaysFalse bool) Interval {
	switch {
	case alwaysTrue:
		return Point(1)
	case alwaysFalse:
		return Point(0)
	default:
		return bool01()
	}
}

func zeroOnly(iv Interval) bool    { return iv.Lo == 0 && iv.Hi == 0 }
func nonZeroOnly(iv Interval) bool { return iv.Lo > 0 || iv.Hi < 0 }

// mulEnd multiplies interval endpoints with 0·±Inf defined as 0: a
// zero endpoint means the factor can be exactly 0, making the product
// 0 regardless of the other factor's range.
func mulEnd(a, b float64) float64 {
	if a == 0 || b == 0 {
		return 0
	}
	return a * b
}

func min4(a, b, c, d float64) float64 { return math.Min(math.Min(a, b), math.Min(c, d)) }
func max4(a, b, c, d float64) float64 { return math.Max(math.Max(a, b), math.Max(c, d)) }

func hull(vals ...float64) Interval {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return Interval{lo, hi}
}
