package analysis

import (
	"fmt"

	"repro/internal/taskir"
)

// Severity grades a lint finding.
type Severity int

// Severities. Errors make dvfslint exit non-zero; warnings do not.
const (
	SevWarn Severity = iota
	SevError
)

func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warn"
}

// Finding is one lint diagnostic.
type Finding struct {
	Sev  Severity
	Code string
	Msg  string
}

func (f Finding) String() string { return fmt.Sprintf("%s [%s] %s", f.Sev, f.Code, f.Msg) }

// Lint codes.
const (
	// CodeInvalid: Program.Validate rejected the program.
	CodeInvalid = "invalid"
	// CodeUndefinedRead: a variable may be read before any definition;
	// the interpreter silently yields 0 for such reads (Env.Get), so
	// the program computes with garbage without failing.
	CodeUndefinedRead = "undefined-read"
	// CodeUnreachable: statements that no feasible path executes.
	CodeUnreachable = "unreachable"
	// CodeUninstrumented: a loop/branch/call site carries no feature
	// counter — a feature-coverage gap versus the paper's §3.1
	// instrumentation, leaving the model blind to that control flow.
	CodeUninstrumented = "uninstrumented"
	// CodeConstFeature: a feature counter always adds the same
	// constant, so it cannot distinguish jobs.
	CodeConstFeature = "const-feature"
)

// LintOptions configures Lint.
type LintOptions struct {
	// CheckCoverage enables uninstrumented-site findings. Enable it
	// for programs that claim to be instrumented (the output of
	// instrument.Instrument, or hand-instrumented input); raw task
	// programs legitimately carry no counters.
	CheckCoverage bool
}

// Lint runs every static check over a task program and returns the
// findings in a deterministic order.
func Lint(p *taskir.Program, opts LintOptions) []Finding {
	var out []Finding
	if err := p.Validate(); err != nil {
		out = append(out, Finding{Sev: SevError, Code: CodeInvalid, Msg: err.Error()})
	}

	cfg := BuildCFG(p.Body)
	entry := entryVarsOf(p)

	rd := SolveReachingDefs(cfg, entry)
	for _, u := range rd.MayUndefined() {
		out = append(out, Finding{
			Sev:  SevError,
			Code: CodeUndefinedRead,
			Msg:  fmt.Sprintf("variable %q may be read before definition in %q (reads yield 0)", u.Var, u.Stmt),
		})
	}

	cp := SolveConstProp(cfg, entry)
	for _, s := range cp.Unreachable() {
		out = append(out, Finding{
			Sev:  SevWarn,
			Code: CodeUnreachable,
			Msg:  fmt.Sprintf("unreachable: %q", s),
		})
	}
	for _, cf := range cp.ConstFeatures() {
		out = append(out, Finding{
			Sev:  SevWarn,
			Code: CodeConstFeature,
			Msg:  fmt.Sprintf("feature %d always adds the constant %d in %q", cf.Stmt.FID, cf.Value, cf.Stmt),
		})
	}

	if opts.CheckCoverage {
		out = append(out, coverageFindings(p.Body, nil)...)
	}
	return out
}

// coverageFindings checks the instrumentation conventions of
// internal/instrument (§3.1): counted loops get a hoisted FeatAdd
// immediately before the loop, while-loops and conditionals count
// inside the body/then-block, and call sites get a FeatCall
// immediately before the call. A site satisfying none of the accepted
// placements is a coverage gap.
func coverageFindings(stmts []taskir.Stmt, out []Finding) []Finding {
	gap := func(what string, id int, s taskir.Stmt) {
		out = append(out, Finding{
			Sev:  SevError,
			Code: CodeUninstrumented,
			Msg:  fmt.Sprintf("%s#%d has no feature counter: %q", what, id, s),
		})
	}
	for i, s := range stmts {
		var prev taskir.Stmt
		if i > 0 {
			prev = stmts[i-1]
		}
		switch st := s.(type) {
		case *taskir.If:
			if !hasFeatAdd(st.Then) && !isFeatAdd(prev) {
				gap("if", st.ID, st)
			}
			out = coverageFindings(st.Then, out)
			out = coverageFindings(st.Else, out)
		case *taskir.While:
			if !hasFeatAdd(st.Body) && !isFeatAdd(prev) {
				gap("while", st.ID, st)
			}
			out = coverageFindings(st.Body, out)
		case *taskir.Loop:
			if !isFeatAdd(prev) && !hasFeatAdd(st.Body) {
				gap("loop", st.ID, st)
			}
			out = coverageFindings(st.Body, out)
		case *taskir.Call:
			if _, ok := prev.(*taskir.FeatCall); !ok {
				gap("call", st.ID, st)
			}
			for _, addr := range sortedAddrs(st.Funcs) {
				out = coverageFindings(st.Funcs[addr], out)
			}
		}
	}
	return out
}

func isFeatAdd(s taskir.Stmt) bool {
	_, ok := s.(*taskir.FeatAdd)
	return ok
}

// hasFeatAdd reports whether a FeatAdd appears at the top level of the
// block (the in-body counter placement).
func hasFeatAdd(stmts []taskir.Stmt) bool {
	for _, s := range stmts {
		if isFeatAdd(s) {
			return true
		}
	}
	return false
}

// ErrorCount returns how many findings are errors.
func ErrorCount(findings []Finding) int {
	n := 0
	for _, f := range findings {
		if f.Sev == SevError {
			n++
		}
	}
	return n
}
