package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/instrument"
	"repro/internal/slicer"
	"repro/internal/taskir"
)

// SliceReport is the static evidence VerifySlice gathers about a
// prediction slice.
type SliceReport struct {
	// NeededFIDs is what the model asked for; ComputedFIDs is what the
	// slice actually updates. Verification requires Computed ⊇ Needed.
	NeededFIDs, ComputedFIDs []int
	// GlobalsWritten lists persistent state the slice may write. Such
	// writes are isolated at run time (Slice.Run freezes the
	// environment), so they are reported, not rejected; an empty list
	// means the slice is side-effect free even unfrozen.
	GlobalsWritten []string
	// UndefinedReads lists variables the slice may read before any
	// definition even though the full program always defines them
	// first — the signature of a slicer bug (a dropped definition
	// whose use survived).
	UndefinedReads []string
	// ComputeStmts counts retained Compute/ComputeScaled statements;
	// any non-zero count fails verification.
	ComputeStmts int
}

// VerifySlice statically checks that a slice extracted from ip is a
// sound predictor program (paper §3.2): it performs none of the task's
// actual work, computes a superset of the features the model needs,
// and never reads a variable whose defining assignment was sliced
// away. It also classifies the slice's global writes, which Slice.Run
// must (and does) isolate behind a frozen environment.
//
// The returned report is non-nil even on failure, so callers can show
// what was found; the error aggregates every violated property.
func VerifySlice(ip *instrument.Program, sl *slicer.Slice) (*SliceReport, error) {
	eff := ProgramEffect(sl.Prog)
	rep := &SliceReport{
		NeededFIDs:     sortedFIDs(sl.NeededFIDs),
		ComputedFIDs:   eff.FIDsSorted(),
		GlobalsWritten: eff.WritesSorted(),
		ComputeStmts:   eff.ComputeStmts,
	}

	var problems []string
	if rep.ComputeStmts > 0 {
		problems = append(problems,
			fmt.Sprintf("slice retains %d compute statement(s) — it would perform task work", rep.ComputeStmts))
	}

	computed := map[int]bool{}
	for _, fid := range rep.ComputedFIDs {
		computed[fid] = true
	}
	var missing []int
	for _, fid := range rep.NeededFIDs {
		if !computed[fid] {
			missing = append(missing, fid)
		}
	}
	if len(missing) > 0 {
		problems = append(problems,
			fmt.Sprintf("slice misses needed feature site(s) %v", missing))
	}

	// A read is only a slicer bug if the slice may see it undefined
	// where the full program could not: baseline against the
	// instrumented program so pre-existing may-undefined reads (which
	// dvfslint flags separately) do not fail slice verification.
	baseline := map[string]bool{}
	for _, u := range mayUndefinedOf(ip.Prog) {
		baseline[u.Var] = true
	}
	seen := map[string]bool{}
	for _, u := range mayUndefinedOf(sl.Prog) {
		if !baseline[u.Var] && !seen[u.Var] {
			seen[u.Var] = true
			rep.UndefinedReads = append(rep.UndefinedReads, u.Var)
		}
	}
	sort.Strings(rep.UndefinedReads)
	if len(rep.UndefinedReads) > 0 {
		problems = append(problems,
			fmt.Sprintf("slice may read %v before any definition (definition sliced away?)", rep.UndefinedReads))
	}

	if len(problems) > 0 {
		return rep, fmt.Errorf("analysis: slice of %s fails verification: %s",
			ip.Prog.Name, strings.Join(problems, "; "))
	}
	return rep, nil
}

// mayUndefinedOf runs reaching definitions on a whole program with its
// params and globals entry-defined.
func mayUndefinedOf(p *taskir.Program) []UndefRead {
	cfg := BuildCFG(p.Body)
	return SolveReachingDefs(cfg, entryVarsOf(p)).MayUndefined()
}

func entryVarsOf(p *taskir.Program) []string {
	entry := make([]string, 0, len(p.Params)+len(p.Globals))
	entry = append(entry, p.Params...)
	for g := range p.Globals {
		entry = append(entry, g)
	}
	sort.Strings(entry)
	return entry
}

func sortedFIDs(set map[int]bool) []int {
	fids := make([]int, 0, len(set))
	for fid := range set {
		fids = append(fids, fid)
	}
	sort.Ints(fids)
	return fids
}
