package core

import (
	"testing"

	"repro/internal/features"
	"repro/internal/workload"
)

// TestPredictTraceZeroAlloc is the runtime half of the hotpathalloc
// guarantee: dvfsvet proves statically that the //dvfs:hotpath
// decision path contains no allocation sites, and this gate proves the
// compiler agrees — the whole prediction (vectorize into the stack
// buffer, two model evaluations, level selection, feature hash) runs
// without touching the heap. ROADMAP item 2; wired into `make
// alloc-gate` and CI.
func TestPredictTraceZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is not meaningful under the race detector")
	}
	w := workload.SHA()
	c, err := Build(w, Config{ProfileJobs: 60, ProfileSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	gen := w.NewGen(3)
	globals := w.FreshGlobals()
	params := gen.Next(0)
	tr := features.NewTrace()
	if _, err := c.Slice.Run(globals, params, tr); err != nil {
		t.Fatal(err)
	}
	cur := c.Plat.MaxLevel()
	if dim := c.Schema.Dim(); dim > vecStackDim {
		t.Fatalf("schema dim %d exceeds vecStackDim %d; the stack fast path is dead", dim, vecStackDim)
	}

	// One warm-up decision, then the measured runs.
	c.PredictTrace(tr, params, w.DefaultBudgetSec, 0, cur)
	allocs := testing.AllocsPerRun(200, func() {
		c.PredictTrace(tr, params, w.DefaultBudgetSec, 0, cur)
	})
	if allocs != 0 {
		t.Fatalf("PredictTrace allocated %.1f times per run; the decision path must be allocation-free", allocs)
	}
}
