package core

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/features"
	"repro/internal/governor"
	"repro/internal/workload"
)

// The serving daemon (internal/serve) shares one Controller across all
// request goroutines, so the prediction path must be race-clean:
// JobStart may only read shared state (the frozen slice environment
// copies global writes into per-call locals, the trace is per-call,
// and PredictTrace touches nothing mutable). This test hammers one
// controller from 32 goroutines under -race and checks every goroutine
// reaches identical decisions for identical jobs.
func TestControllerConcurrentJobStart(t *testing.T) {
	w := workload.SHA()
	c, err := Build(w, Config{ProfileJobs: 60, ProfileSeed: 7})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 32
	const jobs = 40
	gen := w.NewGen(99)
	globals := w.FreshGlobals()
	params := make([]map[string]int64, jobs)
	for i := range params {
		params[i] = gen.Next(i)
	}

	// Reference decisions, computed single-threaded.
	ref := make([]governor.Decision, jobs)
	for i := range params {
		job := &governor.Job{Params: params[i], Globals: globals, RemainingBudgetSec: w.DefaultBudgetSec}
		ref[i] = c.JobStart(job, c.Plat.MaxLevel())
	}

	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < jobs; i++ {
				job := &governor.Job{Params: params[i], Globals: globals, RemainingBudgetSec: w.DefaultBudgetSec}
				d := c.JobStart(job, c.Plat.MaxLevel())
				if !reflect.DeepEqual(d, ref[i]) {
					select {
					case errs <- "concurrent decision differs from single-threaded reference":
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// PredictTrace and JobStart must agree: JobStart is defined as "record
// the trace by running the slice, then PredictTrace". The serving path
// relies on this equivalence (the daemon receives the trace over the
// wire and calls PredictTrace).
func TestPredictTraceMatchesJobStart(t *testing.T) {
	w := workload.SHA()
	c, err := Build(w, Config{ProfileJobs: 60, ProfileSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	gen := w.NewGen(3)
	globals := w.FreshGlobals()
	for i := 0; i < 25; i++ {
		params := gen.Next(i)
		job := &governor.Job{Params: params, Globals: globals, RemainingBudgetSec: w.DefaultBudgetSec}
		d := c.JobStart(job, c.Plat.MaxLevel())

		tr := features.NewTrace()
		sw, err := c.Slice.Run(globals, params, tr)
		if err != nil {
			t.Fatal(err)
		}
		predictorSec := c.Plat.JobTimeAt(sw.CPU, sw.MemSec, c.Plat.MaxLevel())
		p := c.PredictTrace(tr, params, w.DefaultBudgetSec, predictorSec, c.Plat.MaxLevel())
		if p.Target != d.Target || p.PredictorSec != d.PredictorSec || p.PredictedExecSec != d.PredictedExecSec {
			t.Fatalf("job %d: PredictTrace %+v != JobStart %+v", i, p, d)
		}
	}
}
