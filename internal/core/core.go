// Package core assembles the paper's framework (Fig 13): given an
// annotated task, it instruments control-flow features, profiles the
// task off-line at the minimum and maximum frequencies, trains the
// asymmetric-Lasso execution-time models, slices the program down to
// the selected features, and produces the run-time DVFS predictor —
// a governor.Governor that, before each job, runs the prediction
// slice, predicts the job's execution time, and picks the lowest
// frequency that just meets the response-time deadline.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/analysis"
	"repro/internal/dvfs"
	"repro/internal/features"
	"repro/internal/governor"
	"repro/internal/instrument"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/regress"
	"repro/internal/slicer"
	"repro/internal/taskir"
	"repro/internal/workload"
)

// Config parameterizes controller construction. Zero values select the
// paper's settings.
type Config struct {
	// Plat is the target platform; nil selects the ODROID-XU3 A7.
	Plat *platform.Platform
	// ProfileJobs is the number of profiling jobs; zero selects the
	// workload's evaluation job count.
	ProfileJobs int
	// ProfileSeed drives profiling inputs and measurement noise.
	ProfileSeed int64
	// Alpha is the under-prediction penalty weight (§3.3); zero → 100.
	Alpha float64
	// Gamma is the Lasso feature-selection weight; zero → 1e-3.
	Gamma float64
	// Margin is the prediction safety margin (§3.4); zero → 0.10,
	// negative → 0.
	Margin float64
	// NoiseSigma models measurement noise during profiling;
	// zero → 0.05, negative → 0.
	NoiseSigma float64
	// Switch is the switch-time estimate table; nil measures the
	// 95th-percentile table on Plat (Fig 11).
	Switch *platform.SwitchTable
	// KeepAllFeatures disables Lasso-driven slice reduction (ablation):
	// the slice computes every feature even when its coefficient is 0.
	KeepAllFeatures bool
	// UseHints appends the workload's programmer-provided hint values
	// (§3.5) as extra feature columns beyond the automatically
	// generated control-flow features.
	UseHints bool
	// MaxPredictorSec, when positive, caps the prediction slice's
	// average execution time at maximum frequency by iteratively
	// dropping the costliest features and retraining — §3.5's
	// "features over some overhead threshold could be explicitly
	// disallowed".
	MaxPredictorSec float64
	// MaxSliceBudgetFrac, when positive, caps the slice's *static
	// worst-case* execution time at maximum frequency to this fraction
	// of the workload's budget, using internal/analysis loop-bound
	// intervals over the observed profiling input ranges. Where
	// MaxPredictorSec trims by measured average cost, this bound makes
	// §3.4's predictor-overhead subtraction safe against the worst
	// job: a slice whose bound exceeds the cap has features dropped
	// until it fits, and Build fails if no slice can fit.
	MaxSliceBudgetFrac float64
	// Quadratic extends the model with squared counter features —
	// §3.5's "higher-order ... models may provide better accuracy"
	// option. The paper found "relatively little gain" for its
	// benchmarks; RunQuadratic measures the same comparison here.
	Quadratic bool
	// EnergyAware switches level selection from the paper's
	// minimum-feasible-frequency rule to minimum-estimated-energy —
	// only meaningful on heterogeneous grids (see dvfs.Selector).
	EnergyAware bool
}

func (c Config) withDefaults(w *workload.Workload) Config {
	if c.Plat == nil {
		c.Plat = platform.ODROIDXU3A7()
	}
	if c.ProfileJobs == 0 {
		c.ProfileJobs = w.EvalJobs
	}
	if c.Alpha == 0 {
		c.Alpha = 100
	}
	if c.Gamma == 0 {
		c.Gamma = 1e-3
	}
	if c.Margin == 0 {
		c.Margin = 0.10
	}
	if c.Margin < 0 {
		c.Margin = 0
	}
	if c.NoiseSigma == 0 {
		c.NoiseSigma = 0.05
	}
	if c.NoiseSigma < 0 {
		c.NoiseSigma = 0
	}
	if c.Switch == nil {
		c.Switch = platform.MeasureSwitchTable(c.Plat, 500, 0.95, c.ProfileSeed+97)
	}
	return c
}

// Profile holds the off-line profiling dataset: one row per job.
type Profile struct {
	// X are feature vectors under Schema.
	X [][]float64
	// TimesMin and TimesMax are measured job times (seconds) at the
	// minimum and maximum frequencies.
	TimesMin, TimesMax []float64
}

// Controller is the generated prediction-based DVFS controller. It
// implements governor.Governor.
type Controller struct {
	W      *workload.Workload
	Plat   *platform.Platform
	Instr  *instrument.Program
	Slice  *slicer.Slice
	Schema *features.Schema
	// ModelMin and ModelMax predict job time at fmin / fmax.
	ModelMin, ModelMax *regress.Model
	Selector           *dvfs.Selector
	Prof               *Profile
	// hints are programmer-provided feature parameters appended after
	// the schema columns (empty unless Config.UseHints).
	hints []workload.Hint
	// memFrac caches the profiled memory fraction; loaded controllers
	// carry it in place of the profiling data.
	memFrac float64
	// quadCols lists schema column indices whose squares are appended
	// as extra features (empty unless Config.Quadratic).
	quadCols []int
	// SliceBound is the static worst-case cost bound of the final
	// slice over the observed profiling input ranges, and
	// SliceBoundSec its execution time at maximum frequency —
	// math.Inf(1) when a loop bound could not be derived. Loaded
	// controllers (persist) leave both zero.
	SliceBound analysis.CostBound
	// SliceBoundSec is SliceBound converted to seconds at fmax.
	SliceBoundSec float64

	// tracer, when set, receives a DecisionEvent per job: begun at
	// JobStart, completed with the signed residual at JobEnd. The
	// controller itself stays feed-forward — tracing observes
	// decisions, it never influences them.
	tracer *obs.Tracer
	// pendMu guards pending, the JobStart-to-JobEnd handoff keyed by
	// job index.
	pendMu  sync.Mutex
	pending map[int]*obs.Pending
	// spans samples per-phase span capture on traced decisions (each
	// boundary is a monotonic clock read §3.4 has to pay for); set
	// alongside the tracer, default every decision.
	spans *obs.SpanSampler
}

var _ governor.Governor = (*Controller)(nil)

// Build constructs the controller for a workload: instrument → profile
// → train → slice (Fig 13's off-line half).
func Build(w *workload.Workload, cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults(w)
	if err := w.Prog.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid task program: %w", err)
	}
	ip := instrument.Instrument(w.Prog)

	// Off-line profiling: run the instrumented task over sample inputs,
	// collecting feature traces and job times at fmin and fmax.
	var hints []workload.Hint
	if cfg.UseHints {
		hints = w.Hints
	}
	var quadCols []int
	rng := rand.New(rand.NewSource(cfg.ProfileSeed + 13))
	gen := w.NewGen(cfg.ProfileSeed)
	globals := w.FreshGlobals()
	traces := make([]*features.Trace, 0, cfg.ProfileJobs)
	works := make([]taskir.Work, 0, cfg.ProfileJobs)
	paramSets := make([]map[string]int64, 0, cfg.ProfileJobs)
	for i := 0; i < cfg.ProfileJobs; i++ {
		tr := features.NewTrace()
		env := taskir.NewEnv(globals)
		params := gen.Next(i)
		env.SetParams(params)
		wk, err := taskir.Run(ip.Prog, env, taskir.RunOptions{Recorder: tr})
		if err != nil {
			return nil, fmt.Errorf("core: profiling %s job %d: %w", w.Name, i, err)
		}
		traces = append(traces, tr)
		works = append(works, wk)
		paramSets = append(paramSets, params)
	}
	schema := features.BuildSchema(ip, traces)
	prof := &Profile{
		X:        make([][]float64, len(traces)),
		TimesMin: make([]float64, len(traces)),
		TimesMax: make([]float64, len(traces)),
	}
	if cfg.Quadratic {
		// Square the counter columns (squaring a 0/1 one-hot is the
		// identity, so call-address columns are skipped).
		for j, col := range schema.Columns {
			if col.Kind == features.ColCounter {
				quadCols = append(quadCols, j)
			}
		}
	}
	fmin, fmax := cfg.Plat.MinLevel(), cfg.Plat.MaxLevel()
	for i, tr := range traces {
		x := appendHintValues(schema.Vectorize(tr), hints, paramSets[i])
		prof.X[i] = appendQuadValues(x, quadCols)
		prof.TimesMin[i] = cfg.Plat.JobTimeAt(works[i].CPU, works[i].MemSec, fmin) * noiseFactor(rng, cfg.NoiseSigma)
		prof.TimesMax[i] = cfg.Plat.JobTimeAt(works[i].CPU, works[i].MemSec, fmax) * noiseFactor(rng, cfg.NoiseSigma)
	}

	opts := regress.Options{Alpha: cfg.Alpha, Gamma: cfg.Gamma}
	modelMin, err := regress.Fit(prof.X, prof.TimesMin, opts)
	if err != nil {
		return nil, fmt.Errorf("core: training fmin model for %s: %w", w.Name, err)
	}
	modelMax, err := regress.Fit(prof.X, prof.TimesMax, opts)
	if err != nil {
		return nil, fmt.Errorf("core: training fmax model for %s: %w", w.Name, err)
	}

	// Features with non-zero coefficients in either model must survive
	// in the prediction slice; everything else is sliced away. A
	// selected squared column keeps its base feature's site.
	var need map[int]bool
	if cfg.KeepAllFeatures {
		need = nil // Extract treats nil as "keep everything"
	} else {
		selected := append(modelMin.Selected(), modelMax.Selected()...)
		base := schema.Dim() + len(hints)
		for i, j := range selected {
			if j >= base {
				selected[i] = quadCols[j-base]
			}
		}
		need = schema.NeededFIDs(selected)
	}
	sl := slicer.Extract(ip, need)

	// Overhead-aware feature selection (§3.5): while the slice's
	// average execution time exceeds the cap, drop the feature whose
	// removal shrinks the slice most, retrain on the surviving
	// columns, and re-slice.
	if cfg.MaxPredictorSec > 0 && !cfg.KeepAllFeatures {
		measured := func(sl *slicer.Slice) float64 { return measureSliceCost(w, sl, cfg) }
		sl, need, modelMin, modelMax, err = trimToCap(w, ip, schema, prof, opts,
			sl, need, modelMin, modelMax, measured, cfg.MaxPredictorSec)
		if err != nil {
			return nil, err
		}
	}

	// Static worst-case overhead cap: bound the slice's statement
	// executions from loop-bound intervals over the observed profiling
	// input ranges, and trim features until the bound fits the
	// configured fraction of the task budget. Unlike the measured cap
	// above, this holds for the worst job the profiled input ranges
	// admit, not just the average — which is what makes subtracting
	// the predictor's cost from the budget (§3.4) safe.
	paramBounds := observedParamBounds(paramSets)
	staticCost := func(sl *slicer.Slice) float64 {
		b := analysis.BoundCost(sl.Prog, paramBounds)
		if !b.Finite() {
			return math.Inf(1)
		}
		return cfg.Plat.JobTimeAt(b.CPUWork(), 0, cfg.Plat.MaxLevel())
	}
	if cfg.MaxSliceBudgetFrac > 0 && !cfg.KeepAllFeatures && w.DefaultBudgetSec > 0 {
		budgetCap := cfg.MaxSliceBudgetFrac * w.DefaultBudgetSec
		sl, need, modelMin, modelMax, err = trimToCap(w, ip, schema, prof, opts,
			sl, need, modelMin, modelMax, staticCost, budgetCap)
		if err != nil {
			return nil, err
		}
		if c := staticCost(sl); c > budgetCap {
			return nil, fmt.Errorf("core: %s slice worst-case overhead %.3gs exceeds %.0f%% of the %.3gs budget",
				w.Name, c, 100*cfg.MaxSliceBudgetFrac, w.DefaultBudgetSec)
		}
	}

	// Gate: a slice must verify before it may reach a governor. The
	// slicer is an approximation (name-based dependences); the
	// verifier proves the properties the run-time relies on — no
	// retained work, all needed feature sites computed, no read of a
	// sliced-away definition.
	if _, err := analysis.VerifySlice(ip, sl); err != nil {
		return nil, fmt.Errorf("core: %s: %w", w.Name, err)
	}
	bound := analysis.BoundCost(sl.Prog, paramBounds)
	boundSec := math.Inf(1)
	if bound.Finite() {
		boundSec = cfg.Plat.JobTimeAt(bound.CPUWork(), 0, cfg.Plat.MaxLevel())
	}

	return &Controller{
		W:             w,
		Plat:          cfg.Plat,
		Instr:         ip,
		Slice:         sl,
		Schema:        schema,
		ModelMin:      modelMin,
		ModelMax:      modelMax,
		Selector:      &dvfs.Selector{Plat: cfg.Plat, Switch: cfg.Switch, Margin: cfg.Margin, EnergyAware: cfg.EnergyAware},
		Prof:          prof,
		hints:         hints,
		quadCols:      quadCols,
		SliceBound:    bound,
		SliceBoundSec: boundSec,
	}, nil
}

// trimToCap implements overhead-capped feature selection shared by the
// measured (§3.5) and static-bound caps: while cost(slice) exceeds the
// cap, drop the feature whose removal yields the cheapest slice,
// retrain both models on the surviving columns, and re-slice. The
// candidate scan is in sorted FID order so ties break
// deterministically.
func trimToCap(w *workload.Workload, ip *instrument.Program, schema *features.Schema,
	prof *Profile, opts regress.Options, sl *slicer.Slice, need map[int]bool,
	modelMin, modelMax *regress.Model, cost func(*slicer.Slice) float64, cap float64,
) (*slicer.Slice, map[int]bool, *regress.Model, *regress.Model, error) {
	allowed := map[int]bool{}
	for fid := range need {
		allowed[fid] = true
	}
	Xmask := prof.X
	for len(allowed) > 0 {
		if cost(sl) <= cap {
			break
		}
		// Find the removal with the cheapest resulting slice.
		bestFID, bestCost := -1, math.Inf(1)
		for _, fid := range sortedFIDs(allowed) {
			cand := map[int]bool{}
			for f := range allowed {
				if f != fid {
					cand[f] = true
				}
			}
			if c := cost(slicer.Extract(ip, cand)); c < bestCost {
				bestFID, bestCost = fid, c
			}
		}
		delete(allowed, bestFID)
		// Retrain with the dropped feature's columns zeroed out.
		Xmask = maskColumns(Xmask, schema, allowed)
		var err error
		if modelMin, err = regress.Fit(Xmask, prof.TimesMin, opts); err != nil {
			return nil, nil, nil, nil, fmt.Errorf("core: retraining fmin model for %s: %w", w.Name, err)
		}
		if modelMax, err = regress.Fit(Xmask, prof.TimesMax, opts); err != nil {
			return nil, nil, nil, nil, fmt.Errorf("core: retraining fmax model for %s: %w", w.Name, err)
		}
		selected := append(modelMin.Selected(), modelMax.Selected()...)
		need = schema.NeededFIDs(selected)
		for fid := range need {
			if !allowed[fid] {
				delete(need, fid)
			}
		}
		sl = slicer.Extract(ip, need)
	}
	return sl, need, modelMin, modelMax, nil
}

// sortedFIDs returns the set's members in ascending order.
func sortedFIDs(set map[int]bool) []int {
	fids := make([]int, 0, len(set))
	for fid := range set {
		fids = append(fids, fid)
	}
	sort.Ints(fids)
	return fids
}

// observedParamBounds derives per-parameter value intervals from the
// profiling inputs — the ranges the static cost bound is taken over.
// Globals are left unbounded (they drift across jobs).
func observedParamBounds(paramSets []map[string]int64) map[string]analysis.Interval {
	bounds := map[string]analysis.Interval{}
	for _, params := range paramSets {
		for name, v := range params {
			if iv, ok := bounds[name]; ok {
				bounds[name] = iv.Join(analysis.Point(v))
			} else {
				bounds[name] = analysis.Point(v)
			}
		}
	}
	return bounds
}

// measureSliceCost returns the slice's average execution time at
// maximum frequency over a sample of the workload's inputs.
func measureSliceCost(w *workload.Workload, sl *slicer.Slice, cfg Config) float64 {
	gen := w.NewGen(cfg.ProfileSeed + 5)
	globals := w.FreshGlobals()
	const samples = 25
	total := 0.0
	for i := 0; i < samples; i++ {
		wk, err := sl.Run(globals, gen.Next(i), nil)
		if err != nil {
			return math.Inf(1)
		}
		total += cfg.Plat.JobTimeAt(wk.CPU, wk.MemSec, cfg.Plat.MaxLevel())
	}
	return total / samples
}

// maskColumns zeroes the columns of features outside the allowed set
// (hint columns, appended after the schema columns, are always kept).
func maskColumns(X [][]float64, schema *features.Schema, allowed map[int]bool) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		r := append([]float64(nil), row...)
		for j := 0; j < schema.Dim(); j++ {
			if !allowed[schema.Columns[j].FID] {
				r[j] = 0
			}
		}
		out[i] = r
	}
	return out
}

// appendHintValues extends a control-flow feature vector with the
// programmer-provided hint parameters (§3.5).
func appendHintValues(x []float64, hints []workload.Hint, params map[string]int64) []float64 {
	for _, h := range hints {
		//dvfs:allow-alloc grows only past the caller-reserved vecStackDim capacity
		x = append(x, float64(params[h.Param]))
	}
	return x
}

// appendQuadValues extends a feature vector with the squares of the
// listed columns (§3.5's higher-order model option).
func appendQuadValues(x []float64, quadCols []int) []float64 {
	for _, j := range quadCols {
		//dvfs:allow-alloc grows only past the caller-reserved vecStackDim capacity
		x = append(x, x[j]*x[j])
	}
	return x
}

func noiseFactor(rng *rand.Rand, sigma float64) float64 {
	if sigma <= 0 {
		return 1
	}
	n := sigma * rng.NormFloat64()
	lim := 3 * sigma
	if n > lim {
		n = lim
	}
	if n < -lim {
		n = -lim
	}
	return math.Exp(n)
}

// Name implements governor.Governor.
func (*Controller) Name() string { return "prediction" }

// Prediction is the run-time model output for one job: the chosen
// level plus the intermediate quantities a caller (or a serving
// client) may want to inspect.
type Prediction struct {
	// Target is the selected DVFS level.
	Target platform.Level
	// TFminSec and TFmaxSec are the predicted job times at the
	// platform's minimum and maximum frequencies (clamped non-negative,
	// with the tfmin ≥ tfmax noise guard applied).
	TFminSec, TFmaxSec float64
	// EffBudgetSec is the effective budget after subtracting the
	// predictor's own cost (§3.4).
	EffBudgetSec float64
	// PredictorSec echoes the predictor cost charged against the
	// budget.
	PredictorSec float64
	// PredictedExecSec is the un-margined expected execution time at
	// Target (the Fig 19 analysis quantity).
	PredictedExecSec float64
	// FeatHash fingerprints the vectorized feature vector
	// (obs.FeatureHash), so equal-input decisions can be correlated
	// across runs and tiers without shipping the features.
	FeatHash uint64
}

// PredictTrace evaluates the trained models on an already-recorded
// feature trace and picks the level for a job with the given remaining
// budget, predictor cost, and current level. This is the run-time
// decision shared by JobStart (which records the trace by running the
// prediction slice) and the dvfsd serving path (which receives the
// trace over the wire).
//
// PredictTrace only reads the controller's trained state (schema,
// models, selector), so it is safe for concurrent use from any number
// of goroutines.
//
//dvfs:hotpath
func (c *Controller) PredictTrace(tr *features.Trace, params map[string]int64, budgetSec, predictorSec float64, cur platform.Level) Prediction {
	return c.PredictTraceSpans(tr, params, budgetSec, predictorSec, cur, nil)
}

// vecStackDim is the feature-vector capacity the decision path
// reserves on the stack. Vectors at or under this dimension (schema
// columns + hint columns + quadratic columns — every seed workload is
// far below it) make a prediction with zero heap allocations, the
// budget guarantee of ROADMAP item 2; larger schemas fall back to one
// heap vector per call.
const vecStackDim = 256

// PredictTraceSpans is PredictTrace with per-phase span capture: the
// model evaluation and the level selection are timed on st (which may
// be nil — every SpanTimer method is nil-safe). Both the simulator's
// JobStart and dvfsd's predict path run decisions through here, so
// in-process and served decisions carry identical phase ledgers.
//
//dvfs:hotpath
func (c *Controller) PredictTraceSpans(tr *features.Trace, params map[string]int64, budgetSec, predictorSec float64, cur platform.Level, st *obs.SpanTimer) Prediction {
	st.Start(obs.PhasePredict)
	// The feature vector lives in a stack buffer: the whole decision —
	// vectorize, two model evaluations, level selection, feature hash —
	// performs zero heap allocations when the schema fits vecStackDim.
	var buf [vecStackDim]float64
	x := c.Schema.VectorizeInto(buf[:0], tr)
	x = appendHintValues(x, c.hints, params)
	x = appendQuadValues(x, c.quadCols)
	tfmin := math.Max(0, c.ModelMin.Predict(x))
	tfmax := math.Max(0, c.ModelMax.Predict(x))
	if tfmin < tfmax {
		tfmin = tfmax // noise guard: time at fmin can never be shorter
	}

	eff := budgetSec - predictorSec
	st.Next(obs.PhaseSelect)
	target := c.Selector.Pick(cur, tfmin, tfmax, eff)
	st.End()

	// Record the un-margined expectation at the chosen level for the
	// prediction-error analysis (Fig 19).
	tp := dvfs.Solve(tfmin, tfmax, c.Plat.MinLevel().EffFreqHz(), c.Plat.MaxLevel().EffFreqHz())
	return Prediction{
		Target:           target,
		TFminSec:         tfmin,
		TFmaxSec:         tfmax,
		EffBudgetSec:     eff,
		PredictorSec:     predictorSec,
		PredictedExecSec: tp.TimeAt(target.EffFreqHz()),
		FeatHash:         obs.FeatureHash(x),
	}
}

// SetTracer attaches (or, with nil, detaches) a decision tracer. Not
// safe to call concurrently with JobStart/JobEnd — wire the tracer
// before handing the controller to a simulator or server.
func (c *Controller) SetTracer(t *obs.Tracer) {
	c.tracer = t
	if t != nil && c.pending == nil {
		c.pending = map[int]*obs.Pending{}
	}
	if t != nil && c.spans == nil {
		c.spans = obs.NewSpanSampler(1)
	}
}

// SetSpanSampling captures the per-phase span ledger on one in every
// traced decisions (1 = all, the default; higher rates amortize the
// capture's clock reads on hot production paths). Like SetTracer, not
// safe to call concurrently with JobStart/JobEnd.
func (c *Controller) SetSpanSampling(every int) {
	c.spans = obs.NewSpanSampler(every)
}

// Tracer returns the attached decision tracer (nil when none).
func (c *Controller) Tracer() *obs.Tracer { return c.tracer }

// Clone returns a controller sharing c's immutable trained state
// (models, slice, selector, profile) with fresh mutable state: no
// tracer, empty pending map, default span sampling. The trained half
// is read-only after Build, so clones are safe to drive from
// different goroutines — fleet simulation trains one controller per
// (platform, workload) and hands every device its own clone, paying
// the multi-second training cost once instead of per device.
func (c *Controller) Clone() *Controller {
	return &Controller{
		W:             c.W,
		Plat:          c.Plat,
		Instr:         c.Instr,
		Slice:         c.Slice,
		Schema:        c.Schema,
		ModelMin:      c.ModelMin,
		ModelMax:      c.ModelMax,
		Selector:      c.Selector,
		Prof:          c.Prof,
		hints:         c.hints,
		memFrac:       c.memFrac,
		quadCols:      c.quadCols,
		SliceBound:    c.SliceBound,
		SliceBoundSec: c.SliceBoundSec,
	}
}

// decisionEvent assembles the traced view of one run-time decision.
// The switch-time field is the selector's table estimate for the
// cur→target transition — the quantity §3.4 subtracts from the budget
// — not the measured transition time, which only the simulator knows.
func (c *Controller) decisionEvent(job *governor.Job, cur platform.Level, p Prediction) obs.DecisionEvent {
	switchSec := 0.0
	if c.Selector.Switch != nil {
		switchSec = c.Selector.Switch.Lookup(cur.Index, p.Target.Index)
	}
	return obs.DecisionEvent{
		Workload:         c.W.Name,
		Governor:         c.Name(),
		Job:              job.Index,
		TimeSec:          job.DeadlineSec - job.RemainingBudgetSec,
		ReleaseSec:       job.ReleaseSec,
		DeadlineSec:      job.DeadlineSec,
		FromLevel:        cur.Index,
		FeatHash:         p.FeatHash,
		Predicted:        true,
		TFminSec:         p.TFminSec,
		TFmaxSec:         p.TFmaxSec,
		PredictedExecSec: p.PredictedExecSec,
		Level:            p.Target.Index,
		FreqKHz:          int64(p.Target.FreqHz / 1e3),
		Margin:           c.Selector.Margin,
		BudgetSec:        job.RemainingBudgetSec,
		EffBudgetSec:     p.EffBudgetSec,
		PredictorSec:     p.PredictorSec,
		SwitchSec:        switchSec,
	}
}

// JobStart implements governor.Governor: run the prediction slice,
// predict execution times at fmin/fmax, and pick the lowest frequency
// whose (margin-inflated) predicted time fits the effective budget.
//
// JobStart is safe for concurrent use as long as callers do not mutate
// job.Globals or job.Params during the call: the slice runs in a
// frozen environment (globals are read, never written), the trace is
// per-call, and PredictTrace reads only immutable trained state.
func (c *Controller) JobStart(job *governor.Job, cur platform.Level) governor.Decision {
	// Span capture (tracing only): the ledger roots at "decide" and
	// times slice evaluation, model prediction, and level selection —
	// §3.4's predictor cost as measured wall-clock phases. st is nil
	// when untraced or sampled out; every SpanTimer method is nil-safe.
	var st *obs.SpanTimer
	if c.tracer != nil {
		st = c.spans.Timer()
		st.Start(obs.PhaseDecide)
		st.Start(obs.PhaseSliceEval)
	}
	tr := features.NewTrace()
	sw, err := c.Slice.Run(job.Globals, job.Params, tr)
	if err != nil {
		// A broken slice must never break the application: fall back
		// to maximum frequency (always deadline-safe).
		return governor.Decision{Target: c.Plat.MaxLevel(), PredictedExecSec: math.NaN()}
	}
	st.End()
	predictorSec := c.Plat.JobTimeAt(sw.CPU, sw.MemSec, cur)

	p := c.PredictTraceSpans(tr, job.Params, job.RemainingBudgetSec, predictorSec, cur, st)
	if c.tracer != nil {
		e := c.decisionEvent(job, cur, p)
		e.Spans, e.SpanTotalSec = st.Finish()
		pend := c.tracer.Begin(e)
		c.pendMu.Lock()
		c.pending[job.Index] = pend
		c.pendMu.Unlock()
	}
	return governor.Decision{
		Target:           p.Target,
		PredictorSec:     p.PredictorSec,
		PredictedExecSec: p.PredictedExecSec,
	}
}

// JobEnd implements governor.Governor. The predictor stays
// feed-forward — the actual execution time is never fed back into the
// model — but when a tracer is attached the pending decision event is
// completed here: the signed residual (actual − predicted) is computed
// in-process, and the miss bit records the controller-visible outcome
// (actual execution exceeded the effective budget less the estimated
// switch time; wall-clock miss accounting lives in the simulator's
// JobRecord).
func (c *Controller) JobEnd(job *governor.Job, actualExecSec float64) {
	if c.tracer == nil {
		return
	}
	c.pendMu.Lock()
	pend := c.pending[job.Index]
	delete(c.pending, job.Index)
	c.pendMu.Unlock()
	if pend == nil {
		return
	}
	missed := actualExecSec > pend.E.EffBudgetSec-pend.E.SwitchSec
	// Extend the ledger with the outcome phases: the switch estimate
	// charged at decision time and the job's execution (the simulation
	// merge re-times both with measured ground truth).
	obs.AppendOutcomeSpans(&pend.E, pend.E.SwitchSec, actualExecSec)
	pend.End(actualExecSec, missed)
}

// SampleInterval implements governor.Governor.
func (c *Controller) SampleInterval() float64 { return 0 }

// Sample implements governor.Governor.
func (c *Controller) Sample(_ float64, cur platform.Level) platform.Level { return cur }

// SelectedFeatureNames lists the schema columns with non-zero
// coefficients in either model — what §4.2's cross-platform comparison
// inspects.
func (c *Controller) SelectedFeatureNames() []string {
	seen := map[int]bool{}
	var names []string
	for _, j := range append(c.ModelMin.Selected(), c.ModelMax.Selected()...) {
		if seen[j] {
			continue
		}
		seen[j] = true
		switch {
		case j < c.Schema.Dim():
			names = append(names, c.Schema.Columns[j].Name)
		case j < c.Schema.Dim()+len(c.hints):
			names = append(names, "hint:"+c.hints[j-c.Schema.Dim()].Name)
		default:
			names = append(names, c.Schema.Columns[c.quadCols[j-c.Schema.Dim()-len(c.hints)]].Name+"²")
		}
	}
	return names
}

// MemFraction estimates the workload's average memory-time share of
// job execution from the profiling data — the calibration input the
// PID baseline needs (its offline training). Controllers rebuilt from
// a saved model return the stored value.
func (c *Controller) MemFraction() float64 {
	if c.memFrac > 0 {
		return c.memFrac
	}
	fmin, fmax := c.Plat.MinLevel().EffFreqHz(), c.Plat.MaxLevel().EffFreqHz()
	num, den := 0.0, 0.0
	for i := range c.Prof.TimesMax {
		tp := dvfs.Solve(c.Prof.TimesMin[i], c.Prof.TimesMax[i], fmin, fmax)
		num += tp.TmemSec
		den += c.Prof.TimesMax[i]
	}
	if den == 0 {
		return 0
	}
	rho := num / den
	if rho < 0 {
		return 0
	}
	if rho > 1 {
		return 1
	}
	return rho
}
