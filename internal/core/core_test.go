package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/features"
	"repro/internal/governor"
	"repro/internal/platform"
	"repro/internal/regress"
	"repro/internal/taskir"
	"repro/internal/workload"
)

func buildLDecode(t *testing.T) *Controller {
	t.Helper()
	c, err := Build(workload.LDecode(), Config{ProfileSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildProducesWorkingController(t *testing.T) {
	c := buildLDecode(t)
	if c.Schema.Dim() == 0 {
		t.Fatal("no feature columns")
	}
	if c.ModelMin == nil || c.ModelMax == nil {
		t.Fatal("models missing")
	}
	if c.Slice.SliceStmts == 0 {
		t.Fatal("slice is empty — no features selected at all")
	}
	if c.Slice.SliceStmts >= c.Slice.FullStmts {
		t.Fatalf("slice (%d stmts) not smaller than program (%d)", c.Slice.SliceStmts, c.Slice.FullStmts)
	}
}

func TestModelsPredictProfiledTimesWell(t *testing.T) {
	c := buildLDecode(t)
	pred := c.ModelMax.PredictAll(c.Prof.X)
	st := regress.ComputeErrorStats(regress.Errors(pred, c.Prof.TimesMax))
	// Mean absolute error under 15% of the mean job time.
	meanT := 0.0
	for _, v := range c.Prof.TimesMax {
		meanT += v
	}
	meanT /= float64(len(c.Prof.TimesMax))
	if st.MAE > 0.15*meanT {
		t.Errorf("fmax model MAE %.3g s too high vs mean %.3g s", st.MAE, meanT)
	}
	// Asymmetric penalty: errors skew positive (over-prediction).
	if st.Mean <= 0 {
		t.Errorf("mean error %.3g not skewed toward over-prediction", st.Mean)
	}
	if frac := float64(st.UnderCount) / float64(st.N); frac > 0.15 {
		t.Errorf("under-prediction fraction %.2f too high for α=100", frac)
	}
}

func TestTfminAboveTfmax(t *testing.T) {
	c := buildLDecode(t)
	for i, x := range c.Prof.X {
		lo := c.ModelMax.Predict(x)
		hi := c.ModelMin.Predict(x)
		if hi < lo {
			t.Fatalf("row %d: predicted t(fmin)=%g < t(fmax)=%g", i, hi, lo)
		}
	}
}

func TestJobStartDecision(t *testing.T) {
	c := buildLDecode(t)
	w := c.W
	gen := w.NewGen(9)
	globals := w.FreshGlobals()
	job := &governor.Job{
		Index:              0,
		Params:             gen.Next(0),
		Globals:            globals,
		DeadlineSec:        0.050,
		RemainingBudgetSec: 0.050,
	}
	dec := c.JobStart(job, c.Plat.MaxLevel())
	if dec.PredictorSec <= 0 {
		t.Errorf("predictor time = %g, want > 0", dec.PredictorSec)
	}
	if dec.PredictorSec > 0.005 {
		t.Errorf("predictor time = %g s, implausibly large", dec.PredictorSec)
	}
	if math.IsNaN(dec.PredictedExecSec) || dec.PredictedExecSec <= 0 {
		t.Errorf("predicted exec = %g", dec.PredictedExecSec)
	}
	// A 50 ms budget with ~20 ms jobs must not demand max frequency.
	if dec.Target.Index == c.Plat.MaxLevel().Index {
		t.Errorf("50ms budget chose max level — no energy saving possible")
	}
	// The slice must not have mutated program state.
	if globals["decoded"] != 0 {
		t.Errorf("JobStart mutated globals: decoded=%d", globals["decoded"])
	}
}

func TestJobStartSliceMatchesFullFeatures(t *testing.T) {
	// The slice-computed features must agree with the instrumented
	// program over the selected columns, across evolving program state.
	c := buildLDecode(t)
	w := c.W
	gen := w.NewGen(77)
	globals := w.FreshGlobals()
	for i := 0; i < 40; i++ {
		params := gen.Next(i)
		sliceTr := features.NewTrace()
		if _, err := c.Slice.Run(globals, params, sliceTr); err != nil {
			t.Fatal(err)
		}
		fullTr := features.NewTrace()
		env := taskir.NewEnv(globals) // executes for real, advancing state
		env.SetParams(params)
		if _, err := taskir.Run(c.Instr.Prog, env, taskir.RunOptions{Recorder: fullTr}); err != nil {
			t.Fatal(err)
		}
		xs := c.Schema.Vectorize(sliceTr)
		xf := c.Schema.Vectorize(fullTr)
		for _, j := range append(c.ModelMin.Selected(), c.ModelMax.Selected()...) {
			if xs[j] != xf[j] {
				t.Fatalf("job %d column %d (%s): slice=%g full=%g",
					i, j, c.Schema.Columns[j].Name, xs[j], xf[j])
			}
		}
	}
}

func TestLassoShrinksSliceVsKeepAll(t *testing.T) {
	w := workload.LDecode()
	lasso, err := Build(w, Config{ProfileSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	all, err := Build(w, Config{ProfileSeed: 42, KeepAllFeatures: true})
	if err != nil {
		t.Fatal(err)
	}
	if lasso.Slice.SliceStmts > all.Slice.SliceStmts {
		t.Errorf("lasso slice (%d) larger than keep-all slice (%d)",
			lasso.Slice.SliceStmts, all.Slice.SliceStmts)
	}
}

func TestMemFraction(t *testing.T) {
	c := buildLDecode(t)
	rho := c.MemFraction()
	if rho <= 0 || rho >= 0.8 {
		t.Errorf("memory fraction = %g, implausible", rho)
	}
}

func TestSelectedFeatureNames(t *testing.T) {
	c := buildLDecode(t)
	names := c.SelectedFeatureNames()
	if len(names) == 0 {
		t.Fatal("no features selected")
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
}

func TestCrossPlatformFeatureStability(t *testing.T) {
	// §4.2: features selected on ARM and x86 should largely agree,
	// because they are a function of task semantics, not the platform.
	w := workload.LDecode()
	arm, err := Build(w, Config{ProfileSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	x86, err := Build(w, Config{ProfileSeed: 42, Plat: platform.IntelI7()})
	if err != nil {
		t.Fatal(err)
	}
	a := map[string]bool{}
	for _, n := range arm.SelectedFeatureNames() {
		a[n] = true
	}
	common := 0
	for _, n := range x86.SelectedFeatureNames() {
		if a[n] {
			common++
		}
	}
	if len(a) > 0 && common == 0 {
		t.Errorf("no overlap between ARM (%v) and x86 (%v) features",
			arm.SelectedFeatureNames(), x86.SelectedFeatureNames())
	}
}

func TestBuildAllWorkloads(t *testing.T) {
	for _, w := range workload.All() {
		jobs := w.EvalJobs
		if jobs > 200 {
			jobs = 200 // keep the full-suite build quick
		}
		c, err := Build(w, Config{ProfileSeed: 5, ProfileJobs: jobs})
		if err != nil {
			t.Errorf("%s: %v", w.Name, err)
			continue
		}
		if c.Slice.SliceStmts == 0 {
			t.Errorf("%s: empty slice", w.Name)
		}
		t.Logf("%-12s features=%d/%d sliceStmts=%d/%d",
			w.Name, len(c.SelectedFeatureNames()), c.Schema.Dim(),
			c.Slice.SliceStmts, c.Slice.FullStmts)
	}
}

func TestUseHintsExtendsFeatureVector(t *testing.T) {
	w := workload.LDecode()
	base, err := Build(w, Config{ProfileSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	hinted, err := Build(w, Config{ProfileSeed: 42, UseHints: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(hinted.Prof.X[0]) != len(base.Prof.X[0])+len(w.Hints) {
		t.Fatalf("hinted vector = %d cols, want %d + %d hints",
			len(hinted.Prof.X[0]), len(base.Prof.X[0]), len(w.Hints))
	}
	// The hint must be selected (it explains real cost) and named.
	found := false
	for _, n := range hinted.SelectedFeatureNames() {
		if n == "hint:coeffEnergy" {
			found = true
		}
	}
	if !found {
		t.Errorf("hint not selected: %v", hinted.SelectedFeatureNames())
	}
	// And the hinted model fits the profile better.
	baseErr := regress.ComputeErrorStats(regress.Errors(base.ModelMax.PredictAll(base.Prof.X), base.Prof.TimesMax))
	hintErr := regress.ComputeErrorStats(regress.Errors(hinted.ModelMax.PredictAll(hinted.Prof.X), hinted.Prof.TimesMax))
	if hintErr.MAE >= baseErr.MAE {
		t.Errorf("hinted MAE %.4g not below base %.4g", hintErr.MAE, baseErr.MAE)
	}
}

func TestMaxPredictorSecCapsSlice(t *testing.T) {
	w := workload.PocketSphinx()
	base, err := Build(w, Config{ProfileSeed: 42, ProfileJobs: 60})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := Build(w, Config{ProfileSeed: 42, ProfileJobs: 60, MaxPredictorSec: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Slice.SliceStmts >= base.Slice.SliceStmts {
		t.Errorf("capped slice %d stmts not below base %d", capped.Slice.SliceStmts, base.Slice.SliceStmts)
	}
	costOf := func(c *Controller) float64 {
		gen := w.NewGen(3)
		wk, err := c.Slice.Run(w.FreshGlobals(), gen.Next(0), nil)
		if err != nil {
			t.Fatal(err)
		}
		return c.Plat.JobTimeAt(wk.CPU, wk.MemSec, c.Plat.MaxLevel())
	}
	if costOf(capped) > 0.0007 {
		t.Errorf("capped slice still costs %.4g s", costOf(capped))
	}
	if costOf(base) < 0.001 {
		t.Errorf("uncapped pocketsphinx slice suspiciously cheap: %.4g s", costOf(base))
	}
}

func TestSaveLoadControllerRoundTrip(t *testing.T) {
	w := workload.LDecode()
	plat := platform.ODROIDXU3A7()
	sw := platform.MeasureSwitchTable(plat, 200, 0.95, 1)
	orig, err := Build(w, Config{Plat: plat, ProfileSeed: 42, Switch: sw, UseHints: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveController(&buf, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadController(bytes.NewReader(buf.Bytes()), workload.LDecode(), plat, sw)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded controller must make the identical decisions.
	gen := w.NewGen(9)
	globals := w.FreshGlobals()
	for i := 0; i < 40; i++ {
		job := &governor.Job{
			Index:              i,
			Params:             gen.Next(i),
			Globals:            globals,
			DeadlineSec:        0.050,
			RemainingBudgetSec: 0.050,
		}
		a := orig.JobStart(job, plat.MaxLevel())
		b := loaded.JobStart(job, plat.MaxLevel())
		if a.Target.Index != b.Target.Index {
			t.Fatalf("job %d: level %d vs %d", i, a.Target.Index, b.Target.Index)
		}
		if math.Abs(a.PredictedExecSec-b.PredictedExecSec) > 1e-12 {
			t.Fatalf("job %d: prediction %g vs %g", i, a.PredictedExecSec, b.PredictedExecSec)
		}
	}
	if math.Abs(loaded.MemFraction()-orig.MemFraction()) > 1e-9 {
		t.Errorf("mem fraction %g vs %g", loaded.MemFraction(), orig.MemFraction())
	}
}

func TestLoadControllerRejectsMismatches(t *testing.T) {
	w := workload.LDecode()
	plat := platform.ODROIDXU3A7()
	orig, err := Build(w, Config{Plat: plat, ProfileSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveController(&buf, orig); err != nil {
		t.Fatal(err)
	}
	// Wrong workload.
	if _, err := LoadController(bytes.NewReader(buf.Bytes()), workload.SHA(), plat, nil); err == nil {
		t.Error("wrong workload accepted")
	}
	// Wrong platform (models are platform-specific, §4.2).
	if _, err := LoadController(bytes.NewReader(buf.Bytes()), workload.LDecode(), platform.IntelI7(), nil); err == nil {
		t.Error("wrong platform accepted")
	}
	// Corrupt JSON.
	if _, err := LoadController(bytes.NewReader([]byte("{")), workload.LDecode(), plat, nil); err == nil {
		t.Error("corrupt document accepted")
	}
}

func TestMaxSliceBudgetFracEnforcesStaticCap(t *testing.T) {
	w := workload.LDecode()
	base := buildLDecode(t)
	if !base.SliceBound.Finite() || base.SliceBoundSec <= 0 {
		t.Fatalf("base static bound not usable: %+v (%.3g s)", base.SliceBound, base.SliceBoundSec)
	}

	// A generous cap must not change the slice, only record the bound.
	loose, err := Build(w, Config{ProfileSeed: 42, MaxSliceBudgetFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Slice.SliceStmts != base.Slice.SliceStmts {
		t.Errorf("generous cap changed the slice: %d vs %d stmts",
			loose.Slice.SliceStmts, base.Slice.SliceStmts)
	}
	if loose.SliceBoundSec > 0.5*w.DefaultBudgetSec {
		t.Errorf("bound %.3g s exceeds accepted cap %.3g s",
			loose.SliceBoundSec, 0.5*w.DefaultBudgetSec)
	}

	// A cap below the base worst case must force feature trimming, and
	// the surviving slice must honour it.
	frac := 0.5 * base.SliceBoundSec / w.DefaultBudgetSec
	tight, err := Build(w, Config{ProfileSeed: 42, MaxSliceBudgetFrac: frac})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Slice.SliceStmts >= base.Slice.SliceStmts {
		t.Errorf("tight cap did not shrink the slice: %d vs %d stmts",
			tight.Slice.SliceStmts, base.Slice.SliceStmts)
	}
	if cap := frac * w.DefaultBudgetSec; tight.SliceBoundSec > cap {
		t.Errorf("trimmed slice bound %.3g s still above cap %.3g s", tight.SliceBoundSec, cap)
	}
}

func TestSliceBoundCoversObservedPredictorCost(t *testing.T) {
	// The static bound is taken over the profiled input ranges, so any
	// job drawn from the same generator must cost no more than it.
	c := buildLDecode(t)
	if !c.SliceBound.Finite() {
		t.Skip("no finite bound for this workload")
	}
	w := c.W
	gen := w.NewGen(42) // the profiling seed: inputs inside the observed ranges
	globals := w.FreshGlobals()
	for i := 0; i < 50; i++ {
		wk, err := c.Slice.Run(globals, gen.Next(i), nil)
		if err != nil {
			t.Fatal(err)
		}
		cost := c.Plat.JobTimeAt(wk.CPU, wk.MemSec, c.Plat.MaxLevel())
		if cost > c.SliceBoundSec+1e-12 {
			t.Fatalf("job %d: predictor cost %.3g s exceeds static bound %.3g s", i, cost, c.SliceBoundSec)
		}
	}
}
