package core

import (
	"math"
	"testing"

	"repro/internal/governor"
	"repro/internal/obs"
)

// TestTracerRecordsResidualInProcess exercises satellite (b): with a
// tracer attached, JobStart stages a DecisionEvent and JobEnd completes
// it with the actual execution time, so the signed residual is computed
// in-process without feeding anything back into the predictor.
func TestTracerRecordsResidualInProcess(t *testing.T) {
	c := buildLDecode(t)
	var mem obs.MemorySink
	drift := obs.NewDriftMonitor(obs.DriftConfig{Window: 32, MinSamples: 4})
	tr := obs.NewTracer(obs.TracerOptions{RingSize: 64, Sinks: []obs.Sink{&mem}, Drift: drift})
	c.SetTracer(tr)
	if c.Tracer() != tr {
		t.Fatal("Tracer() does not return the attached tracer")
	}

	gen := c.W.NewGen(7)
	globals := c.W.FreshGlobals()
	const n = 8
	for i := 0; i < n; i++ {
		job := &governor.Job{
			Index:              i,
			Params:             gen.Next(i),
			Globals:            globals,
			DeadlineSec:        0.050,
			RemainingBudgetSec: 0.050,
		}
		dec := c.JobStart(job, c.Plat.MaxLevel())
		// Complete each job slightly over its prediction, as the
		// simulator would after running it.
		c.JobEnd(job, dec.PredictedExecSec+0.001)
	}

	events := mem.Events()
	if len(events) != n {
		t.Fatalf("sink saw %d events, want %d", len(events), n)
	}
	for i, e := range events {
		if !e.Done || !e.Predicted {
			t.Fatalf("event %d not completed with prediction: %+v", i, e)
		}
		if e.Workload != "ldecode" || e.Governor != c.Name() || e.Job != i {
			t.Errorf("event %d identity wrong: %+v", i, e)
		}
		if e.FeatHash == 0 {
			t.Errorf("event %d missing feature hash", i)
		}
		if e.TFminSec < e.TFmaxSec {
			t.Errorf("event %d: t(fmin)=%g < t(fmax)=%g", i, e.TFminSec, e.TFmaxSec)
		}
		if e.PredictorSec <= 0 || e.EffBudgetSec >= e.BudgetSec {
			t.Errorf("event %d budget accounting: %+v", i, e)
		}
		if diff := e.ResidualSec - 0.001; math.Abs(diff) > 1e-12 {
			t.Errorf("event %d residual = %g, want 0.001", i, e.ResidualSec)
		}
		if !e.UnderPredicted() {
			t.Errorf("event %d: positive residual not counted as under-prediction", i)
		}
	}
	// The ring holds the same completed events.
	if snap := tr.Snapshot(0); len(snap) != n || !snap[n-1].Done {
		t.Errorf("ring snapshot: %d events, last done=%v", len(snap), len(snap) > 0 && snap[len(snap)-1].Done)
	}
	// Completed predicted events feed the drift monitor.
	if r := drift.UnderRate("ldecode"); r != 1 {
		t.Errorf("drift under rate = %g, want 1", r)
	}

	// JobEnd for an unknown job (or after detach) must be a no-op.
	c.JobEnd(&governor.Job{Index: 999}, 0.01)
	c.SetTracer(nil)
	c.JobEnd(&governor.Job{Index: 0}, 0.01)
	if got := len(mem.Events()); got != n {
		t.Errorf("stray JobEnd published events: %d", got)
	}
}

// TestSpanLedgerNesting checks the tentpole invariants of the per-phase
// span ledger on in-process decisions: every traced decision carries a
// decide span whose children (slice eval, model predict, level select)
// nest inside it and sum to no more than the parent, the outcome spans
// (dvfs switch, job exec) carry the event's own accounting, and the
// top-level spans tile [0, SpanTotalSec] exactly.
func TestSpanLedgerNesting(t *testing.T) {
	c := buildLDecode(t)
	var mem obs.MemorySink
	c.SetTracer(obs.NewTracer(obs.TracerOptions{RingSize: 64, Sinks: []obs.Sink{&mem}}))

	gen := c.W.NewGen(7)
	globals := c.W.FreshGlobals()
	const n = 8
	for i := 0; i < n; i++ {
		job := &governor.Job{
			Index:              i,
			Params:             gen.Next(i),
			Globals:            globals,
			DeadlineSec:        0.050,
			RemainingBudgetSec: 0.050,
		}
		dec := c.JobStart(job, c.Plat.MaxLevel())
		c.JobEnd(job, dec.PredictedExecSec+0.001)
	}

	events := mem.Events()
	if len(events) != n {
		t.Fatalf("sink saw %d events, want %d", len(events), n)
	}
	for i, e := range events {
		if len(e.Spans) == 0 {
			t.Fatalf("event %d carries no span ledger", i)
		}
		decide := obs.SpanDur(e.Spans, obs.PhaseDecide)
		if decide <= 0 {
			t.Fatalf("event %d: no decide span in %+v", i, e.Spans)
		}
		// Children of decide: present, nested inside the parent's window,
		// and summing to no more than the parent (the parent also covers
		// inter-phase glue).
		var childSum float64
		for _, name := range []string{obs.PhaseSliceEval, obs.PhasePredict, obs.PhaseSelect} {
			found := false
			for _, s := range e.Spans {
				if s.Name == name {
					found = true
				}
			}
			if !found {
				t.Fatalf("event %d: missing %s span in %+v", i, name, e.Spans)
			}
			childSum += obs.SpanDur(e.Spans, name)
		}
		const eps = 1e-9
		if childSum > decide+eps {
			t.Errorf("event %d: child phases sum %.9g > decide %.9g", i, childSum, decide)
		}
		for _, s := range e.Spans {
			if s.Depth == 1 && (s.StartSec < -eps || s.EndSec() > decide+eps) {
				t.Errorf("event %d: child span %s [%g,%g] outside decide [0,%g]",
					i, s.Name, s.StartSec, s.EndSec(), decide)
			}
		}
		// Outcome spans reflect the event's own accounting, and the
		// top-level spans tile [0, SpanTotalSec].
		if d := obs.SpanDur(e.Spans, obs.PhaseSwitch); math.Abs(d-e.SwitchSec) > eps {
			t.Errorf("event %d: switch span %g != SwitchSec %g", i, d, e.SwitchSec)
		}
		if d := obs.SpanDur(e.Spans, obs.PhaseExec); math.Abs(d-e.ActualExecSec) > eps {
			t.Errorf("event %d: exec span %g != ActualExecSec %g", i, d, e.ActualExecSec)
		}
		var topSum float64
		for _, s := range e.Spans {
			if s.Depth == 0 {
				topSum += s.DurSec
			}
		}
		if e.SpanTotalSec <= 0 || math.Abs(topSum-e.SpanTotalSec) > 1e-6*e.SpanTotalSec+eps {
			t.Errorf("event %d: top-level phases sum %.9g != span total %.9g",
				i, topSum, e.SpanTotalSec)
		}
	}
}

// TestSpanSampling checks that SetSpanSampling(k) keeps the decision
// path and events flowing while attaching a ledger to only every k-th
// decision.
func TestSpanSampling(t *testing.T) {
	c := buildLDecode(t)
	var mem obs.MemorySink
	c.SetTracer(obs.NewTracer(obs.TracerOptions{RingSize: 64, Sinks: []obs.Sink{&mem}}))
	c.SetSpanSampling(4)

	gen := c.W.NewGen(7)
	globals := c.W.FreshGlobals()
	const n = 16
	for i := 0; i < n; i++ {
		job := &governor.Job{
			Index: i, Params: gen.Next(i), Globals: globals,
			DeadlineSec: 0.050, RemainingBudgetSec: 0.050,
		}
		dec := c.JobStart(job, c.Plat.MaxLevel())
		c.JobEnd(job, dec.PredictedExecSec+0.001)
	}
	events := mem.Events()
	if len(events) != n {
		t.Fatalf("sink saw %d events, want %d", len(events), n)
	}
	withSpans := 0
	for _, e := range events {
		if len(e.Spans) > 0 {
			withSpans++
		}
	}
	if want := n / 4; withSpans != want {
		t.Errorf("sampled spans on %d/%d events, want %d", withSpans, n, want)
	}
}
