package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/dvfs"
	"repro/internal/features"
	"repro/internal/instrument"
	"repro/internal/platform"
	"repro/internal/regress"
	"repro/internal/slicer"
	"repro/internal/workload"
)

// The paper's deployment model (§4.2): "For common platforms, the
// program developer can perform this profiling and distribute the
// trained model coefficients with the program." SaveController and
// LoadController implement that distribution format: everything the
// run-time predictor needs — schema columns, the two models, the
// margin, the hint list — serialized as JSON. The prediction slice
// itself is NOT stored; it regenerates deterministically from the
// program and the selected features on load.

// savedModel is the JSON document shape.
type savedModel struct {
	Version  int           `json:"version"`
	Workload string        `json:"workload"`
	Platform string        `json:"platform"`
	Margin   float64       `json:"margin"`
	MemFrac  float64       `json:"mem_fraction"`
	Hints    []string      `json:"hints,omitempty"`
	Columns  []savedColumn `json:"columns"`
	ModelMin savedCoef     `json:"model_fmin"`
	ModelMax savedCoef     `json:"model_fmax"`
}

type savedColumn struct {
	Kind int    `json:"kind"`
	FID  int    `json:"fid"`
	Addr int64  `json:"addr,omitempty"`
	Name string `json:"name"`
}

type savedCoef struct {
	Intercept float64   `json:"intercept"`
	Coef      []float64 `json:"coef"`
}

const savedModelVersion = 1

// SaveController writes the controller's trained state as JSON.
func SaveController(w io.Writer, c *Controller) error {
	if len(c.quadCols) > 0 {
		return fmt.Errorf("core: quadratic models are not part of the distribution format (retrain without Quadratic)")
	}
	doc := savedModel{
		Version:  savedModelVersion,
		Workload: c.W.Name,
		Platform: c.Plat.Name,
		Margin:   c.Selector.Margin,
		MemFrac:  c.MemFraction(),
		ModelMin: savedCoef{Intercept: c.ModelMin.Intercept, Coef: c.ModelMin.Coef},
		ModelMax: savedCoef{Intercept: c.ModelMax.Intercept, Coef: c.ModelMax.Coef},
	}
	for _, h := range c.hints {
		doc.Hints = append(doc.Hints, h.Param)
	}
	for _, col := range c.Schema.Columns {
		doc.Columns = append(doc.Columns, savedColumn{
			Kind: int(col.Kind), FID: col.FID, Addr: col.Addr, Name: col.Name,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("core: encoding model: %w", err)
	}
	return nil
}

// LoadController reconstructs a run-time controller from a saved model
// and the task program: re-instrument, rebuild the schema, rehydrate
// the models, and regenerate the prediction slice for the selected
// features. The platform must match the one the model was trained on
// (execution-time models are platform-specific, §4.2).
func LoadController(r io.Reader, w *workload.Workload, plat *platform.Platform, sw *platform.SwitchTable) (*Controller, error) {
	var doc savedModel
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if doc.Version != savedModelVersion {
		return nil, fmt.Errorf("core: unsupported model version %d", doc.Version)
	}
	if doc.Workload != w.Name {
		return nil, fmt.Errorf("core: model is for %q, not %q", doc.Workload, w.Name)
	}
	if doc.Platform != plat.Name {
		return nil, fmt.Errorf("core: model trained on %q cannot drive %q (retrain coefficients per platform, §4.2)",
			doc.Platform, plat.Name)
	}
	cols := make([]features.Column, len(doc.Columns))
	for i, c := range doc.Columns {
		cols[i] = features.Column{
			Kind: features.ColumnKind(c.Kind), FID: c.FID, Addr: c.Addr, Name: c.Name,
		}
	}
	schema := features.NewSchemaFromColumns(cols)
	wantDim := schema.Dim() + len(doc.Hints)
	if len(doc.ModelMin.Coef) != wantDim || len(doc.ModelMax.Coef) != wantDim {
		return nil, fmt.Errorf("core: model has %d/%d coefficients, want %d",
			len(doc.ModelMin.Coef), len(doc.ModelMax.Coef), wantDim)
	}
	modelMin := &regress.Model{Intercept: doc.ModelMin.Intercept, Coef: doc.ModelMin.Coef}
	modelMax := &regress.Model{Intercept: doc.ModelMax.Intercept, Coef: doc.ModelMax.Coef}

	var hints []workload.Hint
	for _, p := range doc.Hints {
		found := false
		for _, h := range w.Hints {
			if h.Param == p {
				hints = append(hints, h)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("core: model uses hint %q the workload does not declare", p)
		}
	}

	ip := instrument.Instrument(w.Prog)
	selected := append(modelMin.Selected(), modelMax.Selected()...)
	need := schema.NeededFIDs(selected)
	sl := slicer.Extract(ip, need)

	c := &Controller{
		W:        w,
		Plat:     plat,
		Instr:    ip,
		Slice:    sl,
		Schema:   schema,
		ModelMin: modelMin,
		ModelMax: modelMax,
		Selector: &dvfs.Selector{Plat: plat, Switch: sw, Margin: doc.Margin},
		Prof:     &Profile{},
		hints:    hints,
		memFrac:  doc.MemFrac,
	}
	return c, nil
}
