package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/workload"
)

// savedDoc renders the controller's distribution JSON as a generic map
// so individual tests can corrupt one field at a time.
func savedDoc(t *testing.T, c *Controller) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveController(&buf, c); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

func encodeDoc(t *testing.T, doc map[string]any) string {
	t.Helper()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// LoadController must reject every malformed distribution document
// with an error — never a panic and never a silently broken
// controller.
func TestLoadControllerErrorPaths(t *testing.T) {
	w := workload.SHA()
	c, err := Build(w, Config{ProfileJobs: 60, ProfileSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var valid bytes.Buffer
	if err := SaveController(&valid, c); err != nil {
		t.Fatal(err)
	}
	plat := c.Plat

	tests := []struct {
		name    string
		input   func(t *testing.T) string
		wantErr string
	}{
		{
			name:    "empty input",
			input:   func(*testing.T) string { return "" },
			wantErr: "decoding model",
		},
		{
			name: "truncated JSON",
			input: func(*testing.T) string {
				s := valid.String()
				return s[:len(s)/2]
			},
			wantErr: "decoding model",
		},
		{
			name:    "not JSON at all",
			input:   func(*testing.T) string { return "model coefficients go here" },
			wantErr: "decoding model",
		},
		{
			name: "unknown version",
			input: func(t *testing.T) string {
				doc := savedDoc(t, c)
				doc["version"] = 99
				return encodeDoc(t, doc)
			},
			wantErr: "unsupported model version",
		},
		{
			name: "wrong workload",
			input: func(t *testing.T) string {
				doc := savedDoc(t, c)
				doc["workload"] = "ldecode"
				return encodeDoc(t, doc)
			},
			wantErr: `model is for "ldecode"`,
		},
		{
			name: "wrong platform",
			input: func(t *testing.T) string {
				doc := savedDoc(t, c)
				doc["platform"] = "x86-i7"
				return encodeDoc(t, doc)
			},
			wantErr: "cannot drive",
		},
		{
			name: "feature-schema mismatch: truncated coefficients",
			input: func(t *testing.T) string {
				doc := savedDoc(t, c)
				m := doc["model_fmin"].(map[string]any)
				coef := m["coef"].([]any)
				m["coef"] = coef[:len(coef)-1]
				return encodeDoc(t, doc)
			},
			wantErr: "coefficients",
		},
		{
			name: "feature-schema mismatch: extra column",
			input: func(t *testing.T) string {
				doc := savedDoc(t, c)
				cols := doc["columns"].([]any)
				doc["columns"] = append(cols, map[string]any{
					"kind": 0, "fid": 9999, "name": "loop#9999",
				})
				return encodeDoc(t, doc)
			},
			wantErr: "coefficients",
		},
		{
			name: "undeclared hint",
			input: func(t *testing.T) string {
				doc := savedDoc(t, c)
				doc["hints"] = []any{"noSuchParam"}
				// Pad the coefficient vectors so the dimension check
				// passes and the hint check is what fires.
				for _, key := range []string{"model_fmin", "model_fmax"} {
					m := doc[key].(map[string]any)
					m["coef"] = append(m["coef"].([]any), 0.5)
				}
				return encodeDoc(t, doc)
			},
			wantErr: "hint",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadController(strings.NewReader(tc.input(t)), w, plat, nil)
			if err == nil {
				t.Fatal("malformed model accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}

	// The untouched document must still load.
	if _, err := LoadController(bytes.NewReader(valid.Bytes()), w, plat, nil); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
}
