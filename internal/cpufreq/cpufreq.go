// Package cpufreq emulates the Linux cpufreq sysfs interface
// (/sys/devices/system/cpu/cpuN/cpufreq) over a platform model. The
// paper's prototype sets frequencies through exactly this interface on
// the ODROID-XU3's kernel; this shim shows the deployment path — a
// controller that speaks sysfs runs unmodified against either this
// emulation or a real /sys tree — and is what the repro band's "sysfs
// possible" refers to.
//
// Supported files mirror the kernel's userspace-governor contract:
//
//	scaling_available_frequencies  (read)  "200000 300000 ... 1400000"
//	scaling_cur_freq               (read)  current frequency in kHz
//	scaling_min_freq               (read)  lowest available, kHz
//	scaling_max_freq               (read)  highest available, kHz
//	scaling_governor               (read/write) must be "userspace" to set speeds
//	scaling_setspeed               (write) target frequency in kHz
//	cpuinfo_transition_latency     (read)  worst-case switch, nanoseconds
package cpufreq

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/platform"
)

// FS is an in-memory cpufreq sysfs directory bound to a platform.
type FS struct {
	mu       sync.Mutex
	plat     *platform.Platform
	switchTb *platform.SwitchTable
	governor string
	cur      platform.Level
	// Switches counts successful setspeed transitions.
	Switches int
}

// New mounts the emulated cpufreq tree for a platform, starting at the
// maximum level under the "performance" governor, like a fresh boot.
func New(p *platform.Platform, tbl *platform.SwitchTable) *FS {
	return &FS{
		plat:     p,
		switchTb: tbl,
		governor: "performance",
		cur:      p.MaxLevel(),
	}
}

// Level returns the current operating point.
func (fs *FS) Level() platform.Level {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.cur
}

// Read returns the contents of a cpufreq file (with trailing newline,
// like the kernel).
func (fs *FS) Read(name string) (string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	switch name {
	case "scaling_available_frequencies":
		freqs := make([]string, len(fs.plat.Levels))
		for i, l := range fs.plat.Levels {
			freqs[i] = strconv.Itoa(khz(l))
		}
		return strings.Join(freqs, " ") + "\n", nil
	case "scaling_cur_freq":
		return strconv.Itoa(khz(fs.cur)) + "\n", nil
	case "scaling_min_freq":
		return strconv.Itoa(khz(fs.plat.MinLevel())) + "\n", nil
	case "scaling_max_freq":
		return strconv.Itoa(khz(fs.plat.MaxLevel())) + "\n", nil
	case "scaling_governor":
		return fs.governor + "\n", nil
	case "cpuinfo_transition_latency":
		ns := 0.0
		if fs.switchTb != nil {
			ns = fs.switchTb.Max() * 1e9
		}
		return strconv.Itoa(int(ns)) + "\n", nil
	}
	return "", fmt.Errorf("cpufreq: no such file %q", name)
}

// Write stores a value into a cpufreq file, enforcing the kernel's
// rules: setspeed requires the userspace governor and an exact
// available frequency.
func (fs *FS) Write(name, value string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	value = strings.TrimSpace(value)
	switch name {
	case "scaling_governor":
		switch value {
		case "performance":
			fs.governor = value
			fs.cur = fs.plat.MaxLevel()
		case "powersave":
			fs.governor = value
			fs.cur = fs.plat.MinLevel()
		case "userspace":
			fs.governor = value
		default:
			return fmt.Errorf("cpufreq: unknown governor %q", value)
		}
		return nil
	case "scaling_setspeed":
		if fs.governor != "userspace" {
			// The kernel returns "<unsupported>" semantics: EINVAL.
			return fmt.Errorf("cpufreq: scaling_setspeed requires the userspace governor (have %q)", fs.governor)
		}
		want, err := strconv.Atoi(value)
		if err != nil {
			return fmt.Errorf("cpufreq: bad frequency %q: %w", value, err)
		}
		for _, l := range fs.plat.Levels {
			if khz(l) == want {
				if l.Index != fs.cur.Index {
					fs.Switches++
				}
				fs.cur = l
				return nil
			}
		}
		return fmt.Errorf("cpufreq: %d kHz not in scaling_available_frequencies", want)
	}
	return fmt.Errorf("cpufreq: cannot write %q", name)
}

func khz(l platform.Level) int { return int(l.FreqHz / 1e3) }

// SetLevelKHz is the convenience a controller uses: switch to the
// given frequency through the sysfs contract.
func (fs *FS) SetLevelKHz(k int) error {
	return fs.Write("scaling_setspeed", strconv.Itoa(k))
}
