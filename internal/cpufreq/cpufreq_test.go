package cpufreq

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/platform"
)

func newFS(t *testing.T) *FS {
	t.Helper()
	p := platform.ODROIDXU3A7()
	return New(p, platform.MeasureSwitchTable(p, 100, 0.95, 1))
}

func TestDefaultsLikeBoot(t *testing.T) {
	fs := newFS(t)
	gov, err := fs.Read("scaling_governor")
	if err != nil || gov != "performance\n" {
		t.Fatalf("governor = %q, %v", gov, err)
	}
	cur, _ := fs.Read("scaling_cur_freq")
	if cur != "1400000\n" {
		t.Fatalf("cur = %q, want max", cur)
	}
}

func TestAvailableFrequencies(t *testing.T) {
	fs := newFS(t)
	s, err := fs.Read("scaling_available_frequencies")
	if err != nil {
		t.Fatal(err)
	}
	fields := strings.Fields(s)
	if len(fields) != 13 {
		t.Fatalf("frequencies = %d, want 13", len(fields))
	}
	if fields[0] != "200000" || fields[12] != "1400000" {
		t.Fatalf("range = %s..%s", fields[0], fields[12])
	}
	minF, _ := fs.Read("scaling_min_freq")
	maxF, _ := fs.Read("scaling_max_freq")
	if minF != "200000\n" || maxF != "1400000\n" {
		t.Fatalf("min/max = %q/%q", minF, maxF)
	}
}

func TestSetspeedRequiresUserspace(t *testing.T) {
	fs := newFS(t)
	if err := fs.SetLevelKHz(700000); err == nil {
		t.Fatal("setspeed under performance governor should fail")
	}
	if err := fs.Write("scaling_governor", "userspace"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetLevelKHz(700000); err != nil {
		t.Fatal(err)
	}
	if cur, _ := fs.Read("scaling_cur_freq"); cur != "700000\n" {
		t.Fatalf("cur = %q", cur)
	}
	if fs.Level().FreqHz != 700e6 {
		t.Fatalf("level = %g", fs.Level().FreqHz)
	}
	if fs.Switches != 1 {
		t.Fatalf("switches = %d", fs.Switches)
	}
	// Same-frequency write is not a switch.
	if err := fs.SetLevelKHz(700000); err != nil {
		t.Fatal(err)
	}
	if fs.Switches != 1 {
		t.Fatalf("redundant setspeed counted as switch")
	}
}

func TestSetspeedRejectsOffGridFrequencies(t *testing.T) {
	fs := newFS(t)
	fs.Write("scaling_governor", "userspace")
	if err := fs.SetLevelKHz(650000); err == nil {
		t.Fatal("off-grid frequency should be rejected")
	}
	if err := fs.Write("scaling_setspeed", "not-a-number"); err == nil {
		t.Fatal("garbage should be rejected")
	}
}

func TestGovernorSwitches(t *testing.T) {
	fs := newFS(t)
	if err := fs.Write("scaling_governor", "powersave"); err != nil {
		t.Fatal(err)
	}
	if cur, _ := fs.Read("scaling_cur_freq"); cur != "200000\n" {
		t.Fatalf("powersave cur = %q", cur)
	}
	if err := fs.Write("scaling_governor", "ondemandish"); err == nil {
		t.Fatal("unknown governor should be rejected")
	}
}

func TestTransitionLatencyExposed(t *testing.T) {
	fs := newFS(t)
	s, err := fs.Read("cpuinfo_transition_latency")
	if err != nil {
		t.Fatal(err)
	}
	ns, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		t.Fatal(err)
	}
	// The worst 95th-percentile transition is in the millisecond range.
	if ns < 1_000_000 || ns > 20_000_000 {
		t.Fatalf("transition latency %d ns implausible", ns)
	}
}

func TestUnknownFiles(t *testing.T) {
	fs := newFS(t)
	if _, err := fs.Read("bogus"); err == nil {
		t.Fatal("unknown read should fail")
	}
	if err := fs.Write("bogus", "1"); err == nil {
		t.Fatal("unknown write should fail")
	}
	if err := fs.Write("scaling_cur_freq", "1"); err == nil {
		t.Fatal("read-only file write should fail")
	}
}
