// Package dvfs implements the paper's DVFS performance model and
// frequency selection rule (§3.4).
//
// Given a job's predicted execution times at the minimum and maximum
// frequencies, the classical linear model t = Tmem + Ndependent/f is
// solved for its two unknowns:
//
//	Ndependent = fmin·fmax·(tfmin − tfmax) / (fmax − fmin)
//	Tmem       = (fmax·tfmax − fmin·tfmin) / (fmax − fmin)
//
// and the smallest discrete frequency that still meets the (effective)
// time budget is selected. Predicted times carry a safety margin
// (10 % in the paper), and the effective budget subtracts predictor
// and estimated DVFS-switch overheads.
package dvfs

import (
	"math"

	"repro/internal/platform"
)

// TwoPoint is the solved per-job performance model.
type TwoPoint struct {
	// Ndep is frequency-dependent work in cycles.
	Ndep float64
	// TmemSec is frequency-independent memory time in seconds.
	TmemSec float64
}

// Solve recovers (Ndep, Tmem) from execution times predicted at two
// frequencies. Noisy predictions can produce slightly negative
// components; they are clamped at zero so downstream frequency math
// stays well-defined.
func Solve(tfmin, tfmax, fmin, fmax float64) TwoPoint {
	if fmax <= fmin {
		// Degenerate platform: treat everything as CPU-bound at fmin.
		return TwoPoint{Ndep: tfmin * fmin}
	}
	ndep := fmin * fmax * (tfmin - tfmax) / (fmax - fmin)
	tmem := (fmax*tfmax - fmin*tfmin) / (fmax - fmin)
	if ndep < 0 {
		ndep = 0
	}
	if tmem < 0 {
		tmem = 0
	}
	return TwoPoint{Ndep: ndep, TmemSec: tmem}
}

// TimeAt evaluates the model at frequency f.
func (tp TwoPoint) TimeAt(f float64) float64 {
	return tp.TmemSec + tp.Ndep/f
}

// FreqForBudget returns the exact (continuous) frequency that just
// meets the budget: f = Ndep / (budget − Tmem). A non-positive
// denominator means no frequency can meet the budget; +Inf is
// returned so quantization clamps to the maximum level.
func (tp TwoPoint) FreqForBudget(budgetSec float64) float64 {
	rem := budgetSec - tp.TmemSec
	if rem <= 0 {
		return math.Inf(1)
	}
	if tp.Ndep <= 0 {
		return 0
	}
	return tp.Ndep / rem
}

// Selector chooses discrete DVFS levels for jobs.
type Selector struct {
	// Plat supplies the discrete level grid.
	Plat *platform.Platform
	// Switch estimates transition latencies (typically the
	// 95th-percentile table of Fig 11). May be nil to ignore switch
	// overhead (the paper's overhead-removed analysis, Fig 18).
	Switch *platform.SwitchTable
	// Margin inflates predicted times to absorb same-input execution
	// time variation; the paper uses 0.10.
	Margin float64
	// EnergyAware picks the minimum-ESTIMATED-ENERGY feasible level
	// instead of the paper's minimum-frequency rule. On a homogeneous
	// grid the two coincide (within a cluster, slower always means
	// less energy per job), but on a heterogeneous grid a slow point
	// of the big cluster can be feasible yet burn more than a faster
	// point of the little cluster — §3.5's "alternate models ...
	// appropriate operating point for the mechanism of interest".
	EnergyAware bool
}

// Pick returns the feasible level for a job within budgetSec, starting
// from level cur: the lowest feasible frequency (the paper's rule), or
// the minimum-estimated-energy feasible level when EnergyAware is set.
// The per-level effective budget subtracts the estimated switch time
// from cur to the candidate level (no switch, no cost). When no level
// meets the budget the maximum level is returned — the best the
// platform can do.
//
//dvfs:hotpath
func (s *Selector) Pick(cur platform.Level, tfmin, tfmax, budgetSec float64) platform.Level {
	m := 1 + s.Margin
	tp := Solve(tfmin*m, tfmax*m,
		s.Plat.MinLevel().EffFreqHz(), s.Plat.MaxLevel().EffFreqHz())
	return s.PickFromModel(cur, tp, budgetSec)
}

// PickFromModel selects a level directly from a solved TwoPoint model
// (already margin-adjusted); the oracle controller uses it with exact
// per-job work.
func (s *Selector) PickFromModel(cur platform.Level, tp TwoPoint, budgetSec float64) platform.Level {
	best := -1
	bestEnergy := math.Inf(1)
	for _, l := range s.Plat.Levels {
		eff := budgetSec
		if s.Switch != nil {
			eff -= s.Switch.Lookup(cur.Index, l.Index)
		}
		t := tp.TimeAt(l.EffFreqHz())
		if t > eff {
			continue
		}
		if !s.EnergyAware {
			return l // lowest feasible frequency: paper §3.4
		}
		// Estimated job energy: active power while running plus idle
		// power for the remaining budget.
		e := s.Plat.ActivePower(l)*t + s.Plat.IdlePower(l)*math.Max(0, budgetSec-t)
		if e < bestEnergy {
			best, bestEnergy = l.Index, e
		}
	}
	if best < 0 {
		return s.Plat.MaxLevel()
	}
	return s.Plat.Levels[best]
}
