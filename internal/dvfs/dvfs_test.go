package dvfs

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/platform"
)

func TestSolveRoundTrips(t *testing.T) {
	// A job with known Ndep/Tmem: solving from its times at two
	// frequencies must recover the components.
	fmin, fmax := 200e6, 1400e6
	want := TwoPoint{Ndep: 5e6, TmemSec: 0.004}
	tp := Solve(want.TimeAt(fmin), want.TimeAt(fmax), fmin, fmax)
	if math.Abs(tp.Ndep-want.Ndep) > 1 {
		t.Errorf("Ndep = %g, want %g", tp.Ndep, want.Ndep)
	}
	if math.Abs(tp.TmemSec-want.TmemSec) > 1e-12 {
		t.Errorf("Tmem = %g, want %g", tp.TmemSec, want.TmemSec)
	}
}

func TestSolveClampsNegative(t *testing.T) {
	// tfmin < tfmax (noise) implies negative Ndep → clamp.
	tp := Solve(0.001, 0.002, 200e6, 1400e6)
	if tp.Ndep != 0 {
		t.Errorf("Ndep = %g, want 0", tp.Ndep)
	}
	// Pure CPU job: Tmem ≈ 0; perturb so raw Tmem < 0.
	tp = Solve(0.014, 0.0019, 200e6, 1400e6)
	if tp.TmemSec < 0 {
		t.Errorf("Tmem = %g, want ≥ 0", tp.TmemSec)
	}
}

func TestSolveDegenerateFrequencies(t *testing.T) {
	tp := Solve(0.01, 0.01, 1e9, 1e9)
	if tp.Ndep != 0.01*1e9 || tp.TmemSec != 0 {
		t.Errorf("degenerate solve = %+v", tp)
	}
}

func TestFreqForBudget(t *testing.T) {
	tp := TwoPoint{Ndep: 10e6, TmemSec: 0.005}
	// budget 15 ms → 10 ms for CPU → 1 GHz.
	f := tp.FreqForBudget(0.015)
	if math.Abs(f-1e9) > 1 {
		t.Errorf("f = %g, want 1e9", f)
	}
	// Budget below Tmem → impossible → +Inf.
	if !math.IsInf(tp.FreqForBudget(0.004), 1) {
		t.Errorf("impossible budget should give +Inf, got %g", tp.FreqForBudget(0.004))
	}
	// No CPU work → any frequency, returns 0.
	if (TwoPoint{Ndep: 0, TmemSec: 0.001}).FreqForBudget(0.01) != 0 {
		t.Error("zero Ndep should give 0")
	}
}

func newSelector(margin float64, withSwitch bool) *Selector {
	p := platform.ODROIDXU3A7()
	var tbl *platform.SwitchTable
	if withSwitch {
		tbl = platform.MeasureSwitchTable(p, 200, 0.95, 1)
	}
	return &Selector{Plat: p, Switch: tbl, Margin: margin}
}

func TestPickMeetsBudget(t *testing.T) {
	s := newSelector(0.10, true)
	p := s.Plat
	cur := p.MaxLevel()
	// Job: 7e6 cycles + 2 ms memory; times at fmin/fmax:
	job := TwoPoint{Ndep: 7e6, TmemSec: 0.002}
	tfmin := job.TimeAt(p.MinLevel().FreqHz)
	tfmax := job.TimeAt(p.MaxLevel().FreqHz)

	budget := 0.050
	l := s.Pick(cur, tfmin, tfmax, budget)
	// The chosen level must satisfy the margin-inflated model within
	// the switch-adjusted budget.
	eff := budget - s.Switch.Lookup(cur.Index, l.Index)
	predicted := 1.1 * job.TimeAt(l.FreqHz)
	if predicted > eff {
		t.Errorf("picked level %d predicted %gs > effective budget %gs", l.Index, predicted, eff)
	}
	// And the next level down must NOT satisfy it (minimality).
	if l.Index > 0 {
		lower := p.Levels[l.Index-1]
		effLo := budget - s.Switch.Lookup(cur.Index, lower.Index)
		if 1.1*job.TimeAt(lower.FreqHz) <= effLo {
			t.Errorf("level %d would also meet budget; Pick not minimal", lower.Index)
		}
	}
}

func TestPickTightBudgetPicksMax(t *testing.T) {
	s := newSelector(0.10, true)
	p := s.Plat
	job := TwoPoint{Ndep: 60e6, TmemSec: 0.01}
	tfmin := job.TimeAt(p.MinLevel().FreqHz)
	tfmax := job.TimeAt(p.MaxLevel().FreqHz)
	l := s.Pick(p.MinLevel(), tfmin, tfmax, 0.020)
	if l.Index != p.MaxLevel().Index {
		t.Errorf("infeasible budget picked level %d, want max", l.Index)
	}
}

func TestPickGenerousBudgetPicksMin(t *testing.T) {
	s := newSelector(0.10, true)
	p := s.Plat
	job := TwoPoint{Ndep: 1e6, TmemSec: 0.0001}
	l := s.Pick(p.MaxLevel(), job.TimeAt(p.MinLevel().FreqHz), job.TimeAt(p.MaxLevel().FreqHz), 1.0)
	if l.Index != 0 {
		t.Errorf("generous budget picked level %d, want 0", l.Index)
	}
}

func TestPickMarginRaisesLevel(t *testing.T) {
	p := platform.ODROIDXU3A7()
	job := TwoPoint{Ndep: 20e6, TmemSec: 0.002}
	tfmin := job.TimeAt(p.MinLevel().FreqHz)
	tfmax := job.TimeAt(p.MaxLevel().FreqHz)
	noMargin := (&Selector{Plat: p, Margin: 0}).Pick(p.MaxLevel(), tfmin, tfmax, 0.030)
	withMargin := (&Selector{Plat: p, Margin: 0.3}).Pick(p.MaxLevel(), tfmin, tfmax, 0.030)
	if withMargin.Index <= noMargin.Index {
		t.Errorf("margin did not raise level: %d vs %d", withMargin.Index, noMargin.Index)
	}
}

func TestPickSwitchOverheadMatters(t *testing.T) {
	// With a budget just at the boundary, accounting for switch time
	// must select a level at least as high as ignoring it.
	p := platform.ODROIDXU3A7()
	tbl := platform.MeasureSwitchTable(p, 200, 0.95, 1)
	job := TwoPoint{Ndep: 14e6, TmemSec: 0.001}
	tfmin := job.TimeAt(p.MinLevel().FreqHz)
	tfmax := job.TimeAt(p.MaxLevel().FreqHz)
	for _, budget := range []float64{0.012, 0.020, 0.035, 0.050, 0.080} {
		with := (&Selector{Plat: p, Switch: tbl, Margin: 0.1}).Pick(p.MaxLevel(), tfmin, tfmax, budget)
		without := (&Selector{Plat: p, Margin: 0.1}).Pick(p.MaxLevel(), tfmin, tfmax, budget)
		if with.Index < without.Index {
			t.Errorf("budget %g: switch-aware level %d below switch-blind %d", budget, with.Index, without.Index)
		}
	}
}

func TestPickFromModel(t *testing.T) {
	s := newSelector(0, false)
	p := s.Plat
	job := TwoPoint{Ndep: 7e6, TmemSec: 0.002}
	l := s.PickFromModel(p.MaxLevel(), job, 0.050)
	if got := job.TimeAt(l.FreqHz); got > 0.050 {
		t.Errorf("oracle pick misses budget: %g", got)
	}
	if l.Index > 0 {
		if job.TimeAt(p.Levels[l.Index-1].FreqHz) <= 0.050 {
			t.Errorf("oracle pick not minimal")
		}
	}
}

// Property: Pick always returns a level that, per its own model, meets
// the budget — or the max level when none does.
func TestPickSoundProperty(t *testing.T) {
	s := newSelector(0.10, true)
	p := s.Plat
	f := func(ndepK uint32, memUS uint16, budMS uint16, curIdx uint8) bool {
		job := TwoPoint{Ndep: float64(ndepK%100000) * 1000, TmemSec: float64(memUS%20000) * 1e-6}
		budget := (1 + float64(budMS%100)) * 1e-3
		cur := p.Levels[int(curIdx)%p.NumLevels()]
		tfmin := job.TimeAt(p.MinLevel().FreqHz)
		tfmax := job.TimeAt(p.MaxLevel().FreqHz)
		l := s.Pick(cur, tfmin, tfmax, budget)
		if l.Index == p.MaxLevel().Index {
			return true // fallback is always legal
		}
		eff := budget - s.Switch.Lookup(cur.Index, l.Index)
		return 1.1*job.TimeAt(l.FreqHz) <= eff+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Within one cluster the energy-aware rule agrees with the paper's
// minimum-frequency rule (slower always means less energy per job).
func TestEnergyAwareMatchesMinFreqOnHomogeneousGrid(t *testing.T) {
	p := platform.ODROIDXU3A7()
	plain := &Selector{Plat: p, Margin: 0.1}
	aware := &Selector{Plat: p, Margin: 0.1, EnergyAware: true}
	jobs := []TwoPoint{
		{Ndep: 7e6, TmemSec: 0.002},
		{Ndep: 20e6, TmemSec: 0.001},
		{Ndep: 1e6, TmemSec: 0.0001},
		{Ndep: 40e6, TmemSec: 0.004},
	}
	for _, job := range jobs {
		for _, budget := range []float64{0.02, 0.035, 0.05, 0.1} {
			tfmin := job.TimeAt(p.MinLevel().EffFreqHz())
			tfmax := job.TimeAt(p.MaxLevel().EffFreqHz())
			a := plain.Pick(p.MaxLevel(), tfmin, tfmax, budget)
			b := aware.Pick(p.MaxLevel(), tfmin, tfmax, budget)
			if a.Index != b.Index {
				t.Errorf("job %+v budget %g: plain level %d, aware %d", job, budget, a.Index, b.Index)
			}
		}
	}
}

// Across a cluster boundary the energy-aware rule can prefer a faster
// little-core point over a slower big-core point.
func TestEnergyAwareAvoidsExpensiveBigCorePoint(t *testing.T) {
	p := platform.BigLITTLE()
	aware := &Selector{Plat: p, EnergyAware: true}
	plain := &Selector{Plat: p}
	// A job whose feasibility frontier lands between A15@800MHz
	// (eff 1.33 GHz) and A7@1400MHz (eff 1.40 GHz).
	job := TwoPoint{Ndep: 6.6e7, TmemSec: 0}
	budget := 0.050 // needs eff ≥ 1.32 GHz
	a := plain.PickFromModel(p.MaxLevel(), job, budget)
	b := aware.PickFromModel(p.MaxLevel(), job, budget)
	if a.Cluster != "A15" {
		t.Skipf("frontier did not land on an A15 point (picked %s@%d)", a.Cluster, int(a.FreqHz/1e6))
	}
	if b.Cluster != "A7" {
		t.Errorf("energy-aware picked %s@%d; the A7 point is cheaper", b.Cluster, int(b.FreqHz/1e6))
	}
	// And it must still be feasible.
	if job.TimeAt(b.EffFreqHz()) > budget {
		t.Errorf("energy-aware pick infeasible")
	}
}
