package experiments

import (
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Ablations beyond the paper's own sweeps, covering the design choices
// DESIGN.md calls out: the 10% prediction margin, the 95th-percentile
// switch-time table (vs means), and Lasso-driven slice reduction
// (vs computing every feature).

// MarginPoint is one setting of the prediction-margin ablation.
type MarginPoint struct {
	Margin    float64
	EnergyPct float64
	MissPct   float64
}

// RunAblationMargin sweeps the safety margin for ldecode. The paper
// (§3.4): "A higher margin can decrease deadline misses while a lower
// margin can improve the energy savings."
func (s *Suite) RunAblationMargin() ([]MarginPoint, error) {
	w := workload.LDecode()
	perf, err := s.runOne("performance", w, sim.Config{})
	if err != nil {
		return nil, err
	}
	var pts []MarginPoint
	for _, m := range []float64{-1, 0.05, 0.10, 0.20, 0.30} { // -1 encodes 0
		margin := m
		if margin < 0 {
			margin = 0
		}
		ctrl, err := core.Build(w, core.Config{
			Plat:        s.Plat,
			ProfileSeed: s.Seed + 17,
			Switch:      s.Switch,
			Margin:      m, // core treats negative as exactly zero
		})
		if err != nil {
			return nil, err
		}
		r, err := sim.Run(w, ctrl, sim.Config{Plat: s.Plat, Seed: s.Seed + 7})
		if err != nil {
			return nil, err
		}
		pts = append(pts, MarginPoint{
			Margin:    margin,
			EnergyPct: 100 * r.EnergyJ / perf.EnergyJ,
			MissPct:   100 * r.MissRate(),
		})
	}
	return pts, nil
}

// SwitchTableResult compares conservative (p95) against mean
// switch-time estimates in the frequency selector.
type SwitchTableResult struct {
	Table     string // "p95" or "mean"
	EnergyPct float64
	MissPct   float64
}

// RunAblationSwitchTable evaluates ldecode with the selector fed mean
// switch times instead of the paper's 95th percentile.
func (s *Suite) RunAblationSwitchTable() ([]SwitchTableResult, error) {
	w := workload.LDecode()
	perf, err := s.runOne("performance", w, sim.Config{})
	if err != nil {
		return nil, err
	}
	var out []SwitchTableResult
	for _, tbl := range []struct {
		name string
		t    *platform.SwitchTable
	}{
		{"p95", s.Switch},
		{"mean", platform.MeanSwitchTable(s.Plat)},
	} {
		ctrl, err := core.Build(w, core.Config{
			Plat:        s.Plat,
			ProfileSeed: s.Seed + 17,
			Switch:      tbl.t,
		})
		if err != nil {
			return nil, err
		}
		r, err := sim.Run(w, ctrl, sim.Config{Plat: s.Plat, Seed: s.Seed + 7})
		if err != nil {
			return nil, err
		}
		out = append(out, SwitchTableResult{
			Table:     tbl.name,
			EnergyPct: 100 * r.EnergyJ / perf.EnergyJ,
			MissPct:   100 * r.MissRate(),
		})
	}
	return out, nil
}

// SliceAblationRow compares the Lasso-reduced slice against computing
// every instrumented feature.
type SliceAblationRow struct {
	Benchmark string
	// Statement counts of the two slices.
	LassoStmts, FullStmts int
	// Average predictor time per job under each slice [ms].
	LassoPredMS, FullPredMS float64
}

// RunAblationSlice measures what Lasso feature selection buys in
// predictor overhead across all benchmarks.
func (s *Suite) RunAblationSlice() ([]SliceAblationRow, error) {
	var rows []SliceAblationRow
	for _, w := range workload.All() {
		lasso, err := s.Controller(w)
		if err != nil {
			return nil, err
		}
		full, err := core.Build(w, core.Config{
			Plat:            s.Plat,
			ProfileSeed:     s.Seed + 17,
			Switch:          s.Switch,
			KeepAllFeatures: true,
		})
		if err != nil {
			return nil, err
		}
		rl, err := sim.Run(w, lasso, sim.Config{Plat: s.Plat, Seed: s.Seed + 7})
		if err != nil {
			return nil, err
		}
		rf, err := sim.Run(w, full, sim.Config{Plat: s.Plat, Seed: s.Seed + 7})
		if err != nil {
			return nil, err
		}
		rows = append(rows, SliceAblationRow{
			Benchmark:   w.Name,
			LassoStmts:  lasso.Slice.SliceStmts,
			FullStmts:   full.Slice.SliceStmts,
			LassoPredMS: rl.MeanPredictorSec() * 1e3,
			FullPredMS:  rf.MeanPredictorSec() * 1e3,
		})
	}
	return rows, nil
}
