package experiments

import "testing"

func TestAblationMargin(t *testing.T) {
	pts, err := testSuite.RunAblationMargin()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Margin != 0 {
		t.Fatalf("first point margin = %g, want 0", pts[0].Margin)
	}
	// Energy grows (weakly) with margin; misses shrink (weakly).
	first, last := pts[0], pts[len(pts)-1]
	if last.EnergyPct < first.EnergyPct-0.5 {
		t.Errorf("energy at margin %.2f (%.1f%%) below margin 0 (%.1f%%)",
			last.Margin, last.EnergyPct, first.EnergyPct)
	}
	if last.MissPct > first.MissPct {
		t.Errorf("misses at margin %.2f (%.2f%%) above margin 0 (%.2f%%)",
			last.Margin, last.MissPct, first.MissPct)
	}
	// The paper's 10% margin keeps ldecode miss-free.
	for _, p := range pts {
		if p.Margin >= 0.10 && p.MissPct > 0.5 {
			t.Errorf("margin %.2f: misses %.2f%%, want ≈0", p.Margin, p.MissPct)
		}
	}
}

func TestAblationSwitchTable(t *testing.T) {
	rows, err := testSuite.RunAblationSwitchTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Table != "p95" || rows[1].Table != "mean" {
		t.Fatalf("rows = %+v", rows)
	}
	// The mean table is less conservative: it must not cost MORE energy
	// than p95 (it can only pick lower-or-equal levels).
	if rows[1].EnergyPct > rows[0].EnergyPct+0.5 {
		t.Errorf("mean-table energy %.1f%% above p95 %.1f%%", rows[1].EnergyPct, rows[0].EnergyPct)
	}
	// And p95 keeps misses at least as low as mean.
	if rows[0].MissPct > rows[1].MissPct+0.1 {
		t.Errorf("p95 misses %.2f%% above mean %.2f%%", rows[0].MissPct, rows[1].MissPct)
	}
}

func TestAblationSlice(t *testing.T) {
	rows, err := testSuite.RunAblationSlice()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.LassoStmts > r.FullStmts {
			t.Errorf("%s: lasso slice (%d) larger than keep-all (%d)",
				r.Benchmark, r.LassoStmts, r.FullStmts)
		}
		if r.LassoPredMS > r.FullPredMS+0.05 {
			t.Errorf("%s: lasso predictor %.3f ms above keep-all %.3f ms",
				r.Benchmark, r.LassoPredMS, r.FullPredMS)
		}
	}
}

func TestPlacementStudy(t *testing.T) {
	rows, err := testSuite.RunPlacement()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	ahead := 0
	for _, r := range rows {
		if r.KnownAhead {
			ahead++
		}
		seq := r.EnergyPct["sequential"]
		for _, mode := range PlacementModes {
			e, m := r.EnergyPct[mode], r.MissPct[mode]
			if e <= 0 || m < 0 {
				t.Errorf("%s/%s: bad values %g/%g", r.Benchmark, mode, e, m)
			}
			// The paper's conclusion: with these predictors, placement
			// barely matters (§4.3) — modes stay within a few percent.
			if mathAbs(e-seq) > 5 {
				t.Errorf("%s: %s energy %g far from sequential %g", r.Benchmark, mode, e, seq)
			}
			// Overlapped modes never miss more than sequential + slack.
			if mode != "sequential" && m > r.MissPct["sequential"]+2 {
				t.Errorf("%s: %s misses %g above sequential %g", r.Benchmark, mode, m, r.MissPct["sequential"])
			}
		}
	}
	// The data-driven benchmarks can pipeline; the interactive ones not.
	if ahead != 4 {
		t.Errorf("known-ahead workloads = %d, want 4", ahead)
	}
}

func TestBatchStudy(t *testing.T) {
	pts, err := testSuite.RunBatch()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 || pts[0].K != 1 {
		t.Fatalf("points = %+v", pts)
	}
	// Amortization pays at millisecond budgets: some K > 1 beats K=1 on
	// BOTH energy and misses.
	improved := false
	for _, p := range pts[1:] {
		if p.EnergyPct <= pts[0].EnergyPct && p.MissPct <= pts[0].MissPct {
			improved = true
		}
	}
	if !improved {
		t.Errorf("no batch size improves on per-job prediction: %+v", pts)
	}
}

func mathAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestHeteroStudy(t *testing.T) {
	pts, err := testSuite.RunHetero()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	tight, loose := pts[0], pts[len(pts)-1]
	// Below the A7's reach (0.5× its worst case), the little core
	// misses everything while the heterogeneous grid saves the
	// deadlines by migrating to the A15 — at a steep energy premium.
	if tight.A7MissPct < 90 {
		t.Errorf("A7 at 0.5x misses %.1f%%, want ≈100%%", tight.A7MissPct)
	}
	if tight.BigMissPct > 5 {
		t.Errorf("big.LITTLE at 0.5x misses %.1f%%, want ≈0", tight.BigMissPct)
	}
	if tight.BigEnergyPct <= tight.A7EnergyPct {
		t.Errorf("A15 rescue should cost energy: %.1f vs %.1f", tight.BigEnergyPct, tight.A7EnergyPct)
	}
	if tight.A15Share < 0.8 {
		t.Errorf("A15 share at 0.5x = %.2f, want ≈1", tight.A15Share)
	}
	// With slack, the controller stays on the efficient little core and
	// the two platforms converge.
	if loose.A15Share > 0.2 {
		t.Errorf("A15 share at 1.2x = %.2f, want small", loose.A15Share)
	}
	if mathAbs(loose.BigEnergyPct-loose.A7EnergyPct) > 8 {
		t.Errorf("platforms did not converge at slack: %.1f vs %.1f",
			loose.BigEnergyPct, loose.A7EnergyPct)
	}
	// A15 usage decreases monotonically with budget.
	for i := 1; i < len(pts); i++ {
		if pts[i].A15Share > pts[i-1].A15Share+0.02 {
			t.Errorf("A15 share not decreasing: %.2f -> %.2f at budget %.1f",
				pts[i-1].A15Share, pts[i].A15Share, pts[i].NormBudget)
		}
	}
	// Energy-aware ranking is a wash on this grid (the feasibility
	// frontier rarely crosses cluster boundaries, and migrations eat
	// the theoretical gain): it must stay within a few percent and
	// never trade misses.
	for _, p := range pts {
		if mathAbs(p.EAEnergyPct-p.BigEnergyPct) > 5 {
			t.Errorf("budget %.1f: energy-aware %.1f far from min-freq %.1f",
				p.NormBudget, p.EAEnergyPct, p.BigEnergyPct)
		}
		if p.EAMissPct > p.BigMissPct+1 {
			t.Errorf("budget %.1f: energy-aware misses %.1f above %.1f",
				p.NormBudget, p.EAMissPct, p.BigMissPct)
		}
	}
}

func TestHintsImproveValueDependentBenchmarks(t *testing.T) {
	rows, err := testSuite.RunHints()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The hint exposes exactly the value-dependent cost, so the
		// model must get more accurate...
		if r.HintMAEms >= r.BaseMAEms {
			t.Errorf("%s: hint MAE %.2f not below base %.2f", r.Benchmark, r.HintMAEms, r.BaseMAEms)
		}
		// ...and at least not cost energy or misses.
		if r.HintEnergyPct > r.BaseEnergyPct+1 {
			t.Errorf("%s: hint energy %.1f above base %.1f", r.Benchmark, r.HintEnergyPct, r.BaseEnergyPct)
		}
		if r.HintMissPct > r.BaseMissPct+0.5 {
			t.Errorf("%s: hint misses %.1f above base %.1f", r.Benchmark, r.HintMissPct, r.BaseMissPct)
		}
	}
}

func TestOverheadCapTradesAccuracyForSpeed(t *testing.T) {
	pts, err := testSuite.RunOverheadCap()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 || pts[0].CapMS != 0 {
		t.Fatalf("points = %+v", pts)
	}
	base := pts[0]
	tightest := pts[len(pts)-1]
	// The tightest cap must actually shrink the predictor...
	if tightest.PredictorMS >= base.PredictorMS/5 {
		t.Errorf("cap %.1fms: predictor %.2fms, want ≪ %.2fms",
			tightest.CapMS, tightest.PredictorMS, base.PredictorMS)
	}
	if tightest.Features >= base.Features {
		t.Errorf("cap did not drop features: %d vs %d", tightest.Features, base.Features)
	}
	// ...at some energy cost, but never at the cost of deadlines
	// (the margin machinery is untouched).
	if tightest.EnergyPct < base.EnergyPct-1 {
		t.Errorf("capped energy %.1f below uncapped %.1f — dropped feature was free?",
			tightest.EnergyPct, base.EnergyPct)
	}
	if tightest.MissPct > 1 {
		t.Errorf("capped controller misses %.2f%%", tightest.MissPct)
	}
	// Caps are monotone: tighter cap → no larger predictor.
	for i := 1; i < len(pts); i++ {
		if pts[i].PredictorMS > pts[i-1].PredictorMS+0.2 {
			t.Errorf("predictor time not monotone under tightening caps: %+v", pts)
		}
	}
}

func TestMultiTaskStudy(t *testing.T) {
	rows, err := testSuite.RunMultiTask()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].Scenario != "performance" {
		t.Fatalf("rows = %+v", rows)
	}
	perf, pred := rows[0], rows[1]
	if perf.MissPct[0] > 0.5 || perf.MissPct[1] > 0.5 {
		t.Errorf("performance baseline misses: %v", perf.MissPct)
	}
	if pred.EnergyPct > 50 {
		t.Errorf("multi-task prediction energy %.1f%%, want large savings", pred.EnergyPct)
	}
	// Per-task controllers are mutually unaware, so the short-budget
	// task queues behind stretched decoder jobs occasionally — the
	// contention limitation the paper's §7 names. It must stay small.
	if pred.MissPct[0] > 1 {
		t.Errorf("ldecode misses %.2f%%", pred.MissPct[0])
	}
	if pred.MissPct[1] > 5 {
		t.Errorf("xpilot misses %.2f%% — contention out of hand", pred.MissPct[1])
	}
	coord := rows[2]
	if coord.Scenario != "pred+coord" {
		t.Fatalf("third row = %q", coord.Scenario)
	}
	// Coordination trades a little energy for the contention misses.
	if coord.MissPct[1] > pred.MissPct[1] {
		t.Errorf("coordination raised xpilot misses: %.2f vs %.2f", coord.MissPct[1], pred.MissPct[1])
	}
	if coord.EnergyPct > pred.EnergyPct*1.25 {
		t.Errorf("coordination energy %.1f%% too far above plain %.1f%%", coord.EnergyPct, pred.EnergyPct)
	}
}

func TestQuadraticLittleGain(t *testing.T) {
	rows, err := testSuite.RunQuadratic()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper's claim (§3.5/§5.3): higher-order models give
	// "relatively little gain". Quadratic must stay within a tight
	// band of linear on every metric.
	for _, r := range rows {
		if mathAbs(r.QuadMAEms-r.LinearMAEms) > 0.3*r.LinearMAEms+0.05 {
			t.Errorf("%s: quad MAE %.2f far from linear %.2f", r.Benchmark, r.QuadMAEms, r.LinearMAEms)
		}
		if mathAbs(r.QuadEnergyPct-r.LinearEnergyPct) > 2 {
			t.Errorf("%s: quad energy %.1f far from linear %.1f", r.Benchmark, r.QuadEnergyPct, r.LinearEnergyPct)
		}
		if r.QuadMissPct > r.LinearMissPct+0.5 {
			t.Errorf("%s: quad misses %.1f above linear %.1f", r.Benchmark, r.QuadMissPct, r.LinearMissPct)
		}
	}
}

func TestBaselinesPareto(t *testing.T) {
	rows, err := testSuite.RunBaselines("ldecode")
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]BaselineRow{}
	for _, r := range rows {
		byName[r.Governor] = r
	}
	if len(byName) != 7 {
		t.Fatalf("governors = %d", len(byName))
	}
	pred := byName["prediction"]
	// Prediction is the only controller with both near-PID energy and
	// near-performance misses: every other governor is worse on at
	// least one axis by a clear margin.
	if pred.MissPct > 0.5 {
		t.Fatalf("prediction misses %.2f%%", pred.MissPct)
	}
	for _, g := range []string{"powersave", "ondemand", "interactive", "movingavg", "pid"} {
		r := byName[g]
		worseEnergy := r.EnergyPct > pred.EnergyPct+5
		worseMisses := r.MissPct > pred.MissPct+1
		if !worseEnergy && !worseMisses {
			t.Errorf("%s dominates prediction: %.1f%%/%.2f%% vs %.1f%%/%.2f%%",
				g, r.EnergyPct, r.MissPct, pred.EnergyPct, pred.MissPct)
		}
	}
	// The reactive pair lags: both miss far more than prediction.
	if byName["movingavg"].MissPct < 5 || byName["pid"].MissPct < 5 {
		t.Errorf("reactive baselines suspiciously accurate: ma %.1f%%, pid %.1f%%",
			byName["movingavg"].MissPct, byName["pid"].MissPct)
	}
}

// Same seed ⇒ bit-identical experiment results (the repo's determinism
// guarantee).
func TestSuiteDeterminism(t *testing.T) {
	a, err := NewSuite(99).RunFig15()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSuite(99).RunFig15()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for _, g := range GovernorNames {
			if a[i].EnergyPct[g] != b[i].EnergyPct[g] || a[i].MissPct[g] != b[i].MissPct[g] {
				t.Fatalf("row %s governor %s differs across identical suites", a[i].Benchmark, g)
			}
		}
	}
}
