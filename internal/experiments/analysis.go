package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig19Row holds one benchmark's prediction-error box plot (Fig 19).
// Errors are predicted minus actual execution time in milliseconds;
// positive values are over-predictions.
type Fig19Row struct {
	Benchmark string
	Box       stats.BoxPlot
	MeanMS    float64
	NumOut    int
}

// RunFig19 collects prediction errors for the seven millisecond-scale
// benchmarks (the paper reports pocketsphinx's second-scale errors in
// text, not in the plot; RunFig19Pocketsphinx covers it).
func (s *Suite) RunFig19() ([]Fig19Row, error) {
	var rows []Fig19Row
	for _, w := range workload.All() {
		if w.Name == "pocketsphinx" {
			continue
		}
		row, err := s.fig19Row(w)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

// RunFig19Pocketsphinx returns the speech recognizer's error summary,
// reported separately in the paper's text (§5.3).
func (s *Suite) RunFig19Pocketsphinx() (*Fig19Row, error) {
	return s.fig19Row(workload.PocketSphinx())
}

func (s *Suite) fig19Row(w *workload.Workload) (*Fig19Row, error) {
	r, err := s.runOne("prediction", w, sim.Config{})
	if err != nil {
		return nil, err
	}
	var errs []float64
	for _, rec := range r.Records {
		if math.IsNaN(rec.PredictedExecSec) {
			continue
		}
		errs = append(errs, (rec.PredictedExecSec-rec.ExecSec)*1e3)
	}
	box := stats.ComputeBoxPlot(errs)
	return &Fig19Row{
		Benchmark: w.Name,
		Box:       box,
		MeanMS:    stats.Mean(errs),
		NumOut:    len(box.Outliers),
	}, nil
}

// Fig20Point is one α setting of the under-prediction trade-off sweep
// (Fig 20) for ldecode.
type Fig20Point struct {
	Alpha     float64
	EnergyPct float64
	MissPct   float64
}

// RunFig20 sweeps the under-prediction penalty weight α for ldecode,
// retraining the controller at each setting.
func (s *Suite) RunFig20() ([]Fig20Point, error) {
	w := workload.LDecode()
	perf, err := s.runOne("performance", w, sim.Config{})
	if err != nil {
		return nil, err
	}
	var pts []Fig20Point
	for _, alpha := range []float64{1, 10, 100, 1000} {
		ctrl, err := core.Build(w, core.Config{
			Plat:        s.Plat,
			ProfileSeed: s.Seed + 17,
			Switch:      s.Switch,
			Alpha:       alpha,
		})
		if err != nil {
			return nil, err
		}
		r, err := sim.Run(w, ctrl, sim.Config{Plat: s.Plat, Seed: s.Seed + 7})
		if err != nil {
			return nil, err
		}
		pts = append(pts, Fig20Point{
			Alpha:     alpha,
			EnergyPct: 100 * r.EnergyJ / perf.EnergyJ,
			MissPct:   100 * r.MissRate(),
		})
	}
	return pts, nil
}

// Fig21Row compares all four governors with and without idling between
// jobs (Fig 21), normalized to performance WITHOUT idling.
type Fig21Row struct {
	Benchmark string
	// EnergyPct maps governor name → energy; IdleEnergyPct the same
	// with idling enabled.
	EnergyPct     map[string]float64
	IdleEnergyPct map[string]float64
}

// RunFig21 measures the idling study.
func (s *Suite) RunFig21() ([]Fig21Row, error) {
	var rows []Fig21Row
	for _, w := range workload.All() {
		row := Fig21Row{
			Benchmark:     w.Name,
			EnergyPct:     map[string]float64{},
			IdleEnergyPct: map[string]float64{},
		}
		var perfEnergy float64
		for _, name := range GovernorNames {
			r, err := s.runOne(name, w, sim.Config{})
			if err != nil {
				return nil, err
			}
			if name == "performance" {
				perfEnergy = r.EnergyJ
			}
			row.EnergyPct[name] = 100 * r.EnergyJ / perfEnergy
			ri, err := s.runOne(name, w, sim.Config{IdleBetweenJobs: true})
			if err != nil {
				return nil, err
			}
			row.IdleEnergyPct[name] = 100 * ri.EnergyJ / perfEnergy
		}
		rows = append(rows, row)
	}
	// Average row.
	avg := Fig21Row{Benchmark: "average", EnergyPct: map[string]float64{}, IdleEnergyPct: map[string]float64{}}
	for _, name := range GovernorNames {
		for _, r := range rows {
			avg.EnergyPct[name] += r.EnergyPct[name]
			avg.IdleEnergyPct[name] += r.IdleEnergyPct[name]
		}
		avg.EnergyPct[name] /= float64(len(rows))
		avg.IdleEnergyPct[name] /= float64(len(rows))
	}
	rows = append(rows, avg)
	return rows, nil
}

// XPlatRow compares the features selected for the ARM platform with
// those selected for an x86 platform (§4.2).
type XPlatRow struct {
	Benchmark   string
	ARMFeatures []string
	X86Features []string
	// Relation classifies the paper's three observed cases: "same",
	// "subset" (x86 ⊆ ARM), or "differs".
	Relation string
	// Jaccard is |∩| / |∪|.
	Jaccard float64
}

// RunXPlat retrains every benchmark's models on the x86 platform model
// and compares selected feature sets with the ARM ones.
func (s *Suite) RunXPlat() ([]XPlatRow, error) {
	x86 := newX86Suite(s.Seed)
	var rows []XPlatRow
	for _, w := range workload.All() {
		arm, err := s.Controller(w)
		if err != nil {
			return nil, err
		}
		xc, err := x86.Controller(w)
		if err != nil {
			return nil, err
		}
		armSet := arm.SelectedFeatureNames()
		x86Set := xc.SelectedFeatureNames()
		rows = append(rows, XPlatRow{
			Benchmark:   w.Name,
			ARMFeatures: armSet,
			X86Features: x86Set,
			Relation:    setRelation(armSet, x86Set),
			Jaccard:     jaccard(armSet, x86Set),
		})
	}
	return rows, nil
}

func setRelation(arm, x86 []string) string {
	a := toSet(arm)
	x := toSet(x86)
	if len(a) == len(x) && containsAll(a, x) {
		return "same"
	}
	if containsAll(a, x) {
		return "subset"
	}
	return "differs"
}

func toSet(xs []string) map[string]bool {
	m := map[string]bool{}
	for _, x := range xs {
		m[x] = true
	}
	return m
}

func containsAll(super, sub map[string]bool) bool {
	for k := range sub {
		if !super[k] {
			return false
		}
	}
	return true
}

func jaccard(a, b []string) float64 {
	sa, sb := toSet(a), toSet(b)
	inter := 0
	for k := range sa {
		if sb[k] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}
