package experiments

import (
	"math"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig15Row holds one benchmark's normalized energy and deadline-miss
// percentages for the four governors (Fig 15). Energy is normalized to
// the performance governor (= 100).
type Fig15Row struct {
	Benchmark string
	// EnergyPct and MissPct are keyed by governor name.
	EnergyPct map[string]float64
	MissPct   map[string]float64
}

// RunFig15 evaluates all benchmarks under all four governors at the
// paper's budgets (50 ms; 4 s for pocketsphinx).
func (s *Suite) RunFig15() ([]Fig15Row, error) {
	var rows []Fig15Row
	for _, w := range workload.All() {
		row, err := s.fig15Row(w, sim.Config{})
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	rows = append(rows, averageFig15(rows))
	return rows, nil
}

func (s *Suite) fig15Row(w *workload.Workload, cfg sim.Config) (*Fig15Row, error) {
	row := &Fig15Row{
		Benchmark: w.Name,
		EnergyPct: map[string]float64{},
		MissPct:   map[string]float64{},
	}
	var perfEnergy float64
	for _, name := range GovernorNames {
		r, err := s.runOne(name, w, cfg)
		if err != nil {
			return nil, err
		}
		if name == "performance" {
			perfEnergy = r.EnergyJ
		}
		row.EnergyPct[name] = 100 * r.EnergyJ / perfEnergy
		row.MissPct[name] = 100 * r.MissRate()
	}
	return row, nil
}

func averageFig15(rows []Fig15Row) Fig15Row {
	avg := Fig15Row{
		Benchmark: "average",
		EnergyPct: map[string]float64{},
		MissPct:   map[string]float64{},
	}
	for _, name := range GovernorNames {
		for _, r := range rows {
			avg.EnergyPct[name] += r.EnergyPct[name]
			avg.MissPct[name] += r.MissPct[name]
		}
		avg.EnergyPct[name] /= float64(len(rows))
		avg.MissPct[name] /= float64(len(rows))
	}
	return avg
}

// Fig16Sweep holds one benchmark's budget sweep (Fig 16): energy and
// misses per governor at each normalized budget.
type Fig16Sweep struct {
	Benchmark string
	// NormBudgets are the swept multiples of the maximum fmax job time.
	NormBudgets []float64
	// EnergyPct[gov][i] corresponds to NormBudgets[i]; normalized to
	// the performance governor at the same budget.
	EnergyPct map[string][]float64
	MissPct   map[string][]float64
}

// RunFig16 sweeps the time budget from 0.6 to 1.4 of the maximum job
// time for each benchmark.
func (s *Suite) RunFig16(w *workload.Workload) (*Fig16Sweep, error) {
	maxT, err := s.maxJobTimeAtFmax(w)
	if err != nil {
		return nil, err
	}
	sweep := &Fig16Sweep{
		Benchmark: w.Name,
		EnergyPct: map[string][]float64{},
		MissPct:   map[string][]float64{},
	}
	for f := 0.6; f <= 1.401; f += 0.1 {
		sweep.NormBudgets = append(sweep.NormBudgets, f)
		budget := f * maxT
		var perfEnergy float64
		for _, name := range GovernorNames {
			r, err := s.runOne(name, w, sim.Config{BudgetSec: budget})
			if err != nil {
				return nil, err
			}
			if name == "performance" {
				perfEnergy = r.EnergyJ
			}
			sweep.EnergyPct[name] = append(sweep.EnergyPct[name], 100*r.EnergyJ/perfEnergy)
			sweep.MissPct[name] = append(sweep.MissPct[name], 100*r.MissRate())
		}
	}
	return sweep, nil
}

// RunFig16All sweeps every benchmark.
func (s *Suite) RunFig16All() ([]*Fig16Sweep, error) {
	var out []*Fig16Sweep
	for _, w := range workload.All() {
		sw, err := s.RunFig16(w)
		if err != nil {
			return nil, err
		}
		out = append(out, sw)
	}
	return out, nil
}

// Fig17Row reports the prediction controller's average overheads
// (Fig 17): predictor execution and DVFS switching time per job.
type Fig17Row struct {
	Benchmark           string
	PredictorMS, DVFSMS float64
}

// RunFig17 measures average predictor and switch times per benchmark.
func (s *Suite) RunFig17() ([]Fig17Row, error) {
	var rows []Fig17Row
	var sumP, sumD float64
	for _, w := range workload.All() {
		r, err := s.runOne("prediction", w, sim.Config{})
		if err != nil {
			return nil, err
		}
		row := Fig17Row{
			Benchmark:   w.Name,
			PredictorMS: r.MeanPredictorSec() * 1e3,
			DVFSMS:      r.MeanSwitchSec() * 1e3,
		}
		rows = append(rows, row)
		sumP += row.PredictorMS
		sumD += row.DVFSMS
	}
	n := float64(len(rows))
	rows = append(rows, Fig17Row{Benchmark: "average", PredictorMS: sumP / n, DVFSMS: sumD / n})
	return rows, nil
}

// Fig18Row compares the prediction controller against overhead-removed
// variants and the oracle (Fig 18), all normalized to the performance
// governor at the paper budget.
type Fig18Row struct {
	Benchmark string
	// Energy percentages; OraclePct is NaN for benchmarks the paper
	// excludes (uzbl, xpilot — non-deterministic job ordering).
	PredictionPct, NoDVFSPct, NoPredDVFSPct, OraclePct float64
}

// RunFig18 measures the overhead-removal ladder.
func (s *Suite) RunFig18() ([]Fig18Row, error) {
	var rows []Fig18Row
	for _, w := range workload.All() {
		perf, err := s.runOne("performance", w, sim.Config{})
		if err != nil {
			return nil, err
		}
		pred, err := s.runOne("prediction", w, sim.Config{})
		if err != nil {
			return nil, err
		}
		noDVFS, err := s.runOne("prediction", w, sim.Config{DisableSwitchLatency: true})
		if err != nil {
			return nil, err
		}
		noBoth, err := s.runOne("prediction", w, sim.Config{DisableSwitchLatency: true, DisablePredictorCost: true})
		if err != nil {
			return nil, err
		}
		row := Fig18Row{
			Benchmark:     w.Name,
			PredictionPct: 100 * pred.EnergyJ / perf.EnergyJ,
			NoDVFSPct:     100 * noDVFS.EnergyJ / perf.EnergyJ,
			NoPredDVFSPct: 100 * noBoth.EnergyJ / perf.EnergyJ,
			OraclePct:     math.NaN(),
		}
		if w.Name != "uzbl" && w.Name != "xpilot" {
			oracle, err := s.runOne("oracle", w, sim.Config{DisableSwitchLatency: true, DisablePredictorCost: true})
			if err != nil {
				return nil, err
			}
			row.OraclePct = 100 * oracle.EnergyJ / perf.EnergyJ
		}
		rows = append(rows, row)
	}
	// Average (oracle average over the six benchmarks that have one).
	avg := Fig18Row{Benchmark: "average"}
	oracleN := 0.0
	for _, r := range rows {
		avg.PredictionPct += r.PredictionPct
		avg.NoDVFSPct += r.NoDVFSPct
		avg.NoPredDVFSPct += r.NoPredDVFSPct
		if !math.IsNaN(r.OraclePct) {
			avg.OraclePct += r.OraclePct
			oracleN++
		}
	}
	n := float64(len(rows))
	avg.PredictionPct /= n
	avg.NoDVFSPct /= n
	avg.NoPredDVFSPct /= n
	avg.OraclePct /= oracleN
	rows = append(rows, avg)
	return rows, nil
}
