package experiments

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/workload"
)

// One shared suite: controllers train once, experiments reuse them.
var testSuite = NewSuite(1)

func TestTable2MatchesPaperShape(t *testing.T) {
	rows, err := testSuite.RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.AvgMS-r.PaperAvg)/r.PaperAvg > 0.25 {
			t.Errorf("%s: avg %.3g vs paper %.3g", r.Benchmark, r.AvgMS, r.PaperAvg)
		}
		if !(r.MinMS <= r.AvgMS && r.AvgMS <= r.MaxMS) {
			t.Errorf("%s: min/avg/max not ordered: %g %g %g", r.Benchmark, r.MinMS, r.AvgMS, r.MaxMS)
		}
	}
}

func TestFig2ShowsVariation(t *testing.T) {
	s, err := testSuite.RunFig2(250)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.TimeMS) != 250 {
		t.Fatalf("series length %d", len(s.TimeMS))
	}
	sm := stats.Summarize(s.TimeMS)
	// Fig 2's point: large job-to-job variation.
	if sm.Max-sm.Min < 10 {
		t.Errorf("spread %.3g ms too small for Fig 2", sm.Max-sm.Min)
	}
	if sm.Std < 2 {
		t.Errorf("std %.3g ms too small", sm.Std)
	}
}

func TestFig3PIDLag(t *testing.T) {
	s, err := testSuite.RunFig3(250)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.ActualMS) != len(s.ExpectedMS) || len(s.ActualMS) < 200 {
		t.Fatalf("series lengths %d/%d", len(s.ActualMS), len(s.ExpectedMS))
	}
	// The PID expectation must track the PREVIOUS job better than the
	// current one — the reactive lag of Fig 3.
	if s.LagCorrelation <= 0 {
		t.Errorf("lag correlation %.3f, want > 0 (expectation should lag)", s.LagCorrelation)
	}
}

func TestFig9Linearity(t *testing.T) {
	pts, err := testSuite.RunFig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 13 {
		t.Fatalf("points = %d, want 13 levels", len(pts))
	}
	// Check t vs 1/f is nearly perfectly linear: R² of a least-squares
	// line must exceed 0.99 (Fig 9 "t and 1/f do show a linear
	// relationship").
	var xs, ys []float64
	for _, p := range pts {
		xs = append(xs, p.InvFreqNS)
		ys = append(ys, p.AvgMS)
	}
	r2 := linearR2(xs, ys)
	if r2 < 0.99 {
		t.Errorf("R² = %.4f, want ≥ 0.99", r2)
	}
	// Time decreases with frequency.
	for i := 1; i < len(pts); i++ {
		if pts[i].AvgMS >= pts[i-1].AvgMS {
			t.Errorf("avg time not decreasing: level %d", i)
		}
	}
}

func linearR2(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	cov := sxy - sx*sy/n
	vx := sxx - sx*sx/n
	vy := syy - sy*sy/n
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov * cov / (vx * vy)
}

func TestFig11SwitchMatrix(t *testing.T) {
	tbl := testSuite.RunFig11()
	n := len(tbl.FreqMHz)
	if n != 13 {
		t.Fatalf("levels = %d", n)
	}
	// Diagonal free; extremes the most expensive; everything in the
	// sub-10ms range like Fig 11.
	maxV := 0.0
	for i := 0; i < n; i++ {
		if tbl.P95US[i][i] != 0 {
			t.Errorf("diagonal (%d) = %g", i, tbl.P95US[i][i])
		}
		for j := 0; j < n; j++ {
			if i != j && (tbl.P95US[i][j] <= 0 || tbl.P95US[i][j] > 10000) {
				t.Errorf("entry (%d,%d) = %g us out of range", i, j, tbl.P95US[i][j])
			}
			if tbl.P95US[i][j] > maxV {
				maxV = tbl.P95US[i][j]
			}
		}
	}
	if maxV != math.Max(tbl.P95US[0][n-1], tbl.P95US[n-1][0]) {
		t.Errorf("extreme transition is not the most expensive")
	}
}

func TestFig15Headline(t *testing.T) {
	rows, err := testSuite.RunFig15()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 { // 8 benchmarks + average
		t.Fatalf("rows = %d", len(rows))
	}
	avg := rows[len(rows)-1]
	if avg.Benchmark != "average" {
		t.Fatalf("last row is %q", avg.Benchmark)
	}
	// Headline shape (§5.2): prediction saves large energy vs
	// performance with ≈0 misses; interactive misses a little with much
	// higher energy; PID misses a lot.
	if avg.EnergyPct["prediction"] > 60 {
		t.Errorf("prediction energy %.1f%%, want well below performance", avg.EnergyPct["prediction"])
	}
	if avg.MissPct["prediction"] > 0.5 {
		t.Errorf("prediction misses %.2f%%, want ≈0", avg.MissPct["prediction"])
	}
	if avg.EnergyPct["interactive"] < avg.EnergyPct["prediction"]+8 {
		t.Errorf("interactive energy %.1f%% not clearly above prediction %.1f%%",
			avg.EnergyPct["interactive"], avg.EnergyPct["prediction"])
	}
	if avg.MissPct["interactive"] > 5 {
		t.Errorf("interactive misses %.1f%%, paper shows ≈2%%", avg.MissPct["interactive"])
	}
	if avg.MissPct["pid"] < 5 {
		t.Errorf("pid misses %.1f%%, paper shows ≈13%%", avg.MissPct["pid"])
	}
	if math.Abs(avg.EnergyPct["pid"]-avg.EnergyPct["prediction"]) > 8 {
		t.Errorf("pid energy %.1f%% should be near prediction %.1f%% (paper: 1%% apart)",
			avg.EnergyPct["pid"], avg.EnergyPct["prediction"])
	}
	for _, r := range rows {
		if math.Abs(r.EnergyPct["performance"]-100) > 1e-9 || r.MissPct["performance"] > 0.5 {
			t.Errorf("%s: performance row wrong: %v %v", r.Benchmark, r.EnergyPct, r.MissPct)
		}
	}
}

func TestFig16BudgetSweep(t *testing.T) {
	sw, err := testSuite.RunFig16(workload.LDecode())
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.NormBudgets) != 9 {
		t.Fatalf("budgets = %d, want 9", len(sw.NormBudgets))
	}
	pe := sw.EnergyPct["prediction"]
	pm := sw.MissPct["prediction"]
	// Longer budgets save more energy: last point well below first.
	if pe[len(pe)-1] >= pe[0]-5 {
		t.Errorf("prediction energy does not fall with budget: %.1f → %.1f", pe[0], pe[len(pe)-1])
	}
	// At generous budgets prediction misses nothing.
	if pm[len(pm)-1] > 0.5 {
		t.Errorf("misses at 1.4 budget: %.2f%%", pm[len(pm)-1])
	}
	// Below budget 1.0, even the performance governor misses; the
	// prediction governor's misses stay close to that floor ("most of
	// the deadline misses are ones that are impossible to meet").
	for i, f := range sw.NormBudgets {
		if f < 0.95 {
			perfMiss := sw.MissPct["performance"][i]
			if perfMiss <= 0 {
				t.Errorf("budget %.1f: performance misses 0, expected some", f)
			}
			if pm[i] > perfMiss+12 {
				t.Errorf("budget %.1f: prediction misses %.1f%% far above performance %.1f%%",
					f, pm[i], perfMiss)
			}
		}
	}
}

func TestFig17Overheads(t *testing.T) {
	rows, err := testSuite.RunFig17()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	var sphinx, others float64
	var nOthers int
	for _, r := range rows[:8] {
		if r.PredictorMS < 0 || r.DVFSMS < 0 {
			t.Errorf("%s: negative overhead", r.Benchmark)
		}
		if r.Benchmark == "pocketsphinx" {
			sphinx = r.PredictorMS
		} else {
			others += r.PredictorMS
			nOthers++
		}
		// Switch overhead is sub-3ms everywhere (Fig 17's scale).
		if r.DVFSMS > 3 {
			t.Errorf("%s: switch overhead %.2f ms too large", r.Benchmark, r.DVFSMS)
		}
	}
	// pocketsphinx's predictor is the most expensive by far (Fig 17
	// shows ~24 ms vs ≤3 ms for the rest).
	if sphinx < 3*(others/float64(nOthers)) {
		t.Errorf("pocketsphinx predictor %.2f ms not dominant (others avg %.2f ms)",
			sphinx, others/float64(nOthers))
	}
	// The rest stay cheap relative to a 50 ms budget.
	if others/float64(nOthers) > 3 {
		t.Errorf("average predictor overhead %.2f ms too large", others/float64(nOthers))
	}
}

func TestFig18OverheadLadder(t *testing.T) {
	rows, err := testSuite.RunFig18()
	if err != nil {
		t.Fatal(err)
	}
	avg := rows[len(rows)-1]
	// Removing overheads can only help (allowing tiny numeric slack).
	if avg.NoDVFSPct > avg.PredictionPct+0.5 {
		t.Errorf("w/o dvfs %.1f%% above prediction %.1f%%", avg.NoDVFSPct, avg.PredictionPct)
	}
	if avg.NoPredDVFSPct > avg.NoDVFSPct+0.5 {
		t.Errorf("w/o pred+dvfs %.1f%% above w/o dvfs %.1f%%", avg.NoPredDVFSPct, avg.NoDVFSPct)
	}
	// Oracle with the same overhead removal is the floor — compared
	// over the six benchmarks that have an oracle (the averages in the
	// row mix different subsets).
	var oSum, nSum float64
	var oN int
	for _, r := range rows[:8] {
		if math.IsNaN(r.OraclePct) {
			continue
		}
		oSum += r.OraclePct
		nSum += r.NoPredDVFSPct
		oN++
	}
	if oSum/float64(oN) > nSum/float64(oN)+0.5 {
		t.Errorf("oracle avg %.1f%% above w/o pred+dvfs avg %.1f%% (same subset)",
			oSum/float64(oN), nSum/float64(oN))
	}
	// Oracle is absent for uzbl and xpilot, as in the paper.
	for _, r := range rows[:8] {
		if r.Benchmark == "uzbl" || r.Benchmark == "xpilot" {
			if !math.IsNaN(r.OraclePct) {
				t.Errorf("%s: oracle should be absent", r.Benchmark)
			}
		} else if math.IsNaN(r.OraclePct) {
			t.Errorf("%s: oracle missing", r.Benchmark)
		}
	}
}

func TestFig19OverPredictionSkew(t *testing.T) {
	rows, err := testSuite.RunFig19()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7 (pocketsphinx separate)", len(rows))
	}
	overSkewed := 0
	for _, r := range rows {
		if r.MeanMS > 0 {
			overSkewed++
		}
		if !(r.Box.Q1 <= r.Box.Median && r.Box.Median <= r.Box.Q3) {
			t.Errorf("%s: box not ordered", r.Benchmark)
		}
	}
	// "the prediction skews toward over-prediction with average errors
	// greater than 0" — allow one exception.
	if overSkewed < 6 {
		t.Errorf("only %d/7 benchmarks skew to over-prediction", overSkewed)
	}
	ps, err := testSuite.RunFig19Pocketsphinx()
	if err != nil {
		t.Fatal(err)
	}
	if ps.MeanMS <= 0 {
		t.Errorf("pocketsphinx mean error %.3g ms, paper reports large over-prediction", ps.MeanMS)
	}
}

func TestFig20AlphaTradeoff(t *testing.T) {
	pts, err := testSuite.RunFig20()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	lo, hi := pts[0], pts[len(pts)-1] // α=1 vs α=1000
	if lo.Alpha != 1 || hi.Alpha != 1000 {
		t.Fatalf("alpha order wrong: %v", pts)
	}
	// Decreasing α trades misses for energy (Fig 20).
	if lo.EnergyPct > hi.EnergyPct+0.5 {
		t.Errorf("energy at α=1 (%.1f%%) above α=1000 (%.1f%%)", lo.EnergyPct, hi.EnergyPct)
	}
	if lo.MissPct < hi.MissPct {
		t.Errorf("misses at α=1 (%.2f%%) below α=1000 (%.2f%%)", lo.MissPct, hi.MissPct)
	}
	if hi.MissPct > 0.5 {
		t.Errorf("α=1000 misses %.2f%%, want ≈0", hi.MissPct)
	}
}

func TestFig21Idling(t *testing.T) {
	rows, err := testSuite.RunFig21()
	if err != nil {
		t.Fatal(err)
	}
	avg := rows[len(rows)-1]
	// Idling helps every governor on average, performance the most.
	for _, name := range GovernorNames {
		if avg.IdleEnergyPct[name] > avg.EnergyPct[name]+0.5 {
			t.Errorf("%s: idling raised energy %.1f → %.1f", name,
				avg.EnergyPct[name], avg.IdleEnergyPct[name])
		}
	}
	perfGain := avg.EnergyPct["performance"] - avg.IdleEnergyPct["performance"]
	predGain := avg.EnergyPct["prediction"] - avg.IdleEnergyPct["prediction"]
	if perfGain < predGain {
		t.Errorf("performance gains least from idling? perf %.1f vs pred %.1f", perfGain, predGain)
	}
	// Prediction+idle still beats performance+idle on average (§5.5).
	if avg.IdleEnergyPct["prediction"] >= avg.IdleEnergyPct["performance"] {
		t.Errorf("prediction+idle %.1f%% not below performance+idle %.1f%%",
			avg.IdleEnergyPct["prediction"], avg.IdleEnergyPct["performance"])
	}
}

func TestXPlatFeatureStability(t *testing.T) {
	rows, err := testSuite.RunXPlat()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	stable := 0
	jacc := 0.0
	for _, r := range rows {
		if r.Relation == "same" || r.Relation == "subset" {
			stable++
		}
		jacc += r.Jaccard
	}
	// §4.2: "for all but three of the benchmarks ... exactly the same";
	// we require a majority stable and high average overlap.
	if stable < 5 {
		t.Errorf("only %d/8 benchmarks feature-stable across platforms", stable)
	}
	if jacc/8 < 0.6 {
		t.Errorf("average Jaccard %.2f too low", jacc/8)
	}
}

// §2.2's motivating numbers: the average-sized static level misses
// massively; the worst-case-sized level wastes energy; per-job
// prediction beats both on the Pareto front.
func TestStaticLevelsMotivation(t *testing.T) {
	rows, err := testSuite.RunStatic()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	avg, worst, pred := rows[0], rows[1], rows[2]
	if avg.MissPct < 20 {
		t.Errorf("average-sized level misses %.1f%%, expected massive misses", avg.MissPct)
	}
	if worst.MissPct > 0.5 {
		t.Errorf("worst-case level misses %.1f%%, want ≈0", worst.MissPct)
	}
	if pred.EnergyPct >= worst.EnergyPct {
		t.Errorf("prediction energy %.1f%% not below worst-case static %.1f%%",
			pred.EnergyPct, worst.EnergyPct)
	}
	if pred.MissPct > 0.5 {
		t.Errorf("prediction misses %.2f%%", pred.MissPct)
	}
}

// §5.1: "we saw similar trends when running on the A15 core".
func TestA15Trends(t *testing.T) {
	rows, err := testSuite.RunA15Trends()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 2 budgets x 4 governors", len(rows))
	}
	pick := func(budgetMS float64, g string) A15Row {
		for _, r := range rows {
			if r.BudgetMS == budgetMS && r.Governor == g {
				return r
			}
		}
		t.Fatalf("missing row %g/%s", budgetMS, g)
		return A15Row{}
	}
	// Paper budget (50 ms): prediction saves most (or ties) and misses
	// nothing — the trend transfers.
	pred50 := pick(50, "prediction")
	if pred50.EnergyPct > 35 || pred50.MissPct > 0.5 {
		t.Errorf("A15@50ms prediction = %.1f%%/%.2f%%", pred50.EnergyPct, pred50.MissPct)
	}
	for _, g := range []string{"interactive", "pid"} {
		if r := pick(50, g); r.EnergyPct < pred50.EnergyPct-2 {
			t.Errorf("A15@50ms %s energy %.1f%% below prediction %.1f%%", g, r.EnergyPct, pred50.EnergyPct)
		}
	}
	// Tight budget (20 ms): prediction alone is miss-free; the PID
	// undercuts its energy only by missing.
	pred20 := pick(20, "prediction")
	if pred20.MissPct > 0.5 {
		t.Errorf("A15@20ms prediction misses %.2f%%", pred20.MissPct)
	}
	if pid := pick(20, "pid"); pid.MissPct < 2 {
		t.Errorf("A15@20ms pid misses %.1f%%, expected the reactive lag to transfer", pid.MissPct)
	}
}
