package experiments

import (
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workload"
)

// HeteroPoint compares the prediction controller on the A7-only
// platform against the heterogeneous big.LITTLE platform at one
// normalized budget. Energy is normalized to the A7 performance
// governor at the same budget, so values above 100 mean "spent more
// than the little core flat-out" — the price of making deadlines the
// little core cannot make.
type HeteroPoint struct {
	NormBudget               float64
	A7EnergyPct, A7MissPct   float64
	BigEnergyPct, BigMissPct float64
	// EAEnergyPct/EAMissPct use energy-aware level selection instead
	// of the paper's minimum-frequency rule, which is suboptimal
	// across cluster boundaries (a slow big-core point can be feasible
	// yet dearer than a faster little-core point).
	EAEnergyPct, EAMissPct float64
	// A15Share is the fraction of jobs the big.LITTLE controller ran
	// on the A15 cluster.
	A15Share float64
}

// RunHetero exercises §3.5's heterogeneous-cores extension on ldecode:
// below normalized budget 1.0 the A7 cannot make every deadline at any
// frequency, while the big.LITTLE operating-point grid lets the same
// unchanged prediction logic migrate heavy frames to the A15.
func (s *Suite) RunHetero() ([]HeteroPoint, error) {
	w := workload.LDecode()
	maxT, err := s.maxJobTimeAtFmax(w)
	if err != nil {
		return nil, err
	}
	bl := NewSuiteOn(platform.BigLITTLE(), s.Seed)
	blEA, err := core.Build(w, core.Config{
		Plat:        bl.Plat,
		ProfileSeed: s.Seed + 17,
		Switch:      bl.Switch,
		EnergyAware: true,
	})
	if err != nil {
		return nil, err
	}
	var pts []HeteroPoint
	for _, f := range []float64{0.5, 0.6, 0.8, 1.0, 1.2} {
		budget := f * maxT
		perf, err := s.runOne("performance", w, sim.Config{BudgetSec: budget})
		if err != nil {
			return nil, err
		}
		a7, err := s.runOne("prediction", w, sim.Config{BudgetSec: budget})
		if err != nil {
			return nil, err
		}
		big, err := bl.runOne("prediction", w, sim.Config{BudgetSec: budget})
		if err != nil {
			return nil, err
		}
		ea, err := sim.Run(w, blEA, sim.Config{Plat: bl.Plat, Seed: s.Seed + 7, BudgetSec: budget})
		if err != nil {
			return nil, err
		}
		a15 := 0
		for _, rec := range big.Records {
			if bl.Plat.Levels[rec.LevelIdx].Cluster == "A15" {
				a15++
			}
		}
		pts = append(pts, HeteroPoint{
			NormBudget:   f,
			A7EnergyPct:  100 * a7.EnergyJ / perf.EnergyJ,
			A7MissPct:    100 * a7.MissRate(),
			BigEnergyPct: 100 * big.EnergyJ / perf.EnergyJ,
			BigMissPct:   100 * big.MissRate(),
			EAEnergyPct:  100 * ea.EnergyJ / perf.EnergyJ,
			EAMissPct:    100 * ea.MissRate(),
			A15Share:     float64(a15) / float64(len(big.Records)),
		})
	}
	return pts, nil
}
