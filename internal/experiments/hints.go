package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// HintsRow compares the automatic control-flow-only controller with
// one that also receives the programmer's hint features (§3.5) on a
// benchmark whose cost has a value-dependent component.
type HintsRow struct {
	Benchmark string
	// Energy normalized to the performance governor.
	BaseEnergyPct, HintEnergyPct float64
	BaseMissPct, HintMissPct     float64
	// Mean absolute prediction error over the run [ms].
	BaseMAEms, HintMAEms float64
}

// RunHints evaluates hint features on the three benchmarks whose
// execution time has a component no control-flow feature can see
// (ldecode's residual coefficients, pocketsphinx's spectral energy,
// rijndael's plaintext structure).
func (s *Suite) RunHints() ([]HintsRow, error) {
	var rows []HintsRow
	for _, name := range []string{"ldecode", "pocketsphinx", "rijndael"} {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		perf, err := s.runOne("performance", w, sim.Config{})
		if err != nil {
			return nil, err
		}
		base, err := s.Controller(w)
		if err != nil {
			return nil, err
		}
		hinted, err := core.Build(w, core.Config{
			Plat:        s.Plat,
			ProfileSeed: s.Seed + 17,
			Switch:      s.Switch,
			UseHints:    true,
		})
		if err != nil {
			return nil, err
		}
		rBase, err := sim.Run(w, base, sim.Config{Plat: s.Plat, Seed: s.Seed + 7})
		if err != nil {
			return nil, err
		}
		rHint, err := sim.Run(w, hinted, sim.Config{Plat: s.Plat, Seed: s.Seed + 7})
		if err != nil {
			return nil, err
		}
		rows = append(rows, HintsRow{
			Benchmark:     name,
			BaseEnergyPct: 100 * rBase.EnergyJ / perf.EnergyJ,
			HintEnergyPct: 100 * rHint.EnergyJ / perf.EnergyJ,
			BaseMissPct:   100 * rBase.MissRate(),
			HintMissPct:   100 * rHint.MissRate(),
			BaseMAEms:     meanAbsErrMS(rBase),
			HintMAEms:     meanAbsErrMS(rHint),
		})
	}
	return rows, nil
}

func meanAbsErrMS(r *sim.Result) float64 {
	sum, n := 0.0, 0
	for _, rec := range r.Records {
		if math.IsNaN(rec.PredictedExecSec) {
			continue
		}
		sum += math.Abs(rec.PredictedExecSec-rec.ExecSec) * 1e3
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// OverheadCapPoint is one predictor-time cap (§3.5's overhead-aware
// feature selection) evaluated on pocketsphinx, the benchmark with by
// far the costliest slice (Fig 17).
type OverheadCapPoint struct {
	// CapMS is the configured limit (0 = uncapped).
	CapMS float64
	// PredictorMS is the measured average predictor time.
	PredictorMS float64
	// Features is the number of feature sites the slice computes.
	Features  int
	EnergyPct float64
	MissPct   float64
}

// RunOverheadCap sweeps the predictor-time cap for pocketsphinx.
func (s *Suite) RunOverheadCap() ([]OverheadCapPoint, error) {
	w, err := workload.ByName("pocketsphinx")
	if err != nil {
		return nil, err
	}
	perf, err := s.runOne("performance", w, sim.Config{})
	if err != nil {
		return nil, err
	}
	var pts []OverheadCapPoint
	for _, capMS := range []float64{0, 20, 5, 1} {
		ctrl, err := core.Build(w, core.Config{
			Plat:            s.Plat,
			ProfileSeed:     s.Seed + 17,
			Switch:          s.Switch,
			MaxPredictorSec: capMS * 1e-3,
		})
		if err != nil {
			return nil, err
		}
		r, err := sim.Run(w, ctrl, sim.Config{Plat: s.Plat, Seed: s.Seed + 7})
		if err != nil {
			return nil, err
		}
		pts = append(pts, OverheadCapPoint{
			CapMS:       capMS,
			PredictorMS: r.MeanPredictorSec() * 1e3,
			Features:    len(ctrl.Slice.NeededFIDs),
			EnergyPct:   100 * r.EnergyJ / perf.EnergyJ,
			MissPct:     100 * r.MissRate(),
		})
	}
	return pts, nil
}

// QuadraticRow compares the paper's linear model with a quadratic
// extension (§3.5). The paper: "Higher-order or non-polynomial models
// may provide better accuracy ... we saw relatively little gain to be
// had from improved prediction" — this experiment re-tests that claim.
type QuadraticRow struct {
	Benchmark                      string
	LinearMAEms, QuadMAEms         float64
	LinearEnergyPct, QuadEnergyPct float64
	LinearMissPct, QuadMissPct     float64
}

// RunQuadratic evaluates quadratic feature expansion on three
// benchmarks spanning linear (sha), mildly nonlinear (ldecode), and
// dispatch-driven (uzbl) time structure.
func (s *Suite) RunQuadratic() ([]QuadraticRow, error) {
	var rows []QuadraticRow
	for _, name := range []string{"sha", "ldecode", "uzbl"} {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		perf, err := s.runOne("performance", w, sim.Config{})
		if err != nil {
			return nil, err
		}
		lin, err := s.Controller(w)
		if err != nil {
			return nil, err
		}
		quad, err := core.Build(w, core.Config{
			Plat:        s.Plat,
			ProfileSeed: s.Seed + 17,
			Switch:      s.Switch,
			Quadratic:   true,
		})
		if err != nil {
			return nil, err
		}
		rLin, err := sim.Run(w, lin, sim.Config{Plat: s.Plat, Seed: s.Seed + 7})
		if err != nil {
			return nil, err
		}
		rQuad, err := sim.Run(w, quad, sim.Config{Plat: s.Plat, Seed: s.Seed + 7})
		if err != nil {
			return nil, err
		}
		rows = append(rows, QuadraticRow{
			Benchmark:       name,
			LinearMAEms:     meanAbsErrMS(rLin),
			QuadMAEms:       meanAbsErrMS(rQuad),
			LinearEnergyPct: 100 * rLin.EnergyJ / perf.EnergyJ,
			QuadEnergyPct:   100 * rQuad.EnergyJ / perf.EnergyJ,
			LinearMissPct:   100 * rLin.MissRate(),
			QuadMissPct:     100 * rQuad.MissRate(),
		})
	}
	return rows, nil
}
