package experiments

import (
	"repro/internal/governor"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Table2Row reproduces one row of Table 2: job-time statistics at
// maximum frequency.
type Table2Row struct {
	Benchmark, Desc, Task        string
	MinMS, AvgMS, MaxMS          float64
	PaperMin, PaperAvg, PaperMax float64
}

// RunTable2 measures min/avg/max job times at maximum frequency for
// every benchmark (Table 2).
func (s *Suite) RunTable2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, w := range workload.All() {
		r, err := s.runOne("performance", w, sim.Config{})
		if err != nil {
			return nil, err
		}
		sm := stats.Summarize(r.ExecTimes())
		rows = append(rows, Table2Row{
			Benchmark: w.Name, Desc: w.Desc, Task: w.TaskDesc,
			MinMS: sm.Min * 1e3, AvgMS: sm.Mean * 1e3, MaxMS: sm.Max * 1e3,
			PaperMin: w.RefMinMS, PaperAvg: w.RefAvgMS, PaperMax: w.RefMaxMS,
		})
	}
	return rows, nil
}

// Fig2Series reproduces Fig 2: per-job (frame) execution time for
// ldecode at maximum frequency.
type Fig2Series struct {
	JobIndex []int
	TimeMS   []float64
}

// RunFig2 captures ldecode's per-frame time series.
func (s *Suite) RunFig2(jobs int) (*Fig2Series, error) {
	w := workload.LDecode()
	r, err := s.runOne("performance", w, sim.Config{Jobs: jobs})
	if err != nil {
		return nil, err
	}
	out := &Fig2Series{}
	for _, rec := range r.Records {
		out.JobIndex = append(out.JobIndex, rec.Index)
		out.TimeMS = append(out.TimeMS, rec.ExecSec*1e3)
	}
	return out, nil
}

// Fig3Series reproduces Fig 3: actual job times against the execution
// time a PID controller expected, showing the reactive lag.
type Fig3Series struct {
	JobIndex   []int
	ActualMS   []float64
	ExpectedMS []float64
	// LagCorrelation is corr(expected[i], actual[i-1]) minus
	// corr(expected[i], actual[i]); positive means the controller
	// tracks the previous job better than the current one — the lag.
	LagCorrelation float64
}

// RunFig3 reproduces the paper's setup: job execution times at
// maximum frequency, against the execution time a PID predictor
// expects for each job from the history of the previous ones.
func (s *Suite) RunFig3(jobs int) (*Fig3Series, error) {
	w := workload.LDecode()
	r, err := s.runOne("performance", w, sim.Config{Jobs: jobs})
	if err != nil {
		return nil, err
	}
	out := &Fig3Series{}
	var exp, act, actPrev []float64
	// Standalone PID filter over the series (the control law of the
	// pid governor, without the DVFS feedback loop).
	const kp, ki, kd = 0.5, 0.04, 0.1
	est := r.Records[0].ExecSec
	integral, prevErr := 0.0, 0.0
	for i := 1; i < len(r.Records); i++ {
		rec := r.Records[i]
		out.JobIndex = append(out.JobIndex, rec.Index)
		out.ActualMS = append(out.ActualMS, rec.ExecSec*1e3)
		out.ExpectedMS = append(out.ExpectedMS, est*1e3)
		exp = append(exp, est)
		act = append(act, rec.ExecSec)
		actPrev = append(actPrev, r.Records[i-1].ExecSec)
		e := rec.ExecSec - est
		integral += e
		est += kp*e + ki*integral + kd*(e-prevErr)
		prevErr = e
	}
	out.LagCorrelation = corr(exp, actPrev) - corr(exp, act)
	return out, nil
}

func corr(a, b []float64) float64 {
	n := len(a)
	if n == 0 || n != len(b) {
		return 0
	}
	sa, sb := stats.Summarize(a), stats.Summarize(b)
	if sa.Std == 0 || sb.Std == 0 {
		return 0
	}
	s := 0.0
	for i := range a {
		s += (a[i] - sa.Mean) * (b[i] - sb.Mean)
	}
	return s / float64(n) / (sa.Std * sb.Std)
}

// Fig9Point is one point of Fig 9: average job time versus 1/f.
type Fig9Point struct {
	FreqMHz   float64
	InvFreqNS float64 // 1/f in nanoseconds, the paper's x-axis
	AvgMS     float64
}

// RunFig9 measures ldecode's average job time at every DVFS level,
// verifying the linear t–1/f relationship the DVFS model assumes.
func (s *Suite) RunFig9() ([]Fig9Point, error) {
	w := workload.LDecode()
	var pts []Fig9Point
	for idx := range s.Plat.Levels {
		lvl := s.Plat.Levels[idx]
		g := &governor.Fixed{Level: lvl}
		cfg := sim.Config{Plat: s.Plat, Seed: s.Seed + 7, Jobs: 120,
			// Long budget so queueing does not clip slow levels.
			BudgetSec: 1.0}
		r, err := sim.Run(w, g, cfg)
		if err != nil {
			return nil, err
		}
		pts = append(pts, Fig9Point{
			FreqMHz:   lvl.FreqHz / 1e6,
			InvFreqNS: 1e9 / lvl.FreqHz,
			AvgMS:     stats.Mean(r.ExecTimes()) * 1e3,
		})
	}
	return pts, nil
}

// Fig11Table reproduces Fig 11: the 95th-percentile DVFS switching
// time for every start/end frequency pair.
type Fig11Table struct {
	FreqMHz []float64
	// P95US[from][to] is in microseconds.
	P95US [][]float64
}

// RunFig11 returns the measured switch-time matrix.
func (s *Suite) RunFig11() *Fig11Table {
	out := &Fig11Table{}
	n := s.Plat.NumLevels()
	for _, l := range s.Plat.Levels {
		out.FreqMHz = append(out.FreqMHz, l.FreqHz/1e6)
	}
	out.P95US = make([][]float64, n)
	for i := 0; i < n; i++ {
		out.P95US[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			out.P95US[i][j] = s.Switch.Lookup(i, j) * 1e6
		}
	}
	return out
}

// StaticRow quantifies §2.2's motivating argument for ldecode: a
// single DVFS level sized for the average execution time misses
// deadlines; one sized for the worst case saves almost nothing.
type StaticRow struct {
	Policy    string
	LevelMHz  float64
	EnergyPct float64
	MissPct   float64
}

// RunStatic evaluates average-sized and worst-case-sized static levels
// against the per-job predictive controller.
func (s *Suite) RunStatic() ([]StaticRow, error) {
	w := workload.LDecode()
	perf, err := s.runOne("performance", w, sim.Config{})
	if err != nil {
		return nil, err
	}
	// Characterize job times at fmax (noise-free) to size the levels.
	probe, err := s.runOne("performance", w, sim.Config{NoiseSigma: -1})
	if err != nil {
		return nil, err
	}
	sm := stats.Summarize(probe.ExecTimes())
	budget := w.DefaultBudgetSec
	fmax := s.Plat.MaxLevel().EffFreqHz()
	// A job of duration t at fmax needs f ≥ t·fmax/budget (pure-CPU
	// approximation, as a §2.2-style back-of-envelope would do).
	avgLevel := s.Plat.LevelAtOrAbove(sm.Mean * fmax / budget)
	worstLevel := s.Plat.LevelAtOrAbove(sm.Max * fmax / budget)

	var rows []StaticRow
	for _, c := range []struct {
		name  string
		level platform.Level
	}{
		{"static-average", avgLevel},
		{"static-worstcase", worstLevel},
	} {
		r, err := sim.Run(w, &governor.Fixed{Level: c.level},
			sim.Config{Plat: s.Plat, Seed: s.Seed + 7})
		if err != nil {
			return nil, err
		}
		rows = append(rows, StaticRow{
			Policy:    c.name,
			LevelMHz:  c.level.FreqHz / 1e6,
			EnergyPct: 100 * r.EnergyJ / perf.EnergyJ,
			MissPct:   100 * r.MissRate(),
		})
	}
	pred, err := s.runOne("prediction", w, sim.Config{})
	if err != nil {
		return nil, err
	}
	rows = append(rows, StaticRow{
		Policy:    "prediction",
		EnergyPct: 100 * pred.EnergyJ / perf.EnergyJ,
		MissPct:   100 * pred.MissRate(),
	})
	return rows, nil
}

// A15Row is one governor's result on the standalone A15 (big) cluster;
// the paper reports "similar trends when running on the A15 core"
// (§5.1) without a figure.
type A15Row struct {
	Governor  string
	BudgetMS  float64
	EnergyPct float64
	MissPct   float64
}

// RunA15Trends evaluates the paper's four governors on the A15 cluster
// for ldecode at two budgets. At the paper's 50 ms even the cluster's
// lowest operating point meets every frame, so all deadline-aware
// governors saturate there and the trends transfer trivially
// (prediction best or tied, no misses). A tight 20 ms budget stresses
// the cluster's range and shows the conservatism trade on the big
// core's steep V² curve: prediction alone stays miss-free, paying for
// it with margin headroom, while the reactive PID undercuts it by
// missing deadlines.
func (s *Suite) RunA15Trends() ([]A15Row, error) {
	a15 := NewSuiteOn(platform.ODROIDXU3A15(), s.Seed)
	w := workload.LDecode()
	var rows []A15Row
	for _, budget := range []float64{0.050, 0.020} {
		var perfEnergy float64
		for _, g := range GovernorNames {
			r, err := a15.runOne(g, w, sim.Config{BudgetSec: budget})
			if err != nil {
				return nil, err
			}
			if g == "performance" {
				perfEnergy = r.EnergyJ
			}
			rows = append(rows, A15Row{
				Governor:  g,
				BudgetMS:  budget * 1e3,
				EnergyPct: 100 * r.EnergyJ / perfEnergy,
				MissPct:   100 * r.MissRate(),
			})
		}
	}
	return rows, nil
}
