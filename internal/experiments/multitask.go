package experiments

import (
	"repro/internal/core"
	"repro/internal/governor"
	"repro/internal/sim"
	"repro/internal/workload"
)

// MultiTaskRow compares a two-task system (a 10 fps video decoder plus
// a 20 fps game overlay sharing the core — §4.1's multiple
// non-overlapping tasks) under per-task prediction controllers versus
// the performance governor.
type MultiTaskRow struct {
	Scenario string
	// Shared energy, normalized to the performance run.
	EnergyPct float64
	// Per-task deadline misses [%], in task order (ldecode, xpilot).
	MissPct []float64
}

// RunMultiTask measures the two-task scenario.
func (s *Suite) RunMultiTask() ([]MultiTaskRow, error) {
	ld := workload.LDecode()
	xp := workload.XPilot()
	mkTasks := func(govLD, govXP governor.Governor) []sim.TaskSpec {
		return []sim.TaskSpec{
			{W: ld, Gov: govLD, BudgetSec: 0.100, PeriodSec: 0.100, Jobs: 200},
			{W: xp, Gov: govXP, BudgetSec: 0.050, PeriodSec: 0.050, OffsetSec: 0.037, Jobs: 400},
		}
	}
	perf, err := sim.RunMulti(
		mkTasks(&governor.Performance{Plat: s.Plat}, &governor.Performance{Plat: s.Plat}),
		sim.Config{Plat: s.Plat, Seed: s.Seed + 7})
	if err != nil {
		return nil, err
	}
	ldCtrl, err := s.Controller(ld)
	if err != nil {
		return nil, err
	}
	xpCtrl, err := s.Controller(xp)
	if err != nil {
		return nil, err
	}
	pred, err := sim.RunMulti(mkTasks(ldCtrl, xpCtrl),
		sim.Config{Plat: s.Plat, Seed: s.Seed + 7})
	if err != nil {
		return nil, err
	}
	// Contention-aware coordination (§7 extension): fresh controllers,
	// wrapped so each reserves wall time for the other's releases.
	ldC, err := core.Build(workload.LDecode(), core.Config{Plat: s.Plat, ProfileSeed: s.Seed + 17, Switch: s.Switch})
	if err != nil {
		return nil, err
	}
	xpC, err := core.Build(workload.XPilot(), core.Config{Plat: s.Plat, ProfileSeed: s.Seed + 17, Switch: s.Switch})
	if err != nil {
		return nil, err
	}
	coordn := governor.NewCoordinator()
	coord, err := sim.RunMulti(mkTasks(
		coordn.Wrap(ldC, 0.100, 0),
		coordn.Wrap(xpC, 0.050, 0.037)),
		sim.Config{Plat: s.Plat, Seed: s.Seed + 7})
	if err != nil {
		return nil, err
	}
	rows := []MultiTaskRow{
		{Scenario: "performance", EnergyPct: 100,
			MissPct: []float64{100 * perf.PerTask[0].MissRate(), 100 * perf.PerTask[1].MissRate()}},
		{Scenario: "prediction", EnergyPct: 100 * pred.EnergyJ / perf.EnergyJ,
			MissPct: []float64{100 * pred.PerTask[0].MissRate(), 100 * pred.PerTask[1].MissRate()}},
		{Scenario: "pred+coord", EnergyPct: 100 * coord.EnergyJ / perf.EnergyJ,
			MissPct: []float64{100 * coord.PerTask[0].MissRate(), 100 * coord.PerTask[1].MissRate()}},
	}
	return rows, nil
}

// BaselineRow is one governor's result in the extended baseline sweep.
type BaselineRow struct {
	Governor  string
	EnergyPct float64
	MissPct   float64
}

// AllGovernors is the extended baseline set: the paper's four plus the
// extra kernel policies (powersave, ondemand) and the moving-average
// reactive controller its related work cites (§6.1).
var AllGovernors = []string{
	"performance", "powersave", "ondemand", "interactive",
	"movingavg", "pid", "prediction",
}

// RunBaselines evaluates every governor on one benchmark at the paper
// budget, normalized to the performance governor.
func (s *Suite) RunBaselines(name string) ([]BaselineRow, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	var rows []BaselineRow
	var perfEnergy float64
	for _, g := range AllGovernors {
		r, err := s.runOne(g, w, sim.Config{})
		if err != nil {
			return nil, err
		}
		if g == "performance" {
			perfEnergy = r.EnergyJ
		}
		rows = append(rows, BaselineRow{
			Governor:  g,
			EnergyPct: 100 * r.EnergyJ / perfEnergy,
			MissPct:   100 * r.MissRate(),
		})
	}
	return rows, nil
}
