package experiments

import (
	"repro/internal/governor"
	"repro/internal/sim"
	"repro/internal/workload"
)

// PlacementModes lists the §4.3 predictor scheduling options in
// presentation order.
var PlacementModes = []string{"sequential", "pipelined", "parallel"}

func placementOf(name string) sim.Placement {
	switch name {
	case "pipelined":
		return sim.Pipelined
	case "parallel":
		return sim.Parallel
	}
	return sim.Sequential
}

// PlacementRow compares the prediction controller under the three
// predictor placements of §4.3 at a tight budget (1.0× the maximum
// job time), where predictor and switch overheads actually bite.
// Energy is normalized to the performance governor at the same budget.
type PlacementRow struct {
	Benchmark  string
	KnownAhead bool
	EnergyPct  map[string]float64
	MissPct    map[string]float64
}

// RunPlacement evaluates sequential vs. pipelined vs. parallel
// predictor execution. Workloads whose inputs are not known one job
// ahead (interactive input) cannot pipeline — the simulator falls back
// to sequential for them, as the paper prescribes.
func (s *Suite) RunPlacement() ([]PlacementRow, error) {
	var rows []PlacementRow
	for _, w := range workload.All() {
		maxT, err := s.maxJobTimeAtFmax(w)
		if err != nil {
			return nil, err
		}
		budget := maxT // normalized budget 1.0: the tight regime
		perf, err := s.runOne("performance", w, sim.Config{BudgetSec: budget})
		if err != nil {
			return nil, err
		}
		row := PlacementRow{
			Benchmark:  w.Name,
			KnownAhead: w.InputsKnownAhead,
			EnergyPct:  map[string]float64{},
			MissPct:    map[string]float64{},
		}
		for _, mode := range PlacementModes {
			r, err := s.runOne("prediction", w, sim.Config{
				BudgetSec: budget,
				Placement: placementOf(mode),
			})
			if err != nil {
				return nil, err
			}
			row.EnergyPct[mode] = 100 * r.EnergyJ / perf.EnergyJ
			row.MissPct[mode] = 100 * r.MissRate()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// BatchPoint is one batch size of the §7 amortization study on a
// millisecond-budget workload.
type BatchPoint struct {
	K         int
	EnergyPct float64
	MissPct   float64
}

// RunBatch evaluates batched prediction (decide every K jobs) for 2048
// at its tightest budget — the regime where the paper notes predictor
// and switch overheads outweigh the savings (§5.2: "normalized energy
// usage over 100%"; §7: amortize by predicting several jobs at once).
func (s *Suite) RunBatch() ([]BatchPoint, error) {
	w, err := workload.ByName("2048")
	if err != nil {
		return nil, err
	}
	maxT, err := s.maxJobTimeAtFmax(w)
	if err != nil {
		return nil, err
	}
	budget := maxT
	perf, err := s.runOne("performance", w, sim.Config{BudgetSec: budget})
	if err != nil {
		return nil, err
	}
	ctrl, err := s.Controller(w)
	if err != nil {
		return nil, err
	}
	var pts []BatchPoint
	for _, k := range []int{1, 2, 4, 8, 16} {
		g := &governor.Batched{Inner: ctrl, K: k}
		r, err := sim.Run(w, g, sim.Config{Plat: s.Plat, Seed: s.Seed + 7, BudgetSec: budget})
		if err != nil {
			return nil, err
		}
		pts = append(pts, BatchPoint{
			K:         k,
			EnergyPct: 100 * r.EnergyJ / perf.EnergyJ,
			MissPct:   100 * r.MissRate(),
		})
	}
	return pts, nil
}
