// Package experiments regenerates every table and figure of the
// paper's evaluation (§2, §3.4, §5): each Run* function returns typed
// rows mirroring what the paper plots, and the cmd/dvfsbench tool
// renders them as text tables. DESIGN.md carries the experiment index.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/governor"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Suite caches the expensive shared artifacts (platform, switch table,
// trained controllers) across experiments.
type Suite struct {
	// Plat is the modeled board.
	Plat *platform.Platform
	// Switch is the measured 95th-percentile switch-time table.
	Switch *platform.SwitchTable
	// Seed drives every stochastic element; a Suite with the same seed
	// reproduces results bit-for-bit.
	Seed int64

	controllers map[string]*core.Controller
}

// NewSuite builds a suite around the ODROID-XU3 A7 model.
func NewSuite(seed int64) *Suite {
	p := platform.ODROIDXU3A7()
	return &Suite{
		Plat:        p,
		Switch:      platform.MeasureSwitchTable(p, 500, 0.95, seed+1000),
		Seed:        seed,
		controllers: map[string]*core.Controller{},
	}
}

// Controller returns the trained prediction controller for w, building
// it on first use.
func (s *Suite) Controller(w *workload.Workload) (*core.Controller, error) {
	if c, ok := s.controllers[w.Name]; ok {
		return c, nil
	}
	c, err := core.Build(w, core.Config{
		Plat:        s.Plat,
		ProfileSeed: s.Seed + 17,
		Switch:      s.Switch,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: building controller for %s: %w", w.Name, err)
	}
	s.controllers[w.Name] = c
	return c, nil
}

// GovernorNames is the evaluation order of §5.2.
var GovernorNames = []string{"performance", "interactive", "pid", "prediction"}

// Governor instantiates a fresh controller by name for one run
// (stateful governors must not be shared between runs).
func (s *Suite) Governor(name string, w *workload.Workload) (governor.Governor, error) {
	switch name {
	case "performance":
		return &governor.Performance{Plat: s.Plat}, nil
	case "powersave":
		return &governor.Powersave{Plat: s.Plat}, nil
	case "interactive":
		return &governor.Interactive{Plat: s.Plat}, nil
	case "ondemand":
		return &governor.Ondemand{Plat: s.Plat}, nil
	case "movingavg":
		ctrl, err := s.Controller(w)
		if err != nil {
			return nil, err
		}
		return &governor.MovingAverage{Plat: s.Plat, Switch: s.Switch, MemFraction: ctrl.MemFraction()}, nil
	case "pid":
		ctrl, err := s.Controller(w)
		if err != nil {
			return nil, err
		}
		return &governor.PID{Plat: s.Plat, Switch: s.Switch, MemFraction: ctrl.MemFraction()}, nil
	case "prediction":
		return s.Controller(w)
	case "oracle":
		return &governor.Oracle{Plat: s.Plat}, nil
	}
	return nil, fmt.Errorf("experiments: unknown governor %q", name)
}

// runOne simulates workload w under the named governor.
func (s *Suite) runOne(name string, w *workload.Workload, cfg sim.Config) (*sim.Result, error) {
	g, err := s.Governor(name, w)
	if err != nil {
		return nil, err
	}
	cfg.Plat = s.Plat
	if cfg.Seed == 0 {
		cfg.Seed = s.Seed + 7
	}
	return sim.Run(w, g, cfg)
}

// maxJobTimeAtFmax measures the maximum job time at full speed, which
// defines normalized budget 1.0 in Fig 16 ("the tightest budget such
// that all jobs are able to meet their deadline").
func (s *Suite) maxJobTimeAtFmax(w *workload.Workload) (float64, error) {
	r, err := s.runOne("performance", w, sim.Config{NoiseSigma: -1})
	if err != nil {
		return 0, err
	}
	return stats.Summarize(r.ExecTimes()).Max, nil
}

// newX86Suite builds a suite around the x86 platform model for the
// cross-platform feature-selection study (§4.2).
func newX86Suite(seed int64) *Suite {
	return NewSuiteOn(platform.IntelI7(), seed)
}

// NewSuiteOn builds a suite around an arbitrary platform model.
func NewSuiteOn(p *platform.Platform, seed int64) *Suite {
	return &Suite{
		Plat:        p,
		Switch:      platform.MeasureSwitchTable(p, 500, 0.95, seed+2000),
		Seed:        seed,
		controllers: map[string]*core.Controller{},
	}
}
