// Package features turns raw control-flow feature events into fixed
// numeric vectors for the execution-time model (paper §3.2–3.3).
//
// Branch and loop counters map directly to columns. Function-pointer
// call addresses are converted to a one-hot encoding — one column per
// (call site, address) pair observed during profiling, set to 1 when
// the job called that address — exactly as described in §3.3.
package features

import (
	"fmt"
	"sort"

	"repro/internal/instrument"
)

// Trace records the feature events of a single job. It implements
// taskir.FeatureRecorder.
type Trace struct {
	// Counts holds branch/loop counter values keyed by FID.
	Counts map[int]int64
	// CallAddrs holds the set of addresses each call-site FID
	// dispatched to during the job.
	CallAddrs map[int]map[int64]bool
}

// NewTrace returns an empty per-job trace.
func NewTrace() *Trace {
	return &Trace{Counts: map[int]int64{}, CallAddrs: map[int]map[int64]bool{}}
}

// AddFeature implements taskir.FeatureRecorder.
func (t *Trace) AddFeature(fid int, amount int64) {
	t.Counts[fid] += amount
}

// RecordCall implements taskir.FeatureRecorder.
func (t *Trace) RecordCall(fid int, addr int64) {
	m := t.CallAddrs[fid]
	if m == nil {
		m = map[int64]bool{}
		t.CallAddrs[fid] = m
	}
	m[addr] = true
}

// Reset clears the trace for reuse on the next job.
func (t *Trace) Reset() {
	for k := range t.Counts {
		delete(t.Counts, k)
	}
	for k := range t.CallAddrs {
		delete(t.CallAddrs, k)
	}
}

// ColumnKind distinguishes counter columns from call one-hot columns.
type ColumnKind int

// Column kinds.
const (
	// ColCounter is a branch or loop counter value.
	ColCounter ColumnKind = iota
	// ColCallAddr is a 0/1 indicator that a call site invoked an
	// address.
	ColCallAddr
)

// Column describes one entry of the feature vector.
type Column struct {
	Kind ColumnKind
	// FID is the feature site the column derives from.
	FID int
	// Addr is the callee address for ColCallAddr columns.
	Addr int64
	// Name is a stable human-readable label like "loop#3" or
	// "call#5@addr7".
	Name string
}

// Schema is a fixed mapping from feature traces to numeric vectors.
// It is built once from profiling data and reused at run time.
type Schema struct {
	Columns []Column
	// index maps (fid) → column for counters and (fid,addr) → column
	// for call indicators.
	counterIdx map[int]int
	callIdx    map[int]map[int64]int
}

// BuildSchema constructs a schema for the instrumented program from
// profiling traces: counter sites become one column each; call sites
// become one column per distinct address observed across all traces.
// Column order is deterministic: sites by FID, addresses ascending.
func BuildSchema(ip *instrument.Program, traces []*Trace) *Schema {
	s := &Schema{
		counterIdx: map[int]int{},
		callIdx:    map[int]map[int64]int{},
	}
	// Collect all addresses seen per call site.
	addrs := map[int]map[int64]bool{}
	for _, tr := range traces {
		for fid, set := range tr.CallAddrs {
			m := addrs[fid]
			if m == nil {
				m = map[int64]bool{}
				addrs[fid] = m
			}
			for a := range set {
				m[a] = true
			}
		}
	}
	for _, site := range ip.Sites {
		switch site.Kind {
		case instrument.KindBranch, instrument.KindLoop:
			s.counterIdx[site.FID] = len(s.Columns)
			s.Columns = append(s.Columns, Column{
				Kind: ColCounter,
				FID:  site.FID,
				Name: fmt.Sprintf("%s#%d", site.Kind, site.CtrlID),
			})
		case instrument.KindCall:
			seen := addrs[site.FID]
			sorted := make([]int64, 0, len(seen))
			for a := range seen {
				sorted = append(sorted, a)
			}
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			if len(sorted) > 0 {
				s.callIdx[site.FID] = map[int64]int{}
			}
			for _, a := range sorted {
				s.callIdx[site.FID][a] = len(s.Columns)
				s.Columns = append(s.Columns, Column{
					Kind: ColCallAddr,
					FID:  site.FID,
					Addr: a,
					Name: fmt.Sprintf("call#%d@addr%d", site.CtrlID, a),
				})
			}
		}
	}
	return s
}

// Dim returns the feature vector length.
func (s *Schema) Dim() int { return len(s.Columns) }

// Vectorize converts a job trace to a feature vector under the schema.
// Addresses never seen during profiling contribute nothing (their
// one-hot column does not exist), mirroring a deployed predictor that
// can only use columns it was trained with.
func (s *Schema) Vectorize(tr *Trace) []float64 {
	return s.VectorizeInto(nil, tr)
}

// VectorizeInto is Vectorize writing into a caller-supplied buffer:
// the decision hot path hands it a stack array and stays off the heap.
// dst's capacity is reused when it fits (its contents are overwritten
// in full); otherwise a fresh vector is allocated. Returns the vector
// of length s.Dim().
//
//dvfs:hotpath
func (s *Schema) VectorizeInto(dst []float64, tr *Trace) []float64 {
	n := len(s.Columns)
	if cap(dst) < n {
		//dvfs:allow-alloc cold path: caller buffer smaller than the schema
		dst = make([]float64, n)
	}
	x := dst[:n]
	clear(x)
	for fid, v := range tr.Counts {
		if idx, ok := s.counterIdx[fid]; ok {
			x[idx] = float64(v)
		}
	}
	for fid, set := range tr.CallAddrs {
		cols, ok := s.callIdx[fid]
		if !ok {
			continue
		}
		for a := range set {
			if idx, ok := cols[a]; ok {
				x[idx] = 1
			}
		}
	}
	return x
}

// NeededFIDs maps a set of selected columns (non-zero model
// coefficients) back to the feature sites the prediction slice must
// still compute. A call site is needed if any of its address columns
// is selected.
func (s *Schema) NeededFIDs(selected []int) map[int]bool {
	need := map[int]bool{}
	for _, c := range selected {
		if c < 0 || c >= len(s.Columns) {
			continue
		}
		need[s.Columns[c].FID] = true
	}
	return need
}

// NewSchemaFromColumns reconstructs a schema from a stored column
// list — the deserialization path for distributing trained models
// with a program (§4.2).
func NewSchemaFromColumns(cols []Column) *Schema {
	s := &Schema{
		Columns:    append([]Column(nil), cols...),
		counterIdx: map[int]int{},
		callIdx:    map[int]map[int64]int{},
	}
	for i, c := range s.Columns {
		switch c.Kind {
		case ColCounter:
			s.counterIdx[c.FID] = i
		case ColCallAddr:
			m := s.callIdx[c.FID]
			if m == nil {
				m = map[int64]int{}
				s.callIdx[c.FID] = m
			}
			m[c.Addr] = i
		}
	}
	return s
}
