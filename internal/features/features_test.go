package features

import (
	"testing"

	"repro/internal/instrument"
	"repro/internal/taskir"
)

func prog() *instrument.Program {
	p := &taskir.Program{
		Name:    "sched",
		Params:  []string{"n", "ev"},
		Globals: map[string]int64{},
		Body: []taskir.Stmt{
			&taskir.If{ID: 1, Cond: taskir.GT(taskir.Var("n"), taskir.Const(0)), Then: []taskir.Stmt{
				&taskir.Compute{Work: 10},
			}},
			&taskir.Loop{ID: 2, Count: taskir.Var("n"), Body: []taskir.Stmt{
				&taskir.Compute{Work: 5},
			}},
			&taskir.Call{ID: 3, Target: taskir.Var("ev"), Funcs: map[int64][]taskir.Stmt{
				10: {&taskir.Compute{Work: 1}},
				20: {&taskir.Compute{Work: 2}},
				30: {&taskir.Compute{Work: 3}},
			}},
		},
	}
	return instrument.Instrument(p)
}

func traceOf(t *testing.T, ip *instrument.Program, n, ev int64) *Trace {
	t.Helper()
	env := taskir.NewEnv(map[string]int64{})
	env.SetParams(map[string]int64{"n": n, "ev": ev})
	tr := NewTrace()
	if _, err := taskir.Run(ip.Prog, env, taskir.RunOptions{Recorder: tr}); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuildSchemaColumns(t *testing.T) {
	ip := prog()
	traces := []*Trace{traceOf(t, ip, 3, 10), traceOf(t, ip, 0, 30)}
	s := BuildSchema(ip, traces)
	// branch, loop, and two observed call addresses (10 and 30).
	if s.Dim() != 4 {
		t.Fatalf("Dim = %d, want 4; columns=%v", s.Dim(), s.Columns)
	}
	names := []string{"branch#1", "loop#2", "call#3@addr10", "call#3@addr30"}
	for i, want := range names {
		if s.Columns[i].Name != want {
			t.Errorf("column %d = %q, want %q", i, s.Columns[i].Name, want)
		}
	}
}

func TestVectorize(t *testing.T) {
	ip := prog()
	traces := []*Trace{traceOf(t, ip, 3, 10), traceOf(t, ip, 0, 30)}
	s := BuildSchema(ip, traces)

	x := s.Vectorize(traceOf(t, ip, 5, 30))
	want := []float64{1, 5, 0, 1}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}

	// Address never seen in profiling (20) contributes nothing.
	x = s.Vectorize(traceOf(t, ip, 2, 20))
	want = []float64{1, 2, 0, 0}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("unseen addr: x = %v, want %v", x, want)
		}
	}
}

func TestTraceReset(t *testing.T) {
	tr := NewTrace()
	tr.AddFeature(0, 5)
	tr.RecordCall(1, 99)
	tr.Reset()
	if len(tr.Counts) != 0 || len(tr.CallAddrs) != 0 {
		t.Fatalf("Reset left data: %v %v", tr.Counts, tr.CallAddrs)
	}
}

func TestNeededFIDs(t *testing.T) {
	ip := prog()
	traces := []*Trace{traceOf(t, ip, 3, 10), traceOf(t, ip, 0, 30)}
	s := BuildSchema(ip, traces)
	// Columns: 0=branch(fid0), 1=loop(fid1), 2=call@10(fid2), 3=call@30(fid2)
	need := s.NeededFIDs([]int{1, 3})
	if len(need) != 2 || !need[1] || !need[2] {
		t.Fatalf("NeededFIDs = %v, want {1,2}", need)
	}
	// Out-of-range column indices are ignored.
	need = s.NeededFIDs([]int{-1, 99})
	if len(need) != 0 {
		t.Fatalf("NeededFIDs out-of-range = %v, want empty", need)
	}
}

func TestSchemaDeterministic(t *testing.T) {
	ip := prog()
	traces := []*Trace{traceOf(t, ip, 1, 30), traceOf(t, ip, 2, 10), traceOf(t, ip, 3, 20)}
	a := BuildSchema(ip, traces)
	b := BuildSchema(ip, traces)
	if a.Dim() != b.Dim() {
		t.Fatalf("dims differ: %d vs %d", a.Dim(), b.Dim())
	}
	for i := range a.Columns {
		if a.Columns[i] != b.Columns[i] {
			t.Fatalf("column %d differs: %v vs %v", i, a.Columns[i], b.Columns[i])
		}
	}
}
