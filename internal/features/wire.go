package features

import (
	"fmt"
	"sort"
	"strconv"
)

// WireTrace is the JSON wire form of a Trace, used by the dvfsd
// serving API: the client records features by running the prediction
// slice (or the instrumented program) locally and ships the sparse
// trace to the daemon, which vectorizes it under the trained model's
// schema. Counter values are keyed by decimal FID (JSON object keys
// are strings); call-address sets are keyed the same way with the
// addresses sorted ascending, so encoding is deterministic.
type WireTrace struct {
	// Counts holds branch/loop counter values keyed by decimal FID.
	Counts map[string]int64 `json:"counts,omitempty"`
	// Calls holds the sorted addresses each call-site FID dispatched
	// to, keyed by decimal FID.
	Calls map[string][]int64 `json:"calls,omitempty"`
}

// Wire converts the trace to its wire form. The result shares no
// state with the trace.
func (t *Trace) Wire() WireTrace {
	w := WireTrace{}
	if len(t.Counts) > 0 {
		w.Counts = make(map[string]int64, len(t.Counts))
		for fid, v := range t.Counts {
			w.Counts[strconv.Itoa(fid)] = v
		}
	}
	if len(t.CallAddrs) > 0 {
		w.Calls = make(map[string][]int64, len(t.CallAddrs))
		for fid, set := range t.CallAddrs {
			addrs := make([]int64, 0, len(set))
			for a := range set {
				addrs = append(addrs, a)
			}
			sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
			w.Calls[strconv.Itoa(fid)] = addrs
		}
	}
	return w
}

// Trace reconstructs a Trace from the wire form. Malformed FID keys
// are an error — a serving endpoint must reject them, not guess.
func (w WireTrace) Trace() (*Trace, error) {
	tr := NewTrace()
	for key, v := range w.Counts {
		fid, err := strconv.Atoi(key)
		if err != nil {
			return nil, fmt.Errorf("features: bad counter FID key %q", key)
		}
		tr.Counts[fid] = v
	}
	for key, addrs := range w.Calls {
		fid, err := strconv.Atoi(key)
		if err != nil {
			return nil, fmt.Errorf("features: bad call FID key %q", key)
		}
		set := make(map[int64]bool, len(addrs))
		for _, a := range addrs {
			set[a] = true
		}
		tr.CallAddrs[fid] = set
	}
	return tr, nil
}
