package features

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestWireTraceRoundTrip(t *testing.T) {
	tr := NewTrace()
	tr.AddFeature(3, 17)
	tr.AddFeature(7, 1)
	tr.AddFeature(7, 4)
	tr.RecordCall(5, 9)
	tr.RecordCall(5, 2)
	tr.RecordCall(11, 42)

	data, err := json.Marshal(tr.Wire())
	if err != nil {
		t.Fatal(err)
	}
	var w WireTrace
	if err := json.Unmarshal(data, &w); err != nil {
		t.Fatal(err)
	}
	got, err := w.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Counts, tr.Counts) {
		t.Errorf("counts: got %v want %v", got.Counts, tr.Counts)
	}
	if !reflect.DeepEqual(got.CallAddrs, tr.CallAddrs) {
		t.Errorf("calls: got %v want %v", got.CallAddrs, tr.CallAddrs)
	}
}

func TestWireTraceEmpty(t *testing.T) {
	data, err := json.Marshal(NewTrace().Wire())
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "{}" {
		t.Errorf("empty trace encodes as %s, want {}", data)
	}
	var w WireTrace
	if err := json.Unmarshal([]byte("{}"), &w); err != nil {
		t.Fatal(err)
	}
	tr, err := w.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Counts) != 0 || len(tr.CallAddrs) != 0 {
		t.Errorf("empty wire decodes non-empty: %v %v", tr.Counts, tr.CallAddrs)
	}
}

func TestWireTraceRejectsBadKeys(t *testing.T) {
	for _, raw := range []string{
		`{"counts":{"abc":1}}`,
		`{"calls":{"1.5":[2]}}`,
	} {
		var w WireTrace
		if err := json.Unmarshal([]byte(raw), &w); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Trace(); err == nil {
			t.Errorf("bad key in %s accepted", raw)
		}
	}
}

// Vectorizing a decoded wire trace must match vectorizing the original
// — the serving daemon depends on this equivalence.
func TestWireTraceVectorizeEquivalence(t *testing.T) {
	tr := NewTrace()
	tr.AddFeature(0, 5)
	tr.AddFeature(2, 9)
	tr.RecordCall(1, 7)

	cols := []Column{
		{Kind: ColCounter, FID: 0, Name: "loop#0"},
		{Kind: ColCallAddr, FID: 1, Addr: 7, Name: "call#1@addr7"},
		{Kind: ColCounter, FID: 2, Name: "branch#2"},
	}
	s := NewSchemaFromColumns(cols)
	got, err := tr.Wire().Trace()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Vectorize(got), s.Vectorize(tr)) {
		t.Errorf("vectorized wire trace differs: %v vs %v", s.Vectorize(got), s.Vectorize(tr))
	}
}
