// Package fleet simulates a heterogeneous device population — the
// evaluation harness the paper never had. The paper (§5) evaluates
// prediction-guided DVFS on one ODROID board; the questions a
// deployment actually asks are population-level: "what does a 5%
// margin cut cost in deadline misses across a million heterogeneous
// devices?". fleet answers them by driving N simulated devices (each
// with its own platform model, workload, phase offset, and seeded
// RNG) through a worker pool and aggregating per-device energy and
// miss distributions online with the obs streaming-quantile
// histograms.
//
// Determinism is load-bearing: for a fixed Config the aggregate
// result and every emitted trace byte are identical regardless of
// worker count or scheduling. Workers finish devices out of order;
// a commit stage reassembles them in device-index order before any
// float is summed, any histogram observed, or any event emitted, so
// the accumulation order — and therefore every bit of the output —
// is fixed by the configuration alone. The cross-check in
// TestFleetMatchesPerDeviceSims (aggregate == sum of standalone
// dvfssim-equivalent runs) holds exactly, not approximately.
package fleet

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// MixEntry is one workload with an integer weight: a mix of
// "ldecode:3,sha:1" assigns 3 of every 4 devices ldecode.
type MixEntry struct {
	Workload string
	Weight   int
}

// ParseMix parses "w1:3,w2:1" (weight defaults to 1 when omitted, as
// in "ldecode,sha"). Workload names are validated against the
// registry.
func ParseMix(s string) ([]MixEntry, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("fleet: empty workload mix")
	}
	var mix []MixEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weightStr, hasWeight := strings.Cut(part, ":")
		name = strings.TrimSpace(name)
		if _, err := workload.ByName(name); err != nil {
			return nil, fmt.Errorf("fleet: mix entry %q: %w", part, err)
		}
		weight := 1
		if hasWeight {
			var err error
			weight, err = strconv.Atoi(strings.TrimSpace(weightStr))
			if err != nil || weight < 1 {
				return nil, fmt.Errorf("fleet: mix entry %q: weight must be a positive integer", part)
			}
		}
		mix = append(mix, MixEntry{Workload: name, Weight: weight})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("fleet: empty workload mix")
	}
	return mix, nil
}

// Config describes a fleet run. Everything downstream — device specs,
// seeds, phase offsets, trace bytes — is a pure function of it.
type Config struct {
	// Devices is the fleet size.
	Devices int
	// Platforms are the platform models devices cycle through
	// (platform.ByName names). Empty selects the A7 board alone.
	Platforms []string
	// Mix assigns workloads to devices by weight. Empty selects sha.
	Mix []MixEntry
	// Governor names the per-device governor (experiments.Suite
	// names); empty selects "prediction".
	Governor string
	// Jobs is the per-device job count; zero selects 20 (enough for
	// level churn, small enough for 100k-device CI smoke runs).
	Jobs int
	// BudgetSec is the per-job deadline budget; zero selects each
	// workload's paper default.
	BudgetSec float64
	// Seed drives everything: controller training, switch-table
	// measurement, per-device seeds and phase offsets.
	Seed int64
	// Workers bounds simulation concurrency; zero selects
	// runtime.GOMAXPROCS.
	Workers int
	// Sink, when non-nil, receives every device's merged decision
	// events in device order with globally reassigned sequence
	// numbers. Nil skips event materialization entirely — the
	// aggregate-only fast path the 100k-device bench uses.
	Sink obs.Sink
	// Progress, when non-nil, is called from the commit stage as
	// devices complete (monotonic done counts, in order).
	Progress func(done, total int)
}

func (c Config) withDefaults() Config {
	if len(c.Platforms) == 0 {
		c.Platforms = []string{"a7"}
	}
	if len(c.Mix) == 0 {
		c.Mix = []MixEntry{{Workload: "sha", Weight: 1}}
	}
	if c.Governor == "" {
		c.Governor = "prediction"
	}
	if c.Jobs == 0 {
		c.Jobs = 20
	}
	return c
}

// DeviceSpec pins down one simulated device. Specs are derived
// deterministically from (Config, index) — see Spec.
type DeviceSpec struct {
	// Index is the device's position in the fleet, ID its stable name
	// ("dev-0000042").
	Index int
	ID    string
	// Platform and Workload name the device's hardware model and job
	// stream.
	Platform string
	Workload string
	// Seed is the device-private RNG seed; SimConfig passes Seed+7 to
	// the simulator, matching the dvfssim CLI convention so a fleet
	// device can be reproduced standalone.
	Seed int64
	// JobOffset is the device's phase offset into the workload input
	// stream (sim.Config.JobOffset): devices sharing a workload do
	// not execute identical input sequences in lockstep.
	JobOffset int
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed hash
// from (base seed, device index) to a device seed.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Spec derives device i's spec from the config: platform and workload
// cycle deterministically (platforms round-robin, workloads by mix
// weight), seed and phase offset come from a SplitMix64 hash of
// (Config.Seed, i).
func (c Config) Spec(i int) DeviceSpec {
	c = c.withDefaults()
	slots := 0
	for _, m := range c.Mix {
		slots += m.Weight
	}
	slot := i % slots
	wl := c.Mix[len(c.Mix)-1].Workload
	for _, m := range c.Mix {
		if slot < m.Weight {
			wl = m.Workload
			break
		}
		slot -= m.Weight
	}
	h := splitmix64(uint64(c.Seed) ^ splitmix64(uint64(i)+1))
	return DeviceSpec{
		Index:     i,
		ID:        fmt.Sprintf("dev-%07d", i),
		Platform:  c.Platforms[i%len(c.Platforms)],
		Workload:  wl,
		Seed:      int64(h & 0x7fffffffffffffff),
		JobOffset: int((h >> 17) % 1024),
	}
}

// SimConfig is the exact simulator configuration device spec runs
// under — exported so the determinism cross-check (and anyone
// reproducing one fleet device standalone) can run sim.Run with
// byte-identical inputs.
func (c Config) SimConfig(spec DeviceSpec, plat *platform.Platform) sim.Config {
	c = c.withDefaults()
	return sim.Config{
		Plat:      plat,
		BudgetSec: c.BudgetSec,
		Jobs:      c.Jobs,
		Seed:      spec.Seed + 7,
		JobOffset: spec.JobOffset,
	}
}

// DeviceResult is one device's outcome.
type DeviceResult struct {
	Spec    DeviceSpec
	EnergyJ float64
	Jobs    int
	Misses  int
}

// MissRate is the device's deadline-miss fraction.
func (d *DeviceResult) MissRate() float64 {
	if d.Jobs == 0 {
		return 0
	}
	return float64(d.Misses) / float64(d.Jobs)
}

// GroupAgg aggregates a slice of the fleet (one platform, or one
// workload).
type GroupAgg struct {
	Name    string
	Devices int
	Jobs    int
	Misses  int
	EnergyJ float64
}

// MissRate is the group's deadline-miss fraction.
func (g *GroupAgg) MissRate() float64 {
	if g.Jobs == 0 {
		return 0
	}
	return float64(g.Misses) / float64(g.Jobs)
}

// Quantiles summarizes a per-device distribution.
type Quantiles struct {
	P50, P90, P95, P99 float64
}

// Result is the fleet-level aggregate.
type Result struct {
	// Devices/Jobs/Misses/EnergyJ are fleet totals, folded in device
	// order (bit-stable float sums).
	Devices int
	Jobs    int
	Misses  int
	EnergyJ float64
	// DeviceEnergyJ and DeviceMissRate are streaming-quantile
	// estimates of the per-device distributions.
	DeviceEnergyJ  Quantiles
	DeviceMissRate Quantiles
	// ByPlatform and ByWorkload break the fleet down, sorted by name.
	ByPlatform []GroupAgg
	ByWorkload []GroupAgg
	// PerDevice holds every device's outcome, in index order.
	PerDevice []DeviceResult
	// Events is the number of decision events delivered to Config.Sink
	// (zero when no sink was configured).
	Events uint64
}

// MissRate is the fleet-wide deadline-miss fraction.
func (r *Result) MissRate() float64 {
	if r.Jobs == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Jobs)
}

// defaultWorkers sizes the pool to the scheduler's parallelism.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// devOut carries one finished device from a worker to the commit
// stage.
type devOut struct {
	res    DeviceResult
	events []obs.DecisionEvent
	err    error
}

// Run simulates the fleet. Deterministic for a fixed Config:
// scheduling never reorders aggregation or trace output.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Devices <= 0 {
		return nil, fmt.Errorf("fleet: device count must be positive, got %d", cfg.Devices)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > cfg.Devices {
		workers = cfg.Devices
	}

	// Resolve platforms and pre-train controllers serially: the suite
	// controller cache is not locked, so all writes happen before the
	// pool starts and workers only ever read it. One suite per
	// platform; training cost is paid once per (platform, workload),
	// not per device.
	plats := make(map[string]*platform.Platform, len(cfg.Platforms))
	suites := make(map[string]*experiments.Suite, len(cfg.Platforms))
	for _, name := range cfg.Platforms {
		if _, ok := plats[name]; ok {
			continue
		}
		p, err := platform.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
		plats[name] = p
		suites[name] = experiments.NewSuiteOn(p, cfg.Seed)
	}
	needsController := cfg.Governor == "prediction" || cfg.Governor == "pid" || cfg.Governor == "movingavg"
	for _, m := range cfg.Mix {
		w, err := workload.ByName(m.Workload)
		if err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
		for _, name := range cfg.Platforms {
			if !needsController {
				// Validate the governor name once per platform.
				if _, err := suites[name].Governor(cfg.Governor, w); err != nil {
					return nil, err
				}
				continue
			}
			if _, err := suites[name].Controller(w); err != nil {
				return nil, err
			}
		}
	}

	type indexed struct {
		i   int
		out devOut
	}
	jobs := make(chan int)
	outs := make(chan indexed, workers*2)
	var abort sync.Once
	aborted := make(chan struct{})

	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out := runDevice(cfg, cfg.Spec(i), suites, plats)
				if out.err != nil {
					abort.Do(func() { close(aborted) })
				}
				// Always deliverable: the committer drains outs until
				// every worker exits, even after an abort.
				outs <- indexed{i, out}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for i := 0; i < cfg.Devices; i++ {
			select {
			case jobs <- i:
			case <-aborted:
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(outs)
	}()

	// Commit stage: reassemble device order, then fold. Everything
	// order-sensitive (float sums, histogram observations, trace
	// emission, sequence numbering) happens here, single-threaded, in
	// device-index order.
	agg := newAggregator(cfg)
	reorder := make(map[int]devOut, workers*2)
	next := 0
	var firstErr error
	for o := range outs {
		if o.out.err != nil && firstErr == nil {
			firstErr = o.out.err
		}
		reorder[o.i] = o.out
		for {
			out, ok := reorder[next]
			if !ok {
				break
			}
			delete(reorder, next)
			if firstErr == nil {
				agg.commit(&out)
				if cfg.Progress != nil {
					cfg.Progress(next+1, cfg.Devices)
				}
			}
			next++
		}
		if firstErr != nil {
			abort.Do(func() { close(aborted) })
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if next != cfg.Devices {
		return nil, fmt.Errorf("fleet: committed %d of %d devices", next, cfg.Devices)
	}
	return agg.result(), nil
}

// runDevice simulates one device: resolve its workload, instantiate a
// per-device governor (cloning the shared trained controller — its
// mutable half must not be shared across goroutines), attach a tracer
// when events are wanted, run, and adapt the outcome. The per-decision
// work inside the run is the already-annotated //dvfs:hotpath
// controller path (core.Controller.PredictTrace).
func runDevice(cfg Config, spec DeviceSpec, suites map[string]*experiments.Suite, plats map[string]*platform.Platform) devOut {
	w, err := workload.ByName(spec.Workload)
	if err != nil {
		return devOut{err: fmt.Errorf("fleet: device %s: %w", spec.ID, err)}
	}
	suite := suites[spec.Platform]
	gov, err := suite.Governor(cfg.Governor, w)
	if err != nil {
		return devOut{err: fmt.Errorf("fleet: device %s: %w", spec.ID, err)}
	}
	var mem *obs.MemorySink
	if ctl, ok := gov.(*core.Controller); ok {
		clone := ctl.Clone()
		if cfg.Sink != nil {
			mem = &obs.MemorySink{}
			clone.SetTracer(obs.NewTracer(obs.TracerOptions{Sinks: []obs.Sink{mem}}))
		}
		gov = clone
	}
	r, err := sim.Run(w, gov, cfg.SimConfig(spec, plats[spec.Platform]))
	if err != nil {
		return devOut{err: fmt.Errorf("fleet: device %s: %w", spec.ID, err)}
	}
	out := devOut{res: DeviceResult{
		Spec:    spec,
		EnergyJ: r.EnergyJ,
		Jobs:    len(r.Records),
		Misses:  r.Misses,
	}}
	if cfg.Sink != nil {
		if mem != nil {
			out.events = trace.MergeDecisions(mem.Events(), r)
		} else {
			out.events = trace.DecisionEvents(r)
		}
		for i := range out.events {
			out.events[i].Device = spec.ID
			out.events[i].Platform = spec.Platform
			// Span ledgers measure the *host's* per-phase decision
			// latency on its wall clock — meaningless for a simulated
			// device, and the one wall-clock-dependent field that would
			// break bit-identical traces across runs. Fleet traces carry
			// simulated time only.
			out.events[i].Spans = nil
			out.events[i].SpanTotalSec = 0
		}
	}
	return out
}

// aggregator folds committed devices into the fleet result. All state
// is touched only by the commit stage.
type aggregator struct {
	cfg        Config
	res        Result
	energyH    *obs.Histogram
	missH      *obs.Histogram
	energySk   *obs.QuantileSketch
	missSk     *obs.QuantileSketch
	byPlatform map[string]*GroupAgg
	byWorkload map[string]*GroupAgg
	seq        uint64
}

func newAggregator(cfg Config) *aggregator {
	reg := obs.NewRegistry()
	// Device energy spans idle 20-job traces (~tens of mJ) up to
	// multi-second heavyweight mixes; log-linear buckets keep the
	// relative quantile error flat across that range.
	missBounds := make([]float64, 101)
	for i := range missBounds {
		missBounds[i] = float64(i) / 100
	}
	return &aggregator{
		cfg: cfg,
		energyH: reg.Histogram("fleet_device_energy_joules",
			"per-device total energy", obs.LogLinearBuckets(1e-4, 1e4, 30)),
		missH: reg.Histogram("fleet_device_miss_rate",
			"per-device deadline miss fraction", missBounds),
		// Sketches ride alongside the histograms: the histograms keep
		// the fixed-bucket exposition shape, the t-digests answer the
		// quantile queries (≤1% rank error with no bucket-boundary
		// sensitivity — the histogram's weak spot when a distribution
		// concentrates inside one log-linear bucket).
		energySk:   obs.NewQuantileSketch(0),
		missSk:     obs.NewQuantileSketch(0),
		byPlatform: map[string]*GroupAgg{},
		byWorkload: map[string]*GroupAgg{},
	}
}

func (a *aggregator) group(m map[string]*GroupAgg, name string) *GroupAgg {
	g, ok := m[name]
	if !ok {
		g = &GroupAgg{Name: name}
		m[name] = g
	}
	return g
}

func (a *aggregator) commit(out *devOut) {
	d := &out.res
	a.res.Devices++
	a.res.Jobs += d.Jobs
	a.res.Misses += d.Misses
	a.res.EnergyJ += d.EnergyJ
	a.energyH.Observe(d.EnergyJ)
	a.missH.Observe(d.MissRate())
	a.energySk.Add(d.EnergyJ)
	a.missSk.Add(d.MissRate())
	for _, g := range []*GroupAgg{
		a.group(a.byPlatform, d.Spec.Platform),
		a.group(a.byWorkload, d.Spec.Workload),
	} {
		g.Devices++
		g.Jobs += d.Jobs
		g.Misses += d.Misses
		g.EnergyJ += d.EnergyJ
	}
	a.res.PerDevice = append(a.res.PerDevice, *d)
	if a.cfg.Sink != nil {
		a.emitEvents(out.events)
	}
}

// emitEvents renumbers a committed device's events into the global
// fleet sequence and forwards them to the sink — the fleet-side
// per-event hot loop every traced decision funnels through (tens of
// millions of events on large fleets).
//
//dvfs:hotpath
func (a *aggregator) emitEvents(events []obs.DecisionEvent) {
	for i := range events {
		a.seq++
		events[i].Seq = a.seq
		//dvfs:allow-alloc dynamic sink dispatch; concrete sinks gate their own hot paths (BinaryWriter.Emit is alloc-gated)
		a.cfg.Sink.Emit(&events[i])
	}
	a.res.Events += uint64(len(events))
}

func (a *aggregator) result() *Result {
	q := func(s *obs.QuantileSketch) Quantiles {
		return Quantiles{
			P50: s.Quantile(0.50),
			P90: s.Quantile(0.90),
			P95: s.Quantile(0.95),
			P99: s.Quantile(0.99),
		}
	}
	a.res.DeviceEnergyJ = q(a.energySk)
	a.res.DeviceMissRate = q(a.missSk)
	a.res.ByPlatform = sortedGroups(a.byPlatform)
	a.res.ByWorkload = sortedGroups(a.byWorkload)
	return &a.res
}

func sortedGroups(m map[string]*GroupAgg) []GroupAgg {
	out := make([]GroupAgg, 0, len(m))
	for _, g := range m {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
