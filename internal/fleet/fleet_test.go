package fleet

import (
	"bytes"
	"math"
	"sort"
	"testing"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestParseMix(t *testing.T) {
	mix, err := ParseMix("ldecode:3, sha:1")
	if err != nil {
		t.Fatal(err)
	}
	want := []MixEntry{{Workload: "ldecode", Weight: 3}, {Workload: "sha", Weight: 1}}
	if len(mix) != 2 || mix[0] != want[0] || mix[1] != want[1] {
		t.Fatalf("got %+v, want %+v", mix, want)
	}
	if mix, err = ParseMix("sha"); err != nil || mix[0].Weight != 1 {
		t.Fatalf("bare name should default to weight 1: %+v, %v", mix, err)
	}
	for _, bad := range []string{"", "nosuch:1", "sha:0", "sha:-1", "sha:x", ","} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) succeeded, want error", bad)
		}
	}
}

func TestSpecDerivation(t *testing.T) {
	cfg := Config{
		Devices:   100,
		Platforms: []string{"a7", "x86"},
		Mix:       []MixEntry{{Workload: "ldecode", Weight: 3}, {Workload: "sha", Weight: 1}},
		Seed:      5,
	}
	// Deterministic: same (config, index) → same spec.
	if a, b := cfg.Spec(17), cfg.Spec(17); a != b {
		t.Fatalf("spec not deterministic: %+v vs %+v", a, b)
	}
	// Platforms round-robin; the mix honors its 3:1 weights.
	counts := map[string]int{}
	offsets := map[int]bool{}
	seeds := map[int64]bool{}
	for i := 0; i < 100; i++ {
		s := cfg.Spec(i)
		if want := cfg.Platforms[i%2]; s.Platform != want {
			t.Fatalf("device %d platform %q, want %q", i, s.Platform, want)
		}
		counts[s.Workload]++
		offsets[s.JobOffset] = true
		seeds[s.Seed] = true
	}
	if counts["ldecode"] != 75 || counts["sha"] != 25 {
		t.Fatalf("mix weights not honored: %v", counts)
	}
	// Phase offsets and seeds must actually vary across the fleet.
	if len(offsets) < 10 || len(seeds) != 100 {
		t.Fatalf("poor spec dispersion: %d distinct offsets, %d distinct seeds", len(offsets), len(seeds))
	}
}

// smallConfig is a fleet sized for unit tests: heterogeneous
// (2 platforms x 2 workloads) but quick to train and run.
func smallConfig() Config {
	return Config{
		Devices:   10,
		Platforms: []string{"a7", "x86"},
		Mix:       []MixEntry{{Workload: "sha", Weight: 1}},
		Governor:  "prediction",
		Jobs:      8,
		Seed:      3,
	}
}

// TestFleetMatchesPerDeviceSims is the determinism cross-check
// (ISSUE 7 satellite): the fleet aggregate energy and miss totals
// must equal — exactly, not approximately — the sum of standalone
// per-device simulator runs with the same seeds, platforms, and
// phase offsets, because the fleet commit stage folds devices in
// index order and each device's simulation is a pure function of its
// spec.
func TestFleetMatchesPerDeviceSims(t *testing.T) {
	cfg := smallConfig()
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	suites := map[string]*experiments.Suite{}
	var wantEnergy float64
	wantMisses, wantJobs := 0, 0
	for i := 0; i < cfg.Devices; i++ {
		spec := cfg.Spec(i)
		plat, err := platform.ByName(spec.Platform)
		if err != nil {
			t.Fatal(err)
		}
		suite, ok := suites[spec.Platform]
		if !ok {
			suite = experiments.NewSuiteOn(plat, cfg.Seed)
			suites[spec.Platform] = suite
		}
		w, err := workload.ByName(spec.Workload)
		if err != nil {
			t.Fatal(err)
		}
		gov, err := suite.Governor(cfg.Governor, w)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sim.Run(w, gov, cfg.SimConfig(spec, plat))
		if err != nil {
			t.Fatal(err)
		}
		wantEnergy += r.EnergyJ
		wantMisses += r.Misses
		wantJobs += len(r.Records)

		d := got.PerDevice[i]
		if d.EnergyJ != r.EnergyJ || d.Misses != r.Misses || d.Jobs != len(r.Records) {
			t.Fatalf("device %d (%s): fleet {E %v, miss %d, jobs %d} != standalone {E %v, miss %d, jobs %d}",
				i, spec.ID, d.EnergyJ, d.Misses, d.Jobs, r.EnergyJ, r.Misses, len(r.Records))
		}
	}
	if got.EnergyJ != wantEnergy || got.Misses != wantMisses || got.Jobs != wantJobs {
		t.Fatalf("fleet aggregate {E %v, miss %d, jobs %d} != per-device sum {E %v, miss %d, jobs %d}",
			got.EnergyJ, got.Misses, got.Jobs, wantEnergy, wantMisses, wantJobs)
	}
	if got.Devices != cfg.Devices || len(got.PerDevice) != cfg.Devices {
		t.Fatalf("device counts: %d aggregate, %d per-device, want %d", got.Devices, len(got.PerDevice), cfg.Devices)
	}
}

// TestFleetDeterministicAcrossWorkers proves scheduling independence:
// aggregates and every trace byte are identical for 1 worker and for
// many.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) (*Result, []byte) {
		cfg := smallConfig()
		cfg.Workers = workers
		var buf bytes.Buffer
		bw := trace.NewBinaryWriter(&buf)
		cfg.Sink = bw
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := bw.Close(); err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes()
	}
	res1, trace1 := run(1)
	res8, trace8 := run(8)

	if res1.EnergyJ != res8.EnergyJ || res1.Misses != res8.Misses ||
		res1.Jobs != res8.Jobs || res1.Events != res8.Events {
		t.Fatalf("aggregates differ across worker counts:\n 1: %+v\n 8: %+v", res1, res8)
	}
	if !bytes.Equal(trace1, trace8) {
		t.Fatalf("trace bytes differ across worker counts (%d vs %d bytes)", len(trace1), len(trace8))
	}
	if res1.Events == 0 {
		t.Fatal("traced fleet run emitted no events")
	}

	// The trace must carry fleet metadata: device IDs, per-event
	// platforms, and a gapless global sequence.
	events, err := trace.ReadBinary(bytes.NewReader(trace1))
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(events)) != res1.Events {
		t.Fatalf("trace has %d events, result says %d", len(events), res1.Events)
	}
	devices := map[string]bool{}
	for i := range events {
		e := &events[i]
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d; fleet sequences must be gapless from 1", i, e.Seq)
		}
		if e.Device == "" || e.Platform == "" {
			t.Fatalf("event %d missing fleet metadata: device %q platform %q", i, e.Device, e.Platform)
		}
		devices[e.Device] = true
	}
	if len(devices) != smallConfig().Devices {
		t.Fatalf("trace covers %d devices, want %d", len(devices), smallConfig().Devices)
	}
}

func TestFleetGroupBreakdowns(t *testing.T) {
	cfg := smallConfig()
	cfg.Mix = []MixEntry{{Workload: "sha", Weight: 1}, {Workload: "rijndael", Weight: 1}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ByPlatform) != 2 || len(res.ByWorkload) != 2 {
		t.Fatalf("breakdowns: %d platforms, %d workloads, want 2 and 2", len(res.ByPlatform), len(res.ByWorkload))
	}
	var sumE float64
	var sumDev int
	for _, g := range res.ByPlatform {
		sumE += g.EnergyJ
		sumDev += g.Devices
	}
	if sumDev != res.Devices {
		t.Fatalf("platform groups cover %d devices, fleet has %d", sumDev, res.Devices)
	}
	// Groups partition the fleet; their energies must sum to the total
	// up to float association (groups fold in commit order too, but
	// interleaved across groups).
	if diff := sumE - res.EnergyJ; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("platform group energy %v != fleet energy %v", sumE, res.EnergyJ)
	}
	q := res.DeviceEnergyJ
	if !(q.P50 > 0 && q.P50 <= q.P95 && q.P95 <= q.P99) {
		t.Fatalf("device energy quantiles not ordered: %+v", q)
	}
}

func TestFleetBadConfig(t *testing.T) {
	cases := []Config{
		{Devices: 0},
		{Devices: 2, Platforms: []string{"nosuch"}},
		{Devices: 2, Governor: "nosuch"},
		{Devices: 2, Mix: []MixEntry{{Workload: "nosuch", Weight: 1}}},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: Run succeeded, want error", i)
		}
	}
}

func TestFleetBaselineGovernor(t *testing.T) {
	cfg := smallConfig()
	cfg.Governor = "performance"
	var mem obs.MemorySink
	cfg.Sink = &mem
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events == 0 {
		t.Fatal("baseline fleet emitted no events (record adapter path)")
	}
	evs := mem.Events()
	if evs[0].Device == "" || evs[0].Governor != "performance" {
		t.Fatalf("baseline event metadata wrong: %+v", evs[0])
	}
	// Performance pins fmax: no misses expected at default budgets.
	if res.MissRate() > 0.5 {
		t.Fatalf("implausible miss rate %v under performance governor", res.MissRate())
	}
}

// TestFleetSketchQuantilesMatchExact: the Result's sketch-backed
// per-device distributions must sit within 1% rank error of the exact
// quantiles computed from PerDevice — the acceptance bar the t-digest
// was brought in to meet (the log-linear histograms it rides alongside
// cannot promise this when a distribution concentrates in one bucket).
func TestFleetSketchQuantilesMatchExact(t *testing.T) {
	cfg := Config{
		Devices:   600,
		Platforms: []string{"a7", "x86"},
		Mix:       []MixEntry{{Workload: "sha", Weight: 2}, {Workload: "ldecode", Weight: 1}},
		Jobs:      8,
		Seed:      42,
		Workers:   4,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	energies := make([]float64, 0, len(res.PerDevice))
	rates := make([]float64, 0, len(res.PerDevice))
	for i := range res.PerDevice {
		energies = append(energies, res.PerDevice[i].EnergyJ)
		rates = append(rates, res.PerDevice[i].MissRate())
	}
	sort.Float64s(energies)
	sort.Float64s(rates)
	// rankErr measures how far got's rank interval sits from p. A
	// repeated value occupies a rank *range* (miss rates tie heavily at
	// 0); any p inside the range is exact.
	rankErr := func(sorted []float64, got, p float64) float64 {
		n := float64(len(sorted))
		lo := float64(sort.SearchFloat64s(sorted, got)) / n
		hi := float64(sort.SearchFloat64s(sorted, math.Nextafter(got, math.Inf(1)))) / n
		switch {
		case p < lo:
			return lo - p
		case p > hi:
			return p - hi
		default:
			return 0
		}
	}
	checks := []struct {
		name   string
		sorted []float64
		q      Quantiles
	}{
		{"energy", energies, res.DeviceEnergyJ},
		{"missrate", rates, res.DeviceMissRate},
	}
	for _, c := range checks {
		for _, pq := range []struct {
			p   float64
			got float64
		}{{0.50, c.q.P50}, {0.90, c.q.P90}, {0.95, c.q.P95}, {0.99, c.q.P99}} {
			if err := rankErr(c.sorted, pq.got, pq.p); err > 0.01 {
				t.Errorf("%s q%.0f: sketch %.6g rank error %.4f > 1%%",
					c.name, pq.p*100, pq.got, err)
			}
		}
	}
}
