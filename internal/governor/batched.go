package governor

import (
	"math"

	"repro/internal/platform"
)

// Batched amortizes prediction overhead across several jobs — the
// paper's closing suggestion for millisecond-scale budgets (§7): "the
// predictor may need to predict the DVFS level for several jobs at
// once in order to amortize these overheads". The wrapped controller
// decides on every K-th job; the K−1 jobs in between reuse the level,
// paying neither predictor time nor a DVFS switch.
type Batched struct {
	// Inner is the controller that makes the real decisions.
	Inner Governor
	// K is the batch size (≥1); 1 degenerates to Inner.
	K int

	counter int
	last    Decision
	have    bool
}

// Name implements Governor.
func (g *Batched) Name() string { return g.Inner.Name() + "-batched" }

// JobStart implements Governor.
func (g *Batched) JobStart(job *Job, cur platform.Level) Decision {
	k := g.K
	if k < 1 {
		k = 1
	}
	if !g.have || g.counter%k == 0 {
		g.last = g.Inner.JobStart(job, cur)
		g.have = true
		g.counter = 0
	} else {
		// Reuse the batch's level: no predictor run, no new target
		// computation. The expectation is stale, so it is not
		// reported.
		g.last = Decision{Target: g.last.Target, PredictedExecSec: math.NaN()}
	}
	g.counter++
	return g.last
}

// JobEnd implements Governor (forwarded so feedback controllers keep
// learning even when batched).
func (g *Batched) JobEnd(job *Job, actualExecSec float64) { g.Inner.JobEnd(job, actualExecSec) }

// SampleInterval implements Governor.
func (g *Batched) SampleInterval() float64 { return g.Inner.SampleInterval() }

// Sample implements Governor.
func (g *Batched) Sample(util float64, cur platform.Level) platform.Level {
	return g.Inner.Sample(util, cur)
}
