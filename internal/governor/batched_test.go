package governor

import (
	"math"
	"testing"

	"repro/internal/platform"
)

// countingGov records JobStart/JobEnd invocations.
type countingGov struct {
	Base
	plat   *platform.Platform
	starts int
	ends   int
	level  int
}

func (g *countingGov) Name() string { return "counting" }

func (g *countingGov) JobStart(_ *Job, _ platform.Level) Decision {
	g.starts++
	g.level = (g.level + 1) % g.plat.NumLevels() // move every real decision
	return Decision{
		Target:           g.plat.Levels[g.level],
		PredictorSec:     0.001,
		PredictedExecSec: 0.010,
	}
}

func (g *countingGov) JobEnd(_ *Job, _ float64) { g.ends++ }

func TestBatchedDecidesEveryKth(t *testing.T) {
	p := plat()
	inner := &countingGov{plat: p}
	g := &Batched{Inner: inner, K: 4}
	var targets []int
	for i := 0; i < 12; i++ {
		d := g.JobStart(job(0.05), p.Levels[0])
		targets = append(targets, d.Target.Index)
		g.JobEnd(job(0.05), 0.01)
	}
	if inner.starts != 3 {
		t.Errorf("inner decisions = %d, want 3 for 12 jobs at K=4", inner.starts)
	}
	if inner.ends != 12 {
		t.Errorf("inner JobEnd = %d, want 12 (feedback must flow every job)", inner.ends)
	}
	// Within a batch the target must not change.
	for i := 0; i < 12; i += 4 {
		for j := 1; j < 4; j++ {
			if targets[i+j] != targets[i] {
				t.Fatalf("job %d target %d differs from batch head %d", i+j, targets[i+j], targets[i])
			}
		}
	}
}

func TestBatchedReusedDecisionIsFree(t *testing.T) {
	p := plat()
	g := &Batched{Inner: &countingGov{plat: p}, K: 3}
	first := g.JobStart(job(0.05), p.Levels[0])
	if first.PredictorSec != 0.001 {
		t.Fatalf("first decision predictor = %g", first.PredictorSec)
	}
	second := g.JobStart(job(0.05), p.Levels[0])
	if second.PredictorSec != 0 {
		t.Errorf("reused decision has predictor cost %g", second.PredictorSec)
	}
	if !math.IsNaN(second.PredictedExecSec) {
		t.Errorf("reused decision claims a prediction %g", second.PredictedExecSec)
	}
}

func TestBatchedKOneIsTransparent(t *testing.T) {
	p := plat()
	inner := &countingGov{plat: p}
	g := &Batched{Inner: inner, K: 1}
	for i := 0; i < 5; i++ {
		g.JobStart(job(0.05), p.Levels[0])
	}
	if inner.starts != 5 {
		t.Errorf("K=1 decisions = %d, want 5", inner.starts)
	}
	if g.Name() != "counting-batched" {
		t.Errorf("name = %s", g.Name())
	}
}

func TestBatchedKZeroClamped(t *testing.T) {
	p := plat()
	inner := &countingGov{plat: p}
	g := &Batched{Inner: inner, K: 0}
	for i := 0; i < 3; i++ {
		g.JobStart(job(0.05), p.Levels[0])
	}
	if inner.starts != 3 {
		t.Errorf("K=0 should clamp to 1; decisions = %d", inner.starts)
	}
}

func TestBatchedForwardsSampling(t *testing.T) {
	p := plat()
	g := &Batched{Inner: &Interactive{Plat: p}, K: 2}
	if g.SampleInterval() != 0.080 {
		t.Errorf("sampling interval not forwarded")
	}
	if got := g.Sample(0.95, p.Levels[2]); got.Index != p.MaxLevel().Index {
		t.Errorf("Sample not forwarded")
	}
}
