package governor

import (
	"math"

	"repro/internal/platform"
)

// Coordinator addresses the contention problem the paper leaves as
// future work (§7: "Extending this work to multi-threaded or
// multi-core architectures will require a way to model and estimate
// the contention of multiple threads or workloads"). Per-task
// controllers that are mutually unaware stretch their jobs to their
// own deadlines and starve short-budget tasks released meanwhile.
//
// The coordinator implements a simple contention model: every task
// registers its period and keeps an exponentially weighted average of
// its job execution times; when a task picks a frequency, the wall
// time other tasks will demand inside its window (their releases ×
// their average demand, inflated by a safety factor) is reserved out
// of its budget, so the job finishes early enough to let them run.
type Coordinator struct {
	tasks []*coordTask
	// SafetyFactor inflates reserved demand; zero selects 1.25.
	SafetyFactor float64
}

type coordTask struct {
	period, offset float64
	ewmaExec       float64
	seeded         bool
}

// NewCoordinator creates an empty coordinator.
func NewCoordinator() *Coordinator { return &Coordinator{} }

// Wrap registers a periodic task and returns its coordinated governor.
func (c *Coordinator) Wrap(inner Governor, periodSec, offsetSec float64) Governor {
	t := &coordTask{period: periodSec, offset: offsetSec}
	c.tasks = append(c.tasks, t)
	return &coordinated{c: c, me: t, inner: inner}
}

// reserveFor estimates the wall time tasks other than `me` will demand
// within [start, deadline).
func (c *Coordinator) reserveFor(me *coordTask, start, deadline float64) float64 {
	sf := c.SafetyFactor
	if sf == 0 {
		sf = 1.25
	}
	total := 0.0
	for _, t := range c.tasks {
		if t == me || !t.seeded || t.period <= 0 {
			continue
		}
		// Releases of t in [start, deadline).
		first := math.Ceil((start - t.offset) / t.period)
		if first < 0 {
			first = 0
		}
		k := 0
		for j := first; t.offset+j*t.period < deadline; j++ {
			k++
		}
		total += float64(k) * t.ewmaExec * sf
	}
	return total
}

type coordinated struct {
	Base
	c     *Coordinator
	me    *coordTask
	inner Governor
}

// Name implements Governor.
func (g *coordinated) Name() string { return g.inner.Name() + "-coord" }

// JobStart implements Governor: tighten the budget by the reserved
// demand of the other tasks, then delegate. A floor of 25% of the
// remaining budget prevents an overloaded system from collapsing the
// budget to zero (the job would run at max and still be late — which
// is the best available outcome anyway).
func (g *coordinated) JobStart(job *Job, cur platform.Level) Decision {
	start := job.DeadlineSec - job.RemainingBudgetSec
	reserve := g.c.reserveFor(g.me, start, job.DeadlineSec)
	if reserve > 0 {
		tightened := *job
		floor := 0.25 * job.RemainingBudgetSec
		tightened.RemainingBudgetSec = math.Max(floor, job.RemainingBudgetSec-reserve)
		return g.inner.JobStart(&tightened, cur)
	}
	return g.inner.JobStart(job, cur)
}

// JobEnd implements Governor: fold the observation into the task's
// demand estimate and forward it.
func (g *coordinated) JobEnd(job *Job, actualExecSec float64) {
	const alpha = 0.2
	if !g.me.seeded {
		g.me.ewmaExec = actualExecSec
		g.me.seeded = true
	} else {
		g.me.ewmaExec = (1-alpha)*g.me.ewmaExec + alpha*actualExecSec
	}
	g.inner.JobEnd(job, actualExecSec)
}
