// Package governor implements the DVFS controllers the paper evaluates
// (§5.1): the Linux performance and interactive governors, a PID-based
// deadline controller, and an oracle, plus the Governor interface the
// prediction-based controller (built in internal/core) plugs into.
package governor

import (
	"math"

	"repro/internal/platform"
	"repro/internal/taskir"
)

// Job carries everything a controller may observe about a job before
// it runs. Governors must treat Params and Globals as read-only.
type Job struct {
	// Index is the job's sequence number within the run.
	Index int
	// Params are the job's input values.
	Params map[string]int64
	// Globals is the live program state at job start.
	Globals map[string]int64
	// ReleaseSec and DeadlineSec are absolute times; RemainingBudgetSec
	// is DeadlineSec minus the job's actual start time (less than the
	// full budget when the previous job overran its period).
	ReleaseSec, DeadlineSec, RemainingBudgetSec float64
	// PeekWork returns the job's true work without executing it (it
	// interprets the task against isolated state). Only the oracle
	// controller may call it — it stands in for the paper's "recorded
	// job times from a previous run with the same inputs" (§5.3).
	PeekWork func() taskir.Work
}

// Decision is a controller's job-start output.
type Decision struct {
	// Target is the level to run the job at.
	Target platform.Level
	// PredictorSec is time spent computing the decision before the job
	// (the prediction slice's execution time); it is consumed from the
	// job's budget at the current level.
	PredictorSec float64
	// PredictedExecSec is the controller's expectation of the job's
	// execution time at Target; NaN when the controller has none.
	PredictedExecSec float64
}

// Governor is a DVFS controller under simulation.
type Governor interface {
	// Name identifies the controller in results ("performance", ...).
	Name() string
	// JobStart is invoked when a job begins; cur is the current level.
	JobStart(job *Job, cur platform.Level) Decision
	// JobEnd reports the job's actual execution time (the portion at
	// the target level, excluding predictor and switch overhead).
	JobEnd(job *Job, actualExecSec float64)
	// SampleInterval returns the utilization sampling period for
	// load-driven governors, or 0 for job-triggered governors.
	SampleInterval() float64
	// Sample is invoked every SampleInterval with the CPU utilization
	// of the elapsed window; it returns the level to switch to.
	Sample(util float64, cur platform.Level) platform.Level
}

// Base provides no-op hooks for job-triggered governors.
type Base struct{}

// JobEnd implements Governor with no feedback.
func (Base) JobEnd(*Job, float64) {}

// SampleInterval implements Governor with no sampling.
func (Base) SampleInterval() float64 { return 0 }

// Sample implements Governor; it never changes the level.
func (Base) Sample(_ float64, cur platform.Level) platform.Level { return cur }

// Performance always runs at maximum frequency — the paper's energy
// baseline (energy results are normalized to it).
type Performance struct {
	Base
	Plat *platform.Platform
}

// Name implements Governor.
func (*Performance) Name() string { return "performance" }

// JobStart implements Governor.
func (g *Performance) JobStart(_ *Job, _ platform.Level) Decision {
	return Decision{Target: g.Plat.MaxLevel(), PredictedExecSec: math.NaN()}
}

// Powersave always runs at minimum frequency.
type Powersave struct {
	Base
	Plat *platform.Platform
}

// Name implements Governor.
func (*Powersave) Name() string { return "powersave" }

// JobStart implements Governor.
func (g *Powersave) JobStart(_ *Job, _ platform.Level) Decision {
	return Decision{Target: g.Plat.MinLevel(), PredictedExecSec: math.NaN()}
}

// Fixed pins execution at one level — used to characterize the
// time–frequency relationship (Fig 9).
type Fixed struct {
	Base
	Level platform.Level
}

// Name implements Governor.
func (*Fixed) Name() string { return "fixed" }

// JobStart implements Governor.
func (g *Fixed) JobStart(_ *Job, _ platform.Level) Decision {
	return Decision{Target: g.Level, PredictedExecSec: math.NaN()}
}
