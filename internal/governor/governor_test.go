package governor

import (
	"math"
	"testing"

	"repro/internal/platform"
	"repro/internal/taskir"
)

func plat() *platform.Platform { return platform.ODROIDXU3A7() }

func job(budget float64) *Job {
	return &Job{
		Index:              1,
		Params:             map[string]int64{},
		Globals:            map[string]int64{},
		DeadlineSec:        budget,
		RemainingBudgetSec: budget,
	}
}

func TestPerformanceAlwaysMax(t *testing.T) {
	p := plat()
	g := &Performance{Plat: p}
	for _, cur := range []platform.Level{p.MinLevel(), p.Levels[6], p.MaxLevel()} {
		d := g.JobStart(job(0.05), cur)
		if d.Target.Index != p.MaxLevel().Index {
			t.Errorf("from level %d got %d, want max", cur.Index, d.Target.Index)
		}
		if d.PredictorSec != 0 {
			t.Errorf("performance has predictor cost %g", d.PredictorSec)
		}
	}
	if g.Name() != "performance" {
		t.Errorf("name = %s", g.Name())
	}
	if g.SampleInterval() != 0 {
		t.Errorf("performance should not sample")
	}
}

func TestPowersaveAlwaysMin(t *testing.T) {
	p := plat()
	g := &Powersave{Plat: p}
	d := g.JobStart(job(0.05), p.MaxLevel())
	if d.Target.Index != 0 {
		t.Errorf("got level %d, want 0", d.Target.Index)
	}
}

func TestFixedStaysPut(t *testing.T) {
	p := plat()
	g := &Fixed{Level: p.Levels[4]}
	if d := g.JobStart(job(0.05), p.MaxLevel()); d.Target.Index != 4 {
		t.Errorf("fixed governor moved to %d", d.Target.Index)
	}
}

func TestInteractiveHispeedJump(t *testing.T) {
	p := plat()
	g := &Interactive{Plat: p}
	if got := g.Sample(0.90, p.Levels[3]); got.Index != p.MaxLevel().Index {
		t.Errorf("util 0.90 from level 3 → %d, want max", got.Index)
	}
	if got := g.Sample(0.85, p.Levels[0]); got.Index != p.MaxLevel().Index {
		t.Errorf("util exactly at threshold should jump, got %d", got.Index)
	}
}

func TestInteractiveProportionalScaling(t *testing.T) {
	p := plat()
	g := &Interactive{Plat: p}
	// Moderate load from a high level scales down, but only one level
	// per sample (hysteresis).
	cur := p.MaxLevel()
	got := g.Sample(0.30, cur)
	if got.Index != cur.Index-1 {
		t.Errorf("down-ramp: got level %d, want %d", got.Index, cur.Index-1)
	}
	// Rising load from a low level can jump several levels up at once.
	got = g.Sample(0.80, p.Levels[2])
	if got.Index <= 3 {
		t.Errorf("up-scaling too timid: level %d", got.Index)
	}
	if got.Index == p.MaxLevel().Index {
		t.Errorf("util 0.80 below hispeed should not jump to max")
	}
}

func TestInteractiveJobStartKeepsLevel(t *testing.T) {
	p := plat()
	g := &Interactive{Plat: p}
	if d := g.JobStart(job(0.05), p.Levels[5]); d.Target.Index != 5 {
		t.Errorf("interactive moved at job start")
	}
	if g.SampleInterval() != 0.080 {
		t.Errorf("sample interval = %g, want 0.080", g.SampleInterval())
	}
	g2 := &Interactive{Plat: p, SamplePeriodSec: 0.02}
	if g2.SampleInterval() != 0.02 {
		t.Errorf("custom interval ignored")
	}
}

func TestPIDColdStartConservative(t *testing.T) {
	p := plat()
	g := &PID{Plat: p, MemFraction: 0.1}
	d := g.JobStart(job(0.05), p.Levels[3])
	if d.Target.Index != p.MaxLevel().Index {
		t.Errorf("cold start level %d, want max", d.Target.Index)
	}
	if !math.IsNaN(d.PredictedExecSec) {
		t.Errorf("cold start should not claim a prediction")
	}
}

func TestPIDConvergesOnSteadyLoad(t *testing.T) {
	p := plat()
	g := &PID{Plat: p, MemFraction: 0.1}
	const actual = 0.010 // steady 10ms jobs at whatever level chosen
	var last Decision
	for i := 0; i < 60; i++ {
		last = g.JobStart(job(0.05), p.MaxLevel())
		// Report the job as if it ran at the chosen level taking the
		// equivalent of 10ms at fmax.
		rho := 0.1
		t10 := actual*rho + actual*(1-rho)*p.MaxLevel().FreqHz/last.Target.FreqHz
		g.JobEnd(job(0.05), t10)
	}
	// 10ms at fmax with 50ms budget: should settle well below max.
	if last.Target.Index > 5 {
		t.Errorf("steady load settled at level %d, want low", last.Target.Index)
	}
	if math.Abs(g.estFmaxSec-actual) > 0.004 {
		t.Errorf("estimate %.4f far from actual %.4f", g.estFmaxSec, actual)
	}
}

func TestPIDLagsOnSpike(t *testing.T) {
	p := plat()
	g := &PID{Plat: p, MemFraction: 0.1}
	// Train on small jobs, then check the decision before a spike.
	for i := 0; i < 30; i++ {
		d := g.JobStart(job(0.05), p.MaxLevel())
		rho := 0.1
		tl := 0.005 * (rho + (1-rho)*p.MaxLevel().FreqHz/d.Target.FreqHz)
		g.JobEnd(job(0.05), tl)
	}
	d := g.JobStart(job(0.05), p.MaxLevel())
	// The controller expects ~5ms; a 40ms-at-fmax spike would miss at
	// this level if the level can't cover it.
	spikeAtLevel := 0.040 * (0.1 + 0.9*p.MaxLevel().FreqHz/d.Target.FreqHz)
	if spikeAtLevel <= 0.05 {
		t.Errorf("PID level %d absorbs a 40ms spike (%.3fs) — too conservative to show lag",
			d.Target.Index, spikeAtLevel)
	}
}

func TestPIDEstimateNeverNegative(t *testing.T) {
	p := plat()
	g := &PID{Plat: p, MemFraction: 0.1}
	for i := 0; i < 50; i++ {
		g.JobStart(job(0.05), p.MaxLevel())
		g.JobEnd(job(0.05), 0.00001) // tiny jobs drive the estimate down
	}
	if g.estFmaxSec < 0 {
		t.Errorf("estimate went negative: %g", g.estFmaxSec)
	}
}

func TestOraclePicksMinimalFeasibleLevel(t *testing.T) {
	p := plat()
	g := &Oracle{Plat: p}
	w := taskir.Work{CPU: 14e6, MemSec: 0.002} // 12ms at fmax
	j := job(0.05)
	j.PeekWork = func() taskir.Work { return w }
	d := g.JobStart(j, p.MaxLevel())
	// Chosen level runs within budget...
	tAt := p.JobTimeAt(w.CPU, w.MemSec, d.Target)
	if tAt > 0.05 {
		t.Errorf("oracle pick takes %.3fs > budget", tAt)
	}
	// ...and the next lower level would not (with margin).
	if d.Target.Index > 0 {
		lower := p.Levels[d.Target.Index-1]
		if p.JobTimeAt(w.CPU*1.12, w.MemSec*1.12, lower) <= 0.05 {
			t.Errorf("oracle not minimal: level %d also fits", lower.Index)
		}
	}
	if math.IsNaN(d.PredictedExecSec) {
		t.Errorf("oracle should predict exec time")
	}
}

func TestBaseNoOps(t *testing.T) {
	var b Base
	b.JobEnd(nil, 0)
	if b.SampleInterval() != 0 {
		t.Error("Base samples")
	}
	p := plat()
	if got := b.Sample(0.5, p.Levels[2]); got.Index != 2 {
		t.Error("Base.Sample moved level")
	}
}

func TestOndemandJumpsAndScales(t *testing.T) {
	p := plat()
	g := &Ondemand{Plat: p}
	if g.SampleInterval() != 0.020 {
		t.Errorf("interval = %g", g.SampleInterval())
	}
	if got := g.Sample(0.85, p.Levels[2]); got.Index != p.MaxLevel().Index {
		t.Errorf("high load should jump to max, got %d", got.Index)
	}
	// Low load scales proportionally, possibly several levels at once
	// (no hysteresis, unlike our interactive model).
	got := g.Sample(0.20, p.MaxLevel())
	if got.Index >= p.MaxLevel().Index-1 {
		t.Errorf("ondemand should drop multiple levels, got %d", got.Index)
	}
	if d := g.JobStart(job(0.05), p.Levels[4]); d.Target.Index != 4 {
		t.Errorf("ondemand moved at job start")
	}
}

func TestCoordinatorReservesOtherTasksDemand(t *testing.T) {
	p := plat()
	c := NewCoordinator()
	// Task A: 100ms period; Task B: 50ms period, phase 37ms.
	innerA := &countingGov{plat: p}
	innerB := &countingGov{plat: p}
	ga := c.Wrap(innerA, 0.100, 0)
	gb := c.Wrap(innerB, 0.050, 0.037)
	if ga.Name() != "counting-coord" {
		t.Errorf("name = %s", ga.Name())
	}
	// Before B has run, A sees no reservation (unseeded tasks reserve 0).
	jA := &Job{ReleaseSec: 0, DeadlineSec: 0.100, RemainingBudgetSec: 0.100,
		Params: map[string]int64{}, Globals: map[string]int64{}}
	ga.JobStart(jA, p.MaxLevel())
	// Teach B's demand: 5ms per job.
	jB := &Job{ReleaseSec: 0.037, DeadlineSec: 0.087, RemainingBudgetSec: 0.050,
		Params: map[string]int64{}, Globals: map[string]int64{}}
	gb.JobStart(jB, p.MaxLevel())
	gb.JobEnd(jB, 0.005)
	// Now A's window [0, 0.100) contains two B releases (0.037, 0.087):
	// reserve = 2 × 5ms × 1.25 = 12.5ms.
	probe := &probeGov{}
	ga2 := c.Wrap(probe, 0.100, 0) // fresh coordinated wrapper sharing c
	_ = ga2
	gaProbe := &coordinated{c: c, me: c.tasks[0], inner: probe}
	gaProbe.JobStart(jA, p.MaxLevel())
	want := 0.100 - 2*0.005*1.25
	if mathAbsG(probe.gotBudget-want) > 1e-9 {
		t.Errorf("tightened budget = %g, want %g", probe.gotBudget, want)
	}
}

func TestCoordinatorBudgetFloor(t *testing.T) {
	p := plat()
	c := NewCoordinator()
	probe := &probeGov{}
	a := c.Wrap(probe, 0.010, 0)
	// A hog task with huge demand.
	hogInner := &countingGov{plat: p}
	hog := c.Wrap(hogInner, 0.002, 0)
	jHog := &Job{ReleaseSec: 0, DeadlineSec: 0.002, RemainingBudgetSec: 0.002,
		Params: map[string]int64{}, Globals: map[string]int64{}}
	hog.JobEnd(jHog, 0.004) // seeds 4ms demand every 2ms — overload
	j := &Job{ReleaseSec: 0, DeadlineSec: 0.010, RemainingBudgetSec: 0.010,
		Params: map[string]int64{}, Globals: map[string]int64{}}
	a.JobStart(j, p.MaxLevel())
	if probe.gotBudget < 0.0025-1e-12 {
		t.Errorf("budget collapsed below the 25%% floor: %g", probe.gotBudget)
	}
}

type probeGov struct {
	Base
	gotBudget float64
}

func (*probeGov) Name() string { return "probe" }

func (g *probeGov) JobStart(job *Job, cur platform.Level) Decision {
	g.gotBudget = job.RemainingBudgetSec
	return Decision{Target: cur, PredictedExecSec: math.NaN()}
}

func mathAbsG(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestMovingAverageColdStartAndConvergence(t *testing.T) {
	p := plat()
	g := &MovingAverage{Plat: p, MemFraction: 0.1}
	d := g.JobStart(job(0.05), p.Levels[3])
	if d.Target.Index != p.MaxLevel().Index {
		t.Errorf("cold start level %d, want max", d.Target.Index)
	}
	// Steady 10ms-at-fmax jobs → settles at a low level.
	for i := 0; i < 30; i++ {
		d = g.JobStart(job(0.05), p.MaxLevel())
		rho := 0.1
		tl := 0.010 * (rho + (1-rho)*p.MaxLevel().EffFreqHz()/d.Target.EffFreqHz())
		g.JobEnd(job(0.05), tl)
	}
	if d.Target.Index > 5 {
		t.Errorf("steady load settled at level %d, want low", d.Target.Index)
	}
	// Window is bounded.
	if len(g.histFmax) > 8 {
		t.Errorf("history %d exceeds default window", len(g.histFmax))
	}
}

func TestMovingAverageSmootherThanPID(t *testing.T) {
	// Feed both controllers an alternating small/large series; the MA
	// estimate must move less between consecutive decisions.
	p := plat()
	ma := &MovingAverage{Plat: p, MemFraction: 0.1}
	pid := &PID{Plat: p, MemFraction: 0.1}
	times := []float64{0.005, 0.030, 0.005, 0.030, 0.005, 0.030, 0.005, 0.030}
	var maLevels, pidLevels []int
	for _, tt := range times {
		dm := ma.JobStart(job(0.05), p.MaxLevel())
		ma.JobEnd(job(0.05), tt)
		maLevels = append(maLevels, dm.Target.Index)
		dp := pid.JobStart(job(0.05), p.MaxLevel())
		pid.JobEnd(job(0.05), tt)
		pidLevels = append(pidLevels, dp.Target.Index)
	}
	swing := func(ls []int) int {
		s := 0
		for i := 2; i < len(ls); i++ { // skip warm-up
			d := ls[i] - ls[i-1]
			if d < 0 {
				d = -d
			}
			s += d
		}
		return s
	}
	if swing(maLevels) > swing(pidLevels) {
		t.Errorf("moving average swings more than PID: %v vs %v", maLevels, pidLevels)
	}
}
