package governor

import (
	"math"

	"repro/internal/platform"
)

// Interactive models the Linux interactive governor as the paper
// describes it (§5.1): "It samples CPU utilization every 80
// milliseconds and changes to maximum frequency if CPU utilization is
// above 85%." Below the hispeed threshold it scales frequency
// proportionally toward a target load, and — like the real governor's
// min_sample_time hysteresis — it ramps down at most one level per
// sample, which is why the paper finds it misses few deadlines but
// burns energy.
type Interactive struct {
	Base
	Plat *platform.Platform
	// SamplePeriodSec defaults to 80 ms when zero.
	SamplePeriodSec float64
	// GoHispeedLoad defaults to 0.85 when zero.
	GoHispeedLoad float64
	// TargetLoad defaults to 0.60 when zero (headroom keeps misses
	// rare at the cost of energy).
	TargetLoad float64
}

// Name implements Governor.
func (*Interactive) Name() string { return "interactive" }

// JobStart implements Governor: the interactive governor is oblivious
// to job boundaries; the level simply stays where sampling put it.
func (g *Interactive) JobStart(_ *Job, cur platform.Level) Decision {
	return Decision{Target: cur, PredictedExecSec: math.NaN()}
}

// SampleInterval implements Governor.
func (g *Interactive) SampleInterval() float64 {
	if g.SamplePeriodSec > 0 {
		return g.SamplePeriodSec
	}
	return 0.080
}

// Sample implements Governor.
func (g *Interactive) Sample(util float64, cur platform.Level) platform.Level {
	hispeed := g.GoHispeedLoad
	if hispeed == 0 {
		hispeed = 0.85
	}
	target := g.TargetLoad
	if target == 0 {
		target = 0.60
	}
	if util >= hispeed {
		return g.Plat.MaxLevel()
	}
	// Scale so the observed load would have run at the target load:
	// f_new = f_cur · util / target.
	want := g.Plat.LevelAtOrAbove(cur.EffFreqHz() * util / target)
	if want.Index < cur.Index-1 {
		// Hysteresis: ramp down one level at a time.
		return g.Plat.Levels[cur.Index-1]
	}
	return want
}
