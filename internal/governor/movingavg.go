package governor

import (
	"math"

	"repro/internal/dvfs"
	"repro/internal/platform"
)

// MovingAverage is the frame-based reactive baseline of the paper's
// related work (§6.1, after Choi et al.): it predicts the next job's
// execution time as the moving average of the last W jobs and selects
// the lowest frequency meeting the budget. Like the PID controller it
// cannot react to job-to-job input changes — it is strictly smoother,
// so it lags spikes even more.
type MovingAverage struct {
	Base
	Plat   *platform.Platform
	Switch *platform.SwitchTable
	// Window is the averaging length W; zero selects 8.
	Window int
	// MemFraction is the profiled memory share (as for PID).
	MemFraction float64
	// Margin inflates the estimate; zero selects 0.10.
	Margin float64

	histFmax  []float64
	lastLevel platform.Level
}

// Name implements Governor.
func (*MovingAverage) Name() string { return "movingavg" }

// JobStart implements Governor.
func (g *MovingAverage) JobStart(job *Job, cur platform.Level) Decision {
	if len(g.histFmax) == 0 {
		g.lastLevel = g.Plat.MaxLevel()
		return Decision{Target: g.lastLevel, PredictedExecSec: math.NaN()}
	}
	sum := 0.0
	for _, v := range g.histFmax {
		sum += v
	}
	margin := g.Margin
	if margin == 0 {
		margin = 0.10
	}
	est := sum / float64(len(g.histFmax)) * (1 + margin)
	tmem := est * g.MemFraction
	ndep := (est - tmem) * g.Plat.MaxLevel().EffFreqHz()
	tp := dvfs.TwoPoint{Ndep: ndep, TmemSec: tmem}
	sel := &dvfs.Selector{Plat: g.Plat, Switch: g.Switch}
	target := sel.PickFromModel(cur, tp, job.RemainingBudgetSec)
	g.lastLevel = target
	return Decision{Target: target, PredictedExecSec: tp.TimeAt(target.EffFreqHz())}
}

// JobEnd implements Governor.
func (g *MovingAverage) JobEnd(_ *Job, actualExecSec float64) {
	rho := g.MemFraction
	fmax := g.Plat.MaxLevel().EffFreqHz()
	atFmax := actualExecSec*rho + actualExecSec*(1-rho)*g.lastLevel.EffFreqHz()/fmax
	w := g.Window
	if w <= 0 {
		w = 8
	}
	g.histFmax = append(g.histFmax, atFmax)
	if len(g.histFmax) > w {
		g.histFmax = g.histFmax[len(g.histFmax)-w:]
	}
}
