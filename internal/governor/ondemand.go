package governor

import (
	"math"

	"repro/internal/platform"
)

// Ondemand models the classic Linux ondemand governor, the other
// utilization-driven kernel policy of the paper's era (§6.1: "the
// built-in Linux governors adjust DVFS based on CPU utilization"):
// it samples load on a short period, jumps straight to the maximum
// frequency when load exceeds up_threshold, and otherwise steps the
// frequency down proportionally. Compared to interactive it reacts
// faster upward (shorter period) but has no hispeed hysteresis.
type Ondemand struct {
	Base
	Plat *platform.Platform
	// SamplePeriodSec defaults to 20 ms when zero (kernel default
	// order of magnitude for these cores).
	SamplePeriodSec float64
	// UpThreshold defaults to 0.80 when zero.
	UpThreshold float64
}

// Name implements Governor.
func (*Ondemand) Name() string { return "ondemand" }

// JobStart implements Governor: like interactive, ondemand ignores job
// boundaries.
func (g *Ondemand) JobStart(_ *Job, cur platform.Level) Decision {
	return Decision{Target: cur, PredictedExecSec: math.NaN()}
}

// SampleInterval implements Governor.
func (g *Ondemand) SampleInterval() float64 {
	if g.SamplePeriodSec > 0 {
		return g.SamplePeriodSec
	}
	return 0.020
}

// Sample implements Governor.
func (g *Ondemand) Sample(util float64, cur platform.Level) platform.Level {
	up := g.UpThreshold
	if up == 0 {
		up = 0.80
	}
	if util >= up {
		return g.Plat.MaxLevel()
	}
	// The kernel's proportional down-scaling: next freq keeps the
	// observed load just under the threshold.
	return g.Plat.LevelAtOrAbove(cur.EffFreqHz() * util / up)
}
