package governor

import (
	"repro/internal/dvfs"
	"repro/internal/platform"
)

// Oracle is the perfect-prediction upper bound of §5.3: it "uses
// recorded job times from a previous run with the same inputs to
// predict the execution time of jobs". In this reproduction the
// recording is the job's deterministic work, obtained through
// Job.PeekWork without executing the job; run-to-run noise is the only
// divergence between the recording and the measured run, exactly as on
// the real board. The paper evaluates the oracle with predictor and
// switch overheads removed, which the simulator's configuration
// controls.
type Oracle struct {
	Base
	Plat *platform.Platform
	// Switch may be nil (the paper's oracle ignores switch overhead).
	Switch *platform.SwitchTable
	// Margin guards against run-to-run noise between the recorded run
	// and this one; zero selects 0.12.
	Margin float64
}

// Name implements Governor.
func (*Oracle) Name() string { return "oracle" }

// JobStart implements Governor.
func (g *Oracle) JobStart(job *Job, cur platform.Level) Decision {
	w := job.PeekWork()
	margin := g.Margin
	if margin == 0 {
		margin = 0.12
	}
	tp := dvfs.TwoPoint{
		Ndep:    w.CPU * g.Plat.CPIScale * (1 + margin),
		TmemSec: w.MemSec * g.Plat.MemScale * (1 + margin),
	}
	sel := &dvfs.Selector{Plat: g.Plat, Switch: g.Switch}
	target := sel.PickFromModel(cur, tp, job.RemainingBudgetSec)
	return Decision{Target: target, PredictedExecSec: tp.TimeAt(target.EffFreqHz())}
}
