package governor

import (
	"math"

	"repro/internal/dvfs"
	"repro/internal/platform"
)

// PID is the reactive deadline-aware baseline (§5.1, after Gu &
// Chakraborty): it predicts the next job's execution time from the
// history of past execution times with a PID control law, then selects
// the lowest frequency that meets the budget. Because the estimate
// trails the actual job-to-job variation (Fig 3), it either misses
// deadlines on upward spikes or wastes energy on downward ones.
type PID struct {
	Base
	Plat *platform.Platform
	// Switch is the 95th-percentile switch-time table used when
	// choosing levels; may be nil to ignore switch overhead.
	Switch *platform.SwitchTable
	// Kp, Ki, Kd are the control gains ("trained offline ... optimized
	// to reduce deadline misses"); zero values select tuned defaults.
	Kp, Ki, Kd float64
	// MemFraction is the workload's average memory-time share of job
	// execution (ρ = Tmem/t), obtained from offline profiling; it lets
	// the controller translate execution times across frequencies.
	MemFraction float64
	// Margin inflates the estimate like the predictive controller's
	// margin; zero selects 0.15.
	Margin float64

	// Controller state.
	estFmaxSec  float64 // estimated next job time at fmax
	integral    float64
	prevErr     float64
	initialized bool
	lastLevel   platform.Level
	lastPredict float64 // estimate used for the last decision, at the chosen level
}

// Name implements Governor.
func (*PID) Name() string { return "pid" }

func (g *PID) gains() (kp, ki, kd float64) {
	kp, ki, kd = g.Kp, g.Ki, g.Kd
	if kp == 0 {
		kp = 0.5
	}
	if ki == 0 {
		ki = 0.04
	}
	if kd == 0 {
		kd = 0.1
	}
	return kp, ki, kd
}

// JobStart implements Governor: pick the cheapest level whose
// model-translated estimate meets the remaining budget.
func (g *PID) JobStart(job *Job, cur platform.Level) Decision {
	if !g.initialized {
		// Cold start: be conservative until feedback arrives.
		g.lastLevel = g.Plat.MaxLevel()
		g.lastPredict = math.NaN()
		return Decision{Target: g.lastLevel, PredictedExecSec: math.NaN()}
	}
	margin := g.Margin
	if margin == 0 {
		margin = 0.15
	}
	est := g.estFmaxSec * (1 + margin)
	// Translate the fmax estimate into (Tmem, Ndep) using the profiled
	// memory fraction, then pick the minimal level.
	tmem := est * g.MemFraction
	ndep := (est - tmem) * g.Plat.MaxLevel().EffFreqHz()
	tp := dvfs.TwoPoint{Ndep: ndep, TmemSec: tmem}
	sel := &dvfs.Selector{Plat: g.Plat, Switch: g.Switch}
	target := sel.PickFromModel(cur, tp, job.RemainingBudgetSec)
	g.lastLevel = target
	g.lastPredict = tp.TimeAt(target.EffFreqHz())
	return Decision{Target: target, PredictedExecSec: g.lastPredict}
}

// JobEnd implements Governor: fold the observed execution time back
// into the fmax-equivalent estimate with the PID law.
func (g *PID) JobEnd(_ *Job, actualExecSec float64) {
	actualFmax := g.toFmax(actualExecSec, g.lastLevel)
	if !g.initialized {
		g.estFmaxSec = actualFmax
		g.initialized = true
		return
	}
	err := actualFmax - g.estFmaxSec
	kp, ki, kd := g.gains()
	g.integral += err
	g.estFmaxSec += kp*err + ki*g.integral + kd*(err-g.prevErr)
	g.prevErr = err
	if g.estFmaxSec < 0 {
		g.estFmaxSec = 0
	}
}

// toFmax translates a time measured at level l into its fmax
// equivalent using the profiled memory fraction.
func (g *PID) toFmax(t float64, l platform.Level) float64 {
	rho := g.MemFraction
	return t*rho + t*(1-rho)*l.EffFreqHz()/g.Plat.MaxLevel().EffFreqHz()
}
