// Package instrument implements the paper's feature instrumentation
// pass (§3.2, Fig 7). Given a task program it produces an instrumented
// copy that counts control-flow features during execution:
//
//   - for each conditional branch, the number of times it is taken
//     (a FeatAdd of 1 at the head of the then-block);
//   - for each counted loop, its trip count (a FeatAdd of the count
//     expression hoisted in front of the loop, exactly like the
//     paper's `feature[1] += n; for (i=0; i<n; i++)` example);
//   - for each while-loop (no closed-form count), an in-body counter,
//     like the paper's `while (n = n->next) { feature[2]++; ... }`;
//   - for each function-pointer call site, the callee address
//     (a FeatCall in front of the call).
//
// The original program is never mutated; statements are rebuilt so the
// slicer can safely transform the instrumented copy.
package instrument

import (
	"fmt"
	"sort"

	"repro/internal/taskir"
)

// SiteKind classifies a feature site.
type SiteKind int

// Feature site kinds.
const (
	// KindBranch counts how often a conditional's then-branch runs.
	KindBranch SiteKind = iota
	// KindLoop counts a loop's trip count.
	KindLoop
	// KindCall records the target address of an indirect call.
	KindCall
)

func (k SiteKind) String() string {
	switch k {
	case KindBranch:
		return "branch"
	case KindLoop:
		return "loop"
	case KindCall:
		return "call"
	}
	return fmt.Sprintf("SiteKind(%d)", int(k))
}

// Site describes one instrumented feature counter.
type Site struct {
	// FID is the dense feature index used by FeatAdd/FeatCall.
	FID int
	// Kind says what the counter measures.
	Kind SiteKind
	// CtrlID is the ID of the If/Loop/Call statement in the source
	// program.
	CtrlID int
}

// Program couples an instrumented task with its feature site table.
type Program struct {
	// Prog is the instrumented program; running it with a feature
	// recorder produces the control-flow features of the job.
	Prog *taskir.Program
	// Sites lists feature sites in FID order.
	Sites []Site
}

// Site returns the site with the given FID, or false.
func (ip *Program) Site(fid int) (Site, bool) {
	if fid < 0 || fid >= len(ip.Sites) {
		return Site{}, false
	}
	return ip.Sites[fid], true
}

// SiteForCtrl returns the feature site instrumenting the control
// statement with the given ID, or false when the site is not
// instrumented. Control-flow IDs are unique per program (Validate
// enforces it), so at most one site matches.
func (ip *Program) SiteForCtrl(ctrlID int) (Site, bool) {
	for _, s := range ip.Sites {
		if s.CtrlID == ctrlID {
			return s, true
		}
	}
	return Site{}, false
}

// Instrument returns an instrumented copy of p with one feature site
// per conditional, loop, and indirect call site, in pre-order.
func Instrument(p *taskir.Program) *Program {
	ins := &instrumenter{}
	q := p.Clone()
	q.Body = ins.block(p.Body)
	return &Program{Prog: q, Sites: ins.sites}
}

type instrumenter struct {
	sites []Site
}

func (ins *instrumenter) newSite(kind SiteKind, ctrlID int) int {
	fid := len(ins.sites)
	ins.sites = append(ins.sites, Site{FID: fid, Kind: kind, CtrlID: ctrlID})
	return fid
}

func (ins *instrumenter) block(stmts []taskir.Stmt) []taskir.Stmt {
	out := make([]taskir.Stmt, 0, len(stmts))
	for _, s := range stmts {
		switch st := s.(type) {
		case *taskir.If:
			fid := ins.newSite(KindBranch, st.ID)
			then := append([]taskir.Stmt{&taskir.FeatAdd{FID: fid, Amount: taskir.Const(1)}},
				ins.block(st.Then)...)
			out = append(out, &taskir.If{
				ID:   st.ID,
				Cond: st.Cond,
				Then: then,
				Else: ins.block(st.Else),
			})
		case *taskir.While:
			// The while pattern of Fig 7: no closed-form trip count, so
			// the counter increments inside the body.
			fid := ins.newSite(KindLoop, st.ID)
			body := append([]taskir.Stmt{&taskir.FeatAdd{FID: fid, Amount: taskir.Const(1)}},
				ins.block(st.Body)...)
			out = append(out, &taskir.While{
				ID:      st.ID,
				Cond:    st.Cond,
				Body:    body,
				MaxIter: st.MaxIter,
			})
		case *taskir.Loop:
			fid := ins.newSite(KindLoop, st.ID)
			// feature[fid] += max(count, 0): a negative count runs zero
			// iterations, so it must contribute zero to the feature.
			out = append(out,
				&taskir.FeatAdd{FID: fid, Amount: taskir.Max(st.Count, taskir.Const(0))},
				&taskir.Loop{
					ID:       st.ID,
					Count:    st.Count,
					IndexVar: st.IndexVar,
					Body:     ins.block(st.Body),
				})
		case *taskir.Call:
			fid := ins.newSite(KindCall, st.ID)
			funcs := make(map[int64][]taskir.Stmt, len(st.Funcs))
			addrs := make([]int64, 0, len(st.Funcs))
			for a := range st.Funcs {
				addrs = append(addrs, a)
			}
			sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
			for _, a := range addrs {
				funcs[a] = ins.block(st.Funcs[a])
			}
			out = append(out,
				&taskir.FeatCall{FID: fid, Target: st.Target},
				&taskir.Call{ID: st.ID, Target: st.Target, Funcs: funcs})
		default:
			// Assign, Compute, and pre-existing feature statements pass
			// through untouched.
			out = append(out, s)
		}
	}
	return out
}
