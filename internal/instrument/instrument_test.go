package instrument_test

import (
	"testing"

	"repro/internal/features"
	"repro/internal/instrument"
	"repro/internal/taskir"
)

// demo builds a small task with a branch, a loop nest, and an indirect
// call, plus global state the body updates.
func demo() *taskir.Program {
	return &taskir.Program{
		Name:    "demo",
		Params:  []string{"n", "mode"},
		Globals: map[string]int64{"state": 0},
		Body: []taskir.Stmt{
			&taskir.Assign{Dst: "work", Expr: taskir.Add(taskir.Var("n"), taskir.Var("state"))},
			&taskir.If{ID: 1, Cond: taskir.GT(taskir.Var("mode"), taskir.Const(0)),
				Then: []taskir.Stmt{
					&taskir.Loop{ID: 2, Count: taskir.Var("work"), IndexVar: "i", Body: []taskir.Stmt{
						&taskir.Compute{Label: "inner", Work: 100, MemNS: 10},
					}},
				},
				Else: []taskir.Stmt{
					&taskir.Compute{Label: "cheap", Work: 5},
				}},
			&taskir.Call{ID: 3, Target: taskir.Var("mode"), Funcs: map[int64][]taskir.Stmt{
				0: {&taskir.Compute{Label: "f0", Work: 10}},
				1: {&taskir.Compute{Label: "f1", Work: 50}},
			}},
			&taskir.Assign{Dst: "state", Expr: taskir.Add(taskir.Var("state"), taskir.Const(1))},
		},
	}
}

func TestInstrumentCreatesSites(t *testing.T) {
	ip := instrument.Instrument(demo())
	if len(ip.Sites) != 3 {
		t.Fatalf("sites = %d, want 3", len(ip.Sites))
	}
	wantKinds := []instrument.SiteKind{instrument.KindBranch, instrument.KindLoop, instrument.KindCall}
	wantCtrl := []int{1, 2, 3}
	for i, s := range ip.Sites {
		if s.FID != i || s.Kind != wantKinds[i] || s.CtrlID != wantCtrl[i] {
			t.Errorf("site[%d] = %+v", i, s)
		}
	}
	if _, ok := ip.Site(2); !ok {
		t.Errorf("Site(2) not found")
	}
	if _, ok := ip.Site(3); ok {
		t.Errorf("Site(3) should not exist")
	}
}

func TestInstrumentDoesNotMutateOriginal(t *testing.T) {
	p := demo()
	before := p.StmtCount()
	instrument.Instrument(p)
	if p.StmtCount() != before {
		t.Fatalf("original program mutated: %d -> %d statements", before, p.StmtCount())
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("original invalid after instrumentation: %v", err)
	}
}

func TestInstrumentedFeatureCounts(t *testing.T) {
	ip := instrument.Instrument(demo())
	env := taskir.NewEnv(map[string]int64{"state": 2})
	env.SetParams(map[string]int64{"n": 3, "mode": 1})
	tr := features.NewTrace()
	if _, err := taskir.Run(ip.Prog, env, taskir.RunOptions{Recorder: tr}); err != nil {
		t.Fatal(err)
	}
	// mode=1 → branch taken once; loop runs work = n+state = 5 times;
	// call dispatches to addr 1.
	if tr.Counts[0] != 1 {
		t.Errorf("branch count = %d, want 1", tr.Counts[0])
	}
	if tr.Counts[1] != 5 {
		t.Errorf("loop count = %d, want 5", tr.Counts[1])
	}
	if !tr.CallAddrs[2][1] {
		t.Errorf("call addr 1 not recorded: %v", tr.CallAddrs)
	}
}

func TestInstrumentedNotTakenBranch(t *testing.T) {
	ip := instrument.Instrument(demo())
	env := taskir.NewEnv(map[string]int64{"state": 0})
	env.SetParams(map[string]int64{"n": 3, "mode": 0})
	tr := features.NewTrace()
	if _, err := taskir.Run(ip.Prog, env, taskir.RunOptions{Recorder: tr}); err != nil {
		t.Fatal(err)
	}
	if tr.Counts[0] != 0 {
		t.Errorf("branch count = %d, want 0", tr.Counts[0])
	}
	// Loop is inside the untaken branch: its hoisted counter must not
	// fire either.
	if tr.Counts[1] != 0 {
		t.Errorf("loop count = %d, want 0", tr.Counts[1])
	}
}

func TestInstrumentationPreservesSemantics(t *testing.T) {
	p := demo()
	ip := instrument.Instrument(p)
	for mode := int64(0); mode <= 1; mode++ {
		for n := int64(0); n < 8; n++ {
			gOrig := map[string]int64{"state": 4}
			gIns := map[string]int64{"state": 4}

			envO := taskir.NewEnv(gOrig)
			envO.SetParams(map[string]int64{"n": n, "mode": mode})
			wO, err := taskir.Run(p, envO, taskir.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}

			envI := taskir.NewEnv(gIns)
			envI.SetParams(map[string]int64{"n": n, "mode": mode})
			wI, err := taskir.Run(ip.Prog, envI, taskir.RunOptions{Recorder: features.NewTrace()})
			if err != nil {
				t.Fatal(err)
			}

			if gOrig["state"] != gIns["state"] {
				t.Fatalf("n=%d mode=%d: state diverged %d vs %d", n, mode, gOrig["state"], gIns["state"])
			}
			if wI.MemSec != wO.MemSec {
				t.Errorf("n=%d mode=%d: mem time changed %g vs %g", n, mode, wO.MemSec, wI.MemSec)
			}
			if wI.CPU < wO.CPU {
				t.Errorf("n=%d mode=%d: instrumented CPU %g < original %g", n, mode, wI.CPU, wO.CPU)
			}
		}
	}
}

func TestInstrumentNegativeLoopCountFeatureIsZero(t *testing.T) {
	p := &taskir.Program{
		Name:    "neg",
		Params:  []string{"n"},
		Globals: map[string]int64{},
		Body: []taskir.Stmt{
			&taskir.Loop{ID: 1, Count: taskir.Var("n"), Body: []taskir.Stmt{
				&taskir.Compute{Work: 1},
			}},
		},
	}
	ip := instrument.Instrument(p)
	env := taskir.NewEnv(map[string]int64{})
	env.SetParams(map[string]int64{"n": -5})
	tr := features.NewTrace()
	if _, err := taskir.Run(ip.Prog, env, taskir.RunOptions{Recorder: tr}); err != nil {
		t.Fatal(err)
	}
	if tr.Counts[0] != 0 {
		t.Errorf("loop feature = %d for negative count, want 0", tr.Counts[0])
	}
}

func TestSiteKindString(t *testing.T) {
	if instrument.KindBranch.String() != "branch" || instrument.KindLoop.String() != "loop" || instrument.KindCall.String() != "call" {
		t.Errorf("SiteKind strings wrong: %s %s %s", instrument.KindBranch, instrument.KindLoop, instrument.KindCall)
	}
}
