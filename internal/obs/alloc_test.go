package obs

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"testing"
)

// TestSpanCaptureZeroAlloc: the //dvfs:hotpath span-capture methods
// (Start/Next/End) must not allocate — they run inside the decision
// whose cost §3.4 charges against every job's budget. The ledger lives
// in the timer's fixed arrays; a stack-local timer must stay on the
// stack.
func TestSpanCaptureZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is not meaningful under the race detector")
	}
	allocs := testing.AllocsPerRun(200, func() {
		var st SpanTimer
		st.Start(PhaseDecide)
		st.Start(PhasePredict)
		st.Next(PhaseSelect)
		st.End()
		st.End()
	})
	if allocs != 0 {
		t.Fatalf("span capture allocated %.1f times per run", allocs)
	}
}

// TestFeatureHashZeroAlloc: the inlined FNV-1a must not allocate the
// way the hash/fnv-based implementation did (interface boxing of the
// hash state plus the Write call).
func TestFeatureHashZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is not meaningful under the race detector")
	}
	x := []float64{1, 2.5, -3, 0, math.Pi}
	var sink uint64
	allocs := testing.AllocsPerRun(200, func() {
		sink += FeatureHash(x)
	})
	if allocs != 0 {
		t.Fatalf("FeatureHash allocated %.1f times per run", allocs)
	}
	_ = sink
}

// TestFeatureHashMatchesFNV pins the inlined implementation to the
// standard library's: same bytes in, same sum out, so hashes recorded
// by earlier builds still correlate.
func TestFeatureHashMatchesFNV(t *testing.T) {
	vectors := [][]float64{
		nil,
		{0},
		{1, 2, 3},
		{-1.5, math.Pi, 1e300, -0.0, math.MaxFloat64},
		{math.SmallestNonzeroFloat64, 42},
	}
	for _, x := range vectors {
		h := fnv.New64a()
		var buf [8]byte
		for _, v := range x {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
		if got, want := FeatureHash(x), h.Sum64(); got != want {
			t.Errorf("FeatureHash(%v) = %#x, fnv says %#x", x, got, want)
		}
	}
}
