package obs

import (
	"sync"
	"sync/atomic"
)

// BroadcasterOptions configures NewBroadcaster.
type BroadcasterOptions struct {
	// QueueSize bounds each subscriber's event queue; 0 → 256.
	QueueSize int
	// Dropped, when non-nil, is incremented once per event dropped on a
	// full subscriber queue (dvfsd registers obs_stream_dropped_total
	// here).
	Dropped *Counter
}

// Broadcaster is a Sink that fans events out to live subscribers —
// the server side of dvfsd's GET /v1/events stream. Every subscriber
// has a bounded queue; an event that does not fit is dropped for that
// subscriber and counted, never waited for, so a slow or stalled
// stream reader can not back-pressure the decision path.
type Broadcaster struct {
	mu      sync.RWMutex
	subs    map[*Subscription]struct{}
	closed  bool
	queue   int
	counter *Counter
	dropped atomic.Uint64
}

var _ Sink = (*Broadcaster)(nil)

// NewBroadcaster builds a broadcaster with no subscribers.
func NewBroadcaster(opts BroadcasterOptions) *Broadcaster {
	if opts.QueueSize <= 0 {
		opts.QueueSize = 256
	}
	return &Broadcaster{
		subs:    map[*Subscription]struct{}{},
		queue:   opts.QueueSize,
		counter: opts.Dropped,
	}
}

// Subscription is one subscriber's live event feed. Receive from C;
// it is closed when the subscription is cancelled or the broadcaster
// shuts down.
type Subscription struct {
	// C delivers matching events in emission order (minus drops).
	C <-chan DecisionEvent

	ch      chan DecisionEvent
	filter  EventFilter
	b       *Broadcaster
	dropped atomic.Uint64
	close   sync.Once
}

// Subscribe registers a subscriber whose queue receives every emitted
// event matching the filter's Workload/SinceSec criteria (Last is a
// log-tail criterion and does not apply to a live stream). Subscribing
// to a closed broadcaster returns an already-closed subscription.
func (b *Broadcaster) Subscribe(filter EventFilter) *Subscription {
	s := &Subscription{ch: make(chan DecisionEvent, b.queue), filter: filter, b: b}
	s.C = s.ch
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		s.close.Do(func() { close(s.ch) })
		return s
	}
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	return s
}

// Cancel removes the subscription and closes C. Safe to call more
// than once, and safe against concurrent Emit: removal and close
// happen under the lock that excludes senders.
func (s *Subscription) Cancel() {
	s.b.mu.Lock()
	delete(s.b.subs, s)
	s.close.Do(func() { close(s.ch) })
	s.b.mu.Unlock()
}

// Dropped returns how many events this subscription lost to a full
// queue.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Emit implements Sink: non-blocking fan-out. An event a subscriber
// has no room for is dropped and counted — the decision path never
// waits on a stream reader.
//
//dvfs:noblock
func (b *Broadcaster) Emit(e *DecisionEvent) {
	//dvfs:allow-block subscriber-set read lock: writers hold it only for map insert/delete at subscribe/cancel, never while sending
	b.mu.RLock()
	for s := range b.subs {
		if !s.filter.Match(e) {
			continue
		}
		select {
		case s.ch <- *e:
		default:
			s.dropped.Add(1)
			b.dropped.Add(1)
			if b.counter != nil {
				//dvfs:allow-block drop-path metrics increment: the counter's family mutex guards a map insert, held for nanoseconds
				b.counter.Inc()
			}
		}
	}
	b.mu.RUnlock()
}

// Dropped returns the total events dropped across all subscribers.
func (b *Broadcaster) Dropped() uint64 { return b.dropped.Load() }

// Subscribers returns the current subscriber count.
func (b *Broadcaster) Subscribers() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.subs)
}

// Close implements Sink: every subscription's channel is closed and
// further subscriptions are refused.
func (b *Broadcaster) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	for s := range b.subs {
		s.close.Do(func() { close(s.ch) })
		delete(b.subs, s)
	}
	return nil
}
