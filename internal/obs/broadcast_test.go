package obs

import (
	"sync"
	"testing"
	"time"
)

func TestBroadcasterFanOutAndFilter(t *testing.T) {
	b := NewBroadcaster(BroadcasterOptions{QueueSize: 8})
	all := b.Subscribe(EventFilter{})
	sha := b.Subscribe(EventFilter{Workload: "sha"})
	if got := b.Subscribers(); got != 2 {
		t.Fatalf("subscribers = %d", got)
	}
	b.Emit(&DecisionEvent{Seq: 0, Workload: "ldecode"})
	b.Emit(&DecisionEvent{Seq: 1, Workload: "sha"})
	if e := <-all.C; e.Seq != 0 {
		t.Errorf("all saw seq %d first", e.Seq)
	}
	if e := <-all.C; e.Seq != 1 {
		t.Errorf("all saw seq %d second", e.Seq)
	}
	if e := <-sha.C; e.Seq != 1 || e.Workload != "sha" {
		t.Errorf("filtered subscription saw %+v", e)
	}
	sha.Cancel()
	sha.Cancel() // idempotent
	if _, ok := <-sha.C; ok {
		t.Error("cancelled subscription channel not closed")
	}
	if got := b.Subscribers(); got != 1 {
		t.Errorf("subscribers after cancel = %d", got)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-all.C; ok {
		t.Error("subscription channel not closed on broadcaster Close")
	}
	// Subscribing after Close yields an already-closed feed.
	late := b.Subscribe(EventFilter{})
	if _, ok := <-late.C; ok {
		t.Error("post-Close subscription not closed")
	}
}

// TestBroadcasterSlowSubscriber exercises the backpressure satellite: a
// subscriber that never reads fills its bounded queue; further events
// are dropped and counted — on the subscription, the broadcaster, and
// the registered metrics counter — and Emit never blocks.
func TestBroadcasterSlowSubscriber(t *testing.T) {
	reg := NewRegistry()
	dropped := reg.Counter("obs_stream_dropped_total", "test")
	b := NewBroadcaster(BroadcasterOptions{QueueSize: 4, Dropped: dropped})
	slow := b.Subscribe(EventFilter{})
	// A subscriber whose filter matches nothing: unaffected by the storm,
	// and proof that drops are attributed per subscriber.
	other := b.Subscribe(EventFilter{Workload: "other"})

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			b.Emit(&DecisionEvent{Seq: uint64(i)})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Emit blocked on a slow subscriber")
	}

	// 4 queued, 96 dropped for the slow subscriber only.
	if got := slow.Dropped(); got != 96 {
		t.Errorf("subscription dropped = %d, want 96", got)
	}
	if got := b.Dropped(); got != 96 {
		t.Errorf("broadcaster dropped = %d, want 96", got)
	}
	if got := dropped.Value(); got != 96 {
		t.Errorf("obs_stream_dropped_total = %g, want 96", got)
	}
	if got := other.Dropped(); got != 0 {
		t.Errorf("non-matching subscription dropped = %d, want 0", got)
	}
	// The queued prefix is intact and in order.
	for i := 0; i < 4; i++ {
		if e := <-slow.C; e.Seq != uint64(i) {
			t.Errorf("queued event %d has seq %d", i, e.Seq)
		}
	}
	b.Close()
}

// TestBroadcasterSubscribeCancelRace hammers subscribe/cancel/emit
// concurrently; run under -race this is the satellite's race check, and
// in any mode it verifies no Emit sends on a closed channel (which
// would panic).
func TestBroadcasterSubscribeCancelRace(t *testing.T) {
	b := NewBroadcaster(BroadcasterOptions{QueueSize: 2})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := b.Subscribe(EventFilter{})
				// Drain a little, then cancel while emitters are active.
				select {
				case <-s.C:
				default:
				}
				s.Cancel()
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				b.Emit(&DecisionEvent{Seq: uint64(i)})
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	b.Close()
	// Close after the storm: subscribing now yields a closed feed.
	if _, ok := <-b.Subscribe(EventFilter{}).C; ok {
		t.Error("post-Close subscription not closed")
	}
}

// TestTracerWithBroadcasterSink wires a broadcaster in as a tracer sink
// the way dvfsd does and checks events flow through end to end.
func TestTracerWithBroadcasterSink(t *testing.T) {
	b := NewBroadcaster(BroadcasterOptions{QueueSize: 8})
	tr := NewTracer(TracerOptions{RingSize: 8, Sinks: []Sink{b}})
	sub := b.Subscribe(EventFilter{})
	pend := tr.Begin(DecisionEvent{Workload: "sha", Job: 3})
	pend.End(0.01, false)
	select {
	case e := <-sub.C:
		if e.Workload != "sha" || e.Job != 3 || !e.Done {
			t.Errorf("streamed event = %+v", e)
		}
	case <-time.After(time.Second):
		t.Fatal("no event reached the subscriber")
	}
	tr.Close()
	if _, ok := <-sub.C; ok {
		t.Error("tracer Close did not close the stream")
	}
}
