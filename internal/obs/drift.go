package obs

import (
	"log/slog"
	"math"
	"sort"
	"sync"
)

// DriftConfig parameterizes the drift monitor. Zero values select
// defaults matching the paper's training configuration.
type DriftConfig struct {
	// Window is the number of recent residuals kept per workload;
	// zero → 256.
	Window int
	// MinSamples is the minimum completed predictions before staleness
	// is evaluated; zero → 50.
	MinSamples int
	// Alpha is the under-prediction penalty weight the model was
	// trained with (§3.3); zero → 100. Training with asymmetric
	// penalty α makes the fit approximately the α/(1+α)-quantile
	// regressor, so a healthy model under-predicts ≈ 1/(1+α) of jobs.
	Alpha float64
	// MaxUnderRate is the sliding-window under-prediction rate above
	// which the model is declared stale; zero → 3/(1+Alpha) (three
	// times the trained expectation). The monitor clears staleness
	// with hysteresis at half this threshold.
	MaxUnderRate float64
	// Log receives staleness transitions; nil discards them.
	Log *slog.Logger
	// StaleGauge, when non-nil, is set to 1/0 per workload on
	// staleness transitions (the dvfsd `dvfsd_model_stale` gauge).
	StaleGauge *GaugeVec
	// SLO, when non-nil, lets staleness warnings report the workload's
	// current deadline-miss burn rates alongside the residual drift —
	// the operator's first question after "the model drifted" is
	// "is it costing us the SLO yet?".
	SLO *SLOTracker
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 50
	}
	if c.Alpha <= 0 {
		c.Alpha = 100
	}
	if c.MaxUnderRate <= 0 {
		c.MaxUnderRate = 3 / (1 + c.Alpha)
	}
	return c
}

// DriftMonitor maintains online residual statistics per workload and
// flags a model as stale when its under-prediction rate over a sliding
// window exceeds the trained α-quantile expectation. It is the hook a
// future auto-retrain loop plugs into: Mantis-style prediction systems
// stay trustworthy only while the observed residual distribution still
// looks like the training distribution.
type DriftMonitor struct {
	cfg DriftConfig

	mu  sync.Mutex
	per map[string]*driftState
}

type driftState struct {
	window []float64 // circular buffer of residuals
	next   int
	filled bool
	under  int // under-predictions currently in the window
	total  int64
	stale  bool
}

// NewDriftMonitor returns a monitor with the given configuration.
func NewDriftMonitor(cfg DriftConfig) *DriftMonitor {
	return &DriftMonitor{cfg: cfg.withDefaults(), per: map[string]*driftState{}}
}

// Observe feeds one completed prediction's residual (actual −
// predicted, seconds) for a workload and re-evaluates staleness.
func (d *DriftMonitor) Observe(workload string, residualSec float64) {
	d.mu.Lock()
	st := d.per[workload]
	if st == nil {
		st = &driftState{window: make([]float64, d.cfg.Window)}
		d.per[workload] = st
	}
	if st.filled {
		if st.window[st.next] > 0 {
			st.under--
		}
	}
	st.window[st.next] = residualSec
	if residualSec > 0 {
		st.under++
	}
	st.next++
	if st.next == len(st.window) {
		st.next = 0
		st.filled = true
	}
	st.total++

	n := st.size()
	rate := float64(st.under) / float64(n)
	var transition *bool
	switch {
	case int64(n) >= int64(d.cfg.MinSamples) && !st.stale && rate > d.cfg.MaxUnderRate:
		st.stale = true
		t := true
		transition = &t
	case st.stale && rate < d.cfg.MaxUnderRate/2:
		st.stale = false
		t := false
		transition = &t
	}
	d.mu.Unlock()

	if transition == nil {
		return
	}
	if d.cfg.StaleGauge != nil {
		v := 0.0
		if *transition {
			v = 1
		}
		d.cfg.StaleGauge.With(workload).Set(v)
	}
	if d.cfg.Log != nil {
		if *transition {
			args := []any{
				"workload", workload, "under_rate", rate,
				"max_under_rate", d.cfg.MaxUnderRate, "window", n,
			}
			if d.cfg.SLO != nil {
				fast, slow := d.cfg.SLO.BurnRates(workload)
				if !math.IsNaN(fast) {
					args = append(args, "slo_fast_burn", fast, "slo_slow_burn", slow)
				}
			}
			d.cfg.Log.Warn("prediction model stale: under-prediction rate exceeds trained α-quantile",
				args...)
		} else {
			d.cfg.Log.Info("prediction model recovered", "workload", workload, "under_rate", rate)
		}
	}
}

func (st *driftState) size() int {
	if st.filled {
		return len(st.window)
	}
	return st.next
}

// Stale reports whether the workload's model is currently flagged.
func (d *DriftMonitor) Stale(workload string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.per[workload]
	return st != nil && st.stale
}

// UnderRate returns the sliding-window under-prediction rate (NaN with
// no observations).
func (d *DriftMonitor) UnderRate(workload string) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.per[workload]
	if st == nil || st.size() == 0 {
		return math.NaN()
	}
	return float64(st.under) / float64(st.size())
}

// Quantile returns the p-quantile of the residuals currently in the
// workload's window (NaN with no observations).
func (d *DriftMonitor) Quantile(workload string, p float64) float64 {
	d.mu.Lock()
	st := d.per[workload]
	var xs []float64
	if st != nil {
		xs = append(xs, st.window[:st.size()]...)
	}
	d.mu.Unlock()
	if len(xs) == 0 {
		return math.NaN()
	}
	sort.Float64s(xs)
	return quantileSorted(xs, p)
}

// Workloads lists the workloads observed so far, sorted.
func (d *DriftMonitor) Workloads() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.per))
	for name := range d.per {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// quantileSorted interpolates the p-quantile of an ascending slice.
func quantileSorted(xs []float64, p float64) float64 {
	if len(xs) == 1 {
		return xs[0]
	}
	pos := p * float64(len(xs)-1)
	i := int(pos)
	if i >= len(xs)-1 {
		return xs[len(xs)-1]
	}
	frac := pos - float64(i)
	return xs[i] + frac*(xs[i+1]-xs[i])
}
