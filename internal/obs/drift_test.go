package obs

import (
	"bytes"
	"log/slog"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestDriftMonitorFlipsAndRecovers(t *testing.T) {
	var logBuf bytes.Buffer
	reg := NewRegistry()
	gauge := reg.GaugeVec("model_stale", "stale", "workload")
	d := NewDriftMonitor(DriftConfig{
		Window: 100, MinSamples: 50, Alpha: 100,
		Log:        slog.New(slog.NewTextHandler(&logBuf, nil)),
		StaleGauge: gauge,
	})

	// A healthy stream: 1% under-prediction, matching the trained
	// α-quantile for α=100.
	for i := 0; i < 200; i++ {
		res := -0.001
		if i%100 == 0 {
			res = 0.002
		}
		d.Observe("ldecode", res)
	}
	if d.Stale("ldecode") {
		t.Fatal("healthy stream flagged stale")
	}
	if gauge.With("ldecode").Value() != 0 {
		t.Fatal("gauge set without a transition")
	}

	// Drift: 20% under-prediction — far beyond 3/(1+α) ≈ 3%.
	for i := 0; i < 100; i++ {
		res := -0.001
		if i%5 == 0 {
			res = 0.002
		}
		d.Observe("ldecode", res)
	}
	if !d.Stale("ldecode") {
		t.Fatalf("drifted stream not flagged (under rate %.3f)", d.UnderRate("ldecode"))
	}
	if gauge.With("ldecode").Value() != 1 {
		t.Error("stale gauge not set")
	}
	if !strings.Contains(logBuf.String(), "prediction model stale") {
		t.Errorf("missing staleness warning in log:\n%s", logBuf.String())
	}

	// Recovery with hysteresis: once over-predicting again, the flag
	// clears only below half the threshold.
	for i := 0; i < 200; i++ {
		d.Observe("ldecode", -0.001)
	}
	if d.Stale("ldecode") {
		t.Fatal("recovered stream still stale")
	}
	if gauge.With("ldecode").Value() != 0 {
		t.Error("stale gauge not cleared")
	}

	if ws := d.Workloads(); len(ws) != 1 || ws[0] != "ldecode" {
		t.Errorf("workloads = %v", ws)
	}
}

func TestDriftMonitorQuantilesAndIsolation(t *testing.T) {
	d := NewDriftMonitor(DriftConfig{Window: 64})
	if !math.IsNaN(d.Quantile("none", 0.5)) || !math.IsNaN(d.UnderRate("none")) {
		t.Fatal("unknown workload should report NaN")
	}
	for i := 1; i <= 64; i++ {
		d.Observe("a", float64(i))
		d.Observe("b", -1)
	}
	if p := d.Quantile("a", 0.5); p < 30 || p > 35 {
		t.Errorf("p50(a) = %g, want ≈ 32.5", p)
	}
	if r := d.UnderRate("b"); r != 0 {
		t.Errorf("workload b leaked under-predictions: %g", r)
	}
	// MinSamples default (50) reached with 100% under rate → stale for
	// a only.
	if !d.Stale("a") || d.Stale("b") {
		t.Errorf("stale(a)=%v stale(b)=%v, want true/false", d.Stale("a"), d.Stale("b"))
	}
}

// The monitor is shared between the request path (Observe) and the
// metrics/debug paths (Stale, UnderRate, Quantile, Workloads); all four
// must be safe to call concurrently. Run under -race.
func TestDriftMonitorConcurrent(t *testing.T) {
	d := NewDriftMonitor(DriftConfig{Window: 64, MinSamples: 8})
	workloads := []string{"a", "b", "c"}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				w := workloads[(g+i)%len(workloads)]
				d.Observe(w, float64(i%7)-3)
			}
		}(g)
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				w := workloads[(g+i)%len(workloads)]
				d.Stale(w)
				d.UnderRate(w)
				d.Quantile(w, 0.5)
				d.Workloads()
			}
		}(g)
	}
	wg.Wait()
	for _, w := range workloads {
		if n := d.Quantile(w, 0.5); math.IsNaN(n) {
			t.Errorf("workload %s unobserved after concurrent run", w)
		}
	}
}
