// Package obs is the cross-cutting observability layer: per-decision
// tracing for the prediction controller (a lock-free ring buffer with
// pluggable JSONL / in-memory / Chrome-trace sinks), a shared metrics
// registry rendering the Prometheus text exposition, and a
// prediction-drift monitor that watches the residual between predicted
// and actual execution time.
//
// The paper's controller is feed-forward: it predicts a job's
// execution time, picks a frequency, and never looks back. That makes
// the *residual* (actual − predicted) the one signal that tells an
// operator whether the trained model still describes the workload —
// under-prediction is what causes deadline misses (§3.3's asymmetric α
// penalty exists precisely to suppress it). This package makes the
// residual, the overhead attribution (slice time + DVFS switch time
// subtracted from the budget, §3.4), and the per-level occupancy
// observable at run time, in the simulator and in the dvfsd serving
// tier alike.
package obs

import "math"

// DecisionEvent is one controller decision and, once the job has run,
// its outcome. Events are immutable after emission; every field is
// wire-encodable (no NaNs — absent predictions are flagged, not
// encoded).
type DecisionEvent struct {
	// Seq is the tracer-assigned global sequence number.
	Seq uint64 `json:"seq"`
	// Workload and Governor identify the decision source; in the
	// serving tier Workload is the model name and Governor is "serve".
	Workload string `json:"workload"`
	Governor string `json:"governor,omitempty"`
	// Device identifies the simulated (or real) device the decision
	// was made on. Empty on single-device sources — only fleet
	// simulation and fleet-aware tooling populate it.
	Device string `json:"device,omitempty"`
	// Platform names the platform model the device runs
	// (platform.ByName resolves it). Fleet traces carry it per event
	// because a heterogeneous fleet has no single trace-wide platform;
	// empty when the consumer already knows the platform out of band.
	Platform string `json:"platform,omitempty"`
	// Job is the job's index within its stream.
	Job int `json:"job"`
	// TimeSec is the decision time on the source's clock (simulated
	// time in the simulator, seconds since process start in dvfsd).
	TimeSec float64 `json:"time_sec"`
	// ReleaseSec and DeadlineSec are the job's release and absolute
	// deadline on the same clock. Zero on events from sources that do
	// not know them (e.g. dvfsd one-shot predictions); replay treats
	// DeadlineSec > 0 as the marker that the scheduling fields
	// (including FromLevel) are populated.
	ReleaseSec  float64 `json:"release_sec,omitempty"`
	DeadlineSec float64 `json:"deadline_sec,omitempty"`
	// FeatHash is an FNV-1a hash of the vectorized feature vector —
	// enough to correlate decisions made for identical inputs without
	// shipping the features themselves.
	FeatHash uint64 `json:"feat_hash,omitempty"`
	// Predicted reports whether the governor produced a prediction;
	// baseline governors (performance, interactive, ...) do not.
	Predicted bool `json:"predicted"`
	// TFminSec and TFmaxSec are the model's predicted job times at the
	// platform's minimum and maximum frequencies.
	TFminSec float64 `json:"tfmin_sec,omitempty"`
	TFmaxSec float64 `json:"tfmax_sec,omitempty"`
	// PredictedExecSec is the un-margined expected execution time at
	// the chosen level.
	PredictedExecSec float64 `json:"predicted_exec_sec,omitempty"`
	// Level is the chosen DVFS level index; FreqKHz its clock rate.
	Level   int   `json:"level"`
	FreqKHz int64 `json:"freq_khz,omitempty"`
	// FromLevel is the level the platform was running at when the
	// decision was made (the switch source). Only meaningful when
	// DeadlineSec > 0 — older logs predate the field and a bare zero
	// would alias the highest-frequency level index.
	FromLevel int `json:"from_level,omitempty"`
	// Margin is the safety-margin fraction applied to predictions.
	Margin float64 `json:"margin,omitempty"`
	// BudgetSec is the job's remaining budget at decision time;
	// EffBudgetSec is what is left after subtracting the predictor's
	// own cost (§3.4); PredictorSec and SwitchSec are the overheads
	// charged against it (SwitchSec is the switch-table estimate at
	// decision time, or the measured transition time when an event is
	// re-emitted from a finished simulation).
	BudgetSec    float64 `json:"budget_sec,omitempty"`
	EffBudgetSec float64 `json:"eff_budget_sec,omitempty"`
	PredictorSec float64 `json:"predictor_sec,omitempty"`
	SwitchSec    float64 `json:"switch_sec,omitempty"`
	// MeasSwitchSec is the measured (jitter-sampled) transition time the
	// platform actually spent switching FromLevel → Level, as opposed to
	// SwitchSec's worst-case table estimate. Populated by the simulator
	// record adapter; zero when the source cannot measure it.
	MeasSwitchSec float64 `json:"meas_switch_sec,omitempty"`
	// Done reports that the job finished and the outcome fields below
	// are valid.
	Done bool `json:"done"`
	// ActualExecSec is the job's measured execution time at the chosen
	// level (predictor and switch overheads excluded).
	ActualExecSec float64 `json:"actual_exec_sec,omitempty"`
	// ResidualSec is ActualExecSec − PredictedExecSec: positive means
	// the model under-predicted (the dangerous direction). Only
	// meaningful when Done and Predicted are both set.
	ResidualSec float64 `json:"residual_sec,omitempty"`
	// Missed reports a deadline miss: the simulator's wall-clock
	// accounting, or — for in-process controller events — the
	// controller-visible miss (actual execution exceeded the effective
	// budget less the estimated switch time).
	Missed bool `json:"missed,omitempty"`
	// Spans is the decision's per-phase latency ledger (slice eval,
	// model predict, level select, DVFS switch, job exec), flat in
	// preorder with nesting encoded by Span.Depth. Empty when the
	// source does not capture spans (old logs, record-only adapters,
	// sampled-out decisions).
	Spans []Span `json:"spans,omitempty"`
	// SpanTotalSec is the ledger's extent — the end of its last
	// top-level span — i.e. the decision's end-to-end time from slice
	// start through job completion. Zero when Spans is empty.
	SpanTotalSec float64 `json:"span_total_sec,omitempty"`
}

// UnderPredicted reports whether the event completed with the model
// having predicted less time than the job took.
func (e *DecisionEvent) UnderPredicted() bool {
	return e.Done && e.Predicted && e.ResidualSec > 0
}

// FNV-1a parameters (FNV-0 offset basis hashed over "chongo <Landon
// Curt Noll> /\\../\\", and the 64-bit FNV prime).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// FeatureHash hashes a feature vector with FNV-1a over the IEEE-754
// bits of each value (little-endian, identical to hash/fnv fed the
// same bytes — but inlined, so it stays off the heap). The same vector
// always hashes the same way, so equal-input decisions can be
// correlated across runs and tiers.
//
//dvfs:hotpath
func FeatureHash(x []float64) uint64 {
	h := fnvOffset64
	for _, v := range x {
		bits := math.Float64bits(v)
		for i := 0; i < 64; i += 8 {
			h ^= uint64(bits>>i) & 0xff
			h *= fnvPrime64
		}
	}
	return h
}
