package obs

import (
	"flag"
	"fmt"
	"net/url"
	"strconv"
)

// EventFilter slices a decision log the way an operator slices a
// production JSONL file: by workload, by source-clock time, and to the
// most recent N events. The zero value passes everything through.
// dvfstrace and dvfsreplay register the same flags via
// RegisterFilterFlags, so a filter expression learned on one tool
// transfers to the other.
type EventFilter struct {
	// Workload, when non-empty, keeps only events for that workload.
	Workload string
	// Device, when non-empty, keeps only events for that device ID
	// (fleet traces tag every event with one; single-device logs have
	// none, so a device filter on them matches nothing).
	Device string
	// SinceSec, when positive, keeps only events with TimeSec ≥ it.
	SinceSec float64
	// Last, when positive, keeps only the last N events surviving the
	// other criteria (applied after Workload and SinceSec).
	Last int
}

// IsZero reports whether the filter passes everything through.
func (f EventFilter) IsZero() bool {
	return f.Workload == "" && f.Device == "" && f.SinceSec <= 0 && f.Last <= 0
}

// Apply returns the events surviving the filter, preserving order.
// With a zero filter the input slice is returned as-is.
func (f EventFilter) Apply(events []DecisionEvent) []DecisionEvent {
	if f.IsZero() {
		return events
	}
	out := events
	if f.Workload != "" || f.Device != "" || f.SinceSec > 0 {
		out = make([]DecisionEvent, 0, len(events))
		for i := range events {
			e := &events[i]
			if !f.Match(e) {
				continue
			}
			out = append(out, *e)
		}
	}
	if f.Last > 0 && len(out) > f.Last {
		out = out[len(out)-f.Last:]
	}
	return out
}

// Match reports whether a single event passes the Workload and
// SinceSec criteria. Last is a log-tail criterion — it needs the whole
// log — so it does not participate; live consumers (the event stream)
// use Match per event and interpret Last as backlog replay depth.
func (f EventFilter) Match(e *DecisionEvent) bool {
	if f.Workload != "" && e.Workload != f.Workload {
		return false
	}
	if f.Device != "" && e.Device != f.Device {
		return false
	}
	if f.SinceSec > 0 && e.TimeSec < f.SinceSec {
		return false
	}
	return true
}

// Query encodes the filter as URL query parameters (the inverse of
// what dvfsd's /v1/events and /debug/decisions handlers parse); empty
// for a zero filter.
func (f EventFilter) Query() url.Values {
	q := url.Values{}
	if f.Workload != "" {
		q.Set("workload", f.Workload)
	}
	if f.Device != "" {
		q.Set("device", f.Device)
	}
	if f.SinceSec > 0 {
		q.Set("since", strconv.FormatFloat(f.SinceSec, 'g', -1, 64))
	}
	if f.Last > 0 {
		q.Set("last", strconv.Itoa(f.Last))
	}
	return q
}

// FilterFromQuery parses the workload/since/last query parameters of a
// stream or debug request; absent parameters leave the zero value.
func FilterFromQuery(q url.Values) (EventFilter, error) {
	var f EventFilter
	f.Workload = q.Get("workload")
	f.Device = q.Get("device")
	if v := q.Get("since"); v != "" {
		sec, err := strconv.ParseFloat(v, 64)
		if err != nil || sec < 0 {
			return f, fmt.Errorf("invalid since %q", v)
		}
		f.SinceSec = sec
	}
	if v := q.Get("last"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return f, fmt.Errorf("invalid last %q", v)
		}
		f.Last = n
	}
	return f, nil
}

// RegisterFilterFlags registers -workload, -since, and -last on fs,
// writing into f.
func (f *EventFilter) RegisterFilterFlags(fs *flag.FlagSet) {
	fs.StringVar(&f.Workload, "workload", "", "keep only events for this workload")
	fs.StringVar(&f.Device, "device", "", "keep only events for this device ID (fleet traces)")
	fs.Float64Var(&f.SinceSec, "since", 0, "keep only events at or after this source-clock time (seconds)")
	fs.IntVar(&f.Last, "last", 0, "keep only the last N events after other filters")
}
