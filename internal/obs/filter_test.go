package obs

import (
	"flag"
	"testing"
)

func filterEvents() []DecisionEvent {
	return []DecisionEvent{
		{Seq: 0, Workload: "ldecode", Device: "d0", TimeSec: 0.0, Job: 0},
		{Seq: 1, Workload: "sha", Device: "d1", TimeSec: 0.1, Job: 0},
		{Seq: 2, Workload: "ldecode", Device: "d0", TimeSec: 0.2, Job: 1},
		{Seq: 3, Workload: "sha", Device: "d0", TimeSec: 0.3, Job: 1},
		{Seq: 4, Workload: "ldecode", Device: "d1", TimeSec: 0.4, Job: 2},
	}
}

func seqs(events []DecisionEvent) []uint64 {
	out := make([]uint64, len(events))
	for i, e := range events {
		out[i] = e.Seq
	}
	return out
}

func TestEventFilterApply(t *testing.T) {
	in := filterEvents()
	for _, tc := range []struct {
		name string
		f    EventFilter
		want []uint64
	}{
		{"zero passes all", EventFilter{}, []uint64{0, 1, 2, 3, 4}},
		{"workload", EventFilter{Workload: "sha"}, []uint64{1, 3}},
		{"device", EventFilter{Device: "d1"}, []uint64{1, 4}},
		{"device and workload", EventFilter{Device: "d0", Workload: "sha"}, []uint64{3}},
		{"unknown device", EventFilter{Device: "d9"}, []uint64{}},
		{"since", EventFilter{SinceSec: 0.2}, []uint64{2, 3, 4}},
		{"last", EventFilter{Last: 2}, []uint64{3, 4}},
		{"last larger than input", EventFilter{Last: 99}, []uint64{0, 1, 2, 3, 4}},
		{"workload then last", EventFilter{Workload: "ldecode", Last: 2}, []uint64{2, 4}},
		{"all criteria", EventFilter{Workload: "ldecode", SinceSec: 0.1, Last: 1}, []uint64{4}},
		{"nothing survives", EventFilter{Workload: "nope"}, []uint64{}},
	} {
		got := seqs(tc.f.Apply(in))
		if len(got) != len(tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
				break
			}
		}
	}
}

func TestEventFilterZeroReturnsInputSlice(t *testing.T) {
	in := filterEvents()
	out := EventFilter{}.Apply(in)
	if &out[0] != &in[0] {
		t.Error("zero filter should return the input slice without copying")
	}
	if !(EventFilter{}).IsZero() {
		t.Error("zero value not IsZero")
	}
	if (EventFilter{Last: 1}).IsZero() {
		t.Error("Last=1 reported IsZero")
	}
	if (EventFilter{Device: "d0"}).IsZero() {
		t.Error("Device filter reported IsZero")
	}
}

func TestRegisterFilterFlags(t *testing.T) {
	var f EventFilter
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.RegisterFilterFlags(fs)
	if err := fs.Parse([]string{"-workload", "sha", "-device", "d7", "-since", "1.5", "-last", "10"}); err != nil {
		t.Fatal(err)
	}
	if f.Workload != "sha" || f.Device != "d7" || f.SinceSec != 1.5 || f.Last != 10 {
		t.Fatalf("parsed filter = %+v", f)
	}

	// The query-parameter round trip must preserve the device filter
	// the same way dvfsd's stream handler will parse it.
	back, err := FilterFromQuery(f.Query())
	if err != nil {
		t.Fatal(err)
	}
	if back != f {
		t.Fatalf("query round trip: got %+v, want %+v", back, f)
	}
}
