package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// FleetConfig parameterizes a FleetTracker. The zero value selects
// defaults suitable for dashboards: 32 shards, top-10 worst devices,
// 1% miss budget, 25% residual-drift budget.
type FleetConfig struct {
	// Shards is the number of lock shards device state is spread over;
	// zero → 32. More shards means less contention under concurrent
	// ingest; determinism of snapshots is unaffected because shard
	// sketches merge in fixed shard order.
	Shards int
	// TopK is how many worst devices Snapshot surfaces; zero → 10.
	TopK int
	// MissTarget is the per-device deadline-miss budget the health
	// score normalizes against; zero → 0.01.
	MissTarget float64
	// DriftBudget is the |residual|/predicted fraction treated as a
	// full drift signal; zero → 0.25.
	DriftBudget float64
	// Alpha is the EWMA step for the per-device miss and drift
	// estimators; zero → 0.05 (≈20-job memory).
	Alpha float64
	// MinJobs is how many completed jobs a device needs before it is
	// classified (younger devices report ClassFresh); zero → 8.
	MinJobs int
	// DegradedScore and OutlierScore are the health-score thresholds
	// for the degraded and outlier classes; zero → 0.25 and 0.5.
	DegradedScore float64
	OutlierScore  float64
	// HistoryEvery appends one fleet history point (for dashboard
	// quantile bands) every N completed jobs; zero → 512.
	HistoryEvery int
	// HistoryCap bounds the history ring; zero → 256 points.
	HistoryCap int
	// Compression is the quantile-sketch compression; zero → 200.
	Compression int
	// HeavyK is the heavy-hitter sketch capacity; zero → 32.
	HeavyK int
	// EnergyPerJob estimates one completed event's energy in joules.
	// nil selects a frequency-squared proxy (freq²·exec, normalized to
	// GHz² so magnitudes stay readable): relative comparisons between
	// devices — all the health score needs — survive the missing
	// voltage constants.
	EnergyPerJob func(e *DecisionEvent) float64
	// SLO, when non-nil, receives every completed event via
	// ObserveEvent — fleet-level burn tracking rides along with health
	// scoring.
	SLO *SLOTracker
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.Shards <= 0 {
		c.Shards = 32
	}
	if c.TopK <= 0 {
		c.TopK = 10
	}
	if c.MissTarget <= 0 {
		c.MissTarget = 0.01
	}
	if c.DriftBudget <= 0 {
		c.DriftBudget = 0.25
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.05
	}
	if c.MinJobs <= 0 {
		c.MinJobs = 8
	}
	if c.DegradedScore <= 0 {
		c.DegradedScore = 0.25
	}
	if c.OutlierScore <= 0 {
		c.OutlierScore = 0.5
	}
	if c.HistoryEvery <= 0 {
		c.HistoryEvery = 512
	}
	if c.HistoryCap <= 0 {
		c.HistoryCap = 256
	}
	if c.HeavyK <= 0 {
		c.HeavyK = defaultHHCapacity
	}
	return c
}

// Device health classes.
const (
	ClassFresh    = "fresh"    // under MinJobs — not yet classified
	ClassHealthy  = "healthy"  // score < DegradedScore
	ClassDegraded = "degraded" // DegradedScore ≤ score < OutlierScore
	ClassOutlier  = "outlier"  // score ≥ OutlierScore
)

// DeviceHealth is one device's scored state at snapshot time.
type DeviceHealth struct {
	Device   string `json:"device"`
	Platform string `json:"platform,omitempty"`
	Workload string `json:"workload,omitempty"`
	Events   int64  `json:"events"`
	Jobs     int64  `json:"jobs"`
	Misses   int64  `json:"misses"`
	// MissRate is lifetime misses/jobs; MissEWMA the recent estimate
	// the score uses.
	MissRate float64 `json:"miss_rate"`
	MissEWMA float64 `json:"miss_ewma"`
	// ResidEWMA tracks the signed residual fraction (positive =
	// under-prediction); DriftEWMA its magnitude.
	ResidEWMA float64 `json:"resid_ewma"`
	DriftEWMA float64 `json:"drift_ewma"`
	// EnergyPerJob is total estimated energy over completed jobs.
	EnergyPerJob float64 `json:"energy_per_job"`
	// Score ∈ [0,1): weighted saturating blend of miss, drift, and
	// energy excess (see DESIGN.md §5j). Attribution names the
	// dominant component: "miss", "drift", or "energy".
	Score       float64 `json:"score"`
	Class       string  `json:"class"`
	Attribution string  `json:"attribution"`
}

// FleetPoint is one history sample backing the dashboard's
// quantile-band sparklines.
type FleetPoint struct {
	Completed uint64  `json:"completed"`
	MissRate  float64 `json:"miss_rate"`
	ResidP50  float64 `json:"resid_p50"`
	ResidP95  float64 `json:"resid_p95"`
	ResidP99  float64 `json:"resid_p99"`
}

// SketchQuantiles is the standard dashboard quantile set read off a
// merged sketch.
type SketchQuantiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// sketchQuantiles reads the standard set; empty sketches read as zero
// (NaN would poison JSON encoding downstream).
func sketchQuantiles(s *QuantileSketch) SketchQuantiles {
	return SketchQuantiles{
		P50: nanToZero(s.Quantile(0.50)),
		P90: nanToZero(s.Quantile(0.90)),
		P95: nanToZero(s.Quantile(0.95)),
		P99: nanToZero(s.Quantile(0.99)),
	}
}

// FleetStatus is a point-in-time fleet summary, as served by dvfsd's
// GET /debug/fleet and printed by dvfstrace -by-device.
type FleetStatus struct {
	Devices   int    `json:"devices"`
	Events    uint64 `json:"events"`
	Completed uint64 `json:"completed"`
	Misses    uint64 `json:"misses"`
	// MissRate is the fleet-wide misses/completed.
	MissRate float64 `json:"miss_rate"`
	// Healthy/Degraded/Outliers/Fresh count devices per class.
	Healthy  int `json:"healthy"`
	Degraded int `json:"degraded"`
	Outliers int `json:"outliers"`
	Fresh    int `json:"fresh"`
	// ResidualFrac is the distribution of |residual|/predicted across
	// completed predicted jobs (stream-level, sketch-backed).
	ResidualFrac SketchQuantiles `json:"residual_frac"`
	// DeviceMissEWMA and DeviceEnergyPerJob are distributions *across
	// devices* at snapshot time.
	DeviceMissEWMA     SketchQuantiles `json:"device_miss_ewma"`
	DeviceEnergyPerJob SketchQuantiles `json:"device_energy_per_job"`
	// Worst is the top-K devices by health score with attribution.
	Worst []DeviceHealth `json:"worst,omitempty"`
	// TopMiss is the heavy-hitter view of miss counts by device.
	TopMiss []HeavyHit `json:"top_miss,omitempty"`
	// History backs the dashboard sparklines and quantile bands.
	History []FleetPoint `json:"history,omitempty"`
}

type deviceState struct {
	device    string
	platform  string
	workload  string
	events    int64
	jobs      int64
	misses    int64
	missEWMA  float64
	residEWMA float64
	driftEWMA float64
	energyJ   float64
}

type fleetShard struct {
	mu     sync.Mutex
	dev    map[string]*deviceState
	resid  *QuantileSketch
	missHH *HeavyHitters
}

// FleetTracker is a sink that consumes device-labeled DecisionEvents
// and maintains per-device health: miss-rate and residual-drift EWMAs,
// an energy/job estimate, and stream-level sketches. State is sharded
// by device hash so 32 concurrent writers (the fleet worker pool, or
// parallel ingest requests) contend only per shard; Snapshot merges
// shard sketches in fixed shard order, so a deterministic feed yields
// deterministic snapshots.
type FleetTracker struct {
	cfg    FleetConfig
	shards []*fleetShard

	events    atomic.Uint64
	completed atomic.Uint64
	misses    atomic.Uint64

	histMu   sync.Mutex
	history  []FleetPoint
	histNext uint64 // completed-count threshold for the next point
}

// NewFleetTracker returns a tracker with the given configuration.
func NewFleetTracker(cfg FleetConfig) *FleetTracker {
	cfg = cfg.withDefaults()
	t := &FleetTracker{
		cfg:      cfg,
		shards:   make([]*fleetShard, cfg.Shards),
		histNext: uint64(cfg.HistoryEvery),
	}
	for i := range t.shards {
		t.shards[i] = &fleetShard{
			dev:    map[string]*deviceState{},
			resid:  NewQuantileSketch(cfg.Compression),
			missHH: NewHeavyHitters(cfg.HeavyK),
		}
	}
	return t
}

// deviceKey labels events with no Device field so single-device traces
// still aggregate somewhere visible.
const deviceKey = "-"

// Emit consumes one decision event. Safe for concurrent use.
func (t *FleetTracker) Emit(e *DecisionEvent) {
	dev := e.Device
	if dev == "" {
		dev = deviceKey
	}
	t.events.Add(1)
	sh := t.shards[strHash(dev)%uint64(len(t.shards))]

	sh.mu.Lock()
	st := sh.dev[dev]
	if st == nil {
		st = &deviceState{device: dev}
		sh.dev[dev] = st
	}
	if st.platform == "" {
		st.platform = e.Platform
	}
	if st.workload == "" {
		st.workload = e.Workload
	}
	st.events++
	if e.Done {
		st.jobs++
		miss := 0.0
		if e.Missed {
			miss = 1
			st.misses++
			sh.missHH.Add(dev, 1)
		}
		st.missEWMA += t.cfg.Alpha * (miss - st.missEWMA)
		if e.Predicted && e.PredictedExecSec > 0 {
			rf := e.ResidualSec / e.PredictedExecSec
			sh.resid.Add(math.Abs(rf))
			st.residEWMA += t.cfg.Alpha * (rf - st.residEWMA)
			st.driftEWMA += t.cfg.Alpha * (math.Abs(rf) - st.driftEWMA)
		}
		st.energyJ += t.energy(e)
	}
	sh.mu.Unlock()

	if !e.Done {
		return
	}
	if e.Missed {
		t.misses.Add(1)
	}
	done := t.completed.Add(1)
	if t.cfg.SLO != nil {
		t.cfg.SLO.ObserveEvent(e)
	}
	t.maybeHistory(done)
}

func (t *FleetTracker) energy(e *DecisionEvent) float64 {
	if t.cfg.EnergyPerJob != nil {
		return t.cfg.EnergyPerJob(e)
	}
	// freq²·time proxy in GHz²·s: dynamic power scales ≈ f·V² with
	// V roughly ∝ f over a DVFS range, so f² preserves the ordering
	// the health score cares about even without platform power tables.
	ghz := float64(e.FreqKHz) / 1e6
	return ghz * ghz * e.ActualExecSec
}

// maybeHistory appends a fleet history point when the completed count
// crosses the next threshold. The point snapshots the merged residual
// sketch, so it takes every shard lock briefly; HistoryEvery spaces
// that cost out.
func (t *FleetTracker) maybeHistory(done uint64) {
	t.histMu.Lock()
	if done < t.histNext {
		t.histMu.Unlock()
		return
	}
	t.histNext = done + uint64(t.cfg.HistoryEvery)
	resid := t.mergedResiduals()
	pt := FleetPoint{
		Completed: done,
		ResidP50:  nanToZero(resid.Quantile(0.50)),
		ResidP95:  nanToZero(resid.Quantile(0.95)),
		ResidP99:  nanToZero(resid.Quantile(0.99)),
	}
	if c := t.completed.Load(); c > 0 {
		pt.MissRate = float64(t.misses.Load()) / float64(c)
	}
	if len(t.history) == t.cfg.HistoryCap {
		copy(t.history, t.history[1:])
		t.history[len(t.history)-1] = pt
	} else {
		t.history = append(t.history, pt)
	}
	t.histMu.Unlock()
}

func nanToZero(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	return v
}

// mergedResiduals merges every shard's residual sketch in shard order
// into a fresh sketch.
func (t *FleetTracker) mergedResiduals() *QuantileSketch {
	out := NewQuantileSketch(t.cfg.Compression)
	for _, sh := range t.shards {
		sh.mu.Lock()
		out.Merge(sh.resid)
		sh.mu.Unlock()
	}
	return out
}

// DeviceHealths returns every tracked device's scored state, sorted by
// device ID. The energy component normalizes against the fleet median
// energy/job, so it is only computable fleet-wide at read time.
func (t *FleetTracker) DeviceHealths() []DeviceHealth {
	out, _ := t.scoredDevices()
	return out
}

func (t *FleetTracker) scoredDevices() ([]DeviceHealth, float64) {
	var all []DeviceHealth
	for _, sh := range t.shards {
		sh.mu.Lock()
		for _, st := range sh.dev {
			d := DeviceHealth{
				Device:    st.device,
				Platform:  st.platform,
				Workload:  st.workload,
				Events:    st.events,
				Jobs:      st.jobs,
				Misses:    st.misses,
				MissEWMA:  st.missEWMA,
				ResidEWMA: st.residEWMA,
				DriftEWMA: st.driftEWMA,
			}
			if st.jobs > 0 {
				d.MissRate = float64(st.misses) / float64(st.jobs)
				d.EnergyPerJob = st.energyJ / float64(st.jobs)
			}
			all = append(all, d)
		}
		sh.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Device < all[j].Device })

	// Fleet median energy/job over classified devices anchors the
	// energy-excess component.
	var epj []float64
	for _, d := range all {
		if d.Jobs >= int64(t.cfg.MinJobs) {
			epj = append(epj, d.EnergyPerJob)
		}
	}
	medEPJ := 0.0
	if len(epj) > 0 {
		sortFloats(epj)
		medEPJ = epj[len(epj)/2]
	}
	for i := range all {
		t.score(&all[i], medEPJ)
	}
	return all, medEPJ
}

// sat maps [0,∞) onto [0,1): x/(1+x). A component at exactly its
// budget contributes 0.5 of its weight.
func sat(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return x / (1 + x)
}

// score fills Score/Class/Attribution: 0.5·sat(miss/budget) +
// 0.3·sat(drift/budget) + 0.2·sat(energy excess vs fleet median).
func (t *FleetTracker) score(d *DeviceHealth, medEPJ float64) {
	missC := sat(d.MissEWMA / t.cfg.MissTarget)
	driftC := sat(d.DriftEWMA / t.cfg.DriftBudget)
	energyC := 0.0
	if medEPJ > 0 && d.EnergyPerJob > medEPJ {
		energyC = sat(d.EnergyPerJob/medEPJ - 1)
	}
	wMiss, wDrift, wEnergy := 0.5*missC, 0.3*driftC, 0.2*energyC
	d.Score = wMiss + wDrift + wEnergy
	switch {
	case wMiss >= wDrift && wMiss >= wEnergy:
		d.Attribution = "miss"
	case wDrift >= wEnergy:
		d.Attribution = "drift"
	default:
		d.Attribution = "energy"
	}
	switch {
	case d.Jobs < int64(t.cfg.MinJobs):
		d.Class = ClassFresh
	case d.Score >= t.cfg.OutlierScore:
		d.Class = ClassOutlier
	case d.Score >= t.cfg.DegradedScore:
		d.Class = ClassDegraded
	default:
		d.Class = ClassHealthy
	}
}

// Snapshot computes the fleet summary: per-class counts, merged
// sketch quantiles, the top-K worst devices (score descending, device
// ascending — deterministic), heavy-hitter miss counts, and the
// history ring.
func (t *FleetTracker) Snapshot() FleetStatus {
	s := FleetStatus{
		Events:    t.events.Load(),
		Completed: t.completed.Load(),
		Misses:    t.misses.Load(),
	}
	if s.Completed > 0 {
		s.MissRate = float64(s.Misses) / float64(s.Completed)
	}

	all, _ := t.scoredDevices()
	s.Devices = len(all)
	missSk := NewQuantileSketch(t.cfg.Compression)
	epjSk := NewQuantileSketch(t.cfg.Compression)
	for _, d := range all {
		switch d.Class {
		case ClassFresh:
			s.Fresh++
		case ClassHealthy:
			s.Healthy++
		case ClassDegraded:
			s.Degraded++
		case ClassOutlier:
			s.Outliers++
		}
		if d.Jobs >= int64(t.cfg.MinJobs) {
			missSk.Add(d.MissEWMA)
			epjSk.Add(d.EnergyPerJob)
		}
	}
	s.DeviceMissEWMA = sketchQuantiles(missSk)
	s.DeviceEnergyPerJob = sketchQuantiles(epjSk)
	s.ResidualFrac = sketchQuantiles(t.mergedResiduals())

	classified := all[:0:0]
	for _, d := range all {
		if d.Class != ClassFresh {
			classified = append(classified, d)
		}
	}
	sort.SliceStable(classified, func(i, j int) bool {
		if classified[i].Score != classified[j].Score {
			return classified[i].Score > classified[j].Score
		}
		return classified[i].Device < classified[j].Device
	})
	if len(classified) > t.cfg.TopK {
		classified = classified[:t.cfg.TopK]
	}
	s.Worst = classified

	hh := NewHeavyHitters(t.cfg.HeavyK)
	for _, sh := range t.shards {
		sh.mu.Lock()
		hh.Merge(sh.missHH)
		sh.mu.Unlock()
	}
	s.TopMiss = hh.Top(t.cfg.TopK)

	t.histMu.Lock()
	s.History = append([]FleetPoint(nil), t.history...)
	t.histMu.Unlock()
	return s
}
