package obs

import (
	"fmt"
	"sync"
	"testing"
)

// fleetEvent builds a completed decision event for device d.
func fleetEvent(dev string, missed bool, residFrac float64) *DecisionEvent {
	return &DecisionEvent{
		Workload:         "mpeg",
		Platform:         "odroid-a7",
		Device:           dev,
		Predicted:        true,
		PredictedExecSec: 0.010,
		ResidualSec:      residFrac * 0.010,
		ActualExecSec:    0.010 * (1 + residFrac),
		FreqKHz:          1_400_000,
		Done:             true,
		Missed:           missed,
	}
}

// TestFleetTrackerClassification: a device that misses constantly
// scores as an outlier attributed to misses; a drifting-but-hitting
// device lands on drift; a clean device stays healthy.
func TestFleetTrackerClassification(t *testing.T) {
	tr := NewFleetTracker(FleetConfig{MinJobs: 8})
	for i := 0; i < 200; i++ {
		tr.Emit(fleetEvent("good", false, 0.01))
		tr.Emit(fleetEvent("missy", true, 0.01))
		tr.Emit(fleetEvent("drifty", false, 0.9))
	}
	byDev := map[string]DeviceHealth{}
	for _, d := range tr.DeviceHealths() {
		byDev[d.Device] = d
	}
	if got := byDev["good"]; got.Class != ClassHealthy {
		t.Errorf("good: class %q score %.3f, want healthy", got.Class, got.Score)
	}
	if got := byDev["missy"]; got.Class != ClassOutlier || got.Attribution != "miss" {
		t.Errorf("missy: class %q attribution %q score %.3f, want outlier/miss",
			got.Class, got.Attribution, got.Score)
	}
	if got := byDev["drifty"]; got.Class == ClassHealthy || got.Attribution != "drift" {
		t.Errorf("drifty: class %q attribution %q score %.3f, want degraded-or-worse/drift",
			got.Class, got.Attribution, got.Score)
	}

	s := tr.Snapshot()
	if s.Devices != 3 {
		t.Fatalf("Devices = %d, want 3", s.Devices)
	}
	if s.Completed != 600 || s.Misses != 200 {
		t.Errorf("Completed/Misses = %d/%d, want 600/200", s.Completed, s.Misses)
	}
	if len(s.Worst) == 0 || s.Worst[0].Device != "missy" {
		t.Errorf("Worst[0] = %+v, want missy first", s.Worst)
	}
	if len(s.TopMiss) == 0 || s.TopMiss[0].Key != "missy" || s.TopMiss[0].Count != 200 {
		t.Errorf("TopMiss = %v, want missy=200 first", s.TopMiss)
	}
	if s.ResidualFrac.P99 < 0.5 {
		t.Errorf("ResidualFrac.P99 = %v, want ≥ 0.5 (drifty's 0.9 fraction)", s.ResidualFrac.P99)
	}
}

// TestFleetTrackerFreshGate: devices under MinJobs are reported fresh
// and excluded from the worst-devices ranking.
func TestFleetTrackerFreshGate(t *testing.T) {
	tr := NewFleetTracker(FleetConfig{MinJobs: 10})
	for i := 0; i < 3; i++ {
		tr.Emit(fleetEvent("young", true, 2.0))
	}
	s := tr.Snapshot()
	if s.Fresh != 1 || len(s.Worst) != 0 {
		t.Errorf("Fresh=%d Worst=%v, want fresh device excluded from ranking", s.Fresh, s.Worst)
	}
}

// TestFleetTrackerUnlabeledDevice: events without a Device label
// aggregate under the "-" placeholder rather than vanishing.
func TestFleetTrackerUnlabeledDevice(t *testing.T) {
	tr := NewFleetTracker(FleetConfig{})
	e := fleetEvent("", false, 0)
	e.Device = ""
	tr.Emit(e)
	all := tr.DeviceHealths()
	if len(all) != 1 || all[0].Device != deviceKey {
		t.Fatalf("DeviceHealths = %+v, want single %q entry", all, deviceKey)
	}
}

// TestFleetTrackerSLOFeed: completed events flow into the attached
// keyed SLO tracker under fleet/platform/workload keys.
func TestFleetTrackerSLOFeed(t *testing.T) {
	slo := NewSLOTracker(SLOConfig{Target: 0.01})
	tr := NewFleetTracker(FleetConfig{SLO: slo})
	for i := 0; i < 50; i++ {
		tr.Emit(fleetEvent("d0", i%2 == 0, 0))
	}
	for _, key := range []string{FleetKey, "platform:odroid-a7", "workload:mpeg"} {
		st, ok := slo.Status(key)
		if !ok || st.Jobs != 50 || st.Misses != 25 {
			t.Errorf("SLO key %q: %+v ok=%v, want 50 jobs / 25 misses", key, st, ok)
		}
	}
}

// TestSLOTrackerMaxKeys: beyond the key bound, new keys fold into the
// overflow window and totals stay accurate.
func TestSLOTrackerMaxKeys(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{MaxKeys: 4})
	for i := 0; i < 20; i++ {
		tr.Observe(fmt.Sprintf("w%d", i), true)
	}
	snap := tr.Snapshot()
	// 4 distinct keys plus the overflow catch-all.
	if len(snap) != 5 {
		t.Fatalf("got %d keys %v, want 5 (4 + overflow)", len(snap), snap)
	}
	of, ok := tr.Status(OverflowKey)
	if !ok || of.Jobs != 16 {
		t.Errorf("overflow status = %+v ok=%v, want 16 folded jobs", of, ok)
	}
	// Existing keys keep observing normally at the bound.
	tr.Observe("w0", false)
	if st, _ := tr.Status("w0"); st.Jobs != 2 {
		t.Errorf("w0 jobs = %d, want 2", st.Jobs)
	}
}

// TestFleetTrackerRace: 32 concurrent writers emitting to overlapping
// devices while snapshots are taken. Run under -race in CI; also
// checks final totals so the tracker loses no events.
func TestFleetTrackerRace(t *testing.T) {
	const writers = 32
	const perWriter = 500
	tr := NewFleetTracker(FleetConfig{HistoryEvery: 64})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				dev := fmt.Sprintf("dev-%03d", (w*7+i)%64)
				tr.Emit(fleetEvent(dev, i%10 == 0, float64(i%5)*0.05))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			_ = tr.Snapshot()
			_ = tr.DeviceHealths()
		}
	}()
	wg.Wait()
	<-done

	s := tr.Snapshot()
	if want := uint64(writers * perWriter); s.Events != want || s.Completed != want {
		t.Errorf("Events/Completed = %d/%d, want %d", s.Events, s.Completed, want)
	}
	if s.Devices != 64 {
		t.Errorf("Devices = %d, want 64", s.Devices)
	}
	var jobs int64
	for _, d := range tr.DeviceHealths() {
		jobs += d.Jobs
	}
	if jobs != writers*perWriter {
		t.Errorf("summed device jobs = %d, want %d", jobs, writers*perWriter)
	}
	if len(s.History) == 0 {
		t.Errorf("history empty after %d completed jobs with HistoryEvery=64", s.Completed)
	}
}

// TestFleetTrackerDeterministicSnapshot: the same serial feed always
// produces the same snapshot (device ordering, quantiles, heavy
// hitters) — the property fleet replay reports rely on.
func TestFleetTrackerDeterministicSnapshot(t *testing.T) {
	build := func() FleetStatus {
		tr := NewFleetTracker(FleetConfig{HistoryEvery: 100})
		for i := 0; i < 2000; i++ {
			dev := fmt.Sprintf("dev-%02d", i%40)
			tr.Emit(fleetEvent(dev, i%17 == 0, float64(i%7)*0.03))
		}
		return tr.Snapshot()
	}
	a, b := build(), build()
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatalf("snapshots differ across identical feeds:\n%+v\nvs\n%+v", a, b)
	}
}
