package obs

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// LogFlags is the shared -log-level / -log-format flag pair every
// binary registers, so diagnostics are configured identically across
// the tool suite (ad-hoc log/fmt diagnostics all route through
// log/slog).
type LogFlags struct {
	level  *string
	format *string
}

// RegisterLogFlags adds -log-level and -log-format to fs.
func RegisterLogFlags(fs *flag.FlagSet) *LogFlags {
	return &LogFlags{
		level:  fs.String("log-level", "info", "log verbosity: debug, info, warn, error"),
		format: fs.String("log-format", "text", "log encoding: text, json"),
	}
}

// Logger validates the flag values and builds the logger on w. Invalid
// spellings are usage errors — a binary must reject them up front.
func (f *LogFlags) Logger(w io.Writer) (*slog.Logger, error) {
	var level slog.Level
	switch strings.ToLower(*f.level) {
	case "debug":
		level = slog.LevelDebug
	case "info":
		level = slog.LevelInfo
	case "warn":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (use debug, info, warn, error)", *f.level)
	}
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(*f.format) {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (use text, json)", *f.format)
	}
}
