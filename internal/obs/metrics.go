package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// Registry is the shared metrics registry: counters, gauges, and
// histograms (with optional labels), rendered in the Prometheus text
// exposition format. One registry serves both tiers — dvfsd exposes it
// at GET /metrics, the simulator can carry one for the drift monitor —
// replacing the hand-rolled histogram code that previously lived in
// internal/serve.
//
// All operations are safe for concurrent use. A metric family is
// registered once by name; re-registering the same name returns the
// existing family (and panics on a kind mismatch, which is a
// programming error, not an operational condition).
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

type family struct {
	name, help, kind string
	labels           []string
	bounds           []float64 // histogram bucket upper bounds

	mu     sync.Mutex
	series map[string]*series
}

type series struct {
	labelVals []string
	val       float64 // counter / gauge value
	counts    []int64 // histogram: len(bounds)+1, last is +Inf
	sum       float64
	n         int64
}

func (r *Registry) family(name, help, kind string, bounds []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as a different kind or label set", name))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, bounds: bounds, labels: labels, series: map[string]*series{}}
	r.families[name] = f
	return f
}

func (f *family) get(labelVals []string) *series {
	if len(labelVals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(labelVals)))
	}
	key := strings.Join(labelVals, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[key]
	if s == nil {
		s = &series{labelVals: append([]string(nil), labelVals...)}
		if f.kind == "histogram" {
			s.counts = make([]int64, len(f.bounds)+1)
		}
		f.series[key] = s
	}
	return s
}

// Counter is a monotonically increasing value.
type Counter struct {
	f *family
	s *series
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// Counter registers (or retrieves) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, "counter", nil, nil)
	return &Counter{f: f, s: f.get(nil)}
}

// CounterVec registers (or retrieves) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, "counter", nil, labels)}
}

// With returns the series for the given label values.
func (v *CounterVec) With(labelVals ...string) *Counter {
	return &Counter{f: v.f, s: v.f.get(labelVals)}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by delta (which must be non-negative).
func (c *Counter) Add(delta float64) {
	c.f.mu.Lock()
	c.s.val += delta
	c.f.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.f.mu.Lock()
	defer c.f.mu.Unlock()
	return c.s.val
}

// Each calls fn for every series in the family with its label values
// and current value — the snapshot hook consistency tests use.
func (v *CounterVec) Each(fn func(labelVals []string, value float64)) {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	for _, s := range v.f.series {
		fn(s.labelVals, s.val)
	}
}

// Gauge is a value that can go up and down.
type Gauge struct {
	f *family
	s *series
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// Gauge registers (or retrieves) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, "gauge", nil, nil)
	return &Gauge{f: f, s: f.get(nil)}
}

// GaugeVec registers (or retrieves) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, "gauge", nil, labels)}
}

// With returns the series for the given label values.
func (v *GaugeVec) With(labelVals ...string) *Gauge {
	return &Gauge{f: v.f, s: v.f.get(labelVals)}
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	g.f.mu.Lock()
	g.s.val = v
	g.f.mu.Unlock()
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	g.f.mu.Lock()
	g.s.val += delta
	g.f.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.f.mu.Lock()
	defer g.f.mu.Unlock()
	return g.s.val
}

// Histogram accumulates observations into fixed buckets. Buckets are
// cumulative in the exposition (Prometheus `le` semantics: a value
// exactly on a bound lands in that bound's bucket).
type Histogram struct {
	f *family
	s *series
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// Histogram registers (or retrieves) an unlabeled histogram with the
// given bucket upper bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.family(name, help, "histogram", bounds, nil)
	return &Histogram{f: f, s: f.get(nil)}
}

// HistogramVec registers (or retrieves) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, "histogram", bounds, labels)}
}

// With returns the series for the given label values.
func (v *HistogramVec) With(labelVals ...string) *Histogram {
	return &Histogram{f: v.f, s: v.f.get(labelVals)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.f.bounds, v)
	h.f.mu.Lock()
	h.s.counts[i]++
	h.s.sum += v
	h.s.n++
	h.f.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	return h.s.n
}

// Quantile estimates the p-quantile (0 < p < 1) from the bucket counts
// with linear interpolation inside the containing bucket. Observations
// in the +Inf bucket are attributed to the last finite bound. Returns
// NaN with no observations.
func (h *Histogram) Quantile(p float64) float64 {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	return quantileFromCounts(h.f.bounds, h.s.counts, h.s.n, p)
}

// quantileFromCounts is the bucket walk behind Histogram.Quantile and
// Registry.Scrape's histogram samples. Caller holds the family lock.
func quantileFromCounts(bounds []float64, counts []int64, n int64, p float64) float64 {
	if n == 0 {
		return math.NaN()
	}
	rank := p * float64(n)
	cum := int64(0)
	for i, c := range counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(bounds) {
			// +Inf bucket: the last finite bound is the best estimate.
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(prev)) / float64(c)
		return lo + frac*(hi-lo)
	}
	return bounds[len(bounds)-1]
}

// LogLinearBuckets returns histogram bounds spaced geometrically from
// lo to hi (inclusive) with perDecade bounds per factor-of-ten — the
// log-linear layout that keeps relative quantile-estimation error flat
// across magnitudes (sub-microsecond slice times up to multi-second
// builds).
func LogLinearBuckets(lo, hi float64, perDecade int) []float64 {
	if lo <= 0 || hi <= lo || perDecade < 1 {
		panic("obs: LogLinearBuckets wants 0 < lo < hi and perDecade ≥ 1")
	}
	step := math.Pow(10, 1/float64(perDecade))
	var out []float64
	for b := lo; b < hi*(1+1e-12); b *= step {
		out = append(out, b)
	}
	return out
}

// WriteTo renders the registry in the Prometheus text exposition
// format with deterministic ordering: families sorted by name, series
// sorted by label values.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		f.render(&b)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func (f *family) render(b *strings.Builder) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, f.help)
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := f.series[k]
		label := f.labelString(s.labelVals)
		switch f.kind {
		case "histogram":
			f.renderHistogram(b, label, s)
		default:
			if label == "" {
				fmt.Fprintf(b, "%s %s\n", f.name, formatValue(s.val))
			} else {
				fmt.Fprintf(b, "%s{%s} %s\n", f.name, label, formatValue(s.val))
			}
		}
	}
}

func (f *family) labelString(vals []string) string {
	if len(f.labels) == 0 {
		return ""
	}
	parts := make([]string, len(f.labels))
	for i, name := range f.labels {
		parts[i] = fmt.Sprintf("%s=%q", name, vals[i])
	}
	return strings.Join(parts, ",")
}

func (f *family) renderHistogram(b *strings.Builder, label string, s *series) {
	sep := ""
	if label != "" {
		sep = ","
	}
	cum := int64(0)
	for i, bound := range f.bounds {
		cum += s.counts[i]
		fmt.Fprintf(b, "%s_bucket{%s%sle=\"%g\"} %d\n", f.name, label, sep, bound, cum)
	}
	cum += s.counts[len(f.bounds)]
	fmt.Fprintf(b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", f.name, label, sep, cum)
	if label == "" {
		fmt.Fprintf(b, "%s_sum %g\n", f.name, s.sum)
		fmt.Fprintf(b, "%s_count %d\n", f.name, s.n)
	} else {
		fmt.Fprintf(b, "%s_sum{%s} %g\n", f.name, label, s.sum)
		fmt.Fprintf(b, "%s_count{%s} %d\n", f.name, label, s.n)
	}
}

// formatValue renders counters and gauges: integral values without a
// decimal point (matching the previous hand-rolled exposition), %g
// otherwise.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
