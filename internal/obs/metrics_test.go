package obs

import (
	"math"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the full exposition byte-for-byte:
// families sorted by name, series sorted by label values, histograms
// with cumulative le buckets, integral counters without decimal
// points.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	req := r.CounterVec("test_requests_total", "Requests by route and code.", "route", "code")
	req.With("predict", "200").Add(2)
	req.With("predict", "400").Inc()
	req.With("models_put", "200").Inc()
	lat := r.HistogramVec("test_latency_seconds", "Latency by route.", []float64{0.001, 0.01, 0.1}, "route")
	lat.With("predict").Observe(0.0005)
	lat.With("predict").Observe(0.002)
	lat.With("predict").Observe(5)
	r.Gauge("test_inflight", "In-flight requests.").Set(3)
	r.Histogram("test_builds_seconds", "Builds.", []float64{1, 10}).Observe(1.5)

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_builds_seconds Builds.
# TYPE test_builds_seconds histogram
test_builds_seconds_bucket{le="1"} 0
test_builds_seconds_bucket{le="10"} 1
test_builds_seconds_bucket{le="+Inf"} 1
test_builds_seconds_sum 1.5
test_builds_seconds_count 1
# HELP test_inflight In-flight requests.
# TYPE test_inflight gauge
test_inflight 3
# HELP test_latency_seconds Latency by route.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{route="predict",le="0.001"} 1
test_latency_seconds_bucket{route="predict",le="0.01"} 2
test_latency_seconds_bucket{route="predict",le="0.1"} 2
test_latency_seconds_bucket{route="predict",le="+Inf"} 3
test_latency_seconds_sum{route="predict"} 5.0025
test_latency_seconds_count{route="predict"} 3
# HELP test_requests_total Requests by route and code.
# TYPE test_requests_total counter
test_requests_total{route="models_put",code="200"} 1
test_requests_total{route="predict",code="200"} 2
test_requests_total{route="predict",code="400"} 1
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestHistogramBoundaryAndCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_h", "h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	// A value exactly on a bound lands in that bound's bucket (le is
	// inclusive in Prometheus).
	h2 := r.Histogram("test_h2", "h", []float64{1, 2})
	h2.Observe(1)
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`test_h_bucket{le="1"} 1`,
		`test_h_bucket{le="2"} 2`,
		`test_h_bucket{le="4"} 3`,
		`test_h_bucket{le="+Inf"} 4`,
		`test_h2_bucket{le="1"} 1`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q in:\n%s", want, b.String())
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_q", "q", LogLinearBuckets(1e-6, 10, 3))
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	// 1000 observations uniform in (0, 1ms]: p50 ≈ 0.5ms within a
	// bucket's resolution.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) * 1e-6)
	}
	p50 := h.Quantile(0.50)
	if p50 < 3e-4 || p50 > 8e-4 {
		t.Errorf("p50 = %g, want ≈ 5e-4", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 8e-4 || p99 > 1.3e-3 {
		t.Errorf("p99 = %g, want ≈ 1e-3", p99)
	}
	if q := h.Quantile(0.999999); q > 1.01e-3 {
		t.Errorf("extreme quantile escaped data range: %g", q)
	}
}

func TestLogLinearBuckets(t *testing.T) {
	b := LogLinearBuckets(1e-6, 1e-3, 1)
	if len(b) != 4 {
		t.Fatalf("buckets = %v", b)
	}
	for i, want := range []float64{1e-6, 1e-5, 1e-4, 1e-3} {
		if math.Abs(b[i]-want)/want > 1e-9 {
			t.Errorf("bucket %d = %g, want %g", i, b[i], want)
		}
	}
	if got := len(LogLinearBuckets(1e-6, 10, 3)); got != 22 {
		t.Errorf("3/decade over 7 decades = %d bounds, want 22", got)
	}
}

func TestCounterVecEach(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_c", "c", "route", "code")
	v.With("a", "200").Add(2)
	v.With("a", "500").Add(1)
	v.With("b", "200").Add(4)
	var total float64
	v.Each(func(labels []string, val float64) {
		if labels[0] == "a" {
			total += val
		}
	})
	if total != 3 {
		t.Errorf("sum over route=a = %g, want 3", total)
	}
}
