package obs

import (
	"math"
	"math/rand"
	"testing"
)

// Edge cases the bucket-walking estimator must survive: empty
// histogram, a single observation, everything in the +Inf overflow
// bucket, and the degenerate probabilities p=0 and p=1.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	bounds := []float64{1e-4, 1e-3, 1e-2, 1e-1}

	t.Run("empty", func(t *testing.T) {
		h := NewRegistry().Histogram("test_q_empty", "q", bounds)
		for _, p := range []float64{0, 0.5, 1} {
			if !math.IsNaN(h.Quantile(p)) {
				t.Errorf("Quantile(%g) on empty histogram = %g, want NaN", p, h.Quantile(p))
			}
		}
	})

	t.Run("single observation", func(t *testing.T) {
		h := NewRegistry().Histogram("test_q_single", "q", bounds)
		h.Observe(5e-3)
		// Every quantile of a one-point distribution must land inside
		// the containing bucket (1e-3, 1e-2].
		for _, p := range []float64{0.01, 0.5, 0.99, 1} {
			q := h.Quantile(p)
			if q < 1e-3 || q > 1e-2*(1+1e-12) {
				t.Errorf("Quantile(%g) = %g, want within (1e-3, 1e-2]", p, q)
			}
		}
	})

	t.Run("overflow bucket", func(t *testing.T) {
		h := NewRegistry().Histogram("test_q_inf", "q", bounds)
		for i := 0; i < 10; i++ {
			h.Observe(1e3) // far past the last finite bound
		}
		// The estimator cannot see past the last finite bound; it must
		// answer that bound, not +Inf or garbage.
		for _, p := range []float64{0.5, 0.99, 1} {
			if q := h.Quantile(p); q != 1e-1 {
				t.Errorf("Quantile(%g) = %g, want last finite bound 1e-1", p, q)
			}
		}
	})

	t.Run("p extremes", func(t *testing.T) {
		h := NewRegistry().Histogram("test_q_pext", "q", bounds)
		for i := 1; i <= 100; i++ {
			h.Observe(float64(i) * 1e-3) // spread across buckets incl. overflow
		}
		q0, q1 := h.Quantile(0), h.Quantile(1)
		if math.IsNaN(q0) || math.IsNaN(q1) {
			t.Fatalf("p extremes returned NaN: %g, %g", q0, q1)
		}
		if q0 > q1 {
			t.Errorf("Quantile(0) = %g > Quantile(1) = %g", q0, q1)
		}
		if q1 != 1e-1 {
			t.Errorf("Quantile(1) = %g, want last finite bound (data overflow)", q1)
		}
	})
}

// Property: for any fixed set of observations the quantile estimate is
// non-decreasing in p — interpolation inside a bucket must never cross
// bucket order.
func TestHistogramQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		h := NewRegistry().Histogram("test_q_mono", "q", LogLinearBuckets(1e-6, 1, 4))
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			// Log-uniform values, some past the top bound into +Inf.
			h.Observe(math.Pow(10, -7+8*rng.Float64()))
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0+1e-9; p += 0.01 {
			q := h.Quantile(p)
			if math.IsNaN(q) {
				t.Fatalf("trial %d: Quantile(%g) = NaN with %d observations", trial, p, n)
			}
			if q < prev {
				t.Fatalf("trial %d: Quantile not monotone at p=%g: %g < %g", trial, p, q, prev)
			}
			prev = q
		}
	}
}

// quantileSorted (the drift monitor's exact estimator) shares the
// monotonicity requirement.
func TestQuantileSortedMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		d := NewDriftMonitor(DriftConfig{Window: n})
		for _, x := range xs {
			d.Observe("w", x)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0+1e-9; p += 0.05 {
			q := d.Quantile("w", p)
			if q < prev {
				t.Fatalf("trial %d: drift Quantile not monotone at p=%g", trial, p)
			}
			prev = q
		}
	}
}
