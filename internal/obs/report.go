package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Report aggregates a decision log the way the paper's Figs 2/3/19
// analyses do: deadline outcomes, the residual distribution between
// predicted and actual execution time, the overhead attribution that
// §3.4 subtracts from every budget, and per-level occupancy.
// cmd/dvfstrace renders it; tests consume it as a value.
type Report struct {
	// Events is the total event count; Completed counts events whose
	// job outcome was recorded (Done); WithPrediction counts completed
	// events carrying a model prediction.
	Events         int `json:"events"`
	Completed      int `json:"completed"`
	WithPrediction int `json:"with_prediction"`
	// SeqGaps counts sequence numbers missing from the log: the span
	// from the lowest to the highest Seq seen, minus the distinct Seqs
	// present. Non-zero means events were lost (ring overwrites, a
	// truncated file) — or deliberately excluded by a filter; either
	// way, aggregate numbers below describe an incomplete stream.
	SeqGaps int `json:"seq_gaps,omitempty"`
	// Workloads lists the distinct workloads seen, sorted.
	Workloads []string `json:"workloads"`
	// Misses and MissRate summarize deadline outcomes over completed
	// events.
	Misses   int     `json:"misses"`
	MissRate float64 `json:"miss_rate"`
	// Residual summarizes actual − predicted over completed predicted
	// events.
	Residual ResidualStats `json:"residual"`
	// Overhead is the §3.4 margin attribution averaged per decision.
	Overhead OverheadStats `json:"overhead"`
	// Levels is per-level occupancy, ascending by level index.
	Levels []LevelOccupancy `json:"levels"`
	// SpanEvents counts events carrying a span ledger; Phases is the
	// per-phase latency distribution over those ledgers (empty when the
	// log has none — old logs, record-only adapters).
	SpanEvents int         `json:"span_events,omitempty"`
	Phases     []PhaseStat `json:"phases,omitempty"`
}

// ResidualStats is the residual distribution (seconds).
type ResidualStats struct {
	N         int     `json:"n"`
	UnderRate float64 `json:"under_rate"`
	MeanSec   float64 `json:"mean_sec"`
	P50Sec    float64 `json:"p50_sec"`
	P90Sec    float64 `json:"p90_sec"`
	P95Sec    float64 `json:"p95_sec"`
	P99Sec    float64 `json:"p99_sec"`
	MinSec    float64 `json:"min_sec"`
	MaxSec    float64 `json:"max_sec"`
}

// OverheadStats attributes the per-decision budget consumption.
type OverheadStats struct {
	MeanPredictorSec float64 `json:"mean_predictor_sec"`
	MeanSwitchSec    float64 `json:"mean_switch_sec"`
	MeanBudgetSec    float64 `json:"mean_budget_sec"`
	MeanEffBudgetSec float64 `json:"mean_eff_budget_sec"`
	// PredictorFrac and SwitchFrac are the overheads as fractions of
	// the mean budget (zero when no budgets were recorded).
	PredictorFrac float64 `json:"predictor_frac"`
	SwitchFrac    float64 `json:"switch_frac"`
}

// LevelOccupancy is one DVFS level's share of decisions.
type LevelOccupancy struct {
	Level int     `json:"level"`
	Count int     `json:"count"`
	Frac  float64 `json:"frac"`
}

// Analyze aggregates a decision log.
func Analyze(events []DecisionEvent) Report {
	r := Report{Events: len(events)}
	seen := map[string]bool{}
	levels := map[int]int{}
	seqs := map[uint64]bool{}
	var minSeq, maxSeq uint64
	var residuals []float64
	under := 0
	var predSum, swSum, budSum, effSum float64
	budgets := 0
	for i := range events {
		e := &events[i]
		seen[e.Workload] = true
		levels[e.Level]++
		if len(seqs) == 0 || e.Seq < minSeq {
			minSeq = e.Seq
		}
		if len(seqs) == 0 || e.Seq > maxSeq {
			maxSeq = e.Seq
		}
		seqs[e.Seq] = true
		predSum += e.PredictorSec
		swSum += e.SwitchSec
		if e.BudgetSec > 0 {
			budSum += e.BudgetSec
			effSum += e.EffBudgetSec
			budgets++
		}
		if !e.Done {
			continue
		}
		r.Completed++
		if e.Missed {
			r.Misses++
		}
		if e.Predicted {
			r.WithPrediction++
			residuals = append(residuals, e.ResidualSec)
			if e.ResidualSec > 0 {
				under++
			}
		}
	}
	for w := range seen {
		r.Workloads = append(r.Workloads, w)
	}
	sort.Strings(r.Workloads)
	if n := len(seqs); n > 0 {
		if span := int(maxSeq-minSeq) + 1; span > n {
			r.SeqGaps = span - n
		}
	}
	if r.Completed > 0 {
		r.MissRate = float64(r.Misses) / float64(r.Completed)
	}
	if len(residuals) > 0 {
		sort.Float64s(residuals)
		sum := 0.0
		for _, v := range residuals {
			sum += v
		}
		r.Residual = ResidualStats{
			N:         len(residuals),
			UnderRate: float64(under) / float64(len(residuals)),
			MeanSec:   sum / float64(len(residuals)),
			P50Sec:    quantileSorted(residuals, 0.50),
			P90Sec:    quantileSorted(residuals, 0.90),
			P95Sec:    quantileSorted(residuals, 0.95),
			P99Sec:    quantileSorted(residuals, 0.99),
			MinSec:    residuals[0],
			MaxSec:    residuals[len(residuals)-1],
		}
	}
	if len(events) > 0 {
		n := float64(len(events))
		r.Overhead.MeanPredictorSec = predSum / n
		r.Overhead.MeanSwitchSec = swSum / n
	}
	if budgets > 0 {
		r.Overhead.MeanBudgetSec = budSum / float64(budgets)
		r.Overhead.MeanEffBudgetSec = effSum / float64(budgets)
		r.Overhead.PredictorFrac = r.Overhead.MeanPredictorSec / r.Overhead.MeanBudgetSec
		r.Overhead.SwitchFrac = r.Overhead.MeanSwitchSec / r.Overhead.MeanBudgetSec
	}
	for i := range events {
		if len(events[i].Spans) > 0 {
			r.SpanEvents++
		}
	}
	r.Phases = AnalyzePhases(events)
	idxs := make([]int, 0, len(levels))
	for l := range levels {
		idxs = append(idxs, l)
	}
	sort.Ints(idxs)
	for _, l := range idxs {
		r.Levels = append(r.Levels, LevelOccupancy{
			Level: l, Count: levels[l], Frac: float64(levels[l]) / float64(len(events)),
		})
	}
	return r
}

// WriteText renders the report for a terminal.
func (r Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "events      %d (%d completed, %d with predictions)\n",
		r.Events, r.Completed, r.WithPrediction)
	fmt.Fprintf(w, "workloads   %s\n", strings.Join(r.Workloads, ", "))
	if r.SeqGaps > 0 {
		fmt.Fprintf(w, "dropped     %d sequence gaps — events lost (ring overwrite, truncation) or filtered out; aggregates below are over an incomplete stream\n", r.SeqGaps)
	}
	if r.Completed > 0 {
		fmt.Fprintf(w, "misses      %d (%.2f%% of completed jobs)\n", r.Misses, 100*r.MissRate)
	}
	if r.Residual.N > 0 {
		fmt.Fprintf(w, "residual    mean %+.3f ms, under-predictions %.2f%%\n",
			r.Residual.MeanSec*1e3, 100*r.Residual.UnderRate)
		fmt.Fprintf(w, "            p50 %+.3f  p90 %+.3f  p95 %+.3f  p99 %+.3f  max %+.3f ms\n",
			r.Residual.P50Sec*1e3, r.Residual.P90Sec*1e3, r.Residual.P95Sec*1e3,
			r.Residual.P99Sec*1e3, r.Residual.MaxSec*1e3)
	} else {
		fmt.Fprintf(w, "residual    no completed predictions in the log\n")
	}
	fmt.Fprintf(w, "overheads   predictor %.3f ms/job, dvfs switch %.3f ms/job\n",
		r.Overhead.MeanPredictorSec*1e3, r.Overhead.MeanSwitchSec*1e3)
	if r.Overhead.MeanBudgetSec > 0 {
		fmt.Fprintf(w, "margin      budget %.3f ms → effective %.3f ms (predictor %.2f%%, switch %.2f%% of budget)\n",
			r.Overhead.MeanBudgetSec*1e3, r.Overhead.MeanEffBudgetSec*1e3,
			100*r.Overhead.PredictorFrac, 100*r.Overhead.SwitchFrac)
	}
	if len(r.Phases) > 0 {
		fmt.Fprintf(w, "phases      measured spans on %d events\n", r.SpanEvents)
		for _, ph := range r.Phases {
			fmt.Fprintf(w, "  %-14s %6d  mean %-10s p50 %-10s p95 %-10s max %s\n",
				ph.Name, ph.N, FormatDur(ph.MeanSec), FormatDur(ph.P50Sec),
				FormatDur(ph.P95Sec), FormatDur(ph.MaxSec))
		}
	}
	fmt.Fprintf(w, "levels      occupancy over %d decisions\n", r.Events)
	for _, l := range r.Levels {
		bar := strings.Repeat("#", barWidth(l.Frac, 40))
		fmt.Fprintf(w, "  level %2d  %6d  %6.2f%%  %s\n", l.Level, l.Count, 100*l.Frac, bar)
	}
}

func barWidth(frac float64, max int) int {
	n := int(math.Round(frac * float64(max)))
	if n < 0 {
		return 0
	}
	if n > max {
		return max
	}
	return n
}
