package obs

import (
	"strings"
	"testing"
)

func approxEq(got, want float64) bool {
	diff := got - want
	return diff < 1e-12 && diff > -1e-12
}

func testEvents() []DecisionEvent {
	var events []DecisionEvent
	for i := 0; i < 100; i++ {
		e := DecisionEvent{
			Workload: "ldecode", Governor: "prediction", Job: i,
			Predicted: true, PredictedExecSec: 0.020, Level: 3,
			BudgetSec: 0.050, EffBudgetSec: 0.048,
			PredictorSec: 0.001, SwitchSec: 0.001,
			Done: true, ActualExecSec: 0.019, ResidualSec: -0.001,
		}
		if i%10 == 0 { // 10% under-predicted
			e.ActualExecSec = 0.022
			e.ResidualSec = 0.002
		}
		if i%25 == 0 { // 4% missed
			e.Missed = true
		}
		if i%2 == 1 {
			e.Level = 7
		}
		events = append(events, e)
	}
	// One incomplete serving-tier event.
	events = append(events, DecisionEvent{Workload: "sha", Governor: "serve", Predicted: true, Level: 12})
	return events
}

func TestAnalyze(t *testing.T) {
	r := Analyze(testEvents())
	if r.Events != 101 || r.Completed != 100 || r.WithPrediction != 100 {
		t.Fatalf("counts = %d/%d/%d", r.Events, r.Completed, r.WithPrediction)
	}
	if got := strings.Join(r.Workloads, ","); got != "ldecode,sha" {
		t.Errorf("workloads = %q", got)
	}
	if r.Misses != 4 || r.MissRate != 0.04 {
		t.Errorf("misses = %d rate %g", r.Misses, r.MissRate)
	}
	if r.Residual.N != 100 || r.Residual.UnderRate != 0.10 {
		t.Errorf("residual n=%d under=%g", r.Residual.N, r.Residual.UnderRate)
	}
	if r.Residual.MaxSec != 0.002 || r.Residual.MinSec != -0.001 {
		t.Errorf("residual range [%g, %g]", r.Residual.MinSec, r.Residual.MaxSec)
	}
	if r.Residual.P50Sec != -0.001 {
		t.Errorf("p50 = %g", r.Residual.P50Sec)
	}
	if r.Residual.P99Sec != 0.002 {
		t.Errorf("p99 = %g", r.Residual.P99Sec)
	}
	// Margin attribution: only the 100 budget-carrying events count.
	if !approxEq(r.Overhead.MeanBudgetSec, 0.050) || !approxEq(r.Overhead.MeanEffBudgetSec, 0.048) {
		t.Errorf("budget attribution = %+v", r.Overhead)
	}
	if f := r.Overhead.PredictorFrac; f < 0.0195 || f > 0.0199 {
		t.Errorf("predictor frac = %g, want ≈ 0.0198 (1ms of 50ms over 101 events)", f)
	}
	// Occupancy: levels 3, 7, 12 in ascending order.
	if len(r.Levels) != 3 || r.Levels[0].Level != 3 || r.Levels[1].Level != 7 || r.Levels[2].Level != 12 {
		t.Fatalf("levels = %+v", r.Levels)
	}
	if r.Levels[0].Count != 50 || r.Levels[1].Count != 50 || r.Levels[2].Count != 1 {
		t.Errorf("occupancy = %+v", r.Levels)
	}
}

func TestReportWriteText(t *testing.T) {
	var b strings.Builder
	Analyze(testEvents()).WriteText(&b)
	for _, want := range []string{
		"events      101 (100 completed, 100 with predictions)",
		"workloads   ldecode, sha",
		"misses      4 (4.00% of completed jobs)",
		"under-predictions 10.00%",
		"level  3",
		"level 12",
		"margin      budget 50.000 ms",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("report missing %q:\n%s", want, b.String())
		}
	}
	// An empty log must render without dividing by zero.
	var e strings.Builder
	Analyze(nil).WriteText(&e)
	if !strings.Contains(e.String(), "events      0") {
		t.Errorf("empty report:\n%s", e.String())
	}
}

func TestAnalyzeSeqGaps(t *testing.T) {
	events := []DecisionEvent{
		{Seq: 3, Workload: "w", Done: true},
		{Seq: 5, Workload: "w", Done: true},
		{Seq: 9, Workload: "w", Done: true},
	}
	r := Analyze(events)
	// Span 3..9 holds 7 sequence numbers; 3 are present.
	if r.SeqGaps != 4 {
		t.Fatalf("SeqGaps = %d, want 4", r.SeqGaps)
	}
	var b strings.Builder
	r.WriteText(&b)
	if !strings.Contains(b.String(), "4 sequence gaps") {
		t.Errorf("report text missing gap warning:\n%s", b.String())
	}
	if g := Analyze(events[:1]).SeqGaps; g != 0 {
		t.Errorf("single event SeqGaps = %d, want 0", g)
	}
}
