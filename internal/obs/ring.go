package obs

import "sync/atomic"

// Ring is a lock-free bounded ring buffer of decision events. Writers
// claim a slot with one atomic fetch-add and publish the event with one
// atomic pointer store; a full ring overwrites the oldest entries. No
// writer ever blocks — the instrumentation must stay off the predictor's
// budget-accounting critical path (§3.4 subtracts the predictor's cost
// from every job's budget, so a slow tracer would directly cost energy).
//
// Readers take a best-effort snapshot: an event being overwritten
// concurrently with the read is skipped, never torn, because slots hold
// immutable events behind atomic pointers.
type Ring struct {
	slots []atomic.Pointer[DecisionEvent]
	mask  uint64
	pos   atomic.Uint64
}

// NewRing returns a ring holding at least capacity events (rounded up
// to a power of two; minimum 2).
func NewRing(capacity int) *Ring {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &Ring{slots: make([]atomic.Pointer[DecisionEvent], n), mask: uint64(n - 1)}
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Len returns the number of events currently retained.
func (r *Ring) Len() int {
	n := r.pos.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Total returns the number of events ever put, including overwritten
// ones.
func (r *Ring) Total() uint64 { return r.pos.Load() }

// Dropped returns how many events have been overwritten before any
// reader could have seen them — the ring's silent data loss. Offline
// analysis over a snapshot (or a /debug/decisions page) is incomplete
// exactly when this is non-zero, so dvfsd exports it as the
// obs_ring_dropped_total counter and dvfstrace prints it.
func (r *Ring) Dropped() uint64 {
	n := r.pos.Load()
	if c := uint64(len(r.slots)); n > c {
		return n - c
	}
	return 0
}

// Put publishes a copy of e and returns its assigned sequence number.
//
//dvfs:noblock
func (r *Ring) Put(e DecisionEvent) uint64 {
	seq := r.pos.Add(1) - 1
	e.Seq = seq
	r.slots[seq&r.mask].Store(&e)
	return seq
}

// Snapshot returns up to n of the most recent events in sequence order,
// oldest first (n ≤ 0 means the whole ring). Events overwritten while
// the snapshot runs are skipped, so a snapshot under a heavy write load
// may return slightly fewer events than requested — never corrupt ones.
func (r *Ring) Snapshot(n int) []DecisionEvent {
	pos := r.pos.Load()
	if n <= 0 || n > len(r.slots) {
		n = len(r.slots)
	}
	start := uint64(0)
	if pos > uint64(n) {
		start = pos - uint64(n)
	}
	out := make([]DecisionEvent, 0, pos-start)
	for s := start; s < pos; s++ {
		p := r.slots[s&r.mask].Load()
		if p != nil && p.Seq == s {
			out = append(out, *p)
		}
	}
	return out
}
