package obs

import (
	"sync"
	"testing"
)

func TestRingRoundsUpAndRetainsLastN(t *testing.T) {
	r := NewRing(100)
	if r.Cap() != 128 {
		t.Fatalf("cap = %d, want 128", r.Cap())
	}
	for i := 0; i < 300; i++ {
		r.Put(DecisionEvent{Job: i})
	}
	if r.Len() != 128 {
		t.Fatalf("len = %d, want 128", r.Len())
	}
	if r.Total() != 300 {
		t.Fatalf("total = %d, want 300", r.Total())
	}
	snap := r.Snapshot(0)
	if len(snap) != 128 {
		t.Fatalf("snapshot has %d events, want 128", len(snap))
	}
	// The snapshot is the most recent 128 events, oldest first, with
	// sequence numbers assigned in Put order.
	for i, e := range snap {
		wantSeq := uint64(300 - 128 + i)
		if e.Seq != wantSeq || e.Job != int(wantSeq) {
			t.Fatalf("snap[%d] = seq %d job %d, want seq %d", i, e.Seq, e.Job, wantSeq)
		}
	}
	last := r.Snapshot(5)
	if len(last) != 5 || last[0].Seq != 295 || last[4].Seq != 299 {
		t.Fatalf("snapshot(5) = %+v", last)
	}
}

// TestRingConcurrent hammers the ring with 32 writers while a reader
// snapshots continuously — the -race acceptance case. Snapshots must
// only ever contain events that were actually put, in strictly
// increasing sequence order.
func TestRingConcurrent(t *testing.T) {
	const writers = 32
	const perWriter = 1000
	r := NewRing(256)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	readerDone := make(chan error, 1)
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := r.Snapshot(0)
			for i := 1; i < len(snap); i++ {
				if snap[i].Seq <= snap[i-1].Seq {
					t.Errorf("snapshot out of order: seq %d after %d", snap[i].Seq, snap[i-1].Seq)
					return
				}
			}
			for _, e := range snap {
				if e.Job < 0 || e.Job >= writers*perWriter || e.Level != e.Job%13 {
					t.Errorf("torn event: %+v", e)
					return
				}
			}
		}
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				job := w*perWriter + i
				r.Put(DecisionEvent{Job: job, Level: job % 13, Workload: "ldecode"})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone

	if r.Total() != writers*perWriter {
		t.Fatalf("total = %d, want %d", r.Total(), writers*perWriter)
	}
	if got := len(r.Snapshot(0)); got != 256 {
		t.Fatalf("final snapshot has %d events, want 256 (no writes in flight)", got)
	}
}

func TestRingDropped(t *testing.T) {
	r := NewRing(4)
	if r.Dropped() != 0 {
		t.Fatal("fresh ring reports drops")
	}
	for i := 0; i < 4; i++ {
		r.Put(DecisionEvent{Job: i})
	}
	if r.Dropped() != 0 {
		t.Fatalf("exactly-full ring reports %d drops", r.Dropped())
	}
	for i := 4; i < 11; i++ {
		r.Put(DecisionEvent{Job: i})
	}
	if got := r.Dropped(); got != 7 {
		t.Fatalf("Dropped = %d, want 7", got)
	}
}
