package obs

import (
	"math"
	"runtime/metrics"
)

// RuntimeCollector exports Go runtime health — GC pause quantiles,
// heap bytes, goroutine count, scheduling latency — from
// runtime/metrics as registry gauges, so daemon health lands in the
// same store (and the same dashboards) as the model telemetry it can
// explain. Collect refreshes the gauges; the tsdb scrape loop calls it
// once per tick, ahead of the registry scrape.
//
// The pause and latency histograms are cumulative over the process
// lifetime, so their quantiles summarize "this process so far" —
// stored as a time series, movement in the curve is recent behavior.
type RuntimeCollector struct {
	samples []metrics.Sample

	heap       *Gauge
	goroutines *Gauge
	gcPause    *GaugeVec
	schedLat   *GaugeVec

	gcPauseIdx  int
	schedLatIdx int
	heapIdx     int
	goroIdx     int
}

// gcPauseNames are the runtime/metrics keys tried for the GC pause
// histogram — it moved in Go 1.22, so both names are probed and the
// collector degrades instead of breaking on toolchain bumps.
var gcPauseNames = []string{
	"/sched/pauses/total/gc:seconds",
	"/gc/pauses:seconds",
}

// NewRuntimeCollector registers the gauges and resolves which
// runtime/metrics keys this toolchain provides.
func NewRuntimeCollector(reg *Registry) *RuntimeCollector {
	c := &RuntimeCollector{
		heap: reg.Gauge("go_heap_bytes",
			"Bytes of live heap objects (runtime/metrics)."),
		goroutines: reg.Gauge("go_goroutines",
			"Live goroutines."),
		gcPause: reg.GaugeVec("go_gc_pause_seconds",
			"Stop-the-world GC pause quantiles over the process lifetime.", "quantile"),
		schedLat: reg.GaugeVec("go_sched_latency_seconds",
			"Goroutine scheduling latency quantiles over the process lifetime.", "quantile"),
		gcPauseIdx:  -1,
		schedLatIdx: -1,
		heapIdx:     -1,
		goroIdx:     -1,
	}
	available := map[string]bool{}
	for _, d := range metrics.All() {
		available[d.Name] = true
	}
	add := func(name string) int {
		if !available[name] {
			return -1
		}
		c.samples = append(c.samples, metrics.Sample{Name: name})
		return len(c.samples) - 1
	}
	c.heapIdx = add("/memory/classes/heap/objects:bytes")
	c.goroIdx = add("/sched/goroutines:goroutines")
	c.schedLatIdx = add("/sched/latencies:seconds")
	for _, name := range gcPauseNames {
		if c.gcPauseIdx = add(name); c.gcPauseIdx >= 0 {
			break
		}
	}
	return c
}

// Collect reads the runtime metrics and refreshes every gauge.
func (c *RuntimeCollector) Collect() {
	if len(c.samples) == 0 {
		return
	}
	metrics.Read(c.samples)
	if i := c.heapIdx; i >= 0 && c.samples[i].Value.Kind() == metrics.KindUint64 {
		c.heap.Set(float64(c.samples[i].Value.Uint64()))
	}
	if i := c.goroIdx; i >= 0 && c.samples[i].Value.Kind() == metrics.KindUint64 {
		c.goroutines.Set(float64(c.samples[i].Value.Uint64()))
	}
	c.setHistQuantiles(c.gcPauseIdx, c.gcPause)
	c.setHistQuantiles(c.schedLatIdx, c.schedLat)
}

func (c *RuntimeCollector) setHistQuantiles(i int, g *GaugeVec) {
	if i < 0 || c.samples[i].Value.Kind() != metrics.KindFloat64Histogram {
		return
	}
	h := c.samples[i].Value.Float64Histogram()
	for _, q := range scrapeQuantiles {
		v := runtimeHistQuantile(h, q.p)
		if !math.IsNaN(v) {
			g.With(q.label).Set(v)
		}
	}
}

// runtimeHistQuantile estimates the p-quantile of a runtime/metrics
// histogram (Buckets has len(Counts)+1 boundaries, possibly ±Inf at
// the ends). NaN with no observations.
func runtimeHistQuantile(h *metrics.Float64Histogram, p float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return math.NaN()
	}
	rank := p * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		if math.IsInf(lo, -1) {
			lo = hi
		}
		if math.IsInf(hi, 1) {
			return lo
		}
		if c == 0 {
			return hi
		}
		frac := (rank - float64(prev)) / float64(c)
		return lo + frac*(hi-lo)
	}
	// All mass below rank (rounding): the largest finite boundary.
	for i := len(h.Buckets) - 1; i >= 0; i-- {
		if !math.IsInf(h.Buckets[i], 0) {
			return h.Buckets[i]
		}
	}
	return math.NaN()
}
