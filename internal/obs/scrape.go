package obs

import (
	"math"
	"sort"
)

// ScrapeSample is one instantaneous value captured from a registry —
// the unit the embedded time-series store ingests. Counters and gauges
// yield one sample per series; histograms yield their p50/p95/p99
// quantile estimates (an extra "quantile" label) plus _count and _sum
// samples, so distribution drift is visible over history without
// storing every bucket.
type ScrapeSample struct {
	Name        string
	LabelNames  []string
	LabelValues []string
	Value       float64
}

// scrapeQuantiles are the histogram quantiles Scrape exports.
var scrapeQuantiles = []struct {
	p     float64
	label string
}{{0.5, "0.5"}, {0.95, "0.95"}, {0.99, "0.99"}}

// truncMantissa keeps the top `keep` explicit mantissa bits of v,
// zeroing the rest. Truncation is monotone and loses at most 2^-keep
// relative precision. Scrape uses it on derived samples so the
// time-series store's XOR stage sees long trailing-zero runs instead
// of full-mantissa churn; exact values (counters, gauges, counts) are
// never rounded.
func truncMantissa(v float64, keep uint) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return v
	}
	return math.Float64frombits(math.Float64bits(v) &^ (1<<(52-keep) - 1))
}

// Mantissa bits kept for derived scrape samples. Quantile estimates
// carry at best bucket-width relative error (tens of percent with
// log-linear buckets), so 12 bits (0.02% error) is already generous;
// sums feed rate math and keep 24 bits (6e-8 relative error).
const (
	quantileMantissaBits = 12
	sumMantissaBits      = 24
)

// Scrape appends one sample per metric series to dst and returns it.
// Ordering is deterministic (families by name, series by label
// values), so consecutive scrapes enumerate stable series. The
// registry is read-locked per family, never globally across the walk —
// a scrape may interleave with writes but never blocks them for long.
func (r *Registry) Scrape(dst []ScrapeSample) []ScrapeSample {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	for _, f := range fams {
		dst = f.scrape(dst)
	}
	return dst
}

func (f *family) scrape(dst []ScrapeSample) []ScrapeSample {
	f.mu.Lock()
	defer f.mu.Unlock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := f.series[k]
		switch f.kind {
		case "histogram":
			if s.n > 0 {
				for _, q := range scrapeQuantiles {
					dst = append(dst, ScrapeSample{
						Name:        f.name,
						LabelNames:  append(append([]string(nil), f.labels...), "quantile"),
						LabelValues: append(append([]string(nil), s.labelVals...), q.label),
						Value:       truncMantissa(quantileFromCounts(f.bounds, s.counts, s.n, q.p), quantileMantissaBits),
					})
				}
			}
			dst = append(dst, ScrapeSample{
				Name:        f.name + "_count",
				LabelNames:  f.labels,
				LabelValues: s.labelVals,
				Value:       float64(s.n),
			})
			dst = append(dst, ScrapeSample{
				Name:        f.name + "_sum",
				LabelNames:  f.labels,
				LabelValues: s.labelVals,
				Value:       truncMantissa(s.sum, sumMantissaBits),
			})
		default:
			dst = append(dst, ScrapeSample{
				Name:        f.name,
				LabelNames:  f.labels,
				LabelValues: s.labelVals,
				Value:       s.val,
			})
		}
	}
	return dst
}
