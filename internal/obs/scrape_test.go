package obs

import (
	"math"
	"runtime"
	"testing"
)

func TestScrapeDeterministicOrder(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("b_total", "b", "route").With("y").Inc()
	reg.CounterVec("b_total", "b", "route").With("x").Inc()
	reg.Gauge("a_gauge", "a").Set(1)

	first := reg.Scrape(nil)
	second := reg.Scrape(nil)
	if len(first) != 3 || len(second) != 3 {
		t.Fatalf("scrape sizes %d, %d", len(first), len(second))
	}
	for i := range first {
		if first[i].Name != second[i].Name || len(first[i].LabelValues) != len(second[i].LabelValues) {
			t.Fatalf("scrape order unstable at %d: %+v vs %+v", i, first[i], second[i])
		}
	}
	// Families sort by name, series by label value.
	if first[0].Name != "a_gauge" || first[1].LabelValues[0] != "x" || first[2].LabelValues[0] != "y" {
		t.Fatalf("unexpected order: %+v", first)
	}
}

func TestScrapeHistogramSamples(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("exec_seconds", "exec", LogLinearBuckets(1e-4, 10, 5))

	// Empty histogram: no quantile samples (they'd be NaN), but _count
	// and _sum still scrape.
	samples := reg.Scrape(nil)
	if len(samples) != 2 {
		t.Fatalf("empty histogram scraped %d samples, want _count and _sum", len(samples))
	}

	for i := 0; i < 100; i++ {
		h.Observe(0.01 * float64(i%10+1))
	}
	samples = reg.Scrape(nil)
	byName := map[string]ScrapeSample{}
	quantiles := 0
	for _, s := range samples {
		if len(s.LabelNames) > 0 && s.LabelNames[len(s.LabelNames)-1] == "quantile" {
			quantiles++
			continue
		}
		byName[s.Name] = s
	}
	if quantiles != 3 {
		t.Fatalf("%d quantile samples, want 3", quantiles)
	}
	if byName["exec_seconds_count"].Value != 100 {
		t.Fatalf("_count = %v", byName["exec_seconds_count"].Value)
	}
	sum := byName["exec_seconds_sum"].Value
	if math.Abs(sum-5.5) > 0.001 {
		t.Fatalf("_sum = %v, want ≈5.5", sum)
	}
}

func TestTruncMantissa(t *testing.T) {
	// Keeps the value within the promised relative error and zeroes the
	// low mantissa bits.
	for _, v := range []float64{math.Pi, 1e-9, 12345.6789, 5.5} {
		got := truncMantissa(v, quantileMantissaBits)
		if rel := math.Abs(got-v) / v; rel > math.Pow(2, -quantileMantissaBits) {
			t.Fatalf("truncMantissa(%v) = %v, relative error %v", v, got, rel)
		}
		if bits := math.Float64bits(got); bits&(1<<(52-quantileMantissaBits)-1) != 0 {
			t.Fatalf("truncMantissa(%v) left low bits set: %016x", v, bits)
		}
	}
	// Monotone: ordering survives truncation.
	if truncMantissa(1.0000001, sumMantissaBits) > truncMantissa(1.0000002, sumMantissaBits) {
		t.Fatal("truncation inverted an ordering")
	}
	// Exact values and specials pass through.
	if truncMantissa(42, quantileMantissaBits) != 42 {
		t.Fatal("integer mangled")
	}
	if !math.IsNaN(truncMantissa(math.NaN(), 12)) || !math.IsInf(truncMantissa(math.Inf(1), 12), 1) {
		t.Fatal("specials mangled")
	}
}

func TestRuntimeCollector(t *testing.T) {
	reg := NewRegistry()
	rc := NewRuntimeCollector(reg)
	runtime.GC() // give the pause histogram something to report
	rc.Collect()

	samples := reg.Scrape(nil)
	got := map[string]float64{}
	for _, s := range samples {
		got[s.Name] = s.Value
	}
	if got["go_goroutines"] < 1 {
		t.Fatalf("go_goroutines = %v", got["go_goroutines"])
	}
	if got["go_heap_bytes"] <= 0 {
		t.Fatalf("go_heap_bytes = %v", got["go_heap_bytes"])
	}
	for _, s := range samples {
		if math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
			// The scrape consumer drops these, but the collector itself
			// should already produce finite gauges.
			t.Fatalf("%s{%v} is non-finite: %v", s.Name, s.LabelValues, s.Value)
		}
	}
}
