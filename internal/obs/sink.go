package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Sink receives every emitted decision event. Implementations must be
// safe for concurrent Emit calls; errors are latched and reported by
// Close so the emit path stays cheap.
type Sink interface {
	Emit(e *DecisionEvent)
	Close() error
}

// MemorySink retains every event in order — the test double.
type MemorySink struct {
	mu     sync.Mutex
	events []DecisionEvent
}

// Emit implements Sink.
func (s *MemorySink) Emit(e *DecisionEvent) {
	s.mu.Lock()
	s.events = append(s.events, *e)
	s.mu.Unlock()
}

// Close implements Sink.
func (*MemorySink) Close() error { return nil }

// Events returns a copy of everything emitted so far.
func (s *MemorySink) Events() []DecisionEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]DecisionEvent(nil), s.events...)
}

// JSONLSink writes one JSON object per line — the decision-log format
// cmd/dvfstrace consumes. Writes are buffered; the first write error is
// latched and returned by Close.
type JSONLSink struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	err error
}

// NewJSONLSink wraps w in a buffered JSONL writer.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{bw: bufio.NewWriter(w)}
}

// Emit implements Sink.
func (s *JSONLSink) Emit(e *DecisionEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	data, err := json.Marshal(e)
	if err == nil {
		_, err = s.bw.Write(append(data, '\n'))
	}
	if err != nil {
		s.err = fmt.Errorf("obs: writing JSONL event %d: %w", e.Seq, err)
	}
}

// Close flushes the buffer and reports the first error seen.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.bw.Flush(); err != nil && s.err == nil {
		s.err = fmt.Errorf("obs: flushing JSONL sink: %w", err)
	}
	return s.err
}

// ReadJSONL parses a decision log back into events. A malformed line is
// an error naming its line number — an analysis tool must not silently
// skip corrupt data.
func ReadJSONL(r io.Reader) ([]DecisionEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []DecisionEvent
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var e DecisionEvent
		if err := json.Unmarshal(text, &e); err != nil {
			return nil, fmt.Errorf("obs: decision log line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading decision log: %w", err)
	}
	return out, nil
}

// ChromeTraceSink writes the Chrome trace-event format (the JSON
// object form with a traceEvents array), so a run opens directly in
// chrome://tracing or Perfetto. Each decision becomes a complete ("X")
// event on the thread row of its chosen DVFS level — the timeline
// therefore reads as per-level occupancy — and a deadline miss
// additionally emits a global instant event.
type ChromeTraceSink struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	err   error
	first bool
	named map[int]bool
}

// NewChromeTraceSink starts the trace document on w.
func NewChromeTraceSink(w io.Writer) *ChromeTraceSink {
	s := &ChromeTraceSink{bw: bufio.NewWriter(w), first: true, named: map[int]bool{}}
	s.write(`{"displayTimeUnit":"ms","traceEvents":[`)
	return s
}

func (s *ChromeTraceSink) write(text string) {
	if s.err != nil {
		return
	}
	if _, err := s.bw.WriteString(text); err != nil {
		s.err = fmt.Errorf("obs: writing chrome trace: %w", err)
	}
}

func (s *ChromeTraceSink) sep() {
	if s.first {
		s.first = false
		return
	}
	s.write(",")
}

// Emit implements Sink.
func (s *ChromeTraceSink) Emit(e *DecisionEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.named[e.Level] {
		s.named[e.Level] = true
		s.sep()
		s.write(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"level %d"}}`,
			e.Level, e.Level))
	}
	dur := e.PredictorSec + e.SwitchSec
	if e.Done {
		dur += e.ActualExecSec
	} else if e.Predicted {
		dur += e.PredictedExecSec
	}
	args, err := json.Marshal(e)
	if err != nil {
		if s.err == nil {
			s.err = fmt.Errorf("obs: encoding chrome trace args: %w", err)
		}
		return
	}
	s.sep()
	s.write(fmt.Sprintf(`{"name":"%s#%d","ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":%d,"args":{"decision":%s}}`,
		e.Workload, e.Job, e.TimeSec*1e6, dur*1e6, e.Level, args))
	if e.Missed {
		s.sep()
		s.write(fmt.Sprintf(`{"name":"deadline miss %s#%d","ph":"i","s":"g","ts":%.3f,"pid":1,"tid":%d}`,
			e.Workload, e.Job, (e.TimeSec+dur)*1e6, e.Level))
	}
}

// Close terminates the trace document and reports the first error.
func (s *ChromeTraceSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.write("]}\n")
	if err := s.bw.Flush(); err != nil && s.err == nil {
		s.err = fmt.Errorf("obs: flushing chrome trace: %w", err)
	}
	return s.err
}
