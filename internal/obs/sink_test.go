package obs

import (
	"reflect"
	"strings"
	"testing"
)

func TestJSONLRoundTrip(t *testing.T) {
	var b strings.Builder
	s := NewJSONLSink(&b)
	events := []DecisionEvent{
		{Workload: "ldecode", Governor: "prediction", Job: 0, TimeSec: 0.1,
			Predicted: true, TFminSec: 0.04, TFmaxSec: 0.01, PredictedExecSec: 0.02,
			Level: 3, FreqKHz: 600000, Margin: 0.1, BudgetSec: 0.05, EffBudgetSec: 0.049,
			PredictorSec: 0.001, SwitchSec: 0.0001, Done: true,
			ActualExecSec: 0.025, ResidualSec: 0.005, FeatHash: 42},
		{Workload: "sha", Job: 1, Level: 12, Done: true, Missed: true},
	}
	for i := range events {
		events[i].Seq = uint64(i)
		s.Emit(&events[i])
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("round trip returned %d events", len(got))
	}
	for i := range events {
		if !reflect.DeepEqual(got[i], events[i]) {
			t.Errorf("event %d mismatch:\n got %+v\nwant %+v", i, got[i], events[i])
		}
	}
}

func TestReadJSONLRejectsMalformedLine(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader("{\"seq\":0}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line-2 parse error", err)
	}
}

// TestChromeTraceGolden pins the Chrome trace-event output: metadata
// thread names per level, one complete event per decision, and a
// global instant event per deadline miss.
func TestChromeTraceGolden(t *testing.T) {
	var b strings.Builder
	s := NewChromeTraceSink(&b)
	s.Emit(&DecisionEvent{Seq: 0, Workload: "ldecode", Job: 0, TimeSec: 0.05,
		Predicted: true, PredictedExecSec: 0.02, Level: 3,
		PredictorSec: 0.001, SwitchSec: 0.0005, Done: true, ActualExecSec: 0.03})
	s.Emit(&DecisionEvent{Seq: 1, Workload: "ldecode", Job: 1, TimeSec: 0.10,
		Level: 3, Done: true, ActualExecSec: 0.01, Missed: true})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	want := `{"displayTimeUnit":"ms","traceEvents":[` +
		`{"name":"thread_name","ph":"M","pid":1,"tid":3,"args":{"name":"level 3"}},` +
		`{"name":"ldecode#0","ph":"X","ts":50000.000,"dur":31500.000,"pid":1,"tid":3,"args":{"decision":` +
		`{"seq":0,"workload":"ldecode","job":0,"time_sec":0.05,"predicted":true,"predicted_exec_sec":0.02,"level":3,"predictor_sec":0.001,"switch_sec":0.0005,"done":true,"actual_exec_sec":0.03}}},` +
		`{"name":"ldecode#1","ph":"X","ts":100000.000,"dur":10000.000,"pid":1,"tid":3,"args":{"decision":` +
		`{"seq":1,"workload":"ldecode","job":1,"time_sec":0.1,"predicted":false,"level":3,"done":true,"actual_exec_sec":0.01,"missed":true}}},` +
		`{"name":"deadline miss ldecode#1","ph":"i","s":"g","ts":110000.000,"pid":1,"tid":3}` +
		"]}\n"
	if b.String() != want {
		t.Errorf("chrome trace mismatch:\n--- got ---\n%s\n--- want ---\n%s", b.String(), want)
	}
}

func TestMemorySink(t *testing.T) {
	var s MemorySink
	s.Emit(&DecisionEvent{Job: 7})
	if got := s.Events(); len(got) != 1 || got[0].Job != 7 {
		t.Fatalf("events = %+v", got)
	}
}
