// Streaming sketches for fleet-scale aggregation: a merging t-digest
// quantile sketch and a space-saving heavy-hitter sketch. Both hold a
// fixed amount of memory regardless of how many observations they
// absorb — the property that makes fleet observability possible at
// all: a million devices cannot each keep a log, but every device's
// residual can flow through a few kilobytes of centroids.
//
// Both sketches are deterministic: the state after N inserts is a pure
// function of the insert sequence, and Merge is a pure function of the
// two operand states. The fleet engine's commit stage feeds shards in
// device-index order, so fleet-level sketch state — and every byte of
// every report derived from it — is bit-stable across worker counts.
//
// Inserts are hot-path annotated and allocation-free (enforced by
// dvfsvet statically and `make alloc-gate` at run time): the quantile
// sketch buffers into a fixed array and compacts in place with its own
// heapsort; the heavy-hitter sketch is a fixed entry table with
// hash-then-string comparison, no map.
package obs

import "math"

// sketch sizing defaults. compression 200 bounds the t-digest at
// ~1.6 KB of centroids (2·compression float64 pairs) with q50/q95/q99
// errors well under 1% on 100k-sample streams; 32 heavy-hitter slots
// cover "top-10 worst devices" with headroom for churn.
const (
	defaultCompression = 200
	sketchBufSize      = 256
	defaultHHCapacity  = 32
)

// QuantileSketch is a merging t-digest: centroids sized by the scale
// bound 4·W·q(1−q)/δ, so tails stay near-exact while the middle of the
// distribution compresses. The zero value is not usable; call
// NewQuantileSketch.
type QuantileSketch struct {
	compression float64
	// mean/weight are the centroids, ascending by mean; n is the live
	// count. scratchM/scratchW hold compaction output (swapped in).
	mean, weight []float64
	scratchM     []float64
	scratchW     []float64
	n            int
	// buf holds raw inserts until a compaction folds them in.
	buf    []float64
	bufLen int
	count  float64
	min    float64
	max    float64
}

// NewQuantileSketch returns an empty sketch. compression ≤ 0 selects
// the default (200). Memory is fixed at allocation time: ~4·compression
// centroid slots plus a 256-value insert buffer.
func NewQuantileSketch(compression int) *QuantileSketch {
	if compression <= 0 {
		compression = defaultCompression
	}
	capN := 4 * compression
	return &QuantileSketch{
		compression: float64(compression),
		mean:        make([]float64, capN),
		weight:      make([]float64, capN),
		scratchM:    make([]float64, capN),
		scratchW:    make([]float64, capN),
		buf:         make([]float64, sketchBufSize),
		min:         math.Inf(1),
		max:         math.Inf(-1),
	}
}

// Add inserts one observation. Non-finite values are dropped (the
// sketch represents a distribution; NaN has no rank). Allocation-free:
// the buffer and compaction scratch are fixed arrays.
//
//dvfs:hotpath
func (s *QuantileSketch) Add(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.count++
	s.buf[s.bufLen] = v
	s.bufLen++
	if s.bufLen == len(s.buf) {
		s.flush()
	}
}

// Count returns the number of (finite) observations absorbed.
func (s *QuantileSketch) Count() float64 { return s.count }

// Centroids returns the current centroid count after folding any
// buffered inserts — the memory-bound tests assert it never exceeds
// the fixed capacity.
func (s *QuantileSketch) Centroids() int {
	s.flush()
	return s.n
}

// flush folds the insert buffer into the centroid list.
func (s *QuantileSketch) flush() {
	if s.bufLen == 0 {
		return
	}
	sortFloats(s.buf[:s.bufLen])
	s.compact(s.buf[:s.bufLen], nil)
	s.bufLen = 0
}

// compact merges the existing centroids with a second ascending
// sequence (bw == nil means unit weights) into the scratch arrays
// under the scale bound, then swaps scratch in. Pure function of the
// operand states — the determinism contract lives here.
func (s *QuantileSketch) compact(bm, bw []float64) {
	i, j := 0, 0
	k := 0
	var cm, cw float64
	wSoFar := 0.0
	first := true
	for i < s.n || j < len(bm) {
		var m, w float64
		// Ties between the two sequences break toward the existing
		// centroids, which keeps the merge independent of which operand
		// carried the value.
		if i < s.n && (j >= len(bm) || s.mean[i] <= bm[j]) {
			m, w = s.mean[i], s.weight[i]
			i++
		} else {
			m = bm[j]
			w = 1
			if bw != nil {
				w = bw[j]
			}
			j++
		}
		if first {
			cm, cw = m, w
			first = false
			continue
		}
		q := (wSoFar + (cw+w)/2) / s.count
		limit := 4 * s.count * q * (1 - q) / s.compression
		if cw+w <= limit || k == len(s.scratchM)-1 {
			// Merge into the current centroid (forced when scratch is at
			// capacity — cannot happen under the scale bound, but the
			// guard keeps even a pathological stream allocation-free).
			cm = (cm*cw + m*w) / (cw + w)
			cw += w
		} else {
			s.scratchM[k] = cm
			s.scratchW[k] = cw
			k++
			wSoFar += cw
			cm, cw = m, w
		}
	}
	if !first {
		s.scratchM[k] = cm
		s.scratchW[k] = cw
		k++
	}
	s.mean, s.scratchM = s.scratchM, s.mean
	s.weight, s.scratchW = s.scratchW, s.weight
	s.n = k
}

// Merge folds o into s. Deterministic: the result depends only on the
// two operand states, so shards merged in a fixed order produce
// bit-identical fleet sketches. Both sketches' insert buffers are
// folded in first (o's estimates are unchanged by this).
func (s *QuantileSketch) Merge(o *QuantileSketch) {
	if o == nil {
		return
	}
	s.flush()
	o.flush()
	if o.n == 0 {
		return
	}
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.count += o.count
	s.compact(o.mean[:o.n], o.weight[:o.n])
}

// Quantile estimates the p-quantile (clamped to [0,1]) with linear
// interpolation between centroid means, anchored at the exact min and
// max. NaN with no observations. Folds buffered inserts first.
func (s *QuantileSketch) Quantile(p float64) float64 {
	s.flush()
	if s.n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return s.min
	}
	if p >= 1 {
		return s.max
	}
	target := p * s.count
	// Centroid i sits at cumulative position wSoFar + weight[i]/2.
	if target <= s.weight[0]/2 {
		// Below the first centroid's midpoint: interpolate from min.
		return s.min + (s.mean[0]-s.min)*(target/(s.weight[0]/2+1e-300))
	}
	wSoFar := 0.0
	for i := 0; i < s.n-1; i++ {
		pos := wSoFar + s.weight[i]/2
		next := wSoFar + s.weight[i] + s.weight[i+1]/2
		if target <= next {
			frac := (target - pos) / (next - pos)
			return s.mean[i] + frac*(s.mean[i+1]-s.mean[i])
		}
		wSoFar += s.weight[i]
	}
	// Above the last centroid's midpoint: interpolate toward max.
	last := s.n - 1
	pos := wSoFar + s.weight[last]/2
	span := s.count - pos
	if span <= 0 {
		return s.max
	}
	frac := (target - pos) / span
	if frac > 1 {
		frac = 1
	}
	return s.mean[last] + frac*(s.max-s.mean[last])
}

// sortFloats is an in-place heapsort: deterministic, iterative, and
// allocation-free, so the hot-path compaction can sort its buffer
// without reaching into package sort.
func sortFloats(a []float64) {
	n := len(a)
	for root := n/2 - 1; root >= 0; root-- {
		siftDown(a, root, n)
	}
	for end := n - 1; end > 0; end-- {
		a[0], a[end] = a[end], a[0]
		siftDown(a, 0, end)
	}
}

func siftDown(a []float64, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && a[child+1] > a[child] {
			child++
		}
		if a[root] >= a[child] {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}

// HeavyHit is one entry of a HeavyHitters sketch: Count is the upper
// bound on the key's true count, Err the overestimate bound (true
// count ≥ Count − Err).
type HeavyHit struct {
	Key   string `json:"key"`
	Count uint64 `json:"count"`
	Err   uint64 `json:"err"`
}

// HeavyHitters is a space-saving top-K sketch over string keys (device
// IDs): fixed capacity, the minimum-count entry is evicted when a new
// key arrives at a full table. Any key with true count above N/capacity
// is guaranteed present. The zero value is not usable; call
// NewHeavyHitters.
type HeavyHitters struct {
	keys  []string
	hash  []uint64
	count []uint64
	err   []uint64
	n     int
}

// NewHeavyHitters returns an empty sketch with the given capacity
// (≤ 0 selects 32). Memory is fixed: capacity entries, no map.
func NewHeavyHitters(capacity int) *HeavyHitters {
	if capacity <= 0 {
		capacity = defaultHHCapacity
	}
	return &HeavyHitters{
		keys:  make([]string, capacity),
		hash:  make([]uint64, capacity),
		count: make([]uint64, capacity),
		err:   make([]uint64, capacity),
	}
}

// strHash is FNV-1a over the key's bytes — indexing a string allocates
// nothing, unlike a []byte conversion.
func strHash(key string) uint64 {
	h := fnvOffset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return h
}

// Add credits key with inc. Lookup compares the cached hash before the
// string, so the common steady-state path (key already tracked) is a
// scan of at most capacity word compares. Eviction replaces the
// minimum-count entry (ties break toward the lexicographically larger
// key, so eviction is deterministic) and inherits its count as the
// new entry's error bound — the space-saving invariant.
//
//dvfs:hotpath
func (h *HeavyHitters) Add(key string, inc uint64) {
	hv := strHash(key)
	for i := 0; i < h.n; i++ {
		if h.hash[i] == hv && h.keys[i] == key {
			h.count[i] += inc
			return
		}
	}
	if h.n < len(h.keys) {
		i := h.n
		h.n++
		h.keys[i] = key
		h.hash[i] = hv
		h.count[i] = inc
		h.err[i] = 0
		return
	}
	mi := 0
	for i := 1; i < h.n; i++ {
		if h.count[i] < h.count[mi] ||
			(h.count[i] == h.count[mi] && h.keys[i] > h.keys[mi]) {
			mi = i
		}
	}
	h.err[mi] = h.count[mi]
	h.count[mi] += inc
	h.keys[mi] = key
	h.hash[mi] = hv
}

// Merge folds o into s: counts and error bounds sum for shared keys;
// the union is re-ranked (count descending, key ascending) and
// truncated to s's capacity. Deterministic regardless of either
// operand's internal entry order.
func (h *HeavyHitters) Merge(o *HeavyHitters) {
	if o == nil || o.n == 0 {
		return
	}
	union := make([]HeavyHit, 0, h.n+o.n)
	for i := 0; i < h.n; i++ {
		union = append(union, HeavyHit{Key: h.keys[i], Count: h.count[i], Err: h.err[i]})
	}
	for i := 0; i < o.n; i++ {
		found := false
		for k := range union {
			if union[k].Key == o.keys[i] {
				union[k].Count += o.count[i]
				union[k].Err += o.err[i]
				found = true
				break
			}
		}
		if !found {
			union = append(union, HeavyHit{Key: o.keys[i], Count: o.count[i], Err: o.err[i]})
		}
	}
	sortHits(union)
	h.n = 0
	for _, e := range union {
		if h.n == len(h.keys) {
			break
		}
		i := h.n
		h.n++
		h.keys[i] = e.Key
		h.hash[i] = strHash(e.Key)
		h.count[i] = e.Count
		h.err[i] = e.Err
	}
}

// Top returns the n highest-count entries, count descending with
// ascending-key tie-break (deterministic output for deterministic
// feeds). n ≤ 0 returns every tracked entry.
func (h *HeavyHitters) Top(n int) []HeavyHit {
	out := make([]HeavyHit, 0, h.n)
	for i := 0; i < h.n; i++ {
		out = append(out, HeavyHit{Key: h.keys[i], Count: h.count[i], Err: h.err[i]})
	}
	sortHits(out)
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// sortHits orders by count descending, then key ascending — a total
// order, so equal-count entries cannot reorder across runs. Insertion
// sort: the slices here are at most a couple of capacities long.
func sortHits(hits []HeavyHit) {
	for i := 1; i < len(hits); i++ {
		for j := i; j > 0; j-- {
			a, b := &hits[j-1], &hits[j]
			if a.Count > b.Count || (a.Count == b.Count && a.Key <= b.Key) {
				break
			}
			hits[j-1], hits[j] = hits[j], hits[j-1]
		}
	}
}
