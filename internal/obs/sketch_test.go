package obs

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile computes the reference quantile on a sorted sample
// with the same midpoint-interpolation convention the sketch uses.
func exactQuantile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p*float64(n) - 0.5
	if pos <= 0 {
		return sorted[0]
	}
	if pos >= float64(n-1) {
		return sorted[n-1]
	}
	lo := int(pos)
	frac := pos - float64(lo)
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// quantileErr measures sketch error in *rank* space normalized by n —
// the metric t-digests bound. A value-space check would blow up on
// heavy-tailed distributions where adjacent order statistics are far
// apart even for an exact algorithm.
func quantileErr(sorted []float64, got float64, p float64) float64 {
	n := len(sorted)
	rank := sort.SearchFloat64s(sorted, got)
	return math.Abs(float64(rank)/float64(n) - p)
}

// TestQuantileSketchAccuracy: ≤1% rank error at q50/q95/q99 on 100k
// samples across distribution shapes, with centroid count (memory)
// staying within the fixed bound.
func TestQuantileSketchAccuracy(t *testing.T) {
	const n = 100_000
	dists := []struct {
		name string
		gen  func(r *rand.Rand) float64
	}{
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() }},
		{"normal", func(r *rand.Rand) float64 { return r.NormFloat64() }},
		{"exponential", func(r *rand.Rand) float64 { return r.ExpFloat64() }},
		{"lognormal", func(r *rand.Rand) float64 { return math.Exp(2 * r.NormFloat64()) }},
		{"bimodal", func(r *rand.Rand) float64 {
			if r.Intn(2) == 0 {
				return r.NormFloat64()
			}
			return 50 + 0.1*r.NormFloat64()
		}},
	}
	for _, d := range dists {
		t.Run(d.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			s := NewQuantileSketch(0)
			vals := make([]float64, n)
			for i := range vals {
				v := d.gen(r)
				vals[i] = v
				s.Add(v)
			}
			sort.Float64s(vals)
			for _, p := range []float64{0.50, 0.95, 0.99} {
				got := s.Quantile(p)
				if err := quantileErr(vals, got, p); err > 0.01 {
					t.Errorf("q%.0f: sketch %.6g, exact %.6g, rank error %.4f > 1%%",
						p*100, got, exactQuantile(vals, p), err)
				}
			}
			if c := s.Centroids(); c > 4*defaultCompression {
				t.Errorf("centroid count %d exceeds fixed capacity %d", c, 4*defaultCompression)
			}
			if got, want := s.Count(), float64(n); got != want {
				t.Errorf("Count() = %v, want %v", got, want)
			}
			if got := s.Quantile(0); got != vals[0] {
				t.Errorf("Quantile(0) = %v, want exact min %v", got, vals[0])
			}
			if got := s.Quantile(1); got != vals[n-1] {
				t.Errorf("Quantile(1) = %v, want exact max %v", got, vals[n-1])
			}
		})
	}
}

// TestQuantileSketchMergeAccuracy: sharding a stream over 32 sketches
// and merging must stay within the same 1% rank-error budget as a
// single sketch.
func TestQuantileSketchMergeAccuracy(t *testing.T) {
	const n = 100_000
	const shards = 32
	r := rand.New(rand.NewSource(7))
	parts := make([]*QuantileSketch, shards)
	for i := range parts {
		parts[i] = NewQuantileSketch(0)
	}
	vals := make([]float64, n)
	for i := range vals {
		v := r.ExpFloat64() * 10
		vals[i] = v
		parts[i%shards].Add(v)
	}
	merged := NewQuantileSketch(0)
	for _, p := range parts {
		merged.Merge(p)
	}
	sort.Float64s(vals)
	if got, want := merged.Count(), float64(n); got != want {
		t.Fatalf("merged Count() = %v, want %v", got, want)
	}
	for _, p := range []float64{0.50, 0.95, 0.99} {
		got := merged.Quantile(p)
		if err := quantileErr(vals, got, p); err > 0.01 {
			t.Errorf("merged q%.0f: sketch %.6g, rank error %.4f > 1%%", p*100, got, err)
		}
	}
}

// TestQuantileSketchMergeDeterminism: the state after a merge is a
// pure function of the operand states — same shard contents merged in
// the same order must yield bit-identical quantiles, run after run.
// This is what makes fleet reports byte-stable across worker counts.
func TestQuantileSketchMergeDeterminism(t *testing.T) {
	build := func() *QuantileSketch {
		r := rand.New(rand.NewSource(99))
		parts := make([]*QuantileSketch, 8)
		for i := range parts {
			parts[i] = NewQuantileSketch(0)
		}
		for i := 0; i < 50_000; i++ {
			parts[i%len(parts)].Add(r.NormFloat64())
		}
		out := NewQuantileSketch(0)
		for _, p := range parts {
			out.Merge(p)
		}
		return out
	}
	a, b := build(), build()
	for p := 0.0; p <= 1.0; p += 0.01 {
		qa, qb := a.Quantile(p), b.Quantile(p)
		if math.Float64bits(qa) != math.Float64bits(qb) {
			t.Fatalf("quantile %.2f differs across identical runs: %v vs %v", p, qa, qb)
		}
	}
	if a.Centroids() != b.Centroids() {
		t.Fatalf("centroid counts differ: %d vs %d", a.Centroids(), b.Centroids())
	}
}

// TestQuantileSketchEdgeCases: empty, single-value, non-finite inputs.
func TestQuantileSketchEdgeCases(t *testing.T) {
	s := NewQuantileSketch(0)
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Errorf("empty sketch Quantile = %v, want NaN", s.Quantile(0.5))
	}
	s.Add(math.NaN())
	s.Add(math.Inf(1))
	s.Add(math.Inf(-1))
	if s.Count() != 0 {
		t.Errorf("non-finite inputs counted: %v", s.Count())
	}
	s.Add(3.5)
	for _, p := range []float64{0, 0.5, 1} {
		if got := s.Quantile(p); got != 3.5 {
			t.Errorf("single-value Quantile(%v) = %v, want 3.5", p, got)
		}
	}
	// Monotonicity over a small stream.
	for i := 0; i < 1000; i++ {
		s.Add(float64(i % 97))
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 1.0; p += 0.001 {
		q := s.Quantile(p)
		if q < prev {
			t.Fatalf("quantile not monotone at p=%.3f: %v < %v", p, q, prev)
		}
		prev = q
	}
}

// TestSketchAddZeroAlloc: the //dvfs:hotpath insert — including the
// buffer-flush compaction it periodically triggers — must not
// allocate. Gated by `make alloc-gate`.
func TestSketchAddZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is not meaningful under the race detector")
	}
	s := NewQuantileSketch(0)
	r := rand.New(rand.NewSource(1))
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = r.NormFloat64()
	}
	i := 0
	allocs := testing.AllocsPerRun(5000, func() {
		s.Add(vals[i%len(vals)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("QuantileSketch.Add allocated %.1f times per run", allocs)
	}
}

// TestHeavyHittersZeroAlloc: the space-saving insert, including
// steady-state eviction at a full table, must not allocate.
func TestHeavyHittersZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is not meaningful under the race detector")
	}
	h := NewHeavyHitters(8)
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("dev-%03d", i)
	}
	i := 0
	allocs := testing.AllocsPerRun(5000, func() {
		h.Add(keys[i%len(keys)], 1)
		i++
	})
	if allocs != 0 {
		t.Fatalf("HeavyHitters.Add allocated %.1f times per run", allocs)
	}
}

// TestHeavyHittersExact: under capacity the sketch is exact.
func TestHeavyHittersExact(t *testing.T) {
	h := NewHeavyHitters(8)
	h.Add("a", 5)
	h.Add("b", 3)
	h.Add("a", 2)
	h.Add("c", 3)
	top := h.Top(0)
	want := []HeavyHit{{Key: "a", Count: 7}, {Key: "b", Count: 3}, {Key: "c", Count: 3}}
	if len(top) != len(want) {
		t.Fatalf("Top = %v, want %v", top, want)
	}
	for i := range want {
		if top[i] != want[i] {
			t.Errorf("Top[%d] = %v, want %v", i, top[i], want[i])
		}
	}
}

// TestHeavyHittersGuarantee: any key with true count > N/capacity must
// be present, and reported counts must bracket the truth:
// Count−Err ≤ true ≤ Count.
func TestHeavyHittersGuarantee(t *testing.T) {
	const capacity = 16
	h := NewHeavyHitters(capacity)
	r := rand.New(rand.NewSource(3))
	truth := map[string]uint64{}
	n := uint64(0)
	for i := 0; i < 50_000; i++ {
		var key string
		if r.Intn(100) < 60 {
			key = fmt.Sprintf("hot-%d", r.Intn(4))
		} else {
			key = fmt.Sprintf("cold-%d", r.Intn(5000))
		}
		h.Add(key, 1)
		truth[key]++
		n++
	}
	top := h.Top(0)
	byKey := map[string]HeavyHit{}
	for _, e := range top {
		byKey[e.Key] = e
		if tc := truth[e.Key]; e.Count < tc || e.Count-e.Err > tc {
			t.Errorf("key %q: reported [%d−%d, %d] does not bracket true %d",
				e.Key, e.Count, e.Err, e.Count, tc)
		}
	}
	for key, tc := range truth {
		if tc > n/capacity {
			if _, ok := byKey[key]; !ok {
				t.Errorf("key %q with true count %d > N/k=%d missing from sketch", key, tc, n/capacity)
			}
		}
	}
}

// TestHeavyHittersMergeDeterminism: merging the same shard states in
// the same order yields identical entries regardless of each shard's
// internal slot layout, and merged counts still bracket the truth for
// keys tracked by every shard.
func TestHeavyHittersMergeDeterminism(t *testing.T) {
	build := func(order []int) *HeavyHitters {
		shards := make([]*HeavyHitters, 4)
		for i := range shards {
			shards[i] = NewHeavyHitters(16)
		}
		r := rand.New(rand.NewSource(11))
		for i := 0; i < 20_000; i++ {
			key := fmt.Sprintf("dev-%d", r.Intn(200))
			shards[i%len(shards)].Add(key, 1)
		}
		out := NewHeavyHitters(16)
		for _, i := range order {
			out.Merge(shards[i])
		}
		return out
	}
	a := build([]int{0, 1, 2, 3})
	b := build([]int{0, 1, 2, 3})
	ta, tb := a.Top(0), b.Top(0)
	if len(ta) != len(tb) {
		t.Fatalf("entry counts differ: %d vs %d", len(ta), len(tb))
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Errorf("entry %d differs across identical runs: %v vs %v", i, ta[i], tb[i])
		}
	}
}
