package obs

import (
	"log/slog"
	"math"
	"sort"
	"sync"
)

// SLOConfig parameterizes the deadline-miss SLO tracker. The zero
// value selects production-style defaults: a 1% miss-rate objective
// watched over a fast 128-job window (burn ≥ 10× fires) and a slow
// 2048-job window (burn ≥ 2× fires), alerting only when both agree —
// the multi-window multi-burn-rate pattern, counted in jobs rather
// than wall time because the interactive workloads here are periodic
// job streams and a job count is deterministic under simulation.
type SLOConfig struct {
	// Target is the acceptable deadline-miss fraction; zero → 0.01.
	// (A negative value is clamped to 0.01; an SLO of "zero misses
	// ever" would make any single miss an infinite burn, so express
	// strict SLOs as a small positive target instead.)
	Target float64
	// FastWindow and SlowWindow are the sliding-window sizes in
	// completed jobs; zero → 128 and 2048.
	FastWindow int
	SlowWindow int
	// FastBurn and SlowBurn are the burn-rate alert thresholds
	// (observed miss rate ÷ Target) for each window; zero → 10 and 2.
	FastBurn float64
	SlowBurn float64
	// MinSamples gates alerting until a workload has completed at
	// least this many jobs; zero → 32.
	MinSamples int
	// MaxKeys bounds the number of distinct keys the tracker will
	// allocate windows for; zero → unbounded (the original
	// per-workload behaviour, where cardinality is small and known).
	// Fleet mode derives keys from untrusted traces, so it sets a
	// bound: once reached, observations for new keys fold into the
	// catch-all OverflowKey so totals stay accurate while memory stays
	// fixed.
	MaxKeys int
	// Log receives alert transitions; nil discards them.
	Log *slog.Logger
	// BurnGauge, when non-nil, tracks the current burn rate per
	// (workload, window) with window ∈ {"fast", "slow"}.
	BurnGauge *GaugeVec
	// AlertGauge, when non-nil, is set to 1/0 per workload on alert
	// transitions.
	AlertGauge *GaugeVec
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Target <= 0 {
		c.Target = 0.01
	}
	if c.FastWindow <= 0 {
		c.FastWindow = 128
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = 2048
	}
	if c.FastBurn <= 0 {
		c.FastBurn = 10
	}
	if c.SlowBurn <= 0 {
		c.SlowBurn = 2
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 32
	}
	return c
}

// SLOTracker maintains per-workload deadline-miss burn rates over two
// sliding windows and raises an alert when both windows burn error
// budget faster than their thresholds. The fast window catches sharp
// regressions (a bad model push) within ~a hundred jobs; the slow
// window keeps the alert from flapping on short bursts that the error
// budget can absorb. Alerts clear with hysteresis once both burns
// fall below half their thresholds.
type SLOTracker struct {
	cfg SLOConfig

	mu  sync.Mutex
	per map[string]*sloState
}

type sloState struct {
	fast, slow missWindow
	total      int64
	misses     int64
	alerting   bool
}

// missWindow is a fixed-size circular buffer of deadline outcomes.
type missWindow struct {
	bits   []bool
	next   int
	filled bool
	misses int
}

func (w *missWindow) push(missed bool) {
	if w.filled && w.bits[w.next] {
		w.misses--
	}
	w.bits[w.next] = missed
	if missed {
		w.misses++
	}
	w.next++
	if w.next == len(w.bits) {
		w.next = 0
		w.filled = true
	}
}

func (w *missWindow) size() int {
	if w.filled {
		return len(w.bits)
	}
	return w.next
}

func (w *missWindow) rate() float64 {
	n := w.size()
	if n == 0 {
		return 0
	}
	return float64(w.misses) / float64(n)
}

// NewSLOTracker returns a tracker with the given configuration.
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	return &SLOTracker{cfg: cfg.withDefaults(), per: map[string]*sloState{}}
}

// Target returns the configured miss-rate objective.
func (t *SLOTracker) Target() float64 { return t.cfg.Target }

// OverflowKey receives observations for keys beyond the MaxKeys bound.
const OverflowKey = "_overflow"

// FleetKey is the key under which ObserveEvent tracks the whole
// fleet's aggregate burn rate.
const FleetKey = "fleet"

// ObserveEvent feeds a completed decision event under fleet keys: the
// aggregate FleetKey plus "platform:<name>" and "workload:<name>"
// breakdowns when the event carries them. This is the keyed/fleet mode
// used by the /v1/fleet/ingest endpoint and the fleet replay engine —
// the same multi-window burn-rate machinery, keyed by trace dimensions
// instead of the serving tier's model name. Events that have not
// completed carry no deadline outcome and are ignored.
func (t *SLOTracker) ObserveEvent(e *DecisionEvent) {
	if e == nil || !e.Done {
		return
	}
	t.Observe(FleetKey, e.Missed)
	if e.Platform != "" {
		t.Observe("platform:"+e.Platform, e.Missed)
	}
	if e.Workload != "" {
		t.Observe("workload:"+e.Workload, e.Missed)
	}
}

// Observe feeds one completed job's deadline outcome for a workload
// and re-evaluates the alert state.
func (t *SLOTracker) Observe(workload string, missed bool) {
	t.mu.Lock()
	st := t.per[workload]
	if st == nil {
		if t.cfg.MaxKeys > 0 && len(t.per) >= t.cfg.MaxKeys {
			// At the key bound: fold into the catch-all window instead
			// of allocating a new one (creating the catch-all itself may
			// exceed the bound by one — the bound is about untrusted
			// cardinality, not an exact count).
			workload = OverflowKey
			st = t.per[workload]
		}
		if st == nil {
			st = &sloState{
				fast: missWindow{bits: make([]bool, t.cfg.FastWindow)},
				slow: missWindow{bits: make([]bool, t.cfg.SlowWindow)},
			}
			t.per[workload] = st
		}
	}
	st.fast.push(missed)
	st.slow.push(missed)
	st.total++
	if missed {
		st.misses++
	}

	fastBurn := st.fast.rate() / t.cfg.Target
	slowBurn := st.slow.rate() / t.cfg.Target
	var transition *bool
	switch {
	case !st.alerting && st.total >= int64(t.cfg.MinSamples) &&
		fastBurn >= t.cfg.FastBurn && slowBurn >= t.cfg.SlowBurn:
		st.alerting = true
		v := true
		transition = &v
	case st.alerting && fastBurn < t.cfg.FastBurn/2 && slowBurn < t.cfg.SlowBurn/2:
		st.alerting = false
		v := false
		transition = &v
	}
	t.mu.Unlock()

	if t.cfg.BurnGauge != nil {
		t.cfg.BurnGauge.With(workload, "fast").Set(fastBurn)
		t.cfg.BurnGauge.With(workload, "slow").Set(slowBurn)
	}
	if transition == nil {
		return
	}
	if t.cfg.AlertGauge != nil {
		v := 0.0
		if *transition {
			v = 1
		}
		t.cfg.AlertGauge.With(workload).Set(v)
	}
	if t.cfg.Log != nil {
		if *transition {
			t.cfg.Log.Warn("deadline-miss SLO burn-rate alert: error budget burning on both windows",
				"workload", workload, "target", t.cfg.Target,
				"fast_burn", fastBurn, "fast_threshold", t.cfg.FastBurn,
				"slow_burn", slowBurn, "slow_threshold", t.cfg.SlowBurn)
		} else {
			t.cfg.Log.Info("deadline-miss SLO recovered",
				"workload", workload, "fast_burn", fastBurn, "slow_burn", slowBurn)
		}
	}
}

// SLOStatus is one workload's current SLO state, as served by dvfsd's
// GET /debug/slo.
type SLOStatus struct {
	Workload string  `json:"workload"`
	Target   float64 `json:"target"`
	Jobs     int64   `json:"jobs"`
	Misses   int64   `json:"misses"`
	MissRate float64 `json:"miss_rate"`
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	Alerting bool    `json:"alerting"`
}

// Status returns the workload's current state; ok is false when the
// workload has never been observed.
func (t *SLOTracker) Status(workload string) (SLOStatus, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.per[workload]
	if st == nil {
		return SLOStatus{}, false
	}
	return t.statusLocked(workload, st), true
}

func (t *SLOTracker) statusLocked(workload string, st *sloState) SLOStatus {
	s := SLOStatus{
		Workload: workload,
		Target:   t.cfg.Target,
		Jobs:     st.total,
		Misses:   st.misses,
		FastBurn: st.fast.rate() / t.cfg.Target,
		SlowBurn: st.slow.rate() / t.cfg.Target,
		Alerting: st.alerting,
	}
	if st.total > 0 {
		s.MissRate = float64(st.misses) / float64(st.total)
	}
	return s
}

// Snapshot returns every observed workload's status, sorted by name.
func (t *SLOTracker) Snapshot() []SLOStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.per))
	for name := range t.per {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]SLOStatus, 0, len(names))
	for _, name := range names {
		out = append(out, t.statusLocked(name, t.per[name]))
	}
	return out
}

// Alerting reports whether the workload currently has an active
// burn-rate alert.
func (t *SLOTracker) Alerting(workload string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.per[workload]
	return st != nil && st.alerting
}

// BurnRates returns the workload's current fast- and slow-window burn
// rates (NaN with no observations).
func (t *SLOTracker) BurnRates(workload string) (fast, slow float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.per[workload]
	if st == nil {
		return math.NaN(), math.NaN()
	}
	return st.fast.rate() / t.cfg.Target, st.slow.rate() / t.cfg.Target
}
