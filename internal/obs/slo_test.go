package obs

import (
	"math"
	"testing"
)

// sloTestConfig keeps windows tiny so tests drive full fill cycles.
func sloTestConfig() SLOConfig {
	return SLOConfig{
		Target:     0.01,
		FastWindow: 8,
		SlowWindow: 32,
		FastBurn:   10,
		SlowBurn:   2,
		MinSamples: 8,
	}
}

func TestSLOTrackerAlertsAndClears(t *testing.T) {
	s := NewSLOTracker(sloTestConfig())

	// All hits: no alert, burn rates zero.
	for i := 0; i < 16; i++ {
		s.Observe("ldecode", false)
	}
	if s.Alerting("ldecode") {
		t.Fatal("alerting with zero misses")
	}
	fast, slow := s.BurnRates("ldecode")
	if fast != 0 || slow != 0 {
		t.Fatalf("burn rates = %g, %g, want 0, 0", fast, slow)
	}

	// A sustained miss burst: fast window saturates (rate 1.0 → burn
	// 100 ≥ 10) and the slow window reaches 16/32 → burn 50 ≥ 2.
	for i := 0; i < 16; i++ {
		s.Observe("ldecode", true)
	}
	if !s.Alerting("ldecode") {
		t.Fatal("no alert after sustained miss burst")
	}
	st, ok := s.Status("ldecode")
	if !ok || !st.Alerting || st.Misses != 16 || st.Jobs != 32 {
		t.Fatalf("status = %+v, ok=%v", st, ok)
	}

	// Recovery: hysteresis clears only once both burns fall below half
	// their thresholds. Push hits until the fast window is clean and
	// the slow window dilutes below slowBurn/2 = 1 (rate < 0.01, which
	// for a 32-job window means zero misses remaining).
	for i := 0; i < 64 && s.Alerting("ldecode"); i++ {
		s.Observe("ldecode", false)
	}
	if s.Alerting("ldecode") {
		t.Fatal("alert never cleared after sustained recovery")
	}
}

func TestSLOTrackerMinSamplesGate(t *testing.T) {
	s := NewSLOTracker(sloTestConfig())
	// 4 straight misses would burn both windows far past threshold, but
	// MinSamples=8 keeps the alert quiet on a cold start.
	for i := 0; i < 4; i++ {
		s.Observe("sha", true)
	}
	if s.Alerting("sha") {
		t.Fatal("alerted before MinSamples observations")
	}
	for i := 0; i < 4; i++ {
		s.Observe("sha", true)
	}
	if !s.Alerting("sha") {
		t.Fatal("no alert once MinSamples reached with saturated windows")
	}
}

func TestSLOTrackerGaugesAndSnapshot(t *testing.T) {
	reg := NewRegistry()
	cfg := sloTestConfig()
	cfg.BurnGauge = reg.GaugeVec("test_slo_burn", "burn", "workload", "window")
	cfg.AlertGauge = reg.GaugeVec("test_slo_alert", "alert", "workload")
	s := NewSLOTracker(cfg)

	for i := 0; i < 16; i++ {
		s.Observe("b", i%2 == 0) // 50% misses: alerts
		s.Observe("a", false)
	}
	snap := s.Snapshot()
	if len(snap) != 2 || snap[0].Workload != "a" || snap[1].Workload != "b" {
		t.Fatalf("snapshot not sorted by workload: %+v", snap)
	}
	if snap[0].Alerting || !snap[1].Alerting {
		t.Fatalf("alert states wrong: %+v", snap)
	}
	if snap[1].MissRate != 0.5 {
		t.Fatalf("miss rate = %g, want 0.5", snap[1].MissRate)
	}
	if g := cfg.AlertGauge.With("b").Value(); g != 1 {
		t.Fatalf("alert gauge = %g, want 1", g)
	}
	if g := cfg.BurnGauge.With("a", "fast").Value(); g != 0 {
		t.Fatalf("healthy fast burn gauge = %g, want 0", g)
	}
	if g := cfg.BurnGauge.With("b", "slow").Value(); g < 2 {
		t.Fatalf("burning slow gauge = %g, want ≥ 2", g)
	}
}

func TestSLOTrackerUnknownWorkload(t *testing.T) {
	s := NewSLOTracker(SLOConfig{})
	if _, ok := s.Status("nope"); ok {
		t.Fatal("Status ok for never-observed workload")
	}
	if s.Alerting("nope") {
		t.Fatal("Alerting for never-observed workload")
	}
	fast, slow := s.BurnRates("nope")
	if !math.IsNaN(fast) || !math.IsNaN(slow) {
		t.Fatalf("burn rates = %g, %g, want NaN", fast, slow)
	}
	if got := s.Target(); got != 0.01 {
		t.Fatalf("default target = %g, want 0.01", got)
	}
}

func TestTracerFeedsSLO(t *testing.T) {
	s := NewSLOTracker(sloTestConfig())
	tr := NewTracer(TracerOptions{SLO: s})
	for i := 0; i < 10; i++ {
		p := tr.Begin(DecisionEvent{Workload: "ldecode", Job: i})
		p.End(0.01, i%2 == 0)
	}
	// A one-shot (not Done) event must not count.
	tr.Emit(DecisionEvent{Workload: "ldecode", Job: 99})
	st, ok := tr.SLO().Status("ldecode")
	if !ok || st.Jobs != 10 || st.Misses != 5 {
		t.Fatalf("status = %+v, ok=%v", st, ok)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}
