package obs

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// Phase names for the span ledger. A decision's ledger mirrors the
// §3.4 budget arithmetic: the predictor's own cost (slice evaluation,
// model prediction, level selection) and the DVFS switch estimate are
// subtracted from the job's budget, and what remains pays for the job
// itself. Spans make that ledger a measured quantity instead of a
// static estimate.
const (
	// PhaseDecide is the in-process controller's decision root: it
	// encloses slice evaluation, model prediction, and level selection.
	PhaseDecide = "decide"
	// PhaseServe is the serving tier's root: it encloses request
	// ingest, registry lookup, model prediction, and level selection.
	PhaseServe = "serve"
	// PhaseSliceEval is the prediction slice's execution (the dominant
	// predictor cost the paper charges against the budget).
	PhaseSliceEval = "slice_eval"
	// PhasePredict is feature vectorization plus the two model
	// evaluations (tfmin, tfmax).
	PhasePredict = "model_predict"
	// PhaseSelect is the frequency/level selection (dvfs.Selector.Pick).
	PhaseSelect = "level_select"
	// PhaseIngest is HTTP body read + decode on the serve path.
	PhaseIngest = "http_ingest"
	// PhaseLookup is the model-registry lookup + wire-trace decode.
	PhaseLookup = "registry_lookup"
	// PhaseSwitch is the DVFS transition charged to the decision: the
	// switch-table estimate on the live path, the measured transition
	// once a simulation's ground truth is merged in.
	PhaseSwitch = "dvfs_switch"
	// PhaseExec is the job's execution at the chosen level.
	PhaseExec = "job_exec"
)

// Span is one timed phase of a decision. Ledgers are stored flat in
// preorder with nesting encoded by Depth (the Chrome-trace layout): a
// span's children are the spans that follow it with a greater depth,
// up to the next span at its own depth or less. StartSec is relative
// to the ledger's origin (the instant the decision began).
type Span struct {
	Name     string  `json:"name"`
	Depth    int     `json:"depth,omitempty"`
	StartSec float64 `json:"start_sec"`
	DurSec   float64 `json:"dur_sec"`
}

// EndSec is the span's end offset.
func (s Span) EndSec() float64 { return s.StartSec + s.DurSec }

const (
	maxSpans     = 8
	maxSpanDepth = 4
)

// spanBase anchors every timer's monotonic clock; reading an offset
// from a fixed base (time.Since) is cheaper than time.Now, which also
// fetches the wall clock the ledger never uses.
var spanBase = time.Now()

// SpanTimer records one decision's span ledger with as few monotonic
// clock reads as the ledger shape allows: opening a span reuses the
// previous boundary (phases are contiguous), so a ledger with k
// measured boundaries costs k+1 clock reads regardless of how many
// spans share them. A timer is single-use: Finish returns the ledger
// and the timer must not be reused. All methods are nil-safe, so call
// sites need no tracing-enabled branches.
type SpanTimer struct {
	t0      time.Time
	last    float64
	n       int
	depth   int
	skipped int
	stack   [maxSpanDepth]int8
	spans   [maxSpans]Span
}

// NewSpanTimer starts a ledger; its origin is now.
func NewSpanTimer() *SpanTimer {
	return &SpanTimer{t0: spanBase.Add(time.Since(spanBase))}
}

func (t *SpanTimer) mark() float64 { return time.Since(t.t0).Seconds() }

// Start opens a phase nested under the currently open one. The phase
// begins at the previous boundary — no clock is read, which is exact
// when phases are contiguous (the intended use) and off by the
// inter-call gap otherwise.
//
//dvfs:hotpath
func (t *SpanTimer) Start(name string) {
	if t == nil {
		return
	}
	t.startAt(name, t.last)
}

func (t *SpanTimer) startAt(name string, at float64) {
	if t.n >= maxSpans || t.depth >= maxSpanDepth {
		t.skipped++
		return
	}
	t.spans[t.n] = Span{Name: name, Depth: t.depth, StartSec: at, DurSec: -1}
	t.stack[t.depth] = int8(t.n)
	t.depth++
	t.n++
}

// End closes the innermost open phase at the current instant.
//
//dvfs:hotpath
func (t *SpanTimer) End() {
	if t == nil {
		return
	}
	t.endAt(t.mark())
}

func (t *SpanTimer) endAt(at float64) {
	if t.skipped > 0 {
		t.skipped--
		return
	}
	if t.depth == 0 {
		return
	}
	t.depth--
	i := t.stack[t.depth]
	t.spans[i].DurSec = at - t.spans[i].StartSec
	t.last = at
}

// Next closes the innermost open phase and opens a sibling at the same
// instant — one clock read covers both boundaries.
//
//dvfs:hotpath
func (t *SpanTimer) Next(name string) {
	if t == nil {
		return
	}
	at := t.mark()
	t.endAt(at)
	t.startAt(name, at)
}

// Finish closes any still-open phases at the last recorded boundary
// and returns the ledger plus its extent (the latest top-level end).
// The returned slice aliases the timer's storage; the timer must not
// be used again.
func (t *SpanTimer) Finish() ([]Span, float64) {
	if t == nil {
		return nil, 0
	}
	for t.depth > 0 {
		t.endAt(t.last)
	}
	if t.n == 0 {
		return nil, 0
	}
	total := 0.0
	for i := 0; i < t.n; i++ {
		if t.spans[i].Depth == 0 && t.spans[i].EndSec() > total {
			total = t.spans[i].EndSec()
		}
	}
	return t.spans[:t.n:t.n], total
}

// AppendOutcomeSpans extends a decision's ledger with the outcome
// phases the decision path cannot time itself: the DVFS transition and
// the job's execution. It is idempotent — existing top-level switch /
// exec spans are replaced — so a simulation merge can re-time the
// ledger with measured ground truth. Events without a ledger are left
// untouched (there is nothing to anchor the outcome to).
func AppendOutcomeSpans(e *DecisionEvent, switchSec, execSec float64) {
	if len(e.Spans) == 0 {
		return
	}
	spans := make([]Span, 0, len(e.Spans)+2)
	off := 0.0
	for _, s := range e.Spans {
		if s.Depth == 0 && (s.Name == PhaseSwitch || s.Name == PhaseExec) {
			continue
		}
		spans = append(spans, s)
		if s.Depth == 0 && s.EndSec() > off {
			off = s.EndSec()
		}
	}
	if switchSec > 0 {
		spans = append(spans, Span{Name: PhaseSwitch, StartSec: off, DurSec: switchSec})
		off += switchSec
	}
	if execSec >= 0 {
		spans = append(spans, Span{Name: PhaseExec, StartSec: off, DurSec: execSec})
		off += execSec
	}
	e.Spans = spans
	e.SpanTotalSec = off
}

// SpanDur returns the summed duration of every span named name in the
// ledger, at any depth.
func SpanDur(spans []Span, name string) float64 {
	total := 0.0
	for _, s := range spans {
		if s.Name == name {
			total += s.DurSec
		}
	}
	return total
}

// SpanSampler decides, per decision, whether to hand out a SpanTimer:
// every Nth decision gets one, the rest get nil (every SpanTimer
// method is nil-safe, so callers never branch). Head sampling bounds
// the capture cost — each boundary is a monotonic clock read, which
// §3.4's budget accounting must pay for — while keeping the ledger
// statistically representative. N ≤ 1 captures every decision (the
// simulator and test default; replay fidelity wants full ledgers).
type SpanSampler struct {
	every uint64
	n     atomic.Uint64
}

// NewSpanSampler builds a sampler capturing one in every decisions.
func NewSpanSampler(every int) *SpanSampler {
	if every < 1 {
		every = 1
	}
	return &SpanSampler{every: uint64(every)}
}

// Timer returns a fresh SpanTimer when this decision is sampled, nil
// otherwise. Safe for concurrent use.
func (s *SpanSampler) Timer() *SpanTimer {
	if s == nil {
		return nil
	}
	if s.every > 1 && (s.n.Add(1)-1)%s.every != 0 {
		return nil
	}
	return NewSpanTimer()
}

// PhaseStat is one phase's latency distribution across a decision log.
type PhaseStat struct {
	Name    string  `json:"name"`
	N       int     `json:"n"`
	MeanSec float64 `json:"mean_sec"`
	P50Sec  float64 `json:"p50_sec"`
	P95Sec  float64 `json:"p95_sec"`
	MaxSec  float64 `json:"max_sec"`
}

// phaseRank orders known phases the way a ledger reads: roots first,
// then decision sub-phases, then outcome phases. Unknown names sort
// after, alphabetically.
var phaseRank = map[string]int{
	PhaseDecide:    0,
	PhaseServe:     1,
	PhaseIngest:    2,
	PhaseLookup:    3,
	PhaseSliceEval: 4,
	PhasePredict:   5,
	PhaseSelect:    6,
	PhaseSwitch:    7,
	PhaseExec:      8,
}

// AnalyzePhases aggregates the span ledgers of a decision log into
// per-phase latency stats. Events without spans contribute nothing;
// the result is empty when no event carries a ledger.
func AnalyzePhases(events []DecisionEvent) []PhaseStat {
	durs := map[string][]float64{}
	for i := range events {
		for _, s := range events[i].Spans {
			durs[s.Name] = append(durs[s.Name], s.DurSec)
		}
	}
	if len(durs) == 0 {
		return nil
	}
	names := make([]string, 0, len(durs))
	for name := range durs {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		ri, iok := phaseRank[names[i]]
		rj, jok := phaseRank[names[j]]
		switch {
		case iok && jok:
			return ri < rj
		case iok != jok:
			return iok
		default:
			return names[i] < names[j]
		}
	})
	out := make([]PhaseStat, 0, len(names))
	for _, name := range names {
		xs := durs[name]
		sort.Float64s(xs)
		sum := 0.0
		for _, v := range xs {
			sum += v
		}
		out = append(out, PhaseStat{
			Name:    name,
			N:       len(xs),
			MeanSec: sum / float64(len(xs)),
			P50Sec:  quantileSorted(xs, 0.50),
			P95Sec:  quantileSorted(xs, 0.95),
			MaxSec:  xs[len(xs)-1],
		})
	}
	return out
}

// FormatDur renders a duration in seconds with a unit readable at the
// scale spans live at: microseconds below a millisecond, milliseconds
// below a second.
func FormatDur(sec float64) string {
	switch {
	case sec >= 1 || sec <= -1:
		return trimF(sec, "s")
	case sec >= 1e-3 || sec <= -1e-3:
		return trimF(sec*1e3, "ms")
	default:
		return trimF(sec*1e6, "us")
	}
}

// trimF formats v to three decimals with trailing zeros trimmed.
func trimF(v float64, unit string) string {
	s := fmt.Sprintf("%.3f", v)
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s + " " + unit
}
