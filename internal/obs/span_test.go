package obs

import (
	"math"
	"strings"
	"testing"
)

func TestSpanTimerNesting(t *testing.T) {
	st := NewSpanTimer()
	st.Start(PhaseDecide)
	st.Start(PhaseSliceEval)
	st.Next(PhasePredict)
	st.Next(PhaseSelect)
	st.End() // level_select
	st.End() // decide
	spans, total := st.Finish()

	want := []struct {
		name  string
		depth int
	}{
		{PhaseDecide, 0},
		{PhaseSliceEval, 1},
		{PhasePredict, 1},
		{PhaseSelect, 1},
	}
	if len(spans) != len(want) {
		t.Fatalf("ledger has %d spans, want %d: %+v", len(spans), len(want), spans)
	}
	for i, w := range want {
		if spans[i].Name != w.name || spans[i].Depth != w.depth {
			t.Errorf("span %d = %s@%d, want %s@%d", i, spans[i].Name, spans[i].Depth, w.name, w.depth)
		}
		if spans[i].DurSec < 0 {
			t.Errorf("span %d %s left open: dur %g", i, spans[i].Name, spans[i].DurSec)
		}
	}
	// The children are contiguous: each starts where the previous ended,
	// the first at the parent's start, the last ending at the parent's
	// end (decide was closed by the same boundary as level_select's End,
	// modulo one extra clock read — allow a generous tolerance).
	decide := spans[0]
	if decide.StartSec != 0 {
		t.Errorf("decide starts at %g, want 0", decide.StartSec)
	}
	childSum := 0.0
	prevEnd := 0.0
	for _, s := range spans[1:] {
		if math.Abs(s.StartSec-prevEnd) > 1e-12 {
			t.Errorf("%s starts at %g, want contiguous %g", s.Name, s.StartSec, prevEnd)
		}
		prevEnd = s.EndSec()
		childSum += s.DurSec
	}
	if childSum > decide.DurSec+1e-12 {
		t.Errorf("children sum %g > parent %g", childSum, decide.DurSec)
	}
	if total < decide.DurSec || math.Abs(total-decide.EndSec()) > 1e-12 {
		t.Errorf("total %g, want decide end %g", total, decide.EndSec())
	}
}

func TestSpanTimerFinishClosesOpenSpans(t *testing.T) {
	st := NewSpanTimer()
	st.Start(PhaseServe)
	st.Start(PhaseIngest)
	st.End() // ingest closed, records a boundary
	st.Start(PhasePredict)
	// serve and model_predict left open: Finish must close both at the
	// last recorded boundary, never returning negative durations.
	spans, total := st.Finish()
	if len(spans) != 3 {
		t.Fatalf("ledger has %d spans: %+v", len(spans), spans)
	}
	for _, s := range spans {
		if s.DurSec < 0 {
			t.Errorf("span %s still open after Finish: %+v", s.Name, s)
		}
	}
	if total != spans[0].EndSec() {
		t.Errorf("total %g != root end %g", total, spans[0].EndSec())
	}
}

func TestSpanTimerOverflow(t *testing.T) {
	st := NewSpanTimer()
	// Exceed both the span budget and the depth budget; the timer must
	// degrade by skipping, not corrupt the ledger or panic, and Ends
	// must pair with the skipped Starts.
	for i := 0; i < maxSpans+3; i++ {
		st.Start(PhaseDecide)
	}
	for i := 0; i < maxSpans+3; i++ {
		st.End()
	}
	spans, _ := st.Finish()
	if len(spans) == 0 || len(spans) > maxSpans {
		t.Fatalf("overflowed ledger has %d spans", len(spans))
	}
	for _, s := range spans {
		if s.DurSec < 0 {
			t.Errorf("span left open after paired Ends: %+v", s)
		}
		if s.Depth >= maxSpanDepth {
			t.Errorf("span beyond depth budget recorded: %+v", s)
		}
	}
}

func TestSpanTimerNilSafe(t *testing.T) {
	var st *SpanTimer
	st.Start(PhaseDecide)
	st.Next(PhasePredict)
	st.End()
	if spans, total := st.Finish(); spans != nil || total != 0 {
		t.Errorf("nil timer Finish = %v, %g", spans, total)
	}
}

func TestSpanSampler(t *testing.T) {
	s := NewSpanSampler(4)
	got := 0
	for i := 0; i < 16; i++ {
		if s.Timer() != nil {
			got++
		}
	}
	if got != 4 {
		t.Errorf("1-in-4 sampler handed out %d/16 timers", got)
	}
	if NewSpanSampler(1).Timer() == nil {
		t.Error("every=1 sampler returned nil")
	}
	if NewSpanSampler(0).Timer() == nil {
		t.Error("every=0 sampler (clamped to 1) returned nil")
	}
	var nilS *SpanSampler
	if nilS.Timer() != nil {
		t.Error("nil sampler returned a timer")
	}
}

func TestAppendOutcomeSpansIdempotent(t *testing.T) {
	e := DecisionEvent{Spans: []Span{
		{Name: PhaseDecide, StartSec: 0, DurSec: 0.001},
		{Name: PhasePredict, Depth: 1, StartSec: 0.0002, DurSec: 0.0005},
	}}
	AppendOutcomeSpans(&e, 0.0001, 0.020)
	first := append([]Span(nil), e.Spans...)
	if got := SpanDur(e.Spans, PhaseSwitch); got != 0.0001 {
		t.Errorf("switch span %g, want 0.0001", got)
	}
	if got := SpanDur(e.Spans, PhaseExec); got != 0.020 {
		t.Errorf("exec span %g, want 0.020", got)
	}
	if want := 0.001 + 0.0001 + 0.020; math.Abs(e.SpanTotalSec-want) > 1e-12 {
		t.Errorf("span total %g, want %g", e.SpanTotalSec, want)
	}

	// Re-timing with measured ground truth replaces, not duplicates.
	AppendOutcomeSpans(&e, 0.0002, 0.025)
	if len(e.Spans) != len(first) {
		t.Fatalf("re-append grew ledger to %d spans: %+v", len(e.Spans), e.Spans)
	}
	if got := SpanDur(e.Spans, PhaseExec); got != 0.025 {
		t.Errorf("re-timed exec span %g, want 0.025", got)
	}
	if want := 0.001 + 0.0002 + 0.025; math.Abs(e.SpanTotalSec-want) > 1e-12 {
		t.Errorf("re-timed span total %g, want %g", e.SpanTotalSec, want)
	}

	// No ledger → nothing to anchor outcomes to: stays empty.
	var bare DecisionEvent
	AppendOutcomeSpans(&bare, 0.001, 0.01)
	if bare.Spans != nil || bare.SpanTotalSec != 0 {
		t.Errorf("outcome spans appended to ledger-less event: %+v", bare)
	}
}

func TestAnalyzePhases(t *testing.T) {
	events := []DecisionEvent{
		{Spans: []Span{
			{Name: PhaseDecide, DurSec: 0.002},
			{Name: PhasePredict, Depth: 1, DurSec: 0.001},
			{Name: PhaseExec, StartSec: 0.002, DurSec: 0.03},
		}},
		{Spans: []Span{
			{Name: PhaseDecide, DurSec: 0.004},
			{Name: PhasePredict, Depth: 1, DurSec: 0.003},
		}},
		{}, // no ledger: contributes nothing
	}
	stats := AnalyzePhases(events)
	if len(stats) != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	// Canonical order: decide before model_predict before job_exec.
	if stats[0].Name != PhaseDecide || stats[1].Name != PhasePredict || stats[2].Name != PhaseExec {
		t.Fatalf("phase order = %s, %s, %s", stats[0].Name, stats[1].Name, stats[2].Name)
	}
	if d := stats[0]; d.N != 2 || math.Abs(d.MeanSec-0.003) > 1e-12 || d.MaxSec != 0.004 {
		t.Errorf("decide stats = %+v", d)
	}
	if e := stats[2]; e.N != 1 || e.MaxSec != 0.03 {
		t.Errorf("exec stats = %+v", e)
	}
	if AnalyzePhases(nil) != nil {
		t.Error("AnalyzePhases(nil) != nil")
	}
}

func TestFormatDur(t *testing.T) {
	cases := []struct {
		sec  float64
		want string
	}{
		{2.5, "2.5 s"},
		{0.0312, "31.2 ms"},
		{0.000042, "42 us"},
		{0, "0 us"},
	}
	for _, c := range cases {
		if got := FormatDur(c.sec); got != c.want {
			t.Errorf("FormatDur(%g) = %q, want %q", c.sec, got, c.want)
		}
	}
}

func TestReportRendersPhases(t *testing.T) {
	events := []DecisionEvent{{
		Done: true,
		Spans: []Span{
			{Name: PhaseDecide, DurSec: 0.002},
			{Name: PhaseExec, StartSec: 0.002, DurSec: 0.03},
		},
	}}
	r := Analyze(events)
	if r.SpanEvents != 1 || len(r.Phases) != 2 {
		t.Fatalf("report spans: events=%d phases=%+v", r.SpanEvents, r.Phases)
	}
	var b strings.Builder
	r.WriteText(&b)
	if !strings.Contains(b.String(), "phases      measured spans on 1 events") ||
		!strings.Contains(b.String(), PhaseExec) {
		t.Errorf("text report missing phase block:\n%s", b.String())
	}
}
