package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// The live event stream speaks Server-Sent Events (SSE): one
// `event: decision` block per DecisionEvent, `id:` carrying the
// sequence number, `data:` the same JSON object the JSONL sinks write.
// SSE needs nothing beyond HTTP/1.1 — curl tails it, EventSource
// consumes it in a browser, and dvfstrace -follow decodes it with the
// reader below.

// WriteSSE writes one event in decision-stream SSE framing.
func WriteSSE(w io.Writer, e *DecisionEvent) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: decision\ndata: %s\n\n", e.Seq, data)
	return err
}

// ErrStopFollow, returned by a ReadSSE/Follow callback, stops the
// stream without error.
var ErrStopFollow = errors.New("obs: stop following stream")

// ReadSSE decodes a decision SSE stream, invoking fn for every event
// until the stream ends, fn returns an error, or a data payload fails
// to parse. ErrStopFollow from fn is a clean stop (nil is returned).
// Comment lines (keepalives) and unknown fields are ignored.
func ReadSSE(r io.Reader, fn func(DecisionEvent) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var data []byte
	flush := func() error {
		if len(data) == 0 {
			return nil
		}
		var e DecisionEvent
		if err := json.Unmarshal(data, &e); err != nil {
			return fmt.Errorf("obs: parsing stream event: %w", err)
		}
		data = nil
		return fn(e)
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				if errors.Is(err, ErrStopFollow) {
					return nil
				}
				return err
			}
		case strings.HasPrefix(line, "data:"):
			if len(data) > 0 {
				data = append(data, '\n')
			}
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")...)
		default:
			// id:, event:, retry:, and ": comment" keepalives carry no
			// payload the decoder needs.
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if err := flush(); err != nil && !errors.Is(err, ErrStopFollow) {
		return err
	}
	return nil
}

// FollowOptions configures Follow.
type FollowOptions struct {
	// Filter is sent to the server as query parameters: workload and
	// since filter the live stream, last replays that many ring-backlog
	// events before live ones.
	Filter EventFilter
	// Max stops the follow (cleanly) after this many events; 0 follows
	// until the stream closes or the context is cancelled.
	Max int
	// Client overrides the HTTP client; nil → http.DefaultClient.
	Client *http.Client
}

// Follow connects to a dvfsd /v1/events URL and invokes fn for every
// decision event until the stream ends, opts.Max events have arrived,
// fn returns ErrStopFollow, or ctx is cancelled (a clean stop, not an
// error). The URL should name the events endpoint itself; filter
// parameters are appended.
func Follow(ctx context.Context, url string, opts FollowOptions, fn func(DecisionEvent) error) error {
	if q := opts.Filter.Query().Encode(); q != "" {
		sep := "?"
		if strings.Contains(url, "?") {
			sep = "&"
		}
		url += sep + q
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	client := opts.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil
		}
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("obs: %s: HTTP %d: %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	n := 0
	err = ReadSSE(resp.Body, func(e DecisionEvent) error {
		if err := fn(e); err != nil {
			return err
		}
		n++
		if opts.Max > 0 && n >= opts.Max {
			return ErrStopFollow
		}
		return nil
	})
	if err != nil && ctx.Err() != nil {
		return nil // cancelled mid-read: a clean stop
	}
	return err
}
