package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// The live event stream speaks Server-Sent Events (SSE): one
// `event: decision` block per DecisionEvent, `id:` carrying the
// sequence number, `data:` the same JSON object the JSONL sinks write.
// SSE needs nothing beyond HTTP/1.1 — curl tails it, EventSource
// consumes it in a browser, and dvfstrace -follow decodes it with the
// reader below.

// WriteSSE writes one event in decision-stream SSE framing.
func WriteSSE(w io.Writer, e *DecisionEvent) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: decision\ndata: %s\n\n", e.Seq, data)
	return err
}

// ErrStopFollow, returned by a ReadSSE/Follow callback, stops the
// stream without error.
var ErrStopFollow = errors.New("obs: stop following stream")

// ReadSSE decodes a decision SSE stream, invoking fn for every event
// until the stream ends, fn returns an error, or a data payload fails
// to parse. ErrStopFollow from fn is a clean stop (nil is returned).
// Comment lines (keepalives) and unknown fields are ignored.
func ReadSSE(r io.Reader, fn func(DecisionEvent) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var data []byte
	flush := func() error {
		if len(data) == 0 {
			return nil
		}
		var e DecisionEvent
		if err := json.Unmarshal(data, &e); err != nil {
			return fmt.Errorf("obs: parsing stream event: %w", err)
		}
		data = nil
		return fn(e)
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				if errors.Is(err, ErrStopFollow) {
					return nil
				}
				return err
			}
		case strings.HasPrefix(line, "data:"):
			if len(data) > 0 {
				data = append(data, '\n')
			}
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")...)
		default:
			// id:, event:, retry:, and ": comment" keepalives carry no
			// payload the decoder needs.
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if err := flush(); err != nil && !errors.Is(err, ErrStopFollow) {
		return err
	}
	return nil
}

// FollowOptions configures Follow.
type FollowOptions struct {
	// Filter is sent to the server as query parameters: workload and
	// since filter the live stream, last replays that many ring-backlog
	// events before live ones.
	Filter EventFilter
	// Max stops the follow (cleanly) after this many events; 0 follows
	// until the stream closes or the context is cancelled.
	Max int
	// Client overrides the HTTP client; nil → http.DefaultClient.
	Client *http.Client
	// Reconnect re-dials a dropped stream instead of returning,
	// resuming from the last seen sequence number via the standard SSE
	// Last-Event-ID header; events replayed across the reconnect are
	// deduplicated, so the callback sees each decision once.
	Reconnect bool
	// MaxRetries bounds consecutive failed connection attempts; a
	// stream that connects successfully resets the count. Zero → 5,
	// negative → retry forever. Ignored unless Reconnect is set.
	MaxRetries int
	// BackoffBase is the first reconnect delay, doubled per failed
	// attempt with full jitter; zero → 500ms.
	BackoffBase time.Duration
	// BackoffMax caps the reconnect delay; zero → 15s.
	BackoffMax time.Duration
	// OnRetry, when non-nil, observes each reconnect attempt before its
	// backoff sleep: the attempt number (1-based, resetting on
	// success), the last sequence seen, the error that dropped the
	// stream (nil when the server closed it cleanly), and the delay
	// about to be slept.
	OnRetry func(attempt int, lastSeq uint64, err error, delay time.Duration)
}

// withQuery appends f's query parameters to url.
func withQuery(url string, f EventFilter) string {
	if q := f.Query().Encode(); q != "" {
		sep := "?"
		if strings.Contains(url, "?") {
			sep = "&"
		}
		url += sep + q
	}
	return url
}

// Follow connects to a dvfsd /v1/events URL and invokes fn for every
// decision event until the stream ends, opts.Max events have arrived,
// fn returns ErrStopFollow, or ctx is cancelled (a clean stop, not an
// error). The URL should name the events endpoint itself; filter
// parameters are appended. With opts.Reconnect, a dropped stream is
// re-dialed with jittered exponential backoff, resuming from the last
// delivered sequence number; only consecutive connection failures past
// opts.MaxRetries end the follow.
func Follow(ctx context.Context, url string, opts FollowOptions, fn func(DecisionEvent) error) error {
	client := opts.Client
	if client == nil {
		client = http.DefaultClient
	}
	firstURL := withQuery(url, opts.Filter)
	// A resumed connection replays from Last-Event-ID, so the ?last=
	// backlog request must not be repeated.
	resumeFilter := opts.Filter
	resumeFilter.Last = 0
	resumeURL := withQuery(url, resumeFilter)

	var (
		lastSeq uint64
		gotAny  bool
		n       int
		fnErr   error
	)
	deliver := func(e DecisionEvent) error {
		if gotAny && e.Seq <= lastSeq {
			return nil // replayed across a reconnect
		}
		if err := fn(e); err != nil {
			fnErr = err
			return err
		}
		gotAny = true
		lastSeq = e.Seq
		n++
		if opts.Max > 0 && n >= opts.Max {
			fnErr = ErrStopFollow
			return ErrStopFollow
		}
		return nil
	}

	maxRetries := opts.MaxRetries
	if maxRetries == 0 {
		maxRetries = 5
	}
	base := opts.BackoffBase
	if base <= 0 {
		base = 500 * time.Millisecond
	}
	maxDelay := opts.BackoffMax
	if maxDelay <= 0 {
		maxDelay = 15 * time.Second
	}

	attempt := 0
	delay := base
	for {
		target := firstURL
		if gotAny {
			target = resumeURL
		}
		before := n
		err := followOnce(ctx, client, target, lastSeq, gotAny, deliver)
		switch {
		case ctx.Err() != nil:
			return nil // cancelled: a clean stop
		case fnErr != nil:
			if errors.Is(fnErr, ErrStopFollow) {
				return nil
			}
			return fnErr // the callback's error, not the connection's
		case !opts.Reconnect:
			return err
		}
		if n > before {
			// The stream made progress: reset the reconnect budget so
			// only consecutive dead connections exhaust it.
			attempt, delay = 0, base
		}
		attempt++
		if maxRetries >= 0 && attempt > maxRetries {
			if err == nil {
				err = fmt.Errorf("obs: %s: stream closed %d times without progress", url, attempt)
			}
			return err
		}
		// Full jitter on the exponential: sleep in [delay/2, delay].
		d := delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
		if opts.OnRetry != nil {
			opts.OnRetry(attempt, lastSeq, err, d)
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(d):
		}
		delay *= 2
		if delay > maxDelay {
			delay = maxDelay
		}
	}
}

// followOnce dials the stream once and decodes it until it ends.
func followOnce(ctx context.Context, client *http.Client, url string, lastSeq uint64, resume bool, fn func(DecisionEvent) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	if resume {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(lastSeq, 10))
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("obs: %s: HTTP %d: %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return ReadSSE(resp.Body, fn)
}
