package obs

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWriteSSEGolden pins the wire framing: id carries the sequence
// number, the event name is "decision", and the payload is the same
// JSON the JSONL sinks write.
func TestWriteSSEGolden(t *testing.T) {
	var b strings.Builder
	e := DecisionEvent{Seq: 7, Workload: "sha", Job: 3, Level: 2,
		Spans: []Span{{Name: PhaseServe, StartSec: 0, DurSec: 0.001}}}
	if err := WriteSSE(&b, &e); err != nil {
		t.Fatal(err)
	}
	want := "id: 7\nevent: decision\ndata: " +
		`{"seq":7,"workload":"sha","job":3,"time_sec":0,"predicted":false,"level":2,` +
		`"done":false,"spans":[{"name":"serve","start_sec":0,"dur_sec":0.001}]}` + "\n\n"
	if b.String() != want {
		t.Errorf("SSE framing mismatch:\n--- got ---\n%q\n--- want ---\n%q", b.String(), want)
	}
}

func TestSSERoundTrip(t *testing.T) {
	var b strings.Builder
	events := []DecisionEvent{
		{Seq: 0, Workload: "ldecode", Job: 0, Done: true, ActualExecSec: 0.01,
			Spans: []Span{{Name: PhaseDecide, DurSec: 0.001}, {Name: PhasePredict, Depth: 1, DurSec: 0.0004}}},
		{Seq: 1, Workload: "sha", Job: 1, Missed: true},
	}
	for i := range events {
		if err := WriteSSE(&b, &events[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Keepalive comments and retry hints must be ignored by the reader.
	stream := ": keepalive\n\nretry: 1000\n\n" + b.String()
	var got []DecisionEvent
	if err := ReadSSE(strings.NewReader(stream), func(e DecisionEvent) error {
		got = append(got, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d events, want 2", len(got))
	}
	if got[0].Workload != "ldecode" || len(got[0].Spans) != 2 || got[0].Spans[1].Depth != 1 {
		t.Errorf("event 0 = %+v", got[0])
	}
	if got[1].Seq != 1 || !got[1].Missed {
		t.Errorf("event 1 = %+v", got[1])
	}
}

func TestReadSSEStopFollow(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 5; i++ {
		WriteSSE(&b, &DecisionEvent{Seq: uint64(i)})
	}
	n := 0
	err := ReadSSE(strings.NewReader(b.String()), func(e DecisionEvent) error {
		n++
		if n == 2 {
			return ErrStopFollow
		}
		return nil
	})
	if err != nil || n != 2 {
		t.Errorf("stop-follow: err=%v n=%d", err, n)
	}
	// A non-sentinel error propagates.
	boom := errors.New("boom")
	err = ReadSSE(strings.NewReader(b.String()), func(DecisionEvent) error { return boom })
	if !errors.Is(err, boom) {
		t.Errorf("callback error not propagated: %v", err)
	}
	// Malformed payloads fail loudly.
	err = ReadSSE(strings.NewReader("data: not json\n\n"), func(DecisionEvent) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "parsing stream event") {
		t.Errorf("malformed payload: err=%v", err)
	}
}

// TestFollow exercises the HTTP client end: filter parameters reach the
// server as query parameters, Max stops cleanly, and a non-200 response
// is an error.
func TestFollow(t *testing.T) {
	var gotQuery string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotQuery = r.URL.RawQuery
		w.Header().Set("Content-Type", "text/event-stream")
		for i := 0; i < 10; i++ {
			WriteSSE(w, &DecisionEvent{Seq: uint64(i), Workload: "sha"})
		}
	}))
	defer srv.Close()

	var seqs []uint64
	err := Follow(context.Background(), srv.URL+"/v1/events",
		FollowOptions{Filter: EventFilter{Workload: "sha", Last: 5}, Max: 3},
		func(e DecisionEvent) error {
			seqs = append(seqs, e.Seq)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 || seqs[2] != 2 {
		t.Errorf("seqs = %v, want first 3", seqs)
	}
	if !strings.Contains(gotQuery, "workload=sha") || !strings.Contains(gotQuery, "last=5") {
		t.Errorf("filter query not sent: %q", gotQuery)
	}

	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no stream here", http.StatusNotFound)
	}))
	defer bad.Close()
	err = Follow(context.Background(), bad.URL, FollowOptions{}, func(DecisionEvent) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "HTTP 404") {
		t.Errorf("non-200 not surfaced: %v", err)
	}
}

// TestFollowCancel checks context cancellation mid-stream is a clean
// stop, not an error.
func TestFollowCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		WriteSSE(w, &DecisionEvent{Seq: 0})
		w.(http.Flusher).Flush()
		<-r.Context().Done()
	}))
	defer srv.Close()
	err := Follow(ctx, srv.URL, FollowOptions{}, func(e DecisionEvent) error {
		cancel() // first event arrives, then tear the stream down
		return nil
	})
	if err != nil {
		t.Errorf("cancelled follow returned %v", err)
	}
}

// TestFollowReconnectResumes drops the stream after every few events
// and checks the follower re-dials with Last-Event-ID, the server-side
// resume replays only newer events, and the callback sees each
// sequence exactly once.
func TestFollowReconnectResumes(t *testing.T) {
	const total = 9
	var mu sync.Mutex
	var resumeIDs []string
	conns := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		conns++
		id := r.Header.Get("Last-Event-ID")
		resumeIDs = append(resumeIDs, id)
		mu.Unlock()
		after := uint64(0)
		if id != "" {
			after, _ = strconv.ParseUint(id, 10, 64)
		}
		w.Header().Set("Content-Type", "text/event-stream")
		sent := 0
		for seq := after + 1; seq <= total; seq++ {
			// Overlap one event below the resume point to prove the
			// client-side dedupe as well.
			if seq == after+1 && after > 1 {
				WriteSSE(w, &DecisionEvent{Seq: after, Workload: "sha"})
			}
			WriteSSE(w, &DecisionEvent{Seq: seq, Workload: "sha"})
			sent++
			if sent == 3 {
				return // drop the connection mid-stream
			}
		}
	}))
	defer srv.Close()

	var seqs []uint64
	err := Follow(context.Background(), srv.URL, FollowOptions{
		Reconnect:   true,
		Max:         total,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	}, func(e DecisionEvent) error {
		seqs = append(seqs, e.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != total {
		t.Fatalf("seqs = %v, want 1..%d exactly once", seqs, total)
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("seqs = %v: dropped or doubled at %d", seqs, i)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if conns != 3 {
		t.Fatalf("connections = %d, want 3", conns)
	}
	if resumeIDs[0] != "" || resumeIDs[1] != "3" || resumeIDs[2] != "6" {
		t.Fatalf("Last-Event-ID per connection = %q", resumeIDs)
	}
}

// TestFollowReconnectGivesUp checks the retry budget: consecutive
// failed dials surface the last error after MaxRetries attempts.
func TestFollowReconnectGivesUp(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	retries := 0
	err := Follow(context.Background(), srv.URL, FollowOptions{
		Reconnect:   true,
		MaxRetries:  2,
		BackoffBase: time.Millisecond,
		OnRetry:     func(int, uint64, error, time.Duration) { retries++ },
	}, func(DecisionEvent) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "HTTP 503") {
		t.Fatalf("exhausted retries returned %v", err)
	}
	if retries != 2 {
		t.Fatalf("OnRetry ran %d times, want 2", retries)
	}
}

// TestFollowNoReconnectByDefault pins the single-shot default: a
// dropped stream returns instead of re-dialing.
func TestFollowNoReconnectByDefault(t *testing.T) {
	conns := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conns++
		w.Header().Set("Content-Type", "text/event-stream")
		WriteSSE(w, &DecisionEvent{Seq: 1})
	}))
	defer srv.Close()
	got := 0
	if err := Follow(context.Background(), srv.URL, FollowOptions{},
		func(DecisionEvent) error { got++; return nil }); err != nil {
		t.Fatal(err)
	}
	if conns != 1 || got != 1 {
		t.Fatalf("conns=%d events=%d, want 1/1", conns, got)
	}
}
