package obs

import "sync/atomic"

// TracerOptions configures NewTracer. The zero value is usable: a
// 4096-event ring, no sinks, no drift monitoring.
type TracerOptions struct {
	// RingSize bounds the in-memory event ring; zero → 4096.
	RingSize int
	// Sinks receive every emitted event in addition to the ring.
	Sinks []Sink
	// Drift, when non-nil, observes every completed prediction's
	// residual.
	Drift *DriftMonitor
	// SLO, when non-nil, observes every completed job's deadline
	// outcome for burn-rate tracking.
	SLO *SLOTracker
	// OnEmit, when non-nil, runs after each emission — the hook a
	// metrics registry uses to count events without coupling the
	// tracer to it.
	OnEmit func(e *DecisionEvent)
}

// Tracer is the decision-tracing front end: it assigns sequence
// numbers, retains recent events in a lock-free ring (served by dvfsd's
// GET /debug/decisions), fans events out to sinks, and feeds the drift
// monitor. Emit and Pending.End are safe for concurrent use.
type Tracer struct {
	ring    *Ring
	sinks   []Sink
	drift   *DriftMonitor
	slo     *SLOTracker
	onEmit  func(e *DecisionEvent)
	emitted atomic.Uint64
}

// NewTracer builds a tracer.
func NewTracer(opts TracerOptions) *Tracer {
	if opts.RingSize <= 0 {
		opts.RingSize = 4096
	}
	return &Tracer{
		ring:   NewRing(opts.RingSize),
		sinks:  opts.Sinks,
		drift:  opts.Drift,
		slo:    opts.SLO,
		onEmit: opts.OnEmit,
	}
}

// Emit publishes a one-shot event (a decision whose outcome will never
// be reported, e.g. a dvfsd predict request, where the job runs on the
// client).
func (t *Tracer) Emit(e DecisionEvent) { t.publish(&e) }

// Pending is a decision awaiting its job's completion. E is the event
// as begun; the completer owns it until End.
type Pending struct {
	t *Tracer
	// E is the in-flight event. Callers may read decision fields (for
	// example the effective budget) to derive completion inputs, and
	// must not touch it after End.
	E DecisionEvent
}

// Begin stages a decision whose outcome will be reported via End —
// nothing is published yet. Controllers call Begin at JobStart and End
// at JobEnd, so every published event carries its residual.
func (t *Tracer) Begin(e DecisionEvent) *Pending {
	return &Pending{t: t, E: e}
}

// End completes the decision with the job's measured execution time,
// computes the signed residual (positive = under-prediction), and
// publishes the event.
func (p *Pending) End(actualExecSec float64, missed bool) {
	p.E.Done = true
	p.E.ActualExecSec = actualExecSec
	p.E.Missed = missed
	if p.E.Predicted {
		p.E.ResidualSec = actualExecSec - p.E.PredictedExecSec
	}
	p.t.publish(&p.E)
}

// publish fans one event out to the ring, the sinks, and the
// monitors. It runs inline with the controller's decision, so it must
// never wait on a consumer.
//
//dvfs:noblock
func (t *Tracer) publish(e *DecisionEvent) {
	e.Seq = t.ring.Put(*e)
	t.emitted.Add(1)
	for _, s := range t.sinks {
		//dvfs:allow-block Sink contract: Emit implementations shed load instead of waiting (Broadcaster is checked directly; file sinks are opt-in offline tooling)
		s.Emit(e)
	}
	if t.drift != nil && e.Done && e.Predicted {
		//dvfs:allow-block drift window update under a short private mutex; no I/O or channel ops inside
		t.drift.Observe(e.Workload, e.ResidualSec)
	}
	if t.slo != nil && e.Done {
		//dvfs:allow-block burn-rate window update under a short private mutex; no I/O or channel ops inside
		t.slo.Observe(e.Workload, e.Missed)
	}
	if t.onEmit != nil {
		//dvfs:allow-block registry hook: dvfsd installs an atomic counter bump here
		t.onEmit(e)
	}
}

// Snapshot returns up to n recent events, oldest first (n ≤ 0 means
// the whole ring).
func (t *Tracer) Snapshot(n int) []DecisionEvent { return t.ring.Snapshot(n) }

// Emitted returns the total number of events published.
func (t *Tracer) Emitted() uint64 { return t.emitted.Load() }

// Drift returns the attached drift monitor (nil when none).
func (t *Tracer) Drift() *DriftMonitor { return t.drift }

// SLO returns the attached SLO tracker (nil when none).
func (t *Tracer) SLO() *SLOTracker { return t.slo }

// Dropped returns how many events the ring has overwritten.
func (t *Tracer) Dropped() uint64 { return t.ring.Dropped() }

// Close closes every sink and returns the first error.
func (t *Tracer) Close() error {
	var first error
	for _, s := range t.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
