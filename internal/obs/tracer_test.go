package obs

import (
	"flag"
	"io"
	"strings"
	"sync"
	"testing"
)

func TestTracerBeginEndComputesResidual(t *testing.T) {
	var mem MemorySink
	drift := NewDriftMonitor(DriftConfig{Window: 16, MinSamples: 4})
	tr := NewTracer(TracerOptions{RingSize: 16, Sinks: []Sink{&mem}, Drift: drift})

	p := tr.Begin(DecisionEvent{
		Workload: "ldecode", Governor: "prediction", Job: 3,
		Predicted: true, PredictedExecSec: 0.020, EffBudgetSec: 0.049,
	})
	p.End(0.025, false)

	events := mem.Events()
	if len(events) != 1 {
		t.Fatalf("sink saw %d events", len(events))
	}
	e := events[0]
	if !e.Done || e.ActualExecSec != 0.025 {
		t.Errorf("completion fields wrong: %+v", e)
	}
	if diff := e.ResidualSec - 0.005; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("residual = %g, want 0.005", e.ResidualSec)
	}
	if !e.UnderPredicted() {
		t.Error("positive residual should count as under-prediction")
	}
	if snap := tr.Snapshot(0); len(snap) != 1 || snap[0].Seq != e.Seq {
		t.Errorf("ring snapshot = %+v", snap)
	}
	if r := drift.UnderRate("ldecode"); r != 1 {
		t.Errorf("drift monitor under rate = %g, want 1", r)
	}

	// One-shot emission (the serving path): published immediately,
	// never completed, no drift feed.
	tr.Emit(DecisionEvent{Workload: "sha", Predicted: true, PredictedExecSec: 0.1})
	if tr.Emitted() != 2 {
		t.Errorf("emitted = %d, want 2", tr.Emitted())
	}
	if got := drift.UnderRate("sha"); got == got { // !NaN
		t.Errorf("incomplete event fed the drift monitor: %g", got)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(TracerOptions{RingSize: 128, Sinks: []Sink{&MemorySink{}}})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				p := tr.Begin(DecisionEvent{Workload: "sha", Job: w*250 + i, Predicted: true})
				p.End(0.01, false)
			}
		}(w)
	}
	wg.Wait()
	if tr.Emitted() != 2000 {
		t.Fatalf("emitted = %d", tr.Emitted())
	}
}

func TestLogFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	lf := RegisterLogFlags(fs)
	if err := fs.Parse([]string{"-log-level", "debug", "-log-format", "json"}); err != nil {
		t.Fatal(err)
	}
	if _, err := lf.Logger(io.Discard); err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}

	fs2 := flag.NewFlagSet("x", flag.ContinueOnError)
	lf2 := RegisterLogFlags(fs2)
	if err := fs2.Parse([]string{"-log-level", "loud"}); err != nil {
		t.Fatal(err)
	}
	if _, err := lf2.Logger(io.Discard); err == nil || !strings.Contains(err.Error(), "unknown log level") {
		t.Fatalf("bad level accepted: %v", err)
	}
	fs3 := flag.NewFlagSet("x", flag.ContinueOnError)
	lf3 := RegisterLogFlags(fs3)
	if err := fs3.Parse([]string{"-log-format", "yaml"}); err != nil {
		t.Fatal(err)
	}
	if _, err := lf3.Logger(io.Discard); err == nil || !strings.Contains(err.Error(), "unknown log format") {
		t.Fatalf("bad format accepted: %v", err)
	}
}

// BenchmarkTracerEmit is the budget-accounting guard: §3.4 subtracts
// the predictor's cost from every job's budget, so instrumentation on
// the decision path must stay well under a microsecond per event.
// `make obs-bench` asserts < 1000 ns/op.
func BenchmarkTracerEmit(b *testing.B) {
	tr := NewTracer(TracerOptions{
		RingSize: 4096,
		Drift:    NewDriftMonitor(DriftConfig{}),
	})
	e := DecisionEvent{
		Workload: "ldecode", Governor: "prediction", Predicted: true,
		TFminSec: 0.04, TFmaxSec: 0.01, PredictedExecSec: 0.02,
		Level: 3, BudgetSec: 0.05, EffBudgetSec: 0.049, PredictorSec: 0.001,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Job = i
		p := tr.Begin(e)
		p.End(0.021, false)
	}
}

// benchSpans runs the decision-path emit loop with the span ledger the
// in-process controller records: a full capture costs four monotonic
// clock reads (≈40–70 ns each on commodity hardware) on top of the
// bare emit, so `make obs-bench` gates the sampled path (every-16) to
// stay within 20% of BenchmarkTracerEmit while the full path is gated
// by the same absolute < 1000 ns/op §3.4 budget bound.
func benchSpans(b *testing.B, every int) {
	tr := NewTracer(TracerOptions{
		RingSize: 4096,
		Drift:    NewDriftMonitor(DriftConfig{}),
	})
	sampler := NewSpanSampler(every)
	e := DecisionEvent{
		Workload: "ldecode", Governor: "prediction", Predicted: true,
		TFminSec: 0.04, TFmaxSec: 0.01, PredictedExecSec: 0.02,
		Level: 3, BudgetSec: 0.05, EffBudgetSec: 0.049, PredictorSec: 0.001,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := sampler.Timer()
		st.Start(PhaseDecide)
		st.Start(PhaseSliceEval)
		st.Next(PhasePredict)
		st.Next(PhaseSelect)
		st.End()
		st.End()
		e.Job = i
		e.Spans, e.SpanTotalSec = st.Finish()
		p := tr.Begin(e)
		p.End(0.021, false)
	}
}

// BenchmarkTracerEmitSpans measures full span capture on every event.
func BenchmarkTracerEmitSpans(b *testing.B) { benchSpans(b, 1) }

// BenchmarkTracerEmitSpansSampled measures the amortized cost at the
// 1-in-16 head-sampling rate an overhead-sensitive deployment would
// run (`dvfsd -span-every 16`).
func BenchmarkTracerEmitSpansSampled(b *testing.B) { benchSpans(b, 16) }
