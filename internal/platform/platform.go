// Package platform models the hardware substrate the paper measures
// on: the ODROID-XU3 development board's Cortex-A7 cluster with
// discrete DVFS levels, an analytic power model, a DVFS switch-latency
// model (with the microbenchmark that builds the 95th-percentile
// switch-time table of Fig 11), and the board's 213 Hz power sensor.
//
// The paper's controller never touches hardware directly — it observes
// discrete frequency levels, a time-scaling law, switch latencies, and
// an energy integral. This package supplies all four from an analytic
// model so the identical control path runs on any machine.
package platform

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Level is one DVFS operating point. On a heterogeneous platform
// (§3.5's "other performance-energy trade-off mechanisms, such as
// heterogeneous cores") a level also identifies which core cluster it
// runs on, with per-cluster performance and power scaling.
type Level struct {
	// Index is the level's position in Platform.Levels (0 = slowest
	// by effective frequency).
	Index int
	// FreqHz is the clock frequency in Hz.
	FreqHz float64
	// Volt is the supply voltage in volts.
	Volt float64
	// PerfScale multiplies the platform's CPIScale on this level
	// (a wider core needs fewer cycles per work unit). Zero means 1.
	PerfScale float64
	// CdynScale and LeakScale multiply the platform's dynamic and
	// leakage power coefficients on this level. Zero means 1.
	CdynScale, LeakScale float64
	// Cluster labels the core cluster ("A7", "A15"); empty on
	// homogeneous platforms.
	Cluster string
}

// perf returns the level's performance scale with the 1.0 default.
func (l Level) perf() float64 {
	if l.PerfScale == 0 {
		return 1
	}
	return l.PerfScale
}

func (l Level) cdyn() float64 {
	if l.CdynScale == 0 {
		return 1
	}
	return l.CdynScale
}

func (l Level) leak() float64 {
	if l.LeakScale == 0 {
		return 1
	}
	return l.LeakScale
}

// EffFreqHz is the level's effective frequency: the clock rate divided
// by the per-cycle performance scale. Execution time of CPU-bound work
// is work·CPIScale/EffFreqHz, so effective frequency is the common
// axis on which heterogeneous levels are comparable and on which the
// classical DVFS model t = Tmem + Ndep/f stays linear.
func (l Level) EffFreqHz() float64 { return l.FreqHz / l.perf() }

// Platform describes a CPU cluster with DVFS.
type Platform struct {
	// Name identifies the platform ("odroid-xu3-a7", "x86-i7").
	Name string
	// Levels lists operating points in ascending frequency order.
	Levels []Level

	// CdynWPerV2Hz is the effective switched capacitance: dynamic
	// power = Cdyn · V² · f.
	CdynWPerV2Hz float64
	// LeakWPerV models leakage: static power = Leak · V.
	LeakWPerV float64
	// IdleDynFraction is the fraction of dynamic power still drawn
	// while idling at a level (imperfect clock gating).
	IdleDynFraction float64

	// CPIScale converts abstract work units from the task IR into
	// platform cycles (cycles = work · CPIScale). A faster
	// microarchitecture has a smaller CPIScale.
	CPIScale float64
	// MemScale scales the IR's memory time onto this platform's
	// memory system.
	MemScale float64

	// Switch latency model: latency = SwitchBaseSec + SwitchPerVolt ·
	// |ΔV| (+ SwitchClusterSec when the transition migrates between
	// core clusters), multiplied by lognormal jitter with parameter
	// SwitchJitterSigma. Same-level "switches" are free.
	SwitchBaseSec     float64
	SwitchPerVolt     float64
	SwitchClusterSec  float64
	SwitchJitterSigma float64
}

// ODROIDXU3A7 returns the Cortex-A7 cluster model of the paper's
// ODROID-XU3 board: 13 DVFS levels from 200 MHz to 1.4 GHz.
func ODROIDXU3A7() *Platform {
	p := &Platform{
		Name:            "odroid-xu3-a7",
		CdynWPerV2Hz:    4.5e-10,
		LeakWPerV:       0.02,
		IdleDynFraction: 0.25,
		CPIScale:        1.0,
		MemScale:        1.0,

		SwitchBaseSec:     300e-6,
		SwitchPerVolt:     3.0e-3,
		SwitchJitterSigma: 0.35,
	}
	for i := 0; i <= 12; i++ {
		f := (200 + 100*float64(i)) * 1e6
		// Voltage ramps from 0.85 V at 200 MHz to 1.30 V at 1.4 GHz.
		v := 0.85 + 0.45*float64(i)/12
		p.Levels = append(p.Levels, Level{Index: i, FreqHz: f, Volt: v})
	}
	return p
}

// ODROIDXU3A15 returns the board's Cortex-A15 (big) cluster as a
// standalone platform: the paper notes it "saw similar trends when
// running on the A15 core" (§5.1). Parameters match the A15 levels of
// BigLITTLE.
func ODROIDXU3A15() *Platform {
	p := &Platform{
		Name:            "odroid-xu3-a15",
		CdynWPerV2Hz:    4.5e-10 * 3.4,
		LeakWPerV:       0.02 * 7.0,
		IdleDynFraction: 0.25,
		CPIScale:        0.60,
		MemScale:        1.0,

		SwitchBaseSec:     300e-6,
		SwitchPerVolt:     3.0e-3,
		SwitchJitterSigma: 0.35,
	}
	// The kernel exposes the A15 cluster in 100 MHz steps.
	for i := 0; i <= 13; i++ {
		f := (700 + 100*float64(i)) * 1e6
		v := 0.88 + 0.44*float64(i)/13
		p.Levels = append(p.Levels, Level{Index: i, FreqHz: f, Volt: v})
	}
	return p
}

// IntelI7 returns an x86 desktop-class model used for the paper's
// cross-platform feature-selection study (§4.2): a faster core with a
// different level grid and memory system. Task semantics (control
// flow) are identical; only the cost mapping differs.
func IntelI7() *Platform {
	p := &Platform{
		Name:            "x86-i7",
		CdynWPerV2Hz:    9.0e-10,
		LeakWPerV:       2.0,
		IdleDynFraction: 0.05,
		CPIScale:        0.38,
		MemScale:        0.65,

		SwitchBaseSec:     120e-6,
		SwitchPerVolt:     1.2e-3,
		SwitchJitterSigma: 0.30,
	}
	for i := 0; i <= 12; i++ {
		f := (800 + 225*float64(i)) * 1e6
		v := 0.75 + 0.40*float64(i)/12
		p.Levels = append(p.Levels, Level{Index: i, FreqHz: f, Volt: v})
	}
	return p
}

// ByName returns a platform model by its CLI short name — the mapping
// shared by dvfssim, dvfsd, and the experiment drivers.
func ByName(name string) (*Platform, error) {
	switch name {
	case "a7":
		return ODROIDXU3A7(), nil
	case "x86":
		return IntelI7(), nil
	case "biglittle":
		return BigLITTLE(), nil
	}
	return nil, fmt.Errorf("platform: unknown platform %q (have: a7, x86, biglittle)", name)
}

// NumLevels returns the number of DVFS levels.
func (p *Platform) NumLevels() int { return len(p.Levels) }

// MinLevel returns the slowest operating point.
func (p *Platform) MinLevel() Level { return p.Levels[0] }

// MaxLevel returns the fastest operating point.
func (p *Platform) MaxLevel() Level { return p.Levels[len(p.Levels)-1] }

// LevelAtOrAbove returns the slowest level whose effective frequency
// is at least fHz, or the maximum level when fHz exceeds every level.
// This is the paper's quantization rule: "the actual frequency we
// select is the smallest frequency allowed that is greater than
// fbudget".
func (p *Platform) LevelAtOrAbove(fHz float64) Level {
	for _, l := range p.Levels {
		if l.EffFreqHz() >= fHz {
			return l
		}
	}
	return p.MaxLevel()
}

// Level returns the operating point at index i.
func (p *Platform) Level(i int) (Level, error) {
	if i < 0 || i >= len(p.Levels) {
		return Level{}, fmt.Errorf("platform: level %d out of range [0,%d)", i, len(p.Levels))
	}
	return p.Levels[i], nil
}

// LevelByFreqKHz returns the operating point clocked at exactly khz,
// as recorded in a DecisionEvent's FreqKHz field — how replay checks
// that a trace was produced on the platform it is being replayed
// against.
func (p *Platform) LevelByFreqKHz(khz int64) (Level, bool) {
	for _, l := range p.Levels {
		if int64(l.FreqHz/1e3) == khz {
			return l, true
		}
	}
	return Level{}, false
}

// ActivePower returns the power draw in watts while executing at l.
func (p *Platform) ActivePower(l Level) float64 {
	return p.CdynWPerV2Hz*l.cdyn()*l.Volt*l.Volt*l.FreqHz + p.LeakWPerV*l.leak()*l.Volt
}

// IdlePower returns the power draw while idle (clock mostly gated) at l.
func (p *Platform) IdlePower(l Level) float64 {
	return p.IdleDynFraction*p.CdynWPerV2Hz*l.cdyn()*l.Volt*l.Volt*l.FreqHz + p.LeakWPerV*l.leak()*l.Volt
}

// SwitchPower returns the power draw during a DVFS transition,
// approximated as the mean of the two endpoints' active power.
func (p *Platform) SwitchPower(from, to Level) float64 {
	return (p.ActivePower(from) + p.ActivePower(to)) / 2
}

// HelperPower returns the power drawn by a small helper core running
// the predictor concurrently with the job (the parallel placement of
// §4.3); modeled as active power at the minimum operating point.
func (p *Platform) HelperPower() float64 {
	return p.ActivePower(p.MinLevel())
}

// JobTimeAt converts abstract work (CPU work units, memory seconds)
// into execution time at level l on this platform, per the classical
// model t = Tmem + Ndependent/f (§3.4) on the effective-frequency axis.
func (p *Platform) JobTimeAt(cpuWork, memSec float64, l Level) float64 {
	return memSec*p.MemScale + cpuWork*p.CPIScale/l.EffFreqHz()
}

// SampleSwitchLatency draws one DVFS transition latency. Same-level
// transitions are free; others pay a base cost plus a voltage-delta
// term, with multiplicative lognormal jitter (regulator settling is
// heavy-tailed, which is why the paper uses the 95th percentile).
func (p *Platform) SampleSwitchLatency(from, to Level, rng *rand.Rand) float64 {
	if from.Index == to.Index {
		return 0
	}
	mean := p.switchMean(from, to)
	jitter := math.Exp(p.SwitchJitterSigma * rng.NormFloat64())
	return mean * jitter
}

// switchMean is the deterministic part of a transition's latency.
func (p *Platform) switchMean(from, to Level) float64 {
	mean := p.SwitchBaseSec + p.SwitchPerVolt*math.Abs(from.Volt-to.Volt)
	if from.Cluster != to.Cluster {
		// Cluster migration: context and cache-state transfer.
		mean += p.SwitchClusterSec
	}
	return mean
}

// MeanSwitchLatency returns the analytic mean transition latency,
// used by tests and by the ablation that replaces the 95th-percentile
// table with means.
func (p *Platform) MeanSwitchLatency(from, to Level) float64 {
	if from.Index == to.Index {
		return 0
	}
	// Lognormal jitter has mean exp(σ²/2).
	return p.switchMean(from, to) * math.Exp(p.SwitchJitterSigma*p.SwitchJitterSigma/2)
}

// BigLITTLE returns a heterogeneous platform modeled on the full
// Exynos 5422: the A7 cluster's 13 levels plus the A15 cluster's
// levels, merged and ordered by effective frequency. The A15 retires
// work in ~60% of the A7's cycles (PerfScale 0.6) at several times the
// power; cross-cluster transitions pay a migration penalty on top of
// the voltage ramp. This instantiates §3.5's "heterogeneous cores"
// extension: the predictor's level-selection logic is unchanged — the
// operating-point grid is just richer.
func BigLITTLE() *Platform {
	p := ODROIDXU3A7()
	p.Name = "odroid-xu3-biglittle"
	p.SwitchClusterSec = 2.0e-3
	for i := range p.Levels {
		p.Levels[i].Cluster = "A7"
	}
	// A15 cluster: 800 MHz – 2.0 GHz in 200 MHz steps.
	for i := 0; i <= 6; i++ {
		f := (800 + 200*float64(i)) * 1e6
		v := 0.90 + 0.42*float64(i)/6
		p.Levels = append(p.Levels, Level{
			FreqHz:    f,
			Volt:      v,
			PerfScale: 0.60,
			CdynScale: 3.4,
			LeakScale: 7.0,
			Cluster:   "A15",
		})
	}
	sort.Slice(p.Levels, func(i, j int) bool {
		return p.Levels[i].EffFreqHz() < p.Levels[j].EffFreqHz()
	})
	for i := range p.Levels {
		p.Levels[i].Index = i
	}
	return p
}
