package platform

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestODROIDLevels(t *testing.T) {
	p := ODROIDXU3A7()
	if p.NumLevels() != 13 {
		t.Fatalf("levels = %d, want 13", p.NumLevels())
	}
	if p.MinLevel().FreqHz != 200e6 || p.MaxLevel().FreqHz != 1400e6 {
		t.Errorf("freq range = [%g, %g]", p.MinLevel().FreqHz, p.MaxLevel().FreqHz)
	}
	for i := 1; i < p.NumLevels(); i++ {
		if p.Levels[i].FreqHz <= p.Levels[i-1].FreqHz {
			t.Errorf("levels not ascending at %d", i)
		}
		if p.Levels[i].Volt < p.Levels[i-1].Volt {
			t.Errorf("voltage not monotone at %d", i)
		}
		if p.Levels[i].Index != i {
			t.Errorf("index mismatch at %d", i)
		}
	}
}

func TestLevelAtOrAbove(t *testing.T) {
	p := ODROIDXU3A7()
	cases := []struct {
		f    float64
		want float64
	}{
		{0, 200e6},
		{200e6, 200e6},
		{201e6, 300e6},
		{650e6, 700e6},
		{1400e6, 1400e6},
		{9e9, 1400e6}, // beyond max clamps to max
	}
	for _, c := range cases {
		if got := p.LevelAtOrAbove(c.f); got.FreqHz != c.want {
			t.Errorf("LevelAtOrAbove(%g) = %g, want %g", c.f, got.FreqHz, c.want)
		}
	}
}

func TestLevelBounds(t *testing.T) {
	p := ODROIDXU3A7()
	if _, err := p.Level(-1); err == nil {
		t.Error("Level(-1) should fail")
	}
	if _, err := p.Level(13); err == nil {
		t.Error("Level(13) should fail")
	}
	if l, err := p.Level(5); err != nil || l.Index != 5 {
		t.Errorf("Level(5) = %v, %v", l, err)
	}
}

func TestPowerMonotone(t *testing.T) {
	for _, p := range []*Platform{ODROIDXU3A7(), IntelI7()} {
		for i := 1; i < p.NumLevels(); i++ {
			if p.ActivePower(p.Levels[i]) <= p.ActivePower(p.Levels[i-1]) {
				t.Errorf("%s: active power not increasing at level %d", p.Name, i)
			}
			if p.IdlePower(p.Levels[i]) < p.IdlePower(p.Levels[i-1]) {
				t.Errorf("%s: idle power decreasing at level %d", p.Name, i)
			}
		}
		for _, l := range p.Levels {
			if p.IdlePower(l) >= p.ActivePower(l) {
				t.Errorf("%s: idle power >= active at level %d", p.Name, l.Index)
			}
		}
	}
}

func TestEnergyEfficiencyOfLowerLevels(t *testing.T) {
	// The premise of DVFS energy saving: for CPU-bound work, energy at
	// a low level is below energy at the max level (power drops faster
	// than time grows).
	p := ODROIDXU3A7()
	work := 1e7 // CPU work units, no memory time
	eAt := func(l Level) float64 {
		return p.ActivePower(l) * p.JobTimeAt(work, 0, l)
	}
	if !(eAt(p.MinLevel()) < eAt(p.MaxLevel())*0.6) {
		t.Errorf("min-level energy %g not well below max-level %g",
			eAt(p.MinLevel()), eAt(p.MaxLevel()))
	}
}

func TestJobTimeAt(t *testing.T) {
	p := ODROIDXU3A7()
	l := p.MaxLevel()
	got := p.JobTimeAt(1.4e6, 0.010, l)
	want := 0.010 + 1.4e6/1.4e9
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("JobTimeAt = %g, want %g", got, want)
	}
}

func TestSwitchLatencyProperties(t *testing.T) {
	p := ODROIDXU3A7()
	rng := rand.New(rand.NewSource(7))
	if p.SampleSwitchLatency(p.Levels[3], p.Levels[3], rng) != 0 {
		t.Error("same-level switch should be free")
	}
	if p.MeanSwitchLatency(p.Levels[3], p.Levels[3]) != 0 {
		t.Error("same-level mean switch should be free")
	}
	// Larger voltage deltas take longer on average.
	small := p.MeanSwitchLatency(p.Levels[5], p.Levels[6])
	big := p.MeanSwitchLatency(p.Levels[0], p.Levels[12])
	if big <= small {
		t.Errorf("big transition %g not slower than small %g", big, small)
	}
	// Sampled latencies are positive and mostly near the mean.
	sum := 0.0
	n := 2000
	for i := 0; i < n; i++ {
		v := p.SampleSwitchLatency(p.Levels[0], p.Levels[12], rng)
		if v <= 0 {
			t.Fatalf("non-positive switch latency %g", v)
		}
		sum += v
	}
	emp := sum / float64(n)
	if math.Abs(emp-big)/big > 0.15 {
		t.Errorf("empirical mean %g far from analytic %g", emp, big)
	}
}

func TestMeasureSwitchTable(t *testing.T) {
	p := ODROIDXU3A7()
	tbl := MeasureSwitchTable(p, 400, 0.95, 11)
	n := p.NumLevels()
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			v := tbl.Lookup(from, to)
			if from == to {
				if v != 0 {
					t.Errorf("diagonal (%d,%d) = %g, want 0", from, to, v)
				}
				continue
			}
			if v <= 0 {
				t.Errorf("entry (%d,%d) = %g, want > 0", from, to, v)
			}
			// 95th percentile exceeds the mean for a lognormal tail.
			if v <= p.MeanSwitchLatency(p.Levels[from], p.Levels[to]) {
				t.Errorf("p95 (%d,%d) = %g not above mean %g", from, to, v,
					p.MeanSwitchLatency(p.Levels[from], p.Levels[to]))
			}
		}
	}
	// Extreme transitions dominate the table.
	if tbl.Max() != math.Max(tbl.Lookup(0, n-1), tbl.Lookup(n-1, 0)) {
		t.Errorf("Max() = %g, expected an extreme transition to dominate", tbl.Max())
	}
	// Fig 11's scale: extremes in the low-millisecond range.
	if tbl.Max() < 1e-3 || tbl.Max() > 10e-3 {
		t.Errorf("extreme p95 switch time %g s outside Fig 11's plausible range", tbl.Max())
	}
}

func TestMeanSwitchTable(t *testing.T) {
	p := ODROIDXU3A7()
	mean := MeanSwitchTable(p)
	p95 := MeasureSwitchTable(p, 400, 0.95, 11)
	lower := 0
	cells := 0
	for from := 0; from < p.NumLevels(); from++ {
		for to := 0; to < p.NumLevels(); to++ {
			if from == to {
				continue
			}
			cells++
			if mean.Lookup(from, to) < p95.Lookup(from, to) {
				lower++
			}
		}
	}
	if lower != cells {
		t.Errorf("mean table below p95 in %d/%d cells, want all", lower, cells)
	}
}

func TestSwitchTableDeterministic(t *testing.T) {
	p := ODROIDXU3A7()
	a := MeasureSwitchTable(p, 100, 0.95, 5)
	b := MeasureSwitchTable(p, 100, 0.95, 5)
	for i := range a.Seconds {
		for j := range a.Seconds[i] {
			if a.Seconds[i][j] != b.Seconds[i][j] {
				t.Fatalf("same seed gave different tables at (%d,%d)", i, j)
			}
		}
	}
}

func TestEnergyMeterExact(t *testing.T) {
	m := NewEnergyMeter(0)
	m.AddSegment(2, 1.5)
	m.AddSegment(0.5, 4)
	m.AddSegment(-1, 100) // ignored
	if math.Abs(m.EnergyJoules()-5) > 1e-12 {
		t.Errorf("energy = %g, want 5", m.EnergyJoules())
	}
	if math.Abs(m.ElapsedSec()-2.5) > 1e-12 {
		t.Errorf("elapsed = %g, want 2.5", m.ElapsedSec())
	}
}

func TestEnergyMeterSensorApproximatesExact(t *testing.T) {
	m := NewEnergyMeter(SensorRateHz)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		m.AddSegment(0.001+rng.Float64()*0.05, 0.2+rng.Float64())
	}
	exact := m.EnergyJoules()
	sensor := m.SensorEnergyJoules()
	if math.Abs(sensor-exact)/exact > 0.02 {
		t.Errorf("sensor energy %g deviates >2%% from exact %g", sensor, exact)
	}
	wantSamples := int(m.ElapsedSec() * SensorRateHz)
	if diff := m.Samples() - wantSamples; diff < -2 || diff > 2 {
		t.Errorf("samples = %d, want ≈%d", m.Samples(), wantSamples)
	}
}

// Property: active power is finite and positive across platforms/levels.
func TestPowerFiniteProperty(t *testing.T) {
	plats := []*Platform{ODROIDXU3A7(), IntelI7()}
	f := func(pi, li uint8) bool {
		p := plats[int(pi)%len(plats)]
		l := p.Levels[int(li)%p.NumLevels()]
		a, id := p.ActivePower(l), p.IdlePower(l)
		return a > 0 && id > 0 && !math.IsInf(a, 0) && !math.IsNaN(a) && id < a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBigLITTLE(t *testing.T) {
	p := BigLITTLE()
	if p.NumLevels() != 20 {
		t.Fatalf("levels = %d, want 20 (13 A7 + 7 A15)", p.NumLevels())
	}
	clusters := map[string]int{}
	for i, l := range p.Levels {
		clusters[l.Cluster]++
		if l.Index != i {
			t.Errorf("index mismatch at %d", i)
		}
		if i > 0 && p.Levels[i].EffFreqHz() < p.Levels[i-1].EffFreqHz() {
			t.Errorf("levels not ordered by effective frequency at %d", i)
		}
	}
	if clusters["A7"] != 13 || clusters["A15"] != 7 {
		t.Errorf("cluster counts = %v", clusters)
	}
	// The A15 levels extend the performance range beyond the A7's.
	if p.MaxLevel().Cluster != "A15" {
		t.Errorf("fastest level is %s, want A15", p.MaxLevel().Cluster)
	}
	if p.MaxLevel().EffFreqHz() <= 1400e6 {
		t.Errorf("max effective frequency %g not beyond the A7's", p.MaxLevel().EffFreqHz())
	}
	// But at much higher power: the fastest A15 level burns several
	// times the fastest A7 level.
	var a7max Level
	for _, l := range p.Levels {
		if l.Cluster == "A7" && (a7max.FreqHz == 0 || l.FreqHz > a7max.FreqHz) {
			a7max = l
		}
	}
	if p.ActivePower(p.MaxLevel()) < 2*p.ActivePower(a7max) {
		t.Errorf("A15 max power %g not well above A7 max %g",
			p.ActivePower(p.MaxLevel()), p.ActivePower(a7max))
	}
}

func TestClusterMigrationCost(t *testing.T) {
	p := BigLITTLE()
	// Compare two transitions from the same source with nearly equal
	// voltage deltas: one within the A7 cluster, one crossing to the
	// A15. The migration penalty must dominate the difference.
	var a7near, a15first Level
	for _, l := range p.Levels {
		if l.Cluster == "A15" && a15first.FreqHz == 0 {
			a15first = l
		}
	}
	for _, l := range p.Levels {
		if l.Cluster == "A7" && (a7near.FreqHz == 0 ||
			absf(l.Volt-a15first.Volt) < absf(a7near.Volt-a15first.Volt)) {
			a7near = l
		}
	}
	within := p.MeanSwitchLatency(p.Levels[0], a7near)
	across := p.MeanSwitchLatency(p.Levels[0], a15first)
	if across <= within+1.5e-3 {
		t.Errorf("cluster migration %g not clearly above in-cluster switch %g", across, within)
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestEffFreqDefaults(t *testing.T) {
	l := Level{FreqHz: 1e9}
	if l.EffFreqHz() != 1e9 {
		t.Errorf("zero PerfScale should default to 1")
	}
	l.PerfScale = 0.5
	if l.EffFreqHz() != 2e9 {
		t.Errorf("EffFreq = %g, want 2e9", l.EffFreqHz())
	}
}
