package platform

// The ODROID-XU3 exposes on-board INA231 power sensors that the paper
// samples at 213 Hz, integrating over time to obtain energy (§5.1).
// EnergyMeter reproduces that pipeline: the simulator feeds it
// piecewise-constant power segments; the meter both integrates exactly
// and emulates the discrete sensor so experiments can report the same
// kind of measurement the paper's numbers came from.

// SensorRateHz is the power sensor sampling rate from the paper.
const SensorRateHz = 213.0

// EnergyMeter integrates power over piecewise-constant segments and
// simultaneously emulates a fixed-rate power sensor.
type EnergyMeter struct {
	rate float64
	// exact integration
	exactJoules float64
	totalSec    float64
	// sensor emulation: periodic sampling with sample-and-hold
	// integration (each sample accounts for one sampling period).
	nextSample   float64
	sensorJoules float64
	samples      int
}

// NewEnergyMeter returns a meter sampling at rateHz (use SensorRateHz
// for the paper's setup). A rate of 0 disables sensor emulation.
func NewEnergyMeter(rateHz float64) *EnergyMeter {
	return &EnergyMeter{rate: rateHz}
}

// AddSegment records a segment of `dur` seconds at constant `watts`.
func (m *EnergyMeter) AddSegment(dur, watts float64) {
	if dur <= 0 {
		return
	}
	start := m.totalSec
	end := start + dur
	m.exactJoules += watts * dur
	m.totalSec = end
	if m.rate <= 0 {
		return
	}
	period := 1 / m.rate
	for m.nextSample < end {
		if m.nextSample >= start {
			m.sensorJoules += watts * period
			m.samples++
		}
		m.nextSample += period
	}
}

// EnergyJoules returns the exactly integrated energy.
func (m *EnergyMeter) EnergyJoules() float64 { return m.exactJoules }

// SensorEnergyJoules returns the energy as the emulated 213 Hz sensor
// would report it.
func (m *EnergyMeter) SensorEnergyJoules() float64 { return m.sensorJoules }

// ElapsedSec returns total integrated time.
func (m *EnergyMeter) ElapsedSec() float64 { return m.totalSec }

// Samples returns the number of sensor samples taken.
func (m *EnergyMeter) Samples() int { return m.samples }
