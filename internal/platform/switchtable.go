package platform

import (
	"math/rand"
	"sort"
)

// SwitchTable holds per-transition DVFS switch-time estimates, indexed
// [from][to]. The paper microbenchmarks every (start, end) frequency
// pair and uses the 95th-percentile times "to be conservative ...
// while omitting rare outliers" (§3.4, Fig 11).
type SwitchTable struct {
	// Seconds[from][to] is the estimated switch latency.
	Seconds [][]float64
}

// Lookup returns the estimated latency from level index `from` to `to`.
func (t *SwitchTable) Lookup(from, to int) float64 {
	return t.Seconds[from][to]
}

// Max returns the largest entry, a conservative bound used when the
// destination level is not yet known.
func (t *SwitchTable) Max() float64 {
	m := 0.0
	for _, row := range t.Seconds {
		for _, v := range row {
			if v > m {
				m = v
			}
		}
	}
	return m
}

// MeasureSwitchTable microbenchmarks the platform's DVFS transitions:
// it samples every (from, to) pair `samples` times and records the
// q-quantile (the paper uses q = 0.95). It reproduces Fig 11.
func MeasureSwitchTable(p *Platform, samples int, q float64, seed int64) *SwitchTable {
	rng := rand.New(rand.NewSource(seed))
	n := p.NumLevels()
	tbl := &SwitchTable{Seconds: make([][]float64, n)}
	buf := make([]float64, samples)
	for from := 0; from < n; from++ {
		tbl.Seconds[from] = make([]float64, n)
		for to := 0; to < n; to++ {
			if from == to {
				continue
			}
			for s := 0; s < samples; s++ {
				buf[s] = p.SampleSwitchLatency(p.Levels[from], p.Levels[to], rng)
			}
			sort.Float64s(buf)
			idx := int(q * float64(samples-1))
			tbl.Seconds[from][to] = buf[idx]
		}
	}
	return tbl
}

// MeanSwitchTable builds a table of analytic mean latencies, the
// non-conservative alternative ablated against the 95th-percentile
// table.
func MeanSwitchTable(p *Platform) *SwitchTable {
	n := p.NumLevels()
	tbl := &SwitchTable{Seconds: make([][]float64, n)}
	for from := 0; from < n; from++ {
		tbl.Seconds[from] = make([]float64, n)
		for to := 0; to < n; to++ {
			tbl.Seconds[from][to] = p.MeanSwitchLatency(p.Levels[from], p.Levels[to])
		}
	}
	return tbl
}
