// Package regress implements the execution-time prediction models of
// paper §3.3: ordinary least squares as a baseline, and the paper's
// asymmetric-penalty Lasso
//
//	min_β ‖pos(Xβ−y)‖² + α‖neg(Xβ−y)‖² + γ‖β‖₁
//
// solved with an accelerated proximal gradient method (FISTA) in pure
// Go. The asymmetric weight α>1 penalizes under-prediction (which
// causes deadline misses) harder than over-prediction (which merely
// wastes energy); the L1 term drives coefficients of unhelpful
// control-flow features to exactly zero so the program slicer can drop
// their computation.
package regress

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be equal length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("regress: empty matrix")
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("regress: ragged rows: row %d has %d cols, want %d", i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// MulVec computes dst = M·x. dst must have length Rows.
func (m *Matrix) MulVec(x, dst []float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// TMulVec computes dst = Mᵀ·x. dst must have length Cols.
func (m *Matrix) TMulVec(x, dst []float64) {
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, v := range row {
			dst[j] += v * xi
		}
	}
}

// specNorm2 estimates σmax(M)² (the largest eigenvalue of MᵀM) with
// power iteration; it upper-bounds the Lipschitz constant of the
// smooth loss term.
func specNorm2(m *Matrix, iters int) float64 {
	v := make([]float64, m.Cols)
	for j := range v {
		v[j] = 1 / math.Sqrt(float64(m.Cols))
	}
	mv := make([]float64, m.Rows)
	mtv := make([]float64, m.Cols)
	lambda := 0.0
	for k := 0; k < iters; k++ {
		m.MulVec(v, mv)
		m.TMulVec(mv, mtv)
		norm := 0.0
		for _, x := range mtv {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 0
		}
		for j := range v {
			v[j] = mtv[j] / norm
		}
		lambda = norm
	}
	return lambda
}

// solveSPD solves A·x = b for symmetric positive-definite A using
// Cholesky decomposition; A is modified in place. Used by the OLS
// baseline via normal equations (with a small ridge for stability).
func solveSPD(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, fmt.Errorf("regress: solveSPD shape mismatch")
	}
	// Cholesky: A = L·Lᵀ, stored in the lower triangle.
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= a.At(j, k) * a.At(j, k)
		}
		if d <= 0 {
			return nil, fmt.Errorf("regress: matrix not positive definite at pivot %d", j)
		}
		d = math.Sqrt(d)
		a.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= a.At(i, k) * a.At(j, k)
			}
			a.Set(i, j, s/d)
		}
	}
	// Forward solve L·z = b.
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= a.At(i, k) * z[k]
		}
		z[i] = s / a.At(i, i)
	}
	// Back solve Lᵀ·x = z.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := z[i]
		for k := i + 1; k < n; k++ {
			s -= a.At(k, i) * x[k]
		}
		x[i] = s / a.At(i, i)
	}
	return x, nil
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}
