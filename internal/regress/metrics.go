package regress

import (
	"fmt"
	"math"
	"sort"
)

// ErrorStats summarizes prediction errors e = ŷ − y. Positive errors
// are over-predictions (safe, wasteful), negative errors are
// under-predictions (deadline-miss risk) — the paper's Fig 19 shows
// these as box plots.
type ErrorStats struct {
	N          int
	Mean       float64
	MAE        float64
	RMSE       float64
	MaxOver    float64 // largest over-prediction (≥0)
	MaxUnder   float64 // most negative under-prediction (≤0)
	UnderCount int     // number of under-predictions
}

// Errors computes ŷ − y pairwise.
func Errors(pred, y []float64) []float64 {
	e := make([]float64, len(y))
	for i := range y {
		e[i] = pred[i] - y[i]
	}
	return e
}

// ComputeErrorStats summarizes a set of prediction errors.
func ComputeErrorStats(errs []float64) ErrorStats {
	st := ErrorStats{N: len(errs)}
	if st.N == 0 {
		return st
	}
	for _, e := range errs {
		st.Mean += e
		st.MAE += math.Abs(e)
		st.RMSE += e * e
		if e > st.MaxOver {
			st.MaxOver = e
		}
		if e < st.MaxUnder {
			st.MaxUnder = e
		}
		if e < 0 {
			st.UnderCount++
		}
	}
	n := float64(st.N)
	st.Mean /= n
	st.MAE /= n
	st.RMSE = math.Sqrt(st.RMSE / n)
	return st
}

func (s ErrorStats) String() string {
	return fmt.Sprintf("n=%d mean=%.3g mae=%.3g rmse=%.3g maxOver=%.3g maxUnder=%.3g under=%d",
		s.N, s.Mean, s.MAE, s.RMSE, s.MaxOver, s.MaxUnder, s.UnderCount)
}

// Objective evaluates the paper's training objective at a model —
// useful for tests that check optimization progress and convexity
// bounds.
func Objective(m *Model, X [][]float64, y []float64, alpha, gamma float64) float64 {
	obj := 0.0
	for i, x := range X {
		r := m.Predict(x) - y[i]
		if r > 0 {
			obj += r * r
		} else {
			obj += alpha * r * r
		}
	}
	for _, c := range m.Coef {
		obj += gamma * math.Abs(c)
	}
	return obj
}

// Quantile returns the q-quantile (0≤q≤1) of xs by linear
// interpolation on the sorted copy.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}
