package regress

import (
	"fmt"
	"math"
)

// Model is a fitted linear execution-time predictor y ≈ β₀ + x·β over
// raw (unstandardized) feature vectors.
type Model struct {
	// Intercept is β₀.
	Intercept float64
	// Coef are per-feature coefficients in raw feature space.
	Coef []float64
}

// Predict evaluates the model on a raw feature vector. It sits on the
// per-decision path, so it must stay allocation-free.
//
//dvfs:hotpath
func (m *Model) Predict(x []float64) float64 {
	return m.Intercept + Dot(m.Coef, x)
}

// PredictAll evaluates the model on each row of X.
func (m *Model) PredictAll(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = m.Predict(x)
	}
	return out
}

// Selected returns the indices of features with non-zero coefficients —
// the features the prediction slice must still compute.
func (m *Model) Selected() []int {
	var sel []int
	for j, c := range m.Coef {
		if c != 0 {
			sel = append(sel, j)
		}
	}
	return sel
}

// NumSelected returns the count of non-zero coefficients.
func (m *Model) NumSelected() int { return len(m.Selected()) }

// Options configures the asymmetric Lasso fit. Zero values select the
// defaults noted on each field.
type Options struct {
	// Alpha is the under-prediction penalty weight α (≥1). The paper
	// finds α=100 a good balance (§5.4). Default 100.
	Alpha float64
	// Gamma is the L1 feature-selection weight γ. It is scaled by
	// n·Var(y) internally so a given Gamma behaves consistently across
	// workloads. Default 1e-3.
	Gamma float64
	// MaxIter bounds FISTA iterations. Default 4000.
	MaxIter int
	// Tol stops iteration when the largest coefficient change (in
	// standardized space) falls below it. Default 1e-9.
	Tol float64
}

func (o Options) withDefaults() Options {
	if o.Alpha == 0 {
		o.Alpha = 100
	}
	if o.Alpha < 1 {
		o.Alpha = 1
	}
	if o.Gamma == 0 {
		o.Gamma = 1e-3
	}
	if o.MaxIter == 0 {
		o.MaxIter = 4000
	}
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
	return o
}

// Fit solves the paper's objective
//
//	min_β ‖pos(Xβ−y)‖² + α‖neg(Xβ−y)‖² + γ‖β‖₁
//
// with FISTA over standardized features (the intercept is neither
// standardized nor penalized) and returns the model mapped back to raw
// feature space.
func Fit(X [][]float64, y []float64, opts Options) (*Model, error) {
	opts = opts.withDefaults()
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("regress: need matching non-empty X (%d) and y (%d)", n, len(y))
	}
	d := len(X[0])

	mean, scale := columnStats(X)
	Xs := NewMatrix(n, d)
	for i, row := range X {
		if len(row) != d {
			return nil, fmt.Errorf("regress: ragged feature row %d", i)
		}
		for j, v := range row {
			Xs.Set(i, j, (v-mean[j])/scale[j])
		}
	}

	// Scale γ so it is comparable across workloads regardless of the
	// magnitude of y (milliseconds vs seconds) and the sample count:
	// the smooth-loss gradient of a standardized column at β=0 is
	// ≈ 2n·corr·std(y), so γ is expressed in those units.
	yStd := math.Sqrt(variance(y))
	if yStd == 0 {
		yStd = 1e-12
	}
	gamma := opts.Gamma * float64(n) * yStd

	// Lipschitz constant of the smooth part: the gradient is
	// 2·max(1,α)·AᵀA-Lipschitz for the augmented design A = [1 Xs],
	// and σmax(A) ≤ σmax(Xs) + √n.
	sn := specNorm2(Xs, 30)
	sA := math.Sqrt(sn) + math.Sqrt(float64(n))
	L := 2 * math.Max(1, opts.Alpha) * sA * sA
	if L == 0 {
		L = 1
	}
	step := 1 / L

	beta := make([]float64, d) // standardized coefficients
	b0 := meanOf(y)            // intercept starts at the mean
	zeta := append([]float64(nil), beta...)
	z0 := b0
	tk := 1.0

	r := make([]float64, n)    // residuals Xβ − y
	grad := make([]float64, d) // gradient wrt β

	for iter := 0; iter < opts.MaxIter; iter++ {
		// Gradient at the extrapolated point (zeta, z0).
		Xs.MulVec(zeta, r)
		g0 := 0.0
		for i := range r {
			r[i] += z0 - y[i]
			// d/dr of pos(r)² + α·neg(r)²:
			if r[i] > 0 {
				r[i] = 2 * r[i]
			} else {
				r[i] = 2 * opts.Alpha * r[i]
			}
			g0 += r[i]
		}
		Xs.TMulVec(r, grad)

		// Proximal step with soft thresholding (not on the intercept).
		maxDelta := 0.0
		newB0 := z0 - step*g0
		if dlt := math.Abs(newB0 - b0); dlt > maxDelta {
			maxDelta = dlt
		}
		newBeta := make([]float64, d)
		th := step * gamma
		for j := 0; j < d; j++ {
			v := zeta[j] - step*grad[j]
			switch {
			case v > th:
				v -= th
			case v < -th:
				v += th
			default:
				v = 0
			}
			newBeta[j] = v
			if dlt := math.Abs(v - beta[j]); dlt > maxDelta {
				maxDelta = dlt
			}
		}

		// FISTA momentum.
		tNext := (1 + math.Sqrt(1+4*tk*tk)) / 2
		mom := (tk - 1) / tNext
		for j := 0; j < d; j++ {
			zeta[j] = newBeta[j] + mom*(newBeta[j]-beta[j])
		}
		z0 = newB0 + mom*(newB0-b0)
		tk = tNext
		beta, b0 = newBeta, newB0

		if maxDelta < opts.Tol {
			break
		}
	}

	// Map standardized coefficients back to raw feature space:
	// y = b0 + Σ β_j (x_j − mean_j)/scale_j.
	m := &Model{Intercept: b0, Coef: make([]float64, d)}
	for j := 0; j < d; j++ {
		if beta[j] == 0 {
			continue
		}
		m.Coef[j] = beta[j] / scale[j]
		m.Intercept -= beta[j] * mean[j] / scale[j]
	}
	return m, nil
}

// FitOLS fits ordinary least squares via normal equations with a tiny
// ridge term for numerical stability. It serves as the symmetric,
// no-selection baseline the paper contrasts with (§3.3).
func FitOLS(X [][]float64, y []float64) (*Model, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("regress: need matching non-empty X (%d) and y (%d)", n, len(y))
	}
	d := len(X[0])
	// Augmented design with intercept column.
	dd := d + 1
	ata := NewMatrix(dd, dd)
	atb := make([]float64, dd)
	row := make([]float64, dd)
	for i, x := range X {
		if len(x) != d {
			return nil, fmt.Errorf("regress: ragged feature row %d", i)
		}
		row[0] = 1
		copy(row[1:], x)
		for a := 0; a < dd; a++ {
			atb[a] += row[a] * y[i]
			for b := a; b < dd; b++ {
				ata.Set(a, b, ata.At(a, b)+row[a]*row[b])
			}
		}
	}
	// Mirror the upper triangle and add ridge.
	ridge := 1e-8 * float64(n)
	for a := 0; a < dd; a++ {
		ata.Set(a, a, ata.At(a, a)+ridge)
		for b := a + 1; b < dd; b++ {
			ata.Set(b, a, ata.At(a, b))
		}
	}
	sol, err := solveSPD(ata, atb)
	if err != nil {
		return nil, err
	}
	return &Model{Intercept: sol[0], Coef: sol[1:]}, nil
}

func columnStats(X [][]float64) (mean, scale []float64) {
	n := len(X)
	d := len(X[0])
	mean = make([]float64, d)
	scale = make([]float64, d)
	for _, row := range X {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	for _, row := range X {
		for j, v := range row {
			dv := v - mean[j]
			scale[j] += dv * dv
		}
	}
	for j := range scale {
		scale[j] = math.Sqrt(scale[j] / float64(n))
		if scale[j] == 0 {
			scale[j] = 1 // constant column: coefficient will be zeroed
		}
	}
	return mean, scale
}

func meanOf(y []float64) float64 {
	s := 0.0
	for _, v := range y {
		s += v
	}
	return s / float64(len(y))
}

func variance(y []float64) float64 {
	m := meanOf(y)
	s := 0.0
	for _, v := range y {
		s += (v - m) * (v - m)
	}
	return s / float64(len(y))
}
