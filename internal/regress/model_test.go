package regress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synth generates y = 2 + 3·x0 + 0.5·x2 + noise with x1 irrelevant.
func synth(rng *rand.Rand, n int, noise float64) ([][]float64, []float64) {
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		X[i] = x
		y[i] = 2 + 3*x[0] + 0.5*x[2] + noise*rng.NormFloat64()
	}
	return X, y
}

func TestFitOLSRecoversCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := synth(rng, 500, 0.01)
	m, err := FitOLS(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Intercept-2) > 0.05 {
		t.Errorf("intercept = %g, want ≈2", m.Intercept)
	}
	want := []float64{3, 0, 0.5}
	for j, w := range want {
		if math.Abs(m.Coef[j]-w) > 0.05 {
			t.Errorf("coef[%d] = %g, want ≈%g", j, m.Coef[j], w)
		}
	}
}

func TestFitOLSErrors(t *testing.T) {
	if _, err := FitOLS(nil, nil); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := FitOLS([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := FitOLS([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows should fail")
	}
}

func TestFitSymmetricMatchesOLS(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X, y := synth(rng, 400, 0.5)
	ols, err := FitOLS(X, y)
	if err != nil {
		t.Fatal(err)
	}
	// α=1, tiny γ: the asymmetric Lasso degenerates to least squares.
	m, err := Fit(X, y, Options{Alpha: 1, Gamma: 1e-9, MaxIter: 20000, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for j := range ols.Coef {
		if math.Abs(m.Coef[j]-ols.Coef[j]) > 0.02 {
			t.Errorf("coef[%d] = %g, OLS %g", j, m.Coef[j], ols.Coef[j])
		}
	}
	if math.Abs(m.Intercept-ols.Intercept) > 0.1 {
		t.Errorf("intercept = %g, OLS %g", m.Intercept, ols.Intercept)
	}
}

func TestFitAsymmetrySkewsOver(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X, y := synth(rng, 600, 1.0)
	sym, err := Fit(X, y, Options{Alpha: 1, Gamma: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	asym, err := Fit(X, y, Options{Alpha: 100, Gamma: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	sStats := ComputeErrorStats(Errors(sym.PredictAll(X), y))
	aStats := ComputeErrorStats(Errors(asym.PredictAll(X), y))
	if aStats.UnderCount >= sStats.UnderCount {
		t.Errorf("α=100 under-predictions (%d) not fewer than α=1 (%d)",
			aStats.UnderCount, sStats.UnderCount)
	}
	if aStats.Mean <= sStats.Mean {
		t.Errorf("α=100 mean error %g not skewed above α=1 mean %g", aStats.Mean, sStats.Mean)
	}
}

func TestFitLassoSelectsFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	X, y := synth(rng, 600, 0.1)
	m, err := Fit(X, y, Options{Alpha: 1, Gamma: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if m.Coef[1] != 0 {
		t.Errorf("irrelevant feature not zeroed: coef=%g (selected=%v)", m.Coef[1], m.Selected())
	}
	if m.Coef[0] == 0 || m.Coef[2] == 0 {
		t.Errorf("relevant features zeroed: %v", m.Coef)
	}
	if m.NumSelected() != 2 {
		t.Errorf("NumSelected = %d, want 2", m.NumSelected())
	}
}

func TestFitLargerGammaSelectsFewer(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 500
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := make([]float64, 8)
		for j := range x {
			x[j] = rng.Float64() * 10
		}
		X[i] = x
		// Coefficients of decaying importance.
		y[i] = 5*x[0] + 2*x[1] + 0.5*x[2] + 0.1*x[3] + 0.3*rng.NormFloat64()
	}
	prev := 9
	for _, gamma := range []float64{1e-6, 1e-3, 0.05, 0.5} {
		m, err := Fit(X, y, Options{Alpha: 1, Gamma: gamma})
		if err != nil {
			t.Fatal(err)
		}
		if m.NumSelected() > prev {
			t.Errorf("γ=%g selected %d features, more than smaller γ (%d)", gamma, m.NumSelected(), prev)
		}
		prev = m.NumSelected()
	}
	if prev >= 4 {
		t.Errorf("largest γ still selects %d features", prev)
	}
}

func TestFitObjectiveNotWorseThanOLS(t *testing.T) {
	// On the asymmetric objective, the asymmetric fit must beat OLS.
	rng := rand.New(rand.NewSource(6))
	X, y := synth(rng, 300, 2.0)
	alpha, gamma := 50.0, 0.0
	ols, err := FitOLS(X, y)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Fit(X, y, Options{Alpha: alpha, Gamma: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if Objective(m, X, y, alpha, gamma) > Objective(ols, X, y, alpha, gamma) {
		t.Errorf("asymmetric fit objective %g worse than OLS %g",
			Objective(m, X, y, alpha, gamma), Objective(ols, X, y, alpha, gamma))
	}
}

func TestFitConstantColumn(t *testing.T) {
	X := [][]float64{{1, 5}, {1, 7}, {1, 9}, {1, 11}}
	y := []float64{10, 14, 18, 22}
	m, err := Fit(X, y, Options{Alpha: 1, Gamma: 1e-6, MaxIter: 20000})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		if math.Abs(m.Predict(x)-y[i]) > 0.1 {
			t.Errorf("predict(%v) = %g, want %g", x, m.Predict(x), y[i])
		}
	}
}

func TestFitHandlesConstantTarget(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []float64{5, 5, 5}
	m, err := Fit(X, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Predict([]float64{2})-5) > 0.2 {
		t.Errorf("constant target: predict = %g, want 5", m.Predict([]float64{2}))
	}
}

func TestMatrixOps(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 3)
	m.MulVec([]float64{1, 1}, dst)
	want := []float64{3, 7, 11}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulVec = %v, want %v", dst, want)
		}
	}
	dt := make([]float64, 2)
	m.TMulVec([]float64{1, 0, 1}, dt)
	wantT := []float64{6, 8}
	for i := range wantT {
		if dt[i] != wantT[i] {
			t.Fatalf("TMulVec = %v, want %v", dt, wantT)
		}
	}
	if _, err := FromRows([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged FromRows should fail")
	}
	if _, err := FromRows(nil); err == nil {
		t.Error("empty FromRows should fail")
	}
}

func TestSpecNorm2(t *testing.T) {
	// Diagonal matrix: σmax² = max diag².
	m, _ := FromRows([][]float64{{3, 0}, {0, 2}})
	got := specNorm2(m, 50)
	if math.Abs(got-9) > 1e-6 {
		t.Errorf("specNorm2 = %g, want 9", got)
	}
}

func TestSolveSPD(t *testing.T) {
	a, _ := FromRows([][]float64{{4, 2}, {2, 3}})
	x, err := solveSPD(a, []float64{10, 8})
	if err != nil {
		t.Fatal(err)
	}
	// 4x+2y=10, 2x+3y=8 → x=1.75, y=1.5
	if math.Abs(x[0]-1.75) > 1e-9 || math.Abs(x[1]-1.5) > 1e-9 {
		t.Errorf("solveSPD = %v", x)
	}
	bad, _ := FromRows([][]float64{{1, 2}, {2, 1}}) // indefinite
	if _, err := solveSPD(bad, []float64{1, 1}); err == nil {
		t.Error("indefinite matrix should fail")
	}
}

func TestErrorStats(t *testing.T) {
	st := ComputeErrorStats([]float64{1, -2, 3})
	if st.N != 3 || st.UnderCount != 1 {
		t.Errorf("stats = %+v", st)
	}
	if math.Abs(st.Mean-2.0/3) > 1e-12 {
		t.Errorf("mean = %g", st.Mean)
	}
	if st.MaxOver != 3 || st.MaxUnder != -2 {
		t.Errorf("max over/under = %g/%g", st.MaxOver, st.MaxUnder)
	}
	if math.Abs(st.MAE-2) > 1e-12 {
		t.Errorf("mae = %g", st.MAE)
	}
	empty := ComputeErrorStats(nil)
	if empty.N != 0 {
		t.Errorf("empty stats n = %d", empty.N)
	}
	if len(st.String()) == 0 {
		t.Error("String empty")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 4 {
		t.Errorf("extremes wrong")
	}
	if got := Quantile(xs, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("median = %g, want 2.5", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	// Original slice untouched.
	if xs[0] != 4 {
		t.Error("Quantile mutated input")
	}
}

// Property: Fit never produces NaN/Inf coefficients on well-formed
// random data.
func TestFitFiniteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		X, y := synth(rng, 50, 1.0)
		m, err := Fit(X, y, Options{Alpha: 10, Gamma: 1e-3, MaxIter: 500})
		if err != nil {
			return false
		}
		if math.IsNaN(m.Intercept) || math.IsInf(m.Intercept, 0) {
			return false
		}
		for _, c := range m.Coef {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
