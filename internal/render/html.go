package render

import (
	"fmt"
	"html"
	"io"
	"strings"
	"time"
)

// HTMLPage builds a self-contained HTML report: inline CSS, inline
// SVG charts, no external assets, no scripts, no timestamps — the
// same bytes for the same inputs, so reports diff cleanly and the
// replay determinism check can compare them byte-for-byte.
type HTMLPage struct {
	Title string
	// RefreshSec > 0 emits a <meta http-equiv="refresh"> so a live page
	// (dvfsd's /debug/dash) re-polls itself without any script. Leave 0
	// for static reports, which must stay byte-deterministic.
	RefreshSec int
	body       strings.Builder
}

// NewHTMLPage starts a page.
func NewHTMLPage(title string) *HTMLPage {
	return &HTMLPage{Title: title}
}

// Section opens a titled section.
func (p *HTMLPage) Section(title string) {
	fmt.Fprintf(&p.body, "<h2>%s</h2>\n", html.EscapeString(title))
}

// Para adds a paragraph of escaped text.
func (p *HTMLPage) Para(text string) {
	fmt.Fprintf(&p.body, "<p>%s</p>\n", html.EscapeString(text))
}

// Note adds a highlighted aside (approximation warnings, drift notes).
func (p *HTMLPage) Note(text string) {
	fmt.Fprintf(&p.body, "<p class=\"note\">%s</p>\n", html.EscapeString(text))
}

// Table adds a table; header and every row are escaped. Cells whose
// content parses as right-alignable (numbers with optional %/J/ms
// suffixes) are styled by class "num" when num[i] is true.
func (p *HTMLPage) Table(header []string, rows [][]string, num []bool) {
	p.body.WriteString("<table>\n<tr>")
	for i, h := range header {
		cls := ""
		if i < len(num) && num[i] {
			cls = " class=\"num\""
		}
		fmt.Fprintf(&p.body, "<th%s>%s</th>", cls, html.EscapeString(h))
	}
	p.body.WriteString("</tr>\n")
	for _, row := range rows {
		p.body.WriteString("<tr>")
		for i, c := range row {
			cls := ""
			if i < len(num) && num[i] {
				cls = " class=\"num\""
			}
			fmt.Fprintf(&p.body, "<td%s>%s</td>", cls, html.EscapeString(c))
		}
		p.body.WriteString("</tr>\n")
	}
	p.body.WriteString("</table>\n")
}

// BarChart draws a horizontal bar chart as inline SVG: one row per
// label, bars scaled to the maximum value. Values render with the
// given format suffix (e.g. "%.1f%%").
func (p *HTMLPage) BarChart(title string, labels []string, values []float64, format string) {
	if len(labels) == 0 || len(labels) != len(values) {
		return
	}
	maxV := 0.0
	for _, v := range values {
		if v > maxV {
			maxV = v
		}
	}
	const (
		rowH   = 22
		labelW = 170
		chartW = 420
		valueW = 90
		barH   = 14
	)
	w := labelW + chartW + valueW
	h := rowH * len(labels)
	fmt.Fprintf(&p.body, "<h3>%s</h3>\n", html.EscapeString(title))
	fmt.Fprintf(&p.body, "<svg width=\"%d\" height=\"%d\" role=\"img\">\n", w, h)
	for i, v := range values {
		y := i * rowH
		bw := 0.0
		if maxV > 0 {
			bw = v / maxV * chartW
		}
		fmt.Fprintf(&p.body, "<text x=\"%d\" y=\"%d\" class=\"lbl\">%s</text>",
			labelW-6, y+barH, html.EscapeString(labels[i]))
		fmt.Fprintf(&p.body, "<rect x=\"%d\" y=\"%d\" width=\"%.1f\" height=\"%d\" class=\"bar\"/>",
			labelW, y+barH-12, bw, barH)
		fmt.Fprintf(&p.body, "<text x=\"%.1f\" y=\"%d\" class=\"val\">"+format+"</text>\n",
			float64(labelW)+bw+6, y+barH, v)
	}
	p.body.WriteString("</svg>\n")
}

// Sparkline draws a compact inline-SVG time series: values in order,
// scaled to their own min/max, with the latest value printed after the
// line. Made for the dashboard's rolling windows (miss rate, phase
// latency) where shape matters more than axes. Non-finite inputs and
// empty series render nothing.
func (p *HTMLPage) Sparkline(title string, values []float64, format string) {
	if len(values) == 0 {
		return
	}
	minV, maxV := values[0], values[0]
	for _, v := range values {
		if v != v || v > 1e300 || v < -1e300 {
			return
		}
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	const (
		w    = 240
		h    = 36
		padY = 4.0
	)
	span := maxV - minV
	fmt.Fprintf(&p.body, "<div class=\"spark\"><span class=\"lbl\">%s</span>",
		html.EscapeString(title))
	fmt.Fprintf(&p.body, "<svg width=\"%d\" height=\"%d\" role=\"img\"><polyline class=\"line\" points=\"", w, h)
	for i, v := range values {
		x := 0.0
		if len(values) > 1 {
			x = float64(i) / float64(len(values)-1) * float64(w-2)
		}
		frac := 0.5
		if span > 0 {
			frac = (v - minV) / span
		}
		y := padY + (1-frac)*(float64(h)-2*padY)
		sep := " "
		if i == 0 {
			sep = ""
		}
		fmt.Fprintf(&p.body, "%s%.1f,%.1f", sep, x+1, y)
	}
	p.body.WriteString("\"/></svg>")
	fmt.Fprintf(&p.body, "<span class=\"val\">"+format+"</span></div>\n", values[len(values)-1])
}

// NavLinks renders a row of links (the dashboards' history-window
// selector). Each item is {href, text}; an item with an empty href is
// the current selection and renders as plain emphasized text.
func (p *HTMLPage) NavLinks(items [][2]string) {
	p.body.WriteString("<p class=\"nav\">")
	for i, it := range items {
		if i > 0 {
			p.body.WriteString(" · ")
		}
		if it[0] == "" {
			fmt.Fprintf(&p.body, "<strong>%s</strong>", html.EscapeString(it[1]))
		} else {
			fmt.Fprintf(&p.body, "<a href=\"%s\">%s</a>",
				html.EscapeString(it[0]), html.EscapeString(it[1]))
		}
	}
	p.body.WriteString("</p>\n")
}

// TimeSeries draws an axis-labeled inline-SVG line chart — the
// long-horizon sibling of Sparkline, made for telemetry history where
// the time span matters as much as the shape. X carries the first,
// middle, and last sample timestamps (UTC, HH:MM:SS); Y carries the
// min/mid/max with gridlines; the latest value renders after the
// title. timesMs are Unix milliseconds and must be in order. Pairs
// with a non-finite value are skipped; empty or mismatched input
// renders nothing.
func (p *HTMLPage) TimeSeries(title string, timesMs []int64, vals []float64, format string) {
	p.TimeSeriesSpans(title, timesMs, vals, format, nil)
}

// ChartSpan is one highlighted time interval on a TimeSeriesSpans
// chart — the dashboards shade alert firing windows with these. Label
// becomes the rect's SVG tooltip.
type ChartSpan struct {
	FromMs, ToMs int64
	Label        string
}

// TimeSeriesSpans is TimeSeries with shaded interval overlays behind
// the line: each span renders as a translucent rect clipped to the
// charted time range, so an alert's firing window reads directly on
// the metric that tripped it.
func (p *HTMLPage) TimeSeriesSpans(title string, timesMs []int64, vals []float64, format string, spans []ChartSpan) {
	if len(timesMs) == 0 || len(timesMs) != len(vals) {
		return
	}
	type pt struct {
		t int64
		v float64
	}
	pts := make([]pt, 0, len(vals))
	for i, v := range vals {
		if v != v || v > 1e300 || v < -1e300 {
			continue
		}
		pts = append(pts, pt{timesMs[i], v})
	}
	if len(pts) == 0 {
		return
	}
	minT, maxT := pts[0].t, pts[len(pts)-1].t
	minV, maxV := pts[0].v, pts[0].v
	for _, q := range pts {
		if q.v < minV {
			minV = q.v
		}
		if q.v > maxV {
			maxV = q.v
		}
	}
	const (
		leftW  = 64 // y-axis label gutter
		chartW = 480
		chartH = 96
		botH   = 16 // x-axis label strip
		padY   = 4.0
	)
	w := leftW + chartW + 4
	h := chartH + botH
	spanT := float64(maxT - minT)
	spanV := maxV - minV
	x := func(t int64) float64 {
		if spanT <= 0 {
			return leftW + float64(chartW)/2
		}
		return leftW + float64(t-minT)/spanT*float64(chartW-2) + 1
	}
	y := func(v float64) float64 {
		frac := 0.5
		if spanV > 0 {
			frac = (v - minV) / spanV
		}
		return padY + (1-frac)*(chartH-2*padY)
	}
	stamp := func(t int64) string {
		return time.UnixMilli(t).UTC().Format("15:04:05")
	}
	fmt.Fprintf(&p.body, "<div class=\"tschart\"><h3>%s <span class=\"val\">"+format+"</span></h3>\n",
		html.EscapeString(title), pts[len(pts)-1].v)
	fmt.Fprintf(&p.body, "<svg width=\"%d\" height=\"%d\" role=\"img\">\n", w, h)
	// Gridlines + y labels at max, mid, min.
	for _, gv := range []float64{maxV, minV + spanV/2, minV} {
		gy := y(gv)
		fmt.Fprintf(&p.body, "<line x1=\"%d\" y1=\"%.1f\" x2=\"%d\" y2=\"%.1f\" class=\"grid\"/>",
			leftW, gy, leftW+chartW, gy)
		fmt.Fprintf(&p.body, "<text x=\"%d\" y=\"%.1f\" class=\"axis yl\">%.4g</text>\n",
			leftW-6, gy+3, gv)
	}
	// X labels: first, middle, last sample timestamps (UTC).
	fmt.Fprintf(&p.body, "<text x=\"%d\" y=\"%d\" class=\"axis\">%s</text>", leftW, h-3, stamp(minT))
	if spanT > 0 {
		fmt.Fprintf(&p.body, "<text x=\"%d\" y=\"%d\" class=\"axis xm\">%s</text>",
			leftW+chartW/2, h-3, stamp(minT+(maxT-minT)/2))
		fmt.Fprintf(&p.body, "<text x=\"%d\" y=\"%d\" class=\"axis xr\">%s</text>",
			leftW+chartW, h-3, stamp(maxT))
	}
	// Firing-window overlays go under the line so the data stays
	// legible on top of them.
	for _, sp := range spans {
		from, to := sp.FromMs, sp.ToMs
		if to < minT || from > maxT || to < from {
			continue
		}
		if from < minT {
			from = minT
		}
		if to > maxT {
			to = maxT
		}
		x0, x1 := x(from), x(to)
		if x1-x0 < 2 {
			x1 = x0 + 2 // a short incident must still be visible
		}
		fmt.Fprintf(&p.body, "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" class=\"firing\">",
			x0, padY, x1-x0, float64(chartH)-2*padY)
		if sp.Label != "" {
			fmt.Fprintf(&p.body, "<title>%s</title>", html.EscapeString(sp.Label))
		}
		p.body.WriteString("</rect>\n")
	}
	p.body.WriteString("\n<polyline class=\"line\" points=\"")
	for i, q := range pts {
		if i > 0 {
			p.body.WriteString(" ")
		}
		fmt.Fprintf(&p.body, "%.1f,%.1f", x(q.t), y(q.v))
	}
	p.body.WriteString("\"/></svg></div>\n")
}

// Band draws a quantile-band sparkline: a shaded region between the lo
// and hi series with the mid series as a line — the fleet dashboard's
// view of a distribution over time (e.g. residual p50–p99 with a p95
// line). All three series must be the same length; the latest mid
// value is printed after the chart. Non-finite inputs and empty or
// mismatched series render nothing.
func (p *HTMLPage) Band(title string, lo, mid, hi []float64, format string) {
	n := len(mid)
	if n == 0 || len(lo) != n || len(hi) != n {
		return
	}
	minV, maxV := lo[0], hi[0]
	for i := 0; i < n; i++ {
		for _, v := range [3]float64{lo[i], mid[i], hi[i]} {
			if v != v || v > 1e300 || v < -1e300 {
				return
			}
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
	}
	const (
		w    = 240
		h    = 36
		padY = 4.0
	)
	span := maxV - minV
	pt := func(i int, v float64) (float64, float64) {
		x := 0.0
		if n > 1 {
			x = float64(i) / float64(n-1) * float64(w-2)
		}
		frac := 0.5
		if span > 0 {
			frac = (v - minV) / span
		}
		return x + 1, padY + (1-frac)*(float64(h)-2*padY)
	}
	fmt.Fprintf(&p.body, "<div class=\"spark\"><span class=\"lbl\">%s</span>",
		html.EscapeString(title))
	fmt.Fprintf(&p.body, "<svg width=\"%d\" height=\"%d\" role=\"img\"><polygon class=\"band\" points=\"", w, h)
	// The band polygon walks lo left→right then hi right→left.
	for i := 0; i < n; i++ {
		x, y := pt(i, lo[i])
		if i > 0 {
			p.body.WriteString(" ")
		}
		fmt.Fprintf(&p.body, "%.1f,%.1f", x, y)
	}
	for i := n - 1; i >= 0; i-- {
		x, y := pt(i, hi[i])
		fmt.Fprintf(&p.body, " %.1f,%.1f", x, y)
	}
	p.body.WriteString("\"/><polyline class=\"line\" points=\"")
	for i := 0; i < n; i++ {
		x, y := pt(i, mid[i])
		if i > 0 {
			p.body.WriteString(" ")
		}
		fmt.Fprintf(&p.body, "%.1f,%.1f", x, y)
	}
	p.body.WriteString("\"/></svg>")
	fmt.Fprintf(&p.body, "<span class=\"val\">"+format+"</span></div>\n", mid[n-1])
}

// WriteTo renders the complete document.
func (p *HTMLPage) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	if p.RefreshSec > 0 {
		fmt.Fprintf(&b, "<meta http-equiv=\"refresh\" content=\"%d\">\n", p.RefreshSec)
	}
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(p.Title))
	b.WriteString(`<style>
body { font: 14px/1.45 system-ui, sans-serif; margin: 2rem auto; max-width: 64rem; color: #222; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.15rem; margin-top: 2rem; border-bottom: 1px solid #ddd; }
h3 { font-size: 1rem; margin-bottom: .3rem; }
table { border-collapse: collapse; margin: .6rem 0 1rem; }
th, td { padding: .25rem .7rem; border-bottom: 1px solid #eee; text-align: left; }
th { border-bottom: 1px solid #999; }
th.num, td.num { text-align: right; font-variant-numeric: tabular-nums; }
p.note { background: #fff6d9; border-left: 3px solid #e0b400; padding: .4rem .7rem; }
svg .bar { fill: #4a78b5; } svg .lbl { text-anchor: end; font-size: 12px; fill: #222; }
svg .val { font-size: 12px; fill: #444; }
div.spark { display: flex; align-items: center; gap: .6rem; margin: .2rem 0; }
div.spark .lbl { width: 11rem; text-align: right; font-size: 12px; color: #222; }
div.spark .val { font-size: 12px; color: #444; font-variant-numeric: tabular-nums; }
div.spark svg { background: #f7f8fa; border: 1px solid #eee; }
svg .line { fill: none; stroke: #4a78b5; stroke-width: 1.5; }
svg .band { fill: #4a78b5; opacity: .22; stroke: none; }
p.nav { font-size: 13px; color: #666; }
div.tschart { margin: .4rem 0 .8rem; }
div.tschart h3 { margin: .2rem 0; }
div.tschart svg { background: #f7f8fa; border: 1px solid #eee; }
svg .grid { stroke: #e4e7eb; stroke-width: 1; }
svg .firing { fill: #d9534f; opacity: .15; stroke: none; }
svg .axis { font-size: 10px; fill: #667; text-anchor: start; }
svg .axis.yl { text-anchor: end; }
svg .axis.xm { text-anchor: middle; }
svg .axis.xr { text-anchor: end; }
</style>
</head>
<body>
`)
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(p.Title))
	b.WriteString(p.body.String())
	b.WriteString("</body>\n</html>\n")
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}
