package render

import (
	"strings"
	"testing"
)

func TestHTMLPageEscapesAndStructure(t *testing.T) {
	p := NewHTMLPage("Report <x>")
	p.Section("Group a & b")
	p.Para("plain text")
	p.Note("approx: <script>alert(1)</script>")
	p.Table([]string{"policy", "energy"}, [][]string{{"oracle", "1.2 J"}}, []bool{false, true})
	p.BarChart("norm energy", []string{"oracle", "perf"}, []float64{56.1, 100}, "%.1f%%")

	var b strings.Builder
	if _, err := p.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"<title>Report &lt;x&gt;</title>",
		"<h2>Group a &amp; b</h2>",
		"<td class=\"num\">1.2 J</td>",
		"<svg",
		"100.0%",
		"</html>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	// Hostile content must never reach the document unescaped.
	if strings.Contains(out, "<script>") {
		t.Error("unescaped script tag in output")
	}
	// Deterministic: same calls, same bytes.
	var b2 strings.Builder
	p2 := NewHTMLPage("Report <x>")
	p2.Section("Group a & b")
	p2.Para("plain text")
	p2.Note("approx: <script>alert(1)</script>")
	p2.Table([]string{"policy", "energy"}, [][]string{{"oracle", "1.2 J"}}, []bool{false, true})
	p2.BarChart("norm energy", []string{"oracle", "perf"}, []float64{56.1, 100}, "%.1f%%")
	p2.WriteTo(&b2)
	if b.String() != b2.String() {
		t.Error("identical pages rendered different bytes")
	}
}

func TestHTMLPageSparklineAndRefresh(t *testing.T) {
	p := NewHTMLPage("live")
	p.RefreshSec = 5
	p.Sparkline("miss rate", []float64{0, 1, 0.5, 2}, "%.1f%%")
	var b strings.Builder
	p.WriteTo(&b)
	out := b.String()
	for _, want := range []string{
		`<meta http-equiv="refresh" content="5">`,
		"polyline",
		"miss rate",
		"2.0%", // latest value printed after the line
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}

	// Static pages (RefreshSec = 0) must not carry the meta tag — the
	// replay determinism check diffs report bytes.
	p2 := NewHTMLPage("static")
	p2.Sparkline("flat", []float64{3, 3, 3}, "%.0f")
	var b2 strings.Builder
	p2.WriteTo(&b2)
	if strings.Contains(b2.String(), "http-equiv") {
		t.Error("refresh meta on a static page")
	}
	// A flat series still draws (mid-height line), and degenerate
	// inputs render nothing.
	if !strings.Contains(b2.String(), "polyline") {
		t.Error("flat sparkline rendered nothing")
	}
	p3 := NewHTMLPage("bad")
	p3.Sparkline("empty", nil, "%.0f")
	p3.Sparkline("nan", []float64{1, inf()}, "%.0f")
	var b3 strings.Builder
	p3.WriteTo(&b3)
	if strings.Contains(b3.String(), "polyline") {
		t.Error("degenerate sparkline inputs should render nothing")
	}
}

func inf() float64 { x := 0.0; return 1 / x }

func TestHTMLPageBand(t *testing.T) {
	p := NewHTMLPage("fleet")
	lo := []float64{0.01, 0.02, 0.015}
	mid := []float64{0.05, 0.06, 0.055}
	hi := []float64{0.09, 0.11, 0.10}
	p.Band("residual p50–p99", lo, mid, hi, "%.3f")
	var b strings.Builder
	p.WriteTo(&b)
	out := b.String()
	for _, want := range []string{
		"polygon",          // the shaded band
		`class="band"`,     //
		"polyline",         // the mid line
		"residual p50–p99", //
		"0.055",            // latest mid value printed
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}

	// Degenerate inputs render nothing.
	p2 := NewHTMLPage("bad")
	p2.Band("empty", nil, nil, nil, "%.0f")
	p2.Band("mismatched", []float64{1}, []float64{1, 2}, []float64{1, 2}, "%.0f")
	p2.Band("nan", []float64{1}, []float64{inf()}, []float64{2}, "%.0f")
	var b2 strings.Builder
	p2.WriteTo(&b2)
	if strings.Contains(b2.String(), "polygon") {
		t.Error("degenerate band inputs should render nothing")
	}

	// Deterministic bytes.
	p3 := NewHTMLPage("fleet")
	p3.Band("residual p50–p99", lo, mid, hi, "%.3f")
	var b3 strings.Builder
	p3.WriteTo(&b3)
	if b.String() != b3.String() {
		t.Error("identical bands rendered different bytes")
	}
}

func TestHTMLPageEmptyBarChart(t *testing.T) {
	p := NewHTMLPage("t")
	p.BarChart("empty", nil, nil, "%.0f")
	p.BarChart("mismatched", []string{"a"}, []float64{1, 2}, "%.0f")
	var b strings.Builder
	p.WriteTo(&b)
	if strings.Contains(b.String(), "<svg") {
		t.Error("degenerate chart inputs should render nothing")
	}
}
