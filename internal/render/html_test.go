package render

import (
	"strings"
	"testing"
)

func TestHTMLPageEscapesAndStructure(t *testing.T) {
	p := NewHTMLPage("Report <x>")
	p.Section("Group a & b")
	p.Para("plain text")
	p.Note("approx: <script>alert(1)</script>")
	p.Table([]string{"policy", "energy"}, [][]string{{"oracle", "1.2 J"}}, []bool{false, true})
	p.BarChart("norm energy", []string{"oracle", "perf"}, []float64{56.1, 100}, "%.1f%%")

	var b strings.Builder
	if _, err := p.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"<title>Report &lt;x&gt;</title>",
		"<h2>Group a &amp; b</h2>",
		"<td class=\"num\">1.2 J</td>",
		"<svg",
		"100.0%",
		"</html>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	// Hostile content must never reach the document unescaped.
	if strings.Contains(out, "<script>") {
		t.Error("unescaped script tag in output")
	}
	// Deterministic: same calls, same bytes.
	var b2 strings.Builder
	p2 := NewHTMLPage("Report <x>")
	p2.Section("Group a & b")
	p2.Para("plain text")
	p2.Note("approx: <script>alert(1)</script>")
	p2.Table([]string{"policy", "energy"}, [][]string{{"oracle", "1.2 J"}}, []bool{false, true})
	p2.BarChart("norm energy", []string{"oracle", "perf"}, []float64{56.1, 100}, "%.1f%%")
	p2.WriteTo(&b2)
	if b.String() != b2.String() {
		t.Error("identical pages rendered different bytes")
	}
}

func TestHTMLPageEmptyBarChart(t *testing.T) {
	p := NewHTMLPage("t")
	p.BarChart("empty", nil, nil, "%.0f")
	p.BarChart("mismatched", []string{"a"}, []float64{1, 2}, "%.0f")
	var b strings.Builder
	p.WriteTo(&b)
	if strings.Contains(b.String(), "<svg") {
		t.Error("degenerate chart inputs should render nothing")
	}
}
