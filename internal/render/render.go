// Package render formats experiment results as the text equivalents of
// the paper's tables and figures: aligned tables for Table 2 and the
// bar-chart figures, ASCII series for the time-series figures, and a
// compact heat map for the switch-time matrix.
package render

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/experiments"
)

// short abbreviates a governor name to at most four characters for
// column headers.
func short(g string) string {
	if len(g) > 4 {
		return g[:4]
	}
	return g
}

// Table2 renders the benchmark characteristics table.
func Table2(rows []experiments.Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: job execution time statistics at maximum frequency [ms]\n")
	fmt.Fprintf(&b, "%-13s %-36s %8s %8s %8s   %s\n", "benchmark", "task", "min", "avg", "max", "paper(min/avg/max)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %-36s %8.2f %8.2f %8.2f   %.2f / %.2f / %.2f\n",
			r.Benchmark, r.Task, r.MinMS, r.AvgMS, r.MaxMS, r.PaperMin, r.PaperAvg, r.PaperMax)
	}
	return b.String()
}

// Series renders an ASCII strip chart of ys (one column per sample,
// `height` rows), labeled with its min/max.
func Series(title string, ys []float64, width, height int) string {
	if len(ys) == 0 {
		return title + ": (empty)\n"
	}
	// Downsample to width columns by averaging.
	cols := make([]float64, 0, width)
	step := float64(len(ys)) / float64(width)
	if step < 1 {
		step = 1
	}
	for i := 0.0; int(i) < len(ys) && len(cols) < width; i += step {
		lo := int(i)
		hi := int(i + step)
		if hi > len(ys) {
			hi = len(ys)
		}
		s := 0.0
		for _, v := range ys[lo:hi] {
			s += v
		}
		cols = append(cols, s/float64(hi-lo))
	}
	minV, maxV := cols[0], cols[0]
	for _, v := range cols {
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	span := maxV - minV
	if span == 0 {
		span = 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", len(cols)))
	}
	for c, v := range cols {
		r := int((v - minV) / span * float64(height-1))
		grid[height-1-r][c] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (min %.2f, max %.2f)\n", title, minV, maxV)
	for r, line := range grid {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%7.1f ", maxV)
		}
		if r == height-1 {
			label = fmt.Sprintf("%7.1f ", minV)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(line))
	}
	return b.String()
}

// Fig15 renders normalized energy and misses per governor.
func Fig15(rows []experiments.Fig15Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 15: normalized energy [%%] and deadline misses [%%] (50 ms budget; 4 s pocketsphinx)\n")
	fmt.Fprintf(&b, "%-13s %28s   %28s\n", "", "energy (perf/inter/pid/pred)", "misses (perf/inter/pid/pred)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %6.1f %6.1f %6.1f %6.1f   %6.1f %6.1f %6.1f %6.1f\n",
			r.Benchmark,
			r.EnergyPct["performance"], r.EnergyPct["interactive"], r.EnergyPct["pid"], r.EnergyPct["prediction"],
			r.MissPct["performance"], r.MissPct["interactive"], r.MissPct["pid"], r.MissPct["prediction"])
	}
	return b.String()
}

// Fig16 renders one benchmark's budget sweep.
func Fig16(sw *experiments.Fig16Sweep) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 16 (%s): normalized budget sweep\n", sw.Benchmark)
	fmt.Fprintf(&b, "%-8s", "budget")
	for _, g := range experiments.GovernorNames {
		fmt.Fprintf(&b, " %11s", "E:"+short(g))
	}
	for _, g := range experiments.GovernorNames {
		fmt.Fprintf(&b, " %11s", "M:"+short(g))
	}
	fmt.Fprintln(&b)
	for i, f := range sw.NormBudgets {
		fmt.Fprintf(&b, "%-8.1f", f)
		for _, g := range experiments.GovernorNames {
			fmt.Fprintf(&b, " %11.1f", sw.EnergyPct[g][i])
		}
		for _, g := range experiments.GovernorNames {
			fmt.Fprintf(&b, " %11.1f", sw.MissPct[g][i])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Fig17 renders predictor and switch overheads.
func Fig17(rows []experiments.Fig17Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 17: average predictor and DVFS switching time per job [ms]\n")
	fmt.Fprintf(&b, "%-13s %10s %10s %12s\n", "benchmark", "predictor", "dvfs", "pred+dvfs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %10.2f %10.2f %12.2f\n",
			r.Benchmark, r.PredictorMS, r.DVFSMS, r.PredictorMS+r.DVFSMS)
	}
	return b.String()
}

// Fig18 renders the overhead-removal ladder.
func Fig18(rows []experiments.Fig18Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 18: normalized energy with overheads removed and oracle prediction [%%]\n")
	fmt.Fprintf(&b, "%-13s %10s %10s %16s %10s\n", "benchmark", "prediction", "w/o dvfs", "w/o pred+dvfs", "oracle")
	for _, r := range rows {
		oracle := "    —"
		if !math.IsNaN(r.OraclePct) {
			oracle = fmt.Sprintf("%10.1f", r.OraclePct)
		}
		fmt.Fprintf(&b, "%-13s %10.1f %10.1f %16.1f %s\n",
			r.Benchmark, r.PredictionPct, r.NoDVFSPct, r.NoPredDVFSPct, oracle)
	}
	return b.String()
}

// Fig19 renders the prediction-error box plots.
func Fig19(rows []experiments.Fig19Row, sphinx *experiments.Fig19Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 19: prediction error [ms] (positive = over-prediction)\n")
	fmt.Fprintf(&b, "%-13s %9s %9s %9s %9s %9s %9s %8s\n",
		"benchmark", "whiskLo", "q1", "median", "q3", "whiskHi", "mean", "outliers")
	emit := func(r experiments.Fig19Row) {
		fmt.Fprintf(&b, "%-13s %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f %8d\n",
			r.Benchmark, r.Box.WhiskerLo, r.Box.Q1, r.Box.Median, r.Box.Q3, r.Box.WhiskerHi,
			r.MeanMS, r.NumOut)
	}
	for _, r := range rows {
		emit(r)
	}
	if sphinx != nil {
		emit(*sphinx)
	}
	return b.String()
}

// Fig20 renders the under-prediction penalty sweep.
func Fig20(pts []experiments.Fig20Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 20: energy vs misses for under-predict penalty α (ldecode)\n")
	fmt.Fprintf(&b, "%8s %10s %10s\n", "alpha", "energy[%]", "misses[%]")
	for _, p := range pts {
		fmt.Fprintf(&b, "%8.0f %10.1f %10.2f\n", p.Alpha, p.EnergyPct, p.MissPct)
	}
	return b.String()
}

// Fig21 renders the idling study.
func Fig21(rows []experiments.Fig21Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 21: normalized energy with (+idle) and without idling [%%]\n")
	fmt.Fprintf(&b, "%-13s", "benchmark")
	for _, g := range experiments.GovernorNames {
		fmt.Fprintf(&b, " %6s", short(g))
	}
	for _, g := range experiments.GovernorNames {
		fmt.Fprintf(&b, " %6s", short(g)+"+i")
	}
	fmt.Fprintln(&b)
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s", r.Benchmark)
		for _, g := range experiments.GovernorNames {
			fmt.Fprintf(&b, " %6.1f", r.EnergyPct[g])
		}
		for _, g := range experiments.GovernorNames {
			fmt.Fprintf(&b, " %6.1f", r.IdleEnergyPct[g])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Fig11 renders the switch-time matrix as a compact table (µs).
func Fig11(tbl *experiments.Fig11Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 11: 95th-percentile DVFS switching times [µs] (rows: from, cols: to)\n")
	fmt.Fprintf(&b, "%8s", "MHz")
	for _, f := range tbl.FreqMHz {
		fmt.Fprintf(&b, " %6.0f", f)
	}
	fmt.Fprintln(&b)
	for i, f := range tbl.FreqMHz {
		fmt.Fprintf(&b, "%8.0f", f)
		for j := range tbl.FreqMHz {
			fmt.Fprintf(&b, " %6.0f", tbl.P95US[i][j])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Fig9 renders the time-vs-1/f linearity check.
func Fig9(pts []experiments.Fig9Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 9: average ldecode job time vs 1/frequency\n")
	fmt.Fprintf(&b, "%8s %10s %10s\n", "MHz", "1/f [ns]", "avg [ms]")
	for _, p := range pts {
		fmt.Fprintf(&b, "%8.0f %10.2f %10.2f\n", p.FreqMHz, p.InvFreqNS, p.AvgMS)
	}
	return b.String()
}

// Fig3 renders the PID-lag comparison over a window of jobs.
func Fig3(s *experiments.Fig3Series, window int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 3: actual vs PID-expected job time [ms] (lag correlation %+.3f)\n", s.LagCorrelation)
	fmt.Fprintf(&b, "%6s %10s %10s\n", "job", "actual", "expected")
	n := len(s.JobIndex)
	if window > n {
		window = n
	}
	for i := 0; i < window; i++ {
		fmt.Fprintf(&b, "%6d %10.2f %10.2f\n", s.JobIndex[i], s.ActualMS[i], s.ExpectedMS[i])
	}
	return b.String()
}

// XPlat renders the cross-platform feature-selection comparison.
func XPlat(rows []experiments.XPlatRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§4.2: feature selection across platforms (ARM vs x86)\n")
	fmt.Fprintf(&b, "%-13s %-8s %8s   %s\n", "benchmark", "relation", "jaccard", "ARM features")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %-8s %8.2f   %s\n",
			r.Benchmark, r.Relation, r.Jaccard, strings.Join(r.ARMFeatures, ", "))
	}
	return b.String()
}

// AblationMargin renders the prediction-margin sweep.
func AblationMargin(pts []experiments.MarginPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: prediction safety margin (ldecode)\n")
	fmt.Fprintf(&b, "%8s %10s %10s\n", "margin", "energy[%]", "misses[%]")
	for _, p := range pts {
		fmt.Fprintf(&b, "%8.2f %10.1f %10.2f\n", p.Margin, p.EnergyPct, p.MissPct)
	}
	return b.String()
}

// AblationSwitchTable renders the p95-vs-mean switch-table comparison.
func AblationSwitchTable(rows []experiments.SwitchTableResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: switch-time estimate in the selector (ldecode)\n")
	fmt.Fprintf(&b, "%8s %10s %10s\n", "table", "energy[%]", "misses[%]")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8s %10.1f %10.2f\n", r.Table, r.EnergyPct, r.MissPct)
	}
	return b.String()
}

// AblationSlice renders the Lasso slice-reduction comparison.
func AblationSlice(rows []experiments.SliceAblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: Lasso feature selection vs keeping all features\n")
	fmt.Fprintf(&b, "%-13s %12s %12s %14s %14s\n",
		"benchmark", "lassoStmts", "fullStmts", "lassoPred[ms]", "fullPred[ms]")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %12d %12d %14.3f %14.3f\n",
			r.Benchmark, r.LassoStmts, r.FullStmts, r.LassoPredMS, r.FullPredMS)
	}
	return b.String()
}

// Placement renders the §4.3 predictor-placement comparison.
func Placement(rows []experiments.PlacementRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§4.3: predictor placement at tight budgets (1.0× max job time)\n")
	fmt.Fprintf(&b, "%-13s %-6s %27s   %27s\n", "", "ahead?", "energy (seq/pipe/par)", "misses (seq/pipe/par)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %-6t %8.1f %8.1f %8.1f   %8.1f %8.1f %8.1f\n",
			r.Benchmark, r.KnownAhead,
			r.EnergyPct["sequential"], r.EnergyPct["pipelined"], r.EnergyPct["parallel"],
			r.MissPct["sequential"], r.MissPct["pipelined"], r.MissPct["parallel"])
	}
	return b.String()
}

// Batch renders the §7 batched-prediction amortization study.
func Batch(pts []experiments.BatchPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§7: batched prediction for millisecond budgets (2048, 1.0× max job time)\n")
	fmt.Fprintf(&b, "%8s %10s %10s\n", "K", "energy[%]", "misses[%]")
	for _, p := range pts {
		fmt.Fprintf(&b, "%8d %10.1f %10.2f\n", p.K, p.EnergyPct, p.MissPct)
	}
	return b.String()
}

// Hetero renders the §3.5 heterogeneous-cores study.
func Hetero(pts []experiments.HeteroPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§3.5: heterogeneous big.LITTLE operating points (ldecode)\n")
	fmt.Fprintf(&b, "%8s %12s %10s %12s %10s %12s %10s %10s\n",
		"budget", "A7 E[%]", "A7 M[%]", "bL E[%]", "bL M[%]", "bL+EA E[%]", "EA M[%]", "A15 share")
	for _, p := range pts {
		fmt.Fprintf(&b, "%8.1f %12.1f %10.1f %12.1f %10.1f %12.1f %10.1f %9.0f%%\n",
			p.NormBudget, p.A7EnergyPct, p.A7MissPct, p.BigEnergyPct, p.BigMissPct,
			p.EAEnergyPct, p.EAMissPct, 100*p.A15Share)
	}
	return b.String()
}

// Hints renders the §3.5 programmer-hint study.
func Hints(rows []experiments.HintsRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§3.5: programmer hint features (value-dependent cost benchmarks)\n")
	fmt.Fprintf(&b, "%-13s %10s %10s %9s %9s %10s %10s\n",
		"benchmark", "E base", "E hints", "M base", "M hints", "mae base", "mae hints")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %9.1f%% %9.1f%% %8.1f%% %8.1f%% %8.2fms %8.2fms\n",
			r.Benchmark, r.BaseEnergyPct, r.HintEnergyPct,
			r.BaseMissPct, r.HintMissPct, r.BaseMAEms, r.HintMAEms)
	}
	return b.String()
}

// OverheadCap renders the predictor-time-cap sweep.
func OverheadCap(pts []experiments.OverheadCapPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§3.5: overhead-aware feature selection (pocketsphinx)\n")
	fmt.Fprintf(&b, "%10s %12s %10s %10s %10s\n", "cap[ms]", "pred[ms]", "features", "energy[%]", "misses[%]")
	for _, p := range pts {
		cap := "   none"
		if p.CapMS > 0 {
			cap = fmt.Sprintf("%7.1f", p.CapMS)
		}
		fmt.Fprintf(&b, "%10s %12.2f %10d %10.1f %10.2f\n",
			cap, p.PredictorMS, p.Features, p.EnergyPct, p.MissPct)
	}
	return b.String()
}

// MultiTask renders the §4.1 multi-task scenario.
func MultiTask(rows []experiments.MultiTaskRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§4.1: two tasks sharing the core (ldecode@10fps + xpilot@20fps)\n")
	fmt.Fprintf(&b, "%-13s %10s %14s %14s\n", "governors", "energy[%]", "ldecode M[%]", "xpilot M[%]")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %10.1f %14.2f %14.2f\n", r.Scenario, r.EnergyPct, r.MissPct[0], r.MissPct[1])
	}
	return b.String()
}

// Quadratic renders the higher-order-model comparison.
func Quadratic(rows []experiments.QuadraticRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§3.5: linear vs quadratic execution-time models\n")
	fmt.Fprintf(&b, "%-13s %10s %10s %10s %10s %8s %8s\n",
		"benchmark", "mae lin", "mae quad", "E lin[%]", "E quad[%]", "M lin", "M quad")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %8.2fms %8.2fms %10.1f %10.1f %7.1f%% %7.1f%%\n",
			r.Benchmark, r.LinearMAEms, r.QuadMAEms,
			r.LinearEnergyPct, r.QuadEnergyPct, r.LinearMissPct, r.QuadMissPct)
	}
	return b.String()
}

// Baselines renders the extended governor sweep.
func Baselines(name string, rows []experiments.BaselineRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extended baselines (%s, paper budget)\n", name)
	fmt.Fprintf(&b, "%-13s %10s %10s\n", "governor", "energy[%]", "misses[%]")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %10.1f %10.2f\n", r.Governor, r.EnergyPct, r.MissPct)
	}
	return b.String()
}

// Static renders §2.2's static-level motivation numbers.
func Static(rows []experiments.StaticRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§2.2: why per-job control — single static levels on ldecode\n")
	fmt.Fprintf(&b, "%-18s %10s %10s %10s\n", "policy", "MHz", "energy[%]", "misses[%]")
	for _, r := range rows {
		mhz := "per-job"
		if r.LevelMHz > 0 {
			mhz = fmt.Sprintf("%.0f", r.LevelMHz)
		}
		fmt.Fprintf(&b, "%-18s %10s %10.1f %10.2f\n", r.Policy, mhz, r.EnergyPct, r.MissPct)
	}
	return b.String()
}

// A15 renders the big-cluster trend check.
func A15(rows []experiments.A15Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§5.1: governor trends on the A15 (big) cluster, ldecode\n")
	fmt.Fprintf(&b, "%-13s %10s %10s %10s\n", "governor", "budget", "energy[%]", "misses[%]")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %8.0fms %10.1f %10.2f\n", r.Governor, r.BudgetMS, r.EnergyPct, r.MissPct)
	}
	return b.String()
}
