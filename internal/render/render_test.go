package render

import (
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func govMap(v float64) map[string]float64 {
	m := map[string]float64{}
	for _, g := range experiments.GovernorNames {
		m[g] = v
	}
	return m
}

func govSlices(v float64, n int) map[string][]float64 {
	m := map[string][]float64{}
	for _, g := range experiments.GovernorNames {
		s := make([]float64, n)
		for i := range s {
			s[i] = v
		}
		m[g] = s
	}
	return m
}

func TestShort(t *testing.T) {
	if short("pid") != "pid" || short("performance") != "perf" {
		t.Errorf("short wrong: %q %q", short("pid"), short("performance"))
	}
}

func TestTable2Render(t *testing.T) {
	out := Table2([]experiments.Table2Row{{
		Benchmark: "ldecode", Task: "Decode one frame",
		MinMS: 6.2, AvgMS: 20.4, MaxMS: 32.5,
		PaperMin: 6.2, PaperAvg: 20.4, PaperMax: 32.5,
	}})
	for _, want := range []string{"ldecode", "20.40", "Decode one frame"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSeriesRender(t *testing.T) {
	ys := make([]float64, 300)
	for i := range ys {
		ys[i] = float64(i % 30)
	}
	out := Series("test", ys, 80, 8)
	if !strings.Contains(out, "test") || !strings.Contains(out, "*") {
		t.Errorf("series render broken:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 9 { // title + 8 rows
		t.Errorf("series has %d lines, want 9", len(lines))
	}
	if Series("empty", nil, 10, 4) == "" {
		t.Error("empty series should still render a line")
	}
	// Constant series must not divide by zero.
	if out := Series("flat", []float64{5, 5, 5}, 10, 4); !strings.Contains(out, "*") {
		t.Errorf("flat series broken:\n%s", out)
	}
}

func TestFig15Render(t *testing.T) {
	out := Fig15([]experiments.Fig15Row{{
		Benchmark: "sha", EnergyPct: govMap(80), MissPct: govMap(1),
	}})
	if !strings.Contains(out, "sha") || !strings.Contains(out, "80.0") {
		t.Errorf("fig15 render broken:\n%s", out)
	}
}

// The "pid" governor name is shorter than the 4-character column
// abbreviation; Fig16/Fig21 headers must not panic on it.
func TestFig16RenderShortNames(t *testing.T) {
	sw := &experiments.Fig16Sweep{
		Benchmark:   "sha",
		NormBudgets: []float64{0.6, 1.0},
		EnergyPct:   govSlices(50, 2),
		MissPct:     govSlices(0, 2),
	}
	out := Fig16(sw)
	if !strings.Contains(out, "E:pid") || !strings.Contains(out, "M:perf") {
		t.Errorf("fig16 headers broken:\n%s", out)
	}
}

func TestFig17Render(t *testing.T) {
	out := Fig17([]experiments.Fig17Row{{Benchmark: "uzbl", PredictorMS: 0.5, DVFSMS: 0.3}})
	if !strings.Contains(out, "uzbl") || !strings.Contains(out, "0.80") {
		t.Errorf("fig17 render broken:\n%s", out)
	}
}

func TestFig18RenderOracleDash(t *testing.T) {
	out := Fig18([]experiments.Fig18Row{
		{Benchmark: "uzbl", PredictionPct: 40, NoDVFSPct: 39, NoPredDVFSPct: 38,
			OraclePct: nan()},
	})
	if !strings.Contains(out, "—") {
		t.Errorf("missing oracle dash:\n%s", out)
	}
}

func nan() float64 {
	v := 0.0
	return v / v
}

func TestFig19Render(t *testing.T) {
	row := experiments.Fig19Row{
		Benchmark: "sha",
		Box:       stats.ComputeBoxPlot([]float64{1, 2, 3, 4, 5}),
		MeanMS:    3,
	}
	out := Fig19([]experiments.Fig19Row{row}, &row)
	if strings.Count(out, "sha") != 2 {
		t.Errorf("fig19 render broken:\n%s", out)
	}
}

func TestFig20Fig21Render(t *testing.T) {
	out := Fig20([]experiments.Fig20Point{{Alpha: 100, EnergyPct: 55, MissPct: 0}})
	if !strings.Contains(out, "100") || !strings.Contains(out, "55.0") {
		t.Errorf("fig20 render broken:\n%s", out)
	}
	out = Fig21([]experiments.Fig21Row{{
		Benchmark: "sha", EnergyPct: govMap(70), IdleEnergyPct: govMap(60),
	}})
	if !strings.Contains(out, "pid+i") || !strings.Contains(out, "60.0") {
		t.Errorf("fig21 render broken:\n%s", out)
	}
}

func TestFig9Fig11Fig3Render(t *testing.T) {
	out := Fig9([]experiments.Fig9Point{{FreqMHz: 200, InvFreqNS: 5, AvgMS: 140}})
	if !strings.Contains(out, "140.00") {
		t.Errorf("fig9 render broken:\n%s", out)
	}
	out = Fig11(&experiments.Fig11Table{
		FreqMHz: []float64{200, 300},
		P95US:   [][]float64{{0, 700}, {710, 0}},
	})
	if !strings.Contains(out, "700") {
		t.Errorf("fig11 render broken:\n%s", out)
	}
	out = Fig3(&experiments.Fig3Series{
		JobIndex: []int{1, 2}, ActualMS: []float64{20, 21}, ExpectedMS: []float64{19, 20},
		LagCorrelation: 0.3,
	}, 5)
	if !strings.Contains(out, "+0.300") {
		t.Errorf("fig3 render broken:\n%s", out)
	}
}

func TestXPlatAndAblationRender(t *testing.T) {
	out := XPlat([]experiments.XPlatRow{{
		Benchmark: "sha", Relation: "same", Jaccard: 1,
		ARMFeatures: []string{"loop#1"}, X86Features: []string{"loop#1"},
	}})
	if !strings.Contains(out, "same") || !strings.Contains(out, "loop#1") {
		t.Errorf("xplat render broken:\n%s", out)
	}
	out = AblationMargin([]experiments.MarginPoint{{Margin: 0.1, EnergyPct: 52, MissPct: 0}})
	if !strings.Contains(out, "0.10") {
		t.Errorf("margin render broken:\n%s", out)
	}
	out = AblationSwitchTable([]experiments.SwitchTableResult{{Table: "p95", EnergyPct: 52, MissPct: 0}})
	if !strings.Contains(out, "p95") {
		t.Errorf("switch-table render broken:\n%s", out)
	}
	out = AblationSlice([]experiments.SliceAblationRow{{
		Benchmark: "sha", LassoStmts: 1, FullStmts: 2, LassoPredMS: 0.1, FullPredMS: 0.2,
	}})
	if !strings.Contains(out, "sha") {
		t.Errorf("slice render broken:\n%s", out)
	}
}

func TestExtensionRenderers(t *testing.T) {
	out := Placement([]experiments.PlacementRow{{
		Benchmark: "sha", KnownAhead: true,
		EnergyPct: map[string]float64{"sequential": 75, "pipelined": 75, "parallel": 75},
		MissPct:   map[string]float64{"sequential": 2, "pipelined": 2, "parallel": 2},
	}})
	if !strings.Contains(out, "sha") || !strings.Contains(out, "75.0") {
		t.Errorf("placement render broken:\n%s", out)
	}
	out = Batch([]experiments.BatchPoint{{K: 4, EnergyPct: 96.6, MissPct: 9}})
	if !strings.Contains(out, "96.6") {
		t.Errorf("batch render broken:\n%s", out)
	}
	out = Hetero([]experiments.HeteroPoint{{
		NormBudget: 0.5, A7EnergyPct: 100, A7MissPct: 100,
		BigEnergyPct: 218, BigMissPct: 1.3, A15Share: 1,
	}})
	if !strings.Contains(out, "218") || !strings.Contains(out, "100%") {
		t.Errorf("hetero render broken:\n%s", out)
	}
	out = Hints([]experiments.HintsRow{{
		Benchmark: "ldecode", BaseEnergyPct: 56, HintEnergyPct: 55,
		BaseMAEms: 4.4, HintMAEms: 3.3,
	}})
	if !strings.Contains(out, "ldecode") || !strings.Contains(out, "3.30ms") {
		t.Errorf("hints render broken:\n%s", out)
	}
	out = OverheadCap([]experiments.OverheadCapPoint{
		{CapMS: 0, PredictorMS: 10.3, Features: 4, EnergyPct: 48},
		{CapMS: 1, PredictorMS: 0.06, Features: 3, EnergyPct: 54},
	})
	if !strings.Contains(out, "none") || !strings.Contains(out, "0.06") {
		t.Errorf("overheadcap render broken:\n%s", out)
	}
	out = MultiTask([]experiments.MultiTaskRow{{
		Scenario: "prediction", EnergyPct: 31, MissPct: []float64{0, 2.25},
	}})
	if !strings.Contains(out, "31.0") || !strings.Contains(out, "2.25") {
		t.Errorf("multitask render broken:\n%s", out)
	}
	out = Quadratic([]experiments.QuadraticRow{{
		Benchmark: "sha", LinearMAEms: 3.4, QuadMAEms: 3.5,
		LinearEnergyPct: 70, QuadEnergyPct: 70,
	}})
	if !strings.Contains(out, "3.40ms") {
		t.Errorf("quadratic render broken:\n%s", out)
	}
	out = Baselines("sha", []experiments.BaselineRow{{Governor: "ondemand", EnergyPct: 89, MissPct: 8}})
	if !strings.Contains(out, "ondemand") || !strings.Contains(out, "89.0") {
		t.Errorf("baselines render broken:\n%s", out)
	}
}
