package replay

import "repro/internal/platform"

const timeEps = 1e-12

// reconstruct rebuilds the energy the traced policy actually spent,
// segment by segment, the way the simulator's meter integrated it:
//
//	idle gap before the job      IdlePower(from-level)   × gap
//	predictor slice              ActivePower(from-level) × predictor time
//	DVFS transition              SwitchPower(from, to)   × measured latency
//	job execution                ActivePower(level)      × measured time
//	final drain to the horizon   IdlePower(last level)   × remainder
//
// For job-triggered governors on the default simulator configuration
// every quantity on the right is recorded in the trace, so the total
// matches sim.Result.EnergyJ to floating-point round-off — the
// cross-validation test asserts within 1%. Where the trace cannot
// carry a segment (inter-job idle-drop switches, mid-job sampling
// transitions) the group's Approx list says so.
func reconstruct(g *group, plat *platform.Platform) Outcome {
	var out Outcome
	var brk Breakdown
	levels := map[int]int{}

	now := 0.0
	last := plat.MaxLevel()
	for _, j := range g.jobs {
		from, err := plat.Level(j.from)
		if err != nil {
			from = plat.MaxLevel()
		}
		lv, err := plat.Level(j.level)
		if err != nil {
			lv = plat.MaxLevel()
		}
		levels[j.level]++

		if gap := j.start - now; gap > timeEps {
			brk.IdleJ += plat.IdlePower(from) * gap
			now = j.start
		}
		if j.predictorSec > 0 {
			brk.PredictorJ += plat.ActivePower(from) * j.predictorSec
			now += j.predictorSec
		}
		sw := j.measSwitchSec
		if sw == 0 && j.level != j.from {
			// Old logs carry only the table estimate; better than
			// pricing the transition at zero.
			sw = j.switchEstSec
		}
		if sw > 0 {
			brk.SwitchJ += plat.SwitchPower(from, lv) * sw
			now += sw
		}
		brk.ExecJ += plat.ActivePower(lv) * j.actual
		now += j.actual
		if j.missed {
			out.Misses++
		}
		last = lv
	}

	// The simulator charges every run the same wall-clock horizon:
	// the last release plus one period.
	if n := len(g.jobs); n > 0 {
		horizon := g.jobs[n-1].release + g.period
		if horizon > now {
			brk.IdleJ += plat.IdlePower(last) * (horizon - now)
			now = horizon
		}
	}

	out.Breakdown = brk
	out.EnergyJ = brk.Total()
	out.DurationSec = now
	if len(g.jobs) > 0 {
		out.MissRate = float64(out.Misses) / float64(len(g.jobs))
	}
	out.Levels = levelOccupancy(levels, len(g.jobs))
	return out
}
