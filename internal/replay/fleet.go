// Fleet-wide counterfactual replay: the same per-job energy
// reconstruction and margin what-ifs as Run, executed per device over
// a fleet trace and aggregated into population distributions. This is
// the question the single-device engine cannot answer: "what does a
// 5% margin cut cost in deadline misses across the fleet?" — the
// answer is a distribution over devices (some devices have headroom,
// some are already missing), not a single delta.
package replay

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/platform"
)

// FleetOptions configures a fleet replay.
type FleetOptions struct {
	// Plat is the fallback platform for events that do not carry a
	// Platform field (single-platform fleets, older traces). Events
	// that name their platform resolve it per device.
	Plat *platform.Platform
	// Seed, Rho, TracedAlpha: as in Options.
	Seed        int64
	Rho         float64
	TracedAlpha float64
	// Margins is the fleet-wide margin sweep; nil → Options' default.
	Margins []float64
	// Workers bounds per-device replay concurrency; zero selects
	// runtime.GOMAXPROCS. The result is byte-identical across worker
	// counts: devices replay in parallel but commit in sorted-ID order
	// (the fleet engine's reorder-buffer pattern), so every float sum
	// and every report byte is fixed by the trace alone.
	Workers int
	// SLO, when non-nil, receives every completed replayed event
	// (obs.SLOTracker.ObserveEvent keying: fleet / platform:* /
	// workload:*), fed in sorted-device order from the commit stage —
	// fleet-level burn tracking over replayed traces.
	SLO *obs.SLOTracker
}

// FleetDeviceResult is one device's replay, reduced to what the fleet
// aggregation needs.
type FleetDeviceResult struct {
	ID        string `json:"id"`
	Platform  string `json:"platform"`
	Workload  string `json:"workload"`
	Jobs      int    `json:"jobs"`
	Predicted int    `json:"predicted"`
	// TracedEnergyJ and TracedMisses reconstruct what the device
	// actually spent — identical to a single-device replay.Run over
	// the same events (the fleet engine calls it).
	TracedEnergyJ float64 `json:"traced_energy_j"`
	TracedMisses  int     `json:"traced_misses"`
	// MarginEnergyJ and MarginMisses align index-for-index with
	// FleetReplayResult.Margins. Devices without predictions replay
	// unchanged at every margin (margins only move predicted jobs).
	MarginEnergyJ []float64 `json:"margin_energy_j"`
	MarginMisses  []int     `json:"margin_misses"`
}

// FleetMarginPoint is one margin setting's fleet-level outcome.
type FleetMarginPoint struct {
	Margin float64 `json:"margin"`
	// EnergyJ and Misses are fleet totals at this margin; MissRate is
	// over all replayed jobs.
	EnergyJ  float64 `json:"energy_j"`
	Misses   int     `json:"misses"`
	MissRate float64 `json:"miss_rate"`
	// DeltaEnergyPct* are quantiles of the per-device energy change vs
	// that device's traced reconstruction, in percent (negative =
	// cheaper than traced).
	DeltaEnergyPctP50 float64 `json:"delta_energy_pct_p50"`
	DeltaEnergyPctP95 float64 `json:"delta_energy_pct_p95"`
	DeltaEnergyPctP99 float64 `json:"delta_energy_pct_p99"`
	// DeltaMissPts is the fleet miss-rate change vs traced, in
	// percentage points.
	DeltaMissPts float64 `json:"delta_miss_pts"`
}

// FleetPlatformResult breaks the traced reconstruction and the margin
// sweep down by platform.
type FleetPlatformResult struct {
	Platform      string  `json:"platform"`
	Devices       int     `json:"devices"`
	Jobs          int     `json:"jobs"`
	TracedEnergyJ float64 `json:"traced_energy_j"`
	TracedMisses  int     `json:"traced_misses"`
	// MarginEnergyJ/MarginMisses align with the fleet Margins.
	MarginEnergyJ []float64 `json:"margin_energy_j"`
	MarginMisses  []int     `json:"margin_misses"`
}

// FleetReplayResult is a fleet-wide counterfactual analysis.
type FleetReplayResult struct {
	Devices int `json:"devices"`
	Events  int `json:"events"`
	Skipped int `json:"skipped"`
	Jobs    int `json:"jobs"`
	// TracedEnergyJ/TracedMisses/TracedMissRate total the per-device
	// reconstructions.
	TracedEnergyJ  float64 `json:"traced_energy_j"`
	TracedMisses   int     `json:"traced_misses"`
	TracedMissRate float64 `json:"traced_miss_rate"`
	// Margins is the sweep, ascending by margin.
	Margins []FleetMarginPoint `json:"margins"`
	// ByPlatform is sorted by platform name.
	ByPlatform []FleetPlatformResult `json:"by_platform"`
	// PerDevice is sorted by device ID.
	PerDevice []FleetDeviceResult `json:"per_device"`
	// SLO is the fleet burn-rate snapshot over the replayed trace
	// (fleet / platform:* / workload:* keys), present when
	// FleetOptions.SLO was set. SLOTarget is that tracker's objective.
	SLO       []obs.SLOStatus `json:"slo,omitempty"`
	SLOTarget float64         `json:"slo_target,omitempty"`
}

// Margin returns the sweep point for the given margin (nil if absent).
func (r *FleetReplayResult) Margin(m float64) *FleetMarginPoint {
	for i := range r.Margins {
		if r.Margins[i].Margin == m {
			return &r.Margins[i]
		}
	}
	return nil
}

// RunFleet replays a fleet trace device by device and aggregates the
// margin sweep into fleet distributions. Events are partitioned by
// their Device field; devices are processed in sorted-ID order, so the
// result is deterministic regardless of trace interleaving. An event
// with no Device is an error — single-device traces belong to Run.
func RunFleet(events []obs.DecisionEvent, opts FleetOptions) (*FleetReplayResult, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("replay: empty fleet trace")
	}
	margins := opts.Margins
	if margins == nil {
		margins = Options{}.withDefaults().Margins
	}

	byDevice := map[string][]obs.DecisionEvent{}
	var ids []string
	for _, e := range events {
		if e.Device == "" {
			return nil, fmt.Errorf("replay: event seq %d has no device ID; not a fleet trace (replay it single-device instead)", e.Seq)
		}
		if _, ok := byDevice[e.Device]; !ok {
			ids = append(ids, e.Device)
		}
		byDevice[e.Device] = append(byDevice[e.Device], e)
	}
	sort.Strings(ids)

	plats := map[string]*platform.Platform{}
	resolve := func(name string) (*platform.Platform, error) {
		if name == "" {
			if opts.Plat == nil {
				return nil, fmt.Errorf("replay: trace events carry no platform and no fallback was given")
			}
			return opts.Plat, nil
		}
		if p, ok := plats[name]; ok {
			return p, nil
		}
		p, err := platform.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("replay: %w", err)
		}
		plats[name] = p
		return p, nil
	}
	// Resolve every device's platform serially before the pool starts:
	// the memo map stays single-threaded, and resolution errors surface
	// at the same device regardless of worker count.
	devPlats := make([]*platform.Platform, len(ids))
	for i, id := range ids {
		p, err := resolve(byDevice[id][0].Platform)
		if err != nil {
			return nil, fmt.Errorf("replay: device %s: %w", id, err)
		}
		devPlats[i] = p
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ids) {
		workers = len(ids)
	}

	// Worker pool + in-order commit (the internal/fleet pattern):
	// workers replay devices out of order; the commit stage below
	// reassembles sorted-ID order before any float is summed or any
	// delta appended, so the result — and every derived report byte —
	// is identical across worker counts.
	type indexed struct {
		i   int
		r   *Result
		err error
	}
	jobs := make(chan int)
	outs := make(chan indexed, workers*2)
	var abort sync.Once
	aborted := make(chan struct{})
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				r, err := Run(byDevice[ids[i]], Options{
					Plat:        devPlats[i],
					Seed:        opts.Seed,
					Rho:         opts.Rho,
					Margins:     margins,
					Alphas:      []float64{}, // fleet sweeps margins only
					TracedAlpha: opts.TracedAlpha,
				})
				if err != nil {
					err = fmt.Errorf("replay: device %s: %w", ids[i], err)
					abort.Do(func() { close(aborted) })
				}
				outs <- indexed{i, r, err}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for i := range ids {
			select {
			case jobs <- i:
			case <-aborted:
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(outs)
	}()

	out := &FleetReplayResult{Devices: len(ids), Events: len(events)}
	byPlat := map[string]*FleetPlatformResult{}
	// deltas[mi] collects each device's energy delta (percent vs its
	// own traced reconstruction) at margin mi, appended in device order
	// by the commit stage.
	deltas := make([][]float64, len(margins))

	commit := func(i int, r *Result) {
		id := ids[i]
		devEvents := byDevice[id]
		plat := devPlats[i]
		d := FleetDeviceResult{
			ID:            id,
			Platform:      devEvents[0].Platform,
			MarginEnergyJ: make([]float64, len(margins)),
			MarginMisses:  make([]int, len(margins)),
		}
		if d.Platform == "" {
			d.Platform = plat.Name
		}
		for gi := range r.Groups {
			g := &r.Groups[gi]
			if d.Workload == "" {
				d.Workload = g.Workload
			}
			d.Jobs += g.Jobs
			d.Predicted += g.Predicted
			d.TracedEnergyJ += g.Traced.EnergyJ
			d.TracedMisses += g.Traced.Misses
			for mi := range margins {
				if len(g.MarginSweep) == len(margins) {
					d.MarginEnergyJ[mi] += g.MarginSweep[mi].EnergyJ
					d.MarginMisses[mi] += g.MarginSweep[mi].Misses
				} else {
					// No predictions in this group: the margin knob does
					// not exist for it; it replays unchanged.
					d.MarginEnergyJ[mi] += g.Traced.EnergyJ
					d.MarginMisses[mi] += g.Traced.Misses
				}
			}
		}
		out.Skipped += r.Skipped
		out.Jobs += d.Jobs
		out.TracedEnergyJ += d.TracedEnergyJ
		out.TracedMisses += d.TracedMisses

		pp, ok := byPlat[d.Platform]
		if !ok {
			pp = &FleetPlatformResult{
				Platform:      d.Platform,
				MarginEnergyJ: make([]float64, len(margins)),
				MarginMisses:  make([]int, len(margins)),
			}
			byPlat[d.Platform] = pp
		}
		pp.Devices++
		pp.Jobs += d.Jobs
		pp.TracedEnergyJ += d.TracedEnergyJ
		pp.TracedMisses += d.TracedMisses
		for mi := range margins {
			pp.MarginEnergyJ[mi] += d.MarginEnergyJ[mi]
			pp.MarginMisses[mi] += d.MarginMisses[mi]
			if d.TracedEnergyJ > 0 {
				deltas[mi] = append(deltas[mi],
					100*(d.MarginEnergyJ[mi]-d.TracedEnergyJ)/d.TracedEnergyJ)
			}
		}
		out.PerDevice = append(out.PerDevice, d)
		if opts.SLO != nil {
			for ei := range devEvents {
				opts.SLO.ObserveEvent(&devEvents[ei])
			}
		}
	}

	// Commit stage: drain workers, reassemble device-index order. On
	// error, keep the error from the smallest device index (the one a
	// serial run would have hit first) so failures are deterministic
	// too.
	reorder := make(map[int]*Result, workers*2)
	next := 0
	var firstErr error
	firstErrIdx := len(ids)
	for o := range outs {
		if o.err != nil {
			if o.i < firstErrIdx {
				firstErr, firstErrIdx = o.err, o.i
			}
			abort.Do(func() { close(aborted) })
			continue
		}
		reorder[o.i] = o.r
		for {
			r, ok := reorder[next]
			if !ok {
				break
			}
			delete(reorder, next)
			if firstErr == nil {
				commit(next, r)
			}
			next++
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if next != len(ids) {
		return nil, fmt.Errorf("replay: committed %d of %d devices", next, len(ids))
	}

	if out.Jobs > 0 {
		out.TracedMissRate = float64(out.TracedMisses) / float64(out.Jobs)
	}
	for mi, m := range margins {
		pt := FleetMarginPoint{Margin: m}
		for i := range out.PerDevice {
			pt.EnergyJ += out.PerDevice[i].MarginEnergyJ[mi]
			pt.Misses += out.PerDevice[i].MarginMisses[mi]
		}
		if out.Jobs > 0 {
			pt.MissRate = float64(pt.Misses) / float64(out.Jobs)
		}
		pt.DeltaMissPts = 100 * (pt.MissRate - out.TracedMissRate)
		pt.DeltaEnergyPctP50 = quantileSorted(deltas[mi], 0.50)
		pt.DeltaEnergyPctP95 = quantileSorted(deltas[mi], 0.95)
		pt.DeltaEnergyPctP99 = quantileSorted(deltas[mi], 0.99)
		out.Margins = append(out.Margins, pt)
	}
	for _, pp := range byPlat {
		out.ByPlatform = append(out.ByPlatform, *pp)
	}
	sort.Slice(out.ByPlatform, func(i, j int) bool {
		return out.ByPlatform[i].Platform < out.ByPlatform[j].Platform
	})
	if opts.SLO != nil {
		out.SLO = opts.SLO.Snapshot()
		out.SLOTarget = opts.SLO.Target()
	}
	return out, nil
}

// quantileSorted returns the p-quantile of vs (sorted in place) with
// linear interpolation; NaN when empty. Exact, not streamed: a fleet
// replay already holds every device in memory, so there is no reason
// to give up precision.
func quantileSorted(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	sort.Float64s(vs)
	pos := p * float64(len(vs)-1)
	lo := int(pos)
	if lo >= len(vs)-1 {
		return vs[len(vs)-1]
	}
	frac := pos - float64(lo)
	return vs[lo] + frac*(vs[lo+1]-vs[lo])
}
