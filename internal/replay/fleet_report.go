package replay

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/render"
)

// WriteText renders the fleet replay deterministically for a
// terminal: fleet totals, the margin sweep with per-device delta
// distributions, and the per-platform breakdown.
func (r *FleetReplayResult) WriteText(w io.Writer) {
	fmt.Fprintf(w, "fleet replay  %d devices, %d events (%d skipped), %d jobs\n",
		r.Devices, r.Events, r.Skipped, r.Jobs)
	fmt.Fprintf(w, "traced        %.3f J, %d misses (%.2f%%)\n",
		r.TracedEnergyJ, r.TracedMisses, 100*r.TracedMissRate)
	if len(r.Margins) > 0 {
		fmt.Fprintf(w, "  %-8s %12s %10s %9s %10s %12s %12s %12s\n",
			"margin", "energy J", "misses", "miss %", "Δmiss pts", "ΔE% p50", "ΔE% p95", "ΔE% p99")
		for _, m := range r.Margins {
			fmt.Fprintf(w, "  %-8.2f %12.3f %10d %9.2f %+10.2f %+12.2f %+12.2f %+12.2f\n",
				m.Margin, m.EnergyJ, m.Misses, 100*m.MissRate, m.DeltaMissPts,
				m.DeltaEnergyPctP50, m.DeltaEnergyPctP95, m.DeltaEnergyPctP99)
		}
	}
	for _, p := range r.ByPlatform {
		missRate := 0.0
		if p.Jobs > 0 {
			missRate = float64(p.TracedMisses) / float64(p.Jobs)
		}
		fmt.Fprintf(w, "platform %-12s %6d devices, %8d jobs, traced %.3f J, %d misses (%.2f%%)\n",
			p.Platform, p.Devices, p.Jobs, p.TracedEnergyJ, p.TracedMisses, 100*missRate)
	}
	if len(r.SLO) > 0 {
		fmt.Fprintf(w, "slo burn      target %.2f%% miss rate\n", 100*r.SLOTarget)
		for _, s := range r.SLO {
			alert := ""
			if s.Alerting {
				alert = "  ALERT"
			}
			fmt.Fprintf(w, "  %-24s %8d jobs, %6d misses (%.2f%%), burn fast %.2fx slow %.2fx%s\n",
				s.Workload, s.Jobs, s.Misses, 100*s.MissRate, s.FastBurn, s.SlowBurn, alert)
		}
	}
}

// WriteJSON writes the canonical machine-readable document, indented,
// deterministic for a deterministic result. The full per-device list
// rides along — it is what downstream tools (league tables, model
// transfer scoring) join against.
func (r *FleetReplayResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteHTML renders the fleet replay as a self-contained HTML report:
// the margin sweep as energy/miss bar charts over the fleet plus the
// tables WriteText prints. Deterministic: identical results produce
// identical bytes.
func (r *FleetReplayResult) WriteHTML(w io.Writer) error {
	p := render.NewHTMLPage("dvfsreplay — fleet counterfactual report")
	p.Para(fmt.Sprintf("%d devices, %d events ingested (%d skipped), %d jobs replayed.",
		r.Devices, r.Events, r.Skipped, r.Jobs))
	p.Para(fmt.Sprintf("Traced reconstruction: %.3f J, %d misses (%.2f%%).",
		r.TracedEnergyJ, r.TracedMisses, 100*r.TracedMissRate))

	if len(r.Margins) > 0 {
		p.Section("Margin sweep")
		header := []string{"margin", "energy J", "misses", "miss %", "Δmiss pts", "ΔE% p50", "ΔE% p95", "ΔE% p99"}
		rows := make([][]string, 0, len(r.Margins))
		labels := make([]string, 0, len(r.Margins))
		energies := make([]float64, 0, len(r.Margins))
		missRates := make([]float64, 0, len(r.Margins))
		for _, m := range r.Margins {
			rows = append(rows, []string{
				fmt.Sprintf("%.2f", m.Margin),
				fmt.Sprintf("%.3f", m.EnergyJ),
				fmt.Sprintf("%d", m.Misses),
				fmt.Sprintf("%.2f", 100*m.MissRate),
				fmt.Sprintf("%+.2f", m.DeltaMissPts),
				fmt.Sprintf("%+.2f", m.DeltaEnergyPctP50),
				fmt.Sprintf("%+.2f", m.DeltaEnergyPctP95),
				fmt.Sprintf("%+.2f", m.DeltaEnergyPctP99),
			})
			labels = append(labels, fmt.Sprintf("%.2f", m.Margin))
			energies = append(energies, m.EnergyJ)
			missRates = append(missRates, 100*m.MissRate)
		}
		p.Table(header, rows, []bool{true, true, true, true, true, true, true, true})
		p.BarChart("Fleet energy by margin [J]", labels, energies, "%.2f")
		p.BarChart("Fleet miss rate by margin [%]", labels, missRates, "%.2f")
	}

	if len(r.SLO) > 0 {
		p.Section("Fleet SLO burn")
		p.Para(fmt.Sprintf("Deadline-miss objective: %.2f%%. Burn is observed miss rate over the objective, per window.", 100*r.SLOTarget))
		header := []string{"key", "jobs", "misses", "miss %", "fast burn", "slow burn", "alert"}
		rows := make([][]string, 0, len(r.SLO))
		for _, s := range r.SLO {
			alert := ""
			if s.Alerting {
				alert = "ALERT"
			}
			rows = append(rows, []string{
				s.Workload,
				fmt.Sprintf("%d", s.Jobs),
				fmt.Sprintf("%d", s.Misses),
				fmt.Sprintf("%.2f", 100*s.MissRate),
				fmt.Sprintf("%.2fx", s.FastBurn),
				fmt.Sprintf("%.2fx", s.SlowBurn),
				alert,
			})
		}
		p.Table(header, rows, []bool{false, true, true, true, true, true, false})
	}

	if len(r.ByPlatform) > 0 {
		p.Section("Per-platform breakdown")
		header := []string{"platform", "devices", "jobs", "traced J", "misses", "miss %"}
		rows := make([][]string, 0, len(r.ByPlatform))
		for _, pp := range r.ByPlatform {
			missRate := 0.0
			if pp.Jobs > 0 {
				missRate = float64(pp.TracedMisses) / float64(pp.Jobs)
			}
			rows = append(rows, []string{
				pp.Platform,
				fmt.Sprintf("%d", pp.Devices),
				fmt.Sprintf("%d", pp.Jobs),
				fmt.Sprintf("%.3f", pp.TracedEnergyJ),
				fmt.Sprintf("%d", pp.TracedMisses),
				fmt.Sprintf("%.2f", 100*missRate),
			})
		}
		p.Table(header, rows, []bool{false, true, true, true, true, true})
	}

	_, err := p.WriteTo(w)
	return err
}
