package replay_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/replay"
	"repro/internal/trace"
)

// fleetTrace simulates a small heterogeneous fleet and returns its
// binary trace decoded back to events, plus the simulation result.
func fleetTrace(t *testing.T) ([]obs.DecisionEvent, *fleet.Result) {
	t.Helper()
	var buf bytes.Buffer
	bw := trace.NewBinaryWriter(&buf)
	cfg := fleet.Config{
		Devices:   6,
		Platforms: []string{"a7", "x86"},
		Mix:       []fleet.MixEntry{{Workload: "sha", Weight: 1}},
		Governor:  "prediction",
		Jobs:      12,
		Seed:      11,
		Sink:      bw,
	}
	res, err := fleet.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := trace.ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return events, res
}

// TestFleetReplayMatchesSingleDevice is the acceptance bound: each
// device's traced energy in the fleet report must equal a standalone
// single-device replay of the same events exactly (same code path),
// and stay within the existing <=1% cross-validation bound of the
// simulator's energy for that device.
func TestFleetReplayMatchesSingleDevice(t *testing.T) {
	events, simRes := fleetTrace(t)
	fr, err := replay.RunFleet(events, replay.FleetOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fr.Devices != 6 || len(fr.PerDevice) != 6 {
		t.Fatalf("fleet replay covers %d devices, want 6", fr.Devices)
	}

	simEnergy := map[string]float64{}
	for _, d := range simRes.PerDevice {
		simEnergy[d.Spec.ID] = d.EnergyJ
	}
	for _, d := range fr.PerDevice {
		// Standalone single-device replay over the same events.
		var devEvents []obs.DecisionEvent
		for _, e := range events {
			if e.Device == d.ID {
				devEvents = append(devEvents, e)
			}
		}
		plat, err := platform.ByName(d.Platform)
		if err != nil {
			t.Fatal(err)
		}
		single, err := replay.Run(devEvents, replay.Options{Plat: plat, Seed: 1})
		if err != nil {
			t.Fatalf("device %s: %v", d.ID, err)
		}
		var singleEnergy float64
		var singleMisses int
		for _, g := range single.Groups {
			singleEnergy += g.Traced.EnergyJ
			singleMisses += g.Traced.Misses
		}
		if d.TracedEnergyJ != singleEnergy || d.TracedMisses != singleMisses {
			t.Fatalf("device %s: fleet traced {%v J, %d misses} != single-device replay {%v J, %d misses}",
				d.ID, d.TracedEnergyJ, d.TracedMisses, singleEnergy, singleMisses)
		}
		// And the reconstruction stays within 1% of the simulator.
		sim := simEnergy[d.ID]
		if sim == 0 {
			t.Fatalf("device %s missing from simulation result", d.ID)
		}
		if rel := math.Abs(d.TracedEnergyJ-sim) / sim; rel > 0.01 {
			t.Fatalf("device %s: replayed %v J vs simulated %v J (%.2f%% off, bound 1%%)",
				d.ID, d.TracedEnergyJ, sim, 100*rel)
		}
	}

	// Fleet totals are the per-device sums.
	var sumE float64
	for _, d := range fr.PerDevice {
		sumE += d.TracedEnergyJ
	}
	if math.Abs(sumE-fr.TracedEnergyJ) > 1e-9 {
		t.Fatalf("fleet traced energy %v != per-device sum %v", fr.TracedEnergyJ, sumE)
	}
}

func TestFleetReplayMarginSweep(t *testing.T) {
	events, _ := fleetTrace(t)
	margins := []float64{0, 0.10, 0.30}
	fr, err := replay.RunFleet(events, replay.FleetOptions{Seed: 1, Margins: margins})
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Margins) != len(margins) {
		t.Fatalf("sweep has %d points, want %d", len(fr.Margins), len(margins))
	}
	for i, m := range fr.Margins {
		if m.Margin != margins[i] {
			t.Fatalf("sweep point %d is margin %v, want %v", i, m.Margin, margins[i])
		}
		if m.EnergyJ <= 0 {
			t.Fatalf("margin %v: non-positive fleet energy %v", m.Margin, m.EnergyJ)
		}
		if !(m.DeltaEnergyPctP50 <= m.DeltaEnergyPctP95 && m.DeltaEnergyPctP95 <= m.DeltaEnergyPctP99) {
			t.Fatalf("margin %v: delta quantiles not ordered: %+v", m.Margin, m)
		}
	}
	// Larger margins run faster (higher levels): fleet energy must not
	// decrease when the margin grows.
	if fr.Margins[2].EnergyJ < fr.Margins[0].EnergyJ {
		t.Fatalf("energy at margin 0.30 (%v J) below margin 0 (%v J)",
			fr.Margins[2].EnergyJ, fr.Margins[0].EnergyJ)
	}
	// Per-platform breakdown covers the whole fleet.
	var devs int
	for _, p := range fr.ByPlatform {
		devs += p.Devices
	}
	if devs != fr.Devices {
		t.Fatalf("platform breakdown covers %d devices, fleet has %d", devs, fr.Devices)
	}
	if p := fr.Margin(0.10); p == nil {
		t.Fatal("Margin(0.10) lookup failed")
	}
}

func TestFleetReplayDeterministic(t *testing.T) {
	events, _ := fleetTrace(t)
	run := func() []byte {
		fr, err := replay.RunFleet(events, replay.FleetOptions{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		var text, html bytes.Buffer
		fr.WriteText(&text)
		if err := fr.WriteHTML(&html); err != nil {
			t.Fatal(err)
		}
		return append(text.Bytes(), html.Bytes()...)
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("fleet replay reports are not bit-identical across runs")
	}
}

func TestFleetReplayRejectsSingleDeviceTrace(t *testing.T) {
	events := []obs.DecisionEvent{{Seq: 1, Workload: "sha", Done: true}}
	if _, err := replay.RunFleet(events, replay.FleetOptions{}); err == nil ||
		!strings.Contains(err.Error(), "no device ID") {
		t.Fatalf("expected no-device-ID error, got %v", err)
	}
	if _, err := replay.RunFleet(nil, replay.FleetOptions{}); err == nil {
		t.Fatal("expected error on empty trace")
	}
}

func TestFleetReplayReportContent(t *testing.T) {
	events, _ := fleetTrace(t)
	fr, err := replay.RunFleet(events, replay.FleetOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var text bytes.Buffer
	fr.WriteText(&text)
	for _, want := range []string{"fleet replay", "6 devices", "margin", "platform"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, text.String())
		}
	}
	var html bytes.Buffer
	if err := fr.WriteHTML(&html); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Margin sweep", "Per-platform breakdown", "<svg"} {
		if !strings.Contains(html.String(), want) {
			t.Errorf("html report missing %q", want)
		}
	}
	var js bytes.Buffer
	if err := fr.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), "\"per_device\"") {
		t.Error("json report missing per_device")
	}
}

// TestFleetReplayByteIdenticalAcrossWorkers: the parallelized RunFleet
// must produce byte-identical text, JSON, and HTML reports at every
// worker count — the in-order commit stage is the only place floats
// are summed and deltas appended.
func TestFleetReplayByteIdenticalAcrossWorkers(t *testing.T) {
	events, _ := fleetTrace(t)
	run := func(workers int) []byte {
		slo := obs.NewSLOTracker(obs.SLOConfig{Target: 0.01})
		fr, err := replay.RunFleet(events, replay.FleetOptions{
			Seed: 1, Workers: workers, SLO: slo,
		})
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		fr.WriteText(&out)
		if err := fr.WriteJSON(&out); err != nil {
			t.Fatal(err)
		}
		if err := fr.WriteHTML(&out); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	base := run(1)
	for _, workers := range []int{2, 4, 8} {
		if !bytes.Equal(base, run(workers)) {
			t.Fatalf("reports differ between 1 and %d workers", workers)
		}
	}
}

// TestFleetReplaySLOBurn: with an SLO tracker attached, the result
// carries a fleet burn snapshot keyed by fleet/platform/workload, its
// totals agree with the replayed trace, and the report writers render
// it.
func TestFleetReplaySLOBurn(t *testing.T) {
	events, _ := fleetTrace(t)
	slo := obs.NewSLOTracker(obs.SLOConfig{Target: 0.01})
	fr, err := replay.RunFleet(events, replay.FleetOptions{Seed: 1, SLO: slo})
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.SLO) == 0 || fr.SLOTarget != 0.01 {
		t.Fatalf("missing SLO snapshot: %+v target %v", fr.SLO, fr.SLOTarget)
	}
	var fleetKey *obs.SLOStatus
	platforms, workloads := 0, 0
	for i := range fr.SLO {
		switch {
		case fr.SLO[i].Workload == obs.FleetKey:
			fleetKey = &fr.SLO[i]
		case strings.HasPrefix(fr.SLO[i].Workload, "platform:"):
			platforms++
		case strings.HasPrefix(fr.SLO[i].Workload, "workload:"):
			workloads++
		}
	}
	if fleetKey == nil {
		t.Fatalf("no %q key in SLO snapshot: %+v", obs.FleetKey, fr.SLO)
	}
	// Every completed event flows into the fleet key exactly once.
	completed := 0
	for i := range events {
		if events[i].Done {
			completed++
		}
	}
	if fleetKey.Jobs != int64(completed) {
		t.Errorf("fleet SLO saw %d jobs, trace has %d completed events", fleetKey.Jobs, completed)
	}
	if platforms != 2 || workloads != 1 {
		t.Errorf("got %d platform keys, %d workload keys; want 2 and 1", platforms, workloads)
	}
	var text, html bytes.Buffer
	fr.WriteText(&text)
	if !strings.Contains(text.String(), "slo burn") {
		t.Errorf("text report missing SLO section:\n%s", text.String())
	}
	if err := fr.WriteHTML(&html); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(html.String(), "Fleet SLO burn") {
		t.Error("html report missing Fleet SLO burn section")
	}
}
