package replay

import (
	"fmt"
	"io"

	"repro/internal/render"
)

// WriteHTML renders the replay as a self-contained HTML report —
// same information as WriteText, plus bar charts for the normalized
// energy comparison and the traced level occupancy. Deterministic:
// identical results produce identical bytes.
func (r *Result) WriteHTML(w io.Writer) error {
	p := render.NewHTMLPage("dvfsreplay — counterfactual energy report")
	p.Para(fmt.Sprintf("Platform %s; %d events ingested, %d skipped.", r.Platform, r.Events, r.Skipped))
	if r.SeqGaps > 0 {
		p.Note(fmt.Sprintf("%d sequence gaps: events were lost (ring overwrite, truncation) or filtered out; the analysis covers an incomplete stream.", r.SeqGaps))
	}
	for i := range r.Groups {
		g := &r.Groups[i]
		p.Section(fmt.Sprintf("%s / %s", g.Workload, g.Governor))
		p.Para(fmt.Sprintf("%d jobs (%d predicted), period %.1f ms, budget %.1f ms, ρ %.3f.",
			g.Jobs, g.Predicted, g.PeriodSec*1e3, g.BudgetSec*1e3, g.Rho))
		for _, a := range g.Approx {
			p.Note("Approximate: " + a)
		}
		b := g.Traced.Breakdown
		p.Table(
			[]string{"traced energy", "exec", "predictor", "switch", "idle", "misses"},
			[][]string{{
				fmt.Sprintf("%.3f J", g.Traced.EnergyJ),
				fmt.Sprintf("%.3f J", b.ExecJ),
				fmt.Sprintf("%.3f J", b.PredictorJ),
				fmt.Sprintf("%.3f J", b.SwitchJ),
				fmt.Sprintf("%.3f J", b.IdleJ),
				fmt.Sprintf("%d (%.2f%%)", g.Traced.Misses, 100*g.Traced.MissRate),
			}},
			[]bool{true, true, true, true, true, true},
		)

		rows := make([][]string, 0, len(g.Policies))
		labels := make([]string, 0, len(g.Policies))
		values := make([]float64, 0, len(g.Policies))
		for _, pol := range g.Policies {
			rows = append(rows, []string{
				pol.Name,
				fmt.Sprintf("%.3f", pol.EnergyJ),
				fmt.Sprintf("%.1f", pol.NormEnergyPct),
				fmt.Sprintf("%d", pol.Misses),
				fmt.Sprintf("%.2f", 100*pol.MissRate),
				fmt.Sprintf("%+.1f", pol.DeltaEnergyPct),
			})
			labels = append(labels, pol.Name)
			values = append(values, pol.NormEnergyPct)
		}
		p.Table(
			[]string{"policy", "energy [J]", "norm [%]", "misses", "miss [%]", "Δenergy vs traced [%]"},
			rows, []bool{false, true, true, true, true, true})
		p.BarChart("energy normalized to performance [%]", labels, values, "%.1f%%")

		if len(g.MarginSweep) > 0 {
			p.Table([]string{"margin", "energy [J]", "norm [%]", "misses"},
				sweepRows(g.MarginSweep, "%.2f"), []bool{true, true, true, true})
		}
		if len(g.AlphaSweep) > 0 {
			p.Table([]string{"α", "energy [J]", "norm [%]", "misses"},
				sweepRows(g.AlphaSweep, "%.0f"), []bool{true, true, true, true})
		}
		if len(g.Traced.Levels) > 0 {
			occLabels := make([]string, 0, len(g.Traced.Levels))
			occValues := make([]float64, 0, len(g.Traced.Levels))
			for _, l := range g.Traced.Levels {
				occLabels = append(occLabels, fmt.Sprintf("level %d", l.Level))
				occValues = append(occValues, 100*l.Frac)
			}
			p.BarChart("traced level occupancy [% of decisions]", occLabels, occValues, "%.1f%%")
		}
	}
	_, err := p.WriteTo(w)
	return err
}

func sweepRows(pts []SweepPoint, paramFmt string) [][]string {
	rows := make([][]string, 0, len(pts))
	for _, sp := range pts {
		rows = append(rows, []string{
			fmt.Sprintf(paramFmt, sp.Param),
			fmt.Sprintf("%.3f", sp.EnergyJ),
			fmt.Sprintf("%.1f", sp.NormEnergyPct),
			fmt.Sprintf("%d", sp.Misses),
		})
	}
	return rows
}
