package replay

import (
	"math"
	"math/rand"

	"repro/internal/dvfs"
	"repro/internal/governor"
	"repro/internal/obs"
	"repro/internal/platform"
)

// policy decides a counterfactual level for each traced job. decide
// returns the target level and the predictor overhead the policy pays
// before the job (zero for reactive baselines). onEnd, when non-nil,
// feeds the executed time back (the PID's control loop). free marks
// the paper's overhead-removed oracle analysis: level changes cost
// neither time nor energy and no predictor runs.
type policy struct {
	name   string
	free   bool
	decide func(j *job, cur platform.Level, now float64) (platform.Level, float64)
	onEnd  func(j *job, at platform.Level, execSec float64)
}

// runPolicy walks the group's jobs through the counterfactual
// timeline under one policy, mirroring the simulator's loop: idle to
// the release, pay the predictor at the pre-switch level, pay the
// transition, execute at the target, and finally drain to the
// horizon. Execution times come from each job's cross-level
// translation, switch latencies from the platform's jitter model
// under a fixed seed.
func runPolicy(g *group, p policy, plat *platform.Platform, seed int64) Outcome {
	var out Outcome
	var brk Breakdown
	levels := map[int]int{}
	rng := rand.New(rand.NewSource(seed))

	now := 0.0
	cur := plat.MaxLevel()
	for _, j := range g.jobs {
		obsLevel, err := plat.Level(j.level)
		if err != nil {
			obsLevel = plat.MaxLevel()
		}
		if j.release > now {
			if gap := j.release - now; gap > timeEps {
				brk.IdleJ += plat.IdlePower(cur) * gap
			}
			now = j.release
		}
		target, predSec := p.decide(j, cur, now)
		if predSec > 0 {
			brk.PredictorJ += plat.ActivePower(cur) * predSec
			now += predSec
		}
		if target.Index != cur.Index {
			if !p.free {
				lat := plat.SampleSwitchLatency(cur, target, rng)
				brk.SwitchJ += plat.SwitchPower(cur, target) * lat
				now += lat
			}
			cur = target
		}
		levels[cur.Index]++
		exec := j.timeAt(cur, obsLevel, g.rho)
		brk.ExecJ += plat.ActivePower(cur) * exec
		now += exec
		if now > j.deadline+timeEps {
			out.Misses++
		}
		if p.onEnd != nil {
			p.onEnd(j, cur, exec)
		}
	}
	if n := len(g.jobs); n > 0 {
		horizon := g.jobs[n-1].release + g.period
		if horizon > now {
			brk.IdleJ += plat.IdlePower(cur) * (horizon - now)
			now = horizon
		}
	}

	out.Breakdown = brk
	out.EnergyJ = brk.Total()
	out.DurationSec = now
	if len(g.jobs) > 0 {
		out.MissRate = float64(out.Misses) / float64(len(g.jobs))
	}
	out.Levels = levelOccupancy(levels, len(g.jobs))
	return out
}

// translatePredictor prices the logged predictor slice time (measured
// at the traced from-level) at the counterfactual current level, via
// the same ρ translation used for job times.
func translatePredictor(j *job, cur platform.Level, plat *platform.Platform, rho float64) float64 {
	if j.predictorSec <= 0 {
		return 0
	}
	from, err := plat.Level(j.from)
	if err != nil {
		return j.predictorSec
	}
	return j.predictorSec * (rho + (1-rho)*from.EffFreqHz()/cur.EffFreqHz())
}

// predictionPolicy re-runs the paper's selection rule from the logged
// raw (tfmin, tfmax) predictions: effective budget = remaining budget
// − predictor cost, margin-inflated model, lowest feasible level with
// per-level switch-cost subtraction (§3.4). shift is the α-sweep's
// prediction offset; margin overrides the traced margin when ≥ 0.
func predictionPolicy(name string, g *group, plat *platform.Platform, table *platform.SwitchTable, margin float64, shift float64) policy {
	return policy{
		name: name,
		decide: func(j *job, cur platform.Level, now float64) (platform.Level, float64) {
			if !j.predicted {
				// The controller's own fallback: a job it cannot
				// predict runs at maximum frequency.
				return plat.MaxLevel(), 0
			}
			m := margin
			if m < 0 {
				m = j.margin
			}
			predSec := translatePredictor(j, cur, plat, g.rho)
			sel := &dvfs.Selector{Plat: plat, Switch: table, Margin: m}
			eff := (j.deadline - now) - predSec
			tfmin := math.Max(j.tfmin+shift, 0)
			tfmax := math.Max(j.tfmax+shift, 0)
			return sel.Pick(cur, tfmin, tfmax, eff), predSec
		},
	}
}

// pidPolicy wraps the repository's PID baseline around the trace: it
// sees exactly what a deployed PID would have seen — each job's
// release, deadline, and (after the fact) executed time — and nothing
// the predictor knew.
func pidPolicy(g *group, plat *platform.Platform, table *platform.SwitchTable) policy {
	pid := &governor.PID{Plat: plat, Switch: table, MemFraction: g.rho}
	return policy{
		name: "pid",
		decide: func(j *job, cur platform.Level, now float64) (platform.Level, float64) {
			dec := pid.JobStart(&governor.Job{
				Index:              j.idx,
				ReleaseSec:         j.release,
				DeadlineSec:        j.deadline,
				RemainingBudgetSec: j.deadline - now,
			}, cur)
			return dec.Target, 0
		},
		onEnd: func(j *job, at platform.Level, execSec float64) {
			pid.JobEnd(nil, execSec)
		},
	}
}

// oraclePolicy picks the minimum level that meets the deadline given
// the job's (translated) observed time, with overheads removed — the
// paper's energy-savings upper bound (Fig 18's oracle).
func oraclePolicy(g *group, plat *platform.Platform) policy {
	return policy{
		name: "oracle",
		free: true,
		decide: func(j *job, cur platform.Level, now float64) (platform.Level, float64) {
			obsLevel, err := plat.Level(j.level)
			if err != nil {
				obsLevel = plat.MaxLevel()
			}
			budget := j.deadline - now
			for _, l := range plat.Levels {
				if j.timeAt(l, obsLevel, g.rho) <= budget {
					return l, 0
				}
			}
			return plat.MaxLevel(), 0
		},
	}
}

// analyzeGroup reconstructs the trace and runs every counterfactual.
func analyzeGroup(g *group, opts Options) GroupResult {
	plat := opts.Plat
	table := platform.MeasureSwitchTable(plat, 500, 0.95, opts.Seed+2000)

	gr := GroupResult{
		Workload:  g.workload,
		Governor:  g.governor,
		Jobs:      len(g.jobs),
		PeriodSec: g.period,
		BudgetSec: g.budget,
		Rho:       g.rho,
		Approx:    g.approx,
		Traced:    reconstruct(g, plat),
	}
	for _, j := range g.jobs {
		if j.predicted {
			gr.Predicted++
		}
	}
	// Measured per-phase attribution: what the static predictor-cost
	// estimate actually decomposes into. Reporting only — the energy
	// reconstruction above already used the estimates the trace charged.
	if n := len(g.spanLedgers); n > 0 {
		gr.SpanJobs = n
		gr.Phases = obs.AnalyzePhases(g.spanLedgers)
		gr.EstPredictorSec = g.estSum / float64(n)
		var meas float64
		for i := range g.spanLedgers {
			for _, sp := range g.spanLedgers[i].Spans {
				if sp.Depth == 0 && (sp.Name == obs.PhaseDecide || sp.Name == obs.PhaseServe) {
					meas += sp.DurSec
					break
				}
			}
		}
		gr.MeasPredictorSec = meas / float64(n)
	}

	policies := []policy{
		{name: "performance", decide: func(_ *job, _ platform.Level, _ float64) (platform.Level, float64) {
			return plat.MaxLevel(), 0
		}},
		{name: "powersave", decide: func(_ *job, _ platform.Level, _ float64) (platform.Level, float64) {
			return plat.MinLevel(), 0
		}},
		oraclePolicy(g, plat),
		pidPolicy(g, plat, table),
	}
	if gr.Predicted > 0 {
		policies = append(policies, predictionPolicy("prediction", g, plat, table, -1, 0))
	}

	outs := make([]Outcome, len(policies))
	var perf float64
	for i, p := range policies {
		outs[i] = runPolicy(g, p, plat, opts.Seed)
		if p.name == "performance" {
			perf = outs[i].EnergyJ
		}
	}
	for i, p := range policies {
		pr := PolicyResult{Name: p.name, Outcome: outs[i]}
		if perf > 0 {
			pr.NormEnergyPct = 100 * outs[i].EnergyJ / perf
		}
		if gr.Traced.EnergyJ > 0 {
			pr.DeltaEnergyPct = 100 * (outs[i].EnergyJ - gr.Traced.EnergyJ) / gr.Traced.EnergyJ
		}
		pr.DeltaMissRate = outs[i].MissRate - gr.Traced.MissRate
		gr.Policies = append(gr.Policies, pr)
	}

	if gr.Predicted > 0 {
		for _, m := range opts.Margins {
			o := runPolicy(g, predictionPolicy("margin", g, plat, table, m, 0), plat, opts.Seed)
			gr.MarginSweep = append(gr.MarginSweep, sweepPoint(m, o, perf))
		}
		var residuals []float64
		for _, j := range g.jobs {
			if j.predicted {
				residuals = append(residuals, j.residual)
			}
		}
		base := quantile(residuals, opts.TracedAlpha/(1+opts.TracedAlpha))
		for _, a := range opts.Alphas {
			shift := 0.0
			if !math.IsNaN(base) {
				shift = quantile(residuals, a/(1+a)) - base
			}
			o := runPolicy(g, predictionPolicy("alpha", g, plat, table, -1, shift), plat, opts.Seed)
			gr.AlphaSweep = append(gr.AlphaSweep, sweepPoint(a, o, perf))
		}
	}
	return gr
}

func sweepPoint(param float64, o Outcome, perfJ float64) SweepPoint {
	sp := SweepPoint{Param: param, EnergyJ: o.EnergyJ, Misses: o.Misses, MissRate: o.MissRate}
	if perfJ > 0 {
		sp.NormEnergyPct = 100 * o.EnergyJ / perfJ
	}
	return sp
}
