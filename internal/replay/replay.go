// Package replay is the offline counterfactual-analysis engine over
// decision traces. It ingests obs.DecisionEvent logs (written by
// `dvfssim -trace` or `dvfsd -trace`), reconstructs the energy the
// traced policy spent — attributing it to execution, predictor
// overhead, DVFS transitions, and idle slack exactly the way the
// simulator's energy meter does — and then re-decides every job under
// counterfactual policies: the oracle (minimum level meeting the
// deadline given the observed time, overheads removed, as in the
// paper's Fig 18 analysis), the performance and powersave governors,
// the PID baseline, and what-if margin/α sweeps of the predictor
// itself. The output answers the two questions a production log
// cannot: "what would a different policy have cost us?" and "how much
// headroom does the current one have?" — the Mantis-style validation
// loop, run from logs instead of re-running workloads.
//
// Counterfactual execution times come from the trace itself: for
// predicted decisions the logged (tfmin, tfmax) pair is solved into
// the per-job two-point model t = Tmem + Ndep/f and rescaled so it
// reproduces the observed time at the observed level; for unpredicted
// decisions the workload's memory-time fraction ρ translates the
// observed time across frequencies. No workload program, model, or
// feature vector is needed — only the log and the platform.
package replay

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dvfs"
	"repro/internal/obs"
	"repro/internal/platform"
)

// Options configures a replay. Plat is required; everything else has
// defaults.
type Options struct {
	// Plat is the platform the trace was recorded on. Replay
	// cross-checks every event's FreqKHz against it and fails on a
	// mismatch rather than attributing energy from the wrong tables.
	Plat *platform.Platform
	// Seed drives the counterfactual timelines' switch-latency jitter
	// and the switch-table measurement; the same seed reproduces every
	// number bit-for-bit. Zero → 1.
	Seed int64
	// Rho is the fallback memory-time fraction ρ = Tmem/t used to
	// translate observed execution times across frequencies when a
	// job carries no prediction (and for traces from non-predicting
	// governors entirely); zero → 0.3. Predicted jobs estimate ρ from
	// their own two-point models instead.
	Rho float64
	// Margins is the what-if margin sweep for the predictor; nil →
	// {0, 0.05, 0.10, 0.15, 0.20, 0.30}.
	Margins []float64
	// Alphas is the what-if α sweep (the §3.3 under-prediction penalty
	// weight); nil → {1, 10, 100, 1000}. The sweep shifts predictions
	// by the difference between the residual distribution's
	// α′/(1+α′)- and TracedAlpha/(1+TracedAlpha)-quantiles — the
	// first-order effect of retraining with a different α.
	Alphas []float64
	// TracedAlpha is the α the traced model was trained with (it is
	// not recorded in the log); zero → 100, the paper's value.
	TracedAlpha float64
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Rho <= 0 || o.Rho >= 1 {
		o.Rho = 0.3
	}
	if o.Margins == nil {
		o.Margins = []float64{0, 0.05, 0.10, 0.15, 0.20, 0.30}
	}
	if o.Alphas == nil {
		o.Alphas = []float64{1, 10, 100, 1000}
	}
	if o.TracedAlpha <= 0 {
		o.TracedAlpha = 100
	}
	return o
}

// Breakdown attributes reconstructed energy to activities [J],
// mirroring sim.EnergyBreakdown.
type Breakdown struct {
	ExecJ      float64 `json:"exec_j"`
	PredictorJ float64 `json:"predictor_j"`
	SwitchJ    float64 `json:"switch_j"`
	IdleJ      float64 `json:"idle_j"`
}

// Total sums the breakdown.
func (b Breakdown) Total() float64 { return b.ExecJ + b.PredictorJ + b.SwitchJ + b.IdleJ }

// Outcome is one policy's (or the traced reconstruction's) aggregate
// over a group.
type Outcome struct {
	EnergyJ     float64   `json:"energy_j"`
	Breakdown   Breakdown `json:"breakdown"`
	DurationSec float64   `json:"duration_sec"`
	Misses      int       `json:"misses"`
	MissRate    float64   `json:"miss_rate"`
	// Levels is per-level decision occupancy, ascending by index.
	Levels []obs.LevelOccupancy `json:"levels,omitempty"`
}

// PolicyResult is one counterfactual policy's outcome, normalized
// against the performance governor and compared to the trace.
type PolicyResult struct {
	Name string `json:"name"`
	Outcome
	// NormEnergyPct is energy as a percentage of the performance
	// policy's (the paper's normalization).
	NormEnergyPct float64 `json:"norm_energy_pct"`
	// DeltaEnergyPct is the energy change vs. the traced
	// reconstruction, in percent (negative = the counterfactual is
	// cheaper).
	DeltaEnergyPct float64 `json:"delta_energy_pct"`
	// DeltaMissRate is the miss-rate change vs. the trace, in points.
	DeltaMissRate float64 `json:"delta_miss_rate"`
}

// SweepPoint is one setting of a what-if parameter sweep.
type SweepPoint struct {
	Param         float64 `json:"param"`
	EnergyJ       float64 `json:"energy_j"`
	NormEnergyPct float64 `json:"norm_energy_pct"`
	Misses        int     `json:"misses"`
	MissRate      float64 `json:"miss_rate"`
}

// GroupResult is the full analysis of one (workload, governor) stream.
type GroupResult struct {
	Workload string `json:"workload"`
	Governor string `json:"governor"`
	Jobs     int    `json:"jobs"`
	// Predicted counts jobs carrying a model prediction.
	Predicted int `json:"predicted"`
	// PeriodSec and BudgetSec are inferred from the trace (release
	// spacing and deadline − release).
	PeriodSec float64 `json:"period_sec"`
	BudgetSec float64 `json:"budget_sec"`
	// Rho is the memory-time fraction used for time translation.
	Rho float64 `json:"rho"`
	// Approx lists reasons the traced reconstruction is approximate
	// (empty = the energy model matches the simulator's exactly).
	Approx []string `json:"approx,omitempty"`
	// SpanJobs counts replayed jobs whose events carried a measured
	// span ledger; Phases is their per-phase latency distribution.
	// MeasPredictorSec is the mean measured decision time (the
	// decide/serve root span) — the measured counterpart of the static
	// PredictorSec estimate §3.4 charges against every budget. The
	// energy reconstruction keeps using the static estimate (that is
	// what the traced run charged); the measured spans attribute where
	// it went. All zero/empty when the log predates span capture.
	SpanJobs         int             `json:"span_jobs,omitempty"`
	Phases           []obs.PhaseStat `json:"phases,omitempty"`
	MeasPredictorSec float64         `json:"meas_predictor_sec,omitempty"`
	// EstPredictorSec is the mean static estimate over the same jobs,
	// for the measured-vs-estimated comparison the report prints.
	EstPredictorSec float64 `json:"est_predictor_sec,omitempty"`
	// Traced is the reconstruction of what the trace actually spent.
	Traced Outcome `json:"traced"`
	// Policies holds the counterfactuals in deterministic order.
	Policies []PolicyResult `json:"policies"`
	// MarginSweep and AlphaSweep are predictor what-ifs (only for
	// groups with predictions).
	MarginSweep []SweepPoint `json:"margin_sweep,omitempty"`
	AlphaSweep  []SweepPoint `json:"alpha_sweep,omitempty"`
}

// Policy returns the named policy result (nil when absent).
func (g *GroupResult) Policy(name string) *PolicyResult {
	for i := range g.Policies {
		if g.Policies[i].Name == name {
			return &g.Policies[i]
		}
	}
	return nil
}

// Result is a full replay over a log.
type Result struct {
	Platform string `json:"platform"`
	// Events is the total event count ingested; Skipped counts events
	// that could not be replayed (no outcome recorded, one-shot
	// serving predictions, unknown levels are an error instead).
	Events  int           `json:"events"`
	Skipped int           `json:"skipped"`
	SeqGaps int           `json:"seq_gaps,omitempty"`
	Groups  []GroupResult `json:"groups"`
}

// Group returns the result for (workload, governor), nil when absent.
func (r *Result) Group(workload, governor string) *GroupResult {
	for i := range r.Groups {
		if r.Groups[i].Workload == workload && r.Groups[i].Governor == governor {
			return &r.Groups[i]
		}
	}
	return nil
}

// job is one replayable decision: the trace's scheduling facts plus
// the model that translates its execution time across levels.
type job struct {
	idx               int
	release, deadline float64
	start             float64
	predictorSec      float64
	from, level       int
	measSwitchSec     float64
	switchEstSec      float64
	actual            float64
	missed            bool
	predicted         bool
	tfmin, tfmax      float64
	margin            float64
	residual          float64

	// tp is the per-job two-point model solved from (tfmin, tfmax);
	// tpObs is its prediction at the observed level — the scaling
	// anchor. hasTP is set when both are usable.
	tp    dvfs.TwoPoint
	tpObs float64
	hasTP bool
}

// timeAt translates the job's observed execution time to level l.
func (j *job) timeAt(l platform.Level, obsLevel platform.Level, rho float64) float64 {
	if j.hasTP {
		return j.actual / j.tpObs * j.tp.TimeAt(l.EffFreqHz())
	}
	return j.actual * (rho + (1-rho)*obsLevel.EffFreqHz()/l.EffFreqHz())
}

// group is one (workload, governor) stream under reconstruction.
type group struct {
	workload, governor string
	jobs               []*job
	period, budget     float64
	rho                float64
	approx             []string
	hasSched           bool
	// spanLedgers holds the span ledgers of replayed events that carry
	// one (reduced to just the spans — AnalyzePhases needs nothing
	// else), with estSum accumulating the same jobs' static estimates.
	spanLedgers []obs.DecisionEvent
	estSum      float64
}

// Run replays a decision log. Events without a recorded outcome are
// skipped (a one-shot dvfsd prediction has no execution time to
// replay); an event whose frequency does not exist on opts.Plat is an
// error — the trace belongs to a different platform.
func Run(events []obs.DecisionEvent, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if opts.Plat == nil {
		return nil, fmt.Errorf("replay: Options.Plat is required")
	}
	res := &Result{Platform: opts.Plat.Name, Events: len(events)}
	res.SeqGaps = obs.Analyze(events).SeqGaps

	groups := map[string]*group{}
	var order []string
	for i := range events {
		e := &events[i]
		if !e.Done {
			res.Skipped++
			continue
		}
		if e.FreqKHz != 0 {
			if _, ok := opts.Plat.LevelByFreqKHz(e.FreqKHz); !ok {
				return nil, fmt.Errorf("replay: event seq %d runs at %d kHz which is not a level of platform %s — was the trace recorded on a different platform?",
					e.Seq, e.FreqKHz, opts.Plat.Name)
			}
		}
		if e.Level < 0 || e.Level >= opts.Plat.NumLevels() {
			return nil, fmt.Errorf("replay: event seq %d selects level %d outside platform %s's %d levels",
				e.Seq, e.Level, opts.Plat.Name, opts.Plat.NumLevels())
		}
		key := e.Workload + "\x00" + e.Governor
		g := groups[key]
		if g == nil {
			g = &group{workload: e.Workload, governor: e.Governor}
			groups[key] = g
			order = append(order, key)
		}
		g.add(e, opts.Plat)
	}
	sort.Strings(order)

	for _, key := range order {
		g := groups[key]
		g.finish(opts)
		if len(g.jobs) == 0 {
			continue
		}
		gr := analyzeGroup(g, opts)
		res.Groups = append(res.Groups, gr)
	}
	return res, nil
}

// add ingests one completed event.
func (g *group) add(e *obs.DecisionEvent, plat *platform.Platform) {
	j := &job{
		idx:           e.Job,
		start:         e.TimeSec,
		predictorSec:  e.PredictorSec,
		level:         e.Level,
		measSwitchSec: e.MeasSwitchSec,
		switchEstSec:  e.SwitchSec,
		actual:        e.ActualExecSec,
		missed:        e.Missed,
		margin:        e.Margin,
	}
	if e.DeadlineSec > 0 {
		// New-style event: scheduling fields are authoritative.
		j.release = e.ReleaseSec
		j.deadline = e.DeadlineSec
		j.from = e.FromLevel
		g.hasSched = true
	} else {
		// Pre-FromLevel log: assume the decision time is the release
		// and fall back to the stream's budget field; the caller's
		// finish() pass fills from-levels by chaining.
		j.release = e.TimeSec
		j.deadline = e.TimeSec + e.BudgetSec
		j.from = -1
	}
	if len(e.Spans) > 0 {
		g.spanLedgers = append(g.spanLedgers, obs.DecisionEvent{Spans: e.Spans})
		g.estSum += e.PredictorSec
	}
	if e.Predicted && e.TFminSec > 0 && e.TFmaxSec > 0 {
		j.predicted = true
		j.tfmin, j.tfmax = e.TFminSec, e.TFmaxSec
		j.residual = e.ResidualSec
		tp := dvfs.Solve(e.TFminSec, e.TFmaxSec,
			plat.MinLevel().EffFreqHz(), plat.MaxLevel().EffFreqHz())
		if lv, err := plat.Level(e.Level); err == nil {
			if at := tp.TimeAt(lv.EffFreqHz()); at > 0 && j.actual > 0 {
				j.tp, j.tpObs, j.hasTP = tp, at, true
			}
		}
	}
	g.jobs = append(g.jobs, j)
}

// finish sorts the group, infers period/budget/ρ, chains missing
// from-levels, and records approximation reasons.
func (g *group) finish(opts Options) {
	sort.SliceStable(g.jobs, func(i, k int) bool {
		if g.jobs[i].start != g.jobs[k].start {
			return g.jobs[i].start < g.jobs[k].start
		}
		return g.jobs[i].idx < g.jobs[k].idx
	})

	// Period: median spacing of releases; budget: deadline − release.
	var gaps []float64
	for i := 1; i < len(g.jobs); i++ {
		if d := g.jobs[i].release - g.jobs[i-1].release; d > 0 {
			gaps = append(gaps, d)
		}
	}
	if len(gaps) > 0 {
		sort.Float64s(gaps)
		g.period = gaps[len(gaps)/2]
	}
	if len(g.jobs) > 0 {
		g.budget = g.jobs[0].deadline - g.jobs[0].release
	}
	if g.period <= 0 {
		g.period = g.budget
	}

	// Chain from-levels for old logs: the platform stays at the level
	// the previous job selected; the simulator starts at max.
	maxIdx := opts.Plat.MaxLevel().Index
	prev := maxIdx
	chained := false
	for _, j := range g.jobs {
		if j.from < 0 {
			j.from = prev
			chained = true
		}
		prev = j.level
	}
	if chained {
		g.approx = append(g.approx,
			"trace predates from_level/deadline fields: from-levels chained, releases assumed at decision times")
	}
	// A from-level that is not the previous job's selection means the
	// platform moved between jobs (idle-drop switching or a sampling
	// governor) — that transition's time and energy are not in the
	// per-job records, so the reconstruction is a lower bound there.
	prev = maxIdx
	moved := false
	midJob := false
	for _, j := range g.jobs {
		if j.from != prev {
			moved = true
		}
		if j.measSwitchSec > 0 && j.from == j.level {
			midJob = true
		}
		prev = j.level
	}
	if moved {
		g.approx = append(g.approx,
			"platform level changed between jobs (idle-drop or sampling governor): inter-job transitions are unrecorded")
	}
	if midJob {
		g.approx = append(g.approx,
			"mid-job transitions present (sampling governor): single-level execution assumed")
	}

	// ρ: mean Tmem share at fmax over predicted jobs, else the option.
	g.rho = opts.Rho
	fmax := opts.Plat.MaxLevel().EffFreqHz()
	sum, n := 0.0, 0
	for _, j := range g.jobs {
		if !j.hasTP {
			continue
		}
		if at := j.tp.TimeAt(fmax); at > 0 {
			sum += j.tp.TmemSec / at
			n++
		}
	}
	if n > 0 {
		r := sum / float64(n)
		if r > 0 && r < 1 {
			g.rho = r
		}
	}
}

// levelOccupancy turns per-level decision counts into the shared
// report shape.
func levelOccupancy(counts map[int]int, total int) []obs.LevelOccupancy {
	if total == 0 {
		return nil
	}
	idxs := make([]int, 0, len(counts))
	for l := range counts {
		idxs = append(idxs, l)
	}
	sort.Ints(idxs)
	out := make([]obs.LevelOccupancy, 0, len(idxs))
	for _, l := range idxs {
		out = append(out, obs.LevelOccupancy{
			Level: l, Count: counts[l], Frac: float64(counts[l]) / float64(total),
		})
	}
	return out
}

// quantile interpolates the p-quantile of unsorted xs (NaN when
// empty).
func quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := p * float64(len(s)-1)
	i := int(pos)
	if i >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := pos - float64(i)
	return s[i] + frac*(s[i+1]-s[i])
}
