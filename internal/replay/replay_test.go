package replay_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// tracedRun mirrors dvfssim's trace pipeline: run one governor on sha,
// capture live controller events when the governor is a prediction
// controller, and merge the simulator's ground truth over them.
func tracedRun(t *testing.T, gName string, jobs int) (*sim.Result, []obs.DecisionEvent) {
	t.Helper()
	w, err := workload.ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	suite := experiments.NewSuiteOn(platform.ODROIDXU3A7(), 1)
	g, err := suite.Governor(gName, w)
	if err != nil {
		t.Fatal(err)
	}
	var mem *obs.MemorySink
	if ctl, ok := g.(*core.Controller); ok {
		mem = &obs.MemorySink{}
		ctl.SetTracer(obs.NewTracer(obs.TracerOptions{Sinks: []obs.Sink{mem}}))
	}
	r, err := sim.Run(w, g, sim.Config{Plat: suite.Plat, Jobs: jobs, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	var live []obs.DecisionEvent
	if mem != nil {
		live = mem.Events()
	}
	return r, trace.MergeDecisions(live, r)
}

// The acceptance criterion: replaying a simulator trace reproduces the
// simulator's energy within 1% and its deadline misses exactly, for
// every traced governor family (prediction, static, sampling-feedback).
func TestReplayCrossValidatesAgainstSimulator(t *testing.T) {
	for _, gName := range []string{"prediction", "performance", "powersave", "pid"} {
		t.Run(gName, func(t *testing.T) {
			r, events := tracedRun(t, gName, 80)
			res, err := replay.Run(events, replay.Options{Plat: platform.ODROIDXU3A7()})
			if err != nil {
				t.Fatal(err)
			}
			g := res.Group("sha", gName)
			if g == nil {
				t.Fatalf("no group for sha/%s in %+v", gName, res.Groups)
			}
			if g.Jobs != len(r.Records) {
				t.Fatalf("replayed %d jobs, sim ran %d", g.Jobs, len(r.Records))
			}
			relErr := math.Abs(g.Traced.EnergyJ-r.EnergyJ) / r.EnergyJ
			if relErr > 0.01 {
				t.Errorf("reconstructed energy %.6f J vs simulated %.6f J: %.2f%% off (want ≤ 1%%)",
					g.Traced.EnergyJ, r.EnergyJ, 100*relErr)
			}
			if g.Traced.Misses != r.Misses {
				t.Errorf("reconstructed misses = %d, simulator counted %d", g.Traced.Misses, r.Misses)
			}
			if len(g.Approx) != 0 {
				t.Errorf("default-config trace flagged approximate: %v", g.Approx)
			}
			// Breakdown components must sum to the total.
			if d := math.Abs(g.Traced.Breakdown.Total() - g.Traced.EnergyJ); d > 1e-9 {
				t.Errorf("breakdown sums to %g, EnergyJ %g", g.Traced.Breakdown.Total(), g.Traced.EnergyJ)
			}
		})
	}
}

// TestReplaySpanAttribution: a prediction trace captured with span
// ledgers yields measured per-phase predictor-overhead attribution —
// and the measured decision time replaces nothing in the energy
// reconstruction (cross-validation stays within 1%, checked above).
func TestReplaySpanAttribution(t *testing.T) {
	_, events := tracedRun(t, "prediction", 60)
	res, err := replay.Run(events, replay.Options{Plat: platform.ODROIDXU3A7()})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Group("sha", "prediction")
	if g == nil {
		t.Fatal("no sha/prediction group")
	}
	if g.SpanJobs != g.Jobs {
		t.Errorf("span ledgers on %d of %d jobs, want all (sampling off)", g.SpanJobs, g.Jobs)
	}
	if g.MeasPredictorSec <= 0 || g.EstPredictorSec <= 0 {
		t.Errorf("predictor attribution: measured %g, estimate %g", g.MeasPredictorSec, g.EstPredictorSec)
	}
	byName := map[string]obs.PhaseStat{}
	for _, ph := range g.Phases {
		byName[ph.Name] = ph
	}
	for _, want := range []string{
		obs.PhaseDecide, obs.PhaseSliceEval, obs.PhasePredict,
		obs.PhaseSelect, obs.PhaseSwitch, obs.PhaseExec,
	} {
		if byName[want].N == 0 {
			t.Errorf("phase %s missing from attribution: %+v", want, g.Phases)
		}
	}
	// The merged ledger's exec phase is the simulator's measured
	// execution, so its mean must agree with the jobs themselves.
	var execSum float64
	for i := range events {
		execSum += events[i].ActualExecSec
	}
	if got, want := byName[obs.PhaseExec].MeanSec, execSum/float64(len(events)); math.Abs(got-want) > 1e-9 {
		t.Errorf("exec phase mean %g, want measured mean %g", got, want)
	}
	// Decision phases live at micro/millisecond scale; the decide root
	// must bound its children.
	dec := byName[obs.PhaseDecide]
	if sum := byName[obs.PhaseSliceEval].MeanSec + byName[obs.PhasePredict].MeanSec + byName[obs.PhaseSelect].MeanSec; sum > dec.MeanSec+1e-9 {
		t.Errorf("child phase means sum %g > decide mean %g", sum, dec.MeanSec)
	}

	var b bytes.Buffer
	res.WriteText(&b)
	for _, want := range []string{"predictor measured", "decision spans on", obs.PhaseSliceEval} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, b.String())
		}
	}
}

func TestReplayOrderingAndCounterfactuals(t *testing.T) {
	_, events := tracedRun(t, "prediction", 80)
	res, err := replay.Run(events, replay.Options{Plat: platform.ODROIDXU3A7()})
	if err != nil {
		t.Fatal(err)
	}
	if viol := res.CheckOrdering(1); len(viol) != 0 {
		t.Fatalf("ordering violations on a healthy prediction trace: %v", viol)
	}
	g := res.Group("sha", "prediction")
	perf := g.Policy("performance")
	if perf == nil || math.Abs(perf.NormEnergyPct-100) > 1e-9 {
		t.Fatalf("performance policy not the 100%% normalization anchor: %+v", perf)
	}
	if perf.Misses != 0 {
		t.Errorf("performance governor missed %d deadlines in replay", perf.Misses)
	}
	oracle := g.Policy("oracle")
	if oracle == nil || oracle.EnergyJ > g.Traced.EnergyJ*(1+1e-9) {
		t.Errorf("oracle (%.6f J) not ≤ traced (%.6f J)", oracle.EnergyJ, g.Traced.EnergyJ)
	}
	if oracle.Misses != 0 {
		t.Errorf("oracle missed %d deadlines", oracle.Misses)
	}
	// Powersave on a tight budget should trade misses for energy.
	ps := g.Policy("powersave")
	if ps == nil || ps.EnergyJ >= perf.EnergyJ {
		t.Errorf("powersave (%+v) not cheaper than performance (%+v)", ps, perf)
	}
	// The what-if sweeps exist for a predicted group and the margin
	// sweep's energy grows with margin.
	if len(g.MarginSweep) < 2 || len(g.AlphaSweep) < 2 {
		t.Fatalf("sweeps missing: %d margin, %d alpha points", len(g.MarginSweep), len(g.AlphaSweep))
	}
	first, last := g.MarginSweep[0], g.MarginSweep[len(g.MarginSweep)-1]
	if first.EnergyJ > last.EnergyJ {
		t.Errorf("margin sweep energy not increasing: %.6f J @ %.2f vs %.6f J @ %.2f",
			first.EnergyJ, first.Param, last.EnergyJ, last.Param)
	}
}

// Same trace + same seed must reproduce every byte of every artifact.
func TestReplayDeterministic(t *testing.T) {
	_, events := tracedRun(t, "prediction", 60)
	render := func() (string, string, string) {
		res, err := replay.Run(events, replay.Options{Plat: platform.ODROIDXU3A7(), Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		var txt, js, html bytes.Buffer
		res.WriteText(&txt)
		if err := res.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteHTML(&html); err != nil {
			t.Fatal(err)
		}
		return txt.String(), js.String(), html.String()
	}
	t1, j1, h1 := render()
	t2, j2, h2 := render()
	if t1 != t2 {
		t.Error("text report not bit-identical across runs")
	}
	if j1 != j2 {
		t.Error("JSON bench not bit-identical across runs")
	}
	if h1 != h2 {
		t.Error("HTML report not bit-identical across runs")
	}
	if !strings.Contains(t1, "sha / prediction") && !strings.Contains(t1, "sha") {
		t.Errorf("text report missing group header:\n%s", t1)
	}
	if !strings.Contains(h1, "<html") || !strings.Contains(h1, "sha") {
		t.Error("HTML report incomplete")
	}
}

func TestReplayBenchRoundTripAndCompare(t *testing.T) {
	_, events := tracedRun(t, "prediction", 60)
	res, err := replay.Run(events, replay.Options{Plat: platform.ODROIDXU3A7()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	base, err := replay.ReadBench(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Self-comparison: no regressions, no notes.
	regs, notes := replay.Compare(res, base, replay.CompareOptions{})
	if len(regs) != 0 || len(notes) != 0 {
		t.Fatalf("self compare: regs=%v notes=%v", regs, notes)
	}
	// Inflate current energy past tolerance → regression.
	worse := *res
	worse.Groups = append([]replay.GroupResult(nil), res.Groups...)
	worse.Groups[0].Traced.EnergyJ *= 1.10
	regs, _ = replay.Compare(&worse, base, replay.CompareOptions{MaxEnergyRegressPct: 5})
	if len(regs) == 0 {
		t.Error("10% energy regression not detected at 5% tolerance")
	}
	// A miss-rate jump is a regression too.
	worse2 := *res
	worse2.Groups = append([]replay.GroupResult(nil), res.Groups...)
	worse2.Groups[0].Traced.MissRate += 0.05
	regs, _ = replay.Compare(&worse2, base, replay.CompareOptions{MaxMissRegressPts: 1})
	if len(regs) == 0 {
		t.Error("5-point miss-rate regression not detected at 1-point tolerance")
	}
	// A group only in the baseline is a note, not a regression.
	fewer := *res
	fewer.Groups = nil
	regs, notes = replay.Compare(&fewer, base, replay.CompareOptions{})
	if len(regs) != 0 || len(notes) == 0 {
		t.Errorf("missing group: regs=%v notes=%v", regs, notes)
	}
}

func TestReplayRejectsWrongPlatform(t *testing.T) {
	_, events := tracedRun(t, "performance", 20)
	if _, err := replay.Run(events, replay.Options{Plat: platform.IntelI7()}); err == nil {
		t.Fatal("replaying an a7 trace against the x86 platform should fail")
	}
}

func TestReplaySkipsIncompleteEvents(t *testing.T) {
	_, events := tracedRun(t, "performance", 20)
	// A one-shot serving prediction (not Done) must be skipped, not
	// counted as a job.
	events = append(events, obs.DecisionEvent{
		Workload: "sha", Governor: "performance",
		FreqKHz: events[0].FreqKHz, Level: events[0].Level,
	})
	res, err := replay.Run(events, replay.Options{Plat: platform.ODROIDXU3A7()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 1 {
		t.Errorf("Skipped = %d, want 1", res.Skipped)
	}
	if g := res.Group("sha", "performance"); g == nil || g.Jobs != 20 {
		t.Errorf("group jobs = %+v, want 20", g)
	}
}
