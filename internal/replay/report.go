package replay

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/obs"
)

// WriteText renders the replay deterministically for a terminal: one
// block per (workload, governor) group with the traced energy
// attribution, the counterfactual table normalized the way the
// paper's Fig 15 is, and the what-if sweeps.
func (r *Result) WriteText(w io.Writer) {
	fmt.Fprintf(w, "replay      platform %s, %d events (%d skipped)\n",
		r.Platform, r.Events, r.Skipped)
	if r.SeqGaps > 0 {
		fmt.Fprintf(w, "dropped     %d sequence gaps — events lost (ring overwrite, truncation) or filtered out; analysis covers an incomplete stream\n", r.SeqGaps)
	}
	for i := range r.Groups {
		g := &r.Groups[i]
		fmt.Fprintf(w, "\n%s / %s   %d jobs (%d predicted), period %.1f ms, budget %.1f ms, rho %.3f\n",
			g.Workload, g.Governor, g.Jobs, g.Predicted,
			g.PeriodSec*1e3, g.BudgetSec*1e3, g.Rho)
		for _, a := range g.Approx {
			fmt.Fprintf(w, "  approx    %s\n", a)
		}
		b := g.Traced.Breakdown
		fmt.Fprintf(w, "  traced    %.3f J = exec %.3f + predictor %.3f + switch %.3f + idle %.3f;  %d misses (%.2f%%)\n",
			g.Traced.EnergyJ, b.ExecJ, b.PredictorJ, b.SwitchJ, b.IdleJ,
			g.Traced.Misses, 100*g.Traced.MissRate)
		if g.SpanJobs > 0 {
			fmt.Fprintf(w, "  predictor measured %s/job (decision spans on %d jobs) vs static estimate %s/job\n",
				obs.FormatDur(g.MeasPredictorSec), g.SpanJobs, obs.FormatDur(g.EstPredictorSec))
			for _, ph := range g.Phases {
				fmt.Fprintf(w, "    %-14s %6d  mean %-10s p50 %-10s p95 %-10s max %s\n",
					ph.Name, ph.N, obs.FormatDur(ph.MeanSec), obs.FormatDur(ph.P50Sec),
					obs.FormatDur(ph.P95Sec), obs.FormatDur(ph.MaxSec))
			}
		}
		fmt.Fprintf(w, "  %-14s %10s %8s %8s %9s %10s\n",
			"policy", "energy J", "norm %", "misses", "miss %", "Δenergy %")
		for _, p := range g.Policies {
			fmt.Fprintf(w, "  %-14s %10.3f %8.1f %8d %9.2f %+10.1f\n",
				p.Name, p.EnergyJ, p.NormEnergyPct, p.Misses, 100*p.MissRate, p.DeltaEnergyPct)
		}
		writeSweep(w, "margin", g.MarginSweep, "%.2f")
		writeSweep(w, "alpha", g.AlphaSweep, "%.0f")
		if occ := occupancyLine(g); occ != "" {
			fmt.Fprintf(w, "  occupancy traced %s\n", occ)
		}
	}
}

func writeSweep(w io.Writer, name string, pts []SweepPoint, f string) {
	if len(pts) == 0 {
		return
	}
	fmt.Fprintf(w, "  %s sweep:", name)
	for _, p := range pts {
		fmt.Fprintf(w, "  "+f+"→%.1f%%/%d miss", p.Param, p.NormEnergyPct, p.Misses)
	}
	fmt.Fprintln(w)
}

func occupancyLine(g *GroupResult) string {
	if len(g.Traced.Levels) == 0 {
		return ""
	}
	parts := make([]string, 0, len(g.Traced.Levels))
	for _, l := range g.Traced.Levels {
		parts = append(parts, fmt.Sprintf("L%d:%.0f%%", l.Level, 100*l.Frac))
	}
	return strings.Join(parts, " ")
}

// Bench is the machine-readable BENCH_replay.json shape: the full
// result plus a schema version so future fields stay additive.
type Bench struct {
	Schema int     `json:"schema"`
	Replay *Result `json:"replay"`
}

// WriteJSON writes the bench document with stable indentation.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Bench{Schema: 1, Replay: r})
}

// ReadBench parses a bench document (current or bare-Result legacy).
func ReadBench(rd io.Reader) (*Result, error) {
	var b Bench
	if err := json.NewDecoder(rd).Decode(&b); err != nil {
		return nil, fmt.Errorf("replay: parsing baseline: %w", err)
	}
	if b.Replay == nil {
		return nil, fmt.Errorf("replay: baseline has no replay payload")
	}
	return b.Replay, nil
}

// CompareOptions bounds acceptable drift from a committed baseline.
type CompareOptions struct {
	// MaxEnergyRegressPct fails the comparison when a group/policy
	// energy grows by more than this percentage; zero → 5.
	MaxEnergyRegressPct float64
	// MaxMissRegressPts fails when a miss rate grows by more than
	// this many percentage points; zero → 1.
	MaxMissRegressPts float64
}

func (o CompareOptions) withDefaults() CompareOptions {
	if o.MaxEnergyRegressPct <= 0 {
		o.MaxEnergyRegressPct = 5
	}
	if o.MaxMissRegressPts <= 0 {
		o.MaxMissRegressPts = 1
	}
	return o
}

// Compare checks cur against a committed baseline and returns one
// line per regression (empty = pass). Groups or policies present only
// on one side are reported as informational drift, not regressions —
// adding a workload to the smoke run must not fail CI.
func Compare(cur, base *Result, opts CompareOptions) (regressions, notes []string) {
	opts = opts.withDefaults()
	key := func(g *GroupResult) string { return g.Workload + " / " + g.Governor }
	baseGroups := map[string]*GroupResult{}
	for i := range base.Groups {
		baseGroups[key(&base.Groups[i])] = &base.Groups[i]
	}
	seen := map[string]bool{}
	for i := range cur.Groups {
		g := &cur.Groups[i]
		k := key(g)
		seen[k] = true
		bg := baseGroups[k]
		if bg == nil {
			notes = append(notes, fmt.Sprintf("%s: new group (not in baseline)", k))
			continue
		}
		regressions = append(regressions, compareOutcome(k+" traced", &g.Traced, &bg.Traced, opts)...)
		basePol := map[string]*PolicyResult{}
		for j := range bg.Policies {
			basePol[bg.Policies[j].Name] = &bg.Policies[j]
		}
		for j := range g.Policies {
			p := &g.Policies[j]
			bp := basePol[p.Name]
			if bp == nil {
				notes = append(notes, fmt.Sprintf("%s %s: new policy (not in baseline)", k, p.Name))
				continue
			}
			regressions = append(regressions, compareOutcome(k+" "+p.Name, &p.Outcome, &bp.Outcome, opts)...)
		}
	}
	var missing []string
	for k := range baseGroups {
		if !seen[k] {
			missing = append(missing, k)
		}
	}
	sort.Strings(missing)
	for _, k := range missing {
		notes = append(notes, fmt.Sprintf("%s: present in baseline but not in this run", k))
	}
	return regressions, notes
}

func compareOutcome(label string, cur, base *Outcome, opts CompareOptions) []string {
	var out []string
	if base.EnergyJ > 0 {
		pct := 100 * (cur.EnergyJ - base.EnergyJ) / base.EnergyJ
		if pct > opts.MaxEnergyRegressPct {
			out = append(out, fmt.Sprintf("%s: energy %.3f J vs baseline %.3f J (+%.2f%% > %.2f%% allowed)",
				label, cur.EnergyJ, base.EnergyJ, pct, opts.MaxEnergyRegressPct))
		}
	}
	if d := 100 * (cur.MissRate - base.MissRate); d > opts.MaxMissRegressPts {
		out = append(out, fmt.Sprintf("%s: miss rate %.2f%% vs baseline %.2f%% (+%.2f pts > %.2f allowed)",
			label, 100*cur.MissRate, 100*base.MissRate, d, opts.MaxMissRegressPts))
	}
	return out
}

// CheckOrdering asserts the physical sanity every healthy prediction
// trace must satisfy: oracle energy ≤ traced/prediction energy ≤
// performance energy, per group (tolerance tolPct% absorbs switch-
// latency jitter between the traced run and the replayed
// counterfactuals). It returns one line per violation.
func (r *Result) CheckOrdering(tolPct float64) []string {
	tol := 1 + tolPct/100
	var out []string
	for i := range r.Groups {
		g := &r.Groups[i]
		oracle := g.Policy("oracle")
		perf := g.Policy("performance")
		if oracle == nil || perf == nil {
			continue
		}
		if oracle.EnergyJ > g.Traced.EnergyJ*tol {
			out = append(out, fmt.Sprintf("%s/%s: oracle %.3f J exceeds traced %.3f J",
				g.Workload, g.Governor, oracle.EnergyJ, g.Traced.EnergyJ))
		}
		if g.Traced.EnergyJ > perf.EnergyJ*tol {
			out = append(out, fmt.Sprintf("%s/%s: traced %.3f J exceeds performance %.3f J",
				g.Workload, g.Governor, g.Traced.EnergyJ, perf.EnergyJ))
		}
		if p := g.Policy("prediction"); p != nil && !math.IsNaN(p.EnergyJ) {
			if oracle.EnergyJ > p.EnergyJ*tol {
				out = append(out, fmt.Sprintf("%s/%s: oracle %.3f J exceeds replayed prediction %.3f J",
					g.Workload, g.Governor, oracle.EnergyJ, p.EnergyJ))
			}
			if p.EnergyJ > perf.EnergyJ*tol {
				out = append(out, fmt.Sprintf("%s/%s: replayed prediction %.3f J exceeds performance %.3f J",
					g.Workload, g.Governor, p.EnergyJ, perf.EnergyJ))
			}
		}
	}
	return out
}
