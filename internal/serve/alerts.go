package serve

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/alert"
	"repro/internal/obs"
	"repro/internal/render"
)

// alertGauges surface the alert engine's state on /metrics, synced on
// read like the fleet and tsdb gauges.
type alertGauges struct {
	pending *obs.Gauge
	firing  *obs.Gauge

	incidents *obs.Counter
	// incidentMu guards incidentSeen, the incident total already folded
	// into the counter (the engine reports a running total; a counter
	// must only move forward — the SyncRingDropped idiom).
	incidentMu   sync.Mutex
	incidentSeen uint64
}

func newAlertGauges(reg *obs.Registry) *alertGauges {
	return &alertGauges{
		pending: reg.Gauge("dvfsd_alerts_pending",
			"Alert (rule, series) pairs waiting out their For duration."),
		firing: reg.Gauge("dvfsd_alerts_firing",
			"Alert (rule, series) pairs currently firing."),
		incidents: reg.Counter("dvfsd_alert_incidents_total",
			"Incidents opened by the alert engine (firing transitions)."),
	}
}

// sync pushes the engine's live counts into the gauges.
func (g *alertGauges) sync(e *alert.Engine) {
	pending, firing := e.Counts()
	g.pending.Set(float64(pending))
	g.firing.Set(float64(firing))
	total := e.IncidentsTotal()
	g.incidentMu.Lock()
	if total > g.incidentSeen {
		g.incidents.Add(float64(total - g.incidentSeen))
		g.incidentSeen = total
	} else if g.incidentSeen == 0 {
		g.incidents.Add(0) // touch the series so it is visible at zero
	}
	g.incidentMu.Unlock()
}

// energyGauges export the online energy meter, synced from a meter
// snapshot on every scrape tick. Joule and job totals are monotone per
// stream, so they fold into counters with the same seen-map idiom the
// ring-drop counter uses; the per-job, predictor-share, and burn
// numbers are instantaneous gauges.
type energyGauges struct {
	joules  *obs.CounterVec
	jobs    *obs.CounterVec
	perJob  *obs.GaugeVec
	share   *obs.GaugeVec
	burn    *obs.GaugeVec
	skipped *obs.Counter

	mu          sync.Mutex
	jouleSeen   map[string]float64
	jobSeen     map[string]float64
	skippedSeen uint64
}

func newEnergyGauges(reg *obs.Registry) *energyGauges {
	return &energyGauges{
		jouleSeen: map[string]float64{},
		jobSeen:   map[string]float64{},
		joules: reg.CounterVec("dvfsd_energy_joules_total",
			"Modeled energy accumulated per decision stream.", "workload", "device"),
		jobs: reg.CounterVec("dvfsd_energy_jobs_total",
			"Jobs metered per decision stream (completed + one-shot).", "workload", "device"),
		perJob: reg.GaugeVec("dvfsd_energy_per_job_joules",
			"Mean modeled energy per completed job.", "workload", "device"),
		share: reg.GaugeVec("dvfsd_energy_predictor_share",
			"Fraction of a stream's energy spent running the predictor.", "workload", "device"),
		burn: reg.GaugeVec("dvfsd_energy_budget_burn",
			"Windowed watts divided by the -energy-budget; 1.0 means the budget is fully consumed.",
			"workload", "device", "window"),
		skipped: reg.Counter("dvfsd_energy_skipped_total",
			"Decision events the energy meter dropped for lack of a usable platform model."),
	}
}

// sync folds a meter snapshot into the exported metrics.
func (g *energyGauges) sync(m *alert.EnergyMeter) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, st := range m.Snapshot() {
		key := st.Workload + "\xff" + st.Device
		if j := st.TotalJ; j > g.jouleSeen[key] {
			g.joules.With(st.Workload, st.Device).Add(j - g.jouleSeen[key])
			g.jouleSeen[key] = j
		}
		if n := float64(st.Jobs + st.OneShots); n > g.jobSeen[key] {
			g.jobs.With(st.Workload, st.Device).Add(n - g.jobSeen[key])
			g.jobSeen[key] = n
		}
		g.perJob.With(st.Workload, st.Device).Set(st.PerJobJ)
		g.share.With(st.Workload, st.Device).Set(st.PredictorShare)
		if m.BudgetW() > 0 {
			g.burn.With(st.Workload, st.Device, "fast").Set(st.FastBurn)
			g.burn.With(st.Workload, st.Device, "slow").Set(st.SlowBurn)
		}
	}
	if sk := m.Skipped(); sk > g.skippedSeen {
		g.skipped.Add(float64(sk - g.skippedSeen))
		g.skippedSeen = sk
	}
}

// handleAlerts serves GET /v1/alerts: the engine snapshot — rule
// status, active (pending/firing) alerts, and the retained incident
// history, open incidents included.
func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	if s.alerts == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "alerting disabled (start dvfsd with -tsdb-scrape > 0)"})
		return
	}
	writeJSON(w, http.StatusOK, s.alerts.Snapshot())
}

// handleAlertDash serves GET /debug/alerts: the incident timeline —
// rule table with live state, active alerts, and the incident history
// newest-first. Self-contained HTML like the other debug pages.
func (s *Server) handleAlertDash(w http.ResponseWriter, r *http.Request) {
	if s.alerts == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "alerting disabled (start dvfsd with -tsdb-scrape > 0)"})
		return
	}
	snap := s.alerts.Snapshot()
	p := render.NewHTMLPage("dvfsd alerts")
	p.RefreshSec = 5

	p.Section("Overview")
	pending, firing := 0, 0
	for _, a := range snap.Active {
		switch a.State {
		case alert.StatePending:
			pending++
		case alert.StateFiring:
			firing++
		}
	}
	open := 0
	for _, inc := range snap.Incidents {
		if inc.EndMs == 0 {
			open++
		}
	}
	rows := [][]string{
		{"rules", fmt.Sprintf("%d", len(snap.Rules))},
		{"firing", fmt.Sprintf("%d", firing)},
		{"pending", fmt.Sprintf("%d", pending)},
		{"open incidents", fmt.Sprintf("%d", open)},
		{"evaluations", fmt.Sprintf("%d", snap.Evals)},
		{"query errors", fmt.Sprintf("%d", snap.QueryErrors)},
	}
	if snap.LastEvalMs > 0 {
		rows = append(rows, []string{"last evaluation", alertTime(snap.LastEvalMs)})
	}
	p.Table([]string{"", ""}, rows, []bool{false, true})

	p.Section("Rules")
	rRows := make([][]string, 0, len(snap.Rules))
	for _, r := range snap.Rules {
		rRows = append(rRows, []string{
			r.Name, string(r.Kind), r.Metric, r.Severity,
			string(r.State), fmt.Sprintf("%d", r.Series),
		})
	}
	p.Table([]string{"rule", "kind", "metric", "severity", "state", "series"},
		rRows, []bool{false, false, false, false, false, true})

	p.Section("Active alerts")
	if len(snap.Active) == 0 {
		p.Para("Nothing pending or firing.")
	} else {
		aRows := make([][]string, 0, len(snap.Active))
		for _, a := range snap.Active {
			aRows = append(aRows, []string{
				a.Rule, a.Series, string(a.State), a.Severity,
				alertTime(a.SinceMs), fmt.Sprintf("%.4g", a.Value),
			})
		}
		p.Table([]string{"rule", "series", "state", "severity", "since", "value"},
			aRows, []bool{false, false, false, false, false, true})
	}

	p.Section(fmt.Sprintf("Incidents (%d retained, newest first)", len(snap.Incidents)))
	if len(snap.Incidents) == 0 {
		p.Para("No incidents yet — the engine opens one per pending→firing transition.")
	} else {
		iRows := make([][]string, 0, len(snap.Incidents))
		for _, inc := range snap.Incidents {
			end, dur := "open", "—"
			if inc.EndMs > 0 {
				end = alertTime(inc.EndMs)
				dur = (time.Duration(inc.EndMs-inc.StartMs) * time.Millisecond).Round(time.Second).String()
			} else if snap.LastEvalMs > inc.StartMs {
				dur = (time.Duration(snap.LastEvalMs-inc.StartMs) * time.Millisecond).Round(time.Second).String() + "+"
			}
			iRows = append(iRows, []string{
				alertTime(inc.StartMs), end, dur, inc.Rule, inc.Series,
				inc.Severity, fmt.Sprintf("%.4g", inc.Value), inc.Summary,
			})
		}
		p.Table([]string{"started", "ended", "duration", "rule", "series", "severity", "value", "summary"},
			iRows, []bool{false, false, false, false, false, false, true, false})
	}
	p.WriteTo(w)
}

// alertTime renders an epoch-ms timestamp the way the dashboards show
// wall-clock times.
func alertTime(ms int64) string {
	if ms <= 0 {
		return "—"
	}
	return time.UnixMilli(ms).UTC().Format("15:04:05")
}

// firingSpans converts the engine's firing intervals for metric into
// chart overlays for the history panels; nil when alerting is off.
func (s *Server) firingSpans(metric string, fromMs, toMs int64) []render.ChartSpan {
	if s.alerts == nil {
		return nil
	}
	spans := s.alerts.FiringSpans(metric, fromMs, toMs)
	if len(spans) == 0 {
		return nil
	}
	out := make([]render.ChartSpan, len(spans))
	for i, sp := range spans {
		out[i] = render.ChartSpan{
			FromMs: sp.FromMs, ToMs: sp.ToMs,
			Label: sp.Rule + " (" + sp.Severity + ")",
		}
	}
	return out
}
