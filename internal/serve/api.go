package serve

import (
	"repro/internal/features"
	"repro/internal/obs"
)

// Wire types of the dvfsd HTTP API (v1).
//
//	POST /v1/models/{name}         train (TrainConfig body, may be empty)
//	POST /v1/models/{name}?mode=upload   upload a distribution JSON
//	GET  /v1/models                list models (ListResponse)
//	POST /v1/predict               one job (PredictRequest → PredictResponse)
//	POST /v1/predict/batch         many jobs (BatchRequest → BatchResponse)
//	GET  /healthz                  liveness + ready-model count
//	GET  /metrics                  Prometheus text format

// PredictJob is one job to predict: the recorded feature trace plus
// the run-time quantities the controller needs.
type PredictJob struct {
	// Features is the job's recorded feature trace (the client runs
	// the prediction slice or instrumented task locally).
	Features features.WireTrace `json:"features"`
	// Params carries job input parameters; only consulted for models
	// trained with programmer hints (§3.5).
	Params map[string]int64 `json:"params,omitempty"`
	// BudgetSec is the job's remaining time budget; 0 selects the
	// workload's default budget.
	BudgetSec float64 `json:"budget_sec,omitempty"`
	// PredictorSec is the predictor cost already paid client-side,
	// subtracted from the budget (§3.4); 0 when unknown.
	PredictorSec float64 `json:"predictor_sec,omitempty"`
	// Level is the current DVFS level index; nil selects the
	// platform's maximum level.
	Level *int `json:"level,omitempty"`
}

// PredictRequest asks for one decision from a named model.
type PredictRequest struct {
	Model string `json:"model"`
	PredictJob
}

// PredictResponse is the decision for one job.
type PredictResponse struct {
	Model string `json:"model"`
	// Level is the chosen DVFS level index; FreqKHz its clock rate.
	Level   int   `json:"level"`
	FreqKHz int64 `json:"freq_khz"`
	// TFminSec and TFmaxSec are the model's predicted job times at the
	// platform's minimum and maximum frequencies.
	TFminSec float64 `json:"t_fmin_sec"`
	TFmaxSec float64 `json:"t_fmax_sec"`
	// EffBudgetSec is the effective budget after predictor cost.
	EffBudgetSec float64 `json:"eff_budget_sec"`
	// PredictedExecSec is the expected execution time at Level.
	PredictedExecSec float64 `json:"predicted_exec_sec"`
}

// BatchRequest asks for decisions on many jobs of one model.
type BatchRequest struct {
	Model string       `json:"model"`
	Jobs  []PredictJob `json:"jobs"`
}

// BatchResponse carries one result per requested job, in order.
type BatchResponse struct {
	Model   string            `json:"model"`
	Results []PredictResponse `json:"results"`
}

// ListResponse is GET /v1/models.
type ListResponse struct {
	Models []ModelStatus `json:"models"`
}

// HealthResponse is GET /healthz.
type HealthResponse struct {
	Status      string `json:"status"`
	ModelsReady int    `json:"models_ready"`
}

// ErrorResponse is every non-2xx body.
type ErrorResponse struct {
	Error string `json:"error"`
}

// SLOResponse is GET /debug/slo: the configured deadline-miss target
// and each observed workload's burn-rate status.
type SLOResponse struct {
	Target    float64         `json:"target"`
	Workloads []obs.SLOStatus `json:"workloads"`
}
