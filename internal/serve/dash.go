package serve

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/render"
	"repro/internal/tsdb"
)

// dashWindow bounds how many ring events feed the dashboard's rolling
// views; missWindow is the trailing window for the miss-rate series.
const (
	dashWindow = 256
	missWindow = 32
)

// handleDash serves GET /debug/dash: a self-contained operations
// dashboard (inline CSS + SVG, zero scripts, zero external assets)
// that re-polls itself via <meta refresh>. Everything on it comes from
// state the daemon already holds — the tracer ring, the SLO tracker,
// the drift monitor, and the stream broadcaster — so rendering is
// read-only and cheap enough to leave unauthenticated on the debug
// mux.
func (s *Server) handleDash(w http.ResponseWriter, r *http.Request) {
	window, err := parseWindow(r.URL.Query().Get("window"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	p := render.NewHTMLPage("dvfsd operations")
	p.RefreshSec = 5

	var events []obs.DecisionEvent
	if s.tracer != nil {
		events = s.tracer.Snapshot(dashWindow)
	}

	p.Section("Overview")
	rows := [][]string{
		{"uptime", fmt.Sprintf("%.0f s", time.Since(s.start).Seconds())},
		{"models ready", fmt.Sprintf("%d", s.reg.Ready())},
	}
	if s.tracer != nil {
		rows = append(rows,
			[]string{"decisions traced", fmt.Sprintf("%d", s.tracer.Emitted())},
			[]string{"ring overwrites", fmt.Sprintf("%d", s.tracer.Dropped())},
		)
	} else {
		rows = append(rows, []string{"decision tracing", "disabled"})
	}
	if s.stream != nil {
		rows = append(rows,
			[]string{"stream subscribers", fmt.Sprintf("%d", s.stream.Subscribers())},
			[]string{"stream drops", fmt.Sprintf("%d", s.stream.Dropped())},
		)
	}
	p.Table([]string{"", ""}, rows, []bool{false, true})

	if len(events) == 0 {
		p.Note("No decisions in the trace ring yet — send predictions (dvfsload, or POST /v1/predict) and this page fills in.")
		s.energySection(p)
		s.historySection(p, "/debug/dash", window, dashHistoryCharts)
		p.WriteTo(w)
		return
	}
	rep := obs.Analyze(events)

	p.Section(fmt.Sprintf("Rolling window (last %d decisions)", len(events)))
	p.Para("Workloads: " + strings.Join(rep.Workloads, ", "))
	// The sparklines below are event-indexed (one point per decision,
	// not per unit time), so name the wall-clock span they actually
	// cover instead of implying a fixed window.
	first := s.start.Add(time.Duration(events[0].TimeSec * float64(time.Second)))
	last := s.start.Add(time.Duration(events[len(events)-1].TimeSec * float64(time.Second)))
	p.Para(fmt.Sprintf("One point per decision; first sample %s, last sample %s (spanning %s).",
		first.UTC().Format("15:04:05"), last.UTC().Format("15:04:05"),
		last.Sub(first).Round(time.Second)))
	p.Sparkline("miss rate", rollingMissRate(events, missWindow), "%.1f%%")
	if rs := residualSeries(events); len(rs) > 0 {
		p.Sparkline("residual", rs, "%+.3f ms")
	}
	if ds := decisionMicros(events); len(ds) > 0 {
		p.Sparkline("decision time", ds, "%.1f µs")
	}
	p.Sparkline("level", levelSeries(events), "%.0f")

	if len(rep.Phases) > 0 {
		p.Section(fmt.Sprintf("Decision phases (spans on %d of %d events)", rep.SpanEvents, rep.Events))
		phRows := make([][]string, 0, len(rep.Phases))
		for _, ph := range rep.Phases {
			phRows = append(phRows, []string{
				ph.Name, fmt.Sprintf("%d", ph.N),
				obs.FormatDur(ph.MeanSec), obs.FormatDur(ph.P50Sec),
				obs.FormatDur(ph.P95Sec), obs.FormatDur(ph.MaxSec),
			})
		}
		p.Table([]string{"phase", "n", "mean", "p50", "p95", "max"}, phRows,
			[]bool{false, true, true, true, true, true})
	}

	labels := make([]string, 0, len(rep.Levels))
	occs := make([]float64, 0, len(rep.Levels))
	for _, l := range rep.Levels {
		labels = append(labels, fmt.Sprintf("level %d", l.Level))
		occs = append(occs, 100*l.Frac)
	}
	p.BarChart("Level occupancy", labels, occs, "%.1f%%")

	if s.slo != nil {
		p.Section(fmt.Sprintf("SLO burn (target %.2f%% miss rate)", 100*s.slo.Target()))
		sloRows := [][]string{}
		for _, st := range s.slo.Snapshot() {
			alert := ""
			if st.Alerting {
				alert = "ALERT"
			}
			sloRows = append(sloRows, []string{
				st.Workload, fmt.Sprintf("%d", st.Jobs), fmt.Sprintf("%d", st.Misses),
				fmt.Sprintf("%.2f%%", 100*st.MissRate),
				fmt.Sprintf("%.2f", st.FastBurn), fmt.Sprintf("%.2f", st.SlowBurn), alert,
			})
		}
		if len(sloRows) > 0 {
			p.Table([]string{"workload", "jobs", "misses", "miss rate", "fast burn", "slow burn", ""},
				sloRows, []bool{false, true, true, true, true, true, false})
		} else {
			p.Para("No completed jobs observed yet.")
		}
	}

	s.energySection(p)

	if s.tracer != nil && s.tracer.Drift() != nil {
		d := s.tracer.Drift()
		if wls := d.Workloads(); len(wls) > 0 {
			p.Section("Prediction drift")
			dRows := make([][]string, 0, len(wls))
			for _, wl := range wls {
				stale := "fresh"
				if d.Stale(wl) {
					stale = "STALE"
				}
				dRows = append(dRows, []string{
					wl, stale,
					fmt.Sprintf("%.1f%%", 100*d.UnderRate(wl)),
					fmt.Sprintf("%+.3f ms", 1e3*d.Quantile(wl, 0.50)),
					fmt.Sprintf("%+.3f ms", 1e3*d.Quantile(wl, 0.95)),
				})
			}
			p.Table([]string{"workload", "model", "under-predictions", "residual p50", "residual p95"},
				dRows, []bool{false, false, true, true, true})
		}
	}

	s.historySection(p, "/debug/dash", window, dashHistoryCharts)
	p.WriteTo(w)
}

// energySection renders the online energy meter's per-stream totals —
// the live counterpart of dvfsreplay's offline reconstruction.
func (s *Server) energySection(p *render.HTMLPage) {
	if s.energy == nil {
		return
	}
	streams := s.energy.Snapshot()
	if len(streams) == 0 {
		return
	}
	title := "Energy (modeled)"
	if bw := s.energy.BudgetW(); bw > 0 {
		title = fmt.Sprintf("Energy (modeled, budget %.3g W)", bw)
	}
	p.Section(title)
	header := []string{"workload", "device", "jobs", "total", "energy/job", "predictor", "burn fast", "burn slow"}
	rows := make([][]string, 0, len(streams))
	for _, st := range streams {
		burnF, burnS := "—", "—"
		if s.energy.BudgetW() > 0 {
			burnF = fmt.Sprintf("%.2f×", st.FastBurn)
			burnS = fmt.Sprintf("%.2f×", st.SlowBurn)
		}
		rows = append(rows, []string{
			st.Workload, st.Device,
			fmt.Sprintf("%d", st.Jobs+st.OneShots),
			fmt.Sprintf("%.4g J", st.TotalJ),
			fmt.Sprintf("%.4g J", st.PerJobJ),
			fmt.Sprintf("%.1f%%", 100*st.PredictorShare),
			burnF, burnS,
		})
	}
	p.Table(header, rows, []bool{false, false, true, true, true, true, true, true})
	if sk := s.energy.Skipped(); sk > 0 {
		p.Para(fmt.Sprintf("%d events skipped (no usable platform power model).", sk))
	}
}

// dashHistoryCharts are the /debug/dash long-horizon panels, served
// from the embedded telemetry store.
var dashHistoryCharts = []historyChart{
	{title: "requests/s", metric: "dvfsd_requests_total", agg: tsdb.AggRate, format: "%.2f/s"},
	{title: "request p95", metric: "dvfsd_request_duration_seconds",
		labels: []tsdb.Label{{Name: "quantile", Value: "0.95"}},
		scale:  1e3, format: "%.3f ms"},
	{title: "decisions/s", metric: "dvfsd_decisions_total", agg: tsdb.AggRate, format: "%.2f/s"},
	{title: "goroutines", metric: "go_goroutines", format: "%.0f"},
	{title: "heap", metric: "go_heap_bytes", scale: 1.0 / (1 << 20), format: "%.1f MiB"},
	{title: "GC pause p99", metric: "go_gc_pause_seconds",
		labels: []tsdb.Label{{Name: "quantile", Value: "0.99"}},
		scale:  1e3, format: "%.3f ms"},
	{title: "sched latency p99", metric: "go_sched_latency_seconds",
		labels: []tsdb.Label{{Name: "quantile", Value: "0.99"}},
		scale:  1e3, format: "%.3f ms"},
	// Energy and alert panels chart nothing until the meter/engine are
	// configured — an absent metric matches no series and is skipped.
	{title: "energy budget burn (slow)", metric: "dvfsd_energy_budget_burn",
		labels: []tsdb.Label{{Name: "window", Value: "slow"}},
		agg:    tsdb.AggMax, format: "%.2f×"},
	{title: "alerts firing", metric: "dvfsd_alerts_firing",
		agg: tsdb.AggMax, format: "%.0f"},
}

// rollingMissRate is the trailing-window deadline-miss percentage over
// completed events, one point per completed event.
func rollingMissRate(events []obs.DecisionEvent, window int) []float64 {
	var done []bool
	for i := range events {
		if events[i].Done {
			done = append(done, events[i].Missed)
		}
	}
	out := make([]float64, 0, len(done))
	misses := 0
	for i, m := range done {
		if m {
			misses++
		}
		if i >= window && done[i-window] {
			misses--
		}
		n := i + 1
		if n > window {
			n = window
		}
		out = append(out, 100*float64(misses)/float64(n))
	}
	return out
}

// residualSeries is actual − predicted in milliseconds per completed
// predicted event.
func residualSeries(events []obs.DecisionEvent) []float64 {
	var out []float64
	for i := range events {
		if events[i].Done && events[i].Predicted {
			out = append(out, 1e3*events[i].ResidualSec)
		}
	}
	return out
}

// decisionMicros is the measured decision-phase time in microseconds
// per span-carrying event (the decide/serve root span).
func decisionMicros(events []obs.DecisionEvent) []float64 {
	var out []float64
	for i := range events {
		for _, sp := range events[i].Spans {
			if sp.Depth == 0 && (sp.Name == obs.PhaseDecide || sp.Name == obs.PhaseServe) {
				out = append(out, 1e6*sp.DurSec)
				break
			}
		}
	}
	return out
}

// levelSeries is the chosen DVFS level per event.
func levelSeries(events []obs.DecisionEvent) []float64 {
	out := make([]float64, len(events))
	for i := range events {
		out[i] = float64(events[i].Level)
	}
	return out
}
