package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

func getDash(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/debug/dash")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dash: HTTP %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestDashRenders drives the dashboard from synthetic ring events: it
// must be a complete self-contained HTML document with sparklines,
// the phase table, level occupancy, SLO and drift sections, and a
// meta-refresh — and reference no external asset or script.
func TestDashRenders(t *testing.T) {
	reg, err := NewRegistry(RegistryOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	drift := obs.NewDriftMonitor(obs.DriftConfig{Window: 32, MinSamples: 2})
	slo := obs.NewSLOTracker(obs.SLOConfig{Target: 0.01})
	tracer := obs.NewTracer(obs.TracerOptions{RingSize: 128, Drift: drift, SLO: slo})
	ts := httptest.NewServer(NewServer(reg, ServerOptions{
		Tracer: tracer, SLO: slo,
		Stream:      obs.NewBroadcaster(obs.BroadcasterOptions{}),
		EnableDebug: true,
	}))
	defer ts.Close()

	for i := 0; i < 20; i++ {
		p := tracer.Begin(obs.DecisionEvent{
			Workload: "sha", Governor: "prediction", Job: i,
			TimeSec: float64(i) * 0.05, Predicted: true,
			PredictedExecSec: 0.020, EffBudgetSec: 0.049, Level: i % 4,
			Spans: []obs.Span{
				{Name: obs.PhaseDecide, StartSec: 0, DurSec: 0.001},
				{Name: obs.PhasePredict, Depth: 1, StartSec: 0.0002, DurSec: 0.0004},
			},
			SpanTotalSec: 0.001,
		})
		p.End(0.021, i == 7)
	}

	body := getDash(t, ts)
	for _, want := range []string{
		"<!DOCTYPE html>",
		`<meta http-equiv="refresh" content="5">`,
		"dvfsd operations",
		"decisions traced", ">20<",
		"stream subscribers",
		"<svg", "polyline", // sparklines
		"miss rate", "decision time",
		"Decision phases", obs.PhaseDecide, obs.PhasePredict,
		"Level occupancy",
		"SLO burn", "sha",
		"Prediction drift",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	for _, banned := range []string{"<script", "http://", "https://"} {
		if strings.Contains(body, banned) {
			t.Errorf("dashboard must be self-contained, found %q", banned)
		}
	}
}

// TestDashEmptyAndDisabled: with no traced decisions the page still
// renders (with a pointer at dvfsload), and without EnableDebug the
// route does not exist.
func TestDashEmptyAndDisabled(t *testing.T) {
	reg, err := NewRegistry(RegistryOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ts := httptest.NewServer(NewServer(reg, ServerOptions{
		Tracer: obs.NewTracer(obs.TracerOptions{RingSize: 8}), EnableDebug: true,
	}))
	defer ts.Close()
	body := getDash(t, ts)
	if !strings.Contains(body, "No decisions in the trace ring yet") {
		t.Errorf("empty dashboard missing hint:\n%s", body)
	}

	ts2 := httptest.NewServer(NewServer(reg, ServerOptions{}))
	defer ts2.Close()
	resp, err := http.Get(ts2.URL + "/debug/dash")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("dash without debug: HTTP %d, want 404", resp.StatusCode)
	}
}
