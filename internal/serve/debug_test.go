package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/platform"
)

func TestDebugDecisionsAndPprof(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	plat := platform.ODROIDXU3A7()
	sw := platform.MeasureSwitchTable(plat, 500, 0.95, testSeed)
	reg, err := NewRegistry(RegistryOptions{Plat: plat, Switch: sw, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	tracer := obs.NewTracer(obs.TracerOptions{RingSize: 64})
	srv := NewServer(reg, ServerOptions{Tracer: tracer, EnableDebug: true})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ctl := referenceController(t, plat, sw, "sha")
	var buf bytes.Buffer
	if err := core.SaveController(&buf, ctl); err != nil {
		t.Fatal(err)
	}
	if resp, err := http.Post(ts.URL+"/v1/models/sha?mode=upload", "application/json", bytes.NewReader(buf.Bytes())); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: %v HTTP %v", err, resp.StatusCode)
	}

	jobs, err := GenerateJobs("sha", 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, job := range jobs {
		body, _ := json.Marshal(PredictRequest{Model: "sha", PredictJob: job})
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict: HTTP %d", resp.StatusCode)
		}
	}

	// Every served prediction landed in the ring as a one-shot event.
	resp, err := http.Get(ts.URL + "/debug/decisions")
	if err != nil {
		t.Fatal(err)
	}
	var events []obs.DecisionEvent
	err = json.NewDecoder(resp.Body).Decode(&events)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(jobs) {
		t.Fatalf("debug/decisions returned %d events, want %d", len(events), len(jobs))
	}
	for i, e := range events {
		if e.Workload != "sha" || e.Governor != "serve" || !e.Predicted || e.Done {
			t.Errorf("event %d: %+v", i, e)
		}
		if e.FeatHash == 0 || e.PredictedExecSec <= 0 {
			t.Errorf("event %d missing prediction detail: %+v", i, e)
		}
	}

	// ?n= bounds the dump; garbage n is a 400.
	resp, err = http.Get(ts.URL + "/debug/decisions?n=1")
	if err != nil {
		t.Fatal(err)
	}
	events = nil
	json.NewDecoder(resp.Body).Decode(&events)
	resp.Body.Close()
	if len(events) != 1 {
		t.Errorf("n=1 returned %d events", len(events))
	}
	resp, err = http.Get(ts.URL + "/debug/decisions?n=zero")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad n: HTTP %d, want 400", resp.StatusCode)
	}

	// pprof is mounted under /debug/pprof/.
	resp, err = http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index: HTTP %d", resp.StatusCode)
	}

	// The scrape path fills the queue-depth and model-age gauges.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mb bytes.Buffer
	mb.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"dvfsd_build_queue_depth 0",
		`dvfsd_model_age_seconds{model="sha"}`,
	} {
		if !strings.Contains(mb.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, mb.String())
		}
	}
}

// Debug surfaces are opt-in: without EnableDebug the routes 404, and
// with debug but no tracer /debug/decisions explains itself.
func TestDebugDisabledByDefault(t *testing.T) {
	reg, err := NewRegistry(RegistryOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ts := httptest.NewServer(NewServer(reg, ServerOptions{}))
	defer ts.Close()
	for _, path := range []string{"/debug/decisions", "/debug/pprof/"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s without debug: HTTP %d, want 404", path, resp.StatusCode)
		}
	}

	ts2 := httptest.NewServer(NewServer(reg, ServerOptions{EnableDebug: true}))
	defer ts2.Close()
	resp, err := http.Get(ts2.URL + "/debug/decisions")
	if err != nil {
		t.Fatal(err)
	}
	var e ErrorResponse
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(e.Error, "tracing disabled") {
		t.Errorf("no-tracer decisions: HTTP %d, %+v", resp.StatusCode, e)
	}
}
