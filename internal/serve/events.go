package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// handleEvents serves GET /v1/events: the live decision stream in SSE
// framing (see obs.WriteSSE). Query parameters take the standard
// obs.EventFilter shape — ?workload= and ?since= filter the live
// stream, ?last=N first replays up to N ring-backlog events so a new
// subscriber starts with context instead of silence. Each subscriber
// has a bounded queue; events it cannot keep up with are dropped (and
// counted in obs_stream_dropped_total), never buffered unboundedly.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	f, err := obs.FilterFromQuery(r.URL.Query())
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: "streaming unsupported by connection"})
		return
	}
	// Subscribe before reading the backlog so no event can fall between
	// snapshot and live feed; overlap is deduplicated by sequence number.
	sub := s.stream.Subscribe(f)
	defer sub.Cancel()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	var lastSeq uint64
	replayed := false
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		// A reconnecting follower (obs.Follow) resumes from the last
		// sequence it saw: replay everything newer from the ring backlog
		// and suppress live events at or below it. Takes precedence over
		// ?last= — the client already had its initial backlog.
		if id, err := strconv.ParseUint(v, 10, 64); err == nil {
			lastSeq = id
			replayed = true
			if s.tracer != nil {
				for _, e := range f.Apply(s.tracer.Snapshot(0)) {
					if e.Seq <= id {
						continue
					}
					if err := obs.WriteSSE(w, &e); err != nil {
						return
					}
					lastSeq = e.Seq
				}
			}
		}
	} else if f.Last > 0 && s.tracer != nil {
		for _, e := range f.Apply(s.tracer.Snapshot(0)) {
			if err := obs.WriteSSE(w, &e); err != nil {
				return
			}
			lastSeq = e.Seq
			replayed = true
		}
	}
	fl.Flush()

	keepalive := time.NewTicker(15 * time.Second)
	defer keepalive.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case e, ok := <-sub.C:
			if !ok {
				return // broadcaster shut down
			}
			if replayed && e.Seq <= lastSeq {
				continue // already sent from the backlog
			}
			if err := obs.WriteSSE(w, &e); err != nil {
				return
			}
			fl.Flush()
		case <-keepalive.C:
			// SSE comment: keeps idle connections alive through proxies
			// and lets the client detect a dead server.
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
