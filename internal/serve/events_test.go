package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/platform"
)

// streamStack builds a serve stack with the full live-telemetry wiring
// cmd/dvfsd uses: tracer ring → broadcaster sink → /v1/events, plus
// the debug surfaces, with one uploaded sha model.
func streamStack(t *testing.T) (*httptest.Server, *obs.Tracer, *obs.Broadcaster) {
	t.Helper()
	plat := platform.ODROIDXU3A7()
	sw := platform.MeasureSwitchTable(plat, 500, 0.95, testSeed)
	reg, err := NewRegistry(RegistryOptions{Plat: plat, Switch: sw, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	stream := obs.NewBroadcaster(obs.BroadcasterOptions{QueueSize: 64})
	tracer := obs.NewTracer(obs.TracerOptions{RingSize: 64, Sinks: []obs.Sink{stream}})
	srv := NewServer(reg, ServerOptions{Tracer: tracer, Stream: stream, EnableDebug: true})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	ctl := referenceController(t, plat, sw, "sha")
	var buf bytes.Buffer
	if err := core.SaveController(&buf, ctl); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/models/sha?mode=upload", "application/json", bytes.NewReader(buf.Bytes()))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: %v HTTP %v", err, resp)
	}
	resp.Body.Close()
	return ts, tracer, stream
}

func postPredictions(t *testing.T, ts *httptest.Server, n int) {
	t.Helper()
	jobs, err := GenerateJobs("sha", n, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, job := range jobs {
		body, _ := json.Marshal(PredictRequest{Model: "sha", PredictJob: job})
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict: HTTP %d", resp.StatusCode)
		}
	}
}

// TestEventsStreamE2E is the serve-side acceptance path: a live
// follower subscribed to /v1/events sees every prediction the daemon
// makes, in SSE framing, carrying the serve span ledger whose phases
// nest and sum consistently.
func TestEventsStreamE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	ts, _, _ := streamStack(t)

	const n = 6
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got := make(chan obs.DecisionEvent, n)
	errc := make(chan error, 1)
	go func() {
		errc <- obs.Follow(ctx, ts.URL+"/v1/events", obs.FollowOptions{Max: n},
			func(e obs.DecisionEvent) error {
				got <- e
				return nil
			})
	}()
	// Give the follower a moment to connect before generating events;
	// the stream has no replay buffer without ?last=.
	time.Sleep(100 * time.Millisecond)
	postPredictions(t, ts, n)

	if err := <-errc; err != nil {
		t.Fatalf("follow: %v", err)
	}
	close(got)
	count := 0
	for e := range got {
		count++
		if e.Workload != "sha" || e.Governor != "serve" || !e.Predicted {
			t.Errorf("streamed event: %+v", e)
		}
		if len(e.Spans) == 0 {
			t.Fatalf("streamed event carries no span ledger: %+v", e)
		}
		// The serve ledger: a "serve" root with ingest, lookup, predict,
		// and select nested under it.
		root := e.Spans[0]
		if root.Name != obs.PhaseServe || root.Depth != 0 {
			t.Fatalf("ledger root = %+v", root)
		}
		var childSum float64
		seen := map[string]bool{}
		for _, sp := range e.Spans[1:] {
			if sp.Depth != 1 {
				t.Errorf("unexpected depth in serve ledger: %+v", sp)
			}
			seen[sp.Name] = true
			childSum += sp.DurSec
		}
		for _, want := range []string{obs.PhaseIngest, obs.PhaseLookup, obs.PhasePredict, obs.PhaseSelect} {
			if !seen[want] {
				t.Errorf("serve ledger missing %s: %+v", want, e.Spans)
			}
		}
		const eps = 1e-9
		if childSum > root.DurSec+eps {
			t.Errorf("serve children sum %g > root %g", childSum, root.DurSec)
		}
		// One-shot events have no outcome spans, so the ledger's extent
		// is the serve root itself — the decision's end-to-end time.
		if diff := e.SpanTotalSec - root.EndSec(); diff > eps || diff < -eps {
			t.Errorf("span total %g != serve end %g", e.SpanTotalSec, root.EndSec())
		}
	}
	if count != n {
		t.Fatalf("followed %d events, want %d", count, n)
	}
}

// TestEventsBacklogReplay: ?last=N replays ring history to a fresh
// subscriber, so following after the fact still yields events — this
// is what makes `dvfstrace -follow -last N` deterministic in scripts.
func TestEventsBacklogReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	ts, tracer, _ := streamStack(t)
	postPredictions(t, ts, 5)
	if tracer.Emitted() != 5 {
		t.Fatalf("emitted = %d", tracer.Emitted())
	}

	var seqs []uint64
	err := obs.Follow(context.Background(), ts.URL+"/v1/events",
		obs.FollowOptions{Filter: obs.EventFilter{Last: 3}, Max: 3},
		func(e obs.DecisionEvent) error {
			seqs = append(seqs, e.Seq)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 || seqs[0] != 2 || seqs[2] != 4 {
		t.Errorf("backlog seqs = %v, want [2 3 4]", seqs)
	}

	// A filter that matches nothing replays nothing and stays live
	// (cancel via context to end the test).
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	n := 0
	err = obs.Follow(ctx, ts.URL+"/v1/events",
		obs.FollowOptions{Filter: obs.EventFilter{Workload: "nope", Last: 5}},
		func(obs.DecisionEvent) error { n++; return nil })
	if err != nil || n != 0 {
		t.Errorf("non-matching follow: err=%v n=%d", err, n)
	}
}

func TestEventsEndpointErrors(t *testing.T) {
	reg, err := NewRegistry(RegistryOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	// No Stream configured → the route does not exist.
	ts := httptest.NewServer(NewServer(reg, ServerOptions{}))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("no-stream events: HTTP %d, want 404", resp.StatusCode)
	}

	// Bad filter parameters are a 400, not a hung stream.
	stream := obs.NewBroadcaster(obs.BroadcasterOptions{})
	defer stream.Close()
	ts2 := httptest.NewServer(NewServer(reg, ServerOptions{Stream: stream}))
	defer ts2.Close()
	resp, err = http.Get(ts2.URL + "/v1/events?since=yesterday")
	if err != nil {
		t.Fatal(err)
	}
	var e ErrorResponse
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(e.Error, "invalid since") {
		t.Errorf("bad since: HTTP %d, %+v", resp.StatusCode, e)
	}
}

// TestDecisionsFilter exercises the satellite: /debug/decisions takes
// the same workload/since/last query parameters as the stream and the
// CLI flags.
func TestDecisionsFilter(t *testing.T) {
	reg, err := NewRegistry(RegistryOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	tracer := obs.NewTracer(obs.TracerOptions{RingSize: 64})
	ts := httptest.NewServer(NewServer(reg, ServerOptions{Tracer: tracer, EnableDebug: true}))
	defer ts.Close()

	for i := 0; i < 6; i++ {
		wl := "sha"
		if i%2 == 1 {
			wl = "ldecode"
		}
		tracer.Emit(obs.DecisionEvent{Workload: wl, Job: i, TimeSec: float64(i)})
	}

	fetch := func(query string) []obs.DecisionEvent {
		t.Helper()
		resp, err := http.Get(ts.URL + "/debug/decisions" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: HTTP %d", query, resp.StatusCode)
		}
		var events []obs.DecisionEvent
		if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
			t.Fatal(err)
		}
		return events
	}

	if got := fetch("?workload=sha"); len(got) != 3 || got[0].Workload != "sha" {
		t.Errorf("workload filter: %+v", got)
	}
	if got := fetch("?since=4"); len(got) != 2 || got[0].TimeSec != 4 {
		t.Errorf("since filter: %+v", got)
	}
	if got := fetch("?last=2"); len(got) != 2 || got[0].Job != 4 {
		t.Errorf("last filter: %+v", got)
	}
	if got := fetch("?workload=ldecode&last=1"); len(got) != 1 || got[0].Job != 5 {
		t.Errorf("combined filter: %+v", got)
	}
	if got := fetch("?workload=nope"); len(got) != 0 {
		t.Errorf("non-matching filter returned %+v", got)
	}
	resp, err := http.Get(ts.URL + "/debug/decisions?last=-3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad last: HTTP %d, want 400", resp.StatusCode)
	}
}
