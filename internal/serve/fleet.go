package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/obs"
	"repro/internal/render"
	"repro/internal/trace"
	"repro/internal/tsdb"
)

// fleetGauges are the Prometheus-exposed fleet aggregates, synced from
// a FleetTracker snapshot on every /metrics scrape (the same
// sync-on-read pattern handleMetrics uses for model ages).
type fleetGauges struct {
	devices   *obs.GaugeVec // by health class
	missRate  *obs.Gauge
	resid     *obs.GaugeVec // residual fraction by quantile
	worst     *obs.Gauge    // worst device health score
	ingested  *obs.Counter  // events accepted by /v1/fleet/ingest
	completed *obs.Gauge
}

func newFleetGauges(reg *obs.Registry) *fleetGauges {
	return &fleetGauges{
		devices: reg.GaugeVec("dvfsd_fleet_devices",
			"tracked fleet devices by health class", "class"),
		missRate: reg.Gauge("dvfsd_fleet_miss_rate",
			"fleet-wide deadline miss fraction over ingested completed jobs"),
		resid: reg.GaugeVec("dvfsd_fleet_residual_frac",
			"fleet |residual|/predicted quantiles (sketch-backed)", "q"),
		worst: reg.Gauge("dvfsd_fleet_worst_score",
			"health score of the worst classified device"),
		ingested: reg.Counter("dvfsd_fleet_ingested_events_total",
			"decision events accepted by /v1/fleet/ingest"),
		completed: reg.Gauge("dvfsd_fleet_completed_jobs",
			"completed jobs observed by the fleet tracker"),
	}
}

// sync pushes a snapshot into the gauges.
func (g *fleetGauges) sync(s *obs.FleetStatus) {
	g.devices.With(obs.ClassHealthy).Set(float64(s.Healthy))
	g.devices.With(obs.ClassDegraded).Set(float64(s.Degraded))
	g.devices.With(obs.ClassOutlier).Set(float64(s.Outliers))
	g.devices.With(obs.ClassFresh).Set(float64(s.Fresh))
	g.missRate.Set(s.MissRate)
	g.resid.With("0.5").Set(s.ResidualFrac.P50)
	g.resid.With("0.95").Set(s.ResidualFrac.P95)
	g.resid.With("0.99").Set(s.ResidualFrac.P99)
	g.completed.Set(float64(s.Completed))
	if len(s.Worst) > 0 {
		g.worst.Set(s.Worst[0].Score)
	}
}

// FleetIngestResponse acknowledges a trace upload.
type FleetIngestResponse struct {
	Events    int    `json:"events"`
	Format    string `json:"format"`
	Devices   int    `json:"devices"`
	Completed uint64 `json:"completed"`
}

// handleFleetIngest accepts a decision trace — JSONL or the DVFSTRC1
// binary format, sniffed from the first bytes — and streams every
// event into the fleet tracker (plus the fleet SLO tracker, the
// energy meter, and the drift monitor when configured). Bodies stream
// through fixed-size buffers: a multi-GB binary fleet trace never
// materializes in memory.
func (s *Server) handleFleetIngest(w http.ResponseWriter, r *http.Request) {
	br := bufio.NewReaderSize(r.Body, 64*1024)
	head, err := br.Peek(8)
	if err != nil && len(head) == 0 {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "empty trace body"})
		return
	}

	n := 0
	emit := func(e *obs.DecisionEvent) {
		s.fleet.Emit(e)
		if s.fleetSLO != nil {
			s.fleetSLO.ObserveEvent(e)
		}
		if s.energy != nil {
			s.energy.Emit(e)
		}
		if s.drift != nil && e.Done && e.Predicted {
			// Ingested traces are the only completed predictions this
			// daemon sees (served jobs run client-side), so they are what
			// can flip dvfsd_model_stale. Keyed apart from any co-located
			// controller's own residual stream.
			s.drift.Observe("fleet:"+e.Workload, e.ResidualSec)
		}
		n++
	}
	format := "jsonl"
	if trace.IsBinaryTrace(head) {
		format = "binary"
		err = trace.ScanBinary(br, func(e *obs.DecisionEvent) error {
			emit(e)
			return nil
		})
	} else {
		err = scanJSONL(br, emit)
	}
	if err != nil {
		// Events already ingested stay ingested — the tracker is a
		// monotone accumulator — but the client must know its upload was
		// cut short.
		writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: fmt.Sprintf("after %d events: %v", n, err)})
		return
	}
	if s.fleetG != nil {
		s.fleetG.ingested.Add(float64(n))
	}
	snap := s.fleet.Snapshot()
	writeJSON(w, http.StatusOK, FleetIngestResponse{
		Events:    n,
		Format:    format,
		Devices:   snap.Devices,
		Completed: snap.Completed,
	})
}

// scanJSONL streams newline-delimited DecisionEvents without holding
// the whole trace: one decode per line, 1 MiB line cap (matching the
// JSONL sink's own output scale).
func scanJSONL(r io.Reader, emit func(*obs.DecisionEvent)) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e obs.DecisionEvent
		if err := json.Unmarshal(b, &e); err != nil {
			return fmt.Errorf("jsonl line %d: %w", line, err)
		}
		emit(&e)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("jsonl line %d: %w", line, err)
	}
	return nil
}

// handleFleetStatus serves GET /v1/fleet as the machine-readable
// snapshot the dashboard renders.
func (s *Server) handleFleetStatus(w http.ResponseWriter, r *http.Request) {
	snap := s.fleet.Snapshot()
	writeJSON(w, http.StatusOK, snap)
}

// handleFleetDash serves GET /debug/fleet: the fleet-scale sibling of
// /debug/dash — health distribution, sketch-backed quantile bands over
// the ingest history, the top-K worst devices with attribution, heavy-
// hitter miss counts, and the fleet SLO burn table. Self-contained
// HTML, auto-refreshing, read-only.
func (s *Server) handleFleetDash(w http.ResponseWriter, r *http.Request) {
	window, err := parseWindow(r.URL.Query().Get("window"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	p := render.NewHTMLPage("dvfsd fleet")
	p.RefreshSec = 5
	snap := s.fleet.Snapshot()

	p.Section("Overview")
	rows := [][]string{
		{"devices", fmt.Sprintf("%d", snap.Devices)},
		{"events ingested", fmt.Sprintf("%d", snap.Events)},
		{"completed jobs", fmt.Sprintf("%d", snap.Completed)},
		{"fleet miss rate", fmt.Sprintf("%.2f%%", 100*snap.MissRate)},
		{"residual frac p50 / p95 / p99", fmt.Sprintf("%.3f / %.3f / %.3f",
			snap.ResidualFrac.P50, snap.ResidualFrac.P95, snap.ResidualFrac.P99)},
	}
	p.Table([]string{"", ""}, rows, []bool{false, true})

	if snap.Events == 0 {
		p.Note("No fleet events ingested yet — POST a decision trace (JSONL or binary) to /v1/fleet/ingest and this page fills in.")
		s.historySection(p, "/debug/fleet", window, fleetHistoryCharts)
		p.WriteTo(w)
		return
	}

	p.Section("Health distribution")
	p.BarChart("Devices by class",
		[]string{"healthy", "degraded", "outlier", "fresh"},
		[]float64{float64(snap.Healthy), float64(snap.Degraded),
			float64(snap.Outliers), float64(snap.Fresh)},
		"%.0f")

	if len(snap.History) > 1 {
		p.Section(fmt.Sprintf("Ingest history (%d samples)", len(snap.History)))
		miss := make([]float64, len(snap.History))
		lo := make([]float64, len(snap.History))
		mid := make([]float64, len(snap.History))
		hi := make([]float64, len(snap.History))
		for i, pt := range snap.History {
			miss[i] = 100 * pt.MissRate
			lo[i] = pt.ResidP50
			mid[i] = pt.ResidP95
			hi[i] = pt.ResidP99
		}
		p.Sparkline("fleet miss rate", miss, "%.2f%%")
		p.Band("residual frac p50–p99 (p95 line)", lo, mid, hi, "%.3f")
	}

	if len(snap.Worst) > 0 {
		p.Section(fmt.Sprintf("Worst devices (top %d by health score)", len(snap.Worst)))
		header := []string{"device", "platform", "workload", "jobs", "miss %", "miss ewma", "drift", "energy/job", "score", "class", "cause"}
		dRows := make([][]string, 0, len(snap.Worst))
		for _, d := range snap.Worst {
			dRows = append(dRows, []string{
				d.Device, d.Platform, d.Workload,
				fmt.Sprintf("%d", d.Jobs),
				fmt.Sprintf("%.2f", 100*d.MissRate),
				fmt.Sprintf("%.4f", d.MissEWMA),
				fmt.Sprintf("%.4f", d.DriftEWMA),
				fmt.Sprintf("%.4g J", d.EnergyPerJob),
				fmt.Sprintf("%.3f", d.Score),
				d.Class,
				d.Attribution,
			})
		}
		p.Table(header, dRows, []bool{false, false, false, true, true, true, true, true, true, false, false})
	}

	if len(snap.TopMiss) > 0 {
		p.Section("Top deadline-missing devices (space-saving sketch)")
		header := []string{"device", "misses ≤", "guaranteed ≥"}
		hRows := make([][]string, 0, len(snap.TopMiss))
		for _, h := range snap.TopMiss {
			hRows = append(hRows, []string{
				h.Key,
				fmt.Sprintf("%d", h.Count),
				fmt.Sprintf("%d", h.Count-h.Err),
			})
		}
		p.Table(header, hRows, []bool{false, true, true})
	}

	if s.fleetSLO != nil {
		p.Section(fmt.Sprintf("Fleet SLO burn (target %.2f%% miss rate)", 100*s.fleetSLO.Target()))
		sloRows := [][]string{}
		for _, st := range s.fleetSLO.Snapshot() {
			alert := ""
			if st.Alerting {
				alert = "ALERT"
			}
			sloRows = append(sloRows, []string{
				st.Workload, fmt.Sprintf("%d", st.Jobs), fmt.Sprintf("%d", st.Misses),
				fmt.Sprintf("%.2f%%", 100*st.MissRate),
				fmt.Sprintf("%.2f", st.FastBurn), fmt.Sprintf("%.2f", st.SlowBurn), alert,
			})
		}
		if len(sloRows) > 0 {
			p.Table([]string{"key", "jobs", "misses", "miss rate", "fast burn", "slow burn", ""},
				sloRows, []bool{false, true, true, true, true, true, false})
		} else {
			p.Para("No completed jobs observed yet.")
		}
	}

	s.historySection(p, "/debug/fleet", window, fleetHistoryCharts)
	p.WriteTo(w)
}

// fleetHistoryCharts are the /debug/fleet long-horizon panels. The
// fleet gauges are synced per telemetry-scrape tick (SyncGauges), so
// these series move even when nobody polls /metrics.
var fleetHistoryCharts = []historyChart{
	{title: "fleet miss rate", metric: "dvfsd_fleet_miss_rate", scale: 100, format: "%.2f%%"},
	{title: "ingested events/s", metric: "dvfsd_fleet_ingested_events_total",
		agg: tsdb.AggRate, format: "%.1f/s"},
	{title: "residual frac p95", metric: "dvfsd_fleet_residual_frac",
		labels: []tsdb.Label{{Name: "q", Value: "0.95"}}, format: "%.3f"},
	{title: "worst device score", metric: "dvfsd_fleet_worst_score", format: "%.3f"},
	{title: "degraded devices", metric: "dvfsd_fleet_devices",
		labels: []tsdb.Label{{Name: "class", Value: obs.ClassDegraded}},
		agg:    tsdb.AggMax, format: "%.0f"},
}
