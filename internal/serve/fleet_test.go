package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

// fleetTestEvent is one completed, device-labeled decision for ingest
// tests. residFrac sets |residual|/predicted.
func fleetTestEvent(dev, workload string, job int, missed bool, residFrac float64) obs.DecisionEvent {
	return obs.DecisionEvent{
		Workload:         workload,
		Platform:         "odroid-a7",
		Device:           dev,
		Job:              job,
		Predicted:        true,
		PredictedExecSec: 0.010,
		ResidualSec:      residFrac * 0.010,
		ActualExecSec:    0.010 * (1 + residFrac),
		FreqKHz:          1_400_000,
		Done:             true,
		Missed:           missed,
	}
}

func newFleetServer(t *testing.T) (*httptest.Server, *obs.FleetTracker) {
	t.Helper()
	reg, err := NewRegistry(RegistryOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	ft := obs.NewFleetTracker(obs.FleetConfig{MinJobs: 8, TopK: 5})
	fslo := obs.NewSLOTracker(obs.SLOConfig{Target: 0.01, MaxKeys: 32})
	ts := httptest.NewServer(NewServer(reg, ServerOptions{
		Fleet:       ft,
		FleetSLO:    fslo,
		EnableDebug: true,
	}))
	t.Cleanup(ts.Close)
	return ts, ft
}

// TestFleetIngestBinaryAndDash uploads a binary trace big enough to
// populate the history ring, then checks the ingest ack, the JSON
// snapshot, the dashboard, and the Prometheus gauges — and that the
// dashboard renders deterministically for a quiesced tracker.
func TestFleetIngestBinaryAndDash(t *testing.T) {
	ts, _ := newFleetServer(t)

	// 3 devices × 400 jobs: dev-bad misses 1 in 4 and drifts, the
	// others behave. >1024 completed jobs → ≥2 history samples.
	var buf bytes.Buffer
	bw := trace.NewBinaryWriter(&buf)
	for j := 0; j < 400; j++ {
		for _, dev := range []string{"dev-good-1", "dev-good-2", "dev-bad"} {
			missed, resid := false, 0.01
			if dev == "dev-bad" {
				missed, resid = j%4 == 0, 0.6
			}
			e := fleetTestEvent(dev, "mpeg", j, missed, resid)
			bw.Emit(&e)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/v1/fleet/ingest", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var ack FleetIngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: HTTP %d", resp.StatusCode)
	}
	if ack.Format != "binary" || ack.Events != 1200 || ack.Devices != 3 || ack.Completed != 1200 {
		t.Fatalf("ingest ack = %+v", ack)
	}

	// Machine-readable snapshot.
	resp, err = http.Get(ts.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.FleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Devices != 3 || snap.Completed != 1200 {
		t.Fatalf("snapshot = devices %d completed %d", snap.Devices, snap.Completed)
	}
	if snap.Outliers+snap.Degraded == 0 {
		t.Fatalf("dev-bad not flagged: %+v", snap)
	}
	if len(snap.History) < 2 {
		t.Fatalf("history has %d points, want ≥ 2", len(snap.History))
	}

	// Dashboard.
	get := func() string {
		t.Helper()
		r, err := http.Get(ts.URL + "/debug/fleet")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("dash: HTTP %d", r.StatusCode)
		}
		b, err := io.ReadAll(r.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	body := get()
	for _, want := range []string{
		"<!DOCTYPE html>",
		`<meta http-equiv="refresh" content="5">`,
		"dvfsd fleet",
		"devices", ">3<",
		"Health distribution",
		"Ingest history",
		`class="band"`, "polygon", // residual quantile band
		"polyline", // miss-rate sparkline
		"Worst devices", "dev-bad",
		"Top deadline-missing devices",
		"Fleet SLO burn",
		"fleet", "platform:odroid-a7", "workload:mpeg",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("fleet dashboard missing %q", want)
		}
	}
	for _, forbid := range []string{"src=", "http://", "https://"} {
		if strings.Contains(body, forbid) {
			t.Errorf("fleet dashboard must be self-contained, found %q", forbid)
		}
	}
	if again := get(); body != again {
		t.Error("fleet dashboard not deterministic for an idle tracker")
	}

	// dev-bad must top the worst table with a non-fresh class.
	var worstRow string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, "dev-bad") {
			worstRow = line
			break
		}
	}
	if worstRow == "" || !strings.Contains(body, "outlier") && !strings.Contains(body, "degraded") {
		t.Errorf("worst table missing flagged dev-bad row: %q", worstRow)
	}

	// Prometheus gauges ride the shared registry.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(mb)
	for _, want := range []string{
		`dvfsd_fleet_devices{class="healthy"} 2`,
		"dvfsd_fleet_miss_rate",
		`dvfsd_fleet_residual_frac{q="0.99"}`,
		"dvfsd_fleet_ingested_events_total 1200",
		"dvfsd_fleet_completed_jobs 1200",
		"dvfsd_fleet_worst_score",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestFleetIngestJSONL exercises the JSONL sniffing path and the
// midstream-error contract (400 naming the line, prior events kept).
func TestFleetIngestJSONL(t *testing.T) {
	ts, ft := newFleetServer(t)

	var buf bytes.Buffer
	for j := 0; j < 10; j++ {
		e := fleetTestEvent("dev-j", "sha", j, j%2 == 0, 0.1)
		b, _ := json.Marshal(&e)
		buf.Write(b)
		buf.WriteByte('\n')
	}
	resp, err := http.Post(ts.URL+"/v1/fleet/ingest", "application/jsonl", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var ack FleetIngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ack.Format != "jsonl" || ack.Events != 10 {
		t.Fatalf("ingest ack = %+v", ack)
	}

	// A bad line midstream: 400, but the good prefix stays ingested.
	bad := strings.NewReader(`{"workload":"sha","device":"dev-k","done":true}` + "\n" + "not json\n")
	resp, err = http.Post(ts.URL+"/v1/fleet/ingest", "application/jsonl", bad)
	if err != nil {
		t.Fatal(err)
	}
	eb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad jsonl: HTTP %d", resp.StatusCode)
	}
	if !strings.Contains(string(eb), "line 2") {
		t.Errorf("error should name the bad line: %s", eb)
	}
	if got := ft.Snapshot().Events; got != 11 {
		t.Errorf("events after partial ingest = %d, want 11", got)
	}
}

// TestFleetDisabled: without a FleetTracker the routes don't exist.
func TestFleetDisabled(t *testing.T) {
	reg, err := NewRegistry(RegistryOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ts := httptest.NewServer(NewServer(reg, ServerOptions{EnableDebug: true}))
	defer ts.Close()

	for _, req := range []struct{ method, path string }{
		{"POST", "/v1/fleet/ingest"},
		{"GET", "/v1/fleet"},
		{"GET", "/debug/fleet"},
	} {
		r, _ := http.NewRequest(req.method, ts.URL+req.path, strings.NewReader(""))
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s: HTTP %d, want 404", req.method, req.path, resp.StatusCode)
		}
	}
}

// TestFleetDashEmpty: the page renders (with a pointer to ingest)
// before any trace arrives.
func TestFleetDashEmpty(t *testing.T) {
	ts, _ := newFleetServer(t)
	resp, err := http.Get(ts.URL + "/debug/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	if !strings.Contains(string(b), "/v1/fleet/ingest") {
		t.Error("empty dashboard should point at the ingest endpoint")
	}
}

// TestFleetIngestBodyLimit: ingest takes its own (large) body limit,
// and MaxIngestBytes is enforceable when configured small.
func TestFleetIngestBodyLimit(t *testing.T) {
	reg, err := NewRegistry(RegistryOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ft := obs.NewFleetTracker(obs.FleetConfig{})
	ts := httptest.NewServer(NewServer(reg, ServerOptions{
		Fleet:          ft,
		MaxIngestBytes: 64, // absurdly small, to trip the limit
	}))
	defer ts.Close()

	var buf bytes.Buffer
	for j := 0; j < 100; j++ {
		e := fleetTestEvent("dev", "sha", j, false, 0.1)
		b, _ := json.Marshal(&e)
		buf.Write(b)
		buf.WriteByte('\n')
	}
	resp, err := http.Post(ts.URL+"/v1/fleet/ingest", "application/jsonl", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized ingest: HTTP %d, want 400", resp.StatusCode)
	}
	// The 64-byte cap cuts line 1 mid-JSON, so nothing was ingested.
	if got := ft.Snapshot().Events; got != 0 {
		t.Errorf("events after capped ingest = %d, want 0", got)
	}
}
